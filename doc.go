// Package repro reproduces "Is the Web ready for HTTP/2 Server Push?"
// (Zimmermann, Wolters, Hohlfeld, Wehrle — CoNEXT 2018): a controlled
// record-and-replay testbed for evaluating HTTP/2 Server Push strategies,
// including the paper's interleaving-push server scheduler.
//
// The implementation is stdlib-only and fully self-contained:
//
//   - internal/h2 + internal/hpack: a from-scratch HTTP/2 stack (frames,
//     HPACK with Huffman coding, priority tree, flow control, pluggable
//     push schedulers) that runs both inside a discrete-event simulator
//     and over real net.Conn transports;
//   - internal/sim + internal/netem: the virtual clock and the emulated
//     access network (the paper's 16/1 Mbit/s, 50 ms DSL link by
//     default);
//   - internal/scenario: composable measurement scenarios — a named
//     netem.Profile plus a run-to-run variability model (network
//     jitter, loss, server think time, third-party content scaling,
//     client compute jitter) with deterministic per-run derivation;
//     ships the named library (dsl, internet, fiber, cable, lte, 3g,
//     wifi-lossy, satellite) the cross-scenario sweep iterates over;
//   - internal/replay: the Mahimahi-style record database, recording
//     proxy/crawler, and per-IP replay servers with SAN coalescing;
//   - internal/browser: the deterministic browser model (preload scanner,
//     critical rendering path, layout, paint timeline) with failure
//     recovery — per-resource timeout budgets, bounded retry, and
//     graceful degradation to a classified LoadOutcome;
//   - internal/fault: the deterministic fault-injection subsystem
//     (scripted link cuts and flaps, server stalls, mid-load GOAWAY,
//     push resets, mid-connection push disable);
//   - internal/strategy: all push strategies from the paper, critical-CSS
//     extraction and majority-vote push ordering;
//   - internal/core: the testbed orchestration, the parallel experiment
//     engine, one experiment driver per figure/table of the evaluation,
//     the cross-scenario strategy sweep (ScenarioSweep), and the
//     population-scale sweep (PopulationSweep: N clients on one shared
//     bottleneck, aggregated through mergeable quantile sketches).
//
// # The zero-copy byte path
//
// Simulator throughput is the budget every experiment spends, so the
// data plane avoids copies end to end: response bodies are queued into
// HTTP/2 streams by reference (h2.Stream.QueueData retains the slice),
// DATA frames are emitted as an arena-backed header plus zero-copy
// payload subslices (h2.Core.AppendWrite), the emulated network
// transmits them as subslices of the writer's chunks (netem.End.WriteV
// transfers ownership), and the receiving frame parser consumes the
// delivered slices in place (h2.FrameReader.Feed retains, Next parses
// from the chunk list). The ownership rule at every seam is the same:
// bytes handed across it must not be mutated afterwards, and bytes
// received from it must be copied if retained beyond the callback.
// Hot-path events ride sim.AtCall (pooled Event structs, static
// callbacks) and netem pools per-segment state, so steady-state
// transfer allocates nothing per segment.
//
// # Prepared sites and run contexts
//
// On top of the zero-copy transfer path, per-run work is split into
// "prepare once, replay many". Everything that is a pure function of a
// recorded site — the parsed base document (htmlx), the parsed
// stylesheets (cssx), the browser's layout/milestone/URL-resolution
// bundle, and the strategy layer's critical-set analysis and rewritten
// site — is computed once per site (replay.Site.Prepared, a lazy,
// once-guarded derivation) and shared read-only across every simulation
// worker. The immutability rule mirrors the byte-path rule: anything
// reachable from a Prepared is frozen after construction; per-run
// mutable state (fetch progress, paint bitsets, scaled third-party
// bodies) lives in a core.RunContext, which owns a resettable
// simulator, emulated network, server farm, browser loader and overlay
// scratch. The engine creates one RunContext per worker and threads it
// through every run that worker executes (core.Testbed.RunOnceWith);
// contexts never cross workers and cache only scratch, never results,
// so reuse cannot change any output.
//
// # The intern table: dense IDs and pre-encoded headers
//
// Preparation also assigns every name the site can mention a dense
// integer ID (replay.Prepared.Interns): resource URLs, connection
// groups (coalescing classes of authorities) and font families. The
// contract is that IDs are prepare-time-stable, strictly per-site and
// never reused across prepared sites — a rewritten site is a new Site
// with its own Prepared and its own ID space, while a scenario variant
// shares its base's Prepared and therefore its base's IDs. The per-run
// hot path then touches only integers: the browser loader's resource,
// connection and font state are slice tables indexed by ID (string maps
// survive only as the overflow path for names outside the prepared
// space), the farm's push sets are ID-indexed bitsets resolved once per
// (site, plan), and h2 stream and priority tables are slices keyed by a
// per-connection dense stream index. The intern table also carries the
// prepare-time HPACK pre-encoding: request/push-promise and response
// header blocks are encoded once per site and replayed as a memcpy when
// the connection's encoder state provably matches (hpack.PreEncoded);
// otherwise the live encoder runs — the wire bytes are identical either
// way, byte-equality pinned by tests. h2 client and server connection
// objects (cores, codec state, stream structs, priority nodes) are
// pooled on the run context's loader and farm and fully Reset between
// runs.
//
// # Fork-at-divergence checkpoints
//
// Strategy sweeps re-run the same (site, scenario, run) triple once per
// strategy, and every one of those runs simulates an identical prefix —
// dial, TLS-free handshake, first request — before anything consults
// the push plan. The engine runs that prefix once, snapshots the full
// simulation state at the divergence point (the instant the server
// would first consult its plan), and rewinds later runs from the
// snapshot (internal/core fork.go; the per-layer Snapshot/Restore pairs
// live next to the types they capture: sim, netem, hpack, h2, replay,
// browser).
//
// The checkpoint ownership contract extends the run-context rules. A
// snapshot owns its buffers — slices are deep-copied append-into-scratch
// and reused across captures — but the object pointers it holds
// (events, connections, streams, resources, priority nodes) are aliases
// into the capturing RunContext's pooled object graph. Restore rewrites
// those structs in place rather than allocating replacements, which is
// what keeps closures and handles created during the prefix valid after
// a rewind; objects created after the capture are simply dropped for
// the collector, and pool free lists are rebuilt from the snapshot with
// their contents re-scrubbed (an object free at capture may have been
// reused since). Two consequences: a checkpoint is only meaningful on
// the RunContext that captured it (the cache is per-context and never
// crosses goroutines), and a snapshot's arena lives exactly as long as
// its cache slot — eviction reuses the buffers for the next capture.
//
// Eligibility and fallback are conservative. Runs whose site is itself
// a per-run realisation (third-party variability) bypass the cache up
// front; a first encounter of a cache key runs plain and only marks the
// key, so one-shot keys (strategies that rewrite the site produce a
// fresh key per Apply) never pay for a snapshot; and if an armed
// checkpoint is never reached — the run ends before the first server
// dispatch — the run falls back to the plain full-simulation path. A
// checkpoint captured after zero RNG draws serves any seed (Restore
// rewinds the generator, ReseedRand re-points it); a prefix that
// consumed draws serves only its own seed. Output is byte-identical
// with forking on or off: Testbed.NoFork and pushbench -nofork exist
// for ablation, goldens pin both paths, and TestForkMatchesFresh hashes
// full per-strategy traces against fresh simulations.
//
// # Fault injection and recovery
//
// internal/fault makes failure a scripted, reproducible experiment
// input rather than an accident. A fault.Spec lives as plain data on a
// scenario (scenario.Scenario.Faults) and describes which failures
// strike a load and when: the access link being cut or flapping, the
// replay server stalling, a mid-load GOAWAY, RST_STREAM on in-flight
// pushed streams, or the client disabling push mid-connection.
// Spec.Derive lowers it per run into a time-sorted fault.Plan using its
// own seed-derived RNG stream (only when jitter is requested), so
// adding faults to a scenario never perturbs link, think-time or
// third-party draws. A pooled fault.Injector schedules the plan on the
// sim clock and hands each event to the testbed, which applies it
// through the layer that owns the failure: netem cuts or resumes the
// link, the farm stalls dispatch or injects GOAWAY/push resets, the
// loader disables push. An empty plan schedules nothing — zero events,
// zero sequence numbers — so the fault-free path is byte-identical to a
// build without the subsystem, and the goldens pin that.
//
// The browser survives what the injector throws at it. Every load now
// terminates with a browser.LoadOutcome — Complete (onload fired, no
// terminal failures), Partial (the page settled or hit the horizon with
// some resources failed), or Failed (the base document never arrived) —
// and per-resource failure causes (timeout, reset, goaway, conn-error,
// horizon) on the result's timings. Recovery is deterministic and
// bounded: Config.ResourceTimeout arms a per-fetch budget (zero, the
// default, arms nothing), failed fetches retry up to Config.MaxRetries
// times with linear Config.RetryBackoff — re-dialling if the connection
// died — and a pushed stream that dies before the parser wants the
// resource just cancels the push (its delivered bytes counted as wasted)
// so discovery re-requests normally. Terminal failures degrade
// gracefully instead of hanging the load: parser blocks lift, CSS
// waiters fire, deferred chains advance, and milestone metrics stay
// defined on partial pages. When a load settles, the loader cancels its
// remaining timers and closes its connections, so a permanently cut
// link cannot keep retransmission timers spinning past the horizon.
//
// Fault-bearing runs deterministically bypass the fork-at-divergence
// cache (conditions with a non-empty plan never fork or populate it),
// which keeps the checkpoint contract untouched: output is still
// byte-identical with forking on or off, at any worker-pool count.
// pushbench -experiment faults runs the push-strategy contrast under
// each scripted fault family and reports outcome counts, median PLT and
// failure/waste accounting per cell.
//
// # Population sweeps: shared bottlenecks and streaming aggregation
//
// The paper's testbed is one client on one access link; the population
// engine asks what happens when N clients share an uplink. A
// netem.SharedProfile describes the two-hop topology — per-client
// access links (full Profiles) feeding one FIFO queue per direction at
// the shared rates — and netem.Topology instantiates it on a single
// simulator: each client keeps its own Network (pipes, congestion
// state, segment pool) and every flow's segments additionally traverse
// the shared pipes, where the clients' traffic interleaves in FIFO
// order. A flat Network is the nil-second-hop special case, so the
// single-client path is bit-identical to before the topology existed
// (the goldens pin that). Client Networks are owned by their Topology:
// Reset re-attaches the shared pipes for the active clients and a flat
// Reset detaches them, so pooled Networks recycle cleanly in both
// directions. Population runs deterministically bypass the
// fork-at-divergence cache (every unit has its own contention pattern;
// pinned by test), and scenario presets (household, cell-sector,
// office-nat) live in internal/scenario as plain data.
//
// Aggregation is O(1) in the number of loads: per-load PLT and
// SpeedIndex stream into metrics.Sketch, a DDSketch-style mergeable
// quantile sketch with geometrically spaced integer buckets. Every
// reported quantile is within SketchRelativeError (1%) of the exact
// value — a relative-error bound on the value, not a rank bound — with
// exact min/max at p0/p100, and MergeFrom is commutative and
// associative integer addition, so merging per-worker sketches in any
// order yields bit-identical tables at any -jobs. The same machinery
// backs metrics.Sample.Compact, which freezes a sample's exact summary
// statistics (N, median, mean, std, stderr, CI), folds the raw values
// into a sketch for later quantile queries, and releases them — the
// experiment drivers compact after each evaluation, so sweep memory no
// longer scales with runs. pushbench -experiment population renders
// per-preset tables of strategy x client-count median/p95 PLT and
// SpeedIndex plus a fairness row (PLT p95/p50).
//
// # Pluggable execution shards: the Executor seam
//
// The engine's work-distribution layer (engine.go) hands out unit
// indices and pins results into index-addressed slots; the Executor
// seam (exec.go) makes the layer that runs those units pluggable. Two
// implementations exist: the in-process worker pool, and a
// multiprocess executor that re-execs the current binary as shard
// worker children (pushbench -worker, marked by an environment
// variable and intercepted by core.MaybeServeWorker before flag
// parsing) and streams index-addressed work units to them over
// stdin/stdout. Child k of N shards owns the index stride {k, k+N,
// ...}; it runs its units sequentially (parallelism comes from the
// shard count, children never spawn recursively) and streams each
// encoded result back as it finishes. The parent validates stride
// membership, uniqueness and completeness, pins payloads into the
// shared slot array, and on any error closes the child's pipes, reaps
// the process and folds its stderr into the returned error.
//
// The wire format is owned in layers: internal/shard frames the
// streams (versioned RSH1 header, kind + length-prefixed frames, an
// explicit End frame carrying the frame count so truncation and
// trailing garbage are always errors) and provides the payload
// primitives; internal/metrics owns the value codecs (Sample, Sketch);
// internal/core owns the per-job composites (jobs.go), registered in a
// lookup-only registry at package init. Decoders are strict —
// malformed input returns an error, never panics (FuzzDecodeResults) —
// and a worker child reconstructs its deterministic inputs (site sets,
// strategies) from small JSON params rather than shipping objects.
//
// Because results land in slots by unit index, tables are
// byte-identical across executors and shard counts; the in-process
// path short-circuits past the codec entirely (jobDef.collect runs the
// driver's original typed closure), so single-process runs pay zero
// overhead for the seam. TestMultiprocessMatchesInprocess re-renders
// every experiment family at shards 1/2/4 against the in-process
// output, the goldens run through the multiprocess executor, CI diffs
// pushbench -executor multiprocess -shards 4 tables against in-process
// ones, and scripts/scale.sh records the measured per-executor scaling
// curve (BENCH_pr10.json).
//
// # Machine-checked contracts (repolint)
//
// The engine invariants described above are not just prose: cmd/repolint
// (driving internal/analysis) type-checks the module and enforces them
// statically, and CI gates every change on a clean run. Each contract
// maps to one analyzer and, where the contract needs a human judgment
// call, one escape-hatch directive:
//
//	contract                                analyzer       directive
//	-----------------------------------------------------------------------------
//	runs are a pure function of the seed:   determinism    //repolint:ordered <reason>
//	no wall clock, no global math/rand,                      (order-safe map range)
//	no map-order-dependent output in
//	sim, core, netem, scenario, shard,
//	metrics
//
//	pooled reuse leaks nothing: every       resetcomplete  //repolint:pooled (on the type)
//	//repolint:pooled type's Reset covers                  //repolint:keep <reason> (field
//	every field, directly or through the                     deliberately survives Reset,
//	methods it calls; a Reset method on                      Snapshot and Restore)
//	an unannotated type must declare                       //repolint:notpooled <reason>
//	itself either way; a pooled type's                       (protocol Reset, not pooling)
//	Snapshot must read every field and
//	its Restore must reassign every
//	field, with the same transitive
//	closure, and each half of the pair
//	requires the other
//
//	the warm loop allocates nothing:        hotpath        //repolint:hotpath (opt-in on
//	no fmt, string concatenation,                            the function; panic arguments
//	closures, method values or                               and returns stay exempt as the
//	non-pointer-shaped interface boxing                      cold error path)
//	in functions marked hotpath
//
//	transport []byte parameters are         retain         //repolint:owns (the function
//	borrowed: storing one (or a subslice,                    takes ownership; the caller
//	or an append chain carrying one) into                    must not touch the buffer
//	a field or package variable requires                     again)
//	a declared ownership transfer
//
//	directives themselves are well-formed:  directives     (none: a typo'd or misattached
//	known verb, reason present where                         escape hatch is always an
//	required, attached to the right node                     error)
//
// Directives use the toolchain's comment-directive shape (//repolint:verb,
// no space), so gofmt leaves them alone. Reasons run to end of line.
// Run the suite with:
//
//	go run ./cmd/repolint ./...        # everything (what CI runs)
//	go run ./cmd/repolint internal/h2  # one package
//	go run ./cmd/repolint -list        # the analyzer catalog
//
// Each analyzer carries a seeded-violation fixture under
// internal/analysis/testdata pinning its diagnostics, so the checkers
// are themselves regression-tested. One deliberate asymmetry:
// core.RunContext has no Reset method — per-run reset happens inside
// RunOnceWith, member by member (each pooled member is itself a
// //repolint:pooled type) — so resetcomplete checks its members, not
// the aggregate.
//
// Experiment tables are pinned byte-for-byte across all of this
// machinery by golden-fixture tests (internal/core/testdata) at Jobs=1
// and Jobs=N, in-process and through the multiprocess executor, under
// -race, and allocation budgets are enforced by regression tests
// (TestPageLoadAllocBudget, TestRunContextReuseAllocBudget,
// TestFrameReaderAllocBudget); scripts/bench.sh tracks the perf
// trajectory (BENCH_pr3.json through BENCH_pr10.json). The peer-facing
// decoders (h2.FrameReader, hpack.Decoder, shard.StreamReader)
// additionally carry fuzz targets seeded from real codec output; CI
// runs short sessions of each.
//
// See README.md for building, running the experiment drivers
// (cmd/pushbench) and benchmarking. bench_test.go regenerates every
// figure: go test -bench=. -benchmem.
package repro
