package sim

// Source is the simulator's random source: a SplitMix64 generator whose
// entire state is one word plus a draw counter. Two properties matter
// here beyond statistical quality (SplitMix64 passes BigCrush and is the
// stream generator recommended for seeding xoshiro-family PRNGs):
//
//   - Seeding is O(1). The stdlib rngSource initializes a 607-word
//     lagged-Fibonacci table per Seed call, which showed up as ~3% of a
//     cross-scenario sweep when every run reseeds; SplitMix64 seeding is
//     a single store.
//   - The state is trivially capturable. Snapshot/Restore copy
//     {state, draws} by value, so a restored simulation replays the
//     exact random stream from the checkpoint, and a checkpoint that
//     consumed zero draws can be re-seeded for a different run without
//     invalidating the snapshot (see SourceState.Draws).
//
// Source implements math/rand.Source64; Sim wraps it in a *rand.Rand, so
// all existing call sites (Float64, Int63n, ...) keep working. Every
// rand.Rand method bottoms out in Uint64/Int63 here, so the draw counter
// counts actual source consumption regardless of which derived method
// drew (rejection loops in Int63n draw — and count — more than once).
type Source struct {
	state uint64
	draws uint64
}

// Seed64 resets the source to the canonical stream for seed.
func (s *Source) Seed64(seed int64) {
	s.state = uint64(seed)
	s.draws = 0
}

// Seed implements math/rand.Source.
func (s *Source) Seed(seed int64) { s.Seed64(seed) }

// Uint64 implements math/rand.Source64 (SplitMix64, Steele et al. 2014).
//
//repolint:hotpath
func (s *Source) Uint64() uint64 {
	s.draws++
	s.state += 0x9E3779B97F4A7C15
	z := s.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Int63 implements math/rand.Source.
//
//repolint:hotpath
func (s *Source) Int63() int64 { return int64(s.Uint64() >> 1) }

// SourceState is a captured Source position: the generator word plus how
// many draws produced it. Draws==0 means the stream is untouched since
// seeding — the only state in which a checkpoint is seed-independent.
type SourceState struct {
	State uint64
	Draws uint64
}

// State returns the current stream position.
func (s *Source) State() SourceState { return SourceState{State: s.state, Draws: s.draws} }

// SetState rewinds (or fast-forwards) the source to a captured position.
func (s *Source) SetState(st SourceState) { s.state, s.draws = st.State, st.Draws }

// RandState exposes the simulator's source position for checkpointing.
func (s *Sim) RandState() SourceState { return s.src.State() }

// SetRandState restores a previously captured source position.
func (s *Sim) SetRandState(st SourceState) { s.src.SetState(st) }

// ReseedRand re-seeds the random stream in place. It is intended for
// restore paths that replay a zero-draw checkpoint under a different
// seed; reseeding after any draw would desynchronize the stream from a
// fresh run, so that is a logic error and panics.
func (s *Sim) ReseedRand(seed int64) {
	if s.src.draws != 0 {
		panic("sim: ReseedRand after the stream was drawn from")
	}
	s.src.Seed64(seed)
}
