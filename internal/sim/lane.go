package sim

import "time"

// Lane is a FIFO scheduling channel for event streams whose timestamps
// are known to be nondecreasing — a netem pipe is the canonical case:
// a link is a FIFO queue, so successive admissions depart (and deliver)
// in order. Events scheduled on a Lane keep the exact (at, seq) total
// order of plain AtCall scheduling, but only the lane's head occupies a
// slot in the simulator's priority queue; the rest wait in a ring
// buffer. With in-flight windows of hundreds of segments this collapses
// the heap from O(window) to O(#lanes + #misc events), which shortens
// every sift in the simulation — the dominant steady-state cost.
//
// A Lane accepts only the pooled-callback form (cb + arg, no handle, no
// cancellation). Scheduling an out-of-order timestamp falls back to the
// simulator's heap transparently, so ordering stays correct even if a
// caller's monotonicity assumption breaks.
//
//repolint:pooled
type Lane struct {
	s      *Sim //repolint:keep bound at NewLane; a lane is permanently tied to its simulator
	ring   []laneEv
	head   int
	n      int
	lastAt time.Duration
	armed  bool
	ev     Event //repolint:keep sentinel registered in the heap; rebound by arm
}

type laneEv struct {
	at  time.Duration
	seq uint64
	cb  func(any)
	arg any
}

// NewLane returns a FIFO scheduling channel on s.
func NewLane(s *Sim) *Lane {
	l := &Lane{s: s}
	l.ev.s = s
	l.ev.lane = l
	return l
}

// Reset empties the lane. The owner must call it alongside Sim.Reset
// (the sentinel slot, like every queued event, is discarded there).
func (l *Lane) Reset() {
	clear(l.ring)
	l.head, l.n = 0, 0
	l.lastAt = 0
	l.armed = false
}

// Len reports the number of events waiting in the lane (including the
// armed head).
func (l *Lane) Len() int { return l.n }

// AtCall schedules cb(arg) at absolute virtual time t, exactly like
// Sim.AtCall but through the lane's FIFO.
//
//repolint:hotpath
func (l *Lane) AtCall(t time.Duration, cb func(any), arg any) {
	s := l.s
	if l.n > 0 && t < l.lastAt {
		// Out-of-order timestamp: the FIFO invariant would break, so
		// schedule through the heap. Rare to impossible for pipe-driven
		// callers; correctness does not depend on the caller's claim.
		s.AtCall(t, cb, arg)
		return
	}
	if t < s.now {
		s.AtCall(t, cb, arg) // reuse the heap path's past-time panic
		return
	}
	s.seq++
	l.lastAt = t
	if l.n == len(l.ring) {
		l.grow()
	}
	i := l.head + l.n
	if i >= len(l.ring) {
		i -= len(l.ring)
	}
	l.ring[i] = laneEv{at: t, seq: s.seq, cb: cb, arg: arg}
	l.n++
	if !l.armed {
		l.arm()
	}
}

// arm registers the lane's current head in the simulator's heap via the
// sentinel event.
func (l *Lane) arm() {
	he := &l.ring[l.head]
	l.armed = true
	l.ev.at = he.at
	l.s.pushEvent(he.at, he.seq, &l.ev)
}

// pop removes and returns the head entry.
func (l *Lane) pop() laneEv {
	e := l.ring[l.head]
	l.ring[l.head] = laneEv{}
	l.head++
	if l.head == len(l.ring) {
		l.head = 0
	}
	l.n--
	return e
}

func (l *Lane) grow() {
	next := make([]laneEv, max(2*len(l.ring), 16))
	for i := 0; i < l.n; i++ {
		j := l.head + i
		if j >= len(l.ring) {
			j -= len(l.ring)
		}
		next[i] = l.ring[j]
	}
	l.ring = next
	l.head = 0
}

// LaneSnapshot is a deep copy of a Lane's pending events, taken and
// restored by the lane's owner alongside the simulator snapshot. The
// sentinel's heap slot itself is covered by Sim.Snapshot (the sentinel
// is an Event like any other); this captures the ring.
type LaneSnapshot struct {
	evs    []laneEv
	lastAt time.Duration
	armed  bool
}

// Snapshot copies the lane's pending entries into dst.
func (l *Lane) Snapshot(dst *LaneSnapshot) {
	dst.evs = dst.evs[:0]
	for i := 0; i < l.n; i++ {
		j := l.head + i
		if j >= len(l.ring) {
			j -= len(l.ring)
		}
		dst.evs = append(dst.evs, l.ring[j])
	}
	dst.lastAt = l.lastAt
	dst.armed = l.armed
}

// Restore rewinds the lane to the captured state. The sentinel event's
// queue slot is restored by Sim.Restore; ring layout is rebuilt from
// the snapshot (layout differences cannot affect pop order — the ring
// is FIFO).
func (l *Lane) Restore(snap *LaneSnapshot) {
	clear(l.ring)
	if len(snap.evs) > len(l.ring) {
		l.ring = make([]laneEv, max(2*len(snap.evs), 16))
	}
	copy(l.ring, snap.evs)
	l.head, l.n = 0, len(snap.evs)
	l.lastAt = snap.lastAt
	l.armed = snap.armed
}
