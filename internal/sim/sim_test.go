package sim

import (
	"testing"
	"testing/quick"
	"time"
)

func TestEventOrdering(t *testing.T) {
	s := New(1)
	var got []int
	s.At(30*time.Millisecond, func() { got = append(got, 3) })
	s.At(10*time.Millisecond, func() { got = append(got, 1) })
	s.At(20*time.Millisecond, func() { got = append(got, 2) })
	if n := s.Run(); n != 3 {
		t.Fatalf("Run executed %d events, want 3", n)
	}
	for i, v := range []int{1, 2, 3} {
		if got[i] != v {
			t.Fatalf("event order %v, want [1 2 3]", got)
		}
	}
	if s.Now() != 30*time.Millisecond {
		t.Fatalf("clock = %v, want 30ms", s.Now())
	}
}

func TestTieBreakBySchedulingOrder(t *testing.T) {
	s := New(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(5*time.Millisecond, func() { got = append(got, i) })
	}
	s.Run()
	for i := 0; i < 10; i++ {
		if got[i] != i {
			t.Fatalf("tie order %v, want FIFO", got)
		}
	}
}

func TestCancel(t *testing.T) {
	s := New(1)
	fired := false
	e := s.After(time.Millisecond, func() { fired = true })
	e.Cancel()
	s.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
}

func TestNestedScheduling(t *testing.T) {
	s := New(1)
	count := 0
	var tick func()
	tick = func() {
		count++
		if count < 5 {
			s.After(time.Millisecond, tick)
		}
	}
	s.Post(tick)
	s.Run()
	if count != 5 {
		t.Fatalf("count = %d, want 5", count)
	}
	if s.Now() != 4*time.Millisecond {
		t.Fatalf("clock = %v, want 4ms", s.Now())
	}
}

func TestPostRunsAtCurrentInstant(t *testing.T) {
	s := New(1)
	var order []string
	s.At(time.Millisecond, func() {
		order = append(order, "a")
		s.Post(func() { order = append(order, "b") })
	})
	s.At(time.Millisecond, func() { order = append(order, "c") })
	s.Run()
	want := []string{"a", "c", "b"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order %v, want %v", order, want)
		}
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	s := New(1)
	s.At(10*time.Millisecond, func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic scheduling in the past")
			}
		}()
		s.At(5*time.Millisecond, func() {})
	})
	s.Run()
}

func TestRunUntil(t *testing.T) {
	s := New(1)
	fired := 0
	s.At(10*time.Millisecond, func() { fired++ })
	s.At(30*time.Millisecond, func() { fired++ })
	s.RunUntil(20 * time.Millisecond)
	if fired != 1 {
		t.Fatalf("fired = %d, want 1", fired)
	}
	if s.Now() != 20*time.Millisecond {
		t.Fatalf("clock = %v, want 20ms", s.Now())
	}
	s.Run()
	if fired != 2 {
		t.Fatalf("fired = %d, want 2", fired)
	}
}

func TestHorizonStopsRun(t *testing.T) {
	s := New(1)
	s.Horizon = 15 * time.Millisecond
	fired := 0
	s.At(10*time.Millisecond, func() { fired++ })
	s.At(20*time.Millisecond, func() { fired++ })
	s.Run()
	if fired != 1 {
		t.Fatalf("fired = %d, want 1 (horizon)", fired)
	}
}

func TestDeterminismSameSeed(t *testing.T) {
	run := func(seed int64) []int64 {
		s := New(seed)
		var vals []int64
		var step func()
		step = func() {
			vals = append(vals, s.Rand().Int63n(1000))
			if len(vals) < 50 {
				s.After(time.Duration(s.Rand().Intn(5)+1)*time.Millisecond, step)
			}
		}
		s.Post(step)
		s.Run()
		return vals
	}
	a, b := run(42), run(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverge at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

// Property: events always fire in non-decreasing timestamp order, no matter
// the insertion order.
func TestPropertyMonotoneFiring(t *testing.T) {
	f := func(delays []uint16) bool {
		if len(delays) == 0 {
			return true
		}
		s := New(7)
		var fired []time.Duration
		for _, d := range delays {
			at := time.Duration(d) * time.Microsecond
			s.At(at, func() { fired = append(fired, s.Now()) })
		}
		s.Run()
		if len(fired) != len(delays) {
			return false
		}
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestNegativeAfterClamped(t *testing.T) {
	s := New(1)
	fired := false
	s.After(-5*time.Millisecond, func() { fired = true })
	s.Run()
	if !fired {
		t.Fatal("negative After never fired")
	}
}

func TestCancelRemovesFromQueue(t *testing.T) {
	s := New(1)
	e := s.After(time.Millisecond, func() {})
	s.After(2*time.Millisecond, func() {})
	if s.Pending() != 2 {
		t.Fatalf("Pending = %d, want 2", s.Pending())
	}
	e.Cancel()
	if s.Pending() != 1 {
		t.Fatalf("cancelled event still queued: Pending = %d, want 1", s.Pending())
	}
	e.Cancel() // double cancel is a no-op
	if n := s.Run(); n != 1 {
		t.Fatalf("Run executed %d events, want 1", n)
	}
}

func TestCancelAfterFiringIsNoop(t *testing.T) {
	s := New(1)
	e := s.After(time.Millisecond, func() {})
	s.After(2*time.Millisecond, func() {})
	s.RunUntil(time.Millisecond)
	e.Cancel() // already fired: must not disturb the queue
	if s.Pending() != 1 {
		t.Fatalf("Pending = %d, want 1", s.Pending())
	}
}

func TestAtCallOrderingAndReuse(t *testing.T) {
	s := New(1)
	var got []int
	record := func(arg any) { got = append(got, arg.(int)) }
	// AtCall events interleave with closure events in strict (time, seq)
	// order, and fired events are recycled without disturbing ordering.
	s.AtCall(2*time.Millisecond, record, 2)
	s.At(time.Millisecond, func() {
		got = append(got, 1)
		s.AtCall(2*time.Millisecond, record, 3)
	})
	s.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order %v, want %v", got, want)
		}
	}
	// Pooled events are reused across rounds.
	for round := 0; round < 3; round++ {
		fired := 0
		s.AtCall(s.Now()+time.Millisecond, func(any) { fired++ }, nil)
		s.Run()
		if fired != 1 {
			t.Fatalf("round %d: fired %d", round, fired)
		}
	}
}

func TestReserveSeqAdvancesTieBreak(t *testing.T) {
	s := New(1)
	var got []int
	s.At(time.Millisecond, func() { got = append(got, 1) })
	s.ReserveSeq() // a virtual event "between" the two real ones
	s.At(time.Millisecond, func() { got = append(got, 2) })
	s.Run()
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("order %v, want [1 2]", got)
	}
}

// TestResetMatchesFresh pins the Reset contract: after Reset(seed), a
// run — including random draws, pooled AtCall events and cancellations
// — is bit-identical to one on a fresh New(seed) simulator, even when
// the reused simulator previously ran something else and still had
// events queued at Reset time.
func TestResetMatchesFresh(t *testing.T) {
	exercise := func(s *Sim) []time.Duration {
		var fired []time.Duration
		record := func(any) { fired = append(fired, s.Now()) }
		for i := 0; i < 50; i++ {
			d := time.Duration(s.Rand().Intn(1000)) * time.Microsecond
			if i%3 == 0 {
				s.AtCall(s.Now()+d, record, nil)
			} else {
				ev := s.After(d, func() { fired = append(fired, s.Now()) })
				if i%5 == 0 {
					ev.Cancel()
				}
			}
		}
		s.Run()
		fired = append(fired, time.Duration(s.Rand().Int63n(1<<40)))
		return fired
	}

	fresh := New(42)
	want := exercise(fresh)

	reused := New(7)
	reused.After(time.Second, func() {})          // plain event left queued
	reused.AtCall(time.Second, func(any) {}, nil) // pooled event left queued
	reused.RunUntil(10 * time.Millisecond)
	reused.Reset(42)
	got := exercise(reused)

	if len(got) != len(want) {
		t.Fatalf("fired %d events after Reset, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("event %d fired at %v after Reset, want %v", i, got[i], want[i])
		}
	}
	if reused.Pending() != 0 {
		t.Fatalf("pending = %d after drained run", reused.Pending())
	}
}

func TestCancelAllCompactsEmptyQueue(t *testing.T) {
	// Cancelling the last live event while 17+ dead slots are pending
	// triggers compact on a queue with zero survivors; the heapify loop
	// must not index into the emptied slice. Regression: a faulted page
	// load's terminate() cancels every outstanding timer and ended with
	// exactly this shape.
	s := New(1)
	evs := make([]*Event, 18)
	for i := range evs {
		evs[i] = s.After(time.Duration(i+1)*time.Millisecond, func() {})
	}
	for _, e := range evs {
		e.Cancel()
	}
	if got := s.Run(); got != 0 {
		t.Fatalf("Run fired %d events, want 0", got)
	}
}

func TestCompactToSingleLiveEvent(t *testing.T) {
	// Same compaction path with one survivor: the n==1 heap is trivially
	// valid and the surviving event must still fire at its time.
	s := New(1)
	var fired time.Duration = -1
	keep := s.After(20*time.Millisecond, func() { fired = s.Now() })
	evs := make([]*Event, 18)
	for i := range evs {
		evs[i] = s.After(time.Duration(i+1)*time.Millisecond, func() {})
	}
	for _, e := range evs {
		e.Cancel()
	}
	_ = keep
	if got := s.Run(); got != 1 {
		t.Fatalf("Run fired %d events, want 1", got)
	}
	if fired != 20*time.Millisecond {
		t.Fatalf("survivor fired at %v, want 20ms", fired)
	}
}
