package sim

import "time"

// Snapshot is a deep copy of a Sim's run state: clock, sequence
// counters, run bounds, random-source position, the event queue
// (including each queued event's contents) and the AtCall free list.
//
// Ownership contract: the snapshot's slices are owned by the snapshot
// and reused across Snapshot calls (append-into-scratch, zero
// steady-state allocations). The *Event pointers it holds are aliases to
// the simulator's event structs — identity, not contents: retained
// handles elsewhere (rtx timers, a loader's horizon event) must keep
// referring to the same structs after Restore, so Restore rewrites those
// structs in place from the copied contents rather than allocating
// replacements. A snapshot is therefore only meaningful against the Sim
// it was taken from, and both Snapshot and Restore require a quiescent
// simulator (between events; panics mid-Run).
type Snapshot struct {
	now     time.Duration
	seq     uint64
	curSeq  uint64
	limit   int
	horizon time.Duration
	rng     SourceState
	live    int
	dead    int
	slots   []heapSlot
	evs     []eventState
	free    []*Event
}

// eventState is the copied contents of one queued event.
type eventState struct {
	at     time.Duration
	fn     func()
	cb     func(any)
	arg    any
	pooled bool
	queued bool
}

// Rand returns the captured random-source position. Callers use
// Draws==0 to decide whether the checkpoint is seed-independent.
func (sn *Snapshot) Rand() SourceState { return sn.rng }

// Events reports how many queue slots the snapshot holds (live plus
// lazily-cancelled), for diagnostics.
func (sn *Snapshot) Events() int { return len(sn.slots) }

// Bytes approximates the heap footprint of the captured state, for
// diagnostics (fork hit-rate / snapshot size reporting).
func (sn *Snapshot) Bytes() int {
	return len(sn.slots)*24 + len(sn.evs)*56 + len(sn.free)*8 + 64
}

// Snapshot copies the simulator's run state into dst.
func (s *Sim) Snapshot(dst *Snapshot) {
	if s.running {
		panic("sim: Snapshot called while running")
	}
	dst.now, dst.seq, dst.curSeq = s.now, s.seq, s.curSeq
	dst.limit, dst.horizon = s.Limit, s.Horizon
	dst.rng = s.src.State()
	dst.live, dst.dead = s.live, s.dead
	dst.slots = append(dst.slots[:0], s.queue...)
	dst.evs = dst.evs[:0]
	for i := range s.queue {
		e := s.queue[i].ev
		dst.evs = append(dst.evs, eventState{
			at: e.at, fn: e.fn, cb: e.cb, arg: e.arg,
			pooled: e.pooled, queued: e.queued,
		})
	}
	dst.free = append(dst.free[:0], s.free...)
}

// Restore rewinds the simulator to the captured state. Event structs
// referenced by the snapshot are rewritten in place (preserving the
// identity that retained handles and pooled free lists depend on);
// events created after the snapshot are dropped for the garbage
// collector. The caller may then re-seed a zero-draw stream via
// ReseedRand to replay the checkpoint under a different seed.
func (s *Sim) Restore(snap *Snapshot) {
	if s.running {
		panic("sim: Restore called while running")
	}
	s.now, s.seq, s.curSeq = snap.now, snap.seq, snap.curSeq
	s.Limit, s.Horizon = snap.limit, snap.horizon
	s.src.SetState(snap.rng)
	s.stop = false
	s.queue = append(s.queue[:0], snap.slots...)
	for i := range snap.slots {
		e := snap.slots[i].ev
		st := &snap.evs[i]
		e.at, e.fn, e.cb, e.arg = st.at, st.fn, st.cb, st.arg
		e.pooled, e.queued = st.pooled, st.queued
		e.s = s
	}
	s.live, s.dead = snap.live, snap.dead
	s.free = s.free[:0]
	for _, e := range snap.free {
		e.reset()
		s.free = append(s.free, e)
	}
}
