// Package sim provides a deterministic discrete-event simulation kernel.
//
// All emulated components in the testbed (links, TCP-like transports, the
// HTTP/2 endpoints and the browser model) run on a single virtual clock
// owned by a Sim. Events are executed in strict timestamp order; ties are
// broken by scheduling order, which makes every run bit-for-bit
// reproducible for a given seed.
//
// # Scheduling APIs and allocation
//
// At/After/Post take a plain closure and return an *Event handle the
// caller may Cancel; these events are heap-allocated and never reused, so
// a stale handle can never observe an unrelated event. AtCall is the
// hot-path variant: it takes a static callback plus an argument value,
// returns no handle, and recycles the Event struct through a free list
// once the event fires. Schedulers that post thousands of events per
// simulated page load (the netem data plane) use AtCall to avoid both
// the per-event closure and the per-event heap allocation.
//
// # Checkpointing
//
// Snapshot/Restore (see snapshot.go) deep-copy the kernel's run state —
// clock, sequence counters, the queue including pooled events, and the
// random source — into a caller-owned arena, so an engine can replay a
// shared simulation prefix without re-executing it.
package sim

import (
	"fmt"
	"math/rand"
	"time"
)

// Event is a scheduled callback. It is owned by the Sim that created it.
//
//repolint:pooled
type Event struct {
	at time.Duration //repolint:keep overwritten by At/AtCall when the event is reused
	fn func()

	// Pooled (AtCall) events carry a static callback + argument instead
	// of a closure and are recycled after firing.
	cb     func(any)
	arg    any
	pooled bool

	s      *Sim  //repolint:keep rebound by pushEvent; never read while free
	lane   *Lane //repolint:keep set once on a lane's sentinel event; nil on all others
	queued bool  // true while a live slot in the queue references this event
}

// reset clears the callback state so a recycled Event pins nothing for
// the garbage collector; the scheduling fields (at, s) are overwritten
// wholesale when the event is reused.
func (e *Event) reset() {
	e.fn, e.cb, e.arg, e.pooled = nil, nil, nil, false
	e.queued = false
}

// At returns the virtual time the event is scheduled for.
func (e *Event) At() time.Duration { return e.at }

// Cancel removes a pending event from the queue, so it neither fires nor
// counts against Pending. Cancelling an event that already fired (or was
// already cancelled) is a no-op.
//
// Cancellation is lazy: the event is only unlinked from its owner, and
// its queue slot is discarded when it reaches the head. That keeps the
// sift loops free of per-event bookkeeping, which is where a
// steady-state run spends its time.
func (e *Event) Cancel() {
	if e.queued {
		e.queued = false
		s := e.s
		s.live--
		s.dead++
		// Dead slots inflate the heap (a cancelled rtx timer would
		// otherwise sit in the queue for a full virtual RTO), so compact
		// once they outnumber the live events. Rebuilding produces some
		// valid (at, seq)-heap; pops only ever take the minimum, so the
		// pop order — and the simulation — is unaffected.
		if s.dead > s.live+16 {
			s.compact()
		}
	}
}

// The event queue is a hand-rolled 4-ary min-heap of slots ordered by
// (at, seq). Each slot carries the ordering key inline next to the event
// pointer, so the sift loops compare and move 24-byte values within one
// contiguous array instead of chasing *Event pointers; the ordering is a
// strict total order (seq is unique), so the sequence of popped events —
// and therefore every simulation — is identical to any other correct
// priority queue.

type heapSlot struct {
	at  time.Duration
	seq uint64
	ev  *Event
}

func slotLess(a, b *heapSlot) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

//repolint:hotpath
func (s *Sim) pushEvent(at time.Duration, seq uint64, e *Event) {
	e.queued = true
	s.live++
	q := append(s.queue, heapSlot{at: at, seq: seq, ev: e})
	s.queue = q
	// Sift up.
	i := len(q) - 1
	n := q[i]
	for i > 0 {
		p := (i - 1) / 4
		if !slotLess(&n, &q[p]) {
			break
		}
		q[i] = q[p]
		i = p
	}
	q[i] = n
}

//repolint:hotpath
func (s *Sim) popSlot() heapSlot {
	q := s.queue
	last := len(q) - 1
	top := q[0]
	tail := q[last]
	q[last] = heapSlot{}
	q = q[:last]
	s.queue = q
	if last == 0 {
		return top
	}
	// Sift the former tail down from the root.
	i := 0
	for {
		c := 4*i + 1
		if c >= last {
			break
		}
		m := c
		end := min(c+4, last)
		for j := c + 1; j < end; j++ {
			if slotLess(&q[j], &q[m]) {
				m = j
			}
		}
		if !slotLess(&q[m], &tail) {
			break
		}
		q[i] = q[m]
		i = m
	}
	q[i] = tail
	return top
}

// pruneDead discards cancelled slots from the head of the queue so that
// peeking callers (Horizon checks, RunUntil) see the next live event.
func (s *Sim) pruneDead() {
	for len(s.queue) > 0 && !s.queue[0].ev.queued {
		slot := s.popSlot()
		slot.ev.s = nil
		s.dead--
	}
}

// compact drops every cancelled slot and re-heapifies in place.
func (s *Sim) compact() {
	q := s.queue
	n := 0
	for i := range q {
		if q[i].ev.queued {
			q[n] = q[i]
			n++
		} else {
			q[i].ev.s = nil
		}
	}
	clear(q[n:])
	s.queue = q[:n]
	s.dead = 0
	// Careful with n < 2: Go truncates (n-2)/4 toward zero, so an empty
	// queue would still enter the loop at i == 0 and index q[0].
	for i := (n - 2) / 4; n > 1 && i >= 0; i-- {
		s.siftDownFrom(i)
	}
}

// siftDownFrom restores the heap property below slot i.
func (s *Sim) siftDownFrom(i int) {
	q := s.queue
	last := len(q)
	n := q[i]
	for {
		c := 4*i + 1
		if c >= last {
			break
		}
		m := c
		end := min(c+4, last)
		for j := c + 1; j < end; j++ {
			if slotLess(&q[j], &q[m]) {
				m = j
			}
		}
		if !slotLess(&q[m], &n) {
			break
		}
		q[i] = q[m]
		i = m
	}
	q[i] = n
}

// Sim is a discrete-event simulator with a virtual clock.
// The zero value is not usable; construct with New.
//
//repolint:pooled
type Sim struct {
	now     time.Duration
	queue   []heapSlot
	live    int    // queued (non-cancelled) events
	dead    int    // cancelled slots still in the queue
	seq     uint64 // last assigned scheduling sequence number
	curSeq  uint64
	rng     *rand.Rand //repolint:keep wraps src, which Reset reseeds in place
	src     Source     //repolint:keep reseeded in place by Reset; captured by Snapshot
	running bool       //repolint:keep Reset panics mid-Run, so this is always false when it returns
	stop    bool       //repolint:keep cleared by Run on entry; transient within one Run call
	free    []*Event   // recycled AtCall events
	// Limit bounds the number of events processed by Run as a runaway
	// guard. Zero means the default of 50 million events.
	Limit int
	// Horizon, when non-zero, stops Run once the clock passes it.
	Horizon time.Duration
}

// New returns a simulator whose random source is seeded with seed.
func New(seed int64) *Sim {
	s := &Sim{}
	s.src.Seed64(seed)
	s.rng = rand.New(&s.src)
	return s
}

// Reset returns the simulator to its post-New(seed) state while keeping
// the allocated event-queue capacity and the AtCall free list, so a
// reused Sim schedules events without re-growing either. Any events
// still queued are discarded (their callbacks never fire). The random
// stream is reseeded, so a Reset(seed) run is bit-identical to a run on
// a fresh New(seed) simulator.
func (s *Sim) Reset(seed int64) {
	if s.running {
		panic("sim: Reset called while running")
	}
	q := s.queue
	for i := range q {
		e := q[i].ev
		q[i] = heapSlot{}
		pooled := e.pooled
		e.reset()
		if pooled {
			s.free = append(s.free, e)
		}
	}
	s.queue = s.queue[:0]
	s.live, s.dead = 0, 0
	s.now, s.seq, s.curSeq = 0, 0, 0
	s.Limit, s.Horizon = 0, 0
	s.stop = false
	s.src.Seed64(seed)
}

// Now returns the current virtual time.
func (s *Sim) Now() time.Duration { return s.now }

// Rand returns the simulator's deterministic random source.
func (s *Sim) Rand() *rand.Rand { return s.rng }

// At schedules fn to run at absolute virtual time t. Scheduling in the past
// panics: that is always a logic error in a discrete-event model.
func (s *Sim) At(t time.Duration, fn func()) *Event {
	if t < s.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, s.now))
	}
	s.seq++
	e := &Event{at: t, fn: fn, s: s}
	s.pushEvent(t, s.seq, e)
	return e
}

// AtCall schedules cb(arg) at absolute virtual time t. Unlike At it
// returns no handle (the event cannot be cancelled) and the Event struct
// is pooled: hot-path schedulers use it with a static callback so a
// scheduled event costs zero heap allocations. arg should be a pointer
// (or other pointer-shaped value) to stay allocation-free.
//
//repolint:hotpath
func (s *Sim) AtCall(t time.Duration, cb func(any), arg any) {
	if t < s.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, s.now))
	}
	s.seq++
	var e *Event
	if n := len(s.free); n > 0 {
		e = s.free[n-1]
		s.free[n-1] = nil
		s.free = s.free[:n-1]
	} else {
		e = &Event{}
	}
	e.at, e.cb, e.arg, e.s, e.pooled = t, cb, arg, s, true
	s.pushEvent(t, s.seq, e)
}

// After schedules fn to run d from now. Negative d is treated as zero.
func (s *Sim) After(d time.Duration, fn func()) *Event {
	if d < 0 {
		d = 0
	}
	return s.At(s.now+d, fn)
}

// Post schedules fn to run "immediately" (at the current time, after any
// events already queued for the current instant).
func (s *Sim) Post(fn func()) *Event { return s.At(s.now, fn) }

// Pending reports the number of events currently queued. Cancelled
// events never count (their slots are discarded lazily, but the count is
// maintained eagerly).
func (s *Sim) Pending() int { return s.live }

// ReserveSeq consumes and returns the next scheduling sequence number
// without queueing an event. It exists for schedulers that replace a
// formerly scheduled event with lazy bookkeeping (netem's merged
// queue-release accounting) but must keep the tie-break ordering of every
// remaining event bit-identical to the event-per-release implementation.
func (s *Sim) ReserveSeq() uint64 {
	s.seq++
	return s.seq
}

// CurrentSeq returns the sequence number of the event currently being
// executed (zero before the first event fires). Together with ReserveSeq
// it lets lazy bookkeeping decide whether a virtual event "already fired"
// at the current instant exactly as a real event would have.
func (s *Sim) CurrentSeq() uint64 { return s.curSeq }

// Step executes the single next event, advancing the clock.
// It returns false when the queue is empty.
//
//repolint:hotpath
func (s *Sim) Step() bool {
	for {
		if len(s.queue) == 0 {
			return false
		}
		slot := s.popSlot()
		e := slot.ev
		if !e.queued {
			// Cancelled after scheduling: discard the slot.
			e.s = nil
			s.dead--
			continue
		}
		e.queued = false
		s.live--
		s.now = slot.at
		s.curSeq = slot.seq
		if l := e.lane; l != nil {
			// Lane sentinel: execute the lane head, then re-register the
			// next head (if any) before running the callback so the
			// callback can append to the lane.
			le := l.pop()
			if l.n > 0 {
				l.arm()
			} else {
				l.armed = false
			}
			le.cb(le.arg)
		} else if e.pooled {
			cb, arg := e.cb, e.arg
			e.reset()
			s.free = append(s.free, e)
			cb(arg)
		} else {
			e.fn()
		}
		return true
	}
}

// Stop asks the current Run call to return after the event being
// executed completes, leaving the remaining queue intact. The simulation
// is then quiescent — no callback is mid-flight — which is the state
// Snapshot requires. A subsequent Run picks up exactly where the stopped
// one left off.
func (s *Sim) Stop() { s.stop = true }

// Run executes events until the queue drains, Stop is called, the event
// limit is hit, or the horizon (if set) is passed. It returns the number
// of events executed.
func (s *Sim) Run() int {
	if s.running {
		panic("sim: Run called reentrantly")
	}
	s.running = true
	s.stop = false
	defer func() { s.running = false }()
	limit := s.Limit
	if limit == 0 {
		limit = 50_000_000
	}
	n := 0
	for n < limit {
		if s.Horizon > 0 {
			s.pruneDead()
			// Peek: stop before executing events past the horizon.
			if len(s.queue) > 0 && s.queue[0].at > s.Horizon {
				return n
			}
		}
		if !s.Step() {
			return n
		}
		n++
		if s.stop {
			s.stop = false
			return n
		}
	}
	return n
}

// RunUntil executes events with timestamps <= t and then advances the clock
// to exactly t.
func (s *Sim) RunUntil(t time.Duration) {
	for {
		s.pruneDead()
		if len(s.queue) == 0 || s.queue[0].at > t {
			break
		}
		s.Step()
	}
	if t > s.now {
		s.now = t
	}
}

// QueueLen reports the raw slot count including lazily-cancelled slots
// (diagnostics; Pending is the live count).
func (s *Sim) QueueLen() int { return len(s.queue) }
