// Package sim provides a deterministic discrete-event simulation kernel.
//
// All emulated components in the testbed (links, TCP-like transports, the
// HTTP/2 endpoints and the browser model) run on a single virtual clock
// owned by a Sim. Events are executed in strict timestamp order; ties are
// broken by scheduling order, which makes every run bit-for-bit
// reproducible for a given seed.
//
// # Scheduling APIs and allocation
//
// At/After/Post take a plain closure and return an *Event handle the
// caller may Cancel; these events are heap-allocated and never reused, so
// a stale handle can never observe an unrelated event. AtCall is the
// hot-path variant: it takes a static callback plus an argument value,
// returns no handle, and recycles the Event struct through a free list
// once the event fires. Schedulers that post thousands of events per
// simulated page load (the netem data plane) use AtCall to avoid both
// the per-event closure and the per-event heap allocation.
package sim

import (
	"fmt"
	"math/rand"
	"time"
)

// Event is a scheduled callback. It is owned by the Sim that created it.
//
//repolint:pooled
type Event struct {
	at  time.Duration //repolint:keep overwritten by At/AtCall when the event is reused
	seq uint64        //repolint:keep overwritten by At/AtCall when the event is reused
	fn  func()

	// Pooled (AtCall) events carry a static callback + argument instead
	// of a closure and are recycled after firing.
	cb     func(any)
	arg    any
	pooled bool

	s     *Sim //repolint:keep rebound by pushEvent; never read while free
	index int  // heap index, -1 when not queued
}

// reset clears the callback state so a recycled Event pins nothing for
// the garbage collector; the scheduling fields (at, seq, s) are
// overwritten wholesale when the event is reused.
func (e *Event) reset() {
	e.fn, e.cb, e.arg, e.pooled = nil, nil, nil, false
	e.index = -1
}

// At returns the virtual time the event is scheduled for.
func (e *Event) At() time.Duration { return e.at }

// Cancel removes a pending event from the queue, so it neither fires nor
// counts against Pending. Cancelling an event that already fired (or was
// already cancelled) is a no-op.
func (e *Event) Cancel() {
	if e.index >= 0 {
		e.s.removeEvent(e.index)
	}
}

// The event queue is a hand-rolled 4-ary min-heap ordered by (at, seq).
// The ordering is a strict total order (seq is unique), so the sequence
// of popped events — and therefore every simulation — is identical to
// any other correct priority queue; the wider fan-out just halves the
// tree depth, which measurably cuts the pop cost that dominates a
// steady-state run once per-run setup is amortized away.

type eventHeap []*Event

func eventLess(a, b *Event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

//repolint:hotpath
func (s *Sim) pushEvent(e *Event) {
	s.queue = append(s.queue, e)
	e.index = len(s.queue) - 1
	s.siftUp(e.index)
}

//repolint:hotpath
func (s *Sim) popEvent() *Event {
	q := s.queue
	last := len(q) - 1
	e := q[0]
	q[0] = q[last]
	q[last] = nil
	s.queue = q[:last]
	if last > 0 {
		q[0].index = 0
		s.siftDown(0)
	}
	e.index = -1
	return e
}

func (s *Sim) removeEvent(i int) {
	q := s.queue
	last := len(q) - 1
	e := q[i]
	q[i] = q[last]
	q[last] = nil
	s.queue = q[:last]
	if i < last {
		q[i].index = i
		if !s.siftDown(i) {
			s.siftUp(i)
		}
	}
	e.index = -1
}

//repolint:hotpath
func (s *Sim) siftUp(i int) {
	q := s.queue
	e := q[i]
	for i > 0 {
		p := (i - 1) / 4
		if !eventLess(e, q[p]) {
			break
		}
		q[i] = q[p]
		q[i].index = i
		i = p
	}
	q[i] = e
	e.index = i
}

// siftDown restores the heap below i and reports whether the event
// moved (Cancel uses that to decide whether to sift up instead).
//
//repolint:hotpath
func (s *Sim) siftDown(i int) bool {
	q := s.queue
	n := len(q)
	e := q[i]
	i0 := i
	for {
		c := 4*i + 1
		if c >= n {
			break
		}
		m := c
		end := min(c+4, n)
		for j := c + 1; j < end; j++ {
			if eventLess(q[j], q[m]) {
				m = j
			}
		}
		if !eventLess(q[m], e) {
			break
		}
		q[i] = q[m]
		q[i].index = i
		i = m
	}
	q[i] = e
	e.index = i
	return i > i0
}

// Sim is a discrete-event simulator with a virtual clock.
// The zero value is not usable; construct with New.
//
//repolint:pooled
type Sim struct {
	now     time.Duration
	queue   eventHeap
	seq     uint64
	curSeq  uint64
	rng     *rand.Rand //repolint:keep wraps src, which Reset reseeds in place
	src     rand.Source
	running bool     //repolint:keep Reset panics mid-Run, so this is always false when it returns
	free    []*Event // recycled AtCall events
	// Limit bounds the number of events processed by Run as a runaway
	// guard. Zero means the default of 50 million events.
	Limit int
	// Horizon, when non-zero, stops Run once the clock passes it.
	Horizon time.Duration
}

// New returns a simulator whose random source is seeded with seed.
func New(seed int64) *Sim {
	src := rand.NewSource(seed)
	return &Sim{rng: rand.New(src), src: src}
}

// Reset returns the simulator to its post-New(seed) state while keeping
// the allocated event-queue capacity and the AtCall free list, so a
// reused Sim schedules events without re-growing either. Any events
// still queued are discarded (their callbacks never fire). The random
// stream is reseeded, so a Reset(seed) run is bit-identical to a run on
// a fresh New(seed) simulator.
func (s *Sim) Reset(seed int64) {
	if s.running {
		panic("sim: Reset called while running")
	}
	for _, e := range s.queue {
		pooled := e.pooled
		e.reset()
		if pooled {
			s.free = append(s.free, e)
		}
	}
	s.queue = s.queue[:0]
	s.now, s.seq, s.curSeq = 0, 0, 0
	s.Limit, s.Horizon = 0, 0
	s.src.Seed(seed)
}

// Now returns the current virtual time.
func (s *Sim) Now() time.Duration { return s.now }

// Rand returns the simulator's deterministic random source.
func (s *Sim) Rand() *rand.Rand { return s.rng }

// At schedules fn to run at absolute virtual time t. Scheduling in the past
// panics: that is always a logic error in a discrete-event model.
func (s *Sim) At(t time.Duration, fn func()) *Event {
	if t < s.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, s.now))
	}
	s.seq++
	e := &Event{at: t, seq: s.seq, fn: fn, s: s}
	s.pushEvent(e)
	return e
}

// AtCall schedules cb(arg) at absolute virtual time t. Unlike At it
// returns no handle (the event cannot be cancelled) and the Event struct
// is pooled: hot-path schedulers use it with a static callback so a
// scheduled event costs zero heap allocations. arg should be a pointer
// (or other pointer-shaped value) to stay allocation-free.
//
//repolint:hotpath
func (s *Sim) AtCall(t time.Duration, cb func(any), arg any) {
	if t < s.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, s.now))
	}
	s.seq++
	var e *Event
	if n := len(s.free); n > 0 {
		e = s.free[n-1]
		s.free[n-1] = nil
		s.free = s.free[:n-1]
	} else {
		e = &Event{}
	}
	e.at, e.seq, e.cb, e.arg, e.s, e.pooled = t, s.seq, cb, arg, s, true
	s.pushEvent(e)
}

// After schedules fn to run d from now. Negative d is treated as zero.
func (s *Sim) After(d time.Duration, fn func()) *Event {
	if d < 0 {
		d = 0
	}
	return s.At(s.now+d, fn)
}

// Post schedules fn to run "immediately" (at the current time, after any
// events already queued for the current instant).
func (s *Sim) Post(fn func()) *Event { return s.At(s.now, fn) }

// Pending reports the number of events currently queued. Cancelled
// events are removed immediately and never counted.
func (s *Sim) Pending() int { return len(s.queue) }

// ReserveSeq consumes and returns the next scheduling sequence number
// without queueing an event. It exists for schedulers that replace a
// formerly scheduled event with lazy bookkeeping (netem's merged
// queue-release accounting) but must keep the tie-break ordering of every
// remaining event bit-identical to the event-per-release implementation.
func (s *Sim) ReserveSeq() uint64 {
	s.seq++
	return s.seq
}

// CurrentSeq returns the sequence number of the event currently being
// executed (zero before the first event fires). Together with ReserveSeq
// it lets lazy bookkeeping decide whether a virtual event "already fired"
// at the current instant exactly as a real event would have.
func (s *Sim) CurrentSeq() uint64 { return s.curSeq }

// Step executes the single next event, advancing the clock.
// It returns false when the queue is empty.
//
//repolint:hotpath
func (s *Sim) Step() bool {
	if len(s.queue) == 0 {
		return false
	}
	e := s.popEvent()
	s.now = e.at
	s.curSeq = e.seq
	if e.pooled {
		cb, arg := e.cb, e.arg
		e.reset()
		s.free = append(s.free, e)
		cb(arg)
	} else {
		e.fn()
	}
	return true
}

// Run executes events until the queue drains, the event limit is hit, or
// the horizon (if set) is passed. It returns the number of events executed.
func (s *Sim) Run() int {
	if s.running {
		panic("sim: Run called reentrantly")
	}
	s.running = true
	defer func() { s.running = false }()
	limit := s.Limit
	if limit == 0 {
		limit = 50_000_000
	}
	n := 0
	for n < limit {
		if s.Horizon > 0 && len(s.queue) > 0 {
			// Peek: stop before executing events past the horizon.
			if s.queue[0].at > s.Horizon {
				return n
			}
		}
		if !s.Step() {
			return n
		}
		n++
	}
	return n
}

// RunUntil executes events with timestamps <= t and then advances the clock
// to exactly t.
func (s *Sim) RunUntil(t time.Duration) {
	for len(s.queue) > 0 && s.queue[0].at <= t {
		s.Step()
	}
	if t > s.now {
		s.now = t
	}
}
