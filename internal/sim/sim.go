// Package sim provides a deterministic discrete-event simulation kernel.
//
// All emulated components in the testbed (links, TCP-like transports, the
// HTTP/2 endpoints and the browser model) run on a single virtual clock
// owned by a Sim. Events are executed in strict timestamp order; ties are
// broken by scheduling order, which makes every run bit-for-bit
// reproducible for a given seed.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"time"
)

// Event is a scheduled callback. It is owned by the Sim that created it.
type Event struct {
	at     time.Duration
	seq    uint64
	fn     func()
	index  int // heap index, -1 when not queued
	cancel bool
}

// At returns the virtual time the event is scheduled for.
func (e *Event) At() time.Duration { return e.at }

// Cancel prevents a pending event from firing. Cancelling an event that
// already fired is a no-op.
func (e *Event) Cancel() {
	e.cancel = true
}

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// Sim is a discrete-event simulator with a virtual clock.
// The zero value is not usable; construct with New.
type Sim struct {
	now     time.Duration
	queue   eventHeap
	seq     uint64
	rng     *rand.Rand
	running bool
	// Limit bounds the number of events processed by Run as a runaway
	// guard. Zero means the default of 50 million events.
	Limit int
	// Horizon, when non-zero, stops Run once the clock passes it.
	Horizon time.Duration
}

// New returns a simulator whose random source is seeded with seed.
func New(seed int64) *Sim {
	return &Sim{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time.
func (s *Sim) Now() time.Duration { return s.now }

// Rand returns the simulator's deterministic random source.
func (s *Sim) Rand() *rand.Rand { return s.rng }

// At schedules fn to run at absolute virtual time t. Scheduling in the past
// panics: that is always a logic error in a discrete-event model.
func (s *Sim) At(t time.Duration, fn func()) *Event {
	if t < s.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, s.now))
	}
	s.seq++
	e := &Event{at: t, seq: s.seq, fn: fn}
	heap.Push(&s.queue, e)
	return e
}

// After schedules fn to run d from now. Negative d is treated as zero.
func (s *Sim) After(d time.Duration, fn func()) *Event {
	if d < 0 {
		d = 0
	}
	return s.At(s.now+d, fn)
}

// Post schedules fn to run "immediately" (at the current time, after any
// events already queued for the current instant).
func (s *Sim) Post(fn func()) *Event { return s.At(s.now, fn) }

// Pending reports the number of events currently queued (including
// cancelled events that have not yet been discarded).
func (s *Sim) Pending() int { return len(s.queue) }

// Step executes the single next event, advancing the clock.
// It returns false when the queue is empty.
func (s *Sim) Step() bool {
	for len(s.queue) > 0 {
		e := heap.Pop(&s.queue).(*Event)
		if e.cancel {
			continue
		}
		s.now = e.at
		e.fn()
		return true
	}
	return false
}

// Run executes events until the queue drains, the event limit is hit, or
// the horizon (if set) is passed. It returns the number of events executed.
func (s *Sim) Run() int {
	if s.running {
		panic("sim: Run called reentrantly")
	}
	s.running = true
	defer func() { s.running = false }()
	limit := s.Limit
	if limit == 0 {
		limit = 50_000_000
	}
	n := 0
	for n < limit {
		if s.Horizon > 0 && len(s.queue) > 0 {
			// Peek: stop before executing events past the horizon.
			if s.queue[0].at > s.Horizon {
				return n
			}
		}
		if !s.Step() {
			return n
		}
		n++
	}
	return n
}

// RunUntil executes events with timestamps <= t and then advances the clock
// to exactly t.
func (s *Sim) RunUntil(t time.Duration) {
	for len(s.queue) > 0 && s.queue[0].at <= t {
		s.Step()
	}
	if t > s.now {
		s.now = t
	}
}
