package corpus

import (
	"strings"
	"testing"

	"repro/internal/htmlx"
	"repro/internal/page"
)

func TestBuilderProducesParseableHTML(t *testing.T) {
	b := NewPage("t.test")
	b.CSS("/a.css", "body{margin:0}")
	b.Script("/b.js", 1000, 5, true, false)
	b.Image("/c.png", 100, 200, 5000)
	b.Text(300, "intro")
	site := b.Build("t")
	base := site.DB.Lookup("t.test", "/")
	if base == nil {
		t.Fatal("base document missing")
	}
	doc := htmlx.Parse(base.Body)
	if len(doc.Resources) != 3 {
		t.Fatalf("resources = %v", doc.ExternalURLs())
	}
	// All referenced resources resolvable in the DB.
	for _, u := range doc.ExternalURLs() {
		pu, err := page.ParseURL(u, site.Base)
		if err != nil {
			t.Fatalf("bad URL %q: %v", u, err)
		}
		if site.DB.Lookup(pu.Authority, pu.Path) == nil {
			t.Errorf("referenced %s not in DB", u)
		}
	}
}

func TestBuilderMetaRecorded(t *testing.T) {
	b := NewPage("t.test")
	b.Script("/x.js", 2048, 123, true, false)
	b.Image("/y.png", 640, 480, 100)
	site := b.Build("t")
	js := site.DB.Lookup("t.test", "/x.js")
	if js == nil || js.Meta.ExecMS != 123 {
		t.Fatalf("js meta = %+v", js)
	}
	img := site.DB.Lookup("t.test", "/y.png")
	if img == nil || img.Meta.Width != 640 {
		t.Fatalf("img meta = %+v", img)
	}
	if len(js.Body) < 2000 || len(js.Body) > 2100 {
		t.Fatalf("js body size %d", len(js.Body))
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(RandomProfile(), 3, 42)
	b := Generate(RandomProfile(), 3, 42)
	if a.DB.Len() != b.DB.Len() {
		t.Fatalf("lengths differ: %d vs %d", a.DB.Len(), b.DB.Len())
	}
	ea, eb := a.DB.Entries(), b.DB.Entries()
	for i := range ea {
		if ea[i].URL != eb[i].URL || len(ea[i].Body) != len(eb[i].Body) {
			t.Fatalf("entry %d differs", i)
		}
	}
	c := Generate(RandomProfile(), 4, 42)
	if c.DB.Len() == a.DB.Len() {
		t.Log("two indices coincidentally equal in object count (fine)")
	}
}

func TestGenerateSetPushableDistribution(t *testing.T) {
	// The calibrated property from Sec. 4.2: roughly 52% (top) and 24%
	// (random) of sites have <20% pushable objects.
	check := func(prof Profile, wantLow float64) {
		sites := GenerateSet(prof, 100, 7)
		low := 0
		for _, s := range sites {
			if s.PushableFraction() < 0.20 {
				low++
			}
		}
		got := float64(low) / 100
		if got < wantLow-0.15 || got > wantLow+0.15 {
			t.Errorf("%s: %.0f%% of sites <20%% pushable, want ~%.0f%%",
				prof.Name, got*100, wantLow*100)
		}
	}
	check(TopProfile(), 0.52)
	check(RandomProfile(), 0.24)
}

func TestGenerateSitesAreLoadable(t *testing.T) {
	// Structural sanity of generated sites: base parses, has resources,
	// object mix looks web-like.
	for i := 0; i < 5; i++ {
		site := Generate(RandomProfile(), i, 11)
		entry := site.DB.Lookup(site.Base.Authority, site.Base.Path)
		if entry == nil {
			t.Fatalf("site %d: no base entry", i)
		}
		doc := htmlx.Parse(entry.Body)
		if len(doc.Resources) < 5 {
			t.Errorf("site %d: only %d references", i, len(doc.Resources))
		}
		kinds := map[page.Kind]int{}
		for _, e := range site.DB.Entries() {
			kinds[e.Kind()]++
		}
		if kinds[page.KindCSS] == 0 || kinds[page.KindJS] == 0 || kinds[page.KindImage] == 0 {
			t.Errorf("site %d: kind mix %v", i, kinds)
		}
	}
}

func TestSyntheticSites(t *testing.T) {
	sites := SyntheticSites()
	if len(sites) != 10 {
		t.Fatalf("synthetic sites = %d", len(sites))
	}
	for _, s := range sites {
		if s.DB.Lookup(s.Base.Authority, s.Base.Path) == nil {
			t.Errorf("%s: missing base", s.Name)
		}
		// Single server: everything pushable (Sec. 4.3 relocation).
		if got := s.PushableFraction(); got != 1.0 {
			t.Errorf("%s: pushable fraction %.2f, want 1.0 (single server)", s.Name, got)
		}
	}
}

func TestPopularSites(t *testing.T) {
	sites := PopularSites()
	if len(sites) != 20 {
		t.Fatalf("popular sites = %d", len(sites))
	}
	byID := map[string]int{}
	for i, s := range sites {
		byID[strings.SplitN(s.Name, "-", 2)[0]] = i
		if s.DB.Lookup(s.Base.Authority, s.Base.Path) == nil {
			t.Errorf("%s: missing base", s.Name)
		}
	}
	// w1 wikipedia: large HTML (~236KB).
	w1 := sites[byID["w1"]]
	html := w1.DB.Lookup(w1.Base.Authority, w1.Base.Path)
	if len(html.Body) < 200*1024 {
		t.Errorf("w1 HTML only %d bytes", len(html.Body))
	}
	// w17 cnn: by far the most objects and hosts.
	w17 := sites[byID["w17"]]
	if w17.DB.Len() < 200 {
		t.Errorf("w17 objects = %d, want >200", w17.DB.Len())
	}
	if len(w17.Hosts()) < 50 {
		t.Errorf("w17 hosts = %d, want >50", len(w17.Hosts()))
	}
	// w5 craigslist: tiny.
	w5 := sites[byID["w5"]]
	if w5.DB.Len() > 12 {
		t.Errorf("w5 objects = %d, want <=12", w5.DB.Len())
	}
	// w8 bestbuy: merged host shares the base connection.
	w8 := sites[byID["w8"]]
	if w8.ConnKey("bestbuy.com") != w8.ConnKey("img.bestbuy-static.com") {
		t.Error("w8 merged host not coalesced")
	}
}

func TestPopularSiteByID(t *testing.T) {
	if PopularSite("w16") == nil {
		t.Fatal("w16 missing")
	}
	if PopularSite("w99") != nil {
		t.Fatal("w99 exists")
	}
	if len(PopularSiteIDs()) != 20 {
		t.Fatal("ids != 20")
	}
}

func TestFillerHelpers(t *testing.T) {
	if len(filler(100)) != 100 {
		t.Fatal("filler size")
	}
	if filler(0) != nil {
		t.Fatal("filler(0)")
	}
	js := jsFiller(500)
	if len(js) != 500 || !strings.Contains(string(js), "function") {
		t.Fatalf("jsFiller: %d bytes", len(js))
	}
	if len(textFiller(77)) != 77 {
		t.Fatal("textFiller size")
	}
	css := SimpleCSS([]string{"a", "b"}, 3)
	if !strings.Contains(css, ".a{") || !strings.Contains(css, ".unused-2") {
		t.Fatalf("SimpleCSS output: %s", css)
	}
}
