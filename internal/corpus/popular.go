package corpus

import (
	"fmt"
	"math/rand"

	"repro/internal/replay"
)

// popSpec parameterizes one modelled popular website (Table 1 of the
// paper, w1-w20). The structural features come from the paper's Sec. 5
// case-study descriptions; sites the paper does not detail get plausible
// models consistent with their aggregate figures (request counts, server
// counts). The models replace the paper's recorded Alexa sites, which
// cannot be redistributed; see README.md.
type popSpec struct {
	id, name string
	htmlKB   int // approximate document size as served
	// head resources
	headCSSKB    []int
	headJSKB     []int
	headJSExecMS float64
	// body resources
	bodyJSKB    []int
	lateJSKB    int // blocking JS referenced late in <body> (w5/s5 pattern)
	inlineJSKB  int // JS inlined into the document (w10 pattern)
	atfImages   int
	belowImages int
	imgKB       int
	fonts       int
	// already ships an inlined critical CSS (w16 pattern)
	preOptimized bool
	// deployment
	thirdHosts   int
	thirdObjects int
	mergedHosts  int // same-infrastructure hosts merged onto the base server
}

var popSpecs = []popSpec{
	// w1 wikipedia (article): very large HTML, CSS render-blocking, one
	// blocking JS, two ATF images, almost everything first-party.
	{id: "w1", name: "wikipedia", htmlKB: 236, headCSSKB: []int{55}, headJSKB: []int{28},
		headJSExecMS: 40, atfImages: 2, belowImages: 6, imgKB: 35},
	// w2 apple: several CSS in head blocking JS execution and DOM
	// construction.
	{id: "w2", name: "apple", htmlKB: 60, headCSSKB: []int{80, 60, 45}, headJSKB: []int{95},
		headJSExecMS: 70, atfImages: 3, belowImages: 10, imgKB: 90, mergedHosts: 1},
	// w3 yahoo: portal, many objects, mixed hosting.
	{id: "w3", name: "yahoo", htmlKB: 150, headCSSKB: []int{70}, headJSKB: []int{60, 40},
		headJSExecMS: 60, bodyJSKB: []int{50, 35}, atfImages: 4, belowImages: 18, imgKB: 45,
		thirdHosts: 12, thirdObjects: 30},
	// w4 amazon: large, image heavy, sprites, moderate third-party.
	{id: "w4", name: "amazon", htmlKB: 190, headCSSKB: []int{90}, headJSKB: []int{45},
		headJSExecMS: 50, bodyJSKB: []int{80, 60, 40}, atfImages: 6, belowImages: 24, imgKB: 40,
		thirdHosts: 6, thirdObjects: 14, mergedHosts: 1},
	// w5 craigslist: 8 requests, one server, tiny.
	{id: "w5", name: "craigslist", htmlKB: 30, headCSSKB: []int{15}, headJSKB: []int{12},
		headJSExecMS: 10, atfImages: 1, belowImages: 3, imgKB: 8},
	// w6 chase: bank landing page, moderate, some third-party.
	{id: "w6", name: "chase", htmlKB: 70, headCSSKB: []int{65, 30}, headJSKB: []int{85},
		headJSExecMS: 80, atfImages: 2, belowImages: 6, imgKB: 60, thirdHosts: 5, thirdObjects: 10},
	// w7 reddit: large blocking JS in the head dominates the critical
	// path; 87KB of CSS.
	{id: "w7", name: "reddit", htmlKB: 95, headCSSKB: []int{87}, headJSKB: []int{240},
		headJSExecMS: 320, atfImages: 3, belowImages: 14, imgKB: 25, thirdHosts: 4, thirdObjects: 8},
	// w8 bestbuy: like w7 plus a merged image host.
	{id: "w8", name: "bestbuy", htmlKB: 120, headCSSKB: []int{75}, headJSKB: []int{190},
		headJSExecMS: 260, atfImages: 4, belowImages: 16, imgKB: 50, thirdHosts: 6,
		thirdObjects: 12, mergedHosts: 1},
	// w9 paypal: no blocking code until the end of the HTML; benefits
	// from pushing everything.
	{id: "w9", name: "paypal", htmlKB: 45, headCSSKB: []int{40}, lateJSKB: 70,
		atfImages: 2, belowImages: 4, imgKB: 55},
	// w10 walmart: lots of images causing bandwidth contention between
	// push streams; a large portion of JS inlined into the HTML.
	{id: "w10", name: "walmart", htmlKB: 160, headCSSKB: []int{60}, inlineJSKB: 110,
		atfImages: 8, belowImages: 30, imgKB: 65, thirdHosts: 5, thirdObjects: 10, mergedHosts: 1},
	// w11 aliexpress: shop, many images, moderate scripts.
	{id: "w11", name: "aliexpress", htmlKB: 130, headCSSKB: []int{55}, headJSKB: []int{70},
		headJSExecMS: 55, bodyJSKB: []int{45, 35}, atfImages: 6, belowImages: 22, imgKB: 35,
		thirdHosts: 8, thirdObjects: 16},
	// w12 ebay: shop, mixed.
	{id: "w12", name: "ebay", htmlKB: 110, headCSSKB: []int{70, 25}, headJSKB: []int{55},
		headJSExecMS: 45, bodyJSKB: []int{40}, atfImages: 5, belowImages: 18, imgKB: 45,
		thirdHosts: 6, thirdObjects: 12},
	// w13 yelp: listings, webfont.
	{id: "w13", name: "yelp", htmlKB: 140, headCSSKB: []int{85}, headJSKB: []int{95},
		headJSExecMS: 90, fonts: 1, atfImages: 4, belowImages: 14, imgKB: 30,
		thirdHosts: 7, thirdObjects: 12},
	// w14 youtube: app shell, heavy JS.
	{id: "w14", name: "youtube", htmlKB: 85, headCSSKB: []int{45}, headJSKB: []int{210},
		headJSExecMS: 280, atfImages: 6, belowImages: 20, imgKB: 20, thirdHosts: 3, thirdObjects: 6},
	// w15 microsoft: corporate, moderate everything.
	{id: "w15", name: "microsoft", htmlKB: 65, headCSSKB: []int{50, 20}, headJSKB: []int{40},
		headJSExecMS: 35, atfImages: 3, belowImages: 8, imgKB: 70, thirdHosts: 4, thirdObjects: 8},
	// w16 twitter (profile): already ships an inlined critical CSS; 45KB
	// HTML; pushing 10.2KB of critical resources still helps.
	{id: "w16", name: "twitter", htmlKB: 45, headCSSKB: []int{38}, headJSKB: []int{120},
		headJSExecMS: 150, preOptimized: true, atfImages: 3, belowImages: 10, imgKB: 15},
	// w17 cnn: 369 requests to 81 servers; effects dilute in the page's
	// complexity.
	{id: "w17", name: "cnn", htmlKB: 170, headCSSKB: []int{95, 40}, headJSKB: []int{110, 70},
		headJSExecMS: 120, bodyJSKB: []int{60, 45, 30}, fonts: 2, atfImages: 6,
		belowImages: 40, imgKB: 35, thirdHosts: 78, thirdObjects: 300},
	// w18 wellsfargo: bank, conservative.
	{id: "w18", name: "wellsfargo", htmlKB: 55, headCSSKB: []int{45}, headJSKB: []int{65},
		headJSExecMS: 60, atfImages: 2, belowImages: 5, imgKB: 50, thirdHosts: 3, thirdObjects: 6},
	// w19 bankofamerica: bank, slightly heavier.
	{id: "w19", name: "bankofamerica", htmlKB: 75, headCSSKB: []int{60, 25}, headJSKB: []int{80},
		headJSExecMS: 75, atfImages: 2, belowImages: 6, imgKB: 55, thirdHosts: 4, thirdObjects: 8},
	// w20 nytimes: news, webfonts, many third-party objects.
	{id: "w20", name: "nytimes", htmlKB: 145, headCSSKB: []int{75}, headJSKB: []int{90},
		headJSExecMS: 100, bodyJSKB: []int{55, 40}, fonts: 2, atfImages: 5, belowImages: 24,
		imgKB: 40, thirdHosts: 14, thirdObjects: 40},
}

// PopularSites builds the w1-w20 models.
func PopularSites() []*replay.Site {
	out := make([]*replay.Site, 0, len(popSpecs))
	for _, spec := range popSpecs {
		out = append(out, buildPopular(spec))
	}
	return out
}

// PopularSite returns one site by id ("w1".."w20"), or nil.
func PopularSite(id string) *replay.Site {
	for _, spec := range popSpecs {
		if spec.id == id {
			return buildPopular(spec)
		}
	}
	return nil
}

func buildPopular(spec popSpec) *replay.Site {
	rng := rand.New(rand.NewSource(int64(len(spec.name)) * 7919))
	host := spec.name + ".com"
	b := NewPage(host).Title(spec.name)

	classes := []string{"hero", "masthead", "nav", "article", "aside", "footer-links"}
	var fontCSS string
	for f := 0; f < spec.fonts; f++ {
		fam := fmt.Sprintf("Brand%d", f)
		fURL := b.Font(fmt.Sprintf("/fonts/brand%d.woff2", f), 55*1024)
		fontCSS += FontFaceCSS(fam, fURL)
	}
	if spec.preOptimized {
		// The site already inlines its critical CSS in <head>.
		b.RawHead("<style>" + SimpleCSS(classes[:3], 8) + "</style>\n")
	}
	for i, kb := range spec.headCSSKB {
		css := SimpleCSS(classes, kb*1024/90)
		if i == 0 {
			css = fontCSS + css
		}
		b.CSS(fmt.Sprintf("/css/style%d.css", i), css)
	}
	for i, kb := range spec.headJSKB {
		exec := spec.headJSExecMS
		if i > 0 {
			exec /= 2
		}
		b.Script(fmt.Sprintf("/js/head%d.js", i), kb*1024, exec, true, false)
	}
	if spec.inlineJSKB > 0 {
		b.InlineScript(spec.inlineJSKB*1024, false)
	}

	// ATF content.
	b.Div("masthead", 100)
	for i := 0; i < spec.atfImages; i++ {
		w := 1280 / maxInt(1, spec.atfImages)
		b.Image(fmt.Sprintf("/img/atf%d.jpg", i), w, 300, spec.imgKB*1024)
	}
	fontClass := []string{"article"}
	if spec.fonts > 0 {
		fontClass = append(fontClass, "wf-Brand0")
	}
	b.Text(800, fontClass...)

	// Below the fold.
	mergedHost := ""
	if spec.mergedHosts > 0 {
		mergedHost = "img." + spec.name + "-static.com"
	}
	for i := 0; i < spec.belowImages; i++ {
		h := host
		if mergedHost != "" && i%2 == 0 {
			h = mergedHost
		}
		b.ImageOn(h, fmt.Sprintf("/img/btf%d.jpg", i), 400, 300, spec.imgKB*1024)
		if i%4 == 3 {
			b.Text(400, "aside")
		}
	}
	for i, kb := range spec.bodyJSKB {
		b.Script(fmt.Sprintf("/js/body%d.js", i), kb*1024, 20, false, i%2 == 1)
	}

	// Third-party content.
	for i := 0; i < spec.thirdObjects; i++ {
		h := fmt.Sprintf("cdn%d.%s-ext.test", i%maxInt(1, spec.thirdHosts), spec.name)
		switch i % 5 {
		case 0:
			b.ScriptOn(h, fmt.Sprintf("/tp/lib%d.js", i), 20*1024+rng.Intn(40*1024), 15, false, true)
		default:
			b.ImageOn(h, fmt.Sprintf("/tp/ad%d.jpg", i), 300, 250, 10*1024+rng.Intn(60*1024))
		}
	}

	// Late blocking JS (w9 pattern) goes after everything else.
	if spec.lateJSKB > 0 {
		b.Script("/js/late.js", spec.lateJSKB*1024, 60, false, false)
	}

	if cur := len(b.HTML()); cur < spec.htmlKB*1024 {
		b.PadHTML(spec.htmlKB*1024 - cur)
	}
	site := b.Build(spec.id + "-" + spec.name)
	if mergedHost != "" {
		site.MergeHosts(host, mergedHost)
	}
	return site
}

// PopularSiteIDs lists the w-site identifiers in order.
func PopularSiteIDs() []string {
	out := make([]string, len(popSpecs))
	for i, s := range popSpecs {
		out[i] = s.id
	}
	return out
}
