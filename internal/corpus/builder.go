// Package corpus synthesizes replayable websites: an explicit page
// builder for hand-modelled sites (the paper's synthetic s1-s10 set and
// the w1-w20 popular-site models), and a seeded random generator whose
// distributions are calibrated to the paper's crawl observations (object
// mixes, sizes, third-party shares, pushable fractions — Sec. 4.2).
//
// The generator emits real HTML and CSS bytes, so the whole pipeline —
// preload scanning, dependency analysis, critical-CSS extraction,
// interleave offsets — operates on genuine documents rather than
// abstract object lists.
package corpus

import (
	"fmt"
	"strings"

	"repro/internal/page"
	"repro/internal/replay"
)

// PageBuilder assembles one HTML page plus its subresources into a
// replayable Site.
type PageBuilder struct {
	host   string
	scheme string
	title  string

	head, body strings.Builder
	entries    []*replay.Entry
	hostsUsed  map[string]bool

	imgCount, cssCount, jsCount int
}

// NewPage starts a page on the given host, served at /.
func NewPage(host string) *PageBuilder {
	b := &PageBuilder{host: host, scheme: "https", title: host, hostsUsed: map[string]bool{host: true}}
	return b
}

// Title sets the document title.
func (b *PageBuilder) Title(t string) *PageBuilder { b.title = t; return b }

func (b *PageBuilder) addEntry(host, path string, kind page.Kind, body []byte, meta page.Meta) string {
	b.hostsUsed[host] = true
	u := page.URL{Scheme: b.scheme, Authority: host, Path: path}
	b.entries = append(b.entries, &replay.Entry{
		URL: u, Status: 200, ContentType: page.ContentTypeFor(kind),
		Body: body, Meta: meta,
	})
	return u.String()
}

// CSS adds a stylesheet link in <head> served from the base host.
func (b *PageBuilder) CSS(path, css string) *PageBuilder {
	return b.CSSOn(b.host, path, css, false)
}

// CSSOn adds a stylesheet on an arbitrary host; atBodyEnd places the link
// at the end of <body> instead of <head>.
func (b *PageBuilder) CSSOn(host, path, css string, atBodyEnd bool) *PageBuilder {
	b.cssCount++
	b.addEntry(host, path, page.KindCSS, []byte(css), page.Meta{})
	link := fmt.Sprintf("<link rel=\"stylesheet\" href=\"%s\">\n", b.absRef(host, path))
	if atBodyEnd {
		b.body.WriteString(link)
	} else {
		b.head.WriteString(link)
	}
	return b
}

// Script adds an external script of about sizeBytes with extra execution
// cost execMS.
func (b *PageBuilder) Script(path string, sizeBytes int, execMS float64, inHead, async bool) *PageBuilder {
	return b.ScriptOn(b.host, path, sizeBytes, execMS, inHead, async)
}

// ScriptOn adds an external script hosted on host.
func (b *PageBuilder) ScriptOn(host, path string, sizeBytes int, execMS float64, inHead, async bool) *PageBuilder {
	b.jsCount++
	b.addEntry(host, path, page.KindJS, jsFiller(sizeBytes), page.Meta{ExecMS: execMS})
	attr := ""
	if async {
		attr = " async"
	}
	tag := fmt.Sprintf("<script src=\"%s\"%s></script>\n", b.absRef(host, path), attr)
	if inHead {
		b.head.WriteString(tag)
	} else {
		b.body.WriteString(tag)
	}
	return b
}

// InlineScript embeds a script of about sizeBytes directly in the body.
func (b *PageBuilder) InlineScript(sizeBytes int, inHead bool) *PageBuilder {
	code := string(jsFiller(sizeBytes))
	tag := "<script>" + code + "</script>\n"
	if inHead {
		b.head.WriteString(tag)
	} else {
		b.body.WriteString(tag)
	}
	return b
}

// Image adds an <img> with explicit dimensions; sizeBytes is the payload.
func (b *PageBuilder) Image(path string, w, h, sizeBytes int) *PageBuilder {
	return b.ImageOn(b.host, path, w, h, sizeBytes)
}

// ImageOn adds an image hosted on host.
func (b *PageBuilder) ImageOn(host, path string, w, h, sizeBytes int) *PageBuilder {
	b.imgCount++
	b.addEntry(host, path, page.KindImage, filler(sizeBytes), page.Meta{Width: w, Height: h})
	fmt.Fprintf(&b.body, "<img src=\"%s\" width=\"%d\" height=\"%d\">\n", b.absRef(host, path), w, h)
	return b
}

// Font registers a webfont file (referenced from CSS via @font-face).
func (b *PageBuilder) Font(path string, sizeBytes int) string {
	return b.addEntry(b.host, path, page.KindFont, filler(sizeBytes), page.Meta{})
}

// Text appends a text block with the given classes (class "wf-Family"
// requires the webfont Family before the text paints).
func (b *PageBuilder) Text(chars int, classes ...string) *PageBuilder {
	cls := ""
	if len(classes) > 0 {
		cls = fmt.Sprintf(" class=\"%s\"", strings.Join(classes, " "))
	}
	fmt.Fprintf(&b.body, "<p%s>%s</p>\n", cls, textFiller(chars))
	return b
}

// Div opens and closes a div with text content.
func (b *PageBuilder) Div(class string, chars int) *PageBuilder {
	fmt.Fprintf(&b.body, "<div class=\"%s\">%s</div>\n", class, textFiller(chars))
	return b
}

// RawBody appends raw markup to the body (padding, custom structures).
func (b *PageBuilder) RawBody(s string) *PageBuilder { b.body.WriteString(s); return b }

// RawHead appends raw markup to the head.
func (b *PageBuilder) RawHead(s string) *PageBuilder { b.head.WriteString(s); return b }

// PadHTML grows the document by adding comment filler to the body.
func (b *PageBuilder) PadHTML(bytes int) *PageBuilder {
	b.body.WriteString("<!-- ")
	b.body.Write(filler(bytes))
	b.body.WriteString(" -->\n")
	return b
}

func (b *PageBuilder) absRef(host, path string) string {
	if host == b.host {
		return path
	}
	return fmt.Sprintf("%s://%s%s", b.scheme, host, path)
}

// HTML renders the document bytes as they would be served.
func (b *PageBuilder) HTML() []byte {
	var out strings.Builder
	out.WriteString("<!DOCTYPE html>\n<html>\n<head>\n")
	fmt.Fprintf(&out, "<title>%s</title>\n", b.title)
	out.WriteString(b.head.String())
	out.WriteString("</head>\n<body>\n")
	out.WriteString(b.body.String())
	out.WriteString("</body>\n</html>\n")
	return []byte(out.String())
}

// Build assembles the Site. The base document is added last so builder
// mutations up to this point are reflected.
func (b *PageBuilder) Build(name string) *replay.Site {
	db := replay.NewDB()
	base := page.URL{Scheme: b.scheme, Authority: b.host, Path: "/"}
	db.Add(&replay.Entry{
		URL: base, Status: 200,
		ContentType: page.ContentTypeFor(page.KindHTML),
		Body:        b.HTML(),
	})
	for _, e := range b.entries {
		db.Add(e)
	}
	return replay.NewSite(name, base, db)
}

// --- content synthesis ---

// filler produces deterministic compressible payload bytes.
func filler(n int) []byte {
	if n <= 0 {
		return nil
	}
	const chunk = "abcdefghijklmnopqrstuvwxyz0123456789ABCDEFGHIJKLMNOPQRSTUVWXYZ"
	out := make([]byte, n)
	for i := range out {
		out[i] = chunk[i%len(chunk)]
	}
	return out
}

// jsFiller produces syntactically plausible JS of about n bytes.
func jsFiller(n int) []byte {
	var sb strings.Builder
	i := 0
	for sb.Len() < n {
		fmt.Fprintf(&sb, "function f%d(x){return x*%d+1;}\n", i, i)
		i++
	}
	out := sb.String()
	if len(out) > n {
		out = out[:n]
	}
	return []byte(out)
}

// textFiller produces n characters of word-like text.
func textFiller(n int) string {
	const words = "lorem ipsum dolor sit amet consectetur adipiscing elit sed do eiusmod tempor incididunt ut labore "
	var sb strings.Builder
	for sb.Len() < n {
		sb.WriteString(words)
	}
	return sb.String()[:n]
}

// SimpleCSS generates a stylesheet with rules for the given class names
// plus optional bloat rules that match nothing on the page.
func SimpleCSS(classes []string, bloatRules int) string {
	var sb strings.Builder
	for i, c := range classes {
		fmt.Fprintf(&sb, ".%s{color:#%06x;margin:%dpx;padding:4px;display:block;}\n", c, i*1234+0x333333, i%16)
	}
	for i := 0; i < bloatRules; i++ {
		fmt.Fprintf(&sb, ".unused-%d .deep-%d>.child-%d{background:#%06x;border:1px solid #ccc;transform:translate(%dpx,%dpx);}\n",
			i, i, i, i*777+0x111111, i%7, i%11)
	}
	return sb.String()
}

// FontFaceCSS returns an @font-face rule for family served at url.
func FontFaceCSS(family, url string) string {
	return fmt.Sprintf("@font-face{font-family:\"%s\";src:url(%s) format(\"woff2\");}\n.wf-%s{font-family:\"%s\";}\n",
		family, url, family, family)
}
