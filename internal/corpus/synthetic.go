package corpus

import (
	"fmt"

	"repro/internal/replay"
)

// SyntheticSites builds the paper's s1-s10 set (Sec. 4.3): snapshots and
// templates relocated onto a single server. Three of them (s1, s5, s8)
// are described in detail in the case studies; the remainder are common
// templates (blog, shop, gallery, landing, news, docs, forum) with
// varied structure.
func SyntheticSites() []*replay.Site {
	return []*replay.Site{
		s1(), s2(), s3(), s4(), s5(), s6(), s7(), s8(), s9(), s10(),
	}
}

// s1: a loading icon fades and content is shown once the DOM is ready;
// DOM construction is blocked by JS and CSS in the head, plus hidden
// fonts referenced in the CSS. Pushing the blockers (309 KB) performs
// like push all (1057 KB).
func s1() *replay.Site {
	b := NewPage("s1.test").Title("s1 loading-icon app")
	fURL := b.Font("/fonts/app.woff2", 70*1024)
	css := FontFaceCSS("App", fURL) + SimpleCSS([]string{"hero", "content", "spinner"}, 300)
	b.CSS("/css/app.css", css)                               // render blocking, ~30KB
	b.Script("/js/framework.js", 140*1024, 180, true, false) // DOM-blocking
	b.Script("/js/app.js", 60*1024, 90, true, false)
	b.Div("spinner", 40)
	b.Div("hero", 280)
	b.Text(900, "content", "wf-App")
	for i := 0; i < 8; i++ {
		b.Image(fmt.Sprintf("/img/gallery%d.jpg", i), 420, 280, 85*1024)
	}
	b.Text(1200, "content")
	return b.Build("s1")
}

// s5: a blocking JS referenced late in the <body> requires the CSSOM;
// building it takes longer than the transfer — the browser is
// computation-bound, not network-bound. Large HTML leaves no network
// idle time.
func s5() *replay.Site {
	b := NewPage("s5.test").Title("s5 compute-bound page")
	b.CSS("/css/big.css", SimpleCSS([]string{"hero", "grid", "card"}, 1800)) // ~160KB, slow CSSOM
	b.Div("hero", 350)
	b.Image("/img/banner.jpg", 1280, 380, 90*1024)
	b.Text(1500, "grid")
	for i := 0; i < 6; i++ {
		b.Image(fmt.Sprintf("/img/card%d.jpg", i), 400, 260, 45*1024)
		b.Text(300, "card")
	}
	b.PadHTML(140 * 1024)                                        // large HTML: browser can request as fast as push
	b.Script("/js/late-blocking.js", 90*1024, 250, false, false) // late in body
	return b.Build("s5")
}

// s8: the HTML needs multiple round trips; six render-critical resources
// are referenced early, so after the first chunk the browser has already
// issued all the requests push would save.
func s8() *replay.Site {
	b := NewPage("s8.test").Title("s8 early-references page")
	b.CSS("/css/base.css", SimpleCSS([]string{"hero", "nav"}, 80))
	b.CSS("/css/theme.css", SimpleCSS([]string{"theme"}, 60))
	b.Script("/js/a.js", 30*1024, 25, true, false)
	b.Script("/js/b.js", 25*1024, 20, true, false)
	b.Script("/js/c.js", 20*1024, 15, true, false)
	b.Script("/js/d.js", 15*1024, 10, true, false)
	b.Div("hero", 400)
	b.Image("/img/top.jpg", 1280, 350, 70*1024)
	b.Text(1000, "nav")
	b.PadHTML(120 * 1024) // multiple RTTs of HTML after the references
	b.Text(2000, "theme")
	return b.Build("s8")
}

// s2: small blog template — tiny HTML, one CSS, one image.
func s2() *replay.Site {
	b := NewPage("s2.test").Title("s2 blog")
	b.CSS("/css/blog.css", SimpleCSS([]string{"post", "title"}, 60))
	b.Div("title", 80)
	b.Text(2200, "post")
	b.Image("/img/author.png", 120, 120, 12*1024)
	return b.Build("s2")
}

// s3: image-heavy gallery.
func s3() *replay.Site {
	b := NewPage("s3.test").Title("s3 gallery")
	b.CSS("/css/gallery.css", SimpleCSS([]string{"tile", "bar"}, 40))
	b.Div("bar", 60)
	for i := 0; i < 16; i++ {
		b.Image(fmt.Sprintf("/img/photo%02d.jpg", i), 320, 240, 95*1024)
	}
	return b.Build("s3")
}

// s4: shop template — CSS + several JS + product images.
func s4() *replay.Site {
	b := NewPage("s4.test").Title("s4 shop")
	b.CSS("/css/shop.css", SimpleCSS([]string{"product", "cart", "nav"}, 250))
	b.Script("/js/cart.js", 45*1024, 35, true, false)
	b.Div("nav", 120)
	for i := 0; i < 9; i++ {
		b.Image(fmt.Sprintf("/img/prod%d.jpg", i), 300, 300, 40*1024)
		b.Text(180, "product")
	}
	b.Script("/js/recommend.js", 70*1024, 60, false, true)
	return b.Build("s4")
}

// s6: landing page with webfont and async analytics.
func s6() *replay.Site {
	b := NewPage("s6.test").Title("s6 landing")
	fURL := b.Font("/fonts/display.woff2", 48*1024)
	b.CSS("/css/landing.css", FontFaceCSS("Display", fURL)+SimpleCSS([]string{"cta", "hero"}, 90))
	b.Div("hero", 200)
	b.Text(500, "cta", "wf-Display")
	b.Image("/img/product.png", 800, 500, 110*1024)
	b.Script("/js/analytics.js", 25*1024, 10, false, true)
	b.Text(900)
	return b.Build("s6")
}

// s7: news template — mid HTML, early CSS, mixed media.
func s7() *replay.Site {
	b := NewPage("s7.test").Title("s7 news")
	b.CSS("/css/news.css", SimpleCSS([]string{"headline", "teaser", "col"}, 400))
	b.Div("headline", 150)
	b.Image("/img/lead.jpg", 960, 540, 130*1024)
	for i := 0; i < 6; i++ {
		b.Text(400, "teaser")
		b.Image(fmt.Sprintf("/img/teaser%d.jpg", i), 240, 160, 28*1024)
	}
	b.PadHTML(45 * 1024)
	b.Script("/js/live.js", 55*1024, 45, false, false)
	return b.Build("s7")
}

// s9: docs template — text-dominant, no scripts.
func s9() *replay.Site {
	b := NewPage("s9.test").Title("s9 docs")
	b.CSS("/css/docs.css", SimpleCSS([]string{"toc", "content"}, 120))
	b.Div("toc", 600)
	b.Text(6000, "content")
	b.PadHTML(30 * 1024)
	return b.Build("s9")
}

// s10: forum template — inline scripts between posts.
func s10() *replay.Site {
	b := NewPage("s10.test").Title("s10 forum")
	b.CSS("/css/forum.css", SimpleCSS([]string{"post", "meta"}, 150))
	b.Script("/js/forum.js", 38*1024, 30, true, false)
	for i := 0; i < 10; i++ {
		b.Text(500, "post")
		b.InlineScript(800, false)
		b.Image(fmt.Sprintf("/img/avatar%d.png", i), 48, 48, 4*1024)
	}
	return b.Build("s10")
}
