package corpus

import (
	"fmt"
	"math"
	"math/rand"
	"sync"

	"repro/internal/replay"
)

// Profile parameterizes the random site generator. The two presets are
// calibrated to the paper's two evaluation sets (Sec. 4.2): a sample of
// the Alexa top-500 ("top-100" set) and of the full top-1M
// ("random-100"), including the observed pushable-object distribution
// (52% / 24% of sites have <20% pushable objects).
type Profile struct {
	Name string
	// LowPushableProb is the probability a site ends up with <20% of its
	// objects on the base server.
	LowPushableProb float64
	// Object count range (excluding the base document).
	MinObjects, MaxObjects int
	// Third-party host count range.
	MinHosts, MaxHosts int
	// HTML size range in KB.
	MinHTMLKB, MaxHTMLKB int
}

// TopProfile models sites sampled from the Alexa top 500: many objects,
// heavy third-party use.
func TopProfile() Profile {
	return Profile{
		Name:            "top-100",
		LowPushableProb: 0.52,
		MinObjects:      40, MaxObjects: 140,
		MinHosts: 6, MaxHosts: 28,
		MinHTMLKB: 30, MaxHTMLKB: 260,
	}
}

// RandomProfile models sites sampled from the full Alexa 1M: smaller,
// more self-hosted.
func RandomProfile() Profile {
	return Profile{
		Name:            "random-100",
		LowPushableProb: 0.24,
		MinObjects:      12, MaxObjects: 70,
		MinHosts: 1, MaxHosts: 10,
		MinHTMLKB: 10, MaxHTMLKB: 120,
	}
}

func randRange(rng *rand.Rand, lo, hi int) int {
	if hi <= lo {
		return lo
	}
	return lo + rng.Intn(hi-lo+1)
}

// sizeKB draws a skewed (roughly log-uniform) size in bytes.
func sizeKB(rng *rand.Rand, loKB, hiKB int) int {
	lo, hi := float64(loKB), float64(hiKB)
	f := lo * math.Pow(hi/lo, rng.Float64())
	return int(f * 1024)
}

// Generation is memoized: the generator is a pure function of
// (profile, index, seed), and generated sites are immutable once built
// (the same contract that lets prepared sites be shared across engine
// workers), so repeated experiment drivers asking for the same corpus —
// pushbench -exp all regenerates the identical random set for nearly
// every figure — get the cached site instead of re-synthesizing and
// re-parsing it. The cache is bounded; overflow drops it wholesale.
var (
	genMu    sync.Mutex
	genCache map[genKey]*replay.Site
)

type genKey struct {
	prof  Profile
	index int
	seed  int64
}

const genCacheMax = 4096

// Generate synthesizes one random site. The same (profile, index, seed)
// always yields the same site.
func Generate(prof Profile, index int, seed int64) *replay.Site {
	key := genKey{prof: prof, index: index, seed: seed}
	genMu.Lock()
	if s, ok := genCache[key]; ok {
		genMu.Unlock()
		return s
	}
	genMu.Unlock()
	s := generate(prof, index, seed)
	genMu.Lock()
	if len(genCache) >= genCacheMax {
		genCache = nil
	}
	if genCache == nil {
		genCache = make(map[genKey]*replay.Site)
	}
	genCache[key] = s
	genMu.Unlock()
	return s
}

func generate(prof Profile, index int, seed int64) *replay.Site {
	rng := rand.New(rand.NewSource(seed ^ int64(index)*0x9e3779b97f4a7c))
	host := fmt.Sprintf("site%03d.%s.test", index, prof.Name)
	b := NewPage(host)
	b.Title(fmt.Sprintf("%s #%d", prof.Name, index))

	pushableTarget := 0.0
	if rng.Float64() < prof.LowPushableProb {
		pushableTarget = 0.03 + rng.Float64()*0.15
	} else {
		pushableTarget = 0.25 + rng.Float64()*0.6
	}
	nObjects := randRange(rng, prof.MinObjects, prof.MaxObjects)
	nHosts := randRange(rng, prof.MinHosts, prof.MaxHosts)
	thirdHosts := make([]string, nHosts)
	for i := range thirdHosts {
		thirdHosts[i] = fmt.Sprintf("cdn%d.site%03d-ext.test", i, index)
	}
	pick := func() string {
		if rng.Float64() < pushableTarget || len(thirdHosts) == 0 {
			return host
		}
		return thirdHosts[rng.Intn(len(thirdHosts))]
	}

	// Object mix: a few CSS, some JS, mostly images, occasional fonts.
	nCSS := randRange(rng, 1, 5)
	nJS := randRange(rng, 2, minInt(12, maxInt(3, nObjects/6)))
	nFonts := 0
	if rng.Float64() < 0.4 {
		nFonts = randRange(rng, 1, 2)
	}
	nImages := nObjects - nCSS - nJS - nFonts
	if nImages < 1 {
		nImages = 1
	}

	// Classes for the visible structure; CSS rules reference them.
	classes := []string{"hero", "masthead"}
	for i := 0; i < 8; i++ {
		classes = append(classes, fmt.Sprintf("sec-%d", i))
	}

	// Fonts first: their URLs are embedded in CSS.
	var fontCSS string
	for f := 0; f < nFonts; f++ {
		fam := fmt.Sprintf("Web%d", f)
		furl := b.Font(fmt.Sprintf("/fonts/f%d.woff2", f), sizeKB(rng, 20, 90))
		fontCSS += FontFaceCSS(fam, furl)
	}

	// Head: CSS links (bulk of rules in the first sheet) and 0-2 sync
	// scripts.
	for c := 0; c < nCSS; c++ {
		css := SimpleCSS(classes, sizeKB(rng, 3, 50)/90)
		if c == 0 {
			css = fontCSS + css
		}
		b.CSSOn(pick(), fmt.Sprintf("/css/style%d.css", c), css, false)
	}
	headScripts := randRange(rng, 0, 2)
	for j := 0; j < headScripts && j < nJS; j++ {
		b.ScriptOn(pick(), fmt.Sprintf("/js/head%d.js", j),
			sizeKB(rng, 8, 120), float64(rng.Intn(60)), true, false)
	}

	// Body: hero with image, then sections of text and images, scripts
	// sprinkled through and at the end.
	b.Div("hero", randRange(rng, 120, 400))
	heroHost := pick()
	b.ImageOn(heroHost, "/img/hero.jpg", 1280, randRange(rng, 250, 450), sizeKB(rng, 30, 150))
	imagesLeft := nImages - 1
	jsLeft := nJS - headScripts
	section := 0
	for imagesLeft > 0 || jsLeft > 0 {
		cls := classes[2+section%8]
		textCls := []string{cls}
		if nFonts > 0 && section%3 == 0 {
			textCls = append(textCls, fmt.Sprintf("wf-Web%d", section%nFonts))
		}
		b.Text(randRange(rng, 150, 900), textCls...)
		imgsHere := minInt(imagesLeft, randRange(rng, 0, 4))
		for k := 0; k < imgsHere; k++ {
			edge := randRange(rng, 150, 600)
			b.ImageOn(pick(), fmt.Sprintf("/img/s%d-%d.jpg", section, k),
				edge, randRange(rng, 100, 400), sizeKB(rng, 4, 120))
			imagesLeft--
		}
		if jsLeft > 0 && rng.Float64() < 0.35 {
			async := rng.Float64() < 0.4
			b.ScriptOn(pick(), fmt.Sprintf("/js/body%d.js", jsLeft),
				sizeKB(rng, 6, 100), float64(rng.Intn(40)), false, async)
			jsLeft--
		}
		if rng.Float64() < 0.2 {
			b.InlineScript(randRange(rng, 200, 4000), false)
		}
		section++
		if section > 500 {
			break
		}
	}
	for jsLeft > 0 {
		b.ScriptOn(pick(), fmt.Sprintf("/js/tail%d.js", jsLeft),
			sizeKB(rng, 6, 80), float64(rng.Intn(30)), false, false)
		jsLeft--
	}

	// Pad HTML to the drawn size.
	targetHTML := sizeKB(rng, prof.MinHTMLKB, prof.MaxHTMLKB)
	if cur := len(b.HTML()); cur < targetHTML {
		b.PadHTML(targetHTML - cur)
	}
	return b.Build(fmt.Sprintf("%s-%03d", prof.Name, index))
}

// GenerateSet produces n sites from a profile.
func GenerateSet(prof Profile, n int, seed int64) []*replay.Site {
	out := make([]*replay.Site, n)
	for i := range out {
		out[i] = Generate(prof, i, seed)
	}
	return out
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
