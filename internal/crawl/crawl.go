// Package crawl reproduces the adoption study behind Fig. 1 of the paper
// (and the authors' prior work, netray.io): monthly protocol scans of an
// Alexa-1M-like population counting HTTP/2 and Server Push support.
//
// The real study probes a million live domains; offline we substitute a
// synthetic population whose adoption dynamics are calibrated to the
// figure: H2 support grows from ~120K to ~240K sites over 2017 while
// Server Push grows from ~400 to ~800 — three orders of magnitude lower.
// The scanner performs the same per-domain protocol probe the real
// crawler would (an ALPN-style capability negotiation against the
// domain's modelled server), so the measurement pipeline is exercised
// end to end.
package crawl

import (
	"math/rand"
)

// Months in the study (Jan..Dec 2017 in the paper).
const Months = 12

// Domain is one population member. AdoptH2/AdoptPush give the first
// month (1-based) in which the domain's server speaks H2 / uses push; 0
// means never during the study.
type Domain struct {
	Rank      int
	AdoptH2   int
	AdoptPush int
}

// Server answers the scanner's probe for a given month: whether ALPN
// offers h2 and whether the landing page response carries PUSH_PROMISE.
func (d *Domain) Server(month int) ProbeResponse {
	return ProbeResponse{
		ALPNH2:   d.AdoptH2 != 0 && month >= d.AdoptH2,
		UsesPush: d.AdoptPush != 0 && month >= d.AdoptPush,
	}
}

// ProbeResponse is what one scan of one domain observes.
type ProbeResponse struct {
	ALPNH2   bool
	UsesPush bool
}

// Population is the scan target list, rank ordered.
type Population []Domain

// SynthPopulation generates n domains with adoption calibrated to
// Fig. 1: h2Start/h2End and pushStart/pushEnd domains supporting each
// feature in the first and last month.
func SynthPopulation(n int, seed int64, h2Start, h2End, pushStart, pushEnd int) Population {
	rng := rand.New(rand.NewSource(seed))
	pop := make(Population, n)
	for i := range pop {
		pop[i].Rank = i + 1
	}
	// h2Start domains support H2 from month 1; the remaining adopters
	// spread uniformly over months 2..12 (the figure is near-linear).
	assign := func(set func(i int, month int), start, end int) {
		perm := rng.Perm(n)
		for j := 0; j < start && j < n; j++ {
			set(perm[j], 1)
		}
		extra := end - start
		for j := start; j < start+extra && j < n; j++ {
			set(perm[j], 2+rng.Intn(Months-1))
		}
	}
	assign(func(i, m int) { pop[i].AdoptH2 = m }, h2Start, h2End)
	// Push requires H2: initial push adopters are drawn from the domains
	// already speaking H2 in month 1, later adopters from all H2 domains.
	var earlyH2, laterH2 []int
	for i := range pop {
		switch {
		case pop[i].AdoptH2 == 1:
			earlyH2 = append(earlyH2, i)
		case pop[i].AdoptH2 > 1:
			laterH2 = append(laterH2, i)
		}
	}
	rng.Shuffle(len(earlyH2), func(a, b int) { earlyH2[a], earlyH2[b] = earlyH2[b], earlyH2[a] })
	rng.Shuffle(len(laterH2), func(a, b int) { laterH2[a], laterH2[b] = laterH2[b], laterH2[a] })
	cnt := 0
	for _, i := range earlyH2 {
		if cnt >= pushStart {
			break
		}
		pop[i].AdoptPush = 1
		cnt++
	}
	for _, i := range append(earlyH2[cnt:], laterH2...) {
		if cnt >= pushEnd {
			break
		}
		month := 2 + rng.Intn(Months-1)
		if month < pop[i].AdoptH2 {
			month = pop[i].AdoptH2
		}
		pop[i].AdoptPush = month
		cnt++
	}
	return pop
}

// DefaultPopulation is calibrated to the paper's Fig. 1 (scaled
// population size n; counts scale proportionally when n != 1M).
func DefaultPopulation(n int, seed int64) Population {
	scale := float64(n) / 1_000_000
	return SynthPopulation(n, seed,
		int(120_000*scale), int(240_000*scale),
		int(400*scale)+1, int(800*scale)+1)
}

// ScanResult is one monthly crawl's outcome.
type ScanResult struct {
	Month     int
	H2Count   int
	PushCount int
	Probed    int
}

// Scanner runs monthly scans over a population.
type Scanner struct {
	// FailureRate models unreachable domains per scan (real crawls never
	// reach the whole list).
	FailureRate float64
	rng         *rand.Rand
}

// NewScanner builds a scanner with deterministic failures.
func NewScanner(seed int64, failureRate float64) *Scanner {
	return &Scanner{FailureRate: failureRate, rng: rand.New(rand.NewSource(seed))}
}

// Scan probes every domain once for the given month.
func (sc *Scanner) Scan(pop Population, month int) ScanResult {
	res := ScanResult{Month: month}
	for i := range pop {
		if sc.FailureRate > 0 && sc.rng.Float64() < sc.FailureRate {
			continue
		}
		res.Probed++
		pr := pop[i].Server(month)
		if pr.ALPNH2 {
			res.H2Count++
		}
		if pr.UsesPush {
			res.PushCount++
		}
	}
	return res
}

// Study runs the full 12-month series.
func (sc *Scanner) Study(pop Population) []ScanResult {
	out := make([]ScanResult, 0, Months)
	for m := 1; m <= Months; m++ {
		out = append(out, sc.Scan(pop, m))
	}
	return out
}
