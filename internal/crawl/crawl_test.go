package crawl

import "testing"

func TestPopulationCalibration(t *testing.T) {
	const n = 100_000 // 10% of the Alexa 1M, counts scale accordingly
	pop := DefaultPopulation(n, 1)
	sc := NewScanner(1, 0)
	first := sc.Scan(pop, 1)
	last := sc.Scan(pop, Months)
	// Calibration: 120K->240K H2 and 400->800 push at full scale, /10 here.
	if first.H2Count < 11_000 || first.H2Count > 13_000 {
		t.Fatalf("month 1 H2 = %d, want ~12000", first.H2Count)
	}
	if last.H2Count < 22_000 || last.H2Count > 26_000 {
		t.Fatalf("month 12 H2 = %d, want ~24000", last.H2Count)
	}
	if first.PushCount < 30 || first.PushCount > 60 {
		t.Fatalf("month 1 push = %d, want ~40", first.PushCount)
	}
	if last.PushCount < 70 || last.PushCount > 100 {
		t.Fatalf("month 12 push = %d, want ~80", last.PushCount)
	}
	// Push adoption orders of magnitude below H2 (the paper's point).
	if last.PushCount*100 > last.H2Count {
		t.Fatalf("push adoption not orders of magnitude lower: %d vs %d", last.PushCount, last.H2Count)
	}
}

func TestAdoptionMonotone(t *testing.T) {
	pop := DefaultPopulation(20_000, 2)
	sc := NewScanner(2, 0)
	series := sc.Study(pop)
	if len(series) != Months {
		t.Fatalf("series length %d", len(series))
	}
	for i := 1; i < len(series); i++ {
		if series[i].H2Count < series[i-1].H2Count {
			t.Fatalf("H2 count decreased at month %d", i+1)
		}
		if series[i].PushCount < series[i-1].PushCount {
			t.Fatalf("push count decreased at month %d", i+1)
		}
	}
}

func TestPushRequiresH2(t *testing.T) {
	pop := DefaultPopulation(50_000, 3)
	for _, d := range pop {
		if d.AdoptPush != 0 {
			if d.AdoptH2 == 0 || d.AdoptPush < d.AdoptH2 {
				t.Fatalf("domain pushes before speaking H2: %+v", d)
			}
		}
	}
}

func TestScannerFailures(t *testing.T) {
	pop := DefaultPopulation(10_000, 4)
	sc := NewScanner(4, 0.05)
	res := sc.Scan(pop, 6)
	if res.Probed >= len(pop) {
		t.Fatalf("no failures: probed %d of %d", res.Probed, len(pop))
	}
	if res.Probed < int(float64(len(pop))*0.9) {
		t.Fatalf("too many failures: %d", res.Probed)
	}
}

func TestProbeSemantics(t *testing.T) {
	d := Domain{Rank: 1, AdoptH2: 3, AdoptPush: 5}
	if d.Server(2).ALPNH2 {
		t.Fatal("H2 before adoption")
	}
	if !d.Server(3).ALPNH2 {
		t.Fatal("no H2 at adoption month")
	}
	if d.Server(4).UsesPush {
		t.Fatal("push before adoption")
	}
	if !d.Server(12).UsesPush {
		t.Fatal("no push after adoption")
	}
	never := Domain{Rank: 2}
	if never.Server(12).ALPNH2 || never.Server(12).UsesPush {
		t.Fatal("non-adopter reports support")
	}
}

func TestDeterministicPopulation(t *testing.T) {
	a := DefaultPopulation(5000, 9)
	b := DefaultPopulation(5000, 9)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("population differs at %d", i)
		}
	}
}
