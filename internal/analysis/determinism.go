package analysis

import (
	"go/ast"
	"go/types"
)

// Determinism enforces the engine's reproducibility contract in the
// simulation core: every run is a pure function of its seed, so the
// packages on the virtual clock must not read wall-clock time, must not
// draw from the process-global math/rand source (only seeded *rand.Rand
// instances owned by a Sim), and must not let map iteration order reach
// ordered output. Map ranges whose results are provably
// order-independent (accumulating into sums, sets or other commutative
// sinks) are annotated //repolint:ordered <reason>.
var Determinism = &Analyzer{
	Name: "determinism",
	Doc: "forbid wall-clock time, the global math/rand source, and " +
		"unannotated map iteration in the deterministic simulation packages",
	Scope: []string{
		"repro/internal/sim",
		"repro/internal/core",
		"repro/internal/netem",
		"repro/internal/scenario",
		// The shard protocol and metrics codecs sit on the multiprocess
		// result path: any nondeterminism there would break the
		// byte-identical-tables contract across executors.
		"repro/internal/shard",
		"repro/internal/metrics",
	},
	Run: runDeterminism,
}

// wallClockFuncs are the package time functions that read the real
// clock (Since/Until call Now internally).
var wallClockFuncs = map[string]bool{"Now": true, "Since": true, "Until": true}

// randConstructors are the math/rand package-level functions that build
// seeded generators instead of drawing from the global source.
var randConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

func runDeterminism(pass *Pass) error {
	for _, file := range pass.Files {
		ordered := orderedDirectiveLines(pass, file)
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkDeterministicCall(pass, n)
			case *ast.RangeStmt:
				checkMapRange(pass, n, ordered)
			}
			return true
		})
	}
	return nil
}

// orderedDirectiveLines collects the source lines carrying a
// //repolint:ordered directive in file.
func orderedDirectiveLines(pass *Pass, file *ast.File) map[int]bool {
	lines := make(map[int]bool)
	for _, g := range file.Comments {
		for _, c := range g.List {
			if d, ok := parseDirective(c); ok && d.Verb == VerbOrdered {
				lines[lineOf(pass.Fset, d.Pos)] = true
			}
		}
	}
	return lines
}

func checkDeterministicCall(pass *Pass, call *ast.CallExpr) {
	fn := calleeFunc(pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() != nil {
		return // methods (e.g. on a seeded *rand.Rand) are fine
	}
	switch fn.Pkg().Path() {
	case "time":
		if wallClockFuncs[fn.Name()] {
			pass.Reportf(call.Pos(), "time.%s reads the wall clock; simulation code must use the virtual clock (sim.Now)", fn.Name())
		}
	case "math/rand", "math/rand/v2":
		if !randConstructors[fn.Name()] {
			pass.Reportf(call.Pos(), "%s.%s draws from the global math/rand source; use the Sim's seeded *rand.Rand", fn.Pkg().Path(), fn.Name())
		}
	}
}

func checkMapRange(pass *Pass, rs *ast.RangeStmt, ordered map[int]bool) {
	tv, ok := pass.TypesInfo.Types[rs.X]
	if !ok {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}
	// The escape hatch trails the range line or immediately precedes
	// it. A directive with a missing reason still suppresses this
	// report — the directives analyzer flags the malformed escape, so
	// the build fails either way with a single clear finding.
	line := lineOf(pass.Fset, rs.Pos())
	if ordered[line] || ordered[line-1] {
		return
	}
	pass.Reportf(rs.Pos(), "map iteration order is nondeterministic and may reach ordered output; iterate a sorted or interned key list, or annotate //repolint:ordered <reason>")
}
