package analysis

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// A Package is one type-checked package of the module under analysis.
type Package struct {
	Path      string // import path, e.g. repro/internal/h2
	Dir       string // absolute directory
	Files     []*ast.File
	Types     *types.Package
	TypesInfo *types.Info
}

// LoadModule parses and type-checks every non-test package of the Go
// module rooted at root, in dependency order, and returns them sorted
// by import path. Standard-library dependencies are type-checked from
// source (the repository is stdlib-only, so no module cache or export
// data is needed).
func LoadModule(root string) ([]*Package, *token.FileSet, error) {
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, nil, err
	}

	// The source importer consults go/build to locate stdlib packages;
	// with cgo off it selects the pure-Go file sets, which is what a
	// type-check (as opposed to a build) wants.
	build.Default.CgoEnabled = false

	fset := token.NewFileSet()
	dirs, err := moduleDirs(root)
	if err != nil {
		return nil, nil, err
	}

	type rawPkg struct {
		path    string
		dir     string
		files   []*ast.File
		imports []string
	}
	raws := make(map[string]*rawPkg)
	for _, dir := range dirs {
		rel, err := filepath.Rel(root, dir)
		if err != nil {
			return nil, nil, err
		}
		path := modPath
		if rel != "." {
			path = modPath + "/" + filepath.ToSlash(rel)
		}
		entries, err := os.ReadDir(dir)
		if err != nil {
			return nil, nil, err
		}
		var files []*ast.File
		importSet := make(map[string]bool)
		for _, e := range entries {
			name := e.Name()
			if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
				continue
			}
			f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, nil, err
			}
			files = append(files, f)
			for _, imp := range f.Imports {
				p, err := strconv.Unquote(imp.Path.Value)
				if err == nil && (p == modPath || strings.HasPrefix(p, modPath+"/")) {
					importSet[p] = true
				}
			}
		}
		if len(files) == 0 {
			continue
		}
		rp := &rawPkg{path: path, dir: dir, files: files}
		for p := range importSet {
			rp.imports = append(rp.imports, p)
		}
		sort.Strings(rp.imports)
		raws[path] = rp
	}

	// Topological order over intra-module imports so every dependency
	// is type-checked before its importers.
	var order []string
	state := make(map[string]int) // 0 unvisited, 1 visiting, 2 done
	var visit func(path string) error
	visit = func(path string) error {
		switch state[path] {
		case 1:
			return fmt.Errorf("import cycle through %s", path)
		case 2:
			return nil
		}
		state[path] = 1
		for _, dep := range raws[path].imports {
			if _, ok := raws[dep]; !ok {
				return fmt.Errorf("%s imports %s, which has no source in the module", path, dep)
			}
			if err := visit(dep); err != nil {
				return err
			}
		}
		state[path] = 2
		order = append(order, path)
		return nil
	}
	var paths []string
	for p := range raws {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	for _, p := range paths {
		if err := visit(p); err != nil {
			return nil, nil, err
		}
	}

	imp := &moduleImporter{
		std:    importer.ForCompiler(fset, "source", nil),
		module: make(map[string]*types.Package),
	}
	var pkgs []*Package
	for _, path := range order {
		rp := raws[path]
		info := newTypesInfo()
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(path, fset, rp.files, info)
		if err != nil {
			return nil, nil, fmt.Errorf("type-checking %s: %w", path, err)
		}
		imp.module[path] = tpkg
		pkgs = append(pkgs, &Package{
			Path: path, Dir: rp.dir, Files: rp.files, Types: tpkg, TypesInfo: info,
		})
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	return pkgs, fset, nil
}

// moduleDirs returns every directory under root that may hold package
// source, skipping VCS metadata, testdata and hidden/underscore trees.
func moduleDirs(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		dirs = append(dirs, path)
		return nil
	})
	return dirs, err
}

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("%s: no module directive", gomod)
}

// newTypesInfo allocates a fully populated types.Info.
func newTypesInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
}

// moduleImporter serves module-internal packages from the already
// type-checked set and everything else from the stdlib source importer.
type moduleImporter struct {
	std    types.Importer
	module map[string]*types.Package
}

func (m *moduleImporter) Import(path string) (*types.Package, error) {
	if p, ok := m.module[path]; ok {
		return p, nil
	}
	return m.std.Import(path)
}

func (m *moduleImporter) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if p, ok := m.module[path]; ok {
		return p, nil
	}
	if from, ok := m.std.(types.ImporterFrom); ok {
		return from.ImportFrom(path, dir, mode)
	}
	return m.std.Import(path)
}
