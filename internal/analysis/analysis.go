// Package analysis is repolint's in-tree static-analysis framework: a
// minimal mirror of golang.org/x/tools/go/analysis built on the
// standard library's go/ast and go/types, plus the Analyzers that
// machine-check the engine's hand-enforced contracts (determinism,
// Reset completeness, hot-path allocation discipline, and []byte
// ownership transfer — see doc.go at the repository root for the
// invariant catalog and the directive syntax).
//
// The framework exists because the repository is intentionally
// dependency-free: golang.org/x/tools is not vendored, so the
// Analyzer/Pass/Diagnostic types are redeclared here with the same
// shape and cmd/repolint plays the role of the multichecker. Analyzers
// written against this package would port to the real go/analysis API
// nearly verbatim.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// An Analyzer describes one invariant checker.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and on the
	// cmd/repolint command line.
	Name string

	// Doc is a one-paragraph description of the contract enforced.
	Doc string

	// Scope restricts which packages the analyzer runs over in the
	// repolint driver: a package is in scope when its import path
	// equals an entry or is underneath one. Empty means every package.
	// Scope is driver policy only — Run itself checks whatever package
	// it is handed, which is what lets analysistest fixtures use a
	// throwaway package path.
	Scope []string

	// Run applies the analyzer to one type-checked package.
	Run func(*Pass) error
}

// InScope reports whether the analyzer applies to the import path under
// the driver's scoping policy.
func (a *Analyzer) InScope(path string) bool {
	if len(a.Scope) == 0 {
		return true
	}
	for _, s := range a.Scope {
		if path == s || strings.HasPrefix(path, s+"/") {
			return true
		}
	}
	return false
}

// A Pass provides one analyzer run with a single type-checked package
// and a sink for its findings.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	Report    func(Diagnostic)
}

// A Diagnostic is one finding at one position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Reportf reports a formatted finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// All returns the full analyzer suite in the order the driver runs it.
func All() []*Analyzer {
	return []*Analyzer{Directives, Determinism, ResetComplete, Hotpath, Retain}
}

// objectOf resolves an identifier to its object, checking uses first
// and falling back to definitions.
func objectOf(info *types.Info, id *ast.Ident) types.Object {
	if o := info.Uses[id]; o != nil {
		return o
	}
	return info.Defs[id]
}

// calleeFunc resolves a call expression to the *types.Func it invokes,
// or nil for builtins, conversions and calls through function values.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := objectOf(info, id).(*types.Func)
	return fn
}

// isByteSlice reports whether t is []byte (after following named types).
func isByteSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Byte
}

// isByteSliceSlice reports whether t is [][]byte.
func isByteSliceSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	return ok && isByteSlice(s.Elem())
}
