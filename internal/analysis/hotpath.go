package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Hotpath enforces the allocation discipline of the warm replay loop:
// a function marked //repolint:hotpath (the browser loader's per-frame
// callbacks, the h2 frame/queue paths, the farm serve path, the sim
// scheduler) must not allocate per call. Concretely it must not call
// into package fmt, concatenate strings, build closures (function
// literals that are not immediately invoked, or method values), or box
// non-pointer-shaped values into interfaces — the conversions that
// made AtCall's pointer-argument convention necessary in the first
// place.
//
// Two escape valves keep the rule honest rather than annoying:
// anything feeding a panic call is exempt (panics are the cold error
// path; sim.At's "scheduling in the past" Sprintf stays), and return
// statements are not checked (error returns box a struct exactly once
// on the cold failure path).
var Hotpath = &Analyzer{
	Name: "hotpath",
	Doc: "forbid fmt calls, string concatenation, closures and " +
		"interface boxing in functions marked //repolint:hotpath",
	Run: runHotpath,
}

func runHotpath(pass *Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !hasDirective(fn.Doc, VerbHotpath) {
				continue
			}
			checkHotFunc(pass, fn)
		}
	}
	return nil
}

func checkHotFunc(pass *Pass, fn *ast.FuncDecl) {
	exempt := panicArgNodes(pass, fn.Body)
	inExempt := func(n ast.Node) bool { return exempt[n.Pos()] }

	// A stack-tracking walk: closure and method-value checks need the
	// parent node to tell immediate invocation from value use.
	var stack []ast.Node
	var walk func(n ast.Node)
	walk = func(n ast.Node) {
		if n == nil {
			return
		}
		parent := ast.Node(nil)
		if len(stack) > 0 {
			parent = stack[len(stack)-1]
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			if !immediatelyInvoked(n, parent, stack) && !inExempt(n) {
				pass.Reportf(n.Pos(), "closure allocates in hot path %s; hoist it to a cached field or use a static callback with sim.AtCall", fn.Name.Name)
			}
		case *ast.CallExpr:
			checkHotCall(pass, fn, n, inExempt)
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isStringExpr(pass, n) && !inExempt(n) {
				pass.Reportf(n.Pos(), "string concatenation allocates in hot path %s", fn.Name.Name)
			}
		case *ast.AssignStmt:
			if n.Tok == token.ADD_ASSIGN && len(n.Lhs) == 1 && isStringExpr(pass, n.Lhs[0]) && !inExempt(n) {
				pass.Reportf(n.Pos(), "string concatenation allocates in hot path %s", fn.Name.Name)
			}
			checkHotAssign(pass, fn, n)
		case *ast.ValueSpec:
			checkHotValueSpec(pass, fn, n)
		case *ast.SelectorExpr:
			checkMethodValue(pass, fn, n, parent, inExempt)
		}
		stack = append(stack, n)
		for _, c := range childNodes(n) {
			walk(c)
		}
		stack = stack[:len(stack)-1]
	}
	walk(fn.Body)
}

// panicArgNodes marks every node inside a panic(...) argument list;
// those subtrees are the cold error path.
func panicArgNodes(pass *Pass, body *ast.BlockStmt) map[token.Pos]bool {
	exempt := make(map[token.Pos]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		id, ok := ast.Unparen(call.Fun).(*ast.Ident)
		if !ok || id.Name != "panic" {
			return true
		}
		if _, isBuiltin := objectOf(pass.TypesInfo, id).(*types.Builtin); !isBuiltin {
			return true
		}
		for _, arg := range call.Args {
			ast.Inspect(arg, func(m ast.Node) bool {
				if m != nil {
					exempt[m.Pos()] = true
				}
				return true
			})
		}
		return true
	})
	return exempt
}

// immediatelyInvoked reports whether lit is the callee of its parent
// call — func(){...}() — and the call is not deferred or spawned as a
// goroutine (both of which still materialize the closure).
func immediatelyInvoked(lit *ast.FuncLit, parent ast.Node, stack []ast.Node) bool {
	call, ok := parent.(*ast.CallExpr)
	if !ok || call.Fun != lit {
		return false
	}
	if len(stack) >= 2 {
		switch stack[len(stack)-2].(type) {
		case *ast.GoStmt, *ast.DeferStmt:
			return false
		}
	}
	return true
}

func checkHotCall(pass *Pass, fn *ast.FuncDecl, call *ast.CallExpr, inExempt func(ast.Node) bool) {
	if inExempt(call) {
		return
	}
	// fmt anywhere in a hot function is a formatting allocation.
	if callee := calleeFunc(pass.TypesInfo, call); callee != nil && callee.Pkg() != nil && callee.Pkg().Path() == "fmt" {
		pass.Reportf(call.Pos(), "fmt.%s call in hot path %s", callee.Name(), fn.Name.Name)
		return
	}

	funTV, ok := pass.TypesInfo.Types[call.Fun]
	if !ok {
		return
	}
	if funTV.IsType() {
		// Explicit conversion: T(x) boxing into an interface.
		if len(call.Args) == 1 {
			checkBoxing(pass, fn, funTV.Type, call.Args[0], "conversion")
		}
		return
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		// append into an interface-element slice boxes each appended
		// element; the other builtins cannot box.
		if _, isBuiltin := objectOf(pass.TypesInfo, id).(*types.Builtin); isBuiltin {
			if id.Name == "append" && len(call.Args) > 1 && !call.Ellipsis.IsValid() {
				if s, ok := pass.TypesInfo.Types[call.Args[0]].Type.Underlying().(*types.Slice); ok {
					for _, arg := range call.Args[1:] {
						checkBoxing(pass, fn, s.Elem(), arg, "append")
					}
				}
			}
			return
		}
	}
	sig, ok := funTV.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // spread passes the slice through, no per-element boxing
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		checkBoxing(pass, fn, pt, arg, "argument")
	}
}

func checkHotAssign(pass *Pass, fn *ast.FuncDecl, as *ast.AssignStmt) {
	if len(as.Lhs) != len(as.Rhs) {
		return // multi-value form: types come straight from the callee
	}
	for i, lhs := range as.Lhs {
		var lt types.Type
		if as.Tok == token.DEFINE {
			if id, ok := lhs.(*ast.Ident); ok {
				if obj := pass.TypesInfo.Defs[id]; obj != nil {
					lt = obj.Type()
				}
			}
		} else if tv, ok := pass.TypesInfo.Types[lhs]; ok {
			lt = tv.Type
		}
		if lt != nil {
			checkBoxing(pass, fn, lt, as.Rhs[i], "assignment")
		}
	}
}

func checkHotValueSpec(pass *Pass, fn *ast.FuncDecl, vs *ast.ValueSpec) {
	for i, name := range vs.Names {
		if i >= len(vs.Values) {
			break
		}
		if obj := pass.TypesInfo.Defs[name]; obj != nil {
			checkBoxing(pass, fn, obj.Type(), vs.Values[i], "assignment")
		}
	}
}

// checkMethodValue flags method values (x.M used as a value): each one
// allocates a bound-method closure. Cold setup code caches them in
// fields (SimEndpoint.recvFn); hot code must use the cached copy.
func checkMethodValue(pass *Pass, fn *ast.FuncDecl, sel *ast.SelectorExpr, parent ast.Node, inExempt func(ast.Node) bool) {
	s, ok := pass.TypesInfo.Selections[sel]
	if !ok || s.Kind() != types.MethodVal {
		return
	}
	if call, ok := parent.(*ast.CallExpr); ok && call.Fun == sel {
		return // ordinary method call
	}
	if inExempt(sel) {
		return
	}
	pass.Reportf(sel.Pos(), "method value %s allocates a bound closure in hot path %s; cache it in a field during setup", sel.Sel.Name, fn.Name.Name)
}

// checkBoxing reports when assigning rhs to something of type dst boxes
// a non-pointer-shaped concrete value into an interface.
func checkBoxing(pass *Pass, fn *ast.FuncDecl, dst types.Type, rhs ast.Expr, what string) {
	if dst == nil || !types.IsInterface(dst) {
		return
	}
	tv, ok := pass.TypesInfo.Types[rhs]
	if !ok || tv.Type == nil || tv.IsNil() {
		return
	}
	rt := tv.Type
	if types.IsInterface(rt) || pointerShaped(rt) {
		return
	}
	pass.Reportf(rhs.Pos(), "interface %s boxes %s (not pointer-shaped) and allocates in hot path %s; pass a pointer instead", what, rt.String(), fn.Name.Name)
}

// pointerShaped reports whether values of t fit in an interface word
// without allocating: pointers, channels, maps, functions and
// unsafe.Pointer.
func pointerShaped(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	case *types.Basic:
		return u.Kind() == types.UnsafePointer
	}
	return false
}

// isStringExpr reports whether e's type is a string.
func isStringExpr(pass *Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// childNodes returns n's immediate children in source order.
func childNodes(n ast.Node) []ast.Node {
	var kids []ast.Node
	first := true
	ast.Inspect(n, func(m ast.Node) bool {
		if first {
			first = false
			return true // enter n itself
		}
		if m == nil {
			return false
		}
		kids = append(kids, m)
		return false // do not descend; walk recurses explicitly
	})
	return kids
}
