package analysis

import (
	"go/ast"
	"go/token"
)

// ResetComplete enforces the pooled-reuse contract: every type whose
// instances cycle through a pool has a Reset method, and that method
// (directly or through other pointer-receiver methods it calls on the
// same receiver) must account for every field — either by assigning it
// or via an explicit //repolint:keep <reason> on the field. A field
// added in a future PR without Reset coverage therefore fails the
// build instead of leaking state between pooled runs.
//
// The analyzer is driven by annotations rather than a hard-coded type
// list: a struct marked //repolint:pooled gets full coverage checking,
// and any Reset method on an unannotated struct is itself a finding —
// the author must declare whether it is a pool reset (annotate the
// type //repolint:pooled) or protocol semantics that merely shares the
// name (annotate the method //repolint:notpooled <reason>, e.g. h2's
// Stream.Reset, which sends RST_STREAM).
//
// Pooled types that checkpoint (fork-at-divergence, see core/fork.go)
// carry a Snapshot/Restore pair, and the same leak class applies twice
// over: a field Snapshot never reads is silently absent from every
// checkpoint, and a field Restore never assigns keeps its
// post-checkpoint value across a rewind. So on a //repolint:pooled type
// the pair is checked for full field coverage too — Snapshot for reads,
// Restore for assignments — with the same transitive-helper closure and
// the same //repolint:keep escape as Reset, and a type with one half of
// the pair but not the other is itself a finding. Unexported
// snapshot/restore spellings (netem's pipe, h2's Stream) are checked
// the same way.
var ResetComplete = &Analyzer{
	Name: "resetcomplete",
	Doc: "verify that the Reset method of every //repolint:pooled type " +
		"covers all fields not annotated //repolint:keep, and that a " +
		"pooled type's Snapshot/Restore pair reads and reassigns them all",
	Run: runResetComplete,
}

// pooledType gathers one struct declaration's annotation state.
type pooledType struct {
	name   string
	spec   *ast.TypeSpec
	st     *ast.StructType
	pooled bool
}

// methodInfo summarizes one pointer-receiver method body: the receiver
// fields it assigns and the same-receiver pointer-receiver methods it
// calls.
type methodInfo struct {
	decl      *ast.FuncDecl
	covers    map[string]bool
	calls     []string
	coversAll bool // *recv = T{...} wholesale
}

func runResetComplete(pass *Pass) error {
	structs := make(map[string]*pooledType)
	methods := make(map[string]map[string]*ast.FuncDecl) // type -> method name -> decl

	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GenDecl:
				if n.Tok != token.TYPE {
					return true
				}
				for _, spec := range n.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					st, ok := ts.Type.(*ast.StructType)
					if !ok {
						continue
					}
					pooled := hasDirective(ts.Doc, VerbPooled) ||
						(len(n.Specs) == 1 && hasDirective(n.Doc, VerbPooled))
					structs[ts.Name.Name] = &pooledType{
						name: ts.Name.Name, spec: ts, st: st, pooled: pooled,
					}
				}
			case *ast.FuncDecl:
				if recv := recvTypeName(n); recv != "" {
					if methods[recv] == nil {
						methods[recv] = make(map[string]*ast.FuncDecl)
					}
					methods[recv][n.Name.Name] = n
				}
				return false // no nested method decls
			}
			return true
		})
	}

	for _, pt := range structs {
		reset, hasReset := findReset(methods[pt.name])
		switch {
		case pt.pooled && !hasReset:
			pass.Reportf(pt.spec.Name.Pos(), "type %s is annotated //repolint:pooled but has no Reset method", pt.name)
		case pt.pooled:
			checkResetCoverage(pass, pt, reset, methods[pt.name])
		case hasReset && !hasDirective(reset.Doc, VerbNotPooled):
			pass.Reportf(reset.Name.Pos(),
				"type %s has a %s method but is not annotated: mark the type //repolint:pooled (pool reset, field coverage enforced) or the method //repolint:notpooled <reason>",
				pt.name, reset.Name.Name)
		}
		if pt.pooled {
			checkSnapshotPair(pass, pt, methods[pt.name])
		}
	}
	return nil
}

// checkSnapshotPair enforces the checkpoint half of the pooled
// contract: a pooled type that snapshots must read every field into the
// checkpoint and a restore must reassign every field, or the field must
// carry a //repolint:keep <reason>. A lone half of the pair is a
// finding — one without the other cannot round-trip.
func checkSnapshotPair(pass *Pass, pt *pooledType, ms map[string]*ast.FuncDecl) {
	snap, hasSnap := findMethod(ms, "Snapshot", "snapshot")
	rest, hasRest := findMethod(ms, "Restore", "restore")
	switch {
	case hasSnap && !hasRest:
		pass.Reportf(snap.Name.Pos(), "pooled type %s has %s but no Restore method; a checkpoint it cannot rewind to is a leak", pt.name, snap.Name.Name)
	case hasRest && !hasSnap:
		pass.Reportf(rest.Name.Pos(), "pooled type %s has %s but no Snapshot method to produce its input", pt.name, rest.Name.Name)
	}
	if hasSnap {
		checkCoverage(pass, pt, snap, ms, summarizeReads,
			"read", "a checkpoint would silently omit it")
	}
	if hasRest {
		if !pointerReceiver(rest) {
			pass.Reportf(rest.Name.Pos(), "pooled type %s has a value-receiver %s method, which cannot rewind fields", pt.name, rest.Name.Name)
			return
		}
		checkCoverage(pass, pt, rest, ms, summarizeMethod,
			"assigned", "a restored run would keep post-checkpoint state in it")
	}
}

// findMethod returns the first of the given spellings present.
func findMethod(ms map[string]*ast.FuncDecl, names ...string) (*ast.FuncDecl, bool) {
	for _, n := range names {
		if m, ok := ms[n]; ok {
			return m, true
		}
	}
	return nil, false
}

// findReset locates the pool-reset method among a type's methods,
// preferring the exported spelling.
func findReset(ms map[string]*ast.FuncDecl) (*ast.FuncDecl, bool) {
	if m, ok := ms["Reset"]; ok {
		return m, true
	}
	if m, ok := ms["reset"]; ok {
		return m, true
	}
	return nil, false
}

func checkResetCoverage(pass *Pass, pt *pooledType, reset *ast.FuncDecl, ms map[string]*ast.FuncDecl) {
	if hasDirective(reset.Doc, VerbNotPooled) {
		pass.Reportf(reset.Name.Pos(), "type %s is //repolint:pooled but its %s method is //repolint:notpooled — pick one", pt.name, reset.Name.Name)
		return
	}
	if !pointerReceiver(reset) {
		pass.Reportf(reset.Name.Pos(), "pooled type %s has a value-receiver %s method, which cannot clear fields", pt.name, reset.Name.Name)
		return
	}
	checkCoverage(pass, pt, reset, ms, summarizeMethod,
		"assigned", "pooled reuse would leak it across runs")
}

// summarizer turns one method body into its coverage summary —
// summarizeMethod for assignment coverage, summarizeReads for read
// coverage.
type summarizer func(pass *Pass, decl *ast.FuncDecl, ms map[string]*ast.FuncDecl) *methodInfo

// checkCoverage reports every field of pt that root (or, transitively,
// the same-receiver pointer-receiver methods it calls — so helpers like
// Farm.Reset calling resolvePlan count) does not cover under sum, and
// that carries no //repolint:keep.
func checkCoverage(pass *Pass, pt *pooledType, root *ast.FuncDecl, ms map[string]*ast.FuncDecl, sum summarizer, verb, consequence string) {
	summaries := make(map[string]*methodInfo)
	covered := make(map[string]bool)
	coversAll := false
	seen := map[string]bool{}
	var walk func(name string)
	walk = func(name string) {
		if seen[name] {
			return
		}
		seen[name] = true
		mi, ok := summaries[name]
		if !ok {
			mi = sum(pass, ms[name], ms)
			summaries[name] = mi
		}
		if mi == nil {
			return
		}
		if mi.coversAll {
			coversAll = true
		}
		for f := range mi.covers {
			covered[f] = true
		}
		for _, callee := range mi.calls {
			walk(callee)
		}
	}
	walk(root.Name.Name)
	if coversAll {
		return
	}

	for _, field := range pt.st.Fields.List {
		keep := hasDirective(field.Doc, VerbKeep) || hasDirective(field.Comment, VerbKeep)
		if keep {
			continue
		}
		names := field.Names
		if len(names) == 0 {
			// Embedded field: named after its type.
			if id := embeddedName(field.Type); id != nil {
				names = []*ast.Ident{id}
			}
		}
		for _, name := range names {
			if name.Name == "_" || covered[name.Name] {
				continue
			}
			pass.Reportf(name.Pos(),
				"field %s.%s is not %s by %s (or the methods it calls) and carries no //repolint:keep <reason>; %s",
				pt.name, name.Name, verb, root.Name.Name, consequence)
		}
	}
}

// summarizeMethod computes the coverage summary of one method; nil when
// the method is unknown or has no usable receiver.
func summarizeMethod(pass *Pass, decl *ast.FuncDecl, ms map[string]*ast.FuncDecl) *methodInfo {
	if decl == nil || decl.Body == nil || !pointerReceiver(decl) {
		return nil
	}
	recvName := receiverName(decl)
	if recvName == "" {
		return nil
	}
	recvObj := objectOf(pass.TypesInfo, receiverIdent(decl))
	mi := &methodInfo{decl: decl, covers: make(map[string]bool)}

	isRecv := func(e ast.Expr) bool {
		id, ok := ast.Unparen(e).(*ast.Ident)
		return ok && objectOf(pass.TypesInfo, id) == recvObj
	}
	// fieldOf unwraps element/pointer accesses and returns the receiver
	// field an lvalue roots in, or "" when it is not receiver-rooted.
	var fieldOf func(e ast.Expr) string
	fieldOf = func(e ast.Expr) string {
		switch e := ast.Unparen(e).(type) {
		case *ast.SelectorExpr:
			if isRecv(e.X) {
				return e.Sel.Name
			}
			return fieldOf(e.X)
		case *ast.IndexExpr:
			return fieldOf(e.X)
		case *ast.StarExpr:
			return fieldOf(e.X)
		case *ast.SliceExpr:
			return fieldOf(e.X)
		}
		return ""
	}

	ast.Inspect(decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if se, ok := ast.Unparen(lhs).(*ast.StarExpr); ok && isRecv(se.X) {
					mi.coversAll = true
					continue
				}
				if f := fieldOf(lhs); f != "" {
					mi.covers[f] = true
				}
			}
		case *ast.IncDecStmt:
			if f := fieldOf(n.X); f != "" {
				mi.covers[f] = true
			}
		case *ast.CallExpr:
			switch fun := ast.Unparen(n.Fun).(type) {
			case *ast.SelectorExpr:
				if isRecv(fun.X) {
					// recv.m(...): coverage propagates only through
					// pointer-receiver methods of the same type.
					if callee, ok := ms[fun.Sel.Name]; ok && pointerReceiver(callee) {
						mi.calls = append(mi.calls, fun.Sel.Name)
					}
				} else if f := fieldOf(fun.X); f != "" {
					// recv.f.Method(...): the field manages its own
					// state (c.Tree.Reset(), s.src.Seed(seed), ...).
					mi.covers[f] = true
				}
			case *ast.Ident:
				// clear(recv.f) / copy(recv.f, ...) reset in place.
				if fun.Name == "clear" || fun.Name == "copy" {
					if len(n.Args) > 0 {
						if f := fieldOf(n.Args[0]); f != "" {
							mi.covers[f] = true
						}
					}
				}
			}
			// &recv.f passed anywhere hands the field off for reuse.
			for _, arg := range n.Args {
				if ue, ok := ast.Unparen(arg).(*ast.UnaryExpr); ok && ue.Op == token.AND {
					if f := fieldOf(ue.X); f != "" {
						mi.covers[f] = true
					}
				}
			}
		}
		return true
	})
	return mi
}

// summarizeReads computes the read-coverage summary of one method:
// every receiver field that appears in any expression counts (a
// snapshot only has to look at a field to capture it), `*recv` used
// wholesale covers everything, and calls on the same receiver propagate
// like in summarizeMethod.
func summarizeReads(pass *Pass, decl *ast.FuncDecl, ms map[string]*ast.FuncDecl) *methodInfo {
	if decl == nil || decl.Body == nil {
		return nil
	}
	recvObj := objectOf(pass.TypesInfo, receiverIdent(decl))
	if recvObj == nil {
		return nil
	}
	mi := &methodInfo{decl: decl, covers: make(map[string]bool)}

	isRecv := func(e ast.Expr) bool {
		id, ok := ast.Unparen(e).(*ast.Ident)
		return ok && objectOf(pass.TypesInfo, id) == recvObj
	}
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SelectorExpr:
			if isRecv(n.X) {
				mi.covers[n.Sel.Name] = true
				if callee, ok := ms[n.Sel.Name]; ok && pointerReceiver(callee) {
					// recv.m: a field and a method never share a name, so
					// this is a same-receiver call to walk into. (Method
					// values count the same as calls: they read whatever
					// the method reads.)
					mi.calls = append(mi.calls, n.Sel.Name)
				}
			}
		case *ast.StarExpr:
			if isRecv(n.X) {
				// *recv copied (or compared) wholesale reads every field.
				mi.coversAll = true
			}
		}
		return true
	})
	return mi
}

// recvTypeName returns the receiver's type name, or "".
func recvTypeName(fn *ast.FuncDecl) string {
	if fn.Recv == nil || len(fn.Recv.List) == 0 {
		return ""
	}
	t := fn.Recv.List[0].Type
	if se, ok := t.(*ast.StarExpr); ok {
		t = se.X
	}
	// Strip type-parameter instantiation on generic receivers.
	if ie, ok := t.(*ast.IndexExpr); ok {
		t = ie.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name
	}
	return ""
}

func pointerReceiver(fn *ast.FuncDecl) bool {
	if fn.Recv == nil || len(fn.Recv.List) == 0 {
		return false
	}
	_, ok := fn.Recv.List[0].Type.(*ast.StarExpr)
	return ok
}

func receiverIdent(fn *ast.FuncDecl) *ast.Ident {
	if fn.Recv == nil || len(fn.Recv.List) == 0 || len(fn.Recv.List[0].Names) == 0 {
		return nil
	}
	return fn.Recv.List[0].Names[0]
}

func receiverName(fn *ast.FuncDecl) string {
	id := receiverIdent(fn)
	if id == nil || id.Name == "_" {
		return ""
	}
	return id.Name
}

// embeddedName digs the type identifier out of an embedded field.
func embeddedName(t ast.Expr) *ast.Ident {
	switch t := t.(type) {
	case *ast.Ident:
		return t
	case *ast.StarExpr:
		return embeddedName(t.X)
	case *ast.SelectorExpr:
		return t.Sel
	}
	return nil
}
