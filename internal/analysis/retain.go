package analysis

import (
	"go/ast"
	"go/types"
)

// Retain encodes the zero-copy ownership-transfer contract from PR 3:
// in the transport layers (netem, h2), a []byte parameter is borrowed
// unless the function's doc comment says //repolint:owns. Storing a
// borrowed slice — the parameter itself, a subslice of it, or an
// element of a [][]byte parameter — into a struct field or
// package-level variable silently extends the caller's write
// obligation past the call, which is exactly the aliasing bug class
// the writer-owned transfer discipline exists to prevent.
var Retain = &Analyzer{
	Name: "retain",
	Doc: "flag []byte parameters stored into fields or package state " +
		"by functions not annotated //repolint:owns",
	Scope: []string{"repro/internal/netem", "repro/internal/h2"},
	Run:   runRetain,
}

func runRetain(pass *Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || hasDirective(fn.Doc, VerbOwns) {
				continue
			}
			checkRetain(pass, fn)
		}
	}
	return nil
}

func checkRetain(pass *Pass, fn *ast.FuncDecl) {
	params := byteSliceParams(pass, fn)
	if len(params) == 0 {
		return
	}

	// paramOf resolves an expression to the borrowed parameter it
	// aliases: the parameter itself, a subslice, an element of a
	// [][]byte parameter, or an append chain seeded or extended with
	// one of those.
	var paramOf func(e ast.Expr) *ast.Ident
	paramOf = func(e ast.Expr) *ast.Ident {
		switch e := ast.Unparen(e).(type) {
		case *ast.Ident:
			if obj := objectOf(pass.TypesInfo, e); obj != nil && params[obj] != nil {
				return params[obj]
			}
		case *ast.SliceExpr:
			return paramOf(e.X)
		case *ast.IndexExpr:
			return paramOf(e.X)
		case *ast.CallExpr:
			if id, ok := ast.Unparen(e.Fun).(*ast.Ident); ok && id.Name == "append" {
				if _, isBuiltin := objectOf(pass.TypesInfo, id).(*types.Builtin); isBuiltin {
					for i, arg := range e.Args {
						// append(dst, p) and append(dst, bs...) retain
						// slice headers; append(dst, b...) of a []byte
						// into a []byte copies bytes and is safe.
						if tv, ok := pass.TypesInfo.Types[arg]; ok && i > 0 &&
							e.Ellipsis.IsValid() && i == len(e.Args)-1 && isByteSlice(tv.Type) {
							continue
						}
						if p := paramOf(arg); p != nil {
							return p
						}
					}
				}
			}
		}
		return nil
	}

	ast.Inspect(fn.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		if len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, lhs := range as.Lhs {
			target := escapingTarget(pass, lhs)
			if target == "" {
				continue
			}
			if p := paramOf(as.Rhs[i]); p != nil {
				pass.Reportf(as.Rhs[i].Pos(),
					"storing []byte parameter %s into %s retains the caller's buffer past the call; the transport contract is borrow-only — annotate the function //repolint:owns if ownership really transfers here",
					p.Name, target)
			}
		}
		return true
	})
}

// byteSliceParams maps the object of each []byte / [][]byte parameter
// (including the receiver's — not applicable — and named results — also
// excluded) to its declaring identifier.
func byteSliceParams(pass *Pass, fn *ast.FuncDecl) map[types.Object]*ast.Ident {
	params := make(map[types.Object]*ast.Ident)
	if fn.Type.Params == nil {
		return params
	}
	for _, f := range fn.Type.Params.List {
		tv, ok := pass.TypesInfo.Types[f.Type]
		if !ok || !(isByteSlice(tv.Type) || isByteSliceSlice(tv.Type)) {
			continue
		}
		for _, name := range f.Names {
			if obj := pass.TypesInfo.Defs[name]; obj != nil {
				params[obj] = name
			}
		}
	}
	if len(params) == 0 {
		return nil
	}
	return params
}

// escapingTarget describes lhs when assigning to it publishes the value
// beyond the function's locals: a field of anything, or a package-level
// variable. It returns "" for plain locals.
func escapingTarget(pass *Pass, lhs ast.Expr) string {
	switch e := ast.Unparen(lhs).(type) {
	case *ast.SelectorExpr:
		// Only field stores count; a qualified package identifier
		// (pkg.Var) resolves below through the Ident case instead.
		if sel, ok := pass.TypesInfo.Selections[e]; ok && sel.Kind() == types.FieldVal {
			return "field " + e.Sel.Name
		}
		if obj := objectOf(pass.TypesInfo, e.Sel); obj != nil && isPackageLevelVar(obj) {
			return "package variable " + e.Sel.Name
		}
	case *ast.IndexExpr:
		return escapingTarget(pass, e.X)
	case *ast.StarExpr:
		return escapingTarget(pass, e.X)
	case *ast.Ident:
		if obj := objectOf(pass.TypesInfo, e); obj != nil && isPackageLevelVar(obj) {
			return "package variable " + e.Name
		}
	}
	return ""
}

func isPackageLevelVar(obj types.Object) bool {
	v, ok := obj.(*types.Var)
	if !ok || v.Pkg() == nil {
		return false
	}
	return v.Parent() == v.Pkg().Scope()
}
