package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// DirectivePrefix marks a repolint directive comment. Directives use
// the Go toolchain's directive shape (no space after //, lower-case
// verb), so gofmt leaves them alone:
//
//	//repolint:ordered <reason>    escape hatch: map iteration is order-safe
//	//repolint:owns                function takes ownership of []byte params
//	//repolint:hotpath             enforce the hot-path allocation contract
//	//repolint:pooled              type's Reset must cover every field
//	//repolint:keep <reason>       field deliberately survives Reset
//	//repolint:notpooled <reason>  a Reset method that is not a pool reset
//
// A reason runs to the end of the line, except that "//" cuts it short
// so analysistest fixtures can carry expectations on the same line.
const DirectivePrefix = "//repolint:"

// Directive verbs.
const (
	VerbOrdered   = "ordered"
	VerbOwns      = "owns"
	VerbHotpath   = "hotpath"
	VerbPooled    = "pooled"
	VerbKeep      = "keep"
	VerbNotPooled = "notpooled"
)

// reasonRequired lists the verbs whose escape only counts with a
// written justification; knownVerbs is the full vocabulary.
var (
	reasonRequired = map[string]bool{VerbOrdered: true, VerbKeep: true, VerbNotPooled: true}
	knownVerbs     = map[string]bool{
		VerbOrdered: true, VerbOwns: true, VerbHotpath: true,
		VerbPooled: true, VerbKeep: true, VerbNotPooled: true,
	}
)

// A Directive is one parsed //repolint: comment.
type Directive struct {
	Verb   string
	Reason string
	Pos    token.Pos
}

// parseDirective parses a single comment line. ok is false for
// ordinary comments.
func parseDirective(c *ast.Comment) (d Directive, ok bool) {
	if !strings.HasPrefix(c.Text, DirectivePrefix) {
		return Directive{}, false
	}
	rest := c.Text[len(DirectivePrefix):]
	verb, reason := rest, ""
	if i := strings.IndexAny(rest, " \t"); i >= 0 {
		verb, reason = rest[:i], rest[i+1:]
	}
	// Let a trailing comment-in-comment (analysistest "// want"
	// expectations) terminate the reason.
	if i := strings.Index(reason, "//"); i >= 0 {
		reason = reason[:i]
	}
	return Directive{Verb: verb, Reason: strings.TrimSpace(reason), Pos: c.Pos()}, true
}

// groupDirective returns the first directive with the given verb in a
// comment group (doc comment or trailing line comment).
func groupDirective(g *ast.CommentGroup, verb string) (Directive, bool) {
	if g == nil {
		return Directive{}, false
	}
	for _, c := range g.List {
		if d, ok := parseDirective(c); ok && d.Verb == verb {
			return d, true
		}
	}
	return Directive{}, false
}

// hasDirective reports whether the comment group carries the verb.
func hasDirective(g *ast.CommentGroup, verb string) bool {
	_, ok := groupDirective(g, verb)
	return ok
}

// lineOf is a shorthand for the fset line of a position.
func lineOf(fset *token.FileSet, pos token.Pos) int {
	return fset.Position(pos).Line
}

// Directives validates directive syntax and placement, so a typo'd or
// misattached escape hatch fails the build instead of silently
// disabling a contract check. The four contract analyzers assume
// well-placed directives and leave malformed ones to this analyzer.
var Directives = &Analyzer{
	Name: "directives",
	Doc: "check that every //repolint: directive uses a known verb, carries " +
		"a reason where one is required, and is attached to the node kind " +
		"its verb applies to",
	Run: runDirectives,
}

// directiveHomes records, per comment position, what kind of node the
// comment documents.
type directiveHome struct {
	kind string        // "func", "type", "field", or "" for free-floating
	fn   *ast.FuncDecl // set for kind "func"
	spec *ast.TypeSpec // set for kind "type"
}

func runDirectives(pass *Pass) error {
	for _, file := range pass.Files {
		homes := collectHomes(file)
		rangeLines := collectRangeLines(pass, file)
		for _, g := range file.Comments {
			for _, c := range g.List {
				d, ok := parseDirective(c)
				if !ok {
					continue
				}
				checkDirective(pass, d, homes[c.Pos()], rangeLines)
			}
		}
	}
	return nil
}

// collectHomes maps each comment position inside a doc/field comment to
// the node it documents.
func collectHomes(file *ast.File) map[token.Pos]directiveHome {
	homes := make(map[token.Pos]directiveHome)
	claim := func(g *ast.CommentGroup, h directiveHome) {
		if g == nil {
			return
		}
		for _, c := range g.List {
			homes[c.Pos()] = h
		}
	}
	ast.Inspect(file, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncDecl:
			claim(n.Doc, directiveHome{kind: "func", fn: n})
		case *ast.GenDecl:
			// A doc comment on a single-spec type declaration documents
			// the type itself.
			if n.Tok == token.TYPE && len(n.Specs) == 1 {
				if ts, ok := n.Specs[0].(*ast.TypeSpec); ok {
					claim(n.Doc, directiveHome{kind: "type", spec: ts})
				}
			}
		case *ast.TypeSpec:
			claim(n.Doc, directiveHome{kind: "type", spec: n})
		case *ast.StructType:
			for _, f := range n.Fields.List {
				claim(f.Doc, directiveHome{kind: "field"})
				claim(f.Comment, directiveHome{kind: "field"})
			}
		}
		return true
	})
	return homes
}

// collectRangeLines maps source lines to the range statement starting
// there (for //repolint:ordered attachment) plus whether it ranges over
// a map.
func collectRangeLines(pass *Pass, file *ast.File) map[int]bool {
	lines := make(map[int]bool) // line -> ranges over a map
	ast.Inspect(file, func(n ast.Node) bool {
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		overMap := false
		if tv, ok := pass.TypesInfo.Types[rs.X]; ok {
			_, overMap = tv.Type.Underlying().(*types.Map)
		}
		lines[lineOf(pass.Fset, rs.Pos())] = overMap
		return true
	})
	return lines
}

func checkDirective(pass *Pass, d Directive, home directiveHome, rangeLines map[int]bool) {
	if !knownVerbs[d.Verb] {
		pass.Reportf(d.Pos, "unknown repolint directive %q (known: ordered, owns, hotpath, pooled, keep, notpooled)", d.Verb)
		return
	}
	if reasonRequired[d.Verb] && d.Reason == "" {
		pass.Reportf(d.Pos, "//repolint:%s requires a reason", d.Verb)
	}
	switch d.Verb {
	case VerbOrdered:
		line := lineOf(pass.Fset, d.Pos)
		// Attached when it trails the range line or immediately
		// precedes it.
		overMap, onRange := rangeLines[line]
		if !onRange {
			overMap, onRange = rangeLines[line+1]
		}
		switch {
		case !onRange:
			pass.Reportf(d.Pos, "//repolint:ordered is not attached to a range statement")
		case !overMap:
			pass.Reportf(d.Pos, "//repolint:ordered on a range that does not iterate a map")
		}
	case VerbHotpath:
		if home.kind != "func" {
			pass.Reportf(d.Pos, "//repolint:hotpath must be in a function's doc comment")
		}
	case VerbOwns:
		if home.kind != "func" {
			pass.Reportf(d.Pos, "//repolint:owns must be in a function's doc comment")
			return
		}
		if !funcHasByteSliceParam(pass, home.fn) {
			pass.Reportf(d.Pos, "//repolint:owns on a function without []byte parameters")
		}
	case VerbPooled:
		if home.kind != "type" || home.spec == nil {
			pass.Reportf(d.Pos, "//repolint:pooled must be in a struct type's doc comment")
			return
		}
		if _, ok := home.spec.Type.(*ast.StructType); !ok {
			pass.Reportf(d.Pos, "//repolint:pooled must be in a struct type's doc comment")
		}
	case VerbKeep:
		if home.kind != "field" {
			pass.Reportf(d.Pos, "//repolint:keep must be attached to a struct field")
		}
	case VerbNotPooled:
		if home.kind != "func" || home.fn.Recv == nil || !isResetName(home.fn.Name.Name) {
			pass.Reportf(d.Pos, "//repolint:notpooled must be in the doc comment of a Reset method")
		}
	}
}

func funcHasByteSliceParam(pass *Pass, fn *ast.FuncDecl) bool {
	if fn.Type.Params == nil {
		return false
	}
	for _, f := range fn.Type.Params.List {
		if tv, ok := pass.TypesInfo.Types[f.Type]; ok {
			if isByteSlice(tv.Type) || isByteSliceSlice(tv.Type) {
				return true
			}
		}
	}
	return false
}

// isResetName reports whether name is a pool-reset method name; both
// exported and package-internal spellings count.
func isResetName(name string) bool { return name == "Reset" || name == "reset" }
