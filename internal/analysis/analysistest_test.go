package analysis

// The fixture harness: each analyzer has a txtar archive under testdata/
// holding a small package seeded with violations. Lines that should
// produce a diagnostic carry a trailing
//
//	// want `regexp`
//
// comment (several backtick-quoted patterns on one line expect several
// diagnostics on that line). The harness type-checks the fixture with
// the same source importer the repolint driver uses, runs one analyzer,
// and requires an exact match: every diagnostic wanted, every want
// satisfied.

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// fixtureFile is one file of a txtar archive.
type fixtureFile struct {
	name string
	data string
}

// parseTxtar splits a txtar archive into its files. Only the subset of
// the format the fixtures use is supported: "-- name --" separators with
// everything before the first separator ignored.
func parseTxtar(data string) []fixtureFile {
	var files []fixtureFile
	var cur *fixtureFile
	for _, line := range strings.SplitAfter(data, "\n") {
		trimmed := strings.TrimSuffix(line, "\n")
		if name, ok := txtarName(trimmed); ok {
			files = append(files, fixtureFile{name: name})
			cur = &files[len(files)-1]
			continue
		}
		if cur != nil {
			cur.data += line
		}
	}
	return files
}

func txtarName(line string) (string, bool) {
	if !strings.HasPrefix(line, "-- ") || !strings.HasSuffix(line, " --") {
		return "", false
	}
	name := strings.TrimSpace(line[3 : len(line)-3])
	return name, name != ""
}

// wantRE extracts the backtick-quoted patterns after a "want" marker.
var wantRE = regexp.MustCompile("want((?:\\s+`[^`]*`)+)")

// expectation is one "// want" pattern at a file:line.
type expectation struct {
	re      *regexp.Regexp
	matched bool
}

type lineKey struct {
	file string
	line int
}

// loadFixture parses and type-checks every .go file of the archive as a
// single package.
func loadFixture(t *testing.T, path string) (*Pass, *token.FileSet, map[lineKey][]*expectation) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	build.Default.CgoEnabled = false
	fset := token.NewFileSet()
	var files []*ast.File
	for _, ff := range parseTxtar(string(data)) {
		if !strings.HasSuffix(ff.name, ".go") {
			continue
		}
		f, err := parser.ParseFile(fset, ff.name, ff.data, parser.ParseComments)
		if err != nil {
			t.Fatalf("parsing fixture file %s: %v", ff.name, err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		t.Fatalf("fixture %s holds no .go files", path)
	}

	info := newTypesInfo()
	conf := types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	pkg, err := conf.Check("fixture", fset, files, info)
	if err != nil {
		t.Fatalf("type-checking fixture %s: %v", path, err)
	}

	wants := make(map[lineKey][]*expectation)
	for _, f := range files {
		fname := fset.Position(f.Pos()).Filename
		for _, g := range f.Comments {
			for _, c := range g.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				key := lineKey{fname, fset.Position(c.Pos()).Line}
				for _, pat := range regexp.MustCompile("`[^`]*`").FindAllString(m[1], -1) {
					re, err := regexp.Compile(pat[1 : len(pat)-1])
					if err != nil {
						t.Fatalf("%s:%d: bad want pattern %s: %v", fname, key.line, pat, err)
					}
					wants[key] = append(wants[key], &expectation{re: re})
				}
			}
		}
	}

	return &Pass{
		Fset:      fset,
		Files:     files,
		Pkg:       pkg,
		TypesInfo: info,
	}, fset, wants
}

// runFixture runs one analyzer over testdata/<name>.txtar and reports
// every mismatch between produced and expected diagnostics.
func runFixture(t *testing.T, a *Analyzer) {
	t.Helper()
	pass, fset, wants := loadFixture(t, filepath.Join("testdata", a.Name+".txtar"))
	pass.Analyzer = a

	var unexpected []string
	pass.Report = func(d Diagnostic) {
		p := fset.Position(d.Pos)
		key := lineKey{p.Filename, p.Line}
		for _, w := range wants[key] {
			if !w.matched && w.re.MatchString(d.Message) {
				w.matched = true
				return
			}
		}
		unexpected = append(unexpected, fmt.Sprintf("%s: unexpected diagnostic: %s", p, d.Message))
	}
	if err := a.Run(pass); err != nil {
		t.Fatalf("%s: %v", a.Name, err)
	}

	for _, msg := range unexpected {
		t.Error(msg)
	}
	for key, ws := range wants {
		for _, w := range ws {
			if !w.matched {
				t.Errorf("%s:%d: no diagnostic matched want %q", key.file, key.line, w.re.String())
			}
		}
	}
}

func TestDeterminismFixture(t *testing.T)   { runFixture(t, Determinism) }
func TestResetCompleteFixture(t *testing.T) { runFixture(t, ResetComplete) }
func TestHotpathFixture(t *testing.T)       { runFixture(t, Hotpath) }
func TestRetainFixture(t *testing.T)        { runFixture(t, Retain) }
func TestDirectivesFixture(t *testing.T)    { runFixture(t, Directives) }
