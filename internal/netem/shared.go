package netem

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/sim"
)

// SharedProfile describes a shared-bottleneck topology: N per-client
// access links (each a full Profile) feeding one FIFO queue per
// direction — a household behind one DSL uplink, the devices of a cell
// sector behind its backhaul, an office LAN behind its NAT uplink.
// The shared pipes serialize at DownRate/UpRate, add RTT/2 of
// propagation each way, and tail-drop data segments past QueueBytes;
// contention between clients happens in these queues.
type SharedProfile struct {
	// Access is the per-client access link. Its RTT is the access
	// segment only; each client's effective round trip is
	// Access.RTT + RTT.
	Access Profile
	// DownRate/UpRate are the shared bottleneck's serialization rates.
	// The access rates must be at least these — the shared link is the
	// bottleneck by construction, otherwise contention would be hidden
	// behind the access links and the topology would measure nothing.
	DownRate Rate
	UpRate   Rate
	// RTT is the round-trip propagation across the shared segment.
	RTT time.Duration
	// QueueBytes bounds each shared direction's FIFO queue.
	QueueBytes int
	// Clients is the number of access links feeding the bottleneck.
	Clients int
	// ArrivalSpread staggers client start times: per-client offsets are
	// drawn deterministically from [0, ArrivalSpread) by ArrivalOffsets.
	// Zero starts every client at once.
	ArrivalSpread time.Duration
}

// Validate reports whether the shared profile is internally
// consistent, mirroring Profile.Validate's queue-vs-MSS rule for the
// shared queue.
func (p SharedProfile) Validate() error {
	if err := p.Access.Validate(); err != nil {
		return fmt.Errorf("netem: shared topology access link: %w", err)
	}
	switch {
	case p.DownRate <= 0 || p.UpRate <= 0:
		return fmt.Errorf("netem: shared rates must be positive (down=%d up=%d)", p.DownRate, p.UpRate)
	case p.Access.DownRate < p.DownRate || p.Access.UpRate < p.UpRate:
		return fmt.Errorf("netem: access link (%d/%d) slower than the shared bottleneck (%d/%d): the shared link must be the bottleneck or contention is hidden on the access side",
			p.Access.DownRate, p.Access.UpRate, p.DownRate, p.UpRate)
	case p.RTT < 0:
		return fmt.Errorf("netem: negative shared RTT %v", p.RTT)
	case p.QueueBytes < 0:
		return fmt.Errorf("netem: negative shared queue limit %d", p.QueueBytes)
	case p.QueueBytes > 0 && p.QueueBytes < p.Access.MSS+p.Access.SegOverhead:
		return fmt.Errorf("netem: shared queue limit %d cannot hold one segment (MSS %d + overhead %d): every segment would tail-drop",
			p.QueueBytes, p.Access.MSS, p.Access.SegOverhead)
	case p.Clients <= 0:
		return fmt.Errorf("netem: shared topology needs at least one client, got %d", p.Clients)
	case p.ArrivalSpread < 0:
		return fmt.Errorf("netem: negative arrival spread %v", p.ArrivalSpread)
	}
	return nil
}

// clientProfile is the effective per-client profile: the access link
// with the shared segment's propagation folded into the RTT, so
// handshake timing and retransmit timers see the full path.
func (p SharedProfile) clientProfile() Profile {
	prof := p.Access
	prof.RTT = p.Access.RTT + p.RTT
	return prof
}

// ArrivalOffsets appends the per-client start offsets for one run to
// dst (reusing its capacity) and returns it. Offsets are drawn from a
// generator seeded only by the run seed, so a (seed, Clients,
// ArrivalSpread) triple always yields the same offsets regardless of
// worker or merge order.
func (p SharedProfile) ArrivalOffsets(seed int64, dst []time.Duration) []time.Duration {
	dst = dst[:0]
	rng := rand.New(rand.NewSource(seed ^ 0x0ff5e7))
	for i := 0; i < p.Clients; i++ {
		var off time.Duration
		if p.ArrivalSpread > 0 {
			off = time.Duration(rng.Int63n(int64(p.ArrivalSpread)))
		}
		dst = append(dst, off)
	}
	return dst
}

// Topology is N client Networks contending for one shared bottleneck
// on a single simulator: each client keeps its own access pipes (and
// its own congestion control, connections and segment pool), and every
// flow's segments additionally traverse the shared pipes, where the
// clients' traffic interleaves in FIFO order.
//
// A Topology deliberately has no Snapshot/Restore: population runs
// bypass the fork-at-divergence checkpoint machinery deterministically
// (like fault-bearing runs do), which the core package pins with a
// test. Reset re-arms everything for a new run, growing or shrinking
// the client pool as the profile demands.
//
//repolint:pooled
type Topology struct {
	s      *sim.Sim //repolint:keep bound at NewTopology; the owning Sim is Reset in place
	Shared SharedProfile
	xDown  *pipe // shared downlink (servers -> clients)
	xUp    *pipe // shared uplink (clients -> servers)
	// clients is the pooled per-client Network set; the first
	// Shared.Clients entries are active and carry the shared pipes.
	clients []*Network
}

// NewTopology builds a shared-bottleneck topology on the given
// simulator. Like New it panics on an invalid profile; topologies are
// static configuration, not runtime input.
func NewTopology(s *sim.Sim, sp SharedProfile) *Topology {
	t := &Topology{
		s:     s,
		xDown: &pipe{s: s, lane: sim.NewLane(s)},
		xUp:   &pipe{s: s, lane: sim.NewLane(s)},
	}
	t.Reset(sp)
	return t
}

// Reset re-arms the topology for a new run under sp: shared pipes
// cleared, every active client Network reset against the effective
// per-client profile and re-attached to the shared pipes. The client
// pool grows on demand and surplus clients are left detached, so
// sweeping a population axis (1, 4, 16, ... clients) on one warmed
// Topology reallocates nothing after the high-water mark. The owning
// simulator must have been Reset (or be fresh). Panics on an invalid
// profile, like NewTopology.
func (t *Topology) Reset(sp SharedProfile) {
	if err := sp.Validate(); err != nil {
		panic(err)
	}
	t.Shared = sp
	t.xDown.reset(sp.DownRate, sp.RTT/2, sp.QueueBytes)
	t.xUp.reset(sp.UpRate, sp.RTT/2, sp.QueueBytes)
	prof := sp.clientProfile()
	accessProp := sp.Access.RTT / 2
	for len(t.clients) < sp.Clients {
		t.clients = append(t.clients, newNetwork(t.s, prof, accessProp))
	}
	for i, c := range t.clients {
		if i >= sp.Clients {
			// Surplus pooled client: stale state is reset (and the shared
			// pipes attached) when a later profile activates it again.
			break
		}
		c.resetWith(prof, accessProp)
		c.xDown, c.xUp = t.xDown, t.xUp
	}
}

// Client returns the i-th client's Network (0 <= i < Shared.Clients).
// The returned Network is owned by the topology: it is valid until the
// next Reset, and its fault helpers (CutLink etc.) act on that
// client's access link only.
func (t *Topology) Client(i int) *Network { return t.clients[i] }

// SharedDownDelivered returns total bytes delivered through the shared
// downlink, for tests.
func (t *Topology) SharedDownDelivered() int64 { return t.xDown.delivered }

// SharedUpDelivered returns total bytes delivered through the shared
// uplink, for tests.
func (t *Topology) SharedUpDelivered() int64 { return t.xUp.delivered }

// SharedDrops returns tail-dropped segments at the shared queues in
// both directions.
func (t *Topology) SharedDrops() int64 { return t.xDown.dropped + t.xUp.dropped }
