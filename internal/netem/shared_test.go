package netem

import (
	"strings"
	"testing"
	"time"

	"repro/internal/sim"
)

// testShared returns a valid shared-bottleneck profile: fast fiber
// access links feeding a DSL-grade shared uplink, the household shape.
func testShared(clients int) SharedProfile {
	access := Profile{
		DownRate:      300 * Mbps,
		UpRate:        300 * Mbps,
		RTT:           4 * time.Millisecond,
		MSS:           1460,
		SegOverhead:   40,
		QueueBytes:    256 * 1024,
		InitialCwnd:   10,
		HandshakeRTTs: 2,
	}
	return SharedProfile{
		Access:     access,
		DownRate:   16 * Mbps,
		UpRate:     1 * Mbps,
		RTT:        46 * time.Millisecond,
		QueueBytes: 192 * 1024,
		Clients:    clients,
	}
}

func TestSharedProfileValidate(t *testing.T) {
	if err := testShared(4).Validate(); err != nil {
		t.Fatalf("valid profile rejected: %v", err)
	}
	cases := []struct {
		name string
		mut  func(*SharedProfile)
		want string
	}{
		{"bad access", func(p *SharedProfile) { p.Access.MSS = 0 }, "shared topology access link"},
		{"zero shared rate", func(p *SharedProfile) { p.UpRate = 0 }, "shared rates must be positive"},
		{"access slower than shared", func(p *SharedProfile) { p.Access.DownRate = 8 * Mbps }, "slower than the shared bottleneck"},
		{"negative shared RTT", func(p *SharedProfile) { p.RTT = -time.Second }, "negative shared RTT"},
		{"negative shared queue", func(p *SharedProfile) { p.QueueBytes = -1 }, "negative shared queue limit"},
		{"queue below one segment", func(p *SharedProfile) { p.QueueBytes = 100 }, "cannot hold one segment"},
		{"no clients", func(p *SharedProfile) { p.Clients = 0 }, "at least one client"},
		{"negative spread", func(p *SharedProfile) { p.ArrivalSpread = -time.Second }, "negative arrival spread"},
	}
	for _, tc := range cases {
		p := testShared(4)
		tc.mut(&p)
		err := p.Validate()
		if err == nil {
			t.Fatalf("%s: accepted", tc.name)
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

// topoTransfer loads size bytes server->client on each of the first
// clients networks of a fresh topology and returns each client's
// transfer time measured from its connectEnd.
func topoTransfer(t *testing.T, sp SharedProfile, size int) []time.Duration {
	t.Helper()
	s := sim.New(1)
	topo := NewTopology(s, sp)
	done := make([]time.Duration, sp.Clients)
	for i := 0; i < sp.Clients; i++ {
		i := i
		topo.Client(i).Dial(func(c *Conn) {
			start := s.Now()
			got := 0
			c.ClientEnd().SetReceiver(func(b []byte) {
				got += len(b)
				if got >= size {
					done[i] = s.Now() - start
				}
			})
			c.ServerEnd().Write(make([]byte, size))
		})
	}
	s.Run()
	for i, d := range done {
		if d == 0 {
			t.Fatalf("client %d never finished", i)
		}
	}
	return done
}

// TestTopologySharedBottleneck: a single client through the topology is
// limited by the shared link, not its fast access link.
func TestTopologySharedBottleneck(t *testing.T) {
	size := 1024 * 1024
	d := topoTransfer(t, testShared(1), size)[0]
	ideal := txTime(size, 16*Mbps)
	if d < ideal {
		t.Fatalf("transfer %v beat the shared link rate (%v)", d, ideal)
	}
	fastIdeal := txTime(size, 300*Mbps)
	if d < 10*fastIdeal {
		t.Fatalf("transfer %v looks access-limited, not shared-limited", d)
	}
}

// TestTopologyContention: two clients sharing the bottleneck each see
// materially slower transfers than a client alone.
func TestTopologyContention(t *testing.T) {
	size := 512 * 1024
	alone := topoTransfer(t, testShared(1), size)[0]
	both := topoTransfer(t, testShared(2), size)
	for i, d := range both {
		if d < time.Duration(float64(alone)*3/2) {
			t.Fatalf("client %d finished in %v, alone takes %v; no contention at the shared queue", i, d, alone)
		}
	}
}

// TestTopologySharedStats: traffic shows up on the shared pipes.
func TestTopologySharedStats(t *testing.T) {
	s := sim.New(1)
	topo := NewTopology(s, testShared(1))
	got := 0
	topo.Client(0).Dial(func(c *Conn) {
		c.ClientEnd().SetReceiver(func(b []byte) { got += len(b) })
		c.ServerEnd().Write(make([]byte, 64*1024))
	})
	s.Run()
	if got != 64*1024 {
		t.Fatalf("received %d bytes", got)
	}
	if topo.SharedDownDelivered() < 64*1024 {
		t.Fatalf("shared downlink delivered %d bytes, want >= payload", topo.SharedDownDelivered())
	}
	if topo.SharedUpDelivered() == 0 {
		t.Fatal("no ACK bytes crossed the shared uplink")
	}
}

// TestTopologyResetDeterministic: Reset on a warmed topology reproduces
// a fresh topology's timing exactly, including when the client count
// shrinks and grows across resets (pooled surplus clients must not
// leak state into later runs).
func TestTopologyResetDeterministic(t *testing.T) {
	run := func(s *sim.Sim, topo *Topology, clients, size int) []time.Duration {
		sp := testShared(clients)
		if topo == nil {
			topo = NewTopology(s, sp)
		} else {
			topo.Reset(sp)
		}
		done := make([]time.Duration, clients)
		for i := 0; i < clients; i++ {
			i := i
			topo.Client(i).Dial(func(c *Conn) {
				start := s.Now()
				got := 0
				c.ClientEnd().SetReceiver(func(b []byte) {
					got += len(b)
					if got >= size {
						done[i] = s.Now() - start
					}
				})
				c.ServerEnd().Write(make([]byte, size))
			})
		}
		s.Run()
		return done
	}

	sA := sim.New(7)
	fresh := run(sA, nil, 3, 128*1024)

	sB := sim.New(7)
	topo := NewTopology(sB, testShared(4))
	_ = run(sB, topo, 4, 64*1024) // warm with a different shape
	sB.Reset(7)
	reused := run(sB, topo, 3, 128*1024)

	for i := range fresh {
		if fresh[i] != reused[i] {
			t.Fatalf("client %d: fresh %v != reused %v", i, fresh[i], reused[i])
		}
	}
}

// TestNetworkResetDetaches: a flat Reset detaches the shared pipes, so
// a Network recycled out of a topology behaves like a plain access
// link again.
func TestNetworkResetDetaches(t *testing.T) {
	s := sim.New(1)
	topo := NewTopology(s, testShared(1))
	n := topo.Client(0)
	if n.xDown == nil || n.xUp == nil {
		t.Fatal("topology client not attached to shared pipes")
	}
	n.Reset(DSL())
	if n.xDown != nil || n.xUp != nil {
		t.Fatal("flat Reset left shared pipes attached")
	}
}

func TestArrivalOffsets(t *testing.T) {
	sp := testShared(8)
	sp.ArrivalSpread = 500 * time.Millisecond
	a := sp.ArrivalOffsets(42, nil)
	b := sp.ArrivalOffsets(42, make([]time.Duration, 0, 8))
	if len(a) != 8 || len(b) != 8 {
		t.Fatalf("lengths %d/%d", len(a), len(b))
	}
	distinct := false
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("offset %d differs across calls with the same seed: %v vs %v", i, a[i], b[i])
		}
		if a[i] < 0 || a[i] >= sp.ArrivalSpread {
			t.Fatalf("offset %d = %v outside [0, %v)", i, a[i], sp.ArrivalSpread)
		}
		if a[i] != a[0] {
			distinct = true
		}
	}
	if !distinct {
		t.Fatal("all offsets identical; spread not applied")
	}
	c := sp.ArrivalOffsets(43, nil)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical offsets")
	}
	sp.ArrivalSpread = 0
	z := sp.ArrivalOffsets(42, a) // reuse
	for i, off := range z {
		if off != 0 {
			t.Fatalf("zero spread: offset %d = %v", i, off)
		}
	}
}
