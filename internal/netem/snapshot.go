package netem

import (
	"time"

	"repro/internal/sim"
)

// Snapshot/Restore capture the network's full run state so an engine can
// fork a simulation at a checkpoint: pipe occupancy and delivery lanes,
// every connection's transport state, and every segment in flight.
//
// Ownership contract (mirrors sim.Snapshot): the snapshot owns its
// slices and reuses them across Snapshot calls; the *Conn, *segment and
// *sim.Event pointers it holds are aliases whose structs Restore
// rewrites in place, so retained handles — the events that carry a
// segment, a half-connection's retransmit timers, the h2 endpoints bound
// to a Conn's ends — keep working after a rewind. Segment payloads are
// zero-copy subslices of writer-owned bytes (append-only arenas and
// immutable recorded bodies), so alias copies of the part lists are
// stable across the fork. A NetSnapshot is only meaningful against the
// Network it was taken from, with the owning Sim restored to the
// matching sim.Snapshot.

// pipeState is the captured contents of one link direction.
type pipeState struct {
	rate      Rate
	prop      time.Duration
	limit     int
	cut       bool
	busyUntil time.Duration
	queued    int
	pending   []pendingRelease
	lane      sim.LaneSnapshot
	delivered int64
	dropped   int64
}

func (p *pipe) snapshot(dst *pipeState) {
	dst.rate, dst.prop, dst.limit, dst.cut = p.rate, p.prop, p.limit, p.cut
	dst.busyUntil, dst.queued = p.busyUntil, p.queued
	dst.pending = append(dst.pending[:0], p.pending[p.phead:]...)
	p.lane.Snapshot(&dst.lane)
	dst.delivered, dst.dropped = p.delivered, p.dropped
}

func (p *pipe) restore(st *pipeState) {
	p.rate, p.prop, p.limit, p.cut = st.rate, st.prop, st.limit, st.cut
	p.busyUntil, p.queued = st.busyUntil, st.queued
	p.pending = append(p.pending[:0], st.pending...)
	p.phead = 0
	p.lane.Restore(&st.lane)
	p.delivered, p.dropped = st.delivered, st.dropped
}

// halfState is the captured contents of one sending direction.
type halfState struct {
	cwnd      float64
	ssthresh  float64
	inflight  int
	chunks    [][]byte
	head      int
	off       int
	buffered  int
	onDrain   func()
	closed    bool
	nextSeq   int64
	expectSeq int64
	ooo       []*segment
	rtx       []*sim.Event
	sent      int64
	acked     int64
	rtxCount  int64
	rtt       time.Duration
}

func (h *halfConn) snapshot(dst *halfState) {
	dst.cwnd, dst.ssthresh, dst.inflight = h.cwnd, h.ssthresh, h.inflight
	dst.chunks = append(dst.chunks[:0], h.chunks...)
	dst.head, dst.off, dst.buffered = h.head, h.off, h.buffered
	dst.onDrain, dst.closed = h.onDrain, h.closed
	dst.nextSeq, dst.expectSeq = h.nextSeq, h.expectSeq
	dst.ooo = append(dst.ooo[:0], h.ooo...)
	dst.rtx = append(dst.rtx[:0], h.rtx...)
	dst.sent, dst.acked, dst.rtxCount, dst.rtt = h.sent, h.acked, h.rtxCount, h.rtt
}

func (h *halfConn) restore(st *halfState) {
	h.cwnd, h.ssthresh, h.inflight = st.cwnd, st.ssthresh, st.inflight
	clear(h.chunks)
	h.chunks = append(h.chunks[:0], st.chunks...)
	h.head, h.off, h.buffered = st.head, st.off, st.buffered
	h.onDrain, h.closed = st.onDrain, st.closed
	h.nextSeq, h.expectSeq = st.nextSeq, st.expectSeq
	clear(h.ooo)
	h.ooo = append(h.ooo[:0], st.ooo...)
	clear(h.rtx)
	h.rtx = append(h.rtx[:0], st.rtx...)
	h.sent, h.acked, h.rtxCount, h.rtt = st.sent, st.acked, st.rtxCount, st.rtt
}

// connState is the captured contents of one connection: both endpoints'
// callbacks and both sending directions.
type connState struct {
	c           *Conn
	established bool
	connectEnd  time.Duration
	closed      bool
	clientRecv  func([]byte)
	clientClose func()
	clientErr   func(error)
	serverRecv  func([]byte)
	serverClose func()
	serverErr   func(error)
	up          halfState // clientEnd.out (client -> server)
	down        halfState // serverEnd.out (server -> client)
}

// segState is the captured contents of one in-flight segment.
type segState struct {
	seg       *segment
	h         *halfConn
	seq       int64
	size      int
	attempt   int
	parts     [][]byte
	delivered bool
	ackDone   bool
}

// NetSnapshot is a deep copy of a Network's run state.
type NetSnapshot struct {
	prof       Profile
	nextConnID int
	down, up   pipeState
	conns      []connState
	segs       []segState
	segFree    []*segment
}

// Snapshot copies the network's run state into dst.
func (n *Network) Snapshot(dst *NetSnapshot) {
	dst.prof = n.Prof
	dst.nextConnID = n.nextConnID
	n.down.snapshot(&dst.down)
	n.up.snapshot(&dst.up)

	for len(dst.conns) < len(n.conns) {
		dst.conns = append(dst.conns, connState{})
	}
	clearConnStates(dst.conns[len(n.conns):])
	dst.conns = dst.conns[:len(n.conns)]
	for i, c := range n.conns {
		cs := &dst.conns[i]
		cs.c = c
		cs.established, cs.connectEnd, cs.closed = c.established, c.connectEnd, c.closed
		cs.clientRecv, cs.clientClose, cs.clientErr = c.clientEnd.recv, c.clientEnd.onClose, c.clientEnd.onError
		cs.serverRecv, cs.serverClose, cs.serverErr = c.serverEnd.recv, c.serverEnd.onClose, c.serverEnd.onError
		c.clientEnd.out.snapshot(&cs.up)
		c.serverEnd.out.snapshot(&cs.down)
	}

	for len(dst.segs) < len(n.segLive) {
		dst.segs = append(dst.segs, segState{})
	}
	clearSegStates(dst.segs[len(n.segLive):])
	dst.segs = dst.segs[:len(n.segLive)]
	for i, seg := range n.segLive {
		ss := &dst.segs[i]
		ss.seg, ss.h = seg, seg.h
		ss.seq, ss.size, ss.attempt = seg.seq, seg.size, seg.attempt
		ss.parts = append(ss.parts[:0], seg.parts...)
		ss.delivered, ss.ackDone = seg.delivered, seg.ackDone
	}

	dst.segFree = append(dst.segFree[:0], n.segFree...)
}

// clearConnStates drops pointer references held by unused tail entries
// (kept for their inner slice capacity) so they pin nothing.
func clearConnStates(tail []connState) {
	for i := range tail {
		cs := &tail[i]
		cs.c = nil
		cs.clientRecv, cs.clientClose, cs.serverRecv, cs.serverClose = nil, nil, nil, nil
		cs.clientErr, cs.serverErr = nil, nil
		scrubHalfState(&cs.up)
		scrubHalfState(&cs.down)
	}
}

func scrubHalfState(st *halfState) {
	clear(st.chunks)
	st.chunks = st.chunks[:0]
	st.onDrain = nil
	clear(st.ooo)
	st.ooo = st.ooo[:0]
	clear(st.rtx)
	st.rtx = st.rtx[:0]
}

func clearSegStates(tail []segState) {
	for i := range tail {
		ss := &tail[i]
		ss.seg, ss.h = nil, nil
		clear(ss.parts)
		ss.parts = ss.parts[:0]
	}
}

// Restore rewinds the network to the captured state. Connections dialed
// and segments allocated after the snapshot are dropped for the garbage
// collector; every object the snapshot references is rewritten in place.
func (n *Network) Restore(snap *NetSnapshot) {
	n.Prof = snap.prof
	n.nextConnID = snap.nextConnID
	n.down.restore(&snap.down)
	n.up.restore(&snap.up)

	clear(n.conns)
	n.conns = n.conns[:0]
	for i := range snap.conns {
		cs := &snap.conns[i]
		c := cs.c
		n.conns = append(n.conns, c)
		c.established, c.connectEnd, c.closed = cs.established, cs.connectEnd, cs.closed
		c.clientEnd.recv, c.clientEnd.onClose, c.clientEnd.onError = cs.clientRecv, cs.clientClose, cs.clientErr
		c.serverEnd.recv, c.serverEnd.onClose, c.serverEnd.onError = cs.serverRecv, cs.serverClose, cs.serverErr
		c.clientEnd.out.restore(&cs.up)
		c.serverEnd.out.restore(&cs.down)
	}

	clear(n.segLive)
	n.segLive = n.segLive[:0]
	for i := range snap.segs {
		ss := &snap.segs[i]
		seg := ss.seg
		seg.h = ss.h
		seg.seq, seg.size, seg.attempt = ss.seq, ss.size, ss.attempt
		clear(seg.parts)
		seg.parts = append(seg.parts[:0], ss.parts...)
		seg.delivered, seg.ackDone = ss.delivered, ss.ackDone
		seg.liveIdx = i
		n.segLive = append(n.segLive, seg)
	}

	// Rebuild the free list from the snapshot. A segment free at capture
	// time may have been reused since (it could even be live right now in
	// the abandoned timeline), so scrub each entry; a segment live at
	// capture was just rewritten above and is never in this list.
	clear(n.segFree)
	n.segFree = n.segFree[:0]
	for _, seg := range snap.segFree {
		scrubSeg(seg)
		n.segFree = append(n.segFree, seg)
	}
}
