package netem

import (
	"testing"
	"testing/quick"
	"time"

	"repro/internal/sim"
)

func newNet(t *testing.T, prof Profile) (*sim.Sim, *Network) {
	t.Helper()
	s := sim.New(1)
	return s, New(s, prof)
}

// transfer sends size bytes server->client and returns the virtual time at
// which the last byte arrived, measured from connectEnd.
func transfer(t *testing.T, prof Profile, size int) time.Duration {
	t.Helper()
	s, n := newNet(t, prof)
	var done, start time.Duration
	received := 0
	n.Dial(func(c *Conn) {
		start = s.Now()
		c.ClientEnd().SetReceiver(func(b []byte) {
			received += len(b)
			if received >= size {
				done = s.Now()
			}
		})
		c.ServerEnd().Write(make([]byte, size))
	})
	s.Run()
	if received != size {
		t.Fatalf("received %d bytes, want %d", received, size)
	}
	return done - start
}

func TestProfileValidate(t *testing.T) {
	if err := DSL().Validate(); err != nil {
		t.Fatalf("DSL profile invalid: %v", err)
	}
	bad := DSL()
	bad.DownRate = 0
	if bad.Validate() == nil {
		t.Fatal("zero rate accepted")
	}
	bad = DSL()
	bad.LossRate = 1.5
	if bad.Validate() == nil {
		t.Fatal("loss rate 1.5 accepted")
	}
	bad = DSL()
	bad.MSS = -1
	if bad.Validate() == nil {
		t.Fatal("negative MSS accepted")
	}
}

func TestHandshakeTakesConfiguredRTTs(t *testing.T) {
	s, n := newNet(t, DSL())
	var connectAt time.Duration
	n.Dial(func(c *Conn) { connectAt = s.Now() })
	s.Run()
	want := 2 * 50 * time.Millisecond
	if connectAt != want {
		t.Fatalf("connectEnd at %v, want %v", connectAt, want)
	}
}

func TestSmallTransferWithinInitialWindow(t *testing.T) {
	// 4 KB fits in IW10: one flight => ~RTT/2 prop + serialization.
	d := transfer(t, DSL(), 4096)
	if d < 25*time.Millisecond || d > 40*time.Millisecond {
		t.Fatalf("4KB transfer took %v, want roughly 25-40ms", d)
	}
}

func TestLargeTransferNeedsMultipleRTTs(t *testing.T) {
	// 200 KB exceeds IW10 (≈14.6 KB): slow start needs several round trips.
	d := transfer(t, DSL(), 200*1024)
	if d < 100*time.Millisecond {
		t.Fatalf("200KB transfer took only %v; slow start should need multiple RTTs", d)
	}
	// But far less than serialization alone would suggest if the window
	// never grew (sanity upper bound).
	if d > 2*time.Second {
		t.Fatalf("200KB transfer took %v, window apparently never grew", d)
	}
}

func TestThroughputApproachesLinkRate(t *testing.T) {
	// A 2 MB transfer should be bandwidth-limited: time ≈ size/rate.
	size := 2 * 1024 * 1024
	d := transfer(t, DSL(), size)
	ideal := txTime(size, 16*Mbps)
	if d < ideal {
		t.Fatalf("transfer faster than link rate: %v < %v", d, ideal)
	}
	if d > ideal*2 {
		t.Fatalf("transfer %v, more than 2x ideal %v", d, ideal)
	}
}

func TestInitialCwndAblation(t *testing.T) {
	profIW4 := DSL()
	profIW4.InitialCwnd = 4
	profIW32 := DSL()
	profIW32.InitialCwnd = 32
	d4 := transfer(t, profIW4, 60*1024)
	d10 := transfer(t, DSL(), 60*1024)
	d32 := transfer(t, profIW32, 60*1024)
	if !(d32 <= d10 && d10 <= d4) {
		t.Fatalf("larger IW should not be slower: IW4=%v IW10=%v IW32=%v", d4, d10, d32)
	}
	if d32 == d4 {
		t.Fatalf("IW should matter for 60KB: IW4=%v IW32=%v", d4, d32)
	}
}

func TestBidirectionalTransfer(t *testing.T) {
	s, n := newNet(t, DSL())
	gotUp, gotDown := 0, 0
	n.Dial(func(c *Conn) {
		c.ServerEnd().SetReceiver(func(b []byte) { gotUp += len(b) })
		c.ClientEnd().SetReceiver(func(b []byte) { gotDown += len(b) })
		c.ClientEnd().Write(make([]byte, 1000))
		c.ServerEnd().Write(make([]byte, 5000))
	})
	s.Run()
	if gotUp != 1000 || gotDown != 5000 {
		t.Fatalf("got up=%d down=%d, want 1000/5000", gotUp, gotDown)
	}
}

func TestUplinkSlowerThanDownlink(t *testing.T) {
	// Measured separately: a concurrent test would conflate the effect
	// with ACK starvation on the saturated uplink.
	size := 100 * 1024
	down := transfer(t, DSL(), size)

	s, n := newNet(t, DSL())
	var up, start time.Duration
	upGot := 0
	n.Dial(func(c *Conn) {
		start = s.Now()
		c.ServerEnd().SetReceiver(func(b []byte) {
			upGot += len(b)
			if upGot >= size {
				up = s.Now() - start
			}
		})
		c.ClientEnd().Write(make([]byte, size))
	})
	s.Run()
	if up <= down*2 {
		t.Fatalf("1 Mbit/s uplink (%v) should be much slower than 16 Mbit/s downlink (%v)", up, down)
	}
}

func TestSharedLinkContention(t *testing.T) {
	// Two connections sharing the downlink: each transfer takes longer
	// than it would alone.
	size := 512 * 1024
	alone := transfer(t, DSL(), size)

	s, n := newNet(t, DSL())
	var done [2]time.Duration
	for i := 0; i < 2; i++ {
		i := i
		n.Dial(func(c *Conn) {
			start := s.Now()
			got := 0
			c.ClientEnd().SetReceiver(func(b []byte) {
				got += len(b)
				if got >= size {
					done[i] = s.Now() - start
				}
			})
			c.ServerEnd().Write(make([]byte, size))
		})
	}
	s.Run()
	for i, d := range done {
		if d == 0 {
			t.Fatalf("conn %d never finished", i)
		}
		if d < time.Duration(float64(alone)*1.5) {
			t.Fatalf("conn %d finished in %v, alone takes %v; no contention visible", i, d, alone)
		}
	}
}

func TestOrderedDelivery(t *testing.T) {
	s, n := newNet(t, DSL())
	var got []byte
	payload := make([]byte, 50000)
	for i := range payload {
		payload[i] = byte(i % 251)
	}
	n.Dial(func(c *Conn) {
		c.ClientEnd().SetReceiver(func(b []byte) { got = append(got, b...) })
		// Write in odd-sized pieces to exercise segmentation.
		rest := payload
		for len(rest) > 0 {
			n := 1777
			if n > len(rest) {
				n = len(rest)
			}
			c.ServerEnd().Write(rest[:n])
			rest = rest[n:]
		}
	})
	s.Run()
	if len(got) != len(payload) {
		t.Fatalf("got %d bytes, want %d", len(got), len(payload))
	}
	for i := range got {
		if got[i] != payload[i] {
			t.Fatalf("byte %d corrupted: got %d want %d", i, got[i], payload[i])
		}
	}
}

func TestDrainCallback(t *testing.T) {
	s, n := newNet(t, DSL())
	drains := 0
	n.Dial(func(c *Conn) {
		se := c.ServerEnd()
		se.SetOnDrain(func() { drains++ })
		c.ClientEnd().SetReceiver(func([]byte) {})
		se.Write(make([]byte, 1000))
	})
	s.Run()
	if drains == 0 {
		t.Fatal("drain callback never fired")
	}
}

func TestLossRecovery(t *testing.T) {
	prof := DSL()
	prof.LossRate = 0.02
	s := sim.New(99)
	n := New(s, prof)
	size := 300 * 1024
	got := 0
	var rtx int64
	n.Dial(func(c *Conn) {
		c.ClientEnd().SetReceiver(func(b []byte) { got += len(b) })
		c.ServerEnd().Write(make([]byte, size))
		s.After(30*time.Second, func() { rtx = c.ServerEnd().Retransmits() })
	})
	s.Run()
	if got != size {
		t.Fatalf("lossy transfer incomplete: got %d want %d", got, size)
	}
	if rtx == 0 {
		t.Fatal("2% loss on 300KB should retransmit at least once")
	}
}

func TestWriteBeforeConnectDropped(t *testing.T) {
	s, n := newNet(t, DSL())
	got := 0
	c := n.Dial(func(c *Conn) {
		c.ClientEnd().SetReceiver(func(b []byte) { got += len(b) })
	})
	// A write before the handshake completes is dropped, not a panic:
	// peer-triggerable timing must surface as lost bytes, never crash.
	c.ServerEnd().Write([]byte("x"))
	s.Run()
	if got != 0 {
		t.Fatalf("received %d bytes written before connect", got)
	}
}

func TestCloseStopsWrites(t *testing.T) {
	s, n := newNet(t, DSL())
	got := 0
	n.Dial(func(c *Conn) {
		c.ClientEnd().SetReceiver(func(b []byte) { got += len(b) })
		c.Close()
		c.ServerEnd().Write(make([]byte, 100))
	})
	s.Run()
	if got != 0 {
		t.Fatalf("received %d bytes after close", got)
	}
}

// Property: transfers are conservation-preserving — exactly the written
// byte count arrives, once, for arbitrary write patterns.
func TestPropertyByteConservation(t *testing.T) {
	f := func(sizes []uint16) bool {
		total := 0
		for _, sz := range sizes {
			total += int(sz % 8000)
		}
		if total == 0 {
			return true
		}
		s := sim.New(3)
		n := New(s, DSL())
		got := 0
		n.Dial(func(c *Conn) {
			c.ClientEnd().SetReceiver(func(b []byte) { got += len(b) })
			for _, sz := range sizes {
				if m := int(sz % 8000); m > 0 {
					c.ServerEnd().Write(make([]byte, m))
				}
			}
		})
		s.Run()
		return got == total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestDeterministicTiming(t *testing.T) {
	d1 := transfer(t, DSL(), 123456)
	d2 := transfer(t, DSL(), 123456)
	if d1 != d2 {
		t.Fatalf("identical runs differ: %v vs %v", d1, d2)
	}
}

func TestProfileValidateRejectsNonsense(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Profile)
	}{
		{"negative overhead", func(p *Profile) { p.SegOverhead = -1 }},
		{"negative handshake", func(p *Profile) { p.HandshakeRTTs = -1 }},
		{"negative queue", func(p *Profile) { p.QueueBytes = -1 }},
		{"queue below one segment", func(p *Profile) { p.QueueBytes = 100 }},
	}
	for _, tc := range cases {
		p := DSL()
		tc.mutate(&p)
		if p.Validate() == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
	// Unlimited queue (0) stays valid regardless of MSS.
	p := DSL()
	p.QueueBytes = 0
	if err := p.Validate(); err != nil {
		t.Errorf("unlimited queue rejected: %v", err)
	}
}

func TestBufferedExcludesInflight(t *testing.T) {
	// End.Buffered reports bytes accepted by Write but not yet admitted
	// to the congestion window; in-flight bytes are Inflight's job. The
	// two partition everything not yet acked (there is deliberately no
	// combined helper — see the End docs).
	s, n := newNet(t, DSL())
	total := 100 * 1024
	n.Dial(func(c *Conn) {
		c.ClientEnd().SetReceiver(func([]byte) {})
		se := c.ServerEnd()
		se.Write(make([]byte, total))
		wantInflight := 10 * 1460 // IW10 admits exactly 10 full segments
		if se.Inflight() != wantInflight {
			t.Fatalf("Inflight = %d, want %d", se.Inflight(), wantInflight)
		}
		if se.Buffered() != total-wantInflight {
			t.Fatalf("Buffered = %d, want %d (excluding in-flight)", se.Buffered(), total-wantInflight)
		}
	})
	s.Run()
}

func TestWriteVMatchesSingleWrite(t *testing.T) {
	// WriteV pumps once for all chunks: segmentation, and therefore
	// delivery timing, is identical to one Write of the concatenation.
	run := func(split bool) time.Duration {
		s, n := newNet(t, DSL())
		var done, start time.Duration
		size := 50_000
		payload := make([]byte, size)
		received := 0
		n.Dial(func(c *Conn) {
			start = s.Now()
			c.ClientEnd().SetReceiver(func(b []byte) {
				received += len(b)
				if received >= size {
					done = s.Now()
				}
			})
			if split {
				c.ServerEnd().WriteV([][]byte{payload[:9], nil, payload[9:1700], payload[1700:]})
			} else {
				c.ServerEnd().Write(payload)
			}
		})
		s.Run()
		if received != size {
			t.Fatalf("received %d bytes, want %d", received, size)
		}
		return done - start
	}
	if single, vectored := run(false), run(true); single != vectored {
		t.Fatalf("WriteV timing %v differs from single Write %v", vectored, single)
	}
}

func TestCloseCancelsRetransmitTimers(t *testing.T) {
	prof := DSL()
	prof.LossRate = 0.999 // the first segment is (deterministically) lost
	s := sim.New(7)
	n := New(s, prof)
	var conn *Conn
	n.Dial(func(c *Conn) {
		conn = c
		c.ClientEnd().SetReceiver(func([]byte) {})
		c.ServerEnd().Write(make([]byte, 1000))
		if c.ServerEnd().Retransmits() == 0 {
			t.Fatal("expected the first segment to be lost")
		}
		before := s.Pending()
		c.Close()
		if s.Pending() >= before {
			t.Fatalf("close left retransmit timers queued: pending %d -> %d", before, s.Pending())
		}
	})
	s.Run()
	// No event may arm a new retransmit timer after Close: the loss-heavy
	// profile would otherwise keep rescheduling RTOs indefinitely.
	if rtx := conn.ServerEnd().Retransmits(); rtx != 1 {
		t.Fatalf("retransmit timers armed after close: count %d, want 1", rtx)
	}
}

func TestSegmentStructsAreReleased(t *testing.T) {
	// Steady-state transfer recycles segment structs through the
	// network's free list instead of allocating one per segment.
	s, n := newNet(t, DSL())
	received := 0
	n.Dial(func(c *Conn) {
		c.ClientEnd().SetReceiver(func(b []byte) { received += len(b) })
		c.ServerEnd().Write(make([]byte, 512*1024))
	})
	s.Run()
	if received != 512*1024 {
		t.Fatalf("received %d", received)
	}
	if len(n.segFree) == 0 {
		t.Fatal("no segments returned to the free list")
	}
	// The pool peaks at the maximum number of concurrently in-flight
	// segments (the congestion window), which must stay below the total
	// segment count — otherwise no struct was ever reused.
	if segs := 512 * 1024 / 1460; len(n.segFree) >= segs {
		t.Fatalf("free list holds %d segments for a %d-segment transfer; pooling not effective", len(n.segFree), segs)
	}
}
