// Package netem emulates the testbed network of the paper: a DSL access
// link (16 Mbit/s down, 1 Mbit/s up, 50 ms RTT by default, shaped with tc
// in the original) shared by every connection between the browser and the
// per-origin replay servers.
//
// The emulation is a discrete-event model on a sim.Sim virtual clock:
//
//   - Each direction of the access link is a FIFO pipe with a byte queue,
//     serialization delay (rate) and propagation delay (RTT/2).
//   - Connections are TCP-flavoured: a three-way handshake plus TLS round
//     trip, slow start from a configurable initial window, per-ACK window
//     growth, and ACK clocking through the reverse pipe. Loss can be
//     injected for ablations; the default is deterministic and loss-free.
//
// The model intentionally omits SACK, fast retransmit and delayed ACKs:
// the paper's effects (multi-RTT HTML transfers, bandwidth contention
// between push streams, idle network time) only require correct
// first-order transfer timing.
//
// # Zero-copy byte path
//
// The data plane is zero-copy end to end. Write and WriteV transfer
// ownership of the given slices to the transport: the bytes are queued,
// segmented and delivered as subslices of the writer's buffers, so the
// caller must not mutate them afterwards (for the testbed this holds
// trivially — frame headers come from an append-only arena and payloads
// are slices of immutable recorded response bodies). Receivers likewise
// get subslices of the writer's buffers and must copy anything they
// retain beyond the callback. Per-segment state lives in pooled segment
// structs and events are scheduled through sim.AtCall, so steady-state
// transfer allocates nothing per segment.
package netem

import (
	"fmt"
	"time"

	"repro/internal/sim"
)

// Rate is a link speed in bits per second.
type Rate int64

// Common rates.
const (
	Kbps Rate = 1_000
	Mbps Rate = 1_000_000
)

// Profile describes the emulated access link and transport parameters.
type Profile struct {
	DownRate      Rate          // server -> client direction
	UpRate        Rate          // client -> server direction
	RTT           time.Duration // base round-trip time between client and any server
	MSS           int           // TCP maximum segment size in bytes
	SegOverhead   int           // per-segment header overhead counted against the link
	QueueBytes    int           // per-direction bottleneck queue limit
	InitialCwnd   int           // initial congestion window in segments
	HandshakeRTTs int           // round trips before a connection is usable (TCP+TLS)
	LossRate      float64       // probability a data segment is lost (0 = deterministic)
}

// DSL returns the paper's evaluation setting (Sec. 4.1): 50 ms RTT,
// 16 Mbit/s downlink and 1 Mbit/s uplink.
func DSL() Profile {
	return Profile{
		DownRate:      16 * Mbps,
		UpRate:        1 * Mbps,
		RTT:           50 * time.Millisecond,
		MSS:           1460,
		SegOverhead:   40,
		QueueBytes:    192 * 1024,
		InitialCwnd:   10,
		HandshakeRTTs: 2,
	}
}

// Validate reports whether the profile is internally consistent. It is
// called at testbed construction (and again defensively in New) so a
// nonsensical scenario profile fails fast with a clear error.
func (p Profile) Validate() error {
	switch {
	case p.DownRate <= 0 || p.UpRate <= 0:
		return fmt.Errorf("netem: rates must be positive (down=%d up=%d)", p.DownRate, p.UpRate)
	case p.RTT < 0:
		return fmt.Errorf("netem: negative RTT %v", p.RTT)
	case p.MSS <= 0:
		return fmt.Errorf("netem: MSS must be positive, got %d", p.MSS)
	case p.SegOverhead < 0:
		return fmt.Errorf("netem: negative segment overhead %d", p.SegOverhead)
	case p.QueueBytes < 0:
		return fmt.Errorf("netem: negative queue limit %d", p.QueueBytes)
	case p.QueueBytes > 0 && p.QueueBytes < p.MSS+p.SegOverhead:
		return fmt.Errorf("netem: queue limit %d cannot hold one segment (MSS %d + overhead %d): every segment would tail-drop",
			p.QueueBytes, p.MSS, p.SegOverhead)
	case p.InitialCwnd <= 0:
		return fmt.Errorf("netem: initial cwnd must be positive, got %d", p.InitialCwnd)
	case p.HandshakeRTTs < 0:
		return fmt.Errorf("netem: negative handshake RTTs %d", p.HandshakeRTTs)
	case p.LossRate < 0 || p.LossRate >= 1:
		return fmt.Errorf("netem: loss rate %v out of [0,1)", p.LossRate)
	}
	return nil
}

// txTime returns the serialization delay for size bytes at rate r.
func txTime(size int, r Rate) time.Duration {
	return time.Duration(int64(size) * 8 * int64(time.Second) / int64(r))
}

// pendingRelease records bytes that leave the bottleneck queue when their
// serialization completes. The seq field is the sequence number a
// dedicated release event would have carried; applying releases lazily
// against (time, CurrentSeq) keeps queue occupancy, and therefore every
// tail-drop decision, bit-identical to the event-per-release model while
// scheduling only one real event (the delivery) per segment.
type pendingRelease struct {
	at   time.Duration
	seq  uint64
	size int
}

// pipe is one direction of the shared access link: a FIFO queue serving at
// a fixed rate followed by fixed propagation delay.
//
//repolint:pooled
type pipe struct {
	s         *sim.Sim  //repolint:keep bound at New; the owning Sim is Reset in place
	lane      *sim.Lane // FIFO delivery lane: admissions depart in order, so deliveries are monotone
	rate      Rate
	prop      time.Duration
	limit     int
	cut       bool // fault injection: a cut pipe tail-drops every non-forced admission
	busyUntil time.Duration
	queued    int

	pending []pendingRelease
	phead   int

	// stats
	delivered int64
	dropped   int64
}

// admit enqueues size bytes for transmission and returns the virtual time
// the last byte arrives at the far end; the caller schedules delivery.
// It reports false (a tail drop) when the queue limit would be exceeded.
// force bypasses the queue limit: ACKs are never dropped, because the
// model has no ACK-loss recovery (real TCP tolerates ACK loss through
// cumulative ACKs, which a unidirectional event model cannot reproduce
// faithfully).
//
//repolint:hotpath
func (p *pipe) admit(size int, force bool) (time.Duration, bool) {
	p.releaseExpired()
	if !force && (p.cut || (p.limit > 0 && p.queued+size > p.limit)) {
		p.dropped++
		return 0, false
	}
	now := p.s.Now()
	start := p.busyUntil
	if start < now {
		start = now
	}
	done := start + txTime(size, p.rate)
	p.busyUntil = done
	p.queued += size
	p.pending = append(p.pending, pendingRelease{at: done, seq: p.s.ReserveSeq(), size: size})
	return done + p.prop, true
}

// releaseExpired applies queue releases whose (virtual) event would have
// fired before the event currently executing. Releases are FIFO: admission
// times are monotone per pipe, so a single head index suffices.
//
//repolint:hotpath
func (p *pipe) releaseExpired() {
	now, cur := p.s.Now(), p.s.CurrentSeq()
	for p.phead < len(p.pending) {
		r := p.pending[p.phead]
		if r.at > now || (r.at == now && r.seq > cur) {
			break
		}
		p.queued -= r.size
		p.phead++
	}
	switch {
	case p.phead == len(p.pending):
		p.pending = p.pending[:0]
		p.phead = 0
	case p.phead > 64 && 2*p.phead >= len(p.pending):
		n := copy(p.pending, p.pending[p.phead:])
		p.pending = p.pending[:n]
		p.phead = 0
	}
}

// Network is the emulated access network shared by all connections of one
// page load: one downlink pipe, one uplink pipe.
//
//repolint:pooled
type Network struct {
	Sim  *sim.Sim //repolint:keep bound at New; the owning Sim is Reset in place
	Prof Profile
	down *pipe
	up   *pipe

	// xDown/xUp are the shared bottleneck pipes of an owning Topology;
	// when attached, every connection cascades its segments through the
	// shared hop after (down: before) the access pipes. nil on a flat
	// network. Reset detaches them; Topology.Reset re-attaches after
	// resetting each client, so they carry no per-run state of their own.
	xDown *pipe //repolint:keep attached by the owning Topology after Reset; nil on a flat network
	xUp   *pipe //repolint:keep attached by the owning Topology after Reset; nil on a flat network

	nextConnID int
	segFree    []*segment //repolint:keep recycled segment free list; putSeg scrubs entries

	// Live-object registries for Snapshot/Restore: every Conn ever dialed
	// this run, and every segment currently outside the free list. The
	// snapshot walks them to capture per-object contents; Restore rewrites
	// those same structs in place so events and timers that alias them
	// stay valid.
	conns   []*Conn
	segLive []*segment
}

// New builds a Network on the given simulator. It panics on an invalid
// profile; profiles are static configuration, not runtime input.
func New(s *sim.Sim, prof Profile) *Network {
	return newNetwork(s, prof, prof.RTT/2)
}

// newNetwork is New with the per-pipe propagation delay decoupled from
// the profile RTT: a Topology client's Prof.RTT is the *effective*
// round trip (access + shared segment, so handshake timing and RTOs
// are correct) while its access pipes carry only the access
// propagation — the shared pipes contribute the rest.
func newNetwork(s *sim.Sim, prof Profile, prop time.Duration) *Network {
	if err := prof.Validate(); err != nil {
		panic(err)
	}
	return &Network{
		Sim:  s,
		Prof: prof,
		down: &pipe{s: s, lane: sim.NewLane(s), rate: prof.DownRate, prop: prop, limit: prof.QueueBytes},
		up:   &pipe{s: s, lane: sim.NewLane(s), rate: prof.UpRate, prop: prop, limit: prof.QueueBytes},
	}
}

// Reset re-arms the network for a new run under prof, reusing the pipe
// release queues and the segment free list so a warmed Network starts a
// run without reallocating its data-plane state. The owning simulator
// must have been Reset (or be fresh) — pipe bookkeeping is relative to
// its clock. Panics on an invalid profile, like New.
func (n *Network) Reset(prof Profile) {
	n.resetWith(prof, prof.RTT/2)
}

// resetWith is Reset with the propagation split of newNetwork. It
// detaches any shared pipes: a Network leaves Reset flat, and only its
// owning Topology (which resets the shared hop itself) re-attaches
// them.
func (n *Network) resetWith(prof Profile, prop time.Duration) {
	if err := prof.Validate(); err != nil {
		panic(err)
	}
	n.Prof = prof
	n.nextConnID = 0
	n.down.reset(prof.DownRate, prop, prof.QueueBytes)
	n.up.reset(prof.UpRate, prop, prof.QueueBytes)
	n.xDown, n.xUp = nil, nil
	clear(n.conns)
	n.conns = n.conns[:0]
	// Reclaim segments still in flight when the previous run ended.
	for i, seg := range n.segLive {
		n.segLive[i] = nil
		scrubSeg(seg)
		n.segFree = append(n.segFree, seg)
	}
	n.segLive = n.segLive[:0]
}

// reset clears one direction's queue/stat state for a new run.
func (p *pipe) reset(rate Rate, prop time.Duration, limit int) {
	p.rate, p.prop, p.limit = rate, prop, limit
	p.cut = false
	p.busyUntil, p.queued = 0, 0
	p.pending, p.phead = p.pending[:0], 0
	p.delivered, p.dropped = 0, 0
	p.lane.Reset()
}

// Cut marks the pipe down. While cut, every non-forced admission
// tail-drops, so senders recover through the normal retransmit path once
// Resume re-opens the link. Forced admissions (ACKs) still pass — the
// model has no ACK-loss recovery (see admit), so a cut link starves data
// segments but never strands the ACK clock.
func (p *pipe) Cut() { p.cut = true }

// Resume re-opens a cut pipe.
func (p *pipe) Resume() { p.cut = false }

// Stall pushes the pipe's serializer busy horizon forward by d: every
// admission from now on serializes only after the stall window ends.
// Segments whose delivery was already scheduled are unaffected (they
// were on the wire). Nothing is dropped; the stall adds queueing delay.
func (p *pipe) Stall(d time.Duration) {
	if now := p.s.Now(); p.busyUntil < now {
		p.busyUntil = now
	}
	p.busyUntil += d
}

// CutLink cuts both directions of the access link (fault injection).
func (n *Network) CutLink() {
	n.down.Cut()
	n.up.Cut()
}

// ResumeLink re-opens both directions of a cut access link.
func (n *Network) ResumeLink() {
	n.down.Resume()
	n.up.Resume()
}

// StallLink freezes both directions' serializers for d without dropping
// anything (fault injection: a link-layer outage shorter than the
// retransmit timers would notice).
func (n *Network) StallLink(d time.Duration) {
	n.down.Stall(d)
	n.up.Stall(d)
}

// LinkDown reports whether the link is currently cut.
func (n *Network) LinkDown() bool { return n.down.cut || n.up.cut }

// DownlinkDelivered returns total bytes delivered client-ward, for tests.
func (n *Network) DownlinkDelivered() int64 { return n.down.delivered }

// UplinkDelivered returns total bytes delivered server-ward, for tests.
func (n *Network) UplinkDelivered() int64 { return n.up.delivered }

// Drops returns the number of tail-dropped segments in both directions.
func (n *Network) Drops() int64 { return n.down.dropped + n.up.dropped }

func (n *Network) getSeg() *segment {
	var seg *segment
	if m := len(n.segFree); m > 0 {
		seg = n.segFree[m-1]
		n.segFree[m-1] = nil
		n.segFree = n.segFree[:m-1]
	} else {
		seg = &segment{}
	}
	seg.liveIdx = len(n.segLive)
	n.segLive = append(n.segLive, seg)
	return seg
}

// scrubSeg clears a segment's payload references so a pooled struct pins
// nothing for the garbage collector.
func scrubSeg(seg *segment) {
	for i := range seg.parts {
		seg.parts[i] = nil
	}
	*seg = segment{parts: seg.parts[:0], liveIdx: -1}
}

func (n *Network) putSeg(seg *segment) {
	// Swap-remove from the live registry.
	i, last := seg.liveIdx, len(n.segLive)-1
	n.segLive[i] = n.segLive[last]
	n.segLive[i].liveIdx = i
	n.segLive[last] = nil
	n.segLive = n.segLive[:last]
	scrubSeg(seg)
	n.segFree = append(n.segFree, seg)
}

// Conn is an emulated TCP+TLS connection between the client and one
// origin server. Both ends exchange ordered byte streams.
type Conn struct {
	net *Network
	ID  int

	clientEnd *End // used by the browser (sends via uplink)
	serverEnd *End // used by the origin server (sends via downlink)

	established bool
	connectEnd  time.Duration
	closed      bool
}

// End is one endpoint of a Conn. Writers observe backpressure through
// Buffered and the drain callback; readers receive ordered byte slices.
type End struct {
	conn    *Conn
	out     *halfConn // sender state for this end's outgoing direction
	recv    func([]byte)
	onClose func()
	onError func(error)
}

// segment is one MSS-sized (or smaller) unit in flight. Its payload is a
// list of zero-copy subslices of writer-provided chunks (usually one,
// two when the segment straddles a chunk boundary). The same struct
// carries the delivery event and then the ACK event, and is returned to
// the network's free list once both delivery and ACK have completed.
type segment struct {
	h       *halfConn
	seq     int64
	size    int
	attempt int
	parts   [][]byte
	liveIdx int // index in Network.segLive while live; -1 when free

	delivered bool // payload handed to the receiver (or dropped as a dup)
	ackDone   bool // ACK event fired
}

// halfConn models one sending direction: congestion control plus the
// shared pipe in that direction. Segments carry byte sequence numbers and
// the receiver reassembles in order, so a retransmitted segment (after a
// tail drop or injected loss) cannot corrupt the delivered byte stream.
//
// The send buffer is a chunked FIFO of writer-provided slices; pump
// carves MSS-sized segments out of it as zero-copy subslices.
type halfConn struct {
	s       *sim.Sim
	net     *Network
	pipe    *pipe // data direction, first hop
	ackPipe *pipe // reverse direction for ACKs, first hop
	// pipe2/ackPipe2, when non-nil, cascade each segment (and each ACK)
	// through a second hop — the shared bottleneck of a Topology. nil
	// (every flat Network) keeps the single-hop behaviour bit-identical.
	pipe2    *pipe
	ackPipe2 *pipe
	mss      int
	overhead int
	lossRate float64
	rng      func() float64

	cwnd     float64 // segments
	ssthresh float64
	inflight int // un-acked bytes

	chunks   [][]byte // writer-provided slices, chunks[head][off:] is next unsent
	head     int
	off      int
	buffered int // total unsent bytes across chunks

	onDrain  func()
	peerRecv func() func([]byte)
	closed   bool

	nextSeq   int64      // next byte sequence to assign
	expectSeq int64      // receiver: next in-order byte expected
	ooo       []*segment // receiver: out-of-order segments, sorted by seq

	rtx []*sim.Event // pending retransmit timers, cancelled on close

	sent     int64
	acked    int64
	rtxCount int64
	rtt      time.Duration
}

// enqueue appends a writer-owned chunk to the send buffer. Ownership of
// b transfers to the transport here (the package's zero-copy contract):
// pump carves segments out of it and receivers see subslices of it.
//
//repolint:owns
//repolint:hotpath
func (h *halfConn) enqueue(b []byte) {
	h.chunks = append(h.chunks, b)
	h.buffered += len(b)
}

func (h *halfConn) write(b []byte) {
	h.enqueue(b)
	h.pump()
}

func (h *halfConn) writev(bs [][]byte) {
	for _, b := range bs {
		if len(b) > 0 {
			h.enqueue(b)
		}
	}
	h.pump()
}

// pump admits as many segments as the congestion window allows, carving
// zero-copy subslices off the chunk queue. A closed connection admits
// nothing more: in-flight segments drain, buffered bytes are abandoned.
//
//repolint:hotpath
func (h *halfConn) pump() {
	for !h.closed && h.buffered > 0 && h.inflight < int(h.cwnd*float64(h.mss)) {
		n := h.mss
		if n > h.buffered {
			n = h.buffered
		}
		seg := h.net.getSeg()
		seg.h = h
		seg.seq = h.nextSeq
		seg.size = n
		seg.attempt = 1
		remain := n
		for remain > 0 {
			c := h.chunks[h.head]
			take := len(c) - h.off
			if take > remain {
				take = remain
			}
			seg.parts = append(seg.parts, c[h.off:h.off+take:h.off+take])
			h.off += take
			remain -= take
			if h.off == len(c) {
				h.chunks[h.head] = nil
				h.head++
				h.off = 0
			}
		}
		switch {
		case h.head == len(h.chunks):
			h.chunks = h.chunks[:0]
			h.head = 0
		case h.head > 64 && 2*h.head >= len(h.chunks):
			m := copy(h.chunks, h.chunks[h.head:])
			for i := m; i < len(h.chunks); i++ {
				h.chunks[i] = nil
			}
			h.chunks = h.chunks[:m]
			h.head = 0
		}
		h.buffered -= n
		h.inflight += n
		h.nextSeq += int64(n)
		h.sendSegment(seg)
	}
	h.maybeDrain()
}

//repolint:hotpath
func (h *halfConn) maybeDrain() {
	if h.onDrain != nil && h.buffered == 0 {
		// Drain fires when the application buffer is empty: all pending
		// bytes have been admitted into the congestion window. Small write
		// buffers give the HTTP/2 scheduler frame-granular control over
		// what is sent next (as in h2o).
		h.s.AtCall(h.s.Now(), callFunc, h.onDrain)
	}
}

// callFunc invokes a func() passed as the event argument; it lets Post-like
// notifications ride the pooled event path without a per-event closure.
//
//repolint:hotpath
func callFunc(arg any) { arg.(func())() }

func (h *halfConn) sendSegment(seg *segment) {
	h.sent += int64(seg.size)
	lost := h.lossRate > 0 && h.rng != nil && h.rng() < h.lossRate
	if !lost {
		if at, ok := h.pipe.admit(seg.size+h.overhead, false); ok {
			// Admission times are nondecreasing per pipe (a link is a FIFO
			// queue), so deliveries ride the pipe's lane instead of each
			// taking a heap slot.
			if h.pipe2 != nil {
				h.pipe.lane.AtCall(at, hopSegment, seg)
			} else {
				h.pipe.lane.AtCall(at, deliverSegment, seg)
			}
			return
		}
	}
	h.scheduleRtx(seg)
}

// scheduleRtx arms the retransmit path after a loss or tail drop:
// retransmit after an RTO and fall back to slow start from half the
// window. After Close no new timer may be armed (Close cancelled the
// existing ones); the segment is abandoned like the rest of the send
// buffer. A retransmission re-traverses the full path from the first
// hop — the drop consumed the segment wherever it happened.
func (h *halfConn) scheduleRtx(seg *segment) {
	if h.closed {
		return
	}
	h.rtxCount++
	h.ssthresh = h.cwnd / 2
	if h.ssthresh < 2 {
		h.ssthresh = 2
	}
	h.cwnd = float64(min(int(h.cwnd), 4))
	rto := 2 * h.rtt
	if rto < 100*time.Millisecond {
		rto = 100 * time.Millisecond
	}
	attempt := seg.attempt
	seg.attempt++
	var ev *sim.Event
	ev = h.s.After(rto*time.Duration(attempt), func() {
		h.dropRtx(ev)
		h.sendSegment(seg)
	})
	h.rtx = append(h.rtx, ev)
}

func (h *halfConn) dropRtx(ev *sim.Event) {
	for i, e := range h.rtx {
		if e == ev {
			last := len(h.rtx) - 1
			h.rtx[i] = h.rtx[last]
			h.rtx[last] = nil
			h.rtx = h.rtx[:last]
			return
		}
	}
}

// closeHalf stops this direction's retransmit timers; in-flight segments
// still drain so the model's conservation properties hold.
func (h *halfConn) closeHalf() {
	h.closed = true
	for _, ev := range h.rtx {
		ev.Cancel()
	}
	h.rtx = nil
}

// deliverSegment is the (pooled) delivery event for a data segment on
// a flat (single-hop) network.
//
//repolint:hotpath
func deliverSegment(arg any) {
	seg := arg.(*segment)
	h := seg.h
	h.pipe.delivered += int64(seg.size + h.overhead)
	h.onSegmentArrive(seg)
}

// hopSegment is the first-hop arrival on a cascaded path: the segment
// leaves the access pipe and contends for the shared bottleneck. A
// tail drop here is a real drop — the sender retransmits from hop one.
//
//repolint:hotpath
func hopSegment(arg any) {
	seg := arg.(*segment)
	h := seg.h
	h.pipe.delivered += int64(seg.size + h.overhead)
	if at, ok := h.pipe2.admit(seg.size+h.overhead, false); ok {
		// Events fire in global time order and admit times are
		// nondecreasing per pipe, so the shared lane's FIFO invariant
		// holds even with many clients' hops interleaving.
		h.pipe2.lane.AtCall(at, deliverSegment2, seg)
		return
	}
	h.scheduleRtx(seg)
}

// deliverSegment2 is the second-hop (shared-bottleneck) delivery.
//
//repolint:hotpath
func deliverSegment2(arg any) {
	seg := arg.(*segment)
	h := seg.h
	h.pipe2.delivered += int64(seg.size + h.overhead)
	h.onSegmentArrive(seg)
}

// onSegmentArrive reassembles the in-order byte stream at the receiver.
//
//repolint:hotpath
func (h *halfConn) onSegmentArrive(seg *segment) {
	switch {
	case seg.seq == h.expectSeq:
		h.expectSeq += int64(seg.size)
		h.deliver(seg)
		// Flush any buffered continuation.
		for len(h.ooo) > 0 && h.ooo[0].seq == h.expectSeq {
			next := h.ooo[0]
			copy(h.ooo, h.ooo[1:])
			h.ooo[len(h.ooo)-1] = nil
			h.ooo = h.ooo[:len(h.ooo)-1]
			h.expectSeq += int64(next.size)
			h.deliver(next)
		}
	case seg.seq > h.expectSeq:
		// Insert sorted; the list is tiny (loss is rare and windows small).
		i := len(h.ooo)
		for i > 0 && h.ooo[i-1].seq > seg.seq {
			i--
		}
		h.ooo = append(h.ooo, nil)
		copy(h.ooo[i+1:], h.ooo[i:])
		h.ooo[i] = seg
	default:
		// Duplicate (spurious retransmit): drop the payload, still ACK.
		seg.delivered = true
		h.maybeFree(seg)
	}
	// ACK back through the reverse pipe. ACKs are never lost in the model
	// (cumulative-ACK robustness is not modelled; see pipe.admit).
	at, _ := h.ackPipe.admit(h.overhead, true)
	if h.ackPipe2 != nil {
		h.ackPipe.lane.AtCall(at, hopAck, seg)
	} else {
		h.ackPipe.lane.AtCall(at, deliverAck, seg)
	}
}

//repolint:hotpath
func (h *halfConn) deliver(seg *segment) {
	if recv := h.peerRecv(); recv != nil {
		for _, part := range seg.parts {
			recv(part)
		}
	}
	seg.delivered = true
	h.maybeFree(seg)
}

// deliverAck is the (pooled) ACK event on a flat network; it reuses
// the segment struct that carried the delivery.
//
//repolint:hotpath
func deliverAck(arg any) {
	seg := arg.(*segment)
	h := seg.h
	h.ackPipe.delivered += int64(h.overhead)
	h.finishAck(seg)
}

// hopAck forwards an ACK across the second reverse hop. ACKs are
// force-admitted on both hops (see pipe.admit): the model has no
// ACK-loss recovery, so the shared queue never strands the ACK clock.
//
//repolint:hotpath
func hopAck(arg any) {
	seg := arg.(*segment)
	h := seg.h
	h.ackPipe.delivered += int64(h.overhead)
	at, _ := h.ackPipe2.admit(h.overhead, true)
	h.ackPipe2.lane.AtCall(at, deliverAck2, seg)
}

// deliverAck2 completes a cascaded ACK at the sender.
//
//repolint:hotpath
func deliverAck2(arg any) {
	seg := arg.(*segment)
	h := seg.h
	h.ackPipe2.delivered += int64(h.overhead)
	h.finishAck(seg)
}

// finishAck is the shared ACK tail: account the segment, recycle it if
// delivery already happened, and grow the window.
//
//repolint:hotpath
func (h *halfConn) finishAck(seg *segment) {
	n := seg.size
	seg.ackDone = true
	h.maybeFree(seg)
	h.onAck(n)
}

//repolint:hotpath
func (h *halfConn) maybeFree(seg *segment) {
	if seg.delivered && seg.ackDone {
		h.net.putSeg(seg)
	}
}

//repolint:hotpath
func (h *halfConn) onAck(n int) {
	h.acked += int64(n)
	h.inflight -= n
	if h.inflight < 0 {
		h.inflight = 0
	}
	if h.cwnd < h.ssthresh {
		h.cwnd++ // slow start: one segment per ACK
	} else {
		h.cwnd += 1 / h.cwnd // congestion avoidance
	}
	h.pump()
}

// Dial opens a connection. onConnect runs at connectEnd (after the
// handshake round trips), matching the paper's PLT origin (W3C
// connectEnd). The returned Conn is not usable before onConnect.
func (n *Network) Dial(onConnect func(*Conn)) *Conn {
	n.nextConnID++
	c := &Conn{net: n, ID: n.nextConnID}
	n.conns = append(n.conns, c)
	prof := n.Prof
	mkHalf := func(dataPipe, dataPipe2, ackPipe, ackPipe2 *pipe) *halfConn {
		return &halfConn{
			s:        n.Sim,
			net:      n,
			pipe:     dataPipe,
			pipe2:    dataPipe2,
			ackPipe:  ackPipe,
			ackPipe2: ackPipe2,
			mss:      prof.MSS,
			overhead: prof.SegOverhead,
			lossRate: prof.LossRate,
			rng:      n.Sim.Rand().Float64,
			cwnd:     float64(prof.InitialCwnd),
			ssthresh: 1 << 20,
			rtt:      prof.RTT,
		}
	}
	var upHalf, downHalf *halfConn
	if n.xUp != nil {
		// Cascaded topology: client data crosses its access uplink then
		// the shared uplink; server data crosses the shared downlink then
		// the client's access downlink. ACKs retrace the reverse path.
		upHalf = mkHalf(n.up, n.xUp, n.xDown, n.down)   // client -> server
		downHalf = mkHalf(n.xDown, n.down, n.up, n.xUp) // server -> client
	} else {
		upHalf = mkHalf(n.up, nil, n.down, nil)   // client -> server
		downHalf = mkHalf(n.down, nil, n.up, nil) // server -> client
	}
	c.clientEnd = &End{conn: c, out: upHalf}
	c.serverEnd = &End{conn: c, out: downHalf}
	upHalf.peerRecv = func() func([]byte) { return c.serverEnd.recv }
	downHalf.peerRecv = func() func([]byte) { return c.clientEnd.recv }

	hs := time.Duration(prof.HandshakeRTTs) * prof.RTT
	n.Sim.After(hs, func() {
		c.established = true
		c.connectEnd = n.Sim.Now()
		onConnect(c)
	})
	return c
}

// ConnectEnd returns the virtual time the handshake completed.
func (c *Conn) ConnectEnd() time.Duration { return c.connectEnd }

// Established reports whether the handshake has completed.
func (c *Conn) Established() bool { return c.established }

// ClientEnd returns the browser-side endpoint.
func (c *Conn) ClientEnd() *End { return c.clientEnd }

// ServerEnd returns the origin-side endpoint.
func (c *Conn) ServerEnd() *End { return c.serverEnd }

// Close tears the connection down; further writes are dropped and any
// pending retransmit timers are cancelled (removed from the event queue).
func (c *Conn) Close() {
	if c.closed {
		return
	}
	c.teardown()
	if c.clientEnd.onClose != nil {
		c.clientEnd.onClose()
	}
	if c.serverEnd.onClose != nil {
		c.serverEnd.onClose()
	}
}

// Abort tears the connection down like Close and additionally surfaces
// err to both ends' error callbacks (before the close callbacks), so
// protocol layers on either half learn the transport died under them
// rather than drained. Fault injection and the loader's give-up path use
// it; Close remains the graceful end-of-load teardown.
func (c *Conn) Abort(err error) {
	if c.closed {
		return
	}
	c.teardown()
	if c.clientEnd.onError != nil {
		c.clientEnd.onError(err)
	}
	if c.serverEnd.onError != nil {
		c.serverEnd.onError(err)
	}
	if c.clientEnd.onClose != nil {
		c.clientEnd.onClose()
	}
	if c.serverEnd.onClose != nil {
		c.serverEnd.onClose()
	}
}

// teardown is the shared Close/Abort state transition: no new writes, no
// new retransmit timers, in-flight segments still drain.
func (c *Conn) teardown() {
	c.closed = true
	c.clientEnd.out.closeHalf()
	c.serverEnd.out.closeHalf()
}

// Closed reports whether the connection has been closed or aborted.
func (c *Conn) Closed() bool { return c.closed }

// Write queues b for transmission to the peer end. Ownership of b
// transfers to the transport: the bytes are delivered to the receiver as
// zero-copy subslices, so the caller must not mutate b after Write.
//
// Writes on a closed or not-yet-established connection are dropped (the
// transport refuses the bytes rather than panicking: under fault
// injection an upper layer can race a teardown it has not yet observed).
func (e *End) Write(b []byte) {
	if e.conn.closed || !e.conn.established || len(b) == 0 {
		return
	}
	e.out.write(b)
}

// WriteV queues several chunks as one contiguous write, pumping the
// congestion window once: segmentation is identical to a single Write of
// the concatenated bytes, without the concatenation. Ownership of every
// chunk transfers to the transport (see Write). Empty chunks are
// skipped; like Write, the whole call is dropped on a closed or
// not-yet-established connection.
func (e *End) WriteV(chunks [][]byte) {
	if e.conn.closed || !e.conn.established {
		return
	}
	total := 0
	for _, b := range chunks {
		total += len(b)
	}
	if total == 0 {
		return
	}
	e.out.writev(chunks)
}

// Buffered returns the bytes accepted by Write that have not yet been
// admitted to the network. In-flight (sent but un-acked) bytes are
// excluded — they are reported by Inflight; Buffered+Inflight is the
// total not yet acknowledged.
func (e *End) Buffered() int { return e.out.buffered }

// Inflight returns un-acked bytes for this end's direction.
func (e *End) Inflight() int { return e.out.inflight }

// SetReceiver installs the ordered byte stream consumer for this end.
// The callback borrows its slice from the sender's buffers: it must copy
// anything it retains after returning.
func (e *End) SetReceiver(fn func([]byte)) { e.recv = fn }

// SetOnDrain installs a callback invoked (asynchronously, same virtual
// instant) whenever the send buffer fully drains into the network. The
// HTTP/2 scheduler uses it to decide the next frame lazily.
func (e *End) SetOnDrain(fn func()) { e.out.onDrain = fn }

// SetOnClose installs a teardown callback.
func (e *End) SetOnClose(fn func()) { e.onClose = fn }

// SetOnError installs a callback surfacing transport aborts (see
// Conn.Abort) to this end's protocol layer.
func (e *End) SetOnError(fn func(error)) { e.onError = fn }

// Conn returns the connection this end belongs to, so a layer holding
// only an endpoint can close or abort the whole connection.
func (e *End) Conn() *Conn { return e.conn }

// Close closes the owning connection (graceful; see Conn.Close).
func (e *End) Close() { e.conn.Close() }

// Abort aborts the owning connection (see Conn.Abort).
func (e *End) Abort(err error) { e.conn.Abort(err) }

// Stats for tests and ablations.
func (e *End) SentBytes() int64  { return e.out.sent }
func (e *End) AckedBytes() int64 { return e.out.acked }
func (e *End) Retransmits() int64 {
	return e.out.rtxCount
}
