// Package netem emulates the testbed network of the paper: a DSL access
// link (16 Mbit/s down, 1 Mbit/s up, 50 ms RTT by default, shaped with tc
// in the original) shared by every connection between the browser and the
// per-origin replay servers.
//
// The emulation is a discrete-event model on a sim.Sim virtual clock:
//
//   - Each direction of the access link is a FIFO pipe with a byte queue,
//     serialization delay (rate) and propagation delay (RTT/2).
//   - Connections are TCP-flavoured: a three-way handshake plus TLS round
//     trip, slow start from a configurable initial window, per-ACK window
//     growth, and ACK clocking through the reverse pipe. Loss can be
//     injected for ablations; the default is deterministic and loss-free.
//
// The model intentionally omits SACK, fast retransmit and delayed ACKs:
// the paper's effects (multi-RTT HTML transfers, bandwidth contention
// between push streams, idle network time) only require correct
// first-order transfer timing.
package netem

import (
	"fmt"
	"time"

	"repro/internal/sim"
)

// Rate is a link speed in bits per second.
type Rate int64

// Common rates.
const (
	Kbps Rate = 1_000
	Mbps Rate = 1_000_000
)

// Profile describes the emulated access link and transport parameters.
type Profile struct {
	DownRate      Rate          // server -> client direction
	UpRate        Rate          // client -> server direction
	RTT           time.Duration // base round-trip time between client and any server
	MSS           int           // TCP maximum segment size in bytes
	SegOverhead   int           // per-segment header overhead counted against the link
	QueueBytes    int           // per-direction bottleneck queue limit
	InitialCwnd   int           // initial congestion window in segments
	HandshakeRTTs int           // round trips before a connection is usable (TCP+TLS)
	LossRate      float64       // probability a data segment is lost (0 = deterministic)
}

// DSL returns the paper's evaluation setting (Sec. 4.1): 50 ms RTT,
// 16 Mbit/s downlink and 1 Mbit/s uplink.
func DSL() Profile {
	return Profile{
		DownRate:      16 * Mbps,
		UpRate:        1 * Mbps,
		RTT:           50 * time.Millisecond,
		MSS:           1460,
		SegOverhead:   40,
		QueueBytes:    192 * 1024,
		InitialCwnd:   10,
		HandshakeRTTs: 2,
	}
}

// Validate reports whether the profile is internally consistent. It is
// called at testbed construction (and again defensively in New) so a
// nonsensical scenario profile fails fast with a clear error.
func (p Profile) Validate() error {
	switch {
	case p.DownRate <= 0 || p.UpRate <= 0:
		return fmt.Errorf("netem: rates must be positive (down=%d up=%d)", p.DownRate, p.UpRate)
	case p.RTT < 0:
		return fmt.Errorf("netem: negative RTT %v", p.RTT)
	case p.MSS <= 0:
		return fmt.Errorf("netem: MSS must be positive, got %d", p.MSS)
	case p.SegOverhead < 0:
		return fmt.Errorf("netem: negative segment overhead %d", p.SegOverhead)
	case p.QueueBytes < 0:
		return fmt.Errorf("netem: negative queue limit %d", p.QueueBytes)
	case p.QueueBytes > 0 && p.QueueBytes < p.MSS+p.SegOverhead:
		return fmt.Errorf("netem: queue limit %d cannot hold one segment (MSS %d + overhead %d): every segment would tail-drop",
			p.QueueBytes, p.MSS, p.SegOverhead)
	case p.InitialCwnd <= 0:
		return fmt.Errorf("netem: initial cwnd must be positive, got %d", p.InitialCwnd)
	case p.HandshakeRTTs < 0:
		return fmt.Errorf("netem: negative handshake RTTs %d", p.HandshakeRTTs)
	case p.LossRate < 0 || p.LossRate >= 1:
		return fmt.Errorf("netem: loss rate %v out of [0,1)", p.LossRate)
	}
	return nil
}

// txTime returns the serialization delay for size bytes at rate r.
func txTime(size int, r Rate) time.Duration {
	return time.Duration(int64(size) * 8 * int64(time.Second) / int64(r))
}

// pipe is one direction of the shared access link: a FIFO queue serving at
// a fixed rate followed by fixed propagation delay.
type pipe struct {
	s         *sim.Sim
	rate      Rate
	prop      time.Duration
	limit     int
	busyUntil time.Duration
	queued    int

	// stats
	delivered int64
	dropped   int64
}

// send enqueues size bytes for transmission and calls deliver when the last
// byte arrives at the far end. It reports false (a tail drop) when the
// queue limit would be exceeded. force bypasses the queue limit: ACKs are
// never dropped, because the model has no ACK-loss recovery (real TCP
// tolerates ACK loss through cumulative ACKs, which a unidirectional
// event model cannot reproduce faithfully).
func (p *pipe) send(size int, force bool, deliver func()) bool {
	if !force && p.limit > 0 && p.queued+size > p.limit {
		p.dropped++
		return false
	}
	now := p.s.Now()
	start := p.busyUntil
	if start < now {
		start = now
	}
	done := start + txTime(size, p.rate)
	p.busyUntil = done
	p.queued += size
	p.s.At(done, func() { p.queued -= size })
	p.s.At(done+p.prop, func() {
		p.delivered += int64(size)
		deliver()
	})
	return true
}

// Network is the emulated access network shared by all connections of one
// page load: one downlink pipe, one uplink pipe.
type Network struct {
	Sim  *sim.Sim
	Prof Profile
	down *pipe
	up   *pipe

	nextConnID int
}

// New builds a Network on the given simulator. It panics on an invalid
// profile; profiles are static configuration, not runtime input.
func New(s *sim.Sim, prof Profile) *Network {
	if err := prof.Validate(); err != nil {
		panic(err)
	}
	half := prof.RTT / 2
	return &Network{
		Sim:  s,
		Prof: prof,
		down: &pipe{s: s, rate: prof.DownRate, prop: half, limit: prof.QueueBytes},
		up:   &pipe{s: s, rate: prof.UpRate, prop: half, limit: prof.QueueBytes},
	}
}

// DownlinkDelivered returns total bytes delivered client-ward, for tests.
func (n *Network) DownlinkDelivered() int64 { return n.down.delivered }

// UplinkDelivered returns total bytes delivered server-ward, for tests.
func (n *Network) UplinkDelivered() int64 { return n.up.delivered }

// Drops returns the number of tail-dropped segments in both directions.
func (n *Network) Drops() int64 { return n.down.dropped + n.up.dropped }

// Conn is an emulated TCP+TLS connection between the client and one
// origin server. Both ends exchange ordered byte streams.
type Conn struct {
	net *Network
	ID  int

	clientEnd *End // used by the browser (sends via uplink)
	serverEnd *End // used by the origin server (sends via downlink)

	established bool
	connectEnd  time.Duration
	closed      bool
}

// End is one endpoint of a Conn. Writers observe backpressure through
// Buffered and the drain callback; readers receive ordered byte slices.
type End struct {
	conn    *Conn
	out     *halfConn // sender state for this end's outgoing direction
	recv    func([]byte)
	onClose func()
}

// halfConn models one sending direction: congestion control plus the
// shared pipe in that direction. Segments carry byte sequence numbers and
// the receiver reassembles in order, so a retransmitted segment (after a
// tail drop or injected loss) cannot corrupt the delivered byte stream.
type halfConn struct {
	s        *sim.Sim
	pipe     *pipe // data direction
	ackPipe  *pipe // reverse direction for ACKs
	mss      int
	overhead int
	lossRate float64
	rng      func() float64

	cwnd     float64 // segments
	ssthresh float64
	inflight int // un-acked bytes
	buf      []byte
	onDrain  func()
	peerRecv func() func([]byte)

	nextSeq   int64            // next byte sequence to assign
	expectSeq int64            // receiver: next in-order byte expected
	ooo       map[int64][]byte // receiver: out-of-order segments by seq

	sent     int64
	acked    int64
	rtxCount int64
	rtt      time.Duration
}

func (h *halfConn) buffered() int { return len(h.buf) + h.inflight }

func (h *halfConn) write(b []byte) {
	h.buf = append(h.buf, b...)
	h.pump()
}

// pump admits as many segments as the congestion window allows.
func (h *halfConn) pump() {
	for len(h.buf) > 0 && h.inflight < int(h.cwnd*float64(h.mss)) {
		n := h.mss
		if n > len(h.buf) {
			n = len(h.buf)
		}
		seg := make([]byte, n)
		copy(seg, h.buf[:n])
		h.buf = h.buf[n:]
		h.inflight += n
		seq := h.nextSeq
		h.nextSeq += int64(n)
		h.sendSegment(seq, seg, 1)
	}
	h.maybeDrain()
}

func (h *halfConn) maybeDrain() {
	if h.onDrain != nil && len(h.buf) == 0 {
		// Drain fires when the application buffer is empty: all pending
		// bytes have been admitted into the congestion window. Small write
		// buffers give the HTTP/2 scheduler frame-granular control over
		// what is sent next (as in h2o).
		cb := h.onDrain
		h.s.Post(cb)
	}
}

func (h *halfConn) sendSegment(seq int64, seg []byte, attempt int) {
	h.sent += int64(len(seg))
	lost := h.lossRate > 0 && h.rng != nil && h.rng() < h.lossRate
	if lost || !h.pipe.send(len(seg)+h.overhead, false, func() { h.onSegmentArrive(seq, seg) }) {
		// Lost in the network or tail-dropped: retransmit after an RTO and
		// fall back to slow start from half the window.
		h.rtxCount++
		h.ssthresh = h.cwnd / 2
		if h.ssthresh < 2 {
			h.ssthresh = 2
		}
		h.cwnd = float64(min(int(h.cwnd), 4))
		rto := 2 * h.rtt
		if rto < 100*time.Millisecond {
			rto = 100 * time.Millisecond
		}
		h.s.After(rto*time.Duration(attempt), func() { h.sendSegment(seq, seg, attempt+1) })
		return
	}
}

// onSegmentArrive reassembles the in-order byte stream at the receiver.
func (h *halfConn) onSegmentArrive(seq int64, seg []byte) {
	switch {
	case seq == h.expectSeq:
		h.deliver(seg)
		h.expectSeq += int64(len(seg))
		// Flush any buffered continuation.
		for {
			next, ok := h.ooo[h.expectSeq]
			if !ok {
				break
			}
			delete(h.ooo, h.expectSeq)
			h.deliver(next)
			h.expectSeq += int64(len(next))
		}
	case seq > h.expectSeq:
		if h.ooo == nil {
			h.ooo = map[int64][]byte{}
		}
		h.ooo[seq] = seg
	default:
		// Duplicate (spurious retransmit): drop.
	}
	// ACK back through the reverse pipe. ACKs are never lost in the model
	// (cumulative-ACK robustness is not modelled; see pipe.send).
	h.ackPipe.send(h.overhead, true, func() { h.onAck(len(seg)) })
}

func (h *halfConn) deliver(seg []byte) {
	if recv := h.peerRecv(); recv != nil {
		recv(seg)
	}
}

func (h *halfConn) onAck(n int) {
	h.acked += int64(n)
	h.inflight -= n
	if h.inflight < 0 {
		h.inflight = 0
	}
	if h.cwnd < h.ssthresh {
		h.cwnd++ // slow start: one segment per ACK
	} else {
		h.cwnd += 1 / h.cwnd // congestion avoidance
	}
	h.pump()
}

// Dial opens a connection. onConnect runs at connectEnd (after the
// handshake round trips), matching the paper's PLT origin (W3C
// connectEnd). The returned Conn is not usable before onConnect.
func (n *Network) Dial(onConnect func(*Conn)) *Conn {
	n.nextConnID++
	c := &Conn{net: n, ID: n.nextConnID}
	prof := n.Prof
	mkHalf := func(dataPipe, ackPipe *pipe) *halfConn {
		return &halfConn{
			s:        n.Sim,
			pipe:     dataPipe,
			ackPipe:  ackPipe,
			mss:      prof.MSS,
			overhead: prof.SegOverhead,
			lossRate: prof.LossRate,
			rng:      n.Sim.Rand().Float64,
			cwnd:     float64(prof.InitialCwnd),
			ssthresh: 1 << 20,
			rtt:      prof.RTT,
		}
	}
	upHalf := mkHalf(n.up, n.down)   // client -> server
	downHalf := mkHalf(n.down, n.up) // server -> client
	c.clientEnd = &End{conn: c, out: upHalf}
	c.serverEnd = &End{conn: c, out: downHalf}
	upHalf.peerRecv = func() func([]byte) { return c.serverEnd.recv }
	downHalf.peerRecv = func() func([]byte) { return c.clientEnd.recv }

	hs := time.Duration(prof.HandshakeRTTs) * prof.RTT
	n.Sim.After(hs, func() {
		c.established = true
		c.connectEnd = n.Sim.Now()
		onConnect(c)
	})
	return c
}

// ConnectEnd returns the virtual time the handshake completed.
func (c *Conn) ConnectEnd() time.Duration { return c.connectEnd }

// Established reports whether the handshake has completed.
func (c *Conn) Established() bool { return c.established }

// ClientEnd returns the browser-side endpoint.
func (c *Conn) ClientEnd() *End { return c.clientEnd }

// ServerEnd returns the origin-side endpoint.
func (c *Conn) ServerEnd() *End { return c.serverEnd }

// Close tears the connection down; further writes are dropped.
func (c *Conn) Close() {
	if c.closed {
		return
	}
	c.closed = true
	if c.clientEnd.onClose != nil {
		c.clientEnd.onClose()
	}
	if c.serverEnd.onClose != nil {
		c.serverEnd.onClose()
	}
}

// Write queues b for transmission to the peer end.
func (e *End) Write(b []byte) {
	if e.conn.closed || len(b) == 0 {
		return
	}
	if !e.conn.established {
		panic("netem: Write before connect")
	}
	e.out.write(b)
}

// Buffered returns the bytes accepted by Write that have not yet been
// admitted to the network (excluding in-flight bytes).
func (e *End) Buffered() int { return len(e.out.buf) }

// Inflight returns un-acked bytes for this end's direction.
func (e *End) Inflight() int { return e.out.inflight }

// SetReceiver installs the ordered byte stream consumer for this end.
func (e *End) SetReceiver(fn func([]byte)) { e.recv = fn }

// SetOnDrain installs a callback invoked (asynchronously, same virtual
// instant) whenever the send buffer fully drains into the network. The
// HTTP/2 scheduler uses it to decide the next frame lazily.
func (e *End) SetOnDrain(fn func()) { e.out.onDrain = fn }

// SetOnClose installs a teardown callback.
func (e *End) SetOnClose(fn func()) { e.onClose = fn }

// Stats for tests and ablations.
func (e *End) SentBytes() int64  { return e.out.sent }
func (e *End) AckedBytes() int64 { return e.out.acked }
func (e *End) Retransmits() int64 {
	return e.out.rtxCount
}
