// Package strategy implements the paper's push strategies (Sec. 4-5) as
// transformations from a recorded site (plus an optional request trace)
// to a serving plan, and in the "optimized" cases a rewritten site:
//
//	no push                 — baseline, client disables push
//	push all                — push every pushable object in computed order
//	push first N            — the limited-amount variants (1/5/10/15)
//	push by type            — CSS / JS / images / combinations
//	push critical           — only render-critical, above-the-fold objects
//	no push optimized       — critical CSS in <head>, full CSS at body end
//	push all optimized      — the rewrite + interleaved critical pushes,
//	                          then everything else after the document
//	push critical optimized — the rewrite + interleaved critical pushes
//
// The computed push order follows the paper's method: trace the request
// order of the landing page over repeated runs, build a dependency
// ranking, and take a majority vote across runs (Sec. 4.2).
package strategy

import (
	"fmt"
	"sort"

	"repro/internal/page"
	"repro/internal/replay"
)

// Trace is the input to push-order computation: per run, the URLs of the
// landing page's subresources in request order.
type Trace struct {
	Orders [][]string
}

// MajorityOrder computes a stable push order across runs: resources are
// ranked by their median position; ties break lexicographically. This is
// the paper's majority vote over per-run request orders.
func (tr *Trace) MajorityOrder() []string {
	if tr == nil || len(tr.Orders) == 0 {
		return nil
	}
	positions := map[string][]int{}
	for _, order := range tr.Orders {
		for i, u := range order {
			positions[u] = append(positions[u], i)
		}
	}
	type ranked struct {
		url string
		pos float64
		n   int
	}
	rs := make([]ranked, 0, len(positions))
	for u, ps := range positions {
		sort.Ints(ps)
		med := float64(ps[len(ps)/2])
		if len(ps)%2 == 0 {
			med = float64(ps[len(ps)/2-1]+ps[len(ps)/2]) / 2
		}
		rs = append(rs, ranked{u, med, len(ps)})
	}
	sort.Slice(rs, func(i, j int) bool {
		// Resources seen in more runs first (stable dependencies), then
		// by median position, then lexicographically.
		if rs[i].n != rs[j].n {
			return rs[i].n > rs[j].n
		}
		if rs[i].pos != rs[j].pos {
			return rs[i].pos < rs[j].pos
		}
		return rs[i].url < rs[j].url
	})
	out := make([]string, len(rs))
	for i, r := range rs {
		out[i] = r.url
	}
	return out
}

// Strategy produces a (possibly rewritten) site and a serving plan.
type Strategy interface {
	Name() string
	Apply(site *replay.Site, tr *Trace) (*replay.Site, replay.Plan)
}

// pushableOrder filters an ordered URL list down to objects the base
// server is authoritative for.
func pushableOrder(site *replay.Site, order []string) []string {
	var out []string
	baseURL := site.Base.String()
	for _, u := range order {
		if u == baseURL {
			continue
		}
		pu, err := page.ParseURL(u, site.Base)
		if err != nil {
			continue
		}
		if site.DB.Lookup(pu.Authority, pu.Path) == nil {
			continue
		}
		if site.Authoritative(site.Base.Authority, pu.Authority) {
			out = append(out, pu.String())
		}
	}
	return out
}

// orderOrStatic returns the majority-vote order when a trace exists, or
// the static document order otherwise (through the site's prepared
// parse, so the fallback stops re-tokenizing the document).
func orderOrStatic(site *replay.Site, tr *Trace) []string {
	if tr != nil && len(tr.Orders) > 0 {
		return tr.MajorityOrder()
	}
	entry := site.DB.Lookup(site.Base.Authority, site.Base.Path)
	if entry == nil {
		return nil
	}
	doc := site.Prepared().DocOf(entry)
	var out []string
	for _, r := range doc.Resources {
		u, err := page.ParseURL(r.URL, site.Base)
		if err == nil {
			out = append(out, u.String())
		}
	}
	return out
}

// --- basic strategies (Sec. 4.2) ---

// NoPush is the baseline.
type NoPush struct{}

func (NoPush) Name() string { return "no push" }
func (NoPush) Apply(site *replay.Site, _ *Trace) (*replay.Site, replay.Plan) {
	return site, replay.NoPush()
}

// PushAll pushes every pushable object in the computed order (Rosen et
// al.'s "push as much as possible").
type PushAll struct{}

func (PushAll) Name() string { return "push all" }
func (PushAll) Apply(site *replay.Site, tr *Trace) (*replay.Site, replay.Plan) {
	order := pushableOrder(site, orderOrStatic(site, tr))
	if len(order) == 0 {
		return site, replay.NoPush()
	}
	return site, replay.PushList(site.Base.String(), order...)
}

// PushFirstN pushes only the first N objects of the computed order
// (Bergan et al.'s "push just enough to fill idle network time").
type PushFirstN struct{ N int }

func (s PushFirstN) Name() string { return fmt.Sprintf("push %d", s.N) }
func (s PushFirstN) Apply(site *replay.Site, tr *Trace) (*replay.Site, replay.Plan) {
	order := pushableOrder(site, orderOrStatic(site, tr))
	if len(order) > s.N {
		order = order[:s.N]
	}
	if len(order) == 0 {
		return site, replay.NoPush()
	}
	return site, replay.PushList(site.Base.String(), order...)
}

// PushByType pushes only objects of the given kinds, in computed order.
type PushByType struct{ Kinds []page.Kind }

func (s PushByType) Name() string {
	n := "push"
	for _, k := range s.Kinds {
		n += " " + k.String()
	}
	return n
}

func (s PushByType) Apply(site *replay.Site, tr *Trace) (*replay.Site, replay.Plan) {
	order := pushableOrder(site, orderOrStatic(site, tr))
	var filtered []string
	for _, u := range order {
		e := site.DB.Get(u)
		if e == nil {
			continue
		}
		for _, k := range s.Kinds {
			if e.Kind() == k {
				filtered = append(filtered, u)
				break
			}
		}
	}
	if len(filtered) == 0 {
		return site, replay.NoPush()
	}
	return site, replay.PushList(site.Base.String(), filtered...)
}
