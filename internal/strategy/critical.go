package strategy

import (
	"strconv"
	"strings"

	"repro/internal/browser"
	"repro/internal/cssx"
	"repro/internal/htmlx"
	"repro/internal/page"
	"repro/internal/replay"
)

// CriticalCSSPath is where optimized strategies serve the computed
// critical stylesheet on the base host.
const CriticalCSSPath = "/__critical.css"

// analysis is the manual-inspection step of Sec. 4.3/5 automated: the
// render-critical resource set of a landing page.
type analysis struct {
	doc                  *htmlx.Document
	atf                  []cssx.ElementSig
	viewportW, viewportH int

	criticalCSS string   // extracted critical rules
	cssLinks    []string // absolute URLs of all linked stylesheets
	blockingJS  []string // head synchronous scripts
	atfImages   []string // images with above-the-fold area
	fonts       []string // webfonts used by ATF text

	interleaveOffset int
}

// analyze returns the site's render-critical analysis, computed once
// per (site, viewport) and cached on the site's prepared state: every
// optimized strategy shares one analysis instead of re-running layout
// and critical-CSS extraction. The result is read-only.
func analyze(site *replay.Site, viewportW, viewportH int) *analysis {
	key := "strategy.analysis:" + strconv.Itoa(viewportW) + "x" + strconv.Itoa(viewportH)
	return site.Prepared().Memo(key, func() any {
		return analyzeUncached(site, viewportW, viewportH)
	}).(*analysis)
}

func analyzeUncached(site *replay.Site, viewportW, viewportH int) *analysis {
	prep := site.Prepared()
	entry := site.DB.Lookup(site.Base.Authority, site.Base.Path)
	if entry == nil {
		return nil
	}
	a := &analysis{viewportW: viewportW, viewportH: viewportH}
	a.doc = prep.DocOf(entry)
	a.atf = browser.SiteATFSignatures(site, viewportW, viewportH)

	// Interleave offset: just past </head> plus the first bytes of
	// <body> (Sec. 5), bounded below so the client has the document
	// start to begin DOM construction.
	a.interleaveOffset = a.doc.HeadEnd + 512
	if a.interleaveOffset < 4096 {
		a.interleaveOffset = 4096
	}
	if a.interleaveOffset > len(entry.Body) {
		a.interleaveOffset = len(entry.Body) / 2
	}

	// Critical CSS across every linked stylesheet (penthouse runs on the
	// full included CSS), plus the fonts ATF text needs.
	usedFams := map[string]bool{}
	for i := range a.doc.Elements {
		el := &a.doc.Elements[i]
		for _, c := range el.Classes {
			if strings.HasPrefix(c, "wf-") {
				usedFams[c[3:]] = true
			}
		}
	}
	var critical strings.Builder
	fontSeen := map[string]bool{}
	for _, r := range a.doc.Resources {
		u, err := page.ParseURL(r.URL, site.Base)
		if err != nil {
			continue
		}
		abs := u.String()
		switch r.Tag {
		case "link":
			if r.Media == "print" {
				continue
			}
			a.cssLinks = append(a.cssLinks, abs)
			ce := site.DB.Lookup(u.Authority, u.Path)
			if ce == nil {
				continue
			}
			sheet := prep.Sheet(ce)
			if sheet == nil {
				sheet = cssx.Parse(ce.Body)
			}
			res := cssx.ExtractCritical(sheet, a.atf)
			critical.WriteString(res.CSS)
			for _, ff := range sheet.FontFaces {
				if usedFams[ff.Family] && ff.URL != "" && !fontSeen[ff.URL] {
					fu, err := page.ParseURL(ff.URL, u)
					if err == nil {
						fontSeen[ff.URL] = true
						a.fonts = append(a.fonts, fu.String())
					}
				}
			}
		case "script":
			if r.InHead && !r.Async && !r.Defer {
				a.blockingJS = append(a.blockingJS, abs)
			}
		}
	}
	a.criticalCSS = critical.String()

	// ATF images via the layout model: image references whose element
	// lands above the fold.
	lay := layoutImages(a.doc, viewportW, viewportH)
	for _, img := range lay {
		u, err := page.ParseURL(img, site.Base)
		if err == nil {
			a.atfImages = append(a.atfImages, u.String())
		}
	}
	return a
}

// layoutImages returns the URLs of images with above-the-fold area, in
// document order, using the same stacking layout as the browser model.
func layoutImages(doc *htmlx.Document, viewportW, viewportH int) []string {
	y := 0
	var out []string
	imgByOffset := map[int]string{}
	for _, r := range doc.Resources {
		if r.Tag == "img" {
			imgByOffset[r.Offset] = r.URL
		}
	}
	for i := range doc.Elements {
		el := &doc.Elements[i]
		var h int
		if el.Tag == "img" {
			h = el.Height
			if h == 0 {
				h = 200
			}
			if y < viewportH {
				if u := imgByOffset[el.Offset]; u != "" {
					out = append(out, u)
				}
			}
		} else if el.TextLen > 0 {
			h = (el.TextLen + 109) / 110 * 22
		}
		y += h
	}
	return out
}

// criticalPushList assembles the ordered critical resource list:
// critical CSS (when rewritten), render-blocking JS, webfonts, then ATF
// images — all filtered to pushable objects.
func (a *analysis) criticalPushList(site *replay.Site, withCriticalCSS bool) []string {
	var list []string
	if withCriticalCSS {
		list = append(list, page.URL{
			Scheme: site.Base.Scheme, Authority: site.Base.Authority, Path: CriticalCSSPath,
		}.String())
	} else {
		list = append(list, a.cssLinks...)
	}
	list = append(list, a.blockingJS...)
	list = append(list, a.fonts...)
	list = append(list, a.atfImages...)
	return pushableOrder(site, list)
}

// rewriteSite clones the site, adds the critical stylesheet, references
// it in <head> and moves every original stylesheet link to the end of
// <body> (the paper's "no push optimized" document layout). The rewrite
// is a pure function of the site and its analysis, so it is computed
// once and cached on the site's prepared state: all three optimized
// strategies share one (immutable) rewritten site, and repeated
// evaluations stop re-cloning the database.
func rewriteSite(site *replay.Site, a *analysis) *replay.Site {
	// Keyed by the analysis viewport: a rewrite embeds that viewport's
	// critical CSS, so two viewports must never share a cache slot.
	key := "strategy.rewrite:" + strconv.Itoa(a.viewportW) + "x" + strconv.Itoa(a.viewportH)
	return site.Prepared().Memo(key, func() any {
		return rewriteSiteUncached(site, a)
	}).(*replay.Site)
}

func rewriteSiteUncached(site *replay.Site, a *analysis) *replay.Site {
	db := site.DB.Clone()
	entry := db.Lookup(site.Base.Authority, site.Base.Path)
	critURL := page.URL{Scheme: site.Base.Scheme, Authority: site.Base.Authority, Path: CriticalCSSPath}
	db.Add(&replay.Entry{
		URL: critURL, Status: 200,
		ContentType: page.ContentTypeFor(page.KindCSS),
		Body:        []byte(a.criticalCSS),
	})
	newHTML := htmlx.Rewrite(entry.Body, htmlx.RewriteOptions{
		MoveCSSToBodyEnd: true,
	})
	// Insert the critical link at the head start (after rewriting so
	// offsets refer to the original document for the move pass).
	newHTML = insertHeadLink(newHTML, CriticalCSSPath)
	ne := *entry
	ne.Body = newHTML
	db.Add(&ne)

	ns := &replay.Site{
		Name:     site.Name + "+opt",
		Base:     site.Base,
		DB:       db,
		IPByHost: site.IPByHost,
		SANsByIP: site.SANsByIP,
	}
	return ns
}

func insertHeadLink(html []byte, href string) []byte {
	doc := htmlx.Parse(html)
	link := []byte(`<link rel="stylesheet" href="` + href + `">`)
	at := doc.HeadStart
	out := make([]byte, 0, len(html)+len(link))
	out = append(out, html[:at]...)
	out = append(out, link...)
	out = append(out, html[at:]...)
	return out
}

// --- critical strategies (Sec. 4.3 / 5) ---

// PushCritical pushes only render-critical above-the-fold resources,
// with the default scheduler and the original document.
type PushCritical struct{}

func (PushCritical) Name() string { return "push critical" }
func (PushCritical) Apply(site *replay.Site, _ *Trace) (*replay.Site, replay.Plan) {
	a := analyze(site, 1280, 720)
	if a == nil {
		return site, replay.NoPush()
	}
	list := a.criticalPushList(site, false)
	if len(list) == 0 {
		return site, replay.NoPush()
	}
	return site, replay.PushList(site.Base.String(), list...)
}

// NoPushOptimized rewrites the document with a critical stylesheet in
// <head> and the full CSS at the end of <body>; nothing is pushed.
type NoPushOptimized struct{}

func (NoPushOptimized) Name() string { return "no push optimized" }
func (NoPushOptimized) Apply(site *replay.Site, _ *Trace) (*replay.Site, replay.Plan) {
	a := analyze(site, 1280, 720)
	if a == nil || a.criticalCSS == "" {
		return site, replay.NoPush()
	}
	return rewriteSite(site, a), replay.NoPush()
}

// PushAllOptimized rewrites the document, pushes the critical set
// interleaved with the document, and everything else afterwards.
type PushAllOptimized struct{}

func (PushAllOptimized) Name() string { return "push all optimized" }
func (PushAllOptimized) Apply(site *replay.Site, tr *Trace) (*replay.Site, replay.Plan) {
	a := analyze(site, 1280, 720)
	if a == nil {
		return site, replay.NoPush()
	}
	ns := rewriteSite(site, a)
	critical := a.criticalPushList(ns, true)
	all := pushableOrder(ns, orderOrStatic(ns, tr))
	list := append(append([]string(nil), critical...), all...)
	list = dedupe(list)
	if len(list) == 0 {
		return ns, replay.NoPush()
	}
	plan := replay.PushList(ns.Base.String(), list...).
		WithInterleave(ns.Base.String(), replay.InterleaveSpec{
			OffsetBytes: a.interleaveOffset,
			Critical:    critical,
		})
	return ns, plan
}

// PushCriticalOptimized is the paper's headline strategy: the rewrite
// plus interleaved pushes of only the critical resources.
type PushCriticalOptimized struct{}

func (PushCriticalOptimized) Name() string { return "push critical optimized" }
func (PushCriticalOptimized) Apply(site *replay.Site, _ *Trace) (*replay.Site, replay.Plan) {
	a := analyze(site, 1280, 720)
	if a == nil {
		return site, replay.NoPush()
	}
	ns := rewriteSite(site, a)
	critical := a.criticalPushList(ns, true)
	if len(critical) == 0 {
		return ns, replay.NoPush()
	}
	plan := replay.PushList(ns.Base.String(), critical...).
		WithInterleave(ns.Base.String(), replay.InterleaveSpec{
			OffsetBytes: a.interleaveOffset,
			Critical:    critical,
		})
	return ns, plan
}

func dedupe(xs []string) []string {
	seen := map[string]bool{}
	out := xs[:0]
	for _, x := range xs {
		if !seen[x] {
			seen[x] = true
			out = append(out, x)
		}
	}
	return out
}
