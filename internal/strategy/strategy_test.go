package strategy

import (
	"strings"
	"testing"

	"repro/internal/corpus"
	"repro/internal/htmlx"
	"repro/internal/page"
	"repro/internal/replay"
)

func testSite() *replay.Site {
	b := corpus.NewPage("site.test")
	fURL := b.Font("/fonts/brand.woff2", 30*1024)
	b.CSS("/css/main.css", corpus.FontFaceCSS("Brand", fURL)+
		corpus.SimpleCSS([]string{"hero", "masthead", "deep-footer"}, 200))
	b.Script("/js/blocking.js", 40*1024, 30, true, false)
	b.Div("masthead", 100)
	b.Image("/img/hero.jpg", 1280, 400, 60*1024)
	b.Text(600, "hero", "wf-Brand")
	// Push content far below the fold.
	for i := 0; i < 12; i++ {
		b.Image("/img/btf.jpg", 400, 400, 20*1024)
		b.Text(800, "deep-footer")
	}
	b.ScriptOn("cdn.ext.test", "/tp.js", 20*1024, 10, false, true)
	return b.Build("strategy-site")
}

func TestMajorityOrder(t *testing.T) {
	tr := &Trace{Orders: [][]string{
		{"a", "b", "c"},
		{"a", "c", "b"},
		{"a", "b", "c"},
	}}
	got := tr.MajorityOrder()
	if len(got) != 3 || got[0] != "a" || got[1] != "b" || got[2] != "c" {
		t.Fatalf("MajorityOrder = %v", got)
	}
	// Resources appearing in fewer runs rank below stable ones.
	tr2 := &Trace{Orders: [][]string{
		{"x", "flaky"},
		{"x"},
		{"x"},
	}}
	got2 := tr2.MajorityOrder()
	if got2[0] != "x" || got2[1] != "flaky" {
		t.Fatalf("MajorityOrder = %v", got2)
	}
	if (&Trace{}).MajorityOrder() != nil {
		t.Fatal("empty trace order")
	}
	if (*Trace)(nil).MajorityOrder() != nil {
		t.Fatal("nil trace order")
	}
}

func TestPushAllExcludesThirdParty(t *testing.T) {
	site := testSite()
	_, plan := PushAll{}.Apply(site, nil)
	pushes := plan.PushesFor(site.Base.String())
	if len(pushes) == 0 {
		t.Fatal("no pushes")
	}
	for _, u := range pushes {
		if strings.Contains(u, "cdn.ext.test") {
			t.Fatalf("third-party object in push list: %s", u)
		}
		if u == site.Base.String() {
			t.Fatal("base document in push list")
		}
	}
}

func TestPushFirstNLimits(t *testing.T) {
	site := testSite()
	_, planAll := PushAll{}.Apply(site, nil)
	all := planAll.PushesFor(site.Base.String())
	_, plan5 := PushFirstN{N: 5}.Apply(site, nil)
	five := plan5.PushesFor(site.Base.String())
	if len(five) != 5 {
		t.Fatalf("push 5 pushed %d", len(five))
	}
	for i := range five {
		if five[i] != all[i] {
			t.Fatalf("push 5 order diverges at %d", i)
		}
	}
}

func TestPushByTypeFilters(t *testing.T) {
	site := testSite()
	_, plan := PushByType{Kinds: []page.Kind{page.KindCSS}}.Apply(site, nil)
	pushes := plan.PushesFor(site.Base.String())
	if len(pushes) != 1 || !strings.Contains(pushes[0], "main.css") {
		t.Fatalf("CSS-only pushes: %v", pushes)
	}
	_, planImg := PushByType{Kinds: []page.Kind{page.KindImage}}.Apply(site, nil)
	for _, u := range planImg.PushesFor(site.Base.String()) {
		if !strings.Contains(u, "/img/") {
			t.Fatalf("non-image in image pushes: %v", u)
		}
	}
}

func TestAnalyzeFindsCriticalSet(t *testing.T) {
	site := testSite()
	a := analyze(site, 1280, 720)
	if a == nil {
		t.Fatal("analyze nil")
	}
	if len(a.cssLinks) != 1 {
		t.Fatalf("cssLinks = %v", a.cssLinks)
	}
	if len(a.blockingJS) != 1 || !strings.Contains(a.blockingJS[0], "blocking.js") {
		t.Fatalf("blockingJS = %v", a.blockingJS)
	}
	if len(a.fonts) != 1 {
		t.Fatalf("fonts = %v", a.fonts)
	}
	if len(a.atfImages) == 0 || !strings.Contains(a.atfImages[0], "hero.jpg") {
		t.Fatalf("atfImages = %v", a.atfImages)
	}
	// The deep-footer rules must be excluded from the critical CSS, the
	// hero ones retained.
	if !strings.Contains(a.criticalCSS, ".hero") {
		t.Fatal("hero rules missing from critical CSS")
	}
	if strings.Contains(a.criticalCSS, ".unused-50") {
		t.Fatal("bloat rules kept in critical CSS")
	}
	if a.interleaveOffset <= 0 {
		t.Fatal("no interleave offset")
	}
}

func TestRewriteSiteLayout(t *testing.T) {
	site := testSite()
	a := analyze(site, 1280, 720)
	ns := rewriteSite(site, a)
	// Critical stylesheet exists.
	crit := ns.DB.Lookup("site.test", CriticalCSSPath)
	if crit == nil || len(crit.Body) == 0 {
		t.Fatal("critical css missing")
	}
	if len(crit.Body) >= len(site.DB.Lookup("site.test", "/css/main.css").Body) {
		t.Fatal("critical css not smaller than the original")
	}
	// Rewritten document: critical link first, original CSS at body end.
	html := ns.DB.Lookup("site.test", "/").Body
	doc := htmlx.Parse(html)
	var critOff, mainOff, imgOff int
	for _, r := range doc.Resources {
		switch {
		case strings.Contains(r.URL, "__critical"):
			critOff = r.Offset
		case strings.Contains(r.URL, "main.css"):
			mainOff = r.Offset
		case strings.Contains(r.URL, "hero.jpg"):
			imgOff = r.Offset
		}
	}
	if critOff == 0 || mainOff == 0 {
		t.Fatalf("missing links after rewrite: crit=%d main=%d", critOff, mainOff)
	}
	if !(critOff < imgOff && imgOff < mainOff) {
		t.Fatalf("offsets wrong: crit=%d img=%d main=%d", critOff, imgOff, mainOff)
	}
	// Original site untouched.
	if site.DB.Lookup("site.test", CriticalCSSPath) != nil {
		t.Fatal("original DB mutated")
	}
}

func TestOptimizedStrategiesProducePlans(t *testing.T) {
	site := testSite()
	base := site.Base.String()

	nsOpt, planOpt := NoPushOptimized{}.Apply(site, nil)
	if planOpt.PushesFor(base) != nil {
		t.Fatal("no push optimized pushes")
	}
	if nsOpt.DB.Lookup("site.test", CriticalCSSPath) == nil {
		t.Fatal("no push optimized did not rewrite")
	}

	_, planCrit := PushCriticalOptimized{}.Apply(site, nil)
	pushes := planCrit.PushesFor(base)
	if len(pushes) == 0 {
		t.Fatal("push critical optimized pushes nothing")
	}
	spec, ok := planCrit.Interleave[base]
	if !ok || spec.OffsetBytes <= 0 || len(spec.Critical) == 0 {
		t.Fatalf("interleave spec = %+v", spec)
	}
	// Critical list must start with the critical stylesheet.
	if !strings.Contains(spec.Critical[0], "__critical") {
		t.Fatalf("critical[0] = %s", spec.Critical[0])
	}

	_, planAllOpt := PushAllOptimized{}.Apply(site, nil)
	allPushes := planAllOpt.PushesFor(base)
	if len(allPushes) <= len(pushes) {
		t.Fatalf("push all optimized (%d) not larger than critical (%d)", len(allPushes), len(pushes))
	}
	// No duplicates.
	seen := map[string]bool{}
	for _, u := range allPushes {
		if seen[u] {
			t.Fatalf("duplicate push %s", u)
		}
		seen[u] = true
	}
}

func TestPushCriticalPushesLessThanPushAll(t *testing.T) {
	site := testSite()
	_, planAll := PushAll{}.Apply(site, nil)
	_, planCrit := PushCritical{}.Apply(site, nil)
	base := site.Base.String()
	if len(planCrit.PushesFor(base)) >= len(planAll.PushesFor(base)) {
		t.Fatalf("critical (%d) not smaller than all (%d)",
			len(planCrit.PushesFor(base)), len(planAll.PushesFor(base)))
	}
}

func TestStrategyNames(t *testing.T) {
	names := map[string]bool{}
	for _, st := range []Strategy{
		NoPush{}, PushAll{}, PushFirstN{N: 5},
		PushByType{Kinds: []page.Kind{page.KindCSS}},
		PushCritical{}, NoPushOptimized{}, PushAllOptimized{}, PushCriticalOptimized{},
	} {
		if st.Name() == "" || names[st.Name()] {
			t.Fatalf("bad/duplicate name %q", st.Name())
		}
		names[st.Name()] = true
	}
}
