package page

import "testing"

func TestKindFromPath(t *testing.T) {
	cases := map[string]Kind{
		"/index.html":        KindHTML,
		"/":                  KindHTML,
		"":                   KindHTML,
		"/css/main.css":      KindCSS,
		"/js/app.js":         KindJS,
		"/img/hero.jpg":      KindImage,
		"/img/logo.png":      KindImage,
		"/img/anim.gif":      KindImage,
		"/img/pic.webp":      KindImage,
		"/favicon.ico":       KindImage,
		"/fonts/brand.woff2": KindFont,
		"/fonts/brand.ttf":   KindFont,
		"/api/data":          KindOther,
		"/a.css?v=3":         KindCSS,
	}
	for path, want := range cases {
		if got := KindFromPath(path); got != want {
			t.Errorf("KindFromPath(%q) = %v, want %v", path, got, want)
		}
	}
}

func TestKindFromContentType(t *testing.T) {
	cases := map[string]Kind{
		"text/html; charset=utf-8": KindHTML,
		"text/css":                 KindCSS,
		"application/javascript":   KindJS,
		"text/javascript":          KindJS,
		"image/png":                KindImage,
		"font/woff2":               KindFont,
		"application/octet-stream": KindOther,
	}
	for ct, want := range cases {
		if got := KindFromContentType(ct); got != want {
			t.Errorf("KindFromContentType(%q) = %v, want %v", ct, got, want)
		}
	}
}

func TestContentTypeForRoundTrips(t *testing.T) {
	for _, k := range []Kind{KindHTML, KindCSS, KindJS, KindImage, KindFont} {
		if got := KindFromContentType(ContentTypeFor(k)); got != k {
			t.Errorf("kind %v round-trips to %v", k, got)
		}
	}
}

func TestParseURL(t *testing.T) {
	base := URL{Scheme: "https", Authority: "example.com", Path: "/dir/index.html"}
	cases := []struct {
		in   string
		want URL
	}{
		{"https://cdn.example.com/a.css", URL{"https", "cdn.example.com", "/a.css"}},
		{"http://plain.org", URL{"http", "plain.org", "/"}},
		{"//proto.example.com/x.js", URL{"https", "proto.example.com", "/x.js"}},
		{"/abs/path.png", URL{"https", "example.com", "/abs/path.png"}},
		{"rel.css", URL{"https", "example.com", "/dir/rel.css"}},
	}
	for _, tc := range cases {
		got, err := ParseURL(tc.in, base)
		if err != nil {
			t.Errorf("ParseURL(%q): %v", tc.in, err)
			continue
		}
		if got != tc.want {
			t.Errorf("ParseURL(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
	for _, bad := range []string{"", "https:///nohost"} {
		if _, err := ParseURL(bad, base); err == nil {
			t.Errorf("ParseURL(%q) accepted", bad)
		}
	}
	if _, err := ParseURL("/x", URL{}); err == nil {
		t.Error("relative URL without base accepted")
	}
}

func TestURLString(t *testing.T) {
	u := URL{"https", "a.com", "/b"}
	if u.String() != "https://a.com/b" {
		t.Fatalf("String = %q", u.String())
	}
}
