// Package page holds the small shared vocabulary of the testbed: resource
// kinds, URL helpers and per-resource metadata that the corpus generator
// records and the browser model consumes.
package page

import (
	"fmt"
	"strings"
)

// Kind classifies a web resource by its role in the rendering process.
type Kind int

// Resource kinds.
const (
	KindOther Kind = iota
	KindHTML
	KindCSS
	KindJS
	KindImage
	KindFont
)

var kindNames = [...]string{"other", "html", "css", "js", "image", "font"}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "invalid"
}

// KindFromContentType guesses the kind from a MIME type.
func KindFromContentType(ct string) Kind {
	ct = strings.ToLower(ct)
	switch {
	case strings.Contains(ct, "text/html"):
		return KindHTML
	case strings.Contains(ct, "text/css"):
		return KindCSS
	case strings.Contains(ct, "javascript"), strings.Contains(ct, "ecmascript"):
		return KindJS
	case strings.HasPrefix(ct, "image/"):
		return KindImage
	case strings.Contains(ct, "font"), strings.Contains(ct, "woff"):
		return KindFont
	}
	return KindOther
}

// KindFromPath guesses the kind from a URL path extension.
func KindFromPath(path string) Kind {
	if i := strings.IndexAny(path, "?#"); i >= 0 {
		path = path[:i]
	}
	switch {
	case strings.HasSuffix(path, ".html"), strings.HasSuffix(path, "/"), path == "":
		return KindHTML
	case strings.HasSuffix(path, ".css"):
		return KindCSS
	case strings.HasSuffix(path, ".js"):
		return KindJS
	case strings.HasSuffix(path, ".png"), strings.HasSuffix(path, ".jpg"),
		strings.HasSuffix(path, ".jpeg"), strings.HasSuffix(path, ".gif"),
		strings.HasSuffix(path, ".webp"), strings.HasSuffix(path, ".svg"),
		strings.HasSuffix(path, ".ico"):
		return KindImage
	case strings.HasSuffix(path, ".woff"), strings.HasSuffix(path, ".woff2"),
		strings.HasSuffix(path, ".ttf"), strings.HasSuffix(path, ".otf"):
		return KindFont
	}
	return KindOther
}

// ContentTypeFor returns a canonical MIME type for a kind.
func ContentTypeFor(k Kind) string {
	switch k {
	case KindHTML:
		return "text/html; charset=utf-8"
	case KindCSS:
		return "text/css"
	case KindJS:
		return "application/javascript"
	case KindImage:
		return "image/png"
	case KindFont:
		return "font/woff2"
	}
	return "application/octet-stream"
}

// Meta is per-resource metadata recorded alongside the replay database:
// properties a real crawl would measure (script execution cost, image
// intrinsic sizes) that the deterministic browser model needs.
type Meta struct {
	// ExecMS is additional JS execution cost in milliseconds, on top of
	// the size-proportional cost.
	ExecMS float64
	// ParseMS is additional CSS parse cost in milliseconds.
	ParseMS float64
	// Width/Height are intrinsic image dimensions in CSS pixels.
	Width, Height int
}

// URL is a parsed absolute URL (scheme://authority/path).
type URL struct {
	Scheme    string
	Authority string
	Path      string
}

func (u URL) String() string {
	// Plain concatenation: one allocation, no fmt machinery — this runs
	// for every resource key of every simulated request.
	return u.Scheme + "://" + u.Authority + u.Path
}

// ParseURL splits an absolute or host-relative URL. Relative references
// are resolved against base.
func ParseURL(s string, base URL) (URL, error) {
	switch {
	case strings.HasPrefix(s, "https://"), strings.HasPrefix(s, "http://"):
		rest := s
		u := URL{}
		if strings.HasPrefix(rest, "https://") {
			u.Scheme = "https"
			rest = rest[len("https://"):]
		} else {
			u.Scheme = "http"
			rest = rest[len("http://"):]
		}
		slash := strings.IndexByte(rest, '/')
		if slash < 0 {
			u.Authority = rest
			u.Path = "/"
		} else {
			u.Authority = rest[:slash]
			u.Path = rest[slash:]
		}
		if u.Authority == "" {
			return URL{}, fmt.Errorf("page: empty authority in %q", s)
		}
		return u, nil
	case strings.HasPrefix(s, "//"):
		return ParseURL(base.Scheme+":"+s, base)
	case strings.HasPrefix(s, "/"):
		if base.Authority == "" {
			return URL{}, fmt.Errorf("page: relative URL %q without base", s)
		}
		return URL{Scheme: base.Scheme, Authority: base.Authority, Path: s}, nil
	case s == "":
		return URL{}, fmt.Errorf("page: empty URL")
	default:
		// Path-relative: resolve against the base directory.
		if base.Authority == "" {
			return URL{}, fmt.Errorf("page: relative URL %q without base", s)
		}
		dir := base.Path
		if i := strings.LastIndexByte(dir, '/'); i >= 0 {
			dir = dir[:i+1]
		} else {
			dir = "/"
		}
		return URL{Scheme: base.Scheme, Authority: base.Authority, Path: dir + s}, nil
	}
}
