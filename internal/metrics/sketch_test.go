package metrics

import (
	"math"
	"math/rand"
	"testing"
	"time"
)

// sketchTol is the test tolerance on relative error: the guarantee is
// SketchRelativeError; the slack covers float rounding in the
// representative-value computation.
const sketchTol = SketchRelativeError * 1.05

func relErr(got, want time.Duration) float64 {
	if want == 0 {
		if got == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return math.Abs(float64(got-want)) / float64(want)
}

// TestSketchQuantileRelativeError is the accuracy property test: on
// random data spanning microseconds to minutes, every sketch quantile
// must be within the advertised relative error of the exact
// Sample.Percentile under the same nearest-rank convention.
func TestSketchQuantileRelativeError(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		var s Sample
		var k Sketch
		n := 1 + rng.Intn(2000)
		for i := 0; i < n; i++ {
			// Log-uniform across 6 decades, the range PLTs and
			// SpeedIndexes actually span.
			v := time.Duration(math.Exp(rng.Float64()*math.Log(1e12)) * 1e3)
			s.Add(v)
			k.Add(v)
		}
		for _, p := range []float64{0, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1} {
			exact := s.Percentile(p)
			got := k.Quantile(p)
			if e := relErr(got, exact); e > sketchTol {
				t.Fatalf("trial %d p=%g: sketch %v vs exact %v (rel err %.4f > %.4f)",
					trial, p, got, exact, e, sketchTol)
			}
		}
	}
}

// TestSketchExactExtremes: p=0 and p=1 are exact, not bucket
// representatives.
func TestSketchExactExtremes(t *testing.T) {
	var k Sketch
	vals := []time.Duration{17 * time.Millisecond, 3 * time.Second, 999 * time.Microsecond}
	for _, v := range vals {
		k.Add(v)
	}
	if got := k.Quantile(0); got != 999*time.Microsecond {
		t.Fatalf("p0 = %v, want exact min", got)
	}
	if got := k.Quantile(1); got != 3*time.Second {
		t.Fatalf("p1 = %v, want exact max", got)
	}
	if k.Min() != 999*time.Microsecond || k.Max() != 3*time.Second {
		t.Fatalf("Min/Max = %v/%v", k.Min(), k.Max())
	}
}

// TestSketchZeroBucket: non-positive values collapse to the zero
// bucket and rank correctly below everything positive.
func TestSketchZeroBucket(t *testing.T) {
	var k Sketch
	k.Add(0)
	k.Add(0)
	k.Add(time.Second)
	k.Add(2 * time.Second)
	if got := k.Quantile(0.25); got != 0 {
		t.Fatalf("p25 = %v, want 0 (zero bucket)", got)
	}
	if got := k.Quantile(0.75); relErr(got, 2*time.Second) > sketchTol {
		t.Fatalf("p75 = %v, want ~2s", got)
	}
	if k.N() != 4 {
		t.Fatalf("N = %d", k.N())
	}
}

// TestSketchMergeOrderInvariant is the determinism property the
// population engine rests on: merging per-worker sketches in any
// permutation and any association must produce bit-identical quantile
// answers, because a different -jobs value shuffles which worker
// absorbed which runs.
func TestSketchMergeOrderInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const parts = 6
	shards := make([]*Sketch, parts)
	for i := range shards {
		shards[i] = &Sketch{}
		for j := 0; j < 50+rng.Intn(200); j++ {
			shards[i].Add(time.Duration(1e3 + rng.Int63n(1e11)))
		}
	}
	quantiles := func(k *Sketch) []time.Duration {
		var qs []time.Duration
		for p := 0.0; p <= 1.0; p += 0.01 {
			qs = append(qs, k.Quantile(p))
		}
		return qs
	}
	merge := func(order []int, pairwise bool) []time.Duration {
		if pairwise {
			// Tree-shaped association: merge pairs, then merge the pair
			// results, exercising associativity rather than just
			// left-fold commutativity.
			var tier []*Sketch
			for i := 0; i < len(order); i += 2 {
				m := &Sketch{}
				m.MergeFrom(shards[order[i]])
				if i+1 < len(order) {
					m.MergeFrom(shards[order[i+1]])
				}
				tier = append(tier, m)
			}
			total := &Sketch{}
			for _, m := range tier {
				total.MergeFrom(m)
			}
			return quantiles(total)
		}
		total := &Sketch{}
		for _, i := range order {
			total.MergeFrom(shards[i])
		}
		return quantiles(total)
	}
	want := merge([]int{0, 1, 2, 3, 4, 5}, false)
	cases := [][]int{
		{5, 4, 3, 2, 1, 0},
		{2, 0, 5, 1, 4, 3},
		{3, 5, 1, 0, 2, 4},
	}
	for _, order := range cases {
		for _, pairwise := range []bool{false, true} {
			got := merge(order, pairwise)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("order %v pairwise=%v: quantile %d = %v, want %v",
						order, pairwise, i, got[i], want[i])
				}
			}
		}
	}
}

// TestSketchMergeEmpty: merging with empty sketches on either side is
// the identity.
func TestSketchMergeEmpty(t *testing.T) {
	var a, b Sketch
	a.Add(time.Second)
	a.MergeFrom(&b) // empty rhs
	if a.N() != 1 || a.Quantile(0.5) == 0 {
		t.Fatalf("merge with empty changed state: n=%d", a.N())
	}
	b.MergeFrom(&a) // empty lhs
	if b.N() != 1 {
		t.Fatalf("empty lhs merge: n=%d", b.N())
	}
	if got, want := b.Quantile(0.5), a.Quantile(0.5); got != want {
		t.Fatalf("merged quantile %v != source %v", got, want)
	}
}

// TestSketchReset: a reset sketch behaves like a fresh one (pooled
// contract) while keeping bucket capacity.
func TestSketchReset(t *testing.T) {
	var k Sketch
	for i := 1; i <= 100; i++ {
		k.Add(time.Duration(i) * time.Millisecond)
	}
	k.Reset()
	if k.N() != 0 || k.Quantile(0.5) != 0 || k.Min() != 0 || k.Max() != 0 {
		t.Fatalf("reset sketch not empty: n=%d", k.N())
	}
	k.Add(5 * time.Millisecond)
	if got := k.Quantile(0.5); relErr(got, 5*time.Millisecond) > sketchTol {
		t.Fatalf("post-reset quantile %v", got)
	}
}

// TestSampleCompactExactStats: Compact must freeze N/Median/Mean/Std/
// StdErr/CI at their exact pre-compaction values — the golden-pinned
// tables consume only these.
func TestSampleCompactExactStats(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var s Sample
	for i := 0; i < 31; i++ {
		s.Add(time.Duration(1e6 + rng.Int63n(5e9)))
	}
	n, med, mean := s.N(), s.Median(), s.Mean()
	std, serr, ci := s.Std(), s.StdErr(), s.CI(0.95)
	p95 := s.Percentile(0.95)
	s.Compact()
	if !s.Compacted() {
		t.Fatal("not compacted")
	}
	if s.Values != nil {
		t.Fatal("Compact must release the raw values")
	}
	if s.N() != n || s.Median() != med || s.Mean() != mean ||
		s.Std() != std || s.StdErr() != serr || s.CI(0.95) != ci {
		t.Fatalf("exact stats changed across Compact")
	}
	if e := relErr(s.Percentile(0.95), p95); e > sketchTol {
		t.Fatalf("post-compact p95 rel err %.4f", e)
	}
	if cdf := s.SampleCDF(); len(cdf) != n || cdf[len(cdf)-1].Fraction != 1 {
		t.Fatalf("post-compact CDF shape: %d points", len(cdf))
	}
	s.Compact() // idempotent
	if s.N() != n {
		t.Fatal("second Compact changed state")
	}
}

// TestSampleCompactAddPanics: the sample is frozen after Compact.
func TestSampleCompactAddPanics(t *testing.T) {
	var s Sample
	s.Add(time.Second)
	s.Compact()
	defer func() {
		if recover() == nil {
			t.Fatal("Add after Compact must panic")
		}
	}()
	s.Add(time.Second)
}
