package metrics

import (
	"math"
	"time"
)

// Sketch is a mergeable quantile sketch over durations, DDSketch-style:
// values are binned into geometrically spaced buckets so any reported
// quantile is within a fixed *relative* error of the exact one (the
// bound is on the value, not on the rank). Bucket counts are plain
// integers, so MergeFrom is commutative and associative — merging
// worker sketches in any order yields bit-identical state, which is
// what keeps population tables byte-identical at any worker-pool size.
// Memory is O(buckets) regardless of how many values were added: a
// sweep over 10^6 loads costs the same few kilobytes as one over 10.
//
// The zero Sketch is ready to use. Accuracy is fixed at
// SketchRelativeError; values <= 0 collapse into a dedicated zero
// bucket and report as 0. Min and max are tracked exactly, so the 0-
// and 1-quantiles are exact.
//
//repolint:pooled
type Sketch struct {
	// counts is the dense bucket array: counts[j] is the number of
	// values v with index(v) == base+j, where bucket i covers
	// (gamma^(i-1), gamma^i].
	counts []int64
	base   int
	zero   int64 // values <= 0
	n      int64
	min    time.Duration
	max    time.Duration
}

// SketchRelativeError is the sketch's accuracy guarantee: every
// quantile it reports is within this fraction of the exact quantile
// value (same nearest-rank convention as Sample.Percentile).
const SketchRelativeError = 0.01

// sketchGamma is (1+a)/(1-a) for a = SketchRelativeError: bucket i
// covers (gamma^(i-1), gamma^i] and its representative value
// 2*gamma^i/(gamma+1) is within a of every value in the bucket.
const sketchGamma = (1 + SketchRelativeError) / (1 - SketchRelativeError)

var sketchLogGamma = math.Log(sketchGamma)

// sketchIndex returns the bucket index for a positive value.
//
//repolint:hotpath
func sketchIndex(v time.Duration) int {
	return int(math.Ceil(math.Log(float64(v)) / sketchLogGamma))
}

// Add records one value.
//
//repolint:hotpath
func (k *Sketch) Add(v time.Duration) {
	if k.n == 0 || v < k.min {
		k.min = v
	}
	if k.n == 0 || v > k.max {
		k.max = v
	}
	k.n++
	if v <= 0 {
		k.zero++
		return
	}
	idx := sketchIndex(v)
	switch {
	case len(k.counts) == 0:
		k.base = idx
		k.counts = append(k.counts, 0)
	case idx < k.base:
		// Grow the dense array downward to cover the new low bucket.
		shift := k.base - idx
		old := len(k.counts)
		k.counts = append(k.counts, make([]int64, shift)...)
		copy(k.counts[shift:], k.counts[:old])
		for j := 0; j < shift; j++ {
			k.counts[j] = 0
		}
		k.base = idx
	default:
		for idx-k.base >= len(k.counts) {
			k.counts = append(k.counts, 0)
		}
	}
	k.counts[idx-k.base]++
}

// N returns the number of values added.
func (k *Sketch) N() int64 { return k.n }

// Min returns the exact minimum added value (0 on an empty sketch).
func (k *Sketch) Min() time.Duration {
	if k.n == 0 {
		return 0
	}
	return k.min
}

// Max returns the exact maximum added value (0 on an empty sketch).
func (k *Sketch) Max() time.Duration {
	if k.n == 0 {
		return 0
	}
	return k.max
}

// MergeFrom folds o into k. Merging is pure integer addition on
// aligned buckets, so it is commutative and associative: any merge
// order over any partition of the input values yields identical state.
// o is not modified.
func (k *Sketch) MergeFrom(o *Sketch) {
	if o.n == 0 {
		return
	}
	if k.n == 0 || o.min < k.min {
		k.min = o.min
	}
	if k.n == 0 || o.max > k.max {
		k.max = o.max
	}
	k.n += o.n
	k.zero += o.zero
	if len(o.counts) == 0 {
		return
	}
	switch {
	case len(k.counts) == 0:
		k.base = o.base
		k.counts = append(k.counts[:0], o.counts...)
		return
	case o.base < k.base:
		shift := k.base - o.base
		old := len(k.counts)
		k.counts = append(k.counts, make([]int64, shift)...)
		copy(k.counts[shift:], k.counts[:old])
		for j := 0; j < shift; j++ {
			k.counts[j] = 0
		}
		k.base = o.base
	}
	for (o.base+len(o.counts))-k.base > len(k.counts) {
		k.counts = append(k.counts, 0)
	}
	off := o.base - k.base
	for j, c := range o.counts {
		k.counts[off+j] += c
	}
}

// Quantile returns the p-quantile (0 <= p <= 1) under the same
// nearest-rank convention as Sample.Percentile, accurate to
// SketchRelativeError of the exact value. p <= 0 and p >= 1 return the
// exact min and max.
func (k *Sketch) Quantile(p float64) time.Duration {
	if k.n == 0 {
		return 0
	}
	switch {
	case p <= 0:
		return k.min
	case p >= 1:
		return k.max
	}
	rank := int64(p * float64(k.n))
	if rank >= k.n {
		rank = k.n - 1
	}
	if rank < k.zero {
		return 0
	}
	cum := k.zero
	for j, c := range k.counts {
		cum += c
		if rank < cum {
			v := time.Duration(math.Round(math.Pow(sketchGamma, float64(k.base+j)) * 2 / (sketchGamma + 1)))
			// The representative can stick out past the observed extremes
			// (bucket edges are value-independent); the exact min/max are
			// tighter bounds on any order statistic.
			if v < k.min {
				v = k.min
			}
			if v > k.max {
				v = k.max
			}
			return v
		}
	}
	return k.max
}

// Reset empties the sketch, keeping the bucket array's capacity.
func (k *Sketch) Reset() {
	clear(k.counts)
	k.counts = k.counts[:0]
	k.base = 0
	k.zero = 0
	k.n = 0
	k.min = 0
	k.max = 0
}
