package metrics

import (
	"reflect"
	"testing"
	"time"
)

func sketchOf(vals ...time.Duration) *Sketch {
	k := &Sketch{}
	for _, v := range vals {
		k.Add(v)
	}
	return k
}

func TestSketchCodecRoundTrip(t *testing.T) {
	for name, k := range map[string]*Sketch{
		"empty":     {},
		"zeros":     sketchOf(0, -time.Second, 0),
		"mixed":     sketchOf(0, time.Millisecond, 3*time.Second, 17*time.Microsecond, time.Minute),
		"singleton": sketchOf(42 * time.Millisecond),
	} {
		enc := k.AppendBinary(nil)
		if string(enc) != string(k.AppendBinary(nil)) {
			t.Fatalf("%s: encoding not deterministic", name)
		}
		var got Sketch
		rest, err := got.DecodeBinary(enc)
		if err != nil {
			t.Fatalf("%s: decode: %v", name, err)
		}
		if len(rest) != 0 {
			t.Fatalf("%s: %d trailing bytes", name, len(rest))
		}
		if !reflect.DeepEqual(&got, k) {
			t.Fatalf("%s: round trip diverged:\n got %+v\nwant %+v", name, got, *k)
		}
		for _, p := range []float64{0, 0.25, 0.5, 0.95, 1} {
			if got.Quantile(p) != k.Quantile(p) {
				t.Fatalf("%s: quantile %v diverged", name, p)
			}
		}
	}
}

func TestSketchCodecMergedEqualsDirect(t *testing.T) {
	// The executor contract: a sketch built in one process must equal
	// the merge of sketches built from any partition of its values.
	all := []time.Duration{0, time.Millisecond, 5 * time.Millisecond, time.Second, 90 * time.Millisecond, 2 * time.Second}
	direct := sketchOf(all...)
	a, b := sketchOf(all[:3]...), sketchOf(all[3:]...)
	var merged Sketch
	merged.MergeFrom(a)
	merged.MergeFrom(b)
	if string(direct.AppendBinary(nil)) != string(merged.AppendBinary(nil)) {
		t.Fatal("merged sketch encodes differently from directly built sketch")
	}
}

func TestSketchCodecRejectsCorruptPayloads(t *testing.T) {
	valid := sketchOf(time.Millisecond, time.Second).AppendBinary(nil)
	cases := map[string][]byte{
		"empty":     nil,
		"truncated": valid[:len(valid)-1],
		// n = 5 but only two values' worth of buckets: sum check fires.
		"sum mismatch": func() []byte {
			k := sketchOf(time.Millisecond, time.Second)
			k.n = 5
			return k.AppendBinary(nil)
		}(),
		"negative n": func() []byte {
			k := sketchOf(time.Millisecond)
			k.n = -1
			k.zero = -1 // keep the sum consistent so the sign check fires
			k.counts[0] = 0
			return k.AppendBinary(nil)
		}(),
		"inverted minmax": func() []byte {
			k := sketchOf(time.Millisecond)
			k.min, k.max = k.max+1, k.min
			return k.AppendBinary(nil)
		}(),
	}
	for name, payload := range cases {
		var got Sketch
		if _, err := got.DecodeBinary(payload); err == nil {
			t.Errorf("%s: corrupt payload decoded without error", name)
		}
	}
}

func TestSampleCodecRoundTripRaw(t *testing.T) {
	var s Sample
	for _, v := range []time.Duration{5 * time.Millisecond, time.Millisecond, 3 * time.Second} {
		s.Add(v)
	}
	_ = s.Median() // populate the sorted cache; it must not leak into the encoding
	enc := s.AppendBinary(nil)
	var got Sample
	rest, err := got.DecodeBinary(enc)
	if err != nil {
		t.Fatal(err)
	}
	if len(rest) != 0 {
		t.Fatalf("%d trailing bytes", len(rest))
	}
	if !reflect.DeepEqual(got.Values, s.Values) {
		t.Fatalf("values diverged: %v vs %v", got.Values, s.Values)
	}
	if got.Median() != s.Median() || got.Mean() != s.Mean() || got.StdErr() != s.StdErr() {
		t.Fatal("summary statistics diverged after round trip")
	}
}

func TestSampleCodecRoundTripCompacted(t *testing.T) {
	var s Sample
	for i := 0; i < 31; i++ {
		s.Add(time.Duration(i*i) * time.Millisecond)
	}
	s.Compact()
	enc := s.AppendBinary(nil)
	var got Sample
	rest, err := got.DecodeBinary(enc)
	if err != nil {
		t.Fatal(err)
	}
	if len(rest) != 0 {
		t.Fatalf("%d trailing bytes", len(rest))
	}
	if !got.Compacted() {
		t.Fatal("compacted sample decoded as raw")
	}
	if got.N() != s.N() || got.Median() != s.Median() || got.Mean() != s.Mean() ||
		got.Std() != s.Std() || got.StdErr() != s.StdErr() {
		t.Fatal("frozen statistics diverged after round trip")
	}
	for _, p := range []float64{0, 0.5, 0.95, 1} {
		if got.Percentile(p) != s.Percentile(p) {
			t.Fatalf("percentile %v diverged", p)
		}
	}
}

func TestSampleCodecRejectsCountMismatch(t *testing.T) {
	var s Sample
	s.Add(time.Millisecond)
	s.Add(time.Second)
	s.Compact()
	enc := s.AppendBinary(nil)
	// Byte 1 is the compacted count uvarint (small, single byte):
	// bump it so it disagrees with the sketch population.
	enc[1]++
	var got Sample
	if _, err := got.DecodeBinary(enc); err == nil {
		t.Fatal("count/population mismatch decoded without error")
	}
	if _, err := got.DecodeBinary([]byte{0xff}); err == nil {
		t.Fatal("unknown mode decoded without error")
	}
	if _, err := got.DecodeBinary(nil); err == nil {
		t.Fatal("empty payload decoded without error")
	}
}
