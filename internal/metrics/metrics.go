// Package metrics implements the paper's two performance metrics — Page
// Load Time (PLT, connectEnd to onload, Sec. 2.2) and SpeedIndex (the
// integral of visual incompleteness over time, computed here from the
// browser model's paint timeline instead of a captured video) — plus the
// summary statistics used throughout the evaluation: medians, standard
// errors, confidence intervals and CDFs.
package metrics

import (
	"fmt"
	"math"
	"slices"
	"sort"
	"time"
)

// ProgressPoint is one step of the visual progress curve: at time T the
// above-the-fold content is Fraction (0..1) complete.
type ProgressPoint struct {
	T        time.Duration
	Fraction float64
}

// SpeedIndex integrates 1-completeness over the progress curve, returning
// the result in the same unit WebPagetest reports (milliseconds). The
// curve must be sorted by time with non-decreasing fractions; the first
// visual change defines the start of visible progress and the curve is
// considered complete at the last point (fraction 1).
//
// If the curve is empty or never reaches a positive fraction, fallback is
// returned (the paper effectively falls back to load time for pages
// without measurable visual progress).
func SpeedIndex(curve []ProgressPoint, fallback time.Duration) time.Duration {
	if len(curve) == 0 {
		return fallback
	}
	anyVisible := false
	for _, p := range curve {
		if p.Fraction > 0 {
			anyVisible = true
			break
		}
	}
	if !anyVisible {
		return fallback
	}
	var si float64 // in nanoseconds
	prevT := time.Duration(0)
	prevF := 0.0
	for _, p := range curve {
		if p.T < prevT {
			prevT = p.T // defensive: unordered input
		}
		si += (1 - prevF) * float64(p.T-prevT)
		prevT = p.T
		prevF = p.Fraction
	}
	// If the final fraction is below 1, the page never completed
	// visually; charge the remaining incompleteness up to the fallback
	// horizon (conservative, mirrors WebPagetest's visually-complete
	// requirement).
	if prevF < 1 && fallback > prevT {
		si += (1 - prevF) * float64(fallback-prevT)
	}
	return time.Duration(si)
}

// Sample is a collection of repeated measurements of one scalar metric
// (e.g. PLT over 31 runs of a site). Appending via Add keeps a cached
// sorted view valid lazily: the first quantile query after a batch of
// Adds sorts once, and every further Median/Percentile/CDF call reuses
// the cache instead of copying and re-sorting per call.
type Sample struct {
	Values []time.Duration

	// sortedVals caches the sorted copy of Values; valid while
	// sortedN == len(Values). Mutating Values directly bypasses the
	// cache — use Add, or re-slice and Add afresh.
	sortedVals []time.Duration
	sortedN    int

	// Compacted state (see Compact): the exact summary statistics are
	// frozen, the raw values are released, and quantile queries fall
	// back to the sketch's relative-error answers.
	sketch     *Sketch
	compactN   int
	compMedian time.Duration
	compMean   time.Duration
	compStd    time.Duration
}

// Compact freezes the sample's summary statistics and releases the raw
// values, dropping per-sample memory to O(sketch buckets). N, Median,
// Mean, Std, StdErr and CI are computed exactly before the values are
// freed and keep returning the exact answers; Percentile and SampleCDF
// answer from a mergeable Sketch afterwards and are accurate to
// SketchRelativeError of the exact value (a relative-error bound, not
// a rank-error bound). Adding to a compacted sample panics. Compact on
// an already-compacted sample is a no-op.
func (s *Sample) Compact() {
	if s.sketch != nil {
		return
	}
	// Order matters: the exact statistics must be computed while the
	// raw values are still alive.
	s.compactN = len(s.Values)
	s.compMedian = s.Median()
	s.compMean = s.Mean()
	s.compStd = s.Std()
	sk := &Sketch{}
	for _, v := range s.Values {
		sk.Add(v)
	}
	s.Values = nil
	s.sortedVals = nil
	s.sortedN = 0
	s.sketch = sk
}

// Compacted reports whether Compact has released the raw values.
func (s *Sample) Compacted() bool { return s.sketch != nil }

// Add appends a measurement, invalidating the sorted cache.
func (s *Sample) Add(v time.Duration) {
	if s.sketch != nil {
		panic("metrics: Add on a compacted Sample")
	}
	s.Values = append(s.Values, v)
	s.sortedN = -1
}

// N returns the number of measurements.
func (s *Sample) N() int {
	if s.sketch != nil {
		return s.compactN
	}
	return len(s.Values)
}

func (s *Sample) sorted() []time.Duration {
	if s.sortedN == len(s.Values) && s.sortedVals != nil {
		return s.sortedVals
	}
	s.sortedVals = append(s.sortedVals[:0], s.Values...)
	slices.Sort(s.sortedVals)
	s.sortedN = len(s.Values)
	return s.sortedVals
}

// Median returns the sample median (the paper reports medians of 31
// runs). Exact, including after Compact (it is frozen there).
func (s *Sample) Median() time.Duration {
	if s.sketch != nil {
		return s.compMedian
	}
	if len(s.Values) == 0 {
		return 0
	}
	v := s.sorted()
	n := len(v)
	if n%2 == 1 {
		return v[n/2]
	}
	return (v[n/2-1] + v[n/2]) / 2
}

// Percentile returns the p-quantile (0 <= p <= 1) by nearest-rank on the
// cached sorted values, so repeated quantile queries after one batch of
// Adds cost O(1) after a single sort. After Compact it answers from the
// sketch, within SketchRelativeError of the exact value.
func (s *Sample) Percentile(p float64) time.Duration {
	if s.sketch != nil {
		return s.sketch.Quantile(p)
	}
	n := len(s.Values)
	if n == 0 {
		return 0
	}
	v := s.sorted()
	switch {
	case p <= 0:
		return v[0]
	case p >= 1:
		return v[n-1]
	}
	i := int(p * float64(n))
	if i >= n {
		i = n - 1
	}
	return v[i]
}

// SampleCDF returns the sample's empirical CDF from the cached sorted
// values. After Compact the curve is reconstructed from sketch
// quantiles (values carry the sketch's relative error).
func (s *Sample) SampleCDF() []CDFPoint {
	if s.sketch != nil {
		n := s.compactN
		out := make([]CDFPoint, n)
		for i := 0; i < n; i++ {
			f := float64(i+1) / float64(n)
			out[i] = CDFPoint{Value: float64(s.sketch.Quantile(float64(i) / float64(n))), Fraction: f}
		}
		return out
	}
	v := s.sorted()
	out := make([]CDFPoint, len(v))
	for i, d := range v {
		out[i] = CDFPoint{Value: float64(d), Fraction: float64(i+1) / float64(len(v))}
	}
	return out
}

// Mean returns the arithmetic mean. Exact, including after Compact.
func (s *Sample) Mean() time.Duration {
	if s.sketch != nil {
		return s.compMean
	}
	if len(s.Values) == 0 {
		return 0
	}
	var sum float64
	for _, v := range s.Values {
		sum += float64(v)
	}
	return time.Duration(sum / float64(len(s.Values)))
}

// Std returns the sample standard deviation (n-1). Exact, including
// after Compact.
func (s *Sample) Std() time.Duration {
	if s.sketch != nil {
		return s.compStd
	}
	n := len(s.Values)
	if n < 2 {
		return 0
	}
	mean := float64(s.Mean())
	var ss float64
	for _, v := range s.Values {
		d := float64(v) - mean
		ss += d * d
	}
	return time.Duration(math.Sqrt(ss / float64(n-1)))
}

// StdErr returns the standard error of the mean, σx̄ = s/√n — the
// quantity Fig. 2(a) plots per site. Exact, including after Compact.
func (s *Sample) StdErr() time.Duration {
	n := s.N()
	if n < 2 {
		return 0
	}
	return time.Duration(float64(s.Std()) / math.Sqrt(float64(n)))
}

// CI returns the half-width of the two-sided confidence interval of the
// mean at the given level (e.g. 0.95 or 0.995), using the normal
// approximation (n=31 in the paper, where t and z differ by <4%).
func (s *Sample) CI(level float64) time.Duration {
	z := zQuantile(0.5 + level/2)
	return time.Duration(z * float64(s.StdErr()))
}

// zQuantile approximates the standard normal quantile function using the
// Beasley-Springer-Moro rational approximation.
func zQuantile(p float64) float64 {
	if p <= 0 || p >= 1 {
		if p <= 0 {
			return math.Inf(-1)
		}
		return math.Inf(1)
	}
	a := []float64{-3.969683028665376e+01, 2.209460984245205e+02,
		-2.759285104469687e+02, 1.383577518672690e+02,
		-3.066479806614716e+01, 2.506628277459239e+00}
	b := []float64{-5.447609879822406e+01, 1.615858368580409e+02,
		-1.556989798598866e+02, 6.680131188771972e+01,
		-1.328068155288572e+01}
	c := []float64{-7.784894002430293e-03, -3.223964580411365e-01,
		-2.400758277161838e+00, -2.549732539343734e+00,
		4.374664141464968e+00, 2.938163982698783e+00}
	d := []float64{7.784695709041462e-03, 3.224671290700398e-01,
		2.445134137142996e+00, 3.754408661907416e+00}
	pl, ph := 0.02425, 1-0.02425
	switch {
	case p < pl:
		q := math.Sqrt(-2 * math.Log(p))
		return (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p > ph:
		q := math.Sqrt(-2 * math.Log(1-p))
		return -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	default:
		q := p - 0.5
		r := q * q
		return (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	}
}

// median returns the median of xs without mutating it, averaging the
// middle pair for even-length input (same convention as Sample.Median).
// It returns 0 for an empty slice, so experiment drivers stay safe on
// empty result sets instead of panicking like the old
// CDF(xs)[len(xs)/2] idiom.
func median[T interface{ ~int64 | ~float64 }](xs []T) T {
	if len(xs) == 0 {
		return 0
	}
	s := append([]T(nil), xs...)
	slices.Sort(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// MedianInt64 returns the empty-safe median of xs (median semantics
// above).
func MedianInt64(xs []int64) int64 { return median(xs) }

// MedianFloat64 returns the empty-safe median of xs (median semantics
// above).
func MedianFloat64(xs []float64) float64 { return median(xs) }

// CDF returns the empirical CDF of values as sorted (value, fraction<=)
// points — the figures' per-site delta CDFs.
type CDFPoint struct {
	Value    float64
	Fraction float64
}

// CDF computes the empirical CDF of xs.
func CDF(xs []float64) []CDFPoint {
	if len(xs) == 0 {
		return nil
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	out := make([]CDFPoint, len(s))
	for i, v := range s {
		out[i] = CDFPoint{Value: v, Fraction: float64(i+1) / float64(len(s))}
	}
	return out
}

// FractionBelow returns the fraction of xs strictly below threshold.
func FractionBelow(xs []float64, threshold float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	n := 0
	for _, v := range xs {
		if v < threshold {
			n++
		}
	}
	return float64(n) / float64(len(xs))
}

// RelChange returns (with-against)/against as a signed fraction; negative
// means an improvement when smaller-is-better (the paper's Δ<0).
func RelChange(with, against time.Duration) float64 {
	if against == 0 {
		return 0
	}
	return float64(with-against) / float64(against)
}

// FormatMs renders a duration as milliseconds with one decimal.
func FormatMs(d time.Duration) string {
	return fmt.Sprintf("%.1fms", float64(d)/float64(time.Millisecond))
}
