package metrics

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"time"
)

// Binary codecs for the two value types that cross the multi-process
// executor's stdio boundary (see internal/shard): Sketch and Sample.
// This package owns their wire forms because both types keep their
// state unexported; internal/shard owns the stream framing around
// them, and internal/core owns the per-job result composites.
//
// Both codecs are deterministic — the same state always encodes to the
// same bytes — and both decoders are strict: every length is bounded
// by the bytes actually present, internal invariants (bucket sums,
// min/max ordering, compacted-count agreement) are re-checked, and any
// violation is an error, never a silently truncated value.

var errCodecTruncated = errors.New("metrics: truncated codec payload")

// maxSketchBuckets bounds a decoded sketch's dense bucket array. With
// gamma ≈ 1.02 the full time.Duration range spans ~3000 buckets, so
// the cap is generous for real sketches while keeping corrupt input
// from forcing large allocations.
const maxSketchBuckets = 1 << 20

func consumeVarint(b []byte) (int64, []byte, error) {
	v, n := binary.Varint(b)
	if n <= 0 {
		return 0, nil, errCodecTruncated
	}
	return v, b[n:], nil
}

func consumeUvarint(b []byte) (uint64, []byte, error) {
	v, n := binary.Uvarint(b)
	if n <= 0 {
		return 0, nil, errCodecTruncated
	}
	return v, b[n:], nil
}

// AppendBinary appends the sketch's wire form to b and returns the
// extended slice. The encoding is deterministic in the sketch's
// logical content plus its dense-array bounds (base, length), which
// are themselves deterministic in the insertion/merge history.
func (k *Sketch) AppendBinary(b []byte) []byte {
	b = binary.AppendVarint(b, k.n)
	b = binary.AppendVarint(b, k.zero)
	b = binary.AppendVarint(b, int64(k.min))
	b = binary.AppendVarint(b, int64(k.max))
	b = binary.AppendVarint(b, int64(k.base))
	b = binary.AppendUvarint(b, uint64(len(k.counts)))
	for _, c := range k.counts {
		b = binary.AppendVarint(b, c)
	}
	return b
}

// DecodeBinary replaces k with the sketch encoded at the front of b
// and returns the remaining bytes. Corrupt input — truncation, counts
// that do not sum to n, negative counters, inverted min/max — is an
// error and leaves k unspecified.
func (k *Sketch) DecodeBinary(b []byte) ([]byte, error) {
	var n, zero, mn, mx, base int64
	var err error
	for _, dst := range []*int64{&n, &zero, &mn, &mx, &base} {
		if *dst, b, err = consumeVarint(b); err != nil {
			return nil, fmt.Errorf("sketch: %w", err)
		}
	}
	nb, b, err := consumeUvarint(b)
	if err != nil {
		return nil, fmt.Errorf("sketch: %w", err)
	}
	// Each count occupies at least one byte, so a valid length never
	// exceeds the bytes remaining.
	if nb > maxSketchBuckets || nb > uint64(len(b)) {
		return nil, fmt.Errorf("metrics: sketch bucket count %d exceeds payload", nb)
	}
	var counts []int64
	if nb > 0 {
		counts = make([]int64, nb)
	}
	sum := zero
	for i := range counts {
		if counts[i], b, err = consumeVarint(b); err != nil {
			return nil, fmt.Errorf("sketch: %w", err)
		}
		if counts[i] < 0 {
			return nil, fmt.Errorf("metrics: sketch bucket %d has negative count %d", i, counts[i])
		}
		sum += counts[i]
	}
	switch {
	case n < 0 || zero < 0:
		return nil, fmt.Errorf("metrics: sketch has negative population (n=%d zero=%d)", n, zero)
	case sum != n:
		return nil, fmt.Errorf("metrics: sketch counts sum to %d, header says %d", sum, n)
	case n > 0 && mn > mx:
		return nil, fmt.Errorf("metrics: sketch min %d above max %d", mn, mx)
	case n == 0 && (mn != 0 || mx != 0 || base != 0 || nb != 0):
		return nil, errors.New("metrics: empty sketch carries state")
	case nb == 0 && base != 0:
		return nil, errors.New("metrics: sketch base without buckets")
	}
	*k = Sketch{
		counts: counts,
		base:   int(base),
		zero:   zero,
		n:      n,
		min:    time.Duration(mn),
		max:    time.Duration(mx),
	}
	return b, nil
}

// Sample wire modes: a raw sample ships its values verbatim; a
// compacted one ships the frozen exact statistics plus its sketch.
const (
	sampleModeRaw       = 0
	sampleModeCompacted = 1
)

// AppendBinary appends the sample's wire form to b and returns the
// extended slice. Raw and compacted samples round-trip to equal state:
// a decoded raw sample answers every query like the original (the
// sorted cache is rebuilt lazily), and a decoded compacted sample
// carries the same frozen statistics and sketch.
func (s *Sample) AppendBinary(b []byte) []byte {
	if s.sketch != nil {
		b = append(b, sampleModeCompacted)
		b = binary.AppendUvarint(b, uint64(s.compactN))
		b = binary.AppendVarint(b, int64(s.compMedian))
		b = binary.AppendVarint(b, int64(s.compMean))
		b = binary.AppendVarint(b, int64(s.compStd))
		return s.sketch.AppendBinary(b)
	}
	b = append(b, sampleModeRaw)
	b = binary.AppendUvarint(b, uint64(len(s.Values)))
	for _, v := range s.Values {
		b = binary.AppendVarint(b, int64(v))
	}
	return b
}

// DecodeBinary replaces s with the sample encoded at the front of b
// and returns the remaining bytes. A compacted payload whose count
// disagrees with its sketch population is rejected.
func (s *Sample) DecodeBinary(b []byte) ([]byte, error) {
	if len(b) == 0 {
		return nil, fmt.Errorf("sample: %w", errCodecTruncated)
	}
	mode := b[0]
	b = b[1:]
	switch mode {
	case sampleModeRaw:
		n, rest, err := consumeUvarint(b)
		if err != nil {
			return nil, fmt.Errorf("sample: %w", err)
		}
		b = rest
		if n > uint64(len(b)) { // every value is at least one byte
			return nil, fmt.Errorf("metrics: sample length %d exceeds payload", n)
		}
		var vals []time.Duration
		if n > 0 {
			vals = make([]time.Duration, n)
		}
		for i := range vals {
			var v int64
			if v, b, err = consumeVarint(b); err != nil {
				return nil, fmt.Errorf("sample: %w", err)
			}
			vals[i] = time.Duration(v)
		}
		*s = Sample{Values: vals}
		return b, nil
	case sampleModeCompacted:
		cn, rest, err := consumeUvarint(b)
		if err != nil {
			return nil, fmt.Errorf("sample: %w", err)
		}
		b = rest
		if cn > math.MaxInt32 {
			return nil, fmt.Errorf("metrics: compacted sample count %d implausible", cn)
		}
		var med, mean, std int64
		for _, dst := range []*int64{&med, &mean, &std} {
			if *dst, b, err = consumeVarint(b); err != nil {
				return nil, fmt.Errorf("sample: %w", err)
			}
		}
		sk := &Sketch{}
		if b, err = sk.DecodeBinary(b); err != nil {
			return nil, err
		}
		if sk.n != int64(cn) {
			return nil, fmt.Errorf("metrics: compacted sample count %d disagrees with sketch population %d", cn, sk.n)
		}
		*s = Sample{
			sketch:     sk,
			compactN:   int(cn),
			compMedian: time.Duration(med),
			compMean:   time.Duration(mean),
			compStd:    time.Duration(std),
		}
		return b, nil
	}
	return nil, fmt.Errorf("metrics: unknown sample mode 0x%02x", mode)
}
