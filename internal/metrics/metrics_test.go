package metrics

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func ms(n float64) time.Duration { return time.Duration(n * float64(time.Millisecond)) }

func TestSpeedIndexInstantPaint(t *testing.T) {
	// Everything visible at t=100ms: SI = 100ms.
	curve := []ProgressPoint{{ms(100), 1.0}}
	if got := SpeedIndex(curve, ms(500)); got != ms(100) {
		t.Fatalf("SI = %v, want 100ms", got)
	}
}

func TestSpeedIndexLinearProgress(t *testing.T) {
	// 0% until 100ms, 50% at 100ms, 100% at 200ms:
	// SI = 100ms*1 + 100ms*0.5 = 150ms.
	curve := []ProgressPoint{{ms(100), 0.5}, {ms(200), 1.0}}
	if got := SpeedIndex(curve, ms(500)); got != ms(150) {
		t.Fatalf("SI = %v, want 150ms", got)
	}
}

func TestSpeedIndexEarlierIsBetter(t *testing.T) {
	fast := []ProgressPoint{{ms(50), 0.8}, {ms(300), 1.0}}
	slow := []ProgressPoint{{ms(250), 0.8}, {ms(300), 1.0}}
	if SpeedIndex(fast, ms(400)) >= SpeedIndex(slow, ms(400)) {
		t.Fatal("earlier visual progress did not reduce SpeedIndex")
	}
}

func TestSpeedIndexEmptyFallback(t *testing.T) {
	if got := SpeedIndex(nil, ms(321)); got != ms(321) {
		t.Fatalf("SI fallback = %v", got)
	}
	if got := SpeedIndex([]ProgressPoint{{ms(10), 0}}, ms(321)); got != ms(321) {
		t.Fatalf("SI zero-progress fallback = %v", got)
	}
}

func TestSpeedIndexIncompleteChargedToHorizon(t *testing.T) {
	// 50% at 100ms, never finishes; horizon 300ms:
	// SI = 100 + 0.5*200 = 200ms.
	curve := []ProgressPoint{{ms(100), 0.5}}
	if got := SpeedIndex(curve, ms(300)); got != ms(200) {
		t.Fatalf("SI = %v, want 200ms", got)
	}
}

// Property: SpeedIndex lies between first-change time and the horizon.
func TestSpeedIndexBoundsProperty(t *testing.T) {
	f := func(steps []uint16) bool {
		if len(steps) == 0 {
			return true
		}
		var curve []ProgressPoint
		t0 := time.Duration(0)
		for i, s := range steps {
			t0 += time.Duration(s%1000+1) * time.Millisecond
			f := float64(i+1) / float64(len(steps))
			curve = append(curve, ProgressPoint{t0, f})
		}
		horizon := t0 + time.Second
		si := SpeedIndex(curve, horizon)
		return si >= curve[0].T/2 && si <= horizon
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSampleStats(t *testing.T) {
	var s Sample
	for _, v := range []float64{10, 20, 30, 40, 100} {
		s.Add(ms(v))
	}
	if s.N() != 5 {
		t.Fatalf("N = %d", s.N())
	}
	if got := s.Median(); got != ms(30) {
		t.Fatalf("median = %v", got)
	}
	if got := s.Mean(); got != ms(40) {
		t.Fatalf("mean = %v", got)
	}
	// std of {10,20,30,40,100} = sqrt(5050*... ) compute: mean 40,
	// deviations -30,-20,-10,0,60 → ss = 900+400+100+0+3600=5000,
	// var = 5000/4 = 1250, std ≈ 35.355ms.
	std := float64(s.Std()) / float64(time.Millisecond)
	if math.Abs(std-35.355) > 0.01 {
		t.Fatalf("std = %v", std)
	}
	se := float64(s.StdErr()) / float64(time.Millisecond)
	if math.Abs(se-35.355/math.Sqrt(5)) > 0.01 {
		t.Fatalf("stderr = %v", se)
	}
}

func TestMedianEvenCount(t *testing.T) {
	var s Sample
	for _, v := range []float64{10, 20, 30, 40} {
		s.Add(ms(v))
	}
	if got := s.Median(); got != ms(25) {
		t.Fatalf("median = %v", got)
	}
}

func TestCIWidens(t *testing.T) {
	var s Sample
	for _, v := range []float64{100, 110, 90, 105, 95, 102, 98} {
		s.Add(ms(v))
	}
	ci95 := s.CI(0.95)
	ci995 := s.CI(0.995)
	if ci995 <= ci95 {
		t.Fatalf("99.5%% CI (%v) not wider than 95%% CI (%v)", ci995, ci95)
	}
	if ci95 <= 0 {
		t.Fatal("CI not positive")
	}
}

func TestZQuantile(t *testing.T) {
	cases := map[float64]float64{
		0.975:  1.95996,
		0.9975: 2.80703,
		0.5:    0,
		0.025:  -1.95996,
	}
	for p, want := range cases {
		if got := zQuantile(p); math.Abs(got-want) > 0.001 {
			t.Errorf("z(%v) = %v, want %v", p, got, want)
		}
	}
}

func TestCDF(t *testing.T) {
	pts := CDF([]float64{3, 1, 2})
	if len(pts) != 3 {
		t.Fatalf("len = %d", len(pts))
	}
	if pts[0].Value != 1 || pts[0].Fraction != 1.0/3 {
		t.Fatalf("pts[0] = %+v", pts[0])
	}
	if pts[2].Value != 3 || pts[2].Fraction != 1 {
		t.Fatalf("pts[2] = %+v", pts[2])
	}
	if CDF(nil) != nil {
		t.Fatal("empty CDF not nil")
	}
}

func TestFractionBelow(t *testing.T) {
	xs := []float64{-10, -5, 0, 5, 10}
	if got := FractionBelow(xs, 0); got != 0.4 {
		t.Fatalf("FractionBelow = %v", got)
	}
	if got := FractionBelow(nil, 0); got != 0 {
		t.Fatalf("FractionBelow(nil) = %v", got)
	}
}

func TestRelChange(t *testing.T) {
	if got := RelChange(ms(80), ms(100)); math.Abs(got+0.2) > 1e-9 {
		t.Fatalf("RelChange = %v, want -0.2", got)
	}
	if got := RelChange(ms(100), 0); got != 0 {
		t.Fatalf("RelChange vs 0 = %v", got)
	}
}

func TestSampleEmptySafe(t *testing.T) {
	var s Sample
	if s.Median() != 0 || s.Mean() != 0 || s.Std() != 0 || s.StdErr() != 0 {
		t.Fatal("empty sample stats not zero")
	}
}

func TestMedianInt64(t *testing.T) {
	cases := []struct {
		in   []int64
		want int64
	}{
		{nil, 0},
		{[]int64{42}, 42},
		{[]int64{9, 1, 5}, 5},           // unsorted odd
		{[]int64{7, 1, 3, 9}, 5},        // unsorted even: (3+7)/2
		{[]int64{100, 2, 2, 2, 100}, 2}, // duplicates
	}
	for _, c := range cases {
		if got := MedianInt64(c.in); got != c.want {
			t.Errorf("MedianInt64(%v) = %d, want %d", c.in, got, c.want)
		}
	}
	// Input must not be mutated.
	in := []int64{3, 1, 2}
	MedianInt64(in)
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Fatalf("input mutated: %v", in)
	}
}

func TestMedianFloat64(t *testing.T) {
	cases := []struct {
		in   []float64
		want float64
	}{
		{nil, 0}, // empty input is safe, not a panic
		{[]float64{}, 0},
		{[]float64{3.5}, 3.5},
		{[]float64{9, 1, 5}, 5},    // unsorted odd
		{[]float64{7, 1, 3, 9}, 5}, // unsorted even: (3+7)/2
		{[]float64{-4, -1, -9, 2}, -2.5},
	}
	for _, c := range cases {
		if got := MedianFloat64(c.in); got != c.want {
			t.Errorf("MedianFloat64(%v) = %v, want %v", c.in, got, c.want)
		}
	}
	// Input must not be mutated.
	in := []float64{3, 1, 2}
	MedianFloat64(in)
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Fatalf("input mutated: %v", in)
	}
}

func TestSampleSortedCacheInvalidation(t *testing.T) {
	var s Sample
	for _, v := range []time.Duration{30, 10, 20} {
		s.Add(v)
	}
	if got := s.Median(); got != 20 {
		t.Fatalf("median = %v, want 20", got)
	}
	// The cached sorted view must not leak into Values or go stale.
	if got := s.Percentile(0); got != 10 {
		t.Fatalf("p0 = %v, want 10", got)
	}
	s.Add(5)
	if got := s.Median(); got != 15 {
		t.Fatalf("median after Add = %v, want 15", got)
	}
	if got := s.Percentile(1); got != 30 {
		t.Fatalf("p100 = %v, want 30", got)
	}
	if s.Values[0] != 30 || s.Values[3] != 5 {
		t.Fatalf("Values reordered by quantile calls: %v", s.Values)
	}
	cdf := s.SampleCDF()
	if len(cdf) != 4 || cdf[0].Value != 5 || cdf[3].Fraction != 1 {
		t.Fatalf("SampleCDF = %v", cdf)
	}
}
