// Package fault is the testbed's deterministic fault-injection
// subsystem. A Spec describes, as plain data on a scenario, which
// failures strike a page load and when: the access link being cut or
// flapping, the replay server stalling (black-holing requests for a
// window), a mid-load GOAWAY, RST_STREAM on in-flight pushed streams,
// or the client disabling server push mid-connection.
//
// Derive lowers a Spec into a Plan — a flat, time-sorted list of
// concrete events — using a seed-derived RNG stream that is separate
// from every other derivation stream, so adding faults to a scenario
// never perturbs its link, think-time or third-party draws. An
// Injector schedules the plan's events on the sim clock and hands each
// one to a driver-installed apply callback; with an empty plan it
// schedules nothing, consumes no sequence numbers, and the fault-free
// path stays byte-identical to a build without this package.
package fault

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"time"

	"repro/internal/sim"
)

// Kind identifies one fault event family.
type Kind uint8

const (
	// KindLinkCut tail-drops every packet in both link directions from
	// At onward, permanently. Handshakes still complete (connection
	// setup is modelled outside the pipes) but no bytes flow, so loads
	// end at the browser's horizon with a partial or failed outcome.
	KindLinkCut Kind = iota
	// KindLinkDown / KindLinkUp bracket one flap: packets are dropped
	// between the two instants and retransmission recovers afterwards.
	KindLinkDown
	KindLinkUp
	// KindServerStall black-holes the replay server for Dur: requests
	// arriving in the window are not dispatched until it ends.
	KindServerStall
	// KindGoAway makes every active server connection send GOAWAY and
	// stop accepting new streams.
	KindGoAway
	// KindPushReset makes every active server connection abort its
	// in-flight pushed streams with RST_STREAM(CANCEL).
	KindPushReset
	// KindDisablePush makes the client disable server push on every
	// open connection (SETTINGS_ENABLE_PUSH=0) and on future dials.
	KindDisablePush
	numKinds
)

var kindNames = [numKinds]string{
	"link-cut", "link-down", "link-up", "server-stall",
	"goaway", "push-reset", "push-disable",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("fault(%d)", int(k))
}

// Event is one realised fault: Kind strikes at At; Dur carries the
// window length for KindServerStall and is zero otherwise.
type Event struct {
	At   time.Duration
	Kind Kind
	Dur  time.Duration
}

// Plan is a realised fault schedule, sorted by time. The zero Plan is
// the fault-free run.
type Plan struct {
	Events []Event
}

// Empty reports whether the plan injects nothing.
func (p Plan) Empty() bool { return len(p.Events) == 0 }

// Spec describes a scenario's fault regime as plain data. Zero fields
// disable their family; the zero Spec is fault-free. Times are virtual
// (sim-clock) offsets from the start of the page load.
type Spec struct {
	// LinkCutAt cuts the link permanently at this instant.
	LinkCutAt time.Duration
	// FlapAt starts FlapCount link flaps of FlapDown each, the k-th
	// beginning FlapEvery after the previous one's start. FlapCount
	// defaults to 1 when FlapAt is set; FlapEvery defaults to
	// 2*FlapDown.
	FlapAt    time.Duration
	FlapDown  time.Duration
	FlapCount int
	FlapEvery time.Duration
	// ServerStallAt black-holes the server for ServerStallFor.
	ServerStallAt  time.Duration
	ServerStallFor time.Duration
	// GoAwayAt sends GOAWAY on every active server connection.
	GoAwayAt time.Duration
	// PushResetAt aborts in-flight pushed streams on every active
	// server connection.
	PushResetAt time.Duration
	// DisablePushAt turns off server push client-side mid-connection.
	DisablePushAt time.Duration
	// Jitter, when positive, shifts every event time by a uniform draw
	// from [0, Jitter) taken from the fault RNG stream, realising a
	// different (but seed-deterministic) strike time per run.
	Jitter time.Duration
}

// Enabled reports whether the spec injects any fault.
func (s Spec) Enabled() bool {
	return s.LinkCutAt > 0 || s.FlapAt > 0 || s.ServerStallAt > 0 ||
		s.GoAwayAt > 0 || s.PushResetAt > 0 || s.DisablePushAt > 0
}

// Validate reports whether the spec is internally consistent.
func (s Spec) Validate() error {
	for _, f := range []struct {
		name string
		d    time.Duration
	}{
		{"LinkCutAt", s.LinkCutAt}, {"FlapAt", s.FlapAt},
		{"FlapDown", s.FlapDown}, {"FlapEvery", s.FlapEvery},
		{"ServerStallAt", s.ServerStallAt}, {"ServerStallFor", s.ServerStallFor},
		{"GoAwayAt", s.GoAwayAt}, {"PushResetAt", s.PushResetAt},
		{"DisablePushAt", s.DisablePushAt}, {"Jitter", s.Jitter},
	} {
		if f.d < 0 {
			return fmt.Errorf("fault: negative %s %v", f.name, f.d)
		}
	}
	if s.FlapAt > 0 && s.FlapDown <= 0 {
		return fmt.Errorf("fault: FlapAt %v needs positive FlapDown", s.FlapAt)
	}
	if s.FlapCount < 0 {
		return fmt.Errorf("fault: negative FlapCount %d", s.FlapCount)
	}
	if s.ServerStallAt > 0 && s.ServerStallFor <= 0 {
		return fmt.Errorf("fault: ServerStallAt %v needs positive ServerStallFor", s.ServerStallAt)
	}
	return nil
}

// Describe renders the active fault families for table notes, or ""
// for a fault-free spec.
func (s Spec) Describe() string {
	var parts []string
	if s.LinkCutAt > 0 {
		parts = append(parts, fmt.Sprintf("link cut @%v", s.LinkCutAt))
	}
	if s.FlapAt > 0 {
		n := s.FlapCount
		if n <= 0 {
			n = 1
		}
		parts = append(parts, fmt.Sprintf("%dx link flap %v @%v", n, s.FlapDown, s.FlapAt))
	}
	if s.ServerStallAt > 0 {
		parts = append(parts, fmt.Sprintf("server stall %v @%v", s.ServerStallFor, s.ServerStallAt))
	}
	if s.GoAwayAt > 0 {
		parts = append(parts, fmt.Sprintf("goaway @%v", s.GoAwayAt))
	}
	if s.PushResetAt > 0 {
		parts = append(parts, fmt.Sprintf("push reset @%v", s.PushResetAt))
	}
	if s.DisablePushAt > 0 {
		parts = append(parts, fmt.Sprintf("push disable @%v", s.DisablePushAt))
	}
	if s.Jitter > 0 && len(parts) > 0 {
		parts = append(parts, fmt.Sprintf("jitter <%v", s.Jitter))
	}
	return strings.Join(parts, ", ")
}

// Derive lowers the spec into a concrete, time-sorted plan for one run
// seed. It is deterministic — identical (spec, seed) pairs yield
// identical plans — and draws from its own RNG stream (seed ^ 0xfa17)
// only when Jitter is set, so the scenario's other derivation streams
// never move. A fault-free spec returns the zero Plan without
// allocating.
func (s Spec) Derive(seed int64) Plan {
	if !s.Enabled() {
		return Plan{}
	}
	var rng *rand.Rand
	jitter := func() time.Duration { return 0 }
	if s.Jitter > 0 {
		rng = rand.New(rand.NewSource(seed ^ 0xfa17))
		jitter = func() time.Duration { return time.Duration(rng.Int63n(int64(s.Jitter))) }
	}
	var ev []Event
	if s.LinkCutAt > 0 {
		ev = append(ev, Event{At: s.LinkCutAt + jitter(), Kind: KindLinkCut})
	}
	if s.FlapAt > 0 {
		n := s.FlapCount
		if n <= 0 {
			n = 1
		}
		every := s.FlapEvery
		if every <= 0 {
			every = 2 * s.FlapDown
		}
		at := s.FlapAt + jitter()
		for i := 0; i < n; i++ {
			ev = append(ev,
				Event{At: at, Kind: KindLinkDown},
				Event{At: at + s.FlapDown, Kind: KindLinkUp})
			at += every
		}
	}
	if s.ServerStallAt > 0 {
		ev = append(ev, Event{At: s.ServerStallAt + jitter(), Kind: KindServerStall, Dur: s.ServerStallFor})
	}
	if s.GoAwayAt > 0 {
		ev = append(ev, Event{At: s.GoAwayAt + jitter(), Kind: KindGoAway})
	}
	if s.PushResetAt > 0 {
		ev = append(ev, Event{At: s.PushResetAt + jitter(), Kind: KindPushReset})
	}
	if s.DisablePushAt > 0 {
		ev = append(ev, Event{At: s.DisablePushAt + jitter(), Kind: KindDisablePush})
	}
	sort.SliceStable(ev, func(i, j int) bool { return ev[i].At < ev[j].At })
	return Plan{Events: ev}
}

// Injector schedules a plan's events on the sim clock and applies each
// through a driver-installed callback. One injector is pooled per run
// context and re-armed per run.
//
//repolint:pooled
type Injector struct {
	s     *sim.Sim
	plan  Plan
	next  int
	apply func(Event) //repolint:keep installed once per run context, owned by the driver
}

// Reset re-arms the injector for a new run: sim binding and apply
// callback are replaced, the plan is cleared. Events scheduled by a
// previous Arm die with the sim's own Reset.
func (in *Injector) Reset(s *sim.Sim, apply func(Event)) {
	in.s = s
	in.plan = Plan{}
	in.next = 0
	in.apply = apply
}

// Arm schedules every plan event at its strike time. With an empty
// plan it schedules nothing — zero events, zero sequence numbers — so
// arming a fault-free run leaves the event order byte-identical to not
// arming at all. Events fire in plan order (the plan is time-sorted
// and same-instant events keep their scheduling order).
func (in *Injector) Arm(plan Plan) {
	in.plan = plan
	in.next = 0
	for _, e := range plan.Events {
		in.s.AtCall(e.At, injectorStep, in)
	}
}

func injectorStep(arg any) {
	in := arg.(*Injector)
	e := in.plan.Events[in.next]
	in.next++
	in.apply(e)
}

// InjectorSnapshot captures an injector's run state for the engine's
// fork-at-checkpoint replay. The plan slice is immutable after Derive,
// so the snapshot aliases it.
type InjectorSnapshot struct {
	s     *sim.Sim
	plan  Plan
	next  int
	apply func(Event)
}

// Snapshot copies the injector's run state into dst.
func (in *Injector) Snapshot(dst *InjectorSnapshot) {
	dst.s = in.s
	dst.plan = in.plan
	dst.next = in.next
	dst.apply = in.apply
}

// Restore rewinds the injector to the captured state. The sim events
// Arm scheduled are restored by the sim's own snapshot; they carry the
// injector pointer, and next is rewound here to match.
func (in *Injector) Restore(snap *InjectorSnapshot) {
	in.s = snap.s
	in.plan = snap.plan
	in.next = snap.next
	in.apply = snap.apply
}

// Family is a named fault regime for sweep experiments.
type Family struct {
	Name string
	Spec Spec
}

// Families returns the named fault regimes the FaultSweep experiment
// runs, "none" first as the fault-free baseline. Strike times are
// chosen to land inside a typical testbed page load (first bytes
// around a few hundred milliseconds in, loads completing within a few
// seconds on the DSL link).
func Families() []Family {
	return []Family{
		{Name: "none", Spec: Spec{}},
		{Name: "flap", Spec: Spec{FlapAt: 300 * time.Millisecond, FlapDown: 200 * time.Millisecond}},
		{Name: "stall", Spec: Spec{ServerStallAt: 200 * time.Millisecond, ServerStallFor: 400 * time.Millisecond}},
		{Name: "goaway", Spec: Spec{GoAwayAt: 250 * time.Millisecond}},
		{Name: "push-reset", Spec: Spec{PushResetAt: 150 * time.Millisecond}},
		{Name: "push-disable", Spec: Spec{DisablePushAt: 100 * time.Millisecond}},
		{Name: "link-cut", Spec: Spec{LinkCutAt: 400 * time.Millisecond}},
	}
}
