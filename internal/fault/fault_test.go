package fault

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/sim"
)

func TestZeroSpecDerivesZeroPlan(t *testing.T) {
	var s Spec
	if s.Enabled() {
		t.Fatal("zero spec reports enabled")
	}
	p := s.Derive(42)
	if !p.Empty() || p.Events != nil {
		t.Fatalf("zero spec derived %+v, want zero plan with nil events", p)
	}
	if s.Describe() != "" {
		t.Fatalf("zero spec describes as %q", s.Describe())
	}
}

func TestDeriveDeterministic(t *testing.T) {
	s := Spec{
		FlapAt: 300 * time.Millisecond, FlapDown: 100 * time.Millisecond, FlapCount: 3,
		GoAwayAt: 250 * time.Millisecond,
		Jitter:   50 * time.Millisecond,
	}
	a := s.Derive(7)
	b := s.Derive(7)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same (spec, seed) derived different plans:\n%+v\n%+v", a, b)
	}
	c := s.Derive(8)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds derived identical jittered plans")
	}
}

func TestDeriveWithoutJitterIgnoresSeed(t *testing.T) {
	s := Spec{ServerStallAt: 200 * time.Millisecond, ServerStallFor: 400 * time.Millisecond}
	if !reflect.DeepEqual(s.Derive(1), s.Derive(999)) {
		t.Fatal("jitter-free derivation depends on the seed")
	}
}

func TestDerivePlanSortedAndComplete(t *testing.T) {
	s := Spec{
		LinkCutAt:     2 * time.Second,
		FlapAt:        100 * time.Millisecond,
		FlapDown:      50 * time.Millisecond,
		FlapCount:     2,
		ServerStallAt: 400 * time.Millisecond, ServerStallFor: 100 * time.Millisecond,
		GoAwayAt:      300 * time.Millisecond,
		PushResetAt:   150 * time.Millisecond,
		DisablePushAt: 120 * time.Millisecond,
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	p := s.Derive(1)
	// 2 flaps contribute down+up pairs; the other five families one each.
	if want := 2*2 + 5; len(p.Events) != want {
		t.Fatalf("derived %d events, want %d: %+v", len(p.Events), want, p.Events)
	}
	counts := map[Kind]int{}
	for i, e := range p.Events {
		counts[e.Kind]++
		if i > 0 && e.At < p.Events[i-1].At {
			t.Fatalf("plan not time-sorted at %d: %+v", i, p.Events)
		}
	}
	want := map[Kind]int{
		KindLinkCut: 1, KindLinkDown: 2, KindLinkUp: 2,
		KindServerStall: 1, KindGoAway: 1, KindPushReset: 1, KindDisablePush: 1,
	}
	if !reflect.DeepEqual(counts, want) {
		t.Fatalf("event kinds %v, want %v", counts, want)
	}
	for _, e := range p.Events {
		if e.Kind == KindServerStall && e.Dur != s.ServerStallFor {
			t.Fatalf("stall event lost its window: %+v", e)
		}
	}
}

func TestFlapDefaults(t *testing.T) {
	s := Spec{FlapAt: 300 * time.Millisecond, FlapDown: 200 * time.Millisecond}
	p := s.Derive(1)
	want := []Event{
		{At: 300 * time.Millisecond, Kind: KindLinkDown},
		{At: 500 * time.Millisecond, Kind: KindLinkUp},
	}
	if !reflect.DeepEqual(p.Events, want) {
		t.Fatalf("single-flap plan %+v, want %+v", p.Events, want)
	}
}

func TestValidateRejectsInconsistentSpecs(t *testing.T) {
	bad := []Spec{
		{LinkCutAt: -time.Second},
		{FlapAt: time.Second},                  // no FlapDown
		{ServerStallAt: time.Second},           // no window
		{FlapAt: time.Second, FlapDown: -1},    // negative duration
		{GoAwayAt: time.Second, FlapCount: -1}, // negative count
		{PushResetAt: time.Second, Jitter: -1}, // negative jitter
		{DisablePushAt: -1 * time.Millisecond}, // negative instant
		{FlapAt: time.Second, FlapDown: time.Second, FlapEvery: -1},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("spec %d (%+v) validated", i, s)
		}
	}
	for i, s := range append([]Spec{{}}, func() []Spec {
		var out []Spec
		for _, f := range Families() {
			out = append(out, f.Spec)
		}
		return out
	}()...) {
		if err := s.Validate(); err != nil {
			t.Errorf("good spec %d failed validation: %v", i, err)
		}
	}
}

func TestInjectorFiresInPlanOrder(t *testing.T) {
	var s sim.Sim
	s.Reset(1)
	spec := Spec{
		FlapAt: 100 * time.Millisecond, FlapDown: 50 * time.Millisecond, FlapCount: 2,
		GoAwayAt: 125 * time.Millisecond,
	}
	plan := spec.Derive(1)
	var in Injector
	var got []Event
	in.Reset(&s, func(e Event) {
		if now := s.Now(); now != e.At {
			t.Errorf("event %v fired at %v, want %v", e.Kind, now, e.At)
		}
		got = append(got, e)
	})
	in.Arm(plan)
	s.Run()
	if !reflect.DeepEqual(got, plan.Events) {
		t.Fatalf("fired %+v, want plan order %+v", got, plan.Events)
	}
}

func TestInjectorEmptyPlanSchedulesNothing(t *testing.T) {
	var s sim.Sim
	s.Reset(1)
	var in Injector
	in.Reset(&s, func(Event) { t.Fatal("fault-free plan fired an event") })
	in.Arm(Plan{})
	if n := s.Run(); n != 0 {
		t.Fatalf("empty plan ran %d events, want 0", n)
	}
	// Sequence numbers must not move either: the next reserved number
	// is the same as on a sim that never saw the injector.
	var ref sim.Sim
	ref.Reset(1)
	if got, want := s.ReserveSeq(), ref.ReserveSeq(); got != want {
		t.Fatalf("empty plan consumed sequence numbers: next=%d, want %d", got, want)
	}
}
