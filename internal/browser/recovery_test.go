package browser

import (
	"testing"
	"time"

	"repro/internal/corpus"
	"repro/internal/netem"
	"repro/internal/replay"
	"repro/internal/sim"
)

// loadSiteFaulted runs one page load with a fault script: inject is
// called before the load starts and schedules fault strikes on the sim
// clock, mirroring what the testbed's fault injector does from above.
func loadSiteFaulted(t *testing.T, site *replay.Site, plan replay.Plan, cfg Config, seed int64,
	inject func(s *sim.Sim, n *netem.Network, farm *replay.Farm, ld *Loader)) *Result {
	t.Helper()
	s := sim.New(seed)
	n := netem.New(s, netem.DSL())
	farm := replay.NewFarm(s, n, site, plan)
	ld := New(s, farm, cfg)
	inject(s, n, farm, ld)
	ld.Start()
	s.Run()
	return ld.Result()
}

// recoverySite is a page with enough body to still be in flight when
// mid-load faults strike on the DSL link.
func recoverySite() *replay.Site {
	b := corpus.NewPage("example.test")
	b.CSS("/css/main.css", corpus.SimpleCSS([]string{"hero"}, 200))
	b.Div("hero", 400)
	b.Image("/img/hero.png", 1280, 300, 100*1024)
	b.Script("/js/app.js", 30*1024, 5, false, false)
	b.Text(1200)
	b.PadHTML(300 * 1024)
	return b.Build("recovery")
}

func TestFaultFreeLoadIsCompleteWithNoFailures(t *testing.T) {
	res := loadSite(t, recoverySite(), replay.NoPush(), DefaultConfig(), 1)
	if res.Outcome != OutcomeComplete {
		t.Fatalf("Outcome = %v, want complete", res.Outcome)
	}
	if res.FailedResources != 0 {
		t.Fatalf("FailedResources = %d on the fault-free path", res.FailedResources)
	}
	for _, rt := range res.Timings {
		if rt.Failed || rt.Cause != FailNone {
			t.Fatalf("fault-free resource %s marked failed (%v)", rt.URL, rt.Cause)
		}
	}
}

func TestLinkFlapMidBodyResumes(t *testing.T) {
	site := recoverySite()
	cfg := DefaultConfig()
	clean := loadSite(t, site, replay.NoPush(), cfg, 1)
	flapped := loadSiteFaulted(t, site, replay.NoPush(), cfg, 1,
		func(s *sim.Sim, n *netem.Network, _ *replay.Farm, _ *Loader) {
			s.At(150*time.Millisecond, n.CutLink)
			s.At(350*time.Millisecond, n.ResumeLink)
		})
	if flapped.Outcome != OutcomeComplete {
		t.Fatalf("Outcome after flap = %v, want complete (rtx recovery)", flapped.Outcome)
	}
	if flapped.FailedResources != 0 {
		t.Fatalf("FailedResources = %d after transient flap", flapped.FailedResources)
	}
	if flapped.PLT <= clean.PLT {
		t.Fatalf("flap did not cost time: flapped=%v clean=%v", flapped.PLT, clean.PLT)
	}
	// Without retries the flap costs at most the outage plus rtx
	// backoff; anywhere near the horizon means something hung.
	if flapped.PLT > clean.PLT+5*time.Second {
		t.Fatalf("flap recovery took too long: flapped=%v clean=%v", flapped.PLT, clean.PLT)
	}
}

func TestServerStallTimeoutRetrySucceeds(t *testing.T) {
	site := recoverySite()
	cfg := DefaultConfig()
	cfg.ResourceTimeout = 400 * time.Millisecond
	cfg.MaxRetries = 2
	cfg.RetryBackoff = 100 * time.Millisecond
	clean := loadSite(t, site, replay.NoPush(), DefaultConfig(), 1)
	stalled := loadSiteFaulted(t, site, replay.NoPush(), cfg, 1,
		func(s *sim.Sim, _ *netem.Network, farm *replay.Farm, _ *Loader) {
			s.At(150*time.Millisecond, func() { farm.Stall(800 * time.Millisecond) })
		})
	if stalled.Outcome != OutcomeComplete {
		t.Fatalf("Outcome = %v, want complete after retry", stalled.Outcome)
	}
	if stalled.FailedResources != 0 {
		t.Fatalf("FailedResources = %d, want 0 (retries should recover)", stalled.FailedResources)
	}
	if stalled.Requests <= clean.Requests {
		t.Fatalf("no retry requests issued: stalled=%d clean=%d", stalled.Requests, clean.Requests)
	}
}

func TestGoAwayDiscardsPushedAndRerequests(t *testing.T) {
	site := recoverySite()
	base := "https://example.test/"
	imgURL := "https://example.test/img/hero.png"
	cfg := DefaultConfig()
	cfg.ResourceTimeout = 2 * time.Second
	cfg.MaxRetries = 2
	cfg.RetryBackoff = 100 * time.Millisecond
	// Interleave the pushed image into the HTML stream so its bytes are
	// mid-flight (not queued behind the full HTML) when the GOAWAY
	// strikes: those delivered-then-discarded bytes are the wasted-push
	// accounting under test.
	plan := replay.PushList(base, imgURL).WithInterleave(base, replay.InterleaveSpec{
		OffsetBytes: 4096,
		Critical:    []string{imgURL},
	})
	res := loadSiteFaulted(t, site, plan, cfg, 1,
		func(s *sim.Sim, _ *netem.Network, farm *replay.Farm, _ *Loader) {
			s.At(200*time.Millisecond, func() {
				if farm.InjectGoAway() == 0 {
					t.Error("no connection was active at the GOAWAY instant")
				}
			})
		})
	if res.Outcome != OutcomeComplete {
		t.Fatalf("Outcome = %v, want complete (re-request on a fresh conn)", res.Outcome)
	}
	if res.FailedResources != 0 {
		t.Fatalf("FailedResources = %d after recovery", res.FailedResources)
	}
	// The going-away connection is abandoned: the load needed a fresh one.
	if res.Conns < 2 {
		t.Fatalf("Conns = %d, want a redial after GOAWAY", res.Conns)
	}
	// The pushed CSS died with the connection: its delivered bytes are
	// wasted push bytes, and the re-request happened over the new conn.
	if res.BytesPushedWasted == 0 {
		t.Fatal("pushed stream died with the conn but no wasted push bytes counted")
	}
}

func TestPushResetFallsBackToRequest(t *testing.T) {
	site := recoverySite()
	base := "https://example.test/"
	cssURL := "https://example.test/css/main.css"
	cfg := DefaultConfig()
	cfg.ResourceTimeout = 2 * time.Second
	cfg.MaxRetries = 2
	cfg.RetryBackoff = 100 * time.Millisecond
	res := loadSiteFaulted(t, site, replay.PushList(base, cssURL), cfg, 1,
		func(s *sim.Sim, _ *netem.Network, farm *replay.Farm, _ *Loader) {
			s.At(150*time.Millisecond, func() { farm.InjectPushResets() })
		})
	if res.Outcome != OutcomeComplete {
		t.Fatalf("Outcome = %v, want complete (reset push re-requested)", res.Outcome)
	}
	if res.FailedResources != 0 {
		t.Fatalf("FailedResources = %d: a reset push must not fail the resource", res.FailedResources)
	}
}

func TestDisablePushMidLoadRefusesPushes(t *testing.T) {
	site := recoverySite()
	base := "https://example.test/"
	cssURL := "https://example.test/css/main.css"
	cfg := DefaultConfig()
	res := loadSiteFaulted(t, site, replay.PushList(base, cssURL), cfg, 1,
		func(s *sim.Sim, _ *netem.Network, _ *replay.Farm, ld *Loader) {
			s.At(1*time.Millisecond, ld.DisablePush)
		})
	if res.Outcome != OutcomeComplete {
		t.Fatalf("Outcome = %v, want complete without push", res.Outcome)
	}
	if res.PushedAccepted != 0 {
		t.Fatalf("PushedAccepted = %d after push disable", res.PushedAccepted)
	}
}

func TestPermanentLinkCutTerminatesAtHorizon(t *testing.T) {
	site := recoverySite()
	cfg := DefaultConfig()
	cfg.ResourceTimeout = 2 * time.Second
	cfg.MaxRetries = 2
	cfg.RetryBackoff = 250 * time.Millisecond
	// loadSiteFaulted returning at all is the no-hang guarantee: with
	// the link cut forever, unterminated retransmit timers would keep
	// the sim alive indefinitely.
	res := loadSiteFaulted(t, site, replay.NoPush(), cfg, 1,
		func(s *sim.Sim, n *netem.Network, _ *replay.Farm, _ *Loader) {
			s.At(200*time.Millisecond, n.CutLink)
		})
	if res.Outcome == OutcomeComplete {
		t.Fatal("load claims completion under a permanent link cut")
	}
	if res.FailedResources == 0 {
		t.Fatal("no failed resources recorded under a permanent link cut")
	}
	if res.PLT != cfg.MaxDuration {
		t.Fatalf("PLT = %v, want the horizon %v", res.PLT, cfg.MaxDuration)
	}
	causes := 0
	for _, rt := range res.Timings {
		if rt.Failed && rt.Cause != FailNone {
			causes++
		}
	}
	if causes == 0 {
		t.Fatal("no failure causes recorded on timings")
	}
}

func TestRecoveryDeterministic(t *testing.T) {
	site := recoverySite()
	cfg := DefaultConfig()
	cfg.ResourceTimeout = 400 * time.Millisecond
	cfg.MaxRetries = 2
	cfg.RetryBackoff = 100 * time.Millisecond
	run := func() *Result {
		return loadSiteFaulted(t, site, replay.NoPush(), cfg, 7,
			func(s *sim.Sim, n *netem.Network, farm *replay.Farm, _ *Loader) {
				s.At(200*time.Millisecond, func() { farm.Stall(600 * time.Millisecond) })
				s.At(300*time.Millisecond, n.CutLink)
				s.At(450*time.Millisecond, n.ResumeLink)
			})
	}
	a, b := run(), run()
	if a.PLT != b.PLT || a.SpeedIndex != b.SpeedIndex ||
		a.Outcome != b.Outcome || a.FailedResources != b.FailedResources ||
		a.Requests != b.Requests {
		t.Fatalf("same seed diverged under faults:\n%+v\n%+v", a, b)
	}
}
