package browser

import (
	"sort"
	"strconv"

	"repro/internal/cssx"
	"repro/internal/htmlx"
	"repro/internal/page"
	"repro/internal/replay"
)

// preparedPage is the browser model's once-per-(site, viewport)
// derivation of a recorded page: the parsed document, the static
// layout, the milestone schedule, and every document/stylesheet URL
// pre-resolved against its base. It is computed once via the site's
// replay.Prepared memo and then shared read-only by every run of every
// worker; all per-run mutable state (what has been fetched, parsed or
// painted) stays on the Loader.
type preparedPage struct {
	doc *htmlx.Document
	lay *layoutResult

	milestones []milestone

	// Per doc.Resources index: the reference URL resolved against the
	// site base (refOK false when unparseable), its canonical string key,
	// its fetch kind (tag-adjusted, as discoverRef computed it) and its
	// site intern ID (-1 when the bundle was built without the site's
	// intern table).
	refURL  []page.URL
	refKey  []string
	refOK   []bool
	refKind []page.Kind
	refID   []int32

	// Render-blocking CSS references (link tags, non-print media) in
	// document order, by doc.Resources index.
	cssRefs []preparedCSSRef

	// unitImgKey[i] is the resolved resource key of lay.units[i]'s image
	// ("" for text units and unresolvable image URLs); unitImgID is its
	// intern ID and unitFontID the unit's font-family intern ID (-1 when
	// absent or unresolved).
	unitImgKey []string
	unitImgID  []int32
	unitFontID []int32

	// baseKey is the site base URL's canonical string.
	baseKey string

	// sheets maps the site's recorded CSS entries to their pre-resolved
	// reference lists. Entries replaced by an overlay or rewrite miss
	// here and are parsed per run.
	sheets map[*replay.Entry]*sheetInfo
}

type preparedCSSRef struct {
	offset int
	idx    int
}

// sheetInfo is a stylesheet's outgoing references resolved against the
// sheet's own recorded URL: the inputs to font/asset/import discovery.
type sheetInfo struct {
	fonts   []fontRef
	assets  []urlRef
	imports []urlRef
}

type fontRef struct {
	family string
	famID  int32 // intern font-family ID, -1 unresolved
	u      page.URL
	key    string
	id     int32 // intern resource ID, -1 unresolved
}

type urlRef struct {
	u   page.URL
	key string
	id  int32 // intern resource ID, -1 unresolved
}

// pageMemoKey names the browser's prepared-page memo slot for a
// viewport (different viewports lay out differently).
func pageMemoKey(w, h int) string {
	return "browser.page:" + strconv.Itoa(w) + "x" + strconv.Itoa(h)
}

// preparedPageFor returns the shared prepared page for site when its
// base entry is the prepared one, building and memoizing it on first
// use; otherwise (a per-run scaled base document) it builds a private,
// unshared bundle so behavior is identical either way.
func preparedPageFor(site *replay.Site, baseEntry *replay.Entry, w, h int) *preparedPage {
	prep := site.Prepared()
	if prep.BaseEntry() == baseEntry {
		return prep.Memo(pageMemoKey(w, h), func() any {
			return buildPreparedPage(prep.DocOf(baseEntry), site, w, h, prep)
		}).(*preparedPage)
	}
	return buildPreparedPage(htmlx.Parse(baseEntry.Body), site, w, h, nil)
}

// buildPreparedPage performs the full static derivation for one parsed
// document. prep may be nil (no shared stylesheet cache).
func buildPreparedPage(doc *htmlx.Document, site *replay.Site, w, h int, prep *replay.Prepared) *preparedPage {
	pp := &preparedPage{
		doc:     doc,
		lay:     layout(doc, w, h),
		baseKey: site.Base.String(),
	}
	var in *replay.Interns
	if prep != nil {
		in = prep.Interns()
	}

	// Milestone schedule: resource references, inline scripts and inline
	// styles in byte order.
	for i := range doc.Resources {
		r := &doc.Resources[i]
		pp.milestones = append(pp.milestones, milestone{offset: r.Offset, res: r, idx: i})
	}
	for i := range doc.InlineScripts {
		s := &doc.InlineScripts[i]
		pp.milestones = append(pp.milestones, milestone{offset: s.Offset, script: s})
	}
	for i := range doc.InlineStyles {
		st := &doc.InlineStyles[i]
		pp.milestones = append(pp.milestones, milestone{offset: st.Offset, style: st})
	}
	sort.SliceStable(pp.milestones, func(i, j int) bool {
		return pp.milestones[i].offset < pp.milestones[j].offset
	})

	// Resolve every document reference once.
	n := len(doc.Resources)
	pp.refURL = make([]page.URL, n)
	pp.refKey = make([]string, n)
	pp.refOK = make([]bool, n)
	pp.refKind = make([]page.Kind, n)
	pp.refID = make([]int32, n)
	for i := range pp.refID {
		pp.refID[i] = -1
	}
	for i := range doc.Resources {
		r := &doc.Resources[i]
		u, err := page.ParseURL(r.URL, site.Base)
		if err != nil {
			continue
		}
		pp.refOK[i] = true
		pp.refURL[i] = u
		pp.refKey[i] = u.String()
		if in != nil {
			if id, ok := in.Lookup(pp.refKey[i]); ok {
				pp.refID[i] = id
			}
		}
		kind := page.KindFromPath(u.Path)
		switch r.Tag {
		case "link":
			kind = page.KindCSS
		case "script":
			kind = page.KindJS
		case "img":
			kind = page.KindImage
		}
		pp.refKind[i] = kind
		if r.Tag == "link" && r.Media != "print" {
			pp.cssRefs = append(pp.cssRefs, preparedCSSRef{offset: r.Offset, idx: i})
		}
	}

	// Resolve the layout units' image URLs and font families once.
	pp.unitImgKey = make([]string, len(pp.lay.units))
	pp.unitImgID = make([]int32, len(pp.lay.units))
	pp.unitFontID = make([]int32, len(pp.lay.units))
	for i, u := range pp.lay.units {
		pp.unitImgID[i], pp.unitFontID[i] = -1, -1
		if u.isImage && u.imgURL != "" {
			if iu, err := page.ParseURL(u.imgURL, site.Base); err == nil {
				pp.unitImgKey[i] = iu.String()
				if in != nil {
					if id, ok := in.Lookup(pp.unitImgKey[i]); ok {
						pp.unitImgID[i] = id
					}
				}
			}
		}
		if u.fontFam != "" && in != nil {
			if id, ok := in.FamilyID(u.fontFam); ok {
				pp.unitFontID[i] = id
			}
		}
	}

	// Pre-resolve the outgoing references of every recorded stylesheet.
	if prep != nil {
		pp.sheets = make(map[*replay.Entry]*sheetInfo)
		for _, e := range site.DB.Entries() {
			if sheet := prep.Sheet(e); sheet != nil {
				pp.sheets[e] = buildSheetInfoIn(sheet, e.URL, in)
			}
		}
	}
	return pp
}

// SiteATFSignatures returns the above-the-fold element signatures of
// site's base document through the shared prepared page, so strategy
// analysis reuses (and warms) the same parse and layout the page loads
// run on. Returns nil when the site has no recorded base document.
func SiteATFSignatures(site *replay.Site, w, h int) []cssx.ElementSig {
	entry := site.DB.Lookup(site.Base.Authority, site.Base.Path)
	if entry == nil {
		return nil
	}
	return preparedPageFor(site, entry, w, h).lay.atfSigs
}

// buildSheetInfo resolves a parsed stylesheet's references against the
// URL the sheet is served from (no intern resolution; per-run parses).
func buildSheetInfo(sheet *cssx.Stylesheet, base page.URL) *sheetInfo {
	return buildSheetInfoIn(sheet, base, nil)
}

// buildSheetInfoIn is buildSheetInfo with the references additionally
// resolved to site intern IDs (in may be nil).
func buildSheetInfoIn(sheet *cssx.Stylesheet, base page.URL, in *replay.Interns) *sheetInfo {
	si := &sheetInfo{}
	resolve := func(key string) int32 {
		if in != nil {
			if id, ok := in.Lookup(key); ok {
				return id
			}
		}
		return -1
	}
	for _, ff := range sheet.FontFaces {
		if ff.URL == "" || ff.Family == "" {
			continue
		}
		u, err := page.ParseURL(ff.URL, base)
		if err != nil {
			continue
		}
		key := u.String()
		famID := int32(-1)
		if in != nil {
			if id, ok := in.FamilyID(ff.Family); ok {
				famID = id
			}
		}
		si.fonts = append(si.fonts, fontRef{family: ff.Family, famID: famID, u: u, key: key, id: resolve(key)})
	}
	for _, asset := range sheet.AssetURLs {
		u, err := page.ParseURL(asset, base)
		if err != nil {
			continue
		}
		key := u.String()
		si.assets = append(si.assets, urlRef{u: u, key: key, id: resolve(key)})
	}
	for _, imp := range sheet.Imports {
		u, err := page.ParseURL(imp, base)
		if err != nil {
			continue
		}
		key := u.String()
		si.imports = append(si.imports, urlRef{u: u, key: key, id: resolve(key)})
	}
	return si
}
