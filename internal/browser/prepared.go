package browser

import (
	"sort"
	"strconv"

	"repro/internal/cssx"
	"repro/internal/htmlx"
	"repro/internal/page"
	"repro/internal/replay"
)

// preparedPage is the browser model's once-per-(site, viewport)
// derivation of a recorded page: the parsed document, the static
// layout, the milestone schedule, and every document/stylesheet URL
// pre-resolved against its base. It is computed once via the site's
// replay.Prepared memo and then shared read-only by every run of every
// worker; all per-run mutable state (what has been fetched, parsed or
// painted) stays on the Loader.
type preparedPage struct {
	doc *htmlx.Document
	lay *layoutResult

	milestones []milestone

	// Per doc.Resources index: the reference URL resolved against the
	// site base (refOK false when unparseable), its canonical string key
	// and its fetch kind (tag-adjusted, as discoverRef computed it).
	refURL  []page.URL
	refKey  []string
	refOK   []bool
	refKind []page.Kind

	// Render-blocking CSS references (link tags, non-print media) in
	// document order, by doc.Resources index.
	cssRefs []preparedCSSRef

	// unitImgKey[i] is the resolved resource key of lay.units[i]'s image
	// ("" for text units and unresolvable image URLs).
	unitImgKey []string

	// baseKey is the site base URL's canonical string.
	baseKey string

	// sheets maps the site's recorded CSS entries to their pre-resolved
	// reference lists. Entries replaced by an overlay or rewrite miss
	// here and are parsed per run.
	sheets map[*replay.Entry]*sheetInfo
}

type preparedCSSRef struct {
	offset int
	idx    int
}

// sheetInfo is a stylesheet's outgoing references resolved against the
// sheet's own recorded URL: the inputs to font/asset/import discovery.
type sheetInfo struct {
	fonts   []fontRef
	assets  []urlRef
	imports []urlRef
}

type fontRef struct {
	family string
	u      page.URL
	key    string
}

type urlRef struct {
	u   page.URL
	key string
}

// pageMemoKey names the browser's prepared-page memo slot for a
// viewport (different viewports lay out differently).
func pageMemoKey(w, h int) string {
	return "browser.page:" + strconv.Itoa(w) + "x" + strconv.Itoa(h)
}

// preparedPageFor returns the shared prepared page for site when its
// base entry is the prepared one, building and memoizing it on first
// use; otherwise (a per-run scaled base document) it builds a private,
// unshared bundle so behavior is identical either way.
func preparedPageFor(site *replay.Site, baseEntry *replay.Entry, w, h int) *preparedPage {
	prep := site.Prepared()
	if prep.BaseEntry() == baseEntry {
		return prep.Memo(pageMemoKey(w, h), func() any {
			return buildPreparedPage(prep.DocOf(baseEntry), site, w, h, prep)
		}).(*preparedPage)
	}
	return buildPreparedPage(htmlx.Parse(baseEntry.Body), site, w, h, nil)
}

// buildPreparedPage performs the full static derivation for one parsed
// document. prep may be nil (no shared stylesheet cache).
func buildPreparedPage(doc *htmlx.Document, site *replay.Site, w, h int, prep *replay.Prepared) *preparedPage {
	pp := &preparedPage{
		doc:     doc,
		lay:     layout(doc, w, h),
		baseKey: site.Base.String(),
	}

	// Milestone schedule: resource references, inline scripts and inline
	// styles in byte order.
	for i := range doc.Resources {
		r := &doc.Resources[i]
		pp.milestones = append(pp.milestones, milestone{offset: r.Offset, res: r, idx: i})
	}
	for i := range doc.InlineScripts {
		s := &doc.InlineScripts[i]
		pp.milestones = append(pp.milestones, milestone{offset: s.Offset, script: s})
	}
	for i := range doc.InlineStyles {
		st := &doc.InlineStyles[i]
		pp.milestones = append(pp.milestones, milestone{offset: st.Offset, style: st})
	}
	sort.SliceStable(pp.milestones, func(i, j int) bool {
		return pp.milestones[i].offset < pp.milestones[j].offset
	})

	// Resolve every document reference once.
	n := len(doc.Resources)
	pp.refURL = make([]page.URL, n)
	pp.refKey = make([]string, n)
	pp.refOK = make([]bool, n)
	pp.refKind = make([]page.Kind, n)
	for i := range doc.Resources {
		r := &doc.Resources[i]
		u, err := page.ParseURL(r.URL, site.Base)
		if err != nil {
			continue
		}
		pp.refOK[i] = true
		pp.refURL[i] = u
		pp.refKey[i] = u.String()
		kind := page.KindFromPath(u.Path)
		switch r.Tag {
		case "link":
			kind = page.KindCSS
		case "script":
			kind = page.KindJS
		case "img":
			kind = page.KindImage
		}
		pp.refKind[i] = kind
		if r.Tag == "link" && r.Media != "print" {
			pp.cssRefs = append(pp.cssRefs, preparedCSSRef{offset: r.Offset, idx: i})
		}
	}

	// Resolve the layout units' image URLs once.
	pp.unitImgKey = make([]string, len(pp.lay.units))
	for i, u := range pp.lay.units {
		if u.isImage && u.imgURL != "" {
			if iu, err := page.ParseURL(u.imgURL, site.Base); err == nil {
				pp.unitImgKey[i] = iu.String()
			}
		}
	}

	// Pre-resolve the outgoing references of every recorded stylesheet.
	if prep != nil {
		pp.sheets = make(map[*replay.Entry]*sheetInfo)
		for _, e := range site.DB.Entries() {
			if sheet := prep.Sheet(e); sheet != nil {
				pp.sheets[e] = buildSheetInfo(sheet, e.URL)
			}
		}
	}
	return pp
}

// SiteATFSignatures returns the above-the-fold element signatures of
// site's base document through the shared prepared page, so strategy
// analysis reuses (and warms) the same parse and layout the page loads
// run on. Returns nil when the site has no recorded base document.
func SiteATFSignatures(site *replay.Site, w, h int) []cssx.ElementSig {
	entry := site.DB.Lookup(site.Base.Authority, site.Base.Path)
	if entry == nil {
		return nil
	}
	return preparedPageFor(site, entry, w, h).lay.atfSigs
}

// buildSheetInfo resolves a parsed stylesheet's references against the
// URL the sheet is served from.
func buildSheetInfo(sheet *cssx.Stylesheet, base page.URL) *sheetInfo {
	si := &sheetInfo{}
	for _, ff := range sheet.FontFaces {
		if ff.URL == "" || ff.Family == "" {
			continue
		}
		u, err := page.ParseURL(ff.URL, base)
		if err != nil {
			continue
		}
		si.fonts = append(si.fonts, fontRef{family: ff.Family, u: u, key: u.String()})
	}
	for _, asset := range sheet.AssetURLs {
		u, err := page.ParseURL(asset, base)
		if err != nil {
			continue
		}
		si.assets = append(si.assets, urlRef{u: u, key: u.String()})
	}
	for _, imp := range sheet.Imports {
		u, err := page.ParseURL(imp, base)
		if err != nil {
			continue
		}
		si.imports = append(si.imports, urlRef{u: u, key: u.String()})
	}
	return si
}
