// Package browser is the deterministic headless-browser model that
// replaces Chromium+browsertime in the paper's testbed (Sec. 4.1). It
// reproduces the parts of the page load and render process that Server
// Push interacts with:
//
//   - connection management with SAN/IP coalescing and per-origin dials;
//   - Chromium-like request priorities expressed as HTTP/2 dependencies
//     (subresources depend on the base document's stream, weighted by
//     class), which is what makes the server send CSS after HTML in the
//     no-push baseline of Fig. 5(b);
//   - a preload scanner that discovers references in received bytes ahead
//     of the (blockable) parser — the reason early-referenced resources
//     are requested after the first HTML chunk (s8, Sec. 4.3);
//   - render-blocking CSS, parser-blocking synchronous scripts, and
//     CSSOM-blocks-script-execution semantics — the critical rendering
//     path that interleaving push shortens;
//   - a block layout with a fixed viewport giving above-the-fold areas, a
//     paint timeline, and the visual progress curve SpeedIndex integrates;
//   - Server Push handling: adopting promised streams, cancelling
//     duplicates, and SETTINGS_ENABLE_PUSH=0 for the no-push baseline.
//
// Absolute times differ from a real browser; the model's purpose is that
// the *relative* effects of push strategies (who wins, where crossovers
// sit) match, which the experiment suite checks against the paper.
package browser

import "time"

// Config tunes the browser model.
type Config struct {
	// EnablePush controls SETTINGS_ENABLE_PUSH at connection startup; the
	// paper's "no push" baseline sets it to false (Sec. 2.1, 4.1).
	EnablePush bool
	// PreloadScanner toggles lookahead resource discovery (ablation).
	PreloadScanner bool
	// Viewport dimensions in CSS pixels (above-the-fold clipping).
	ViewportW, ViewportH int

	// Compute model: throughputs in bytes per millisecond.
	HTMLParseRate float64
	CSSParseRate  float64
	JSExecRate    float64

	// JitterFrac adds multiplicative uniform jitter (+-frac) to every
	// compute delay — the client-side processing variability that makes
	// request orders unstable across runs (Sec. 4.2).
	JitterFrac float64

	// MaxDuration bounds a page load; incomplete loads report
	// Completed=false with PLT clamped at the horizon.
	MaxDuration time.Duration

	// Recovery knobs (see recovery.go). ResourceTimeout is the per-fetch
	// budget; zero (the default) disables budget timers entirely, so the
	// fault-free configuration schedules no extra events. MaxRetries
	// bounds re-requests of a failed fetch; RetryBackoff is the linear
	// backoff unit (attempt k waits k*RetryBackoff).
	ResourceTimeout time.Duration
	MaxRetries      int
	RetryBackoff    time.Duration
}

// DefaultConfig returns the testbed defaults (Chromium-like semantics,
// 1280x720 viewport).
func DefaultConfig() Config {
	return Config{
		EnablePush:     true,
		PreloadScanner: true,
		ViewportW:      1280,
		ViewportH:      720,
		HTMLParseRate:  10 * 1024,
		CSSParseRate:   5 * 1024,
		JSExecRate:     1 * 1024,
		JitterFrac:     0.03,
		MaxDuration:    120 * time.Second,
	}
}

// Class weights for the HTTP/2 priority mapping (wire values; effective
// weight is value+1). Modeled on Chromium's net priority buckets.
const (
	weightHTML     = 255
	weightCSS      = 219
	weightFont     = 219
	weightJSSync   = 183
	weightJSAsync  = 147
	weightImage    = 109
	weightOther    = 109
	charsPerLine   = 110
	lineHeightPx   = 22
	defaultImgEdge = 200
)
