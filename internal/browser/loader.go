package browser

import (
	"cmp"
	"slices"
	"time"

	"repro/internal/cssx"
	"repro/internal/h2"
	"repro/internal/hpack"
	"repro/internal/htmlx"
	"repro/internal/metrics"
	"repro/internal/netem"
	"repro/internal/page"
	"repro/internal/replay"
	"repro/internal/sim"
)

// ResourceTiming records one fetched resource for traces and dependency
// analysis.
type ResourceTiming struct {
	URL    string
	Kind   page.Kind
	Start  time.Duration // request issued / push adopted (absolute)
	End    time.Duration // last byte (absolute)
	Bytes  int
	Pushed bool
	Weight uint8
	Parent uint32
	// Failed marks a resource that terminally failed; Cause says why.
	Failed bool
	Cause  FailCause
}

// Result is the outcome of one page load.
type Result struct {
	ConnectEnd       time.Duration // first connection's connectEnd (absolute)
	OnLoadAt         time.Duration // absolute onload time
	PLT              time.Duration // OnLoadAt - ConnectEnd (the paper's PLT)
	SpeedIndex       time.Duration
	FirstPaint       time.Duration // relative to ConnectEnd
	VisuallyComplete time.Duration

	Completed bool
	// Outcome classifies the termination: Complete (onload, nothing
	// failed), Partial (page usable, some resources failed or the
	// horizon cut the load) or Failed (base document never arrived).
	// Completed stays the legacy onload-fired flag.
	Outcome         LoadOutcome
	FailedResources int
	Requests        int
	Conns           int

	PushedAccepted    int
	PushedCancelled   int
	PushedUnused      int
	BytesPushedUsed   int64
	BytesPushedWasted int64

	Progress []metrics.ProgressPoint
	Timings  []ResourceTiming
}

type resource struct {
	ld  *Loader
	id  int32 // site intern ID, -1 for overflow (non-interned) resources
	url page.URL
	key string

	kind  page.Kind
	entry *replay.Entry

	discovered bool // referenced by the document
	requested  bool
	pushed     bool
	cancelled  bool

	loaded   bool // transfer complete
	ready    bool // post-processing complete (CSS parsed, imports ready)
	executed bool // JS ran

	// Recovery state (see recovery.go): the in-flight stream and its
	// connection, the retry count, the terminal failure mark and the
	// pending timeout timer.
	conn      *conn
	cs        *h2.ClientStream
	retries   int
	failed    bool
	failCause FailCause
	tmoEv     *sim.Event

	start, end time.Duration
	bytes      int
	body       []byte // accumulated only for entry-less CSS/JS responses
	weight     uint8
	parent     uint32

	pendingImps int // outstanding @imports

	onLoaded    []func()
	cssReadyCBs []func()

	// Persistent per-struct transport callbacks: resource structs are
	// pooled by the loader, so these closures (capturing only the stable
	// resource and loader pointers) are built once per struct and reused
	// by every run instead of allocating per fetch.
	onDataFn     func(chunk []byte)
	onCompleteFn func(total int)
	onFailFn     func(code h2.ErrCode)
}

// content returns the resource's full body once loaded. Entry-backed
// resources read the immutable recorded body directly (the transport
// delivered exactly those bytes, zero-copy), so the loader never
// re-accumulates them; only entry-less responses carry a per-run copy.
func (r *resource) content() []byte {
	if r.entry != nil {
		return r.entry.Body
	}
	return r.body
}

type conn struct {
	key        string
	client     *h2.Client
	bundle     *clientBundle
	end        *netem.End // transport handle, for teardown on death
	ready      bool
	dead       bool        // terminally failed; connFor dials a replacement
	onReady    []func()    // queued actions waiting for connectEnd (the base request)
	pending    []*resource // queued fetches waiting for connectEnd
	connectEnd time.Duration
	mainID     uint32 // stream ID of the base document if on this conn
}

// clientBundle pairs a pooled h2 client with its sim endpoint; both are
// recycled across runs so a warm dial re-attaches fully grown h2 state
// to a fresh transport.
type clientBundle struct {
	cl *h2.Client
	ep *h2.SimEndpoint
}

type milestone struct {
	offset int
	// exactly one of res/script/style is set; idx is the doc.Resources
	// index when res is set.
	res    *htmlx.Resource
	idx    int
	script *htmlx.InlineScript
	style  *htmlx.InlineStyle
}

type cssRef struct {
	offset int
	res    *resource
}

type cssWaiter struct {
	offset int
	fn     func()
}

// Loader drives one page load inside the simulator. A Loader is
// reusable: Reset re-arms it for another run while keeping its slice
// tables, pooled resource structs and pooled h2 connections warm, so
// steady-state runs do not re-grow any of the per-run bookkeeping.
//
// Per-run resource and connection state lives in dense slice tables
// indexed by the prepared site's intern IDs (resource ID, connection
// group ID, font family ID); string-keyed maps survive only as the
// overflow path for names the prepared site could not intern. All
// static page state lives in the shared preparedPage; everything on the
// Loader is owned by the current run only.
//
//repolint:pooled
type Loader struct {
	s    *sim.Sim
	farm *replay.Farm
	site *replay.Site
	cfg  Config
	res  *Result

	pp *preparedPage
	in *replay.Interns

	// Resource tables: resTab is indexed by intern ID; extra holds
	// overflow resources; active lists every resource of the run in
	// creation order (both tables).
	resTab  []*resource
	extra   map[string]*resource
	active  []*resource
	resFree []*resource

	// Connection tables: connTab is indexed by intern connection-group
	// ID; connExtra holds overflow (unknown-host) connections; connActive
	// lists all of the run's conns.
	connTab    []*conn
	connExtra  map[string]*conn
	connActive []*conn
	connFree   []*conn

	clPool []*clientBundle // pooled h2 client connections

	// Font tables: fontTab is indexed by intern family ID; fonts is the
	// overflow for families outside the prepared ID space.
	fontTab []*resource
	fonts   map[string]*resource

	settings    h2.Settings // per-run client h2 settings
	onPushFn    func(parent, promised *h2.ClientStream) bool
	onGoAwayFn  func(cl *h2.Client, last uint32)
	onConnErrFn func(cl *h2.Client, err h2.ConnError)
	prio        h2.PriorityParam //repolint:keep scratch priority params, fully rewritten before each request

	mi      int
	scanIdx int // first doc.Resources index the preload scanner has not covered

	received     int
	htmlComplete bool
	parsePos     int
	parsing      bool
	parserBlock  *resource // sync script being waited for
	execBlocked  bool      // a script (inline or sync) is executing / awaiting CSSOM
	parserDone   bool

	// Single-flight scheduling state for the pooled-event (sim.AtCall)
	// callbacks: at most one parse, one exec and one deferred-script step
	// is in flight at a time, so their parameters live here instead of in
	// per-event closures.
	parseTarget    int
	parseMilestone bool
	execR          *resource
	defIdx         int

	cssRefs    []cssRef
	cssWaiters []cssWaiter

	deferred []*resource

	mainHost    string
	unitPainted []bool // aligned with pp.lay.units
	painted     float64
	loadFired   bool
	done        bool // terminal outcome sealed; no further retries or timers
	failedCount int
	horizon     *sim.Event
	baseEntry   *replay.Entry
	baseRes     *resource
}

// New prepares a loader for the farm's site.
func New(s *sim.Sim, farm *replay.Farm, cfg Config) *Loader {
	ld := &Loader{}
	ld.Reset(s, farm, cfg)
	return ld
}

// Reset re-arms the loader for a new run on (a possibly different) farm
// and config. The previous run's Result must not be read after Reset:
// its slices are recycled into the new run's Result.
func (ld *Loader) Reset(s *sim.Sim, farm *replay.Farm, cfg Config) {
	ld.s, ld.farm, ld.site, ld.cfg = s, farm, farm.Site, cfg
	if ld.res == nil {
		ld.res = &Result{}
	} else {
		progress, timings := ld.res.Progress[:0], ld.res.Timings[:0]
		*ld.res = Result{Progress: progress, Timings: timings}
	}

	// Recycle the previous run's resources and connections.
	for _, r := range ld.active {
		od, oc, of := r.onDataFn, r.onCompleteFn, r.onFailFn
		*r = resource{ld: ld, onDataFn: od, onCompleteFn: oc, onFailFn: of}
		ld.resFree = append(ld.resFree, r)
	}
	ld.active = ld.active[:0]
	for _, c := range ld.connActive {
		if c.bundle != nil {
			ld.clPool = append(ld.clPool, c.bundle)
		}
		*c = conn{onReady: c.onReady[:0], pending: c.pending[:0]}
		ld.connFree = append(ld.connFree, c)
	}
	ld.connActive = ld.connActive[:0]

	// Size the dense tables from the prepared site's intern spaces.
	ld.in = farm.Site.Prepared().Interns()
	ld.resTab = clearedTable(ld.resTab, ld.in.NumResources())
	ld.connTab = clearedTable(ld.connTab, ld.in.NumConnGroups())
	ld.fontTab = clearedTable(ld.fontTab, ld.in.NumFamilies())
	clear(ld.extra)
	clear(ld.connExtra)
	clear(ld.fonts)

	ld.settings = h2.DefaultSettings()
	ld.settings.EnablePush = cfg.EnablePush
	ld.settings.InitialWindowSize = 6 * 1024 * 1024
	if ld.onPushFn == nil {
		ld.onPushFn = func(parent, promised *h2.ClientStream) bool {
			return ld.onPush(promised)
		}
		ld.onGoAwayFn = ld.onGoAway
		ld.onConnErrFn = ld.onConnError
	}

	ld.pp = nil
	ld.mi, ld.scanIdx = 0, 0
	ld.received, ld.htmlComplete, ld.parsePos = 0, false, 0
	ld.parsing, ld.parserBlock, ld.execBlocked, ld.parserDone = false, nil, false, false
	ld.parseTarget, ld.parseMilestone = 0, false
	ld.execR, ld.defIdx = nil, 0
	ld.cssRefs = ld.cssRefs[:0]
	ld.cssWaiters = ld.cssWaiters[:0]
	ld.deferred = ld.deferred[:0]
	ld.mainHost = ""
	ld.unitPainted = ld.unitPainted[:0]
	ld.painted = 0
	ld.loadFired = false
	ld.done = false
	ld.failedCount = 0
	ld.horizon = nil
	ld.baseEntry = nil
	ld.baseRes = nil
}

func clearedTable[T any](tab []*T, n int) []*T {
	if cap(tab) < n {
		return make([]*T, n)
	}
	tab = tab[:n]
	clear(tab)
	return tab
}

func (ld *Loader) newResource() *resource {
	if n := len(ld.resFree); n > 0 {
		r := ld.resFree[n-1]
		ld.resFree[n-1] = nil
		ld.resFree = ld.resFree[:n-1]
		return r
	}
	r := &resource{ld: ld}
	r.onDataFn = func(chunk []byte) { r.ld.onChunk(r, chunk) }
	r.onCompleteFn = func(int) { r.ld.onLoaded(r) }
	r.onFailFn = func(code h2.ErrCode) { r.ld.onStreamFailed(r, code) }
	return r
}

// Result returns the load outcome; call after the simulation ran. The
// returned value is owned by the loader and recycled on Reset.
func (ld *Loader) Result() *Result { return ld.res }

// Start begins the navigation: dial the base origin and request the
// document. The caller then runs the simulator.
func (ld *Loader) Start() {
	base := ld.site.Base
	ld.mainHost = base.Authority
	ld.baseEntry = ld.site.DB.Lookup(base.Authority, base.Path)
	if ld.baseEntry == nil {
		ld.res.Completed = false
		return
	}
	ld.pp = preparedPageFor(ld.site, ld.baseEntry, ld.cfg.ViewportW, ld.cfg.ViewportH)
	if n := len(ld.pp.lay.units); cap(ld.unitPainted) >= n {
		ld.unitPainted = ld.unitPainted[:n]
		for i := range ld.unitPainted {
			ld.unitPainted[i] = false
		}
	} else {
		ld.unitPainted = make([]bool, n)
	}
	// Pre-register render-blocking CSS references (everything except
	// print stylesheets blocks paint of content after its reference).
	for _, pc := range ld.pp.cssRefs {
		res := ld.ensureRef(pc.idx, page.KindCSS)
		ld.cssRefs = append(ld.cssRefs, cssRef{offset: pc.offset, res: res})
	}

	r := ld.ensureResourceKey(base, ld.pp.baseKey, page.KindHTML)
	ld.baseRes = r
	r.discovered = true
	r.requested = true
	c := ld.connFor(base.Authority, -1)
	issue := func() {
		ld.res.ConnectEnd = c.connectEnd
		ld.horizon = ld.s.At(c.connectEnd+ld.cfg.MaxDuration, func() {
			ld.onHorizon(c.connectEnd)
		})
		r.start = ld.s.Now()
		r.weight = weightHTML
		ld.issueFetch(c, r)
	}
	if c.ready {
		issue()
	} else {
		c.onReady = append(c.onReady, issue)
	}
}

// onHorizon seals an unfinished load at the horizon: milestone metrics
// stay defined on the partial page, still-in-flight resources are
// recorded as horizon failures, and the outcome is Partial when the
// base document arrived, Failed otherwise.
func (ld *Loader) onHorizon(connectEnd time.Duration) {
	if ld.loadFired {
		return
	}
	ld.res.Completed = false
	ld.res.PLT = ld.cfg.MaxDuration
	if ld.baseRes != nil && ld.baseRes.loaded {
		ld.res.Outcome = OutcomePartial
	} else {
		ld.res.Outcome = OutcomeFailed
	}
	ld.markHorizonFailures()
	ld.finishVisuals(connectEnd + ld.cfg.MaxDuration)
	ld.terminate()
}

// --- resource bookkeeping ---

// reqFieldsFor returns the prepare-time request header list for an
// interned resource, nil otherwise (the h2 layer then builds it).
func (ld *Loader) reqFieldsFor(r *resource) []hpack.HeaderField {
	if r.id >= 0 {
		return ld.in.ReqFields(r.id)
	}
	return nil
}

func (ld *Loader) reqPreFor(r *resource) *hpack.PreEncoded {
	if r.id >= 0 {
		return ld.in.ReqPre(r.id)
	}
	return nil
}

// ensureResourceID returns (creating if needed) the resource for an
// interned ID: the hot path, a slice index.
//
//repolint:hotpath
func (ld *Loader) ensureResourceID(id int32, u page.URL, key string, kind page.Kind) *resource {
	if r := ld.resTab[id]; r != nil {
		return r
	}
	r := ld.initResource(u, key, kind)
	r.id = id
	ld.resTab[id] = r
	return r
}

func (ld *Loader) initResource(u page.URL, key string, kind page.Kind) *resource {
	r := ld.newResource()
	r.url, r.key, r.kind = u, key, kind
	r.entry = ld.site.DB.Lookup(u.Authority, u.Path)
	if r.entry != nil && kind == page.KindOther {
		r.kind = r.entry.Kind()
	}
	ld.active = append(ld.active, r)
	return r
}

// ensureResourceKey is ensureResource with the canonical key already
// computed; interned keys land in the dense table, others in the
// overflow map.
func (ld *Loader) ensureResourceKey(u page.URL, key string, kind page.Kind) *resource {
	if id, ok := ld.in.Lookup(key); ok {
		return ld.ensureResourceID(id, u, key, kind)
	}
	if r, ok := ld.extra[key]; ok {
		return r
	}
	r := ld.initResource(u, key, kind)
	r.id = -1
	if ld.extra == nil {
		ld.extra = map[string]*resource{}
	}
	ld.extra[key] = r
	return r
}

// ensureRef resolves document reference idx through the prepared page's
// pre-resolved intern ID when available.
func (ld *Loader) ensureRef(idx int, kind page.Kind) *resource {
	if id := ld.pp.refID[idx]; id >= 0 {
		return ld.ensureResourceID(id, ld.pp.refURL[idx], ld.pp.refKey[idx], kind)
	}
	return ld.ensureResourceKey(ld.pp.refURL[idx], ld.pp.refKey[idx], kind)
}

// ensureSheetRef resolves a stylesheet reference through its prepared
// intern ID when available.
func (ld *Loader) ensureSheetRef(id int32, u page.URL, key string, kind page.Kind) *resource {
	if id >= 0 {
		return ld.ensureResourceID(id, u, key, kind)
	}
	return ld.ensureResourceKey(u, key, kind)
}

func (ld *Loader) ensureResource(u page.URL, kind page.Kind) *resource {
	return ld.ensureResourceKey(u, u.String(), kind)
}

// lookupResource returns the run's resource for a canonical key, nil
// when none was created.
func (ld *Loader) lookupResource(key string) *resource {
	if id, ok := ld.in.Lookup(key); ok {
		return ld.resTab[id]
	}
	return ld.extra[key]
}

func classWeight(kind page.Kind, async bool) uint8 {
	switch kind {
	case page.KindHTML:
		return weightHTML
	case page.KindCSS:
		return weightCSS
	case page.KindFont:
		return weightFont
	case page.KindJS:
		if async {
			return weightJSAsync
		}
		return weightJSSync
	case page.KindImage:
		return weightImage
	}
	return weightOther
}

// fetch requests a resource unless it is already in flight (requested or
// adopted from a push).
//
//repolint:hotpath
func (ld *Loader) fetch(r *resource, async bool) {
	r.discovered = true
	if r.requested || (r.pushed && !r.cancelled) || r.loaded {
		return
	}
	if r.failed {
		return // terminally failed; a late discovery must not revive it
	}
	r.requested = true
	r.start = ld.s.Now()
	r.weight = classWeight(r.kind, async)
	group := int32(-1)
	if r.id >= 0 {
		group = ld.in.ConnGroupOf(r.id)
	}
	c := ld.connFor(r.url.Authority, group)
	if c.ready {
		ld.issueFetch(c, r)
	} else {
		c.pending = append(c.pending, r)
	}
}

// issueFetch sends the request for r on the connected c.
//
//repolint:hotpath
func (ld *Loader) issueFetch(c *conn, r *resource) {
	parent := uint32(0)
	if c.mainID != 0 {
		parent = c.mainID
	}
	r.parent = parent
	ld.prio = h2.PriorityParam{ParentID: parent, Weight: r.weight}
	cs := c.client.Request(h2.Request{
		Method: "GET", Scheme: r.url.Scheme, Authority: r.url.Authority, Path: r.url.Path,
	}, h2.RequestOpts{
		Priority:   &ld.prio,
		Fields:     ld.reqFieldsFor(r),
		Pre:        ld.reqPreFor(r),
		OnData:     r.onDataFn,
		OnComplete: r.onCompleteFn,
	})
	cs.OnFailed = r.onFailFn
	r.conn = c
	r.cs = cs
	if r == ld.baseRes {
		c.mainID = cs.St.ID
	}
	ld.res.Requests++
	ld.armTimeout(r)
}

//repolint:hotpath
func (ld *Loader) onChunk(r *resource, chunk []byte) {
	if r == ld.baseRes {
		ld.received += len(chunk)
		r.bytes += len(chunk)
		ld.preloadScan()
		ld.advanceParser()
		return
	}
	r.bytes += len(chunk)
	if r.entry == nil && (r.kind == page.KindCSS || r.kind == page.KindJS) {
		r.body = append(r.body, chunk...)
	}
}

// connFor returns (dialling if needed) the coalesced connection for
// host. group is the host's intern connection group when the caller has
// it (-1 to resolve here); interned groups index the dense table,
// unknown hosts fall back to the overflow map.
//
//repolint:hotpath
func (ld *Loader) connFor(host string, group int32) *conn {
	if group < 0 {
		if g, ok := ld.in.ConnGroupOfHost(host); ok {
			group = g
		}
	}
	if group >= 0 {
		if c := ld.connTab[group]; c != nil && !c.dead {
			return c
		}
		c := ld.dial(host, ld.in.ConnKeyOf(group))
		ld.connTab[group] = c
		return c
	}
	key := ld.site.ConnKey(host)
	if c, ok := ld.connExtra[key]; ok && !c.dead {
		return c
	}
	c := ld.dial(host, key)
	if ld.connExtra == nil {
		ld.connExtra = map[string]*conn{}
	}
	ld.connExtra[key] = c
	return c
}

func (ld *Loader) newConn(key string) *conn {
	var c *conn
	if n := len(ld.connFree); n > 0 {
		c = ld.connFree[n-1]
		ld.connFree[n-1] = nil
		ld.connFree = ld.connFree[:n-1]
	} else {
		c = &conn{}
	}
	c.key = key
	ld.connActive = append(ld.connActive, c)
	return c
}

// dial opens the connection and attaches a pooled h2 client at
// connectEnd.
func (ld *Loader) dial(host, key string) *conn {
	c := ld.newConn(key)
	ld.res.Conns++
	ld.farm.Dial(host, func(end *netem.End) {
		b := ld.getClientBundle()
		b.cl.OnPush = ld.onPushFn
		b.cl.OnGoAway = ld.onGoAwayFn
		b.cl.OnConnError = ld.onConnErrFn
		b.ep.Attach(b.cl.Core, end)
		c.bundle = b
		c.end = end
		c.client = b.cl
		c.ready = true
		c.connectEnd = ld.s.Now()
		for _, fn := range c.onReady {
			fn()
		}
		c.onReady = c.onReady[:0]
		for _, r := range c.pending {
			ld.issueFetch(c, r)
		}
		c.pending = c.pending[:0]
	})
	return c
}

func (ld *Loader) getClientBundle() *clientBundle {
	if n := len(ld.clPool); n > 0 {
		b := ld.clPool[n-1]
		ld.clPool[n-1] = nil
		ld.clPool = ld.clPool[:n-1]
		b.cl.Reset(ld.settings)
		return b
	}
	return &clientBundle{cl: h2.NewClient(ld.settings), ep: &h2.SimEndpoint{}}
}

// onPush decides whether to adopt a promised stream.
func (ld *Loader) onPush(promised *h2.ClientStream) bool {
	u, err := page.ParseURL(promised.Req.URL(), page.URL{})
	if err != nil {
		return false
	}
	r := ld.ensureResource(u, page.KindFromPath(u.Path))
	if r.requested || r.loaded || (r.pushed && !r.cancelled) {
		// Duplicate of an in-flight or finished fetch: cancel, as a
		// browser with the object in cache would (Sec. 2.1).
		ld.res.PushedCancelled++
		return false
	}
	r.pushed = true
	r.start = ld.s.Now()
	r.weight = classWeight(r.kind, false)
	ld.res.PushedAccepted++
	promised.OnData = r.onDataFn
	promised.OnComplete = r.onCompleteFn
	promised.OnFailed = r.onFailFn
	r.conn = ld.connByClient(promised.Client)
	r.cs = promised
	ld.armTimeout(r)
	return true
}

// --- preload scanner ---

// preloadScan discovers resource references in all received (not
// necessarily parsed) bytes, modelling Chromium's lookahead scanner.
// References are covered exactly once: doc.Resources is in byte order,
// so a persistent index replaces the re-scan from the document start.
//
//repolint:hotpath
func (ld *Loader) preloadScan() {
	if !ld.cfg.PreloadScanner {
		return
	}
	for ld.scanIdx < len(ld.pp.doc.Resources) {
		if ld.pp.doc.Resources[ld.scanIdx].Offset > ld.received {
			return
		}
		ld.discoverIdx(ld.scanIdx)
		ld.scanIdx++
	}
}

// discoverIdx fetches the resource behind document reference i, using
// the prepared page's pre-resolved URL, intern ID and kind.
func (ld *Loader) discoverIdx(i int) *resource {
	if !ld.pp.refOK[i] {
		return nil
	}
	ref := &ld.pp.doc.Resources[i]
	r := ld.ensureRef(i, ld.pp.refKind[i])
	ld.fetch(r, ref.Async || ref.Defer)
	return r
}

// --- parser ---

func (ld *Loader) computeDelay(ms float64) time.Duration {
	if ms < 0 {
		ms = 0
	}
	if j := ld.cfg.JitterFrac; j > 0 {
		ms *= 1 + (ld.s.Rand().Float64()*2-1)*j
	}
	return time.Duration(ms * float64(time.Millisecond))
}

//repolint:hotpath
func (ld *Loader) advanceParser() {
	if ld.parsing || ld.parserDone || ld.parserBlock != nil || ld.execBlocked || ld.pp == nil {
		return
	}
	target := len(ld.pp.doc.Raw)
	atMilestone := false
	if ld.mi < len(ld.pp.milestones) {
		target = ld.pp.milestones[ld.mi].offset
		atMilestone = true
	}
	if target > ld.received {
		// Cannot reach the next milestone yet: parse what we have.
		if ld.received <= ld.parsePos {
			return // wait for more bytes
		}
		ld.scheduleParse(ld.received, false)
		return
	}
	if target <= ld.parsePos {
		if atMilestone {
			ld.handleMilestone()
		} else {
			ld.finishParsing()
		}
		return
	}
	ld.scheduleParse(target, atMilestone)
}

// loaderParseDone is the pooled-event callback for scheduleParse; the
// parse parameters live on the loader (one parse in flight at a time).
func loaderParseDone(a any) {
	ld := a.(*Loader)
	ld.parsing = false
	ld.parsePos = ld.parseTarget
	ld.tryPaint()
	if ld.parseMilestone {
		ld.handleMilestone()
	} else {
		ld.advanceParser()
	}
}

func (ld *Loader) scheduleParse(to int, milestone bool) {
	ld.parsing = true
	ld.parseTarget, ld.parseMilestone = to, milestone
	d := ld.computeDelay(float64(to-ld.parsePos) / ld.cfg.HTMLParseRate)
	ld.s.AtCall(ld.s.Now()+d, loaderParseDone, ld)
}

func (ld *Loader) handleMilestone() {
	m := ld.pp.milestones[ld.mi]
	ld.mi++
	switch {
	case m.res != nil:
		r := ld.discoverIdx(m.idx)
		if r != nil && m.res.Tag == "script" {
			if m.res.Defer {
				ld.deferred = append(ld.deferred, r)
			} else if !m.res.Async {
				// Synchronous external script: parser-blocking.
				ld.blockOnScript(r, m.offset)
				return
			}
		}
	case m.script != nil:
		// Inline script: executes in place; needs CSSOM of prior sheets.
		ld.execAfterCSS(m.offset, float64(len(m.script.Content))/ld.cfg.JSExecRate, nil)
		return
	case m.style != nil:
		// Inline style: available with the document, negligible cost.
	}
	ld.advanceParser()
}

// blockOnScript pauses the parser until the script arrived and executed.
func (ld *Loader) blockOnScript(r *resource, offset int) {
	ld.parserBlock = r
	run := func() {
		if r.failed {
			// Failed script: nothing executes; unblock the parser.
			ld.parserBlock = nil
			ld.checkLoad()
			ld.advanceParser()
			return
		}
		cost := float64(len(r.content())) / ld.cfg.JSExecRate
		if r.entry != nil {
			cost += r.entry.Meta.ExecMS
		}
		ld.execAfterCSS(offset, cost, r)
	}
	if r.loaded {
		run()
		return
	}
	r.onLoaded = append(r.onLoaded, run)
}

// loaderExecDone is the pooled-event callback for execAfterCSS's charged
// execution delay (one exec in flight at a time; execR may be nil for
// inline scripts).
func loaderExecDone(a any) {
	ld := a.(*Loader)
	r := ld.execR
	ld.execR = nil
	ld.execBlocked = false
	if r != nil {
		r.executed = true
		ld.parserBlock = nil
	}
	ld.checkLoad()
	ld.advanceParser()
}

// execAfterCSS waits until every stylesheet referenced before offset is
// ready, then charges the execution cost and resumes the parser.
func (ld *Loader) execAfterCSS(offset int, costMS float64, r *resource) {
	ld.execBlocked = true
	run := func() {
		d := ld.computeDelay(costMS)
		ld.execR = r
		ld.s.AtCall(ld.s.Now()+d, loaderExecDone, ld)
	}
	if ld.cssReadyBefore(offset) {
		run()
		return
	}
	ld.cssWaiters = append(ld.cssWaiters, cssWaiter{offset: offset, fn: run})
}

func (ld *Loader) cssReadyBefore(offset int) bool {
	for _, ref := range ld.cssRefs {
		if ref.offset < offset && ref.res.discovered && !ref.res.ready {
			return false
		}
	}
	return true
}

func (ld *Loader) notifyCSSWaiters() {
	var rest []cssWaiter
	for _, w := range ld.cssWaiters {
		if ld.cssReadyBefore(w.offset) {
			w.fn()
		} else {
			rest = append(rest, w)
		}
	}
	ld.cssWaiters = rest
}

func (ld *Loader) finishParsing() {
	if ld.parserDone || !ld.htmlComplete || ld.parsePos < len(ld.pp.doc.Raw) {
		return
	}
	ld.parserDone = true
	ld.runDeferred(0)
}

// loaderDeferredDone is the pooled-event callback for one deferred
// script's execution charge (deferred scripts run strictly in order).
func loaderDeferredDone(a any) {
	ld := a.(*Loader)
	r := ld.deferred[ld.defIdx]
	r.executed = true
	ld.runDeferred(ld.defIdx + 1)
}

func (ld *Loader) runDeferred(i int) {
	if i >= len(ld.deferred) {
		ld.tryPaint()
		ld.checkLoad()
		return
	}
	r := ld.deferred[i]
	run := func() {
		if r.failed {
			// Failed deferred script: skip its execution, keep the chain
			// advancing so parserDone work still completes.
			ld.runDeferred(i + 1)
			return
		}
		cost := float64(len(r.content())) / ld.cfg.JSExecRate
		if r.entry != nil {
			cost += r.entry.Meta.ExecMS
		}
		ld.defIdx = i
		ld.s.AtCall(ld.s.Now()+ld.computeDelay(cost), loaderDeferredDone, ld)
	}
	if r.loaded {
		run()
	} else {
		r.onLoaded = append(r.onLoaded, run)
	}
}

// --- resource completion ---

// resourceCSSParsed is the pooled-event callback for a stylesheet's
// parse completion (several sheets may be parsing concurrently, so the
// argument is the resource itself).
func resourceCSSParsed(a any) {
	r := a.(*resource)
	r.ld.onCSSParsed(r)
}

// resourceJSExecuted is the pooled-event callback for an async or
// pushed-ahead script's execution completion.
func resourceJSExecuted(a any) {
	r := a.(*resource)
	r.executed = true
	r.ld.checkLoad()
}

//repolint:hotpath
func (ld *Loader) onLoaded(r *resource) {
	if r.loaded {
		return
	}
	r.loaded = true
	r.end = ld.s.Now()
	if r.tmoEv != nil {
		r.tmoEv.Cancel()
		r.tmoEv = nil
	}
	r.cs = nil
	if r == ld.baseRes {
		ld.htmlComplete = true
		r.ready, r.executed = true, true
		ld.advanceParser()
		ld.checkLoad()
		return
	}
	cbs := r.onLoaded
	r.onLoaded = nil
	switch r.kind {
	case page.KindCSS:
		d := ld.computeDelay(float64(len(r.content())) / ld.cfg.CSSParseRate)
		if r.entry != nil {
			d += ld.computeDelay(r.entry.Meta.ParseMS)
		}
		ld.s.AtCall(ld.s.Now()+d, resourceCSSParsed, r)
	case page.KindJS:
		r.ready = true
		if ld.parserBlock != r {
			// Async or pushed-ahead script: execute off the parser path.
			cost := float64(len(r.content())) / ld.cfg.JSExecRate
			if r.entry != nil {
				cost += r.entry.Meta.ExecMS
			}
			ld.s.AtCall(ld.s.Now()+ld.computeDelay(cost), resourceJSExecuted, r)
		}
	default:
		r.ready = true
		r.executed = true
	}
	for _, fn := range cbs {
		fn()
	}
	ld.tryPaint()
	ld.checkLoad()
}

// sheetInfoFor returns the resource's resolved stylesheet references,
// from the prepared page when the resource is an untouched recorded
// entry fetched under its recorded URL, parsing per run otherwise
// (scaled overlay bodies, query-stripped fuzzy matches).
func (ld *Loader) sheetInfoFor(r *resource) *sheetInfo {
	if r.entry != nil && ld.pp.sheets != nil && r.url == r.entry.URL {
		if si, ok := ld.pp.sheets[r.entry]; ok {
			return si
		}
	}
	return buildSheetInfoIn(cssx.Parse(r.content()), r.url, ld.in)
}

func (ld *Loader) onCSSParsed(r *resource) {
	si := ld.sheetInfoFor(r)
	// Fonts and asset images become fetchable only now (they are not
	// preload-scannable), which is why the paper pushes "hidden" fonts.
	for _, f := range si.fonts {
		fr := ld.ensureSheetRef(f.id, f.u, f.key, page.KindFont)
		if f.famID >= 0 {
			if ld.fontTab[f.famID] == nil {
				ld.fontTab[f.famID] = fr
			}
		} else if _, ok := ld.fonts[f.family]; !ok {
			if ld.fonts == nil {
				ld.fonts = map[string]*resource{}
			}
			ld.fonts[f.family] = fr
		}
		ld.fetch(fr, false)
	}
	for _, a := range si.assets {
		ar := ld.ensureSheetRef(a.id, a.u, a.key, page.KindImage)
		ld.fetch(ar, true)
	}
	// @imports must be ready before this sheet counts as ready.
	if len(si.imports) > 0 {
		r.pendingImps = 0
		for i, imp := range si.imports {
			dup := false
			for j := 0; j < i; j++ {
				if si.imports[j].key == imp.key {
					dup = true
					break
				}
			}
			if dup {
				continue
			}
			ir := ld.ensureSheetRef(imp.id, imp.u, imp.key, page.KindCSS)
			if ir.ready {
				continue
			}
			r.pendingImps++
			ir.onLoaded = append(ir.onLoaded, func() {
				// Imported sheet still needs its own parse; hook ready.
				ld.whenCSSReady(ir, func() {
					r.pendingImps--
					if r.pendingImps == 0 {
						ld.markCSSReady(r)
					}
				})
			})
			ld.fetch(ir, false)
		}
		if r.pendingImps == 0 {
			ld.markCSSReady(r)
		}
		return
	}
	ld.markCSSReady(r)
}

// whenCSSReady invokes fn once r.ready (CSS parse + imports) holds.
func (ld *Loader) whenCSSReady(r *resource, fn func()) {
	if r.ready {
		fn()
		return
	}
	r.cssReadyCBs = append(r.cssReadyCBs, fn)
}

func (ld *Loader) markCSSReady(r *resource) {
	if r.ready {
		return
	}
	r.ready = true
	r.executed = true
	cbs := r.cssReadyCBs
	r.cssReadyCBs = nil
	for _, fn := range cbs {
		fn()
	}
	ld.notifyCSSWaiters()
	ld.tryPaint()
	ld.checkLoad()
}

// --- paint & load ---

//repolint:hotpath
func (ld *Loader) unitReady(i int, u *visualUnit) bool {
	if ld.parsePos < u.offset {
		return false
	}
	for _, ref := range ld.cssRefs {
		if ref.offset < u.offset && ref.res.discovered && !ref.res.ready {
			return false
		}
	}
	if u.isImage && u.imgURL != "" {
		var r *resource
		if id := ld.pp.unitImgID[i]; id >= 0 {
			r = ld.resTab[id]
		} else if key := ld.pp.unitImgKey[i]; key != "" {
			r = ld.lookupResource(key)
		}
		if r != nil && !r.loaded && !r.failed {
			return false
		}
	}
	if u.fontFam != "" {
		var fr *resource
		if id := ld.pp.unitFontID[i]; id >= 0 {
			fr = ld.fontTab[id]
		} else {
			fr = ld.fonts[u.fontFam]
		}
		if fr != nil && !fr.loaded && !fr.failed {
			return false
		}
		// If the font-face is not yet known, any pending CSS keeps the
		// text hidden via the css-ready check above; an unknown family
		// with all CSS ready paints with a fallback font.
	}
	return true
}

//repolint:hotpath
func (ld *Loader) tryPaint() {
	if ld.pp == nil || ld.pp.lay.totalATFArea == 0 {
		return
	}
	changed := false
	for i, u := range ld.pp.lay.units {
		if !ld.unitPainted[i] && ld.unitReady(i, u) {
			ld.unitPainted[i] = true
			ld.painted += u.area
			changed = true
		}
	}
	if !changed {
		return
	}
	now := ld.s.Now()
	frac := ld.painted / ld.pp.lay.totalATFArea
	rel := now - ld.res.ConnectEnd
	if len(ld.res.Progress) > 0 && ld.res.Progress[len(ld.res.Progress)-1].T == rel {
		ld.res.Progress[len(ld.res.Progress)-1].Fraction = frac
	} else {
		ld.res.Progress = append(ld.res.Progress, metrics.ProgressPoint{T: rel, Fraction: frac})
	}
	if ld.res.FirstPaint == 0 {
		ld.res.FirstPaint = rel
	}
	if frac >= 1 && ld.res.VisuallyComplete == 0 {
		ld.res.VisuallyComplete = rel
	}
}

// checkLoad fires onload when the document is parsed and every
// discovered resource has finished loading and executing.
//
//repolint:hotpath
func (ld *Loader) checkLoad() {
	if ld.done || ld.loadFired || !ld.parserDone {
		return
	}
	for _, r := range ld.active {
		if !r.discovered || r.cancelled || r.failed {
			continue
		}
		if !r.loaded || !r.ready || !r.executed {
			return
		}
	}
	ld.loadFired = true
	now := ld.s.Now()
	ld.res.OnLoadAt = now
	ld.res.PLT = now - ld.res.ConnectEnd
	ld.res.Completed = true
	if ld.failedCount == 0 {
		ld.res.Outcome = OutcomeComplete
	} else {
		ld.res.Outcome = OutcomePartial
	}
	if ld.horizon != nil {
		ld.horizon.Cancel()
	}
	ld.finishVisuals(now)
	ld.terminate()
}

// finishVisuals computes SpeedIndex and final stats.
func (ld *Loader) finishVisuals(endAt time.Duration) {
	rel := endAt - ld.res.ConnectEnd
	ld.res.SpeedIndex = metrics.SpeedIndex(ld.res.Progress, rel)
	if ld.res.VisuallyComplete == 0 {
		ld.res.VisuallyComplete = rel
	}
	// Push accounting.
	for _, r := range ld.active {
		if r.pushed && !r.cancelled {
			if r.discovered {
				ld.res.BytesPushedUsed += int64(r.bytes)
			} else {
				ld.res.PushedUnused++
				ld.res.BytesPushedWasted += int64(r.bytes)
			}
		}
	}
	// Timings, ordered by start.
	ld.res.Timings = ld.res.Timings[:0]
	for _, r := range ld.active {
		if r.start == 0 && !r.pushed && !r.requested {
			continue
		}
		ld.res.Timings = append(ld.res.Timings, ResourceTiming{
			URL: r.key, Kind: r.kind, Start: r.start, End: r.end,
			Bytes: r.bytes, Pushed: r.pushed && !r.cancelled,
			Weight: r.weight, Parent: r.parent,
			Failed: r.failed, Cause: r.failCause,
		})
	}
	slices.SortFunc(ld.res.Timings, func(a, b ResourceTiming) int {
		if a.Start != b.Start {
			return cmp.Compare(a.Start, b.Start)
		}
		return cmp.Compare(a.URL, b.URL)
	})
}

var dbgHorizon func(*Loader)
