package browser

import (
	"time"

	"repro/internal/h2"
	"repro/internal/metrics"
	"repro/internal/netem"
	"repro/internal/page"
	"repro/internal/replay"
	"repro/internal/sim"
)

// Snapshot/Restore capture the loader's full run state for the engine's
// fork-at-checkpoint replay. The same ownership contract as the other
// layers applies: snapshots own their slices and reuse them across
// calls; the *resource, *conn and *clientBundle pointers they hold are
// aliases whose structs Restore rewrites in place, so the transport
// callbacks bound to pooled resource structs and the h2 client wrappers
// bound to pooled bundles stay valid across a rewind. Each active
// connection's h2 client core is captured through h2.ClientSnapshot.

// resourceState is the captured contents of one resource.
type resourceState struct {
	r           *resource
	id          int32
	url         page.URL
	key         string
	kind        page.Kind
	entry       *replay.Entry
	discovered  bool
	requested   bool
	pushed      bool
	cancelled   bool
	loaded      bool
	ready       bool
	executed    bool
	conn        *conn
	cs          *h2.ClientStream
	retries     int
	failed      bool
	failCause   FailCause
	tmoEv       *sim.Event
	start, end  time.Duration
	bytes       int
	body        []byte
	weight      uint8
	parent      uint32
	pendingImps int
	hasLoadCBs  bool
	onLoaded    []func()
	hasCSSCBs   bool
	cssReadyCBs []func()
}

func scrubResourceState(ss *resourceState) {
	ss.r, ss.entry, ss.body = nil, nil, nil
	ss.conn, ss.cs, ss.tmoEv = nil, nil, nil
	ss.url, ss.key = page.URL{}, ""
	clear(ss.onLoaded)
	ss.onLoaded = ss.onLoaded[:0]
	clear(ss.cssReadyCBs)
	ss.cssReadyCBs = ss.cssReadyCBs[:0]
}

func (r *resource) snapshot(ss *resourceState) {
	ss.r = r
	ss.id, ss.url, ss.key = r.id, r.url, r.key
	ss.kind, ss.entry = r.kind, r.entry
	ss.discovered, ss.requested, ss.pushed, ss.cancelled = r.discovered, r.requested, r.pushed, r.cancelled
	ss.loaded, ss.ready, ss.executed = r.loaded, r.ready, r.executed
	ss.conn, ss.cs, ss.retries = r.conn, r.cs, r.retries
	ss.failed, ss.failCause, ss.tmoEv = r.failed, r.failCause, r.tmoEv
	ss.start, ss.end, ss.bytes = r.start, r.end, r.bytes
	// body grows monotonically within a run (never truncated until the
	// struct is recycled), so the slice header alone is an exact capture:
	// post-checkpoint appends land at or past len, never below it.
	ss.body = r.body
	ss.weight, ss.parent, ss.pendingImps = r.weight, r.parent, r.pendingImps
	ss.hasLoadCBs = r.onLoaded != nil
	ss.onLoaded = append(ss.onLoaded[:0], r.onLoaded...)
	ss.hasCSSCBs = r.cssReadyCBs != nil
	ss.cssReadyCBs = append(ss.cssReadyCBs[:0], r.cssReadyCBs...)
}

func (r *resource) restore(ld *Loader, ss *resourceState) {
	r.ld = ld
	r.id, r.url, r.key = ss.id, ss.url, ss.key
	r.kind, r.entry = ss.kind, ss.entry
	r.discovered, r.requested, r.pushed, r.cancelled = ss.discovered, ss.requested, ss.pushed, ss.cancelled
	r.loaded, r.ready, r.executed = ss.loaded, ss.ready, ss.executed
	r.conn, r.cs, r.retries = ss.conn, ss.cs, ss.retries
	r.failed, r.failCause, r.tmoEv = ss.failed, ss.failCause, ss.tmoEv
	r.start, r.end, r.bytes = ss.start, ss.end, ss.bytes
	r.body = ss.body
	r.weight, r.parent, r.pendingImps = ss.weight, ss.parent, ss.pendingImps
	r.onLoaded = restoreCBs(r.onLoaded, ss.onLoaded, ss.hasLoadCBs)
	r.cssReadyCBs = restoreCBs(r.cssReadyCBs, ss.cssReadyCBs, ss.hasCSSCBs)
	// onDataFn/onCompleteFn/onFailFn are persistent per-struct and untouched.
}

// restoreCBs rebuilds a callback list, preserving the nil-vs-empty
// distinction some consumers use as a "fired already" marker.
func restoreCBs(dst, src []func(), present bool) []func() {
	if !present {
		return nil
	}
	clear(dst)
	return append(dst[:0], src...)
}

// connState is the captured contents of one connection, including the
// h2 client snapshot when the connection's transport is attached.
type connState struct {
	c          *conn
	key        string
	client     *h2.Client
	bundle     *clientBundle
	end        *netem.End
	ready      bool
	dead       bool
	onReady    []func()
	pending    []*resource
	connectEnd time.Duration
	mainID     uint32
	cl         h2.ClientSnapshot
	ep         h2.EndpointSnapshot
}

func scrubConnState(cs *connState) {
	cs.c, cs.client, cs.bundle, cs.end = nil, nil, nil, nil
	cs.key = ""
	clear(cs.onReady)
	cs.onReady = cs.onReady[:0]
	clear(cs.pending)
	cs.pending = cs.pending[:0]
}

// kvRes / kvConn are captured overflow-map entries.
type kvRes struct {
	k string
	v *resource
}
type kvConn struct {
	k string
	v *conn
}

// resultState is the captured contents of the run's Result.
type resultState struct {
	scalars  Result // Progress/Timings cleared; slices captured separately
	progress []metrics.ProgressPoint
	timings  []ResourceTiming
}

// LoaderSnapshot is a deep copy of a Loader's run state.
type LoaderSnapshot struct {
	s    *sim.Sim
	farm *replay.Farm
	site *replay.Site
	cfg  Config
	res  resultState

	pp *preparedPage
	in *replay.Interns

	resTab  []*resource
	extra   []kvRes
	active  []resourceState
	resFree []*resource

	connTab    []*conn
	connExtra  []kvConn
	connActive []connState
	connFree   []*conn

	clPool []*clientBundle

	fontTab []*resource
	fonts   []kvRes

	settings    h2.Settings
	onPushFn    func(parent, promised *h2.ClientStream) bool
	onGoAwayFn  func(cl *h2.Client, last uint32)
	onConnErrFn func(cl *h2.Client, err h2.ConnError)

	mi      int
	scanIdx int

	received     int
	htmlComplete bool
	parsePos     int
	parsing      bool
	parserBlock  *resource
	execBlocked  bool
	parserDone   bool

	parseTarget    int
	parseMilestone bool
	execR          *resource
	defIdx         int

	cssRefs    []cssRef
	cssWaiters []cssWaiter
	deferred   []*resource

	mainHost    string
	unitPainted []bool
	painted     float64
	loadFired   bool
	done        bool
	failedCount int
	horizon     *sim.Event
	baseEntry   *replay.Entry
	baseRes     *resource
}

// Snapshot copies the loader's run state into dst.
func (ld *Loader) Snapshot(dst *LoaderSnapshot) {
	dst.s, dst.farm, dst.site, dst.cfg = ld.s, ld.farm, ld.site, ld.cfg

	dst.res.scalars = *ld.res
	dst.res.scalars.Progress, dst.res.scalars.Timings = nil, nil
	dst.res.progress = append(dst.res.progress[:0], ld.res.Progress...)
	dst.res.timings = append(dst.res.timings[:0], ld.res.Timings...)

	dst.pp, dst.in = ld.pp, ld.in

	dst.resTab = append(dst.resTab[:0], ld.resTab...)
	dst.extra = dst.extra[:0]
	for k, v := range ld.extra {
		dst.extra = append(dst.extra, kvRes{k, v})
	}
	dst.active = growStates(dst.active, len(ld.active), scrubResourceState)
	for i, r := range ld.active {
		r.snapshot(&dst.active[i])
	}
	dst.resFree = append(dst.resFree[:0], ld.resFree...)

	dst.connTab = append(dst.connTab[:0], ld.connTab...)
	dst.connExtra = dst.connExtra[:0]
	for k, v := range ld.connExtra {
		dst.connExtra = append(dst.connExtra, kvConn{k, v})
	}
	dst.connActive = growStates(dst.connActive, len(ld.connActive), scrubConnState)
	for i, c := range ld.connActive {
		cs := &dst.connActive[i]
		cs.c, cs.key, cs.client, cs.bundle = c, c.key, c.client, c.bundle
		cs.end, cs.dead = c.end, c.dead
		cs.ready, cs.connectEnd, cs.mainID = c.ready, c.connectEnd, c.mainID
		cs.onReady = append(cs.onReady[:0], c.onReady...)
		cs.pending = append(cs.pending[:0], c.pending...)
		if c.bundle != nil {
			c.bundle.cl.Snapshot(&cs.cl)
			c.bundle.ep.Snapshot(&cs.ep)
		}
	}
	dst.connFree = append(dst.connFree[:0], ld.connFree...)

	dst.clPool = append(dst.clPool[:0], ld.clPool...)

	dst.fontTab = append(dst.fontTab[:0], ld.fontTab...)
	dst.fonts = dst.fonts[:0]
	for k, v := range ld.fonts {
		dst.fonts = append(dst.fonts, kvRes{k, v})
	}

	dst.settings, dst.onPushFn = ld.settings, ld.onPushFn
	dst.onGoAwayFn, dst.onConnErrFn = ld.onGoAwayFn, ld.onConnErrFn

	dst.mi, dst.scanIdx = ld.mi, ld.scanIdx
	dst.received, dst.htmlComplete, dst.parsePos = ld.received, ld.htmlComplete, ld.parsePos
	dst.parsing, dst.parserBlock = ld.parsing, ld.parserBlock
	dst.execBlocked, dst.parserDone = ld.execBlocked, ld.parserDone
	dst.parseTarget, dst.parseMilestone = ld.parseTarget, ld.parseMilestone
	dst.execR, dst.defIdx = ld.execR, ld.defIdx

	dst.cssRefs = append(dst.cssRefs[:0], ld.cssRefs...)
	dst.cssWaiters = append(dst.cssWaiters[:0], ld.cssWaiters...)
	dst.deferred = append(dst.deferred[:0], ld.deferred...)

	dst.mainHost = ld.mainHost
	dst.unitPainted = append(dst.unitPainted[:0], ld.unitPainted...)
	dst.painted, dst.loadFired = ld.painted, ld.loadFired
	dst.done, dst.failedCount = ld.done, ld.failedCount
	dst.horizon, dst.baseEntry = ld.horizon, ld.baseEntry
	dst.baseRes = ld.baseRes
}

// growStates extends dst to n entries, keeping each entry's inner slice
// capacity, and scrubs the unused tail so it pins nothing.
func growStates[S any](dst []S, n int, scrub func(*S)) []S {
	for len(dst) < n {
		var zero S
		dst = append(dst, zero)
	}
	for i := n; i < len(dst); i++ {
		scrub(&dst[i])
	}
	return dst[:n]
}

// Restore rewinds the loader to the captured state. Resources,
// connections and their h2 clients are rewritten in place; objects
// created after the snapshot are dropped for the garbage collector, and
// free lists are rebuilt from the snapshot with a fresh scrub.
func (ld *Loader) Restore(snap *LoaderSnapshot) {
	ld.s, ld.farm, ld.site, ld.cfg = snap.s, snap.farm, snap.site, snap.cfg

	progress, timings := ld.res.Progress[:0], ld.res.Timings[:0]
	*ld.res = snap.res.scalars
	ld.res.Progress = append(progress, snap.res.progress...)
	ld.res.Timings = append(timings, snap.res.timings...)

	ld.pp, ld.in = snap.pp, snap.in

	ld.resTab = clearRestore(ld.resTab, snap.resTab)
	restoreResMap(&ld.extra, snap.extra)
	clear(ld.active)
	ld.active = ld.active[:0]
	for i := range snap.active {
		ss := &snap.active[i]
		ss.r.restore(ld, ss)
		ld.active = append(ld.active, ss.r)
	}
	clear(ld.resFree)
	ld.resFree = ld.resFree[:0]
	for _, r := range snap.resFree {
		od, oc, of := r.onDataFn, r.onCompleteFn, r.onFailFn
		*r = resource{ld: ld, onDataFn: od, onCompleteFn: oc, onFailFn: of}
		ld.resFree = append(ld.resFree, r)
	}

	ld.connTab = clearRestore(ld.connTab, snap.connTab)
	restoreConnMap(&ld.connExtra, snap.connExtra)
	clear(ld.connActive)
	ld.connActive = ld.connActive[:0]
	for i := range snap.connActive {
		cs := &snap.connActive[i]
		c := cs.c
		c.key, c.client, c.bundle = cs.key, cs.client, cs.bundle
		c.end, c.dead = cs.end, cs.dead
		c.ready, c.connectEnd, c.mainID = cs.ready, cs.connectEnd, cs.mainID
		clear(c.onReady)
		c.onReady = append(c.onReady[:0], cs.onReady...)
		clear(c.pending)
		c.pending = append(c.pending[:0], cs.pending...)
		if c.bundle != nil {
			c.bundle.cl.Restore(&cs.cl)
			c.bundle.ep.Restore(&cs.ep)
		}
		ld.connActive = append(ld.connActive, c)
	}
	clear(ld.connFree)
	ld.connFree = ld.connFree[:0]
	for _, c := range snap.connFree {
		clear(c.onReady)
		clear(c.pending)
		*c = conn{onReady: c.onReady[:0], pending: c.pending[:0]}
		ld.connFree = append(ld.connFree, c)
	}

	ld.clPool = clearRestore(ld.clPool, snap.clPool)

	ld.fontTab = clearRestore(ld.fontTab, snap.fontTab)
	restoreResMap(&ld.fonts, snap.fonts)

	ld.settings, ld.onPushFn = snap.settings, snap.onPushFn
	ld.onGoAwayFn, ld.onConnErrFn = snap.onGoAwayFn, snap.onConnErrFn

	ld.mi, ld.scanIdx = snap.mi, snap.scanIdx
	ld.received, ld.htmlComplete, ld.parsePos = snap.received, snap.htmlComplete, snap.parsePos
	ld.parsing, ld.parserBlock = snap.parsing, snap.parserBlock
	ld.execBlocked, ld.parserDone = snap.execBlocked, snap.parserDone
	ld.parseTarget, ld.parseMilestone = snap.parseTarget, snap.parseMilestone
	ld.execR, ld.defIdx = snap.execR, snap.defIdx

	ld.cssRefs = append(ld.cssRefs[:0], snap.cssRefs...)
	ld.cssWaiters = append(ld.cssWaiters[:0], snap.cssWaiters...)
	clear(ld.deferred)
	ld.deferred = append(ld.deferred[:0], snap.deferred...)

	ld.mainHost = snap.mainHost
	ld.unitPainted = append(ld.unitPainted[:0], snap.unitPainted...)
	ld.painted, ld.loadFired = snap.painted, snap.loadFired
	ld.done, ld.failedCount = snap.done, snap.failedCount
	ld.horizon, ld.baseEntry = snap.horizon, snap.baseEntry
	ld.baseRes = snap.baseRes
}

func clearRestore[T any](dst, src []*T) []*T {
	clear(dst)
	dst = dst[:0]
	return append(dst, src...)
}

func restoreResMap(m *map[string]*resource, kvs []kvRes) {
	clear(*m)
	if len(kvs) == 0 {
		return
	}
	if *m == nil {
		*m = make(map[string]*resource, len(kvs))
	}
	for _, kv := range kvs {
		(*m)[kv.k] = kv.v
	}
}

func restoreConnMap(m *map[string]*conn, kvs []kvConn) {
	clear(*m)
	if len(kvs) == 0 {
		return
	}
	if *m == nil {
		*m = make(map[string]*conn, len(kvs))
	}
	for _, kv := range kvs {
		(*m)[kv.k] = kv.v
	}
}
