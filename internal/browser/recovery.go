package browser

import (
	"time"

	"repro/internal/h2"
	"repro/internal/page"
)

// This file is the loader's failure and recovery machinery: per-resource
// timeout budgets, bounded deterministic retry with connection
// re-establishment, conn-death handling (GOAWAY, protocol errors) and
// the terminal LoadOutcome classification. None of it schedules events
// unless a fault actually strikes or Config enables timeouts, so the
// fault-free path stays byte-identical to a loader without recovery.

// LoadOutcome classifies how a page load terminated. Every load
// terminates with an outcome: onload fired (Complete), onload fired or
// the horizon was reached with some resources failed (Partial), or the
// base document never arrived (Failed). The zero value is Failed so an
// early-abandoned Result is never mistaken for success.
type LoadOutcome uint8

const (
	OutcomeFailed LoadOutcome = iota
	OutcomePartial
	OutcomeComplete
)

func (o LoadOutcome) String() string {
	switch o {
	case OutcomeComplete:
		return "complete"
	case OutcomePartial:
		return "partial"
	}
	return "failed"
}

// FailCause records why a resource fetch terminally failed.
type FailCause uint8

const (
	FailNone      FailCause = iota
	FailTimeout             // per-resource budget expired
	FailReset               // peer reset the stream (RST_STREAM)
	FailGoAway              // connection went away with the stream unfinished
	FailConnError           // connection died on a protocol error
	FailHorizon             // still in flight when the load horizon fired
)

func (c FailCause) String() string {
	switch c {
	case FailTimeout:
		return "timeout"
	case FailReset:
		return "reset"
	case FailGoAway:
		return "goaway"
	case FailConnError:
		return "conn-error"
	case FailHorizon:
		return "horizon"
	}
	return "none"
}

// armTimeout starts r's per-resource budget timer. A resource that
// neither completes nor fails within the budget is treated as failed
// (and retried if attempts remain). No timer is armed when the budget
// is disabled, which is the default — so fetches on the fault-free
// configuration schedule zero extra events.
func (ld *Loader) armTimeout(r *resource) {
	d := ld.cfg.ResourceTimeout
	if d <= 0 {
		return
	}
	r.tmoEv = ld.s.At(ld.s.Now()+d, func() {
		r.tmoEv = nil
		ld.onResourceFail(r, FailTimeout)
	})
}

// onStreamFailed is the persistent per-resource OnFailed continuation:
// the peer reset the stream before it completed.
func (ld *Loader) onStreamFailed(r *resource, _ h2.ErrCode) {
	ld.onResourceFail(r, FailReset)
}

// onResourceFail handles one failed fetch attempt: detach the dead
// stream, account wasted push bytes, then either schedule a retry
// (bounded, deterministic backoff, fresh connection if the old one
// died) or mark the resource terminally failed.
func (ld *Loader) onResourceFail(r *resource, cause FailCause) {
	if ld.done || r.loaded || r.failed {
		return
	}
	if r.tmoEv != nil {
		r.tmoEv.Cancel()
		r.tmoEv = nil
	}
	if cs := r.cs; cs != nil {
		// Detach so late bytes from the abandoned stream cannot mix into
		// a retry, and cancel it if still open (frees the server's state;
		// a no-op on a dead connection — the transport drops the frame).
		cs.OnResponse, cs.OnData, cs.OnComplete, cs.OnFailed = nil, nil, nil, nil
		if !cs.Completed() && !cs.Failed() {
			cs.Cancel()
		}
		r.cs = nil
	}
	if r.pushed && !r.cancelled {
		// A pushed stream died: whatever arrived is wasted push bytes
		// (ISSUE: dead-conn push bytes count), and the push no longer
		// satisfies the resource, so a re-request is allowed again.
		r.cancelled = true
		ld.res.BytesPushedWasted += int64(r.bytes)
	}
	r.conn = nil
	if !r.discovered {
		// Purely speculative push died before the parser asked for the
		// resource. Cancelling the push is the whole recovery: if the
		// page ever references it, discovery issues a normal request
		// (fetch treats a cancelled push as never-pushed). Terminal
		// failure here would wrongly poison that later request.
		r.bytes = 0
		if r.body != nil {
			r.body = r.body[:0]
		}
		return
	}
	if r.retries < ld.cfg.MaxRetries {
		r.retries++
		r.requested = false
		r.bytes = 0
		if r.body != nil {
			r.body = r.body[:0]
		}
		// Deterministic linear backoff: attempt k waits k*RetryBackoff.
		// No RNG draw — retry timing must not perturb any derivation
		// stream.
		delay := time.Duration(r.retries) * ld.cfg.RetryBackoff
		ld.s.AtCall(ld.s.Now()+delay, resourceRetry, r)
		return
	}
	ld.resourceFailed(r, cause)
}

// resourceRetry is the pooled-event callback for a scheduled retry.
func resourceRetry(a any) {
	r := a.(*resource)
	ld := r.ld
	if ld.done || r.loaded || r.failed || r.requested {
		return
	}
	ld.fetch(r, false)
}

// resourceFailed marks r terminally failed and runs the same
// continuations a successful load would, so the page degrades
// gracefully instead of hanging: parser blocks lift, CSS waiters fire
// (a failed sheet contributes no CSSOM), deferred chains advance, and
// checkLoad counts the resource as settled.
func (ld *Loader) resourceFailed(r *resource, cause FailCause) {
	if r.failed || r.loaded {
		return
	}
	r.failed = true
	r.failCause = cause
	r.end = ld.s.Now()
	r.ready = true
	r.executed = true
	ld.failedCount++
	cbs := r.onLoaded
	r.onLoaded = nil
	for _, fn := range cbs {
		// Continuations check r.failed and skip content execution.
		fn()
	}
	if r.kind == page.KindCSS {
		ccbs := r.cssReadyCBs
		r.cssReadyCBs = nil
		for _, fn := range ccbs {
			fn()
		}
		ld.notifyCSSWaiters()
	}
	ld.tryPaint()
	ld.checkLoad()
}

// connDead marks a connection terminally dead: its transport is closed,
// every unfinished resource riding it fails (and retries on a fresh
// connection), and the connection tables stop coalescing onto it.
func (ld *Loader) connDead(c *conn, cause FailCause) {
	if c == nil || c.dead {
		return
	}
	c.dead = true
	if c.end != nil {
		c.end.Close()
	}
	// Iterate the resource list as of now; retries triggered below may
	// discover new resources, which cannot be riding this connection.
	act := ld.active
	for _, r := range act {
		if r.conn == c && !r.loaded && !r.failed {
			ld.onResourceFail(r, cause)
		}
	}
}

// connByClient resolves the loader connection wrapping an h2 client.
// Bundles are never recycled mid-run, so the mapping is unique.
func (ld *Loader) connByClient(cl *h2.Client) *conn {
	for _, c := range ld.connActive {
		if c.client == cl {
			return c
		}
	}
	return nil
}

// onGoAway is the per-run GOAWAY continuation installed on every dialed
// client: the loader treats GOAWAY as terminal for the whole connection
// — in-flight streams (pushed ones included) are failed and re-requested
// over a fresh connection, matching how browsers abandon a going-away
// connection for new work.
func (ld *Loader) onGoAway(cl *h2.Client, _ uint32) {
	ld.connDead(ld.connByClient(cl), FailGoAway)
}

// onConnError is the per-run protocol-error continuation: the
// connection is unusable, every unfinished stream fails.
func (ld *Loader) onConnError(cl *h2.Client, _ h2.ConnError) {
	ld.connDead(ld.connByClient(cl), FailConnError)
}

// DisablePush turns off server push mid-load: every established
// connection sends SETTINGS_ENABLE_PUSH=0 and future dials start with
// push disabled. Pushes already promised are refused by the h2 layer
// (RST_STREAM(REFUSED_STREAM)) once the setting is active.
func (ld *Loader) DisablePush() {
	ld.settings.EnablePush = false
	for _, c := range ld.connActive {
		if c.client != nil && !c.dead {
			c.client.Core.SetEnablePush(false)
		}
	}
}

// terminate seals the load at its terminal outcome: no further retries
// or timeouts run, remaining timers are cancelled and every connection
// is closed, so the simulation always drains — even under a permanent
// link cut, where open connections would otherwise rearm retransmit
// timers forever. All Result fields are computed before terminate runs.
func (ld *Loader) terminate() {
	ld.done = true
	ld.res.FailedResources = ld.failedCount
	for _, r := range ld.active {
		if r.tmoEv != nil {
			r.tmoEv.Cancel()
			r.tmoEv = nil
		}
	}
	for _, c := range ld.connActive {
		if c.end != nil {
			c.end.Close()
		}
	}
}

// markHorizonFailures records every still-unfinished resource as failed
// with FailHorizon so partial-page metrics account for them. It runs
// only on the horizon path, right before finishVisuals.
func (ld *Loader) markHorizonFailures() {
	for _, r := range ld.active {
		if (r.requested || (r.pushed && !r.cancelled)) && !r.loaded && !r.failed {
			r.failed = true
			r.failCause = FailHorizon
			r.end = ld.s.Now()
			ld.failedCount++
			if r.pushed && !r.cancelled {
				r.cancelled = true
				ld.res.BytesPushedWasted += int64(r.bytes)
			}
		}
	}
}
