package browser

import (
	"testing"
	"time"

	"repro/internal/corpus"
	"repro/internal/netem"
	"repro/internal/page"
	"repro/internal/replay"
	"repro/internal/sim"
)

// loadSite runs one page load and returns the result.
func loadSite(t *testing.T, site *replay.Site, plan replay.Plan, cfg Config, seed int64) *Result {
	t.Helper()
	s := sim.New(seed)
	n := netem.New(s, netem.DSL())
	farm := replay.NewFarm(s, n, site, plan)
	ld := New(s, farm, cfg)
	ld.Start()
	s.Run()
	return ld.Result()
}

func simpleSite() *replay.Site {
	b := corpus.NewPage("example.test")
	b.CSS("/css/main.css", corpus.SimpleCSS([]string{"hero", "intro"}, 20))
	b.Div("hero", 300)
	b.Image("/img/hero.png", 1280, 300, 40*1024)
	b.Text(600, "intro")
	b.Script("/js/app.js", 20*1024, 5, false, false)
	b.Text(800)
	return b.Build("simple")
}

func TestLoadCompletesAndMetricsSane(t *testing.T) {
	cfg := DefaultConfig()
	res := loadSite(t, simpleSite(), replay.NoPush(), cfg, 1)
	if !res.Completed {
		t.Fatal("load did not complete")
	}
	if res.PLT <= 0 || res.PLT > 30*time.Second {
		t.Fatalf("PLT = %v", res.PLT)
	}
	if res.SpeedIndex <= 0 || res.SpeedIndex > res.PLT+time.Second {
		t.Fatalf("SpeedIndex = %v (PLT %v)", res.SpeedIndex, res.PLT)
	}
	if res.FirstPaint <= 0 || res.FirstPaint > res.PLT {
		t.Fatalf("FirstPaint = %v", res.FirstPaint)
	}
	// 1 HTML + css + img + js = 4 requests.
	if res.Requests != 4 {
		t.Fatalf("Requests = %d, want 4", res.Requests)
	}
	if len(res.Progress) == 0 {
		t.Fatal("no visual progress recorded")
	}
	last := res.Progress[len(res.Progress)-1]
	if last.Fraction < 0.999 {
		t.Fatalf("final visual fraction = %v", last.Fraction)
	}
}

func TestDeterministicWithSameSeed(t *testing.T) {
	cfg := DefaultConfig()
	a := loadSite(t, simpleSite(), replay.NoPush(), cfg, 7)
	b := loadSite(t, simpleSite(), replay.NoPush(), cfg, 7)
	if a.PLT != b.PLT || a.SpeedIndex != b.SpeedIndex {
		t.Fatalf("same seed diverged: PLT %v/%v SI %v/%v", a.PLT, b.PLT, a.SpeedIndex, b.SpeedIndex)
	}
	c := loadSite(t, simpleSite(), replay.NoPush(), cfg, 8)
	if a.PLT == c.PLT {
		t.Log("different seeds produced identical PLT (possible but unlikely with jitter)")
	}
}

func TestRenderBlockingCSSDelaysFirstPaint(t *testing.T) {
	// A page whose CSS is tiny paints earlier than one whose CSS is
	// huge, everything else equal.
	build := func(cssBytes int) *replay.Site {
		b := corpus.NewPage("example.test")
		css := corpus.SimpleCSS([]string{"hero"}, cssBytes/90)
		b.CSS("/css/main.css", css)
		b.Div("hero", 500)
		b.Text(1000)
		return b.Build("css-size")
	}
	cfg := DefaultConfig()
	smallCSS := loadSite(t, build(2*1024), replay.NoPush(), cfg, 1)
	bigCSS := loadSite(t, build(200*1024), replay.NoPush(), cfg, 1)
	if smallCSS.FirstPaint >= bigCSS.FirstPaint {
		t.Fatalf("big render-blocking CSS painted earlier: small=%v big=%v",
			smallCSS.FirstPaint, bigCSS.FirstPaint)
	}
}

func TestSyncScriptBlocksParser(t *testing.T) {
	// Identical pages except the blocking script's size.
	build := func(jsBytes int) *replay.Site {
		b := corpus.NewPage("example.test")
		b.Script("/js/blocking.js", jsBytes, 0, true, false)
		b.Div("hero", 500)
		b.Text(2000)
		return b.Build("js-size")
	}
	cfg := DefaultConfig()
	fast := loadSite(t, build(1024), replay.NoPush(), cfg, 1)
	slow := loadSite(t, build(300*1024), replay.NoPush(), cfg, 1)
	if fast.FirstPaint >= slow.FirstPaint {
		t.Fatalf("large head script did not delay paint: %v vs %v", fast.FirstPaint, slow.FirstPaint)
	}
	if fast.PLT >= slow.PLT {
		t.Fatalf("large head script did not delay PLT: %v vs %v", fast.PLT, slow.PLT)
	}
}

func TestExecCostMetadataDelaysLoad(t *testing.T) {
	build := func(execMS float64) *replay.Site {
		b := corpus.NewPage("example.test")
		b.Script("/js/app.js", 10*1024, execMS, true, false)
		b.Text(500)
		return b.Build("exec-cost")
	}
	cfg := DefaultConfig()
	cheap := loadSite(t, build(0), replay.NoPush(), cfg, 1)
	costly := loadSite(t, build(400), replay.NoPush(), cfg, 1)
	dPLT := costly.PLT - cheap.PLT
	if dPLT < 300*time.Millisecond || dPLT > 600*time.Millisecond {
		t.Fatalf("400ms exec cost changed PLT by %v", dPLT)
	}
}

func TestWebfontHiddenText(t *testing.T) {
	// Text using a webfont cannot paint before the font arrives; the
	// font is only discovered after the CSS is parsed.
	b := corpus.NewPage("example.test")
	fontURL := b.Font("/fonts/brand.woff2", 60*1024)
	b.CSS("/css/main.css", corpus.FontFaceCSS("Brand", fontURL)+corpus.SimpleCSS([]string{"x"}, 2))
	b.Text(800, "wf-Brand")
	site := b.Build("font-site")

	noFontSite := func() *replay.Site {
		b := corpus.NewPage("example.test")
		b.CSS("/css/main.css", corpus.SimpleCSS([]string{"x"}, 2))
		b.Text(800)
		return b.Build("plain-site")
	}()

	cfg := DefaultConfig()
	withFont := loadSite(t, site, replay.NoPush(), cfg, 1)
	without := loadSite(t, noFontSite, replay.NoPush(), cfg, 1)
	if withFont.FirstPaint <= without.FirstPaint {
		t.Fatalf("webfont did not delay text paint: %v vs %v", withFont.FirstPaint, without.FirstPaint)
	}
}

func TestPreloadScannerAblation(t *testing.T) {
	// A parser-blocking script in head delays discovery of later
	// resources only when the preload scanner is off.
	b := corpus.NewPage("example.test")
	b.Script("/js/slow.js", 150*1024, 50, true, false)
	b.Image("/img/a.png", 400, 300, 80*1024)
	b.Text(500)
	site := b.Build("scanner-site")

	on := DefaultConfig()
	off := DefaultConfig()
	off.PreloadScanner = false
	withScanner := loadSite(t, site, replay.NoPush(), on, 1)
	withoutScanner := loadSite(t, site, replay.NoPush(), off, 1)
	if withScanner.PLT >= withoutScanner.PLT {
		t.Fatalf("preload scanner did not help: on=%v off=%v", withScanner.PLT, withoutScanner.PLT)
	}
}

func TestPushCSSImprovesFirstPaint(t *testing.T) {
	// CSS referenced in head: pushing it alongside the (large) HTML
	// avoids the discovery round trip.
	build := func() (*replay.Site, string) {
		b := corpus.NewPage("example.test")
		b.CSS("/css/main.css", corpus.SimpleCSS([]string{"hero"}, 100))
		b.Div("hero", 400)
		b.Text(1500)
		b.PadHTML(60 * 1024)
		site := b.Build("push-css")
		return site, "https://example.test/css/main.css"
	}
	site, cssURL := build()
	cfg := DefaultConfig()
	noPush := cfg
	noPush.EnablePush = false

	base := loadSite(t, site, replay.NoPush(), noPush, 1)
	pushed := loadSite(t, site, replay.PushList("https://example.test/", cssURL), cfg, 1)
	if pushed.PushedAccepted != 1 {
		t.Fatalf("PushedAccepted = %d", pushed.PushedAccepted)
	}
	if pushed.FirstPaint >= base.FirstPaint {
		t.Fatalf("pushed CSS did not improve first paint: push=%v nopush=%v",
			pushed.FirstPaint, base.FirstPaint)
	}
}

func TestPushDuplicateCancelled(t *testing.T) {
	// Pushing a resource the preload scanner requests almost instantly:
	// if the request wins, the push is cancelled.
	b := corpus.NewPage("example.test")
	// Reference CSS first thing in head: scanner sees it with the first
	// chunk. Give the push a long HTML prefix so the promise arrives
	// after the request was issued... here instead we push a resource
	// that was already requested by referencing it in the first bytes.
	b.CSS("/css/early.css", corpus.SimpleCSS([]string{"a"}, 5))
	b.Text(100, "a")
	site := b.Build("dup")
	plan := replay.Plan{Push: map[string][]string{
		// Push triggered by the CSS request itself: by then the CSS was
		// obviously requested, making the pushed duplicate of the same
		// CSS cancellable.
		"https://example.test/css/early.css": {"https://example.test/css/early.css"},
	}}
	cfg := DefaultConfig()
	res := loadSite(t, site, plan, cfg, 1)
	if res.PushedCancelled != 1 {
		t.Fatalf("PushedCancelled = %d, want 1 (duplicate push)", res.PushedCancelled)
	}
	if !res.Completed {
		t.Fatal("load incomplete")
	}
}

func TestPushUnusedWastesBytes(t *testing.T) {
	b := corpus.NewPage("example.test")
	b.CSS("/css/main.css", corpus.SimpleCSS([]string{"a"}, 5))
	b.Text(300, "a")
	// An object recorded but never referenced by the page.
	b.Image("/img/used.png", 100, 100, 10*1024)
	site := b.Build("unused")
	site.DB.Add(&replay.Entry{
		URL:         page.URL{Scheme: "https", Authority: "example.test", Path: "/img/never-referenced.png"},
		Status:      200,
		ContentType: "image/png",
		Body:        make([]byte, 50*1024),
	})
	plan := replay.PushList("https://example.test/",
		"https://example.test/img/never-referenced.png")
	res := loadSite(t, site, plan, DefaultConfig(), 1)
	if res.PushedUnused != 1 {
		t.Fatalf("PushedUnused = %d, want 1", res.PushedUnused)
	}
	if res.BytesPushedWasted == 0 {
		t.Fatal("no wasted bytes counted")
	}
}

func TestThirdPartyNeedsOwnConnection(t *testing.T) {
	b := corpus.NewPage("example.test")
	b.CSS("/css/main.css", corpus.SimpleCSS([]string{"a"}, 5))
	b.ScriptOn("cdn.other.test", "/lib.js", 30*1024, 10, true, false)
	b.Text(300, "a")
	site := b.Build("thirdparty")
	res := loadSite(t, site, replay.NoPush(), DefaultConfig(), 1)
	if res.Conns != 2 {
		t.Fatalf("Conns = %d, want 2 (base + third party)", res.Conns)
	}
	if !res.Completed {
		t.Fatal("load incomplete")
	}
}

func TestCoalescedHostsShareConnection(t *testing.T) {
	b := corpus.NewPage("example.test")
	b.CSS("/css/main.css", corpus.SimpleCSS([]string{"a"}, 5))
	b.ImageOn("img.example.test", "/hero.png", 600, 300, 30*1024)
	b.Text(300, "a")
	site := b.Build("coalesce")
	site.MergeHosts("example.test", "img.example.test")
	res := loadSite(t, site, replay.NoPush(), DefaultConfig(), 1)
	if res.Conns != 1 {
		t.Fatalf("Conns = %d, want 1 after host merge", res.Conns)
	}
}

func TestInterleavePushBeatsPlainPushOnLargeHTML(t *testing.T) {
	// The Fig. 5 mechanism: large HTML, CSS in head. Plain push sends
	// the CSS after the whole HTML (child stream); interleaving cuts in
	// after a small offset.
	build := func() *replay.Site {
		b := corpus.NewPage("example.test")
		b.CSS("/css/main.css", corpus.SimpleCSS([]string{"hero"}, 60))
		b.Div("hero", 500)
		b.Text(1200)
		b.PadHTML(150 * 1024)
		return b.Build("interleave")
	}
	base := "https://example.test/"
	cssURL := "https://example.test/css/main.css"
	cfg := DefaultConfig()

	plainPush := loadSite(t, build(), replay.PushList(base, cssURL), cfg, 1)
	interleaved := loadSite(t, build(),
		replay.PushList(base, cssURL).WithInterleave(base, replay.InterleaveSpec{
			OffsetBytes: 4096,
			Critical:    []string{cssURL},
		}), cfg, 1)
	if interleaved.FirstPaint >= plainPush.FirstPaint {
		t.Fatalf("interleaving did not improve first paint: interleave=%v plain=%v",
			interleaved.FirstPaint, plainPush.FirstPaint)
	}
	if interleaved.SpeedIndex >= plainPush.SpeedIndex {
		t.Fatalf("interleaving did not improve SpeedIndex: interleave=%v plain=%v",
			interleaved.SpeedIndex, plainPush.SpeedIndex)
	}
}

func TestHorizonOnMissingResource(t *testing.T) {
	// A page referencing a resource the DB does not contain: the replay
	// server 404s it, so the load still completes (404 body counts as
	// loaded).
	b := corpus.NewPage("example.test")
	b.RawBody("<img src=\"/img/missing.png\" width=\"10\" height=\"10\">\n")
	b.Text(100)
	site := b.Build("missing")
	res := loadSite(t, site, replay.NoPush(), DefaultConfig(), 1)
	if !res.Completed {
		t.Fatal("404 resource blocked onload")
	}
}
