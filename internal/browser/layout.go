package browser

import (
	"strings"

	"repro/internal/cssx"
	"repro/internal/htmlx"
)

// visualUnit is one paintable piece of the page in the block layout
// model: an image or a run of text. Units stack vertically in document
// order; the portion above the fold contributes to visual progress.
// Units are immutable once laid out — they are part of the shared
// prepared page; per-run paint state is the Loader's painted bitset.
type visualUnit struct {
	offset  int     // byte offset in the document (DOM availability)
	area    float64 // above-the-fold area in px^2
	isImage bool
	imgURL  string // for images: the resource that must be loaded
	fontFam string // for text: required webfont family ("" = system font)
}

// layoutResult is the static layout pass over a parsed document.
type layoutResult struct {
	units        []*visualUnit
	totalATFArea float64
	// atfSigs are the selector signatures of above-the-fold elements,
	// the input to critical CSS extraction.
	atfSigs []cssx.ElementSig
	// atfOffsets: largest document offset of an ATF unit — interleave
	// offset heuristics use it.
	lastATFOffset int
}

// webfontFamily extracts the testbed's webfont convention from element
// classes: class "wf-Name" means the text requires font family "Name".
func webfontFamily(classes []string) string {
	for _, c := range classes {
		if strings.HasPrefix(c, "wf-") && len(c) > 3 {
			return c[3:]
		}
	}
	return ""
}

// layout performs the stacking layout: elements in document order, each
// occupying its own height; images use width/height attributes, text
// blocks derive height from character count. ATF = y < viewport height.
func layout(doc *htmlx.Document, viewportW, viewportH int) *layoutResult {
	res := &layoutResult{}
	y := 0
	addUnit := func(u *visualUnit, w, h int) {
		if h <= 0 {
			return
		}
		top, bottom := y, y+h
		y = bottom
		visible := 0
		if top < viewportH {
			visible = minInt(bottom, viewportH) - top
		}
		if visible > 0 {
			if w <= 0 || w > viewportW {
				w = viewportW
			}
			u.area = float64(w * visible)
			res.units = append(res.units, u)
			res.totalATFArea += u.area
			if u.offset > res.lastATFOffset {
				res.lastATFOffset = u.offset
			}
		}
	}
	for i := range doc.Elements {
		el := &doc.Elements[i]
		atfBefore := y < viewportH
		if el.Tag == "img" {
			w, h := el.Width, el.Height
			if w == 0 {
				w = defaultImgEdge
			}
			if h == 0 {
				h = defaultImgEdge
			}
			u := &visualUnit{offset: el.Offset, isImage: true}
			// The image URL is matched later (resources carry offsets too).
			addUnit(u, w, h)
		} else if el.TextLen > 0 {
			lines := (el.TextLen + charsPerLine - 1) / charsPerLine
			u := &visualUnit{
				offset:  el.Offset,
				fontFam: webfontFamily(el.Classes),
			}
			addUnit(u, viewportW, lines*lineHeightPx)
		}
		if atfBefore {
			res.atfSigs = append(res.atfSigs, cssx.ElementSig{
				Tag: el.Tag, ID: el.ID, Classes: el.Classes,
			})
		}
	}
	// Match image units to image resources by offset proximity: the
	// resource reference ends at the same tag end offset.
	imgByOffset := map[int]string{}
	for _, r := range doc.Resources {
		if r.Tag == "img" {
			imgByOffset[r.Offset] = r.URL
		}
	}
	for _, u := range res.units {
		if u.isImage {
			u.imgURL = imgByOffset[u.offset]
		}
	}
	return res
}

// ATFSignatures runs the layout pass and returns the above-the-fold
// element signatures — the strategy layer uses this for critical CSS
// extraction without running a page load.
func ATFSignatures(html []byte, viewportW, viewportH int) []cssx.ElementSig {
	return layout(htmlx.Parse(html), viewportW, viewportH).atfSigs
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
