// Package cssx is a pragmatic CSS parser for the testbed: it extracts
// rules with their selectors and declarations, @font-face sources,
// @import references and url() assets, and implements critical-CSS
// extraction against a set of above-the-fold elements — the substitute
// for the penthouse tool the paper uses for its "optimized" strategies.
package cssx

import (
	"bytes"
	"strings"
)

// Rule is one style rule: selectors and raw declaration block.
type Rule struct {
	Selectors []string
	Body      string // declarations without braces
	// Media is the enclosing @media condition, empty at top level.
	Media string
}

// FontFace is an @font-face at-rule.
type FontFace struct {
	Family string
	URL    string
	Body   string
}

// Stylesheet is a parsed CSS file.
type Stylesheet struct {
	Rules     []Rule
	FontFaces []FontFace
	Imports   []string // @import URLs
	AssetURLs []string // url(...) references from declarations (images)
}

// Parse tokenizes CSS source. It tolerates the usual real-world noise
// (comments, stray semicolons) and recurses one level into @media blocks.
//
// The source is taken as a byte slice and is only read, never retained
// or mutated: every string the Stylesheet carries is a fresh copy of the
// retained fragment, so callers may pass transport buffers (or recorded
// response bodies) directly without an up-front []byte -> string copy of
// the whole sheet.
func Parse(src []byte) *Stylesheet {
	s := &Stylesheet{}
	parseBlock(stripComments(src), "", s)
	return s
}

// ParseString is Parse for callers that hold the source as a string.
func ParseString(src string) *Stylesheet { return Parse([]byte(src)) }

// stripComments removes /* */ comments. Comment-free input (the common
// case for generated and minified sheets) is returned as-is, without a
// copy; otherwise a compacted copy is built.
func stripComments(s []byte) []byte {
	i := bytes.Index(s, []byte("/*"))
	if i < 0 {
		return s
	}
	var b bytes.Buffer
	b.Grow(len(s))
	for {
		b.Write(s[:i])
		j := bytes.Index(s[i+2:], []byte("*/"))
		if j < 0 {
			return b.Bytes()
		}
		s = s[i+2+j+2:]
		i = bytes.Index(s, []byte("/*"))
		if i < 0 {
			b.Write(s)
			return b.Bytes()
		}
	}
}

func parseBlock(src []byte, media string, out *Stylesheet) {
	pos := 0
	for pos < len(src) {
		// Skip whitespace and stray semicolons.
		for pos < len(src) && (src[pos] == ' ' || src[pos] == '\n' || src[pos] == '\t' || src[pos] == '\r' || src[pos] == ';') {
			pos++
		}
		if pos >= len(src) {
			return
		}
		if src[pos] == '@' {
			pos = parseAtRule(src, pos, media, out)
			continue
		}
		// Ordinary rule: selector { body }
		open := bytes.IndexByte(src[pos:], '{')
		if open < 0 {
			return
		}
		selText := strings.TrimSpace(string(src[pos : pos+open]))
		bodyStart := pos + open + 1
		bodyEnd := matchBrace(src, pos+open)
		if bodyEnd < 0 {
			return
		}
		body := strings.TrimSpace(string(src[bodyStart:bodyEnd]))
		var sels []string
		for _, s := range strings.Split(selText, ",") {
			if s = strings.TrimSpace(s); s != "" {
				sels = append(sels, s)
			}
		}
		if len(sels) > 0 {
			out.Rules = append(out.Rules, Rule{Selectors: sels, Body: body, Media: media})
			out.AssetURLs = append(out.AssetURLs, extractURLs(body)...)
		}
		pos = bodyEnd + 1
	}
}

// parseAtRule handles @media, @font-face, @import and skips the rest.
func parseAtRule(src []byte, pos int, media string, out *Stylesheet) int {
	nameEnd := pos + 1
	for nameEnd < len(src) && isIdent(src[nameEnd]) {
		nameEnd++
	}
	name := strings.ToLower(string(src[pos+1 : nameEnd]))
	switch name {
	case "import":
		semi := bytes.IndexByte(src[nameEnd:], ';')
		if semi < 0 {
			return len(src)
		}
		arg := strings.TrimSpace(string(src[nameEnd : nameEnd+semi]))
		if u := parseImportURL(arg); u != "" {
			out.Imports = append(out.Imports, u)
		}
		return nameEnd + semi + 1
	case "font-face":
		open := bytes.IndexByte(src[nameEnd:], '{')
		if open < 0 {
			return len(src)
		}
		end := matchBrace(src, nameEnd+open)
		if end < 0 {
			return len(src)
		}
		body := string(src[nameEnd+open+1 : end])
		ff := FontFace{Body: strings.TrimSpace(body)}
		for _, decl := range strings.Split(body, ";") {
			k, v, ok := strings.Cut(decl, ":")
			if !ok {
				continue
			}
			switch strings.TrimSpace(strings.ToLower(k)) {
			case "font-family":
				ff.Family = strings.Trim(strings.TrimSpace(v), `"'`)
			case "src":
				if urls := extractURLs(v); len(urls) > 0 {
					ff.URL = urls[0]
				}
			}
		}
		out.FontFaces = append(out.FontFaces, ff)
		return end + 1
	case "media":
		open := bytes.IndexByte(src[nameEnd:], '{')
		if open < 0 {
			return len(src)
		}
		cond := strings.TrimSpace(string(src[nameEnd : nameEnd+open]))
		end := matchBrace(src, nameEnd+open)
		if end < 0 {
			return len(src)
		}
		inner := src[nameEnd+open+1 : end]
		parseBlock(inner, cond, out)
		return end + 1
	default:
		// @keyframes, @supports, ... : skip the block or statement.
		open := bytes.IndexByte(src[nameEnd:], '{')
		semi := bytes.IndexByte(src[nameEnd:], ';')
		if semi >= 0 && (open < 0 || semi < open) {
			return nameEnd + semi + 1
		}
		if open < 0 {
			return len(src)
		}
		end := matchBrace(src, nameEnd+open)
		if end < 0 {
			return len(src)
		}
		return end + 1
	}
}

func isIdent(b byte) bool {
	return b >= 'a' && b <= 'z' || b >= 'A' && b <= 'Z' || b == '-'
}

// matchBrace returns the index of the '}' matching the '{' at src[open].
func matchBrace(src []byte, open int) int {
	depth := 0
	for i := open; i < len(src); i++ {
		switch src[i] {
		case '{':
			depth++
		case '}':
			depth--
			if depth == 0 {
				return i
			}
		}
	}
	return -1
}

func parseImportURL(arg string) string {
	arg = strings.TrimSpace(arg)
	if urls := extractURLs(arg); len(urls) > 0 {
		return urls[0]
	}
	return strings.Trim(arg, `"'`)
}

// extractURLs pulls url(...) references out of declaration text.
func extractURLs(s string) []string {
	var out []string
	for {
		i := strings.Index(s, "url(")
		if i < 0 {
			return out
		}
		s = s[i+4:]
		j := strings.IndexByte(s, ')')
		if j < 0 {
			return out
		}
		u := strings.Trim(strings.TrimSpace(s[:j]), `"'`)
		if u != "" && !strings.HasPrefix(u, "data:") {
			out = append(out, u)
		}
		s = s[j+1:]
	}
}

// Serialize renders rules back to CSS text.
func Serialize(rules []Rule, fontFaces []FontFace) string {
	var b strings.Builder
	var curMedia string
	closeMedia := func() {
		if curMedia != "" {
			b.WriteString("}\n")
			curMedia = ""
		}
	}
	for _, ff := range fontFaces {
		b.WriteString("@font-face{")
		b.WriteString(ff.Body)
		b.WriteString("}\n")
	}
	for _, r := range rules {
		if r.Media != curMedia {
			closeMedia()
			if r.Media != "" {
				b.WriteString("@media ")
				b.WriteString(r.Media)
				b.WriteString("{\n")
				curMedia = r.Media
			}
		}
		b.WriteString(strings.Join(r.Selectors, ","))
		b.WriteString("{")
		b.WriteString(r.Body)
		b.WriteString("}\n")
	}
	closeMedia()
	return b.String()
}
