package cssx

import "strings"

// ElementSig is the selector-relevant signature of a DOM element used for
// critical-CSS matching: its tag plus id and classes.
type ElementSig struct {
	Tag     string
	ID      string
	Classes []string
}

func (e ElementSig) hasClass(c string) bool {
	for _, x := range e.Classes {
		if x == c {
			return true
		}
	}
	return false
}

// compound is a parsed simple-selector compound (the rightmost part of a
// complex selector), e.g. "div.hero#main".
type compound struct {
	tag     string
	id      string
	classes []string
	univ    bool // *
}

// parseRightmostCompound extracts the rightmost compound of a complex
// selector, ignoring combinators and pseudo-classes/elements.
func parseRightmostCompound(sel string) compound {
	sel = strings.TrimSpace(sel)
	// Split on combinators; take the last part.
	last := sel
	for _, comb := range []string{" ", ">", "+", "~"} {
		if i := strings.LastIndex(last, comb); i >= 0 {
			last = last[i+len(comb):]
		}
	}
	last = strings.TrimSpace(last)
	// Strip pseudo (":hover", "::before") and attribute selectors.
	if i := strings.IndexByte(last, ':'); i >= 0 {
		last = last[:i]
	}
	if i := strings.IndexByte(last, '['); i >= 0 {
		last = last[:i]
	}
	var c compound
	for len(last) > 0 {
		switch last[0] {
		case '*':
			c.univ = true
			last = last[1:]
		case '.':
			last = last[1:]
			n := identLen(last)
			c.classes = append(c.classes, last[:n])
			last = last[n:]
		case '#':
			last = last[1:]
			n := identLen(last)
			c.id = last[:n]
			last = last[n:]
		default:
			n := identLen(last)
			if n == 0 {
				return c
			}
			c.tag = strings.ToLower(last[:n])
			last = last[n:]
		}
	}
	return c
}

func identLen(s string) int {
	i := 0
	for i < len(s) {
		b := s[i]
		if b >= 'a' && b <= 'z' || b >= 'A' && b <= 'Z' || b >= '0' && b <= '9' || b == '-' || b == '_' {
			i++
		} else {
			break
		}
	}
	return i
}

// matches reports whether the compound can match the element.
func (c compound) matches(e ElementSig) bool {
	if c.tag != "" && c.tag != strings.ToLower(e.Tag) {
		return false
	}
	if c.id != "" && c.id != e.ID {
		return false
	}
	for _, cl := range c.classes {
		if cl == "" || !e.hasClass(cl) {
			return false
		}
	}
	// A bare universal or empty compound matches anything.
	return true
}

// CriticalResult is the output of ExtractCritical.
type CriticalResult struct {
	// CSS is the serialized critical stylesheet.
	CSS string
	// Rules are the retained rules.
	Rules []Rule
	// FontFaces retained because an ATF rule references their family.
	FontFaces []FontFace
	// KeptBytes / TotalBytes measure the reduction.
	KeptBytes, TotalBytes int
}

// ExtractCritical computes the critical CSS of sheet for the given
// above-the-fold elements: every rule whose rightmost compound selector
// can match an ATF element is retained, as are @font-face rules whose
// family is used by a retained rule. This mirrors what penthouse does
// with a real render: the paper inlines the result in <head> and moves
// the full stylesheets to the end of <body>.
func ExtractCritical(sheet *Stylesheet, atf []ElementSig) CriticalResult {
	var res CriticalResult
	usedFamilies := map[string]bool{}
	for _, r := range sheet.Rules {
		res.TotalBytes += ruleBytes(r)
		// Print-only media never matters for first paint.
		if strings.Contains(r.Media, "print") {
			continue
		}
		kept := false
		for _, sel := range r.Selectors {
			cp := parseRightmostCompound(sel)
			for _, e := range atf {
				if cp.matches(e) {
					kept = true
					break
				}
			}
			if kept {
				break
			}
		}
		if !kept {
			continue
		}
		res.Rules = append(res.Rules, r)
		res.KeptBytes += ruleBytes(r)
		for _, decl := range strings.Split(r.Body, ";") {
			k, v, ok := strings.Cut(decl, ":")
			if !ok {
				continue
			}
			if strings.TrimSpace(strings.ToLower(k)) == "font-family" {
				for _, fam := range strings.Split(v, ",") {
					usedFamilies[strings.Trim(strings.TrimSpace(fam), `"'`)] = true
				}
			}
		}
	}
	for _, ff := range sheet.FontFaces {
		res.TotalBytes += len(ff.Body) + 14
		if usedFamilies[ff.Family] {
			res.FontFaces = append(res.FontFaces, ff)
			res.KeptBytes += len(ff.Body) + 14
		}
	}
	res.CSS = Serialize(res.Rules, res.FontFaces)
	return res
}

func ruleBytes(r Rule) int {
	n := len(r.Body) + 2
	for _, s := range r.Selectors {
		n += len(s) + 1
	}
	return n
}
