package cssx

import (
	"strings"
	"testing"
)

const sampleCSS = `
/* reset */
body { margin: 0; padding: 0; }
.hero, .banner { background: url("/img/bg.jpg") no-repeat; height: 400px; }
#nav > ul li a:hover { color: blue; }
p.intro { font-family: "BrandFont", sans-serif; font-size: 16px; }
@font-face {
  font-family: "BrandFont";
  src: url(/fonts/brand.woff2) format("woff2");
}
@import url("/css/extra.css");
@media (max-width: 600px) {
  .hero { height: 200px; }
  .mobile-only { display: block; }
}
@media print {
  body { color: black; }
}
@keyframes spin { from { transform: rotate(0); } to { transform: rotate(360deg); } }
.footer { background-image: url('/img/footer-decor.png'); }
`

func TestParseRules(t *testing.T) {
	s := Parse([]byte(sampleCSS))
	if len(s.Rules) < 7 {
		t.Fatalf("parsed %d rules, want >= 7", len(s.Rules))
	}
	// First rule.
	if s.Rules[0].Selectors[0] != "body" || !strings.Contains(s.Rules[0].Body, "margin: 0") {
		t.Errorf("rule 0 = %+v", s.Rules[0])
	}
	// Multi-selector rule.
	var hero *Rule
	for i := range s.Rules {
		if s.Rules[i].Selectors[0] == ".hero" && s.Rules[i].Media == "" {
			hero = &s.Rules[i]
		}
	}
	if hero == nil || len(hero.Selectors) != 2 || hero.Selectors[1] != ".banner" {
		t.Fatalf("hero rule = %+v", hero)
	}
}

func TestParseMediaBlocks(t *testing.T) {
	s := Parse([]byte(sampleCSS))
	var mobile, print int
	for _, r := range s.Rules {
		if strings.Contains(r.Media, "max-width") {
			mobile++
		}
		if strings.Contains(r.Media, "print") {
			print++
		}
	}
	if mobile != 2 {
		t.Errorf("mobile rules = %d, want 2", mobile)
	}
	if print != 1 {
		t.Errorf("print rules = %d, want 1", print)
	}
}

func TestParseFontFace(t *testing.T) {
	s := Parse([]byte(sampleCSS))
	if len(s.FontFaces) != 1 {
		t.Fatalf("font faces = %d", len(s.FontFaces))
	}
	ff := s.FontFaces[0]
	if ff.Family != "BrandFont" || ff.URL != "/fonts/brand.woff2" {
		t.Fatalf("font face = %+v", ff)
	}
}

func TestParseImportsAndAssets(t *testing.T) {
	s := Parse([]byte(sampleCSS))
	if len(s.Imports) != 1 || s.Imports[0] != "/css/extra.css" {
		t.Fatalf("imports = %v", s.Imports)
	}
	assets := map[string]bool{}
	for _, u := range s.AssetURLs {
		assets[u] = true
	}
	if !assets["/img/bg.jpg"] || !assets["/img/footer-decor.png"] {
		t.Fatalf("assets = %v", s.AssetURLs)
	}
}

func TestParseMalformedNoPanic(t *testing.T) {
	for _, in := range []string{
		"", "{", "}", "a{", "a{b", "@media{", "@import", "@font-face{src:url(",
		"/* unterminated", "a{b:c;;;}d{}", "@unknown stuff;",
	} {
		if s := ParseString(in); s == nil {
			t.Fatalf("Parse(%q) = nil", in)
		}
	}
}

func atfSample() []ElementSig {
	return []ElementSig{
		{Tag: "body"},
		{Tag: "div", Classes: []string{"hero"}},
		{Tag: "p", Classes: []string{"intro"}},
		{Tag: "nav", ID: "nav"},
	}
}

func TestExtractCriticalKeepsMatchingRules(t *testing.T) {
	s := Parse([]byte(sampleCSS))
	res := ExtractCritical(s, atfSample())
	css := res.CSS
	if !strings.Contains(css, ".hero") {
		t.Error("hero rule dropped")
	}
	if !strings.Contains(css, "body{") && !strings.Contains(css, "body {") {
		t.Error("body rule dropped")
	}
	if strings.Contains(css, ".footer") {
		t.Error("footer rule kept although not ATF")
	}
	if strings.Contains(css, ".mobile-only") {
		t.Error("non-matching mobile rule kept")
	}
	if strings.Contains(css, "print") {
		t.Error("print rule kept")
	}
}

func TestExtractCriticalKeepsUsedFontFaces(t *testing.T) {
	s := Parse([]byte(sampleCSS))
	res := ExtractCritical(s, atfSample())
	if len(res.FontFaces) != 1 {
		t.Fatalf("font faces kept = %d, want 1 (p.intro uses BrandFont)", len(res.FontFaces))
	}
	// Without the intro paragraph ATF, the font-face must be dropped.
	res2 := ExtractCritical(s, []ElementSig{{Tag: "div", Classes: []string{"hero"}}})
	if len(res2.FontFaces) != 0 {
		t.Fatalf("font face kept without any ATF user")
	}
}

func TestExtractCriticalReducesSize(t *testing.T) {
	s := Parse([]byte(sampleCSS))
	res := ExtractCritical(s, []ElementSig{{Tag: "div", Classes: []string{"hero"}}})
	if res.KeptBytes >= res.TotalBytes {
		t.Fatalf("no reduction: kept %d of %d", res.KeptBytes, res.TotalBytes)
	}
	if res.KeptBytes == 0 {
		t.Fatal("nothing kept")
	}
}

func TestRightmostCompoundParsing(t *testing.T) {
	cases := []struct {
		sel  string
		tag  string
		id   string
		ncls int
	}{
		{"div.hero", "div", "", 1},
		{"#nav > ul li a:hover", "a", "", 0},
		{"body", "body", "", 0},
		{".a.b.c", "", "", 3},
		{"header #logo", "", "logo", 0},
		{"*", "", "", 0},
		{"p::before", "p", "", 0},
		{"input[type=text]", "input", "", 0},
	}
	for _, tc := range cases {
		c := parseRightmostCompound(tc.sel)
		if c.tag != tc.tag || c.id != tc.id || len(c.classes) != tc.ncls {
			t.Errorf("parseRightmostCompound(%q) = %+v, want tag=%q id=%q classes=%d",
				tc.sel, c, tc.tag, tc.id, tc.ncls)
		}
	}
}

func TestCompoundMatching(t *testing.T) {
	el := ElementSig{Tag: "div", ID: "main", Classes: []string{"hero", "big"}}
	match := []string{"div", ".hero", ".big.hero", "#main", "div#main.hero", "*"}
	noMatch := []string{"span", ".other", "#other", "div.hero.missing"}
	for _, sel := range match {
		if !parseRightmostCompound(sel).matches(el) {
			t.Errorf("%q should match %+v", sel, el)
		}
	}
	for _, sel := range noMatch {
		if parseRightmostCompound(sel).matches(el) {
			t.Errorf("%q should not match %+v", sel, el)
		}
	}
}

func TestSerializeRoundTrip(t *testing.T) {
	s := Parse([]byte(sampleCSS))
	out := Serialize(s.Rules, s.FontFaces)
	s2 := Parse([]byte(out))
	if len(s2.Rules) != len(s.Rules) {
		t.Fatalf("reparse: %d rules, want %d", len(s2.Rules), len(s.Rules))
	}
	if len(s2.FontFaces) != len(s.FontFaces) {
		t.Fatalf("reparse: %d font faces, want %d", len(s2.FontFaces), len(s.FontFaces))
	}
	// Media assignment survives.
	var mobile int
	for _, r := range s2.Rules {
		if strings.Contains(r.Media, "max-width") {
			mobile++
		}
	}
	if mobile != 2 {
		t.Fatalf("reparse mobile rules = %d", mobile)
	}
}
