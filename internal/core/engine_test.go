package core

import (
	"sync"
	"testing"

	"repro/internal/corpus"
	"repro/internal/replay"
	"repro/internal/strategy"
)

func TestForEachCoversAllIndices(t *testing.T) {
	for _, jobs := range []int{1, 2, 7, 0} {
		hits := make([]int, 100)
		forEach(len(hits), jobs, func(i int) { hits[i]++ })
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("jobs=%d: index %d executed %d times", jobs, i, h)
			}
		}
	}
}

// TestEvaluateParallelMatchesSequential is the engine's core contract: a
// parallel evaluation must be indistinguishable from the sequential one,
// down to the order of the collected per-run samples.
func TestEvaluateParallelMatchesSequential(t *testing.T) {
	site := corpus.Generate(corpus.RandomProfile(), 4, 5)
	seq := NewTestbed()
	seq.Runs = 5
	seq.Jobs = 1
	par := NewTestbed()
	par.Runs = 5
	par.Jobs = 4
	evSeq := seq.Evaluate(site, replay.NoPush(), "x")
	evPar := par.Evaluate(site, replay.NoPush(), "x")
	if evSeq.MedianPLT != evPar.MedianPLT || evSeq.MedianSI != evPar.MedianSI ||
		evSeq.BytesPushed != evPar.BytesPushed || evSeq.Completed != evPar.Completed {
		t.Fatalf("summary diverged: %+v vs %+v", evSeq, evPar)
	}
	for i := range evSeq.PLT.Values {
		if evSeq.PLT.Values[i] != evPar.PLT.Values[i] {
			t.Fatalf("run %d PLT diverged: %v vs %v", i, evSeq.PLT.Values[i], evPar.PLT.Values[i])
		}
	}
}

// TestExperimentTablesParallelMatchSequential renders full experiment
// tables through the sequential (Jobs=1) and parallel (Jobs=4) engine
// and requires byte-identical output.
func TestExperimentTablesParallelMatchSequential(t *testing.T) {
	seq := ExperimentScale{Sites: 3, Runs: 3, Seed: 1, Jobs: 1}
	par := seq
	par.Jobs = 4
	for _, tc := range []struct {
		name string
		run  func(ExperimentScale) *Table
	}{
		{"fig2b", Fig2bPushVsNoPush},
		{"fig6", func(sc ExperimentScale) *Table {
			return Fig6Popular([]string{"w1", "w2"}, sc)
		}},
		{"fig5", func(sc ExperimentScale) *Table {
			return Fig5Interleaving(sc.Runs, sc.Seed, sc.Jobs)
		}},
	} {
		a := tc.run(seq).String()
		b := tc.run(par).String()
		if a != b {
			t.Errorf("%s: parallel table differs from sequential:\n--- jobs=1 ---\n%s--- jobs=4 ---\n%s", tc.name, a, b)
		}
	}
}

// TestTraceParallelMatchesSequential checks the dependency-tracing step
// records identical request orders under the pool.
func TestTraceParallelMatchesSequential(t *testing.T) {
	site := corpus.Generate(corpus.RandomProfile(), 6, 5)
	seq := NewTestbed()
	seq.Jobs = 1
	par := NewTestbed()
	par.Jobs = 3
	a := seq.Trace(site, 4)
	b := par.Trace(site, 4)
	if len(a.Orders) != len(b.Orders) {
		t.Fatalf("order counts: %d vs %d", len(a.Orders), len(b.Orders))
	}
	for i := range a.Orders {
		if len(a.Orders[i]) != len(b.Orders[i]) {
			t.Fatalf("order %d lengths differ", i)
		}
		for j := range a.Orders[i] {
			if a.Orders[i][j] != b.Orders[i][j] {
				t.Fatalf("order %d diverged at %d: %q vs %q", i, j, a.Orders[i][j], b.Orders[i][j])
			}
		}
	}
}

// TestEvaluateStrategyConcurrentSafe evaluates push and no-push
// strategies concurrently on one shared Testbed; under -race this fails
// if EvaluateStrategy still mutates the receiver.
func TestEvaluateStrategyConcurrentSafe(t *testing.T) {
	site := corpus.SyntheticSites()[1] // s2: small single-server blog
	tb := NewTestbed()
	tb.Runs = 2
	strategies := []strategy.Strategy{
		strategy.NoPush{}, strategy.PushAll{}, strategy.NoPush{}, strategy.PushAll{},
	}
	evs := make([]*Evaluation, len(strategies))
	var wg sync.WaitGroup
	for i, st := range strategies {
		wg.Add(1)
		go func() {
			defer wg.Done()
			evs[i] = tb.EvaluateStrategy(site, st, nil)
		}()
	}
	wg.Wait()
	if evs[0].BytesPushed != 0 || evs[2].BytesPushed != 0 {
		t.Fatal("no-push evaluation pushed bytes: receiver config leaked across goroutines")
	}
	if evs[1].BytesPushed == 0 || evs[3].BytesPushed == 0 {
		t.Fatal("push-all evaluation pushed nothing")
	}
	if !tb.Browser.EnablePush {
		t.Fatal("shared testbed config was mutated")
	}
}
