package core

import (
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/corpus"
	"repro/internal/replay"
	"repro/internal/strategy"
)

func TestForEachCoversAllIndices(t *testing.T) {
	for _, jobs := range []int{1, 2, 7, 0} {
		hits := make([]int, 100)
		forEach(len(hits), jobs, func(i int) { hits[i]++ })
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("jobs=%d: index %d executed %d times", jobs, i, h)
			}
		}
	}
}

// TestEvaluateParallelMatchesSequential is the engine's core contract: a
// parallel evaluation must be indistinguishable from the sequential one,
// down to the order of the collected per-run samples.
func TestEvaluateParallelMatchesSequential(t *testing.T) {
	site := corpus.Generate(corpus.RandomProfile(), 4, 5)
	seq := NewTestbed()
	seq.Runs = 5
	seq.Jobs = 1
	par := NewTestbed()
	par.Runs = 5
	par.Jobs = 4
	evSeq := seq.Evaluate(site, replay.NoPush(), "x")
	evPar := par.Evaluate(site, replay.NoPush(), "x")
	if evSeq.MedianPLT != evPar.MedianPLT || evSeq.MedianSI != evPar.MedianSI ||
		evSeq.BytesPushed != evPar.BytesPushed || evSeq.Completed != evPar.Completed {
		t.Fatalf("summary diverged: %+v vs %+v", evSeq, evPar)
	}
	for i := range evSeq.PLT.Values {
		if evSeq.PLT.Values[i] != evPar.PLT.Values[i] {
			t.Fatalf("run %d PLT diverged: %v vs %v", i, evSeq.PLT.Values[i], evPar.PLT.Values[i])
		}
	}
}

// TestExperimentTablesParallelMatchSequential renders full experiment
// tables through the sequential (Jobs=1) and parallel (Jobs=4) engine
// and requires byte-identical output.
func TestExperimentTablesParallelMatchSequential(t *testing.T) {
	seq := ExperimentScale{Sites: 3, Runs: 3, Seed: 1, Jobs: 1}
	par := seq
	par.Jobs = 4
	for _, tc := range []struct {
		name string
		run  func(ExperimentScale) (*Table, error)
	}{
		{"fig2b", Fig2bPushVsNoPush},
		{"fig6", func(sc ExperimentScale) (*Table, error) {
			return Fig6Popular([]string{"w1", "w2"}, sc)
		}},
		{"fig5", Fig5Interleaving},
	} {
		ta, err := tc.run(seq)
		if err != nil {
			t.Fatalf("%s sequential: %v", tc.name, err)
		}
		tb, err := tc.run(par)
		if err != nil {
			t.Fatalf("%s parallel: %v", tc.name, err)
		}
		a, b := ta.String(), tb.String()
		if a != b {
			t.Errorf("%s: parallel table differs from sequential:\n--- jobs=1 ---\n%s--- jobs=4 ---\n%s", tc.name, a, b)
		}
	}
}

// TestTraceParallelMatchesSequential checks the dependency-tracing step
// records identical request orders under the pool.
func TestTraceParallelMatchesSequential(t *testing.T) {
	site := corpus.Generate(corpus.RandomProfile(), 6, 5)
	seq := NewTestbed()
	seq.Jobs = 1
	par := NewTestbed()
	par.Jobs = 3
	a := seq.Trace(site, 4)
	b := par.Trace(site, 4)
	if len(a.Orders) != len(b.Orders) {
		t.Fatalf("order counts: %d vs %d", len(a.Orders), len(b.Orders))
	}
	for i := range a.Orders {
		if len(a.Orders[i]) != len(b.Orders[i]) {
			t.Fatalf("order %d lengths differ", i)
		}
		for j := range a.Orders[i] {
			if a.Orders[i][j] != b.Orders[i][j] {
				t.Fatalf("order %d diverged at %d: %q vs %q", i, j, a.Orders[i][j], b.Orders[i][j])
			}
		}
	}
}

// TestEvaluateStrategyConcurrentSafe evaluates push and no-push
// strategies concurrently on one shared Testbed; under -race this fails
// if EvaluateStrategy still mutates the receiver.
func TestEvaluateStrategyConcurrentSafe(t *testing.T) {
	site := corpus.SyntheticSites()[1] // s2: small single-server blog
	tb := NewTestbed()
	tb.Runs = 2
	strategies := []strategy.Strategy{
		strategy.NoPush{}, strategy.PushAll{}, strategy.NoPush{}, strategy.PushAll{},
	}
	evs := make([]*Evaluation, len(strategies))
	var wg sync.WaitGroup
	for i, st := range strategies {
		wg.Add(1)
		go func() {
			defer wg.Done()
			evs[i] = tb.EvaluateStrategy(site, st, nil)
		}()
	}
	wg.Wait()
	if evs[0].BytesPushed != 0 || evs[2].BytesPushed != 0 {
		t.Fatal("no-push evaluation pushed bytes: receiver config leaked across goroutines")
	}
	if evs[1].BytesPushed == 0 || evs[3].BytesPushed == 0 {
		t.Fatal("push-all evaluation pushed nothing")
	}
	if !tb.Browser.EnablePush {
		t.Fatal("shared testbed config was mutated")
	}
}

// TestCollectWithWorkerContextsParallel pins the engine's context contract:
// every worker receives exactly one context (created with its worker
// index) and no context is ever touched by two goroutines at once.
func TestCollectWithWorkerContextsParallel(t *testing.T) {
	type ctx struct {
		worker int
		inUse  atomic.Bool
		units  int
	}
	for _, jobs := range []int{1, 3, 8} {
		var mu sync.Mutex
		var made []*ctx
		out := collectWith(40, jobs, func(worker int) *ctx {
			c := &ctx{worker: worker}
			mu.Lock()
			made = append(made, c)
			mu.Unlock()
			return c
		}, func(c *ctx, i int) int {
			if !c.inUse.CompareAndSwap(false, true) {
				t.Error("context used concurrently by two workers")
			}
			c.units++
			c.inUse.Store(false)
			return i * i
		})
		for i, v := range out {
			if v != i*i {
				t.Fatalf("jobs=%d: slot %d = %d", jobs, i, v)
			}
		}
		workers := jobCount(jobs)
		if workers > 40 {
			workers = 40
		}
		if len(made) > workers {
			t.Fatalf("jobs=%d: %d contexts created for %d workers", jobs, len(made), workers)
		}
		total := 0
		seen := map[int]bool{}
		for _, c := range made {
			if seen[c.worker] {
				t.Fatalf("jobs=%d: worker index %d used twice", jobs, c.worker)
			}
			seen[c.worker] = true
			total += c.units
		}
		if total != 40 {
			t.Fatalf("jobs=%d: contexts executed %d units, want 40", jobs, total)
		}
	}
}

// TestRunOnceWithMatchesRunOnce pins context reuse at the testbed
// level: repeated runs on one warm RunContext yield the same scalar
// results as throwaway-context runs, for a scenario with third-party
// overlay scaling (the internet scenario) and for the plain testbed.
func TestRunOnceWithMatchesRunOnce(t *testing.T) {
	site := corpus.Generate(corpus.RandomProfile(), 3, 4)
	for _, mode := range []Mode{ModeTestbed, ModeInternet} {
		tb := NewTestbed()
		tb.SetMode(mode)
		rc := NewRunContext()
		for run := 0; run < 4; run++ {
			fresh := tb.RunOnce(site, replay.NoPush(), run)
			warm := tb.RunOnceWith(rc, site, replay.NoPush(), run)
			if warm.PLT != fresh.PLT || warm.SpeedIndex != fresh.SpeedIndex ||
				warm.Completed != fresh.Completed || warm.Requests != fresh.Requests ||
				warm.WireBytesPushed != fresh.WireBytesPushed {
				t.Fatalf("mode %v run %d: warm context diverged: %+v vs %+v", mode, run, warm.Result, fresh.Result)
			}
		}
	}
}
