package core

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/corpus"
	"repro/internal/replay"
	"repro/internal/scenario"
	"repro/internal/strategy"
)

// fingerprint serializes everything a run produces — every resource
// timing, every progress point, the page metrics and the wire-level
// push stats — so two runs compare byte-for-byte, not just on medians.
func fingerprint(r *RunResult) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "plt=%v si=%v fp=%v vc=%v onload=%v conn=%v done=%v\n",
		r.PLT, r.SpeedIndex, r.FirstPaint, r.VisuallyComplete, r.OnLoadAt, r.ConnectEnd, r.Completed)
	fmt.Fprintf(&sb, "req=%d conns=%d pacc=%d pcan=%d punused=%d bused=%d bwaste=%d wireB=%d wireN=%d\n",
		r.Requests, r.Conns, r.PushedAccepted, r.PushedCancelled, r.PushedUnused,
		r.BytesPushedUsed, r.BytesPushedWasted, r.WireBytesPushed, r.WirePushCount)
	for _, tm := range r.Timings {
		fmt.Fprintf(&sb, "t %s %v %v %d push=%v\n", tm.URL, tm.Start, tm.End, tm.Bytes, tm.Pushed)
	}
	for _, p := range r.Progress {
		fmt.Fprintf(&sb, "p %v %.6f\n", p.T, p.Fraction)
	}
	return sb.String()
}

// applyStrategy mirrors EvaluateStrategy's per-strategy setup without
// the aggregation: it returns the rewritten site, the plan, and a
// testbed copy with push disabled for the no-push baselines.
func applyStrategy(tb *Testbed, site *replay.Site, st strategy.Strategy, tr *strategy.Trace) (*Testbed, *replay.Site, replay.Plan) {
	runSite, plan := st.Apply(site, tr)
	run := *tb
	switch st.(type) {
	case strategy.NoPush, strategy.NoPushOptimized:
		run.Browser.EnablePush = false
	}
	return &run, runSite, plan
}

// TestForkMatchesFresh is the tentpole's non-negotiable: for every
// strategy, every run resumed from a checkpointed prefix must produce a
// trace byte-identical to the same run simulated from scratch. It
// covers a loss-free scenario (cross-seed prefix reuse via RNG rewind)
// and a lossy one (same-seed reuse only).
func TestForkMatchesFresh(t *testing.T) {
	sat, err := scenario.ByName("satellite")
	if err != nil {
		t.Fatal(err)
	}
	sites := corpus.GenerateSet(corpus.RandomProfile(), 2, 1)
	ResetForkStats()
	for _, scn := range []scenario.Scenario{scenario.DSL(), sat} {
		for si, site := range sites {
			base := NewTestbed()
			base.Scenario = scn
			base.Runs = 3
			base.Jobs = 1

			fresh := *base
			fresh.NoFork = true
			rcFresh := NewRunContext()
			rcFork := newForkContext()

			tr := fresh.Trace(site, 2)
			for _, st := range PopularStrategies() {
				tbA, siteA, planA := applyStrategy(&fresh, site, st, tr)
				tbB, siteB, planB := applyStrategy(base, site, st, tr)
				for run := 0; run < 3; run++ {
					want := fingerprint(tbA.RunOnceWith(rcFresh, siteA, planA, run))
					got := fingerprint(tbB.RunOnceWith(rcFork, siteB, planB, run))
					if got != want {
						t.Fatalf("%s/site%d/%s run %d: forked trace diverged from fresh\nfresh:\n%s\nfork:\n%s",
							scn.Name, si, st.Name(), run, want, got)
					}
				}
			}
		}
	}
	stats := ReadForkStats()
	if stats.Hits == 0 {
		t.Fatalf("fork never hit a checkpoint: %+v", stats)
	}
	if stats.Prefixes == 0 {
		t.Fatalf("fork never captured a prefix: %+v", stats)
	}
}

// TestForkDivergenceDetection pins the divergence-point contract: a
// strategy that changes the connection handshake itself (SETTINGS:
// push disabled) diverges before the checkpoint, so it must not share
// the push-enabled prefix — it gets its own — and both still match the
// no-fork simulation exactly.
func TestForkDivergenceDetection(t *testing.T) {
	site := corpus.GenerateSet(corpus.RandomProfile(), 1, 7)[0]
	tb := NewTestbed()
	tb.Runs = 3
	tb.Jobs = 1

	rcFork := newForkContext()
	rcFresh := NewRunContext()
	fresh := *tb
	fresh.NoFork = true

	ResetForkStats()
	for _, st := range []strategy.Strategy{strategy.PushAll{}, strategy.NoPush{}} {
		tbF, runSite, plan := applyStrategy(tb, site, st, nil)
		tbN, _, _ := applyStrategy(&fresh, site, st, nil)
		for run := 0; run < 3; run++ {
			want := fingerprint(tbN.RunOnceWith(rcFresh, runSite, plan, run))
			got := fingerprint(tbF.RunOnceWith(rcFork, runSite, plan, run))
			if got != want {
				t.Fatalf("%s run %d diverged from fresh", st.Name(), run)
			}
		}
	}
	// Two distinct handshakes (push on / push off) must have built two
	// distinct prefixes rather than sharing one.
	if got := len(rcFork.fork.entries); got != 2 {
		t.Fatalf("expected 2 checkpoint entries (one per handshake config), got %d", got)
	}
	// Per strategy: run 0 cold (key only recorded), run 1 captures, run 2
	// resumes — so each handshake config pays exactly one prefix.
	stats := ReadForkStats()
	if stats.Prefixes != 2 {
		t.Fatalf("expected 2 prefixes, got %+v", stats)
	}
	if stats.Hits != 2 {
		t.Fatalf("expected 2 hits, got %+v", stats)
	}
	if stats.Cold != 2 {
		t.Fatalf("expected 2 cold runs, got %+v", stats)
	}
}

// TestForkFallbackBeforeCheckpoint covers runs that end before the
// divergence point is ever reached: with the event budget capped below
// the handshake length, the first server dispatch never happens, the
// checkpoint never fires, and the run must fall back to the plain
// full-simulation path with identical output and no cached prefix.
func TestForkFallbackBeforeCheckpoint(t *testing.T) {
	site := corpus.GenerateSet(corpus.RandomProfile(), 1, 3)[0]
	tb := NewTestbed()
	tb.Runs = 2
	tb.Jobs = 1
	tb.limitEvents = 4 // well below the handshake's event count

	fresh := *tb
	fresh.NoFork = true
	rcFork := newForkContext()
	rcFresh := NewRunContext()

	ResetForkStats()
	for run := 0; run < 2; run++ {
		want := fingerprint(fresh.RunOnceWith(rcFresh, site, replay.NoPush(), run))
		got := fingerprint(tb.RunOnceWith(rcFork, site, replay.NoPush(), run))
		if got != want {
			t.Fatalf("fallback run %d diverged from fresh:\n%s\nvs\n%s", run, want, got)
		}
		if want == "" {
			t.Fatal("empty fingerprint")
		}
	}
	// Run 0 is a cold first encounter (never armed); run 1 arms the
	// checkpoint, never reaches it, and takes the fallback path.
	stats := ReadForkStats()
	if stats.Fallbacks != 1 || stats.Cold != 1 {
		t.Fatalf("expected 1 fallback and 1 cold run, got %+v", stats)
	}
	if stats.Prefixes != 0 || stats.Hits != 0 {
		t.Fatalf("no prefix should have been captured: %+v", stats)
	}
}

// TestForkBypassedForThirdPartyVariability: the Internet scenario
// realises a per-run site, so forking is ineligible and must be
// bypassed — with output identical to NoFork by construction.
func TestForkBypassedForThirdPartyVariability(t *testing.T) {
	site := corpus.GenerateSet(corpus.RandomProfile(), 1, 5)[0]
	tb := NewTestbed()
	tb.Scenario = scenario.Internet()
	tb.Runs = 2
	tb.Jobs = 1

	rcFork := newForkContext()
	ResetForkStats()
	for run := 0; run < 2; run++ {
		tb.RunOnceWith(rcFork, site, replay.NoPush(), run)
	}
	stats := ReadForkStats()
	if stats.Bypassed != 2 {
		t.Fatalf("expected 2 bypassed runs, got %+v", stats)
	}
	if len(rcFork.fork.entries) != 0 {
		t.Fatalf("bypassed runs must not populate the cache")
	}
}
