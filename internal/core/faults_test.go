package core

import (
	"strconv"
	"strings"
	"testing"

	"repro/internal/corpus"
	"repro/internal/fault"
	"repro/internal/replay"
	"repro/internal/scenario"
)

// TestFaultSweepGoldenByteIdentical pins the fault-sweep table
// byte-for-byte across worker-pool sizes and with the fork cache on and
// off: fault-bearing runs bypass the checkpoint cache, so neither
// setting may move a cell.
func TestFaultSweepGoldenByteIdentical(t *testing.T) {
	var want string
	for _, noFork := range []bool{false, true} {
		for _, jobs := range []int{1, 0} {
			sc := ExperimentScale{Sites: 2, Runs: 2, Seed: 1, Jobs: jobs, NoFork: noFork}
			tabs, err := FaultSweepNames([]string{"dsl"}, sc)
			if err != nil {
				t.Fatal(err)
			}
			var sb strings.Builder
			for _, tab := range tabs {
				sb.WriteString(tab.String())
			}
			got := sb.String()
			if want == "" {
				want = readGolden(t, "faultsweep_golden.txt", got)
			}
			if got != want {
				t.Errorf("fault sweep diverged from golden at Jobs=%d noFork=%v: %s", jobs, noFork, diffLine(got, want))
			}
		}
	}
}

// TestFaultSweepTerminatesEveryLoad: outcome counts must account for
// every run — a hung or unclassified load would drop out of the table.
func TestFaultSweepTerminatesEveryLoad(t *testing.T) {
	sc := ExperimentScale{Sites: 2, Runs: 2, Seed: 1, Jobs: 1}
	tabs, err := FaultSweepNames([]string{"dsl"}, sc)
	if err != nil {
		t.Fatal(err)
	}
	nStrategies := len(faultStrategies())
	if rows := len(tabs[0].Rows); rows != len(fault.Families())*nStrategies {
		t.Fatalf("got %d rows, want one per (family, strategy)", rows)
	}
	for _, row := range tabs[0].Rows {
		var n int
		for _, cell := range row[2:5] { // complete, partial, failed
			v, err := strconv.Atoi(cell)
			if err != nil {
				t.Fatalf("bad count %q in row %v", cell, row)
			}
			n += v
		}
		if n != sc.Sites*sc.Runs {
			t.Fatalf("row %v accounts for %d loads, want %d", row, n, sc.Sites*sc.Runs)
		}
	}
	// The fault-free baseline rows must be all-complete: recovery
	// machinery may not perturb an unfaulted load.
	for _, row := range tabs[0].Rows[:nStrategies] {
		if row[0] != "none" || row[2] != "4" || row[4] != "0" {
			t.Fatalf("fault-free baseline row not all-complete: %v", row)
		}
	}
}

// TestFaultRunsBypassForkCache pins the PR-7 interaction for every
// fault family: a fault-bearing condition must never fork (the injector
// mutates sim state the checkpoint does not cover) and must not
// populate the checkpoint cache.
func TestFaultRunsBypassForkCache(t *testing.T) {
	site := corpus.GenerateSet(corpus.RandomProfile(), 1, 5)[0]
	for _, fam := range fault.Families() {
		if !fam.Spec.Enabled() {
			continue
		}
		t.Run(fam.Name, func(t *testing.T) {
			tb := NewTestbed()
			tb.Scenario = scenario.DSL().WithFaults(fam.Spec)
			tb.Runs = 2
			tb.Jobs = 1
			rc := newForkContext()
			ResetForkStats()
			for run := 0; run < 2; run++ {
				tb.RunOnceWith(rc, site, replay.NoPush(), run)
			}
			stats := ReadForkStats()
			if stats.Bypassed != 2 {
				t.Fatalf("expected 2 bypassed runs, got %+v", stats)
			}
			if len(rc.fork.entries) != 0 {
				t.Fatal("fault-bearing runs must not populate the fork cache")
			}
		})
	}
}

// TestFaultedRunsIdenticalForkOnOff: bypassing makes fork-on trivially
// equal to fork-off for faulted runs — pin it, so a future change that
// lets faulted runs fork has to prove byte-identity first.
func TestFaultedRunsIdenticalForkOnOff(t *testing.T) {
	site := corpus.GenerateSet(corpus.RandomProfile(), 1, 5)[0]
	spec := fault.Spec{GoAwayAt: 250_000_000} // 250ms
	tb := NewTestbed()
	tb.Scenario = scenario.DSL().WithFaults(spec)
	tb.Runs = 2
	tb.Jobs = 1
	plain := *tb
	plain.NoFork = true
	rcFork, rcPlain := newForkContext(), NewRunContext()
	for run := 0; run < 2; run++ {
		a := fingerprint(tb.RunOnceWith(rcFork, site, replay.NoPush(), run))
		b := fingerprint(plain.RunOnceWith(rcPlain, site, replay.NoPush(), run))
		if a != b || a == "" {
			t.Fatalf("faulted run %d differs fork on/off:\n%s\nvs\n%s", run, a, b)
		}
	}
}

func TestFaultSweepRejectsInvalidScenario(t *testing.T) {
	bad := scenario.DSL()
	bad.Faults.FlapAt = 100 // FlapAt without FlapDown
	if _, err := FaultSweep([]scenario.Scenario{bad}, SmallScale()); err == nil {
		t.Fatal("invalid fault spec accepted")
	}
}
