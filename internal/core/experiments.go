package core

import (
	"fmt"
	"io"
	"strings"
	"text/tabwriter"
	"time"

	"repro/internal/corpus"
	"repro/internal/crawl"
	"repro/internal/metrics"
	"repro/internal/page"
	"repro/internal/replay"
	"repro/internal/scenario"
	"repro/internal/strategy"
)

// Table is a printable experiment result.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// Print renders the table with aligned columns.
func (t *Table) Print(w io.Writer) {
	fmt.Fprintf(w, "== %s ==\n", t.Title)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, strings.Join(t.Header, "\t"))
	for _, r := range t.Rows {
		fmt.Fprintln(tw, strings.Join(r, "\t"))
	}
	tw.Flush()
	for _, n := range t.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
	fmt.Fprintln(w)
}

func (t *Table) String() string {
	var sb strings.Builder
	t.Print(&sb)
	return sb.String()
}

func ms(d time.Duration) string { return fmt.Sprintf("%.0f", float64(d)/float64(time.Millisecond)) }

func pct(f float64) string { return fmt.Sprintf("%.1f%%", f*100) }

// ExperimentScale shrinks the paper-size experiments to tractable
// defaults for tests and benchmarks; cmd/pushbench can run full scale.
type ExperimentScale struct {
	Sites int // sites per set (paper: 100)
	Runs  int // repetitions per configuration (paper: 31)
	Seed  int64
	// Jobs is the experiment engine's worker-pool size: <=0 uses
	// GOMAXPROCS, 1 runs strictly sequentially. Tables are byte-identical
	// for any value (results are collected in input order).
	Jobs int
	// NoFork disables fork-at-divergence checkpoint reuse for every
	// testbed the drivers build (ablation; output is byte-identical
	// either way).
	NoFork bool
	// Exec selects the executor running the site-level fan-out: the
	// zero value is the in-process pool, ExecMultiProcess shards units
	// across worker child processes. Tables are byte-identical across
	// executors and shard counts.
	Exec Exec
}

// SmallScale is used by unit tests and benchmarks.
func SmallScale() ExperimentScale { return ExperimentScale{Sites: 12, Runs: 5, Seed: 1} }

// PaperScale matches the paper's configuration.
func PaperScale() ExperimentScale { return ExperimentScale{Sites: 100, Runs: 31, Seed: 1} }

// newTestbed builds the per-site testbed a driver fans work onto.
// outerN is the width of the driver's site-level fan-out; the run-level
// pool inside Evaluate/Trace gets the leftover parallelism so the
// number of in-flight simulations stays near the configured pool size
// instead of multiplying to outerWorkers x GOMAXPROCS.
func (sc ExperimentScale) newTestbed(outerN int) *Testbed {
	tb := NewTestbed()
	tb.Runs = sc.Runs
	tb.Jobs = innerJobs(sc.Jobs, outerN)
	tb.NoFork = sc.NoFork
	return tb
}

// newTestbedFor is newTestbed under an arbitrary measurement scenario.
func (sc ExperimentScale) newTestbedFor(scn scenario.Scenario, outerN int) *Testbed {
	tb := sc.newTestbed(outerN)
	tb.Scenario = scn
	return tb
}

// newWorkerContext is the per-worker factory the site-level fan-outs
// pass to collectWith: each site-level worker owns one RunContext and
// lends it (via Testbed.UseContext) to every testbed it builds, so the
// warmed simulator/network/loader state survives across the traces and
// evaluations of all sites that worker handles. The contexts are
// fork-enabled: every strategy a worker evaluates on a site replays
// the same checkpointed prefix (see fork.go).
func newWorkerContext(int) *RunContext { return newForkContext() }

// innerJobs divides a pool of jobs workers (jobCount semantics) among
// outerN concurrent outer tasks, granting each at least one worker.
func innerJobs(jobs, outerN int) int {
	w := jobCount(jobs)
	if outerN < 1 {
		outerN = 1
	}
	if outerN > w {
		outerN = w
	}
	return (w + outerN - 1) / outerN
}

// --- Fig. 1: adoption of H2 and Server Push over one year ---

// Fig1Adoption regenerates the two adoption series. The population is
// synthetic (see internal/crawl) with N domains standing in for the
// Alexa 1M.
func Fig1Adoption(n int, seed int64) *Table {
	pop := crawl.DefaultPopulation(n, seed)
	sc := crawl.NewScanner(seed, 0.01)
	series := sc.Study(pop)
	t := &Table{
		Title:  "Fig 1: HTTP/2 and Server Push adoption over 12 monthly scans",
		Header: []string{"month", "probed", "h2", "push"},
		Notes:  []string{fmt.Sprintf("population %d domains standing in for the Alexa 1M; calibrated 120K->240K H2, 400->800 push", n)},
	}
	for _, r := range series {
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(r.Month), fmt.Sprint(r.Probed), fmt.Sprint(r.H2Count), fmt.Sprint(r.PushCount),
		})
	}
	return t
}

// --- Fig. 2a: testbed vs Internet variability ---

// fig2aUnit builds one site's evaluation unit for Fig2aVariability:
// full PLT/SI samples under scn, with or without push.
func fig2aUnit(sites []*replay.Site, scn scenario.Scenario, push bool, scale ExperimentScale) func(rc *RunContext, i int) evalSamples {
	return func(rc *RunContext, i int) evalSamples {
		tb := scale.newTestbedFor(scn, len(sites))
		tb.UseContext(rc)
		var st strategy.Strategy = strategy.NoPush{}
		if push {
			st = strategy.PushAll{}
		}
		ev := tb.EvaluateStrategy(sites[i], st, nil)
		return evalSamples{plt: ev.PLT, si: ev.SI}
	}
}

// Fig2aVariability compares the per-site standard error of PLT and
// SpeedIndex between the controlled DSL scenario and the Internet
// scenario, with and without push.
func Fig2aVariability(scale ExperimentScale) (*Table, error) {
	sites := corpus.GenerateSet(corpus.RandomProfile(), scale.Sites, scale.Seed)
	type cell struct{ plt, si []float64 }
	run := func(scn scenario.Scenario, push bool) (cell, error) {
		unit := fig2aUnit(sites, scn, push, scale)
		evs, err := fig2aJob.collect(scale,
			fig2aParams{Scn: scn, Push: push, Scale: scaleParams(scale)},
			len(sites), func() []evalSamples {
				return collectWith(len(sites), scale.Jobs, newWorkerContext, unit)
			})
		if err != nil {
			return cell{}, err
		}
		var c cell
		for i := range evs {
			c.plt = append(c.plt, float64(evs[i].plt.StdErr())/float64(time.Millisecond))
			c.si = append(c.si, float64(evs[i].si.StdErr())/float64(time.Millisecond))
		}
		return c, nil
	}
	t := &Table{
		Title:  "Fig 2a: std. error of PLT/SpeedIndex per site, testbed vs Internet",
		Header: []string{"config", "PLT sigma<50ms", "PLT sigma<100ms", "SI sigma<50ms", "SI sigma<100ms", "median PLT sigma (ms)"},
		Notes:  []string{"paper: testbed 85%/95% of sites under 50/100ms; Internet only 5%/14%"},
	}
	for _, cfg := range []struct {
		name string
		scn  scenario.Scenario
		push bool
	}{
		{"push (tb)", scenario.DSL(), true},
		{"no push (tb)", scenario.DSL(), false},
		{"push (Inet)", scenario.Internet(), true},
		{"no push (Inet)", scenario.Internet(), false},
	} {
		c, err := run(cfg.scn, cfg.push)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			cfg.name,
			pct(metrics.FractionBelow(c.plt, 50)),
			pct(metrics.FractionBelow(c.plt, 100)),
			pct(metrics.FractionBelow(c.si, 50)),
			pct(metrics.FractionBelow(c.si, 100)),
			fmt.Sprintf("%.1f", metrics.MedianFloat64(c.plt)),
		})
	}
	return t, nil
}

// --- Fig. 2b / 3a / 3b: strategy deltas ---

// deltaUnit builds one site's evaluation unit for deltaVsNoPush.
func deltaUnit(sites []*replay.Site, st strategy.Strategy, scale ExperimentScale, trace bool) func(rc *RunContext, i int) deltaResult {
	return func(rc *RunContext, i int) deltaResult {
		site := sites[i]
		tb := scale.newTestbed(len(sites))
		tb.UseContext(rc)
		var tr *strategy.Trace
		if trace {
			tr = tb.Trace(site, min(5, scale.Runs))
		}
		baseEv := tb.EvaluateStrategy(site, strategy.NoPush{}, nil)
		ev := tb.EvaluateStrategy(site, st, tr)
		return deltaResult{
			plt: float64(ev.MedianPLT-baseEv.MedianPLT) / float64(time.Millisecond),
			si:  float64(ev.MedianSI-baseEv.MedianSI) / float64(time.Millisecond),
		}
	}
}

// deltaVsNoPush evaluates a strategy and the no-push baseline per site
// and returns per-site median deltas in milliseconds (negative = push
// better). sites must be the deterministic GenerateSet of prof at this
// scale — worker children rebuild the same set from prof's name.
func deltaVsNoPush(prof corpus.Profile, sites []*replay.Site, st strategy.Strategy, scale ExperimentScale, trace bool) (dPLT, dSI []float64, err error) {
	unit := deltaUnit(sites, st, scale, trace)
	deltas, err := deltaJob.collect(scale,
		deltaParams{Profile: prof.Name, Strategy: specFor(st), Trace: trace, Scale: scaleParams(scale)},
		len(sites), func() []deltaResult {
			return collectWith(len(sites), scale.Jobs, newWorkerContext, unit)
		})
	if err != nil {
		return nil, nil, err
	}
	for _, d := range deltas {
		dPLT = append(dPLT, d.plt)
		dSI = append(dSI, d.si)
	}
	return dPLT, dSI, nil
}

// Fig2bPushVsNoPush reproduces the testbed validation: pushing the same
// objects as recorded vs. the no-push baseline.
func Fig2bPushVsNoPush(scale ExperimentScale) (*Table, error) {
	prof := corpus.RandomProfile()
	sites := corpus.GenerateSet(prof, scale.Sites, scale.Seed)
	dPLT, dSI, err := deltaVsNoPush(prof, sites, strategy.PushAll{}, scale, true)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  "Fig 2b: delta push vs no push (testbed), per-site medians",
		Header: []string{"metric", "improved (<0)", "no benefit (>=0)", "median delta (ms)"},
		Notes:  []string{"paper: no PLT benefit for 49% of sites, no SpeedIndex benefit for 35%"},
	}
	add := func(name string, xs []float64) {
		med := metrics.MedianFloat64(xs)
		imp := metrics.FractionBelow(xs, 0)
		t.Rows = append(t.Rows, []string{name, pct(imp), pct(1 - imp), fmt.Sprintf("%.1f", med)})
	}
	add("PLT", dPLT)
	add("SpeedIndex", dSI)
	return t, nil
}

// PushableObjects reproduces the Sec. 4.2 statistic on both site sets.
func PushableObjects(scale ExperimentScale) *Table {
	t := &Table{
		Title:  "Sec 4.2: fraction of sites with <20% pushable objects",
		Header: []string{"set", "sites", "<20% pushable", "median pushable"},
		Notes:  []string{"paper: top-100 52%, random-100 24%"},
	}
	for _, prof := range []corpus.Profile{corpus.TopProfile(), corpus.RandomProfile()} {
		sites := corpus.GenerateSet(prof, scale.Sites, scale.Seed)
		var fracs []float64
		low := 0
		for _, s := range sites {
			f := s.PushableFraction()
			fracs = append(fracs, f)
			if f < 0.2 {
				low++
			}
		}
		med := metrics.MedianFloat64(fracs)
		t.Rows = append(t.Rows, []string{
			prof.Name, fmt.Sprint(len(sites)),
			pct(float64(low) / float64(len(sites))), pct(med),
		})
	}
	return t
}

// Fig3aPushAll evaluates push-all vs no-push on both sets.
func Fig3aPushAll(scale ExperimentScale) (*Table, error) {
	t := &Table{
		Title:  "Fig 3a: SpeedIndex delta, push all (computed order) vs no push",
		Header: []string{"set", "SI improved", "PLT improved", "median dSI (ms)", "median dPLT (ms)"},
		Notes:  []string{"paper: only 58% (top-100) / 45% (random-100) of sites benefit"},
	}
	for _, prof := range []corpus.Profile{corpus.TopProfile(), corpus.RandomProfile()} {
		sites := corpus.GenerateSet(prof, scale.Sites, scale.Seed)
		dPLT, dSI, err := deltaVsNoPush(prof, sites, strategy.PushAll{}, scale, true)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			prof.Name,
			pct(metrics.FractionBelow(dSI, 0)),
			pct(metrics.FractionBelow(dPLT, 0)),
			fmt.Sprintf("%.1f", metrics.MedianFloat64(dSI)),
			fmt.Sprintf("%.1f", metrics.MedianFloat64(dPLT)),
		})
	}
	return t, nil
}

// Fig3bPushAmount sweeps the number of pushed objects on the random set.
func Fig3bPushAmount(scale ExperimentScale) (*Table, error) {
	prof := corpus.RandomProfile()
	sites := corpus.GenerateSet(prof, scale.Sites, scale.Seed)
	t := &Table{
		Title:  "Fig 3b: delta vs no push when pushing the first n objects (random-100)",
		Header: []string{"n", "PLT improved", "SI improved", "median dPLT (ms)", "median dSI (ms)"},
		Notes:  []string{"paper: pushing less reduces detrimental effects but rarely helps much"},
	}
	strategies := []strategy.Strategy{
		strategy.PushFirstN{N: 1},
		strategy.PushFirstN{N: 5},
		strategy.PushFirstN{N: 10},
		strategy.PushFirstN{N: 15},
		strategy.PushAll{},
	}
	for _, st := range strategies {
		dPLT, dSI, err := deltaVsNoPush(prof, sites, st, scale, true)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			st.Name(),
			pct(metrics.FractionBelow(dPLT, 0)),
			pct(metrics.FractionBelow(dSI, 0)),
			fmt.Sprintf("%.1f", metrics.MedianFloat64(dPLT)),
			fmt.Sprintf("%.1f", metrics.MedianFloat64(dSI)),
		})
	}
	return t, nil
}

// PushByTypeAnalysis reproduces the Sec. 4.2.1 object-type study.
func PushByTypeAnalysis(scale ExperimentScale) (*Table, error) {
	prof := corpus.RandomProfile()
	sites := corpus.GenerateSet(prof, scale.Sites, scale.Seed)
	t := &Table{
		Title:  "Sec 4.2.1: pushing specific object types (random-100)",
		Header: []string{"type", "SI improved", "SI worse", "median dSI (ms)"},
		Notes:  []string{"paper: images worsen SpeedIndex for 74% of sites; best-type helps only 24% (SI) / 20% (PLT)"},
	}
	types := []strategy.Strategy{
		strategy.PushByType{Kinds: []page.Kind{page.KindCSS}},
		strategy.PushByType{Kinds: []page.Kind{page.KindJS}},
		strategy.PushByType{Kinds: []page.Kind{page.KindImage}},
		strategy.PushByType{Kinds: []page.Kind{page.KindCSS, page.KindJS}},
		strategy.PushByType{Kinds: []page.Kind{page.KindCSS, page.KindImage}},
	}
	perSiteBest := make([]float64, scale.Sites)
	for i := range perSiteBest {
		perSiteBest[i] = 1e18
	}
	for _, st := range types {
		_, dSI, err := deltaVsNoPush(prof, sites, st, scale, true)
		if err != nil {
			return nil, err
		}
		for i, v := range dSI {
			if v < perSiteBest[i] {
				perSiteBest[i] = v
			}
		}
		t.Rows = append(t.Rows, []string{
			st.Name(),
			pct(metrics.FractionBelow(dSI, 0)),
			pct(1 - metrics.FractionBelow(dSI, 0)),
			fmt.Sprintf("%.1f", metrics.MedianFloat64(dSI)),
		})
	}
	// Best-type per site: how many sites improve even with their best
	// single-type strategy (by a meaningful margin).
	t.Rows = append(t.Rows, []string{
		"best type per site",
		pct(metrics.FractionBelow(perSiteBest, 0)),
		pct(1 - metrics.FractionBelow(perSiteBest, 0)),
		fmt.Sprintf("%.1f", metrics.MedianFloat64(perSiteBest)),
	})
	return t, nil
}

// --- Fig. 4: synthetic sites with custom strategies ---

// fig4Unit builds one synthetic site's row fragment for Fig4Synthetic.
func fig4Unit(sites []*replay.Site, scale ExperimentScale) func(rc *RunContext, i int) [][]string {
	return func(rc *RunContext, i int) [][]string {
		site := sites[i]
		tb := scale.newTestbed(len(sites))
		tb.UseContext(rc)
		baseEv := tb.EvaluateStrategy(site, strategy.NoPush{}, nil)
		var rows [][]string
		for _, st := range []strategy.Strategy{strategy.PushAll{}, strategy.PushCritical{}} {
			ev := tb.EvaluateStrategy(site, st, nil)
			rows = append(rows, []string{
				site.Name, st.Name(),
				fmt.Sprintf("%.0f", float64(ev.PLT.Mean()-baseEv.PLT.Mean())/1e6),
				fmt.Sprintf("%.0f", float64(ev.SI.Mean()-baseEv.SI.Mean())/1e6),
				ms(ev.SI.CI(0.95)),
				fmt.Sprintf("%d", ev.BytesPushed/1024),
			})
		}
		return rows
	}
}

// Fig4Synthetic compares push-all and the custom (critical) strategy on
// s1-s10, relative to no push, with 95% confidence intervals.
func Fig4Synthetic(scale ExperimentScale) (*Table, error) {
	t := &Table{
		Title:  "Fig 4: custom strategies on synthetic sites s1-s10 (delta vs no push, avg of runs)",
		Header: []string{"site", "strategy", "dPLT (ms)", "dSI (ms)", "95% CI (ms)", "KB pushed"},
		Notes:  []string{"paper: custom pushes far fewer bytes for comparable gains (s1: 309KB vs 1057KB)"},
	}
	sites := corpus.SyntheticSites()
	unit := fig4Unit(sites, scale)
	rowsBySite, err := fig4Job.collect(scale, fig4Params{Scale: scaleParams(scale)},
		len(sites), func() [][][]string {
			return collectWith(len(sites), scale.Jobs, newWorkerContext, unit)
		})
	if err != nil {
		return nil, err
	}
	for _, rows := range rowsBySite {
		t.Rows = append(t.Rows, rows...)
	}
	return t, nil
}

// --- Fig. 5b: interleaving motivating example ---

// fig5Sizes is the HTML-size sweep of the Fig. 5b test page, in KB.
func fig5Sizes() []int { return []int{10, 20, 30, 40, 50, 60, 70, 80, 90} }

// fig5Unit builds one HTML-size row for Fig5Interleaving. jobs sizes
// the run-level pool inside each testbed (jobCount semantics).
func fig5Unit(runs int, seed int64, jobs int, noFork bool) func(rc *RunContext, i int) []string {
	sizes := fig5Sizes()
	return func(rc *RunContext, i int) []string {
		kb := sizes[i]
		b := corpus.NewPage("fig5.test")
		b.CSS("/style.css", corpus.SimpleCSS([]string{"hero", "body-text"}, 120))
		b.Div("hero", 200)
		b.Text(1200, "body-text")
		if pad := kb*1024 - len(b.HTML()); pad > 0 {
			b.PadHTML(pad)
		}
		site := b.Build(fmt.Sprintf("fig5-%dKB", kb))
		base := site.Base.String()
		cssURL := "https://fig5.test/style.css"

		tb := NewTestbed()
		tb.Runs = runs
		tb.Seed = seed
		tb.Jobs = innerJobs(jobs, len(sizes))
		tb.NoFork = noFork
		tb.UseContext(rc)
		noPushCfg := *tb
		noPushCfg.Browser.EnablePush = false
		evNo := noPushCfg.Evaluate(site, replay.NoPush(), "no push")
		evPush := tb.Evaluate(site, replay.PushList(base, cssURL), "push")
		evInt := tb.Evaluate(site, replay.PushList(base, cssURL).
			WithInterleave(base, replay.InterleaveSpec{OffsetBytes: 4096, Critical: []string{cssURL}}),
			"interleaving")
		return []string{
			fmt.Sprint(kb), ms(evNo.MedianSI), ms(evPush.MedianSI), ms(evInt.MedianSI),
		}
	}
}

// Fig5Interleaving builds the paper's test page (CSS in head, body text
// varied from 10 to 90 KB) and compares no push, plain push and
// interleaving push. Only Runs, Seed, Jobs, NoFork and Exec of scale
// are used; the page sweep is fixed.
func Fig5Interleaving(scale ExperimentScale) (*Table, error) {
	t := &Table{
		Title:  "Fig 5b: SpeedIndex vs HTML size for no push / push / interleaving",
		Header: []string{"html KB", "no push SI (ms)", "push SI (ms)", "interleaving SI (ms)"},
		Notes:  []string{"paper: no push and push grow with HTML size; interleaving stays flat and fastest"},
	}
	sizes := fig5Sizes()
	unit := fig5Unit(scale.Runs, scale.Seed, scale.Jobs, scale.NoFork)
	rows, err := fig5Job.collect(scale,
		fig5Params{Runs: scale.Runs, Seed: scale.Seed, NoFork: scale.NoFork},
		len(sizes), func() [][]string {
			return collectWith(len(sizes), scale.Jobs, newWorkerContext, unit)
		})
	if err != nil {
		return nil, err
	}
	t.Rows = rows
	return t, nil
}

// --- Fig. 6: the six strategies on w1-w20 ---

// PopularStrategies returns the Sec. 5 strategy set in paper order.
func PopularStrategies() []strategy.Strategy {
	return []strategy.Strategy{
		strategy.NoPush{},
		strategy.NoPushOptimized{},
		strategy.PushAll{},
		strategy.PushAllOptimized{},
		strategy.PushCritical{},
		strategy.PushCriticalOptimized{},
	}
}

// fig6Unit builds one popular site's row fragment for Fig6Popular.
func fig6Unit(ids []string, scale ExperimentScale) func(rc *RunContext, i int) [][]string {
	return func(rc *RunContext, i int) [][]string {
		site := corpus.PopularSite(ids[i])
		if site == nil {
			return nil
		}
		tb := scale.newTestbed(len(ids))
		tb.UseContext(rc)
		tr := tb.Trace(site, min(5, scale.Runs))
		baseEv := tb.EvaluateStrategy(site, strategy.NoPush{}, nil)
		var rows [][]string
		for _, st := range PopularStrategies() {
			if _, ok := st.(strategy.NoPush); ok {
				continue
			}
			ev := tb.EvaluateStrategy(site, st, tr)
			dSI := metrics.RelChange(ev.SI.Mean(), baseEv.SI.Mean())
			dPLT := metrics.RelChange(ev.PLT.Mean(), baseEv.PLT.Mean())
			rows = append(rows, []string{
				ids[i], st.Name(),
				pct(dSI), pct(dPLT),
				ms(ev.SI.CI(0.995)),
				fmt.Sprintf("%d", ev.BytesPushed/1024),
			})
		}
		return rows
	}
}

// Fig6Popular evaluates the six strategies on the modelled w1-w20 sites,
// reporting average relative SpeedIndex change vs no push with 99.5%
// confidence half-widths, plus pushed bytes.
func Fig6Popular(ids []string, scale ExperimentScale) (*Table, error) {
	if len(ids) == 0 {
		ids = corpus.PopularSiteIDs()
	}
	t := &Table{
		Title:  "Fig 6: strategies on modelled popular sites (relative SpeedIndex change vs no push)",
		Header: []string{"site", "strategy", "dSI", "dPLT", "99.5% CI (ms)", "KB pushed"},
		Notes: []string{
			"paper: w1 -68.9% / w2 -29.7% / w16 -19.7% with push critical optimized;",
			"w7/w8 limited by blocking JS, w9 favours push all, w10 image contention, w17 dilution",
		},
	}
	unit := fig6Unit(ids, scale)
	rowsBySite, err := fig6Job.collect(scale,
		fig6Params{IDs: ids, Scale: scaleParams(scale)},
		len(ids), func() [][][]string {
			return collectWith(len(ids), scale.Jobs, newWorkerContext, unit)
		})
	if err != nil {
		return nil, err
	}
	for _, rows := range rowsBySite {
		t.Rows = append(t.Rows, rows...)
	}
	return t, nil
}
