package core

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// The experiment engine fans independent (site, strategy, run) units of
// work across a bounded worker pool. Determinism is preserved by
// construction: every unit writes its result into a slot addressed by
// its input index, and aggregation always walks slots in index order, so
// the output is byte-identical no matter how many workers ran or how
// their completions interleaved.

// jobCount resolves a Jobs knob: <=0 means one worker per available CPU
// (GOMAXPROCS), 1 means strictly sequential, n means n workers.
func jobCount(jobs int) int {
	if jobs <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return jobs
}

// forEach runs fn(i) for every i in [0,n) using up to jobs workers
// (jobCount semantics). Each index is executed exactly once. With one
// worker the indices run in order on the calling goroutine — the
// sequential reference path. fn must not depend on execution order and
// must publish its result into an index-addressed slot.
func forEach(n, jobs int, fn func(i int)) {
	workers := jobCount(jobs)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// collect runs fn over [0,n) in parallel and returns the results in
// index order.
func collect[T any](n, jobs int, fn func(i int) T) []T {
	out := make([]T, n)
	forEach(n, jobs, func(i int) { out[i] = fn(i) })
	return out
}
