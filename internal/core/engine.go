package core

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// The experiment engine fans independent (site, strategy, run) units of
// work across a bounded worker pool. Determinism is preserved by
// construction: every unit writes its result into a slot addressed by
// its input index, and aggregation always walks slots in index order, so
// the output is byte-identical no matter how many workers ran or how
// their completions interleaved.
//
// Each worker additionally owns a context created once per worker (see
// forEachWith): the run contexts that amortize simulator, network and
// browser state across the runs a worker executes. Contexts never cross
// workers, so they need no locking, and because they only cache
// reusable scratch — never results — they cannot affect output.

// jobCount resolves a Jobs knob: <=0 means one worker per available CPU
// (GOMAXPROCS), 1 means strictly sequential, n means n workers.
func jobCount(jobs int) int {
	if jobs <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return jobs
}

// forEachWith runs fn(ctx, i) for every i in [0,n) using up to jobs
// workers (jobCount semantics). Each worker calls newC exactly once with
// its worker index and threads the returned context through every unit
// it executes; with one worker the indices run in order on the calling
// goroutine. fn must not depend on execution order and must publish its
// result into an index-addressed slot.
func forEachWith[C any](n, jobs int, newC func(worker int) C, fn func(c C, i int)) {
	workers := jobCount(jobs)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		c := newC(0)
		for i := 0; i < n; i++ {
			fn(c, i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(worker int) {
			defer wg.Done()
			c := newC(worker)
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(c, i)
			}
		}(w)
	}
	wg.Wait()
}

// forEach is forEachWith without a worker context.
func forEach(n, jobs int, fn func(i int)) {
	forEachWith(n, jobs, func(int) struct{} { return struct{}{} }, func(_ struct{}, i int) { fn(i) })
}

// collect runs fn over [0,n) in parallel and returns the results in
// index order.
func collect[T any](n, jobs int, fn func(i int) T) []T {
	out := make([]T, n)
	forEach(n, jobs, func(i int) { out[i] = fn(i) })
	return out
}

// collectWith is collect with per-worker contexts (forEachWith).
func collectWith[C, T any](n, jobs int, newC func(worker int) C, fn func(c C, i int) T) []T {
	out := make([]T, n)
	forEachWith(n, jobs, newC, func(c C, i int) { out[i] = fn(c, i) })
	return out
}
