package core

import (
	"fmt"

	"repro/internal/corpus"
	"repro/internal/metrics"
	"repro/internal/netem"
	"repro/internal/replay"
	"repro/internal/scenario"
	"repro/internal/strategy"
	"time"
)

// ScenarioSweep answers the question the paper leaves open — "where
// does push actually help?" — by re-running the Fig. 3a / Fig. 6
// strategy comparison under each given measurement scenario. It emits
// one strategy-comparison table per scenario: every Sec. 5 strategy is
// evaluated against the no-push baseline on the random site set and
// summarized as improved-site fractions, median deltas and pushed
// bytes. Scenarios are validated up front; results are byte-identical
// for any worker-pool size.
func ScenarioSweep(scs []scenario.Scenario, scale ExperimentScale) ([]*Table, error) {
	for _, sc := range scs {
		if err := sc.Validate(); err != nil {
			return nil, err
		}
	}
	sites := corpus.GenerateSet(corpus.RandomProfile(), scale.Sites, scale.Seed)
	tables := make([]*Table, len(scs))
	for i, sc := range scs {
		t, err := scenarioTable(sc, sites, scale)
		if err != nil {
			return nil, err
		}
		tables[i] = t
	}
	return tables, nil
}

// ScenarioSweepNames resolves library scenarios by name (nil or empty
// means every named scenario) and sweeps them.
func ScenarioSweepNames(names []string, scale ExperimentScale) ([]*Table, error) {
	var scs []scenario.Scenario
	if len(names) == 0 {
		scs = scenario.All()
	} else {
		for _, n := range names {
			sc, err := scenario.ByName(n)
			if err != nil {
				return nil, err
			}
			scs = append(scs, sc)
		}
	}
	return ScenarioSweep(scs, scale)
}

// contrastStrategies is the Sec. 5 strategy set minus the no-push
// baseline every scenario table contrasts against. Shared by the
// parent-side aggregation and the worker-side unit, which must agree
// on column order.
func contrastStrategies() []strategy.Strategy {
	var sts []strategy.Strategy
	for _, st := range PopularStrategies() {
		if _, ok := st.(strategy.NoPush); !ok {
			sts = append(sts, st)
		}
	}
	return sts
}

// siteResult is one site's scenario contrast: per-strategy deltas in
// contrastStrategies order.
type siteResult struct {
	dPLT, dSI []float64 // per strategy, ms
	pushedKB  []int64   // per strategy
}

// scenarioUnit builds one site's evaluation unit for scenarioTable.
func scenarioUnit(scn scenario.Scenario, sites []*replay.Site, scale ExperimentScale) func(rc *RunContext, i int) siteResult {
	sts := contrastStrategies()
	return func(rc *RunContext, i int) siteResult {
		site := sites[i]
		tb := scale.newTestbedFor(scn, len(sites))
		tb.UseContext(rc)
		tr := tb.Trace(site, min(5, scale.Runs))
		base := tb.EvaluateStrategy(site, strategy.NoPush{}, nil)
		var res siteResult
		for _, st := range sts {
			ev := tb.EvaluateStrategy(site, st, tr)
			res.dPLT = append(res.dPLT, float64(ev.MedianPLT-base.MedianPLT)/float64(time.Millisecond))
			res.dSI = append(res.dSI, float64(ev.MedianSI-base.MedianSI)/float64(time.Millisecond))
			res.pushedKB = append(res.pushedKB, ev.BytesPushed/1024)
		}
		return res
	}
}

// scenarioTable runs the Sec. 5 strategy set against the no-push
// baseline on the given site set under one scenario. The site-level
// fan-out mirrors the figure drivers: per-site work is self-contained
// and collected in site order, so the table is identical for any Jobs.
func scenarioTable(scn scenario.Scenario, sites []*replay.Site, scale ExperimentScale) (*Table, error) {
	sts := contrastStrategies()
	unit := scenarioUnit(scn, sites, scale)
	results, err := scenarioJob.collect(scale,
		scenarioParams{Scn: scn, Scale: scaleParams(scale)},
		len(sites), func() []siteResult {
			return collectWith(len(sites), scale.Jobs, newWorkerContext, unit)
		})
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  fmt.Sprintf("Scenario %s: strategy deltas vs no push (random set)", scn.Name),
		Header: []string{"strategy", "SI improved", "PLT improved", "median dSI (ms)", "median dPLT (ms)", "median KB pushed"},
		Notes:  []string{describeScenario(scn)},
	}
	for j, st := range sts {
		var dSI, dPLT []float64
		var kb []int64
		for _, r := range results {
			dSI = append(dSI, r.dSI[j])
			dPLT = append(dPLT, r.dPLT[j])
			kb = append(kb, r.pushedKB[j])
		}
		t.Rows = append(t.Rows, []string{
			st.Name(),
			pct(metrics.FractionBelow(dSI, 0)),
			pct(metrics.FractionBelow(dPLT, 0)),
			fmt.Sprintf("%.1f", metrics.MedianFloat64(dSI)),
			fmt.Sprintf("%.1f", metrics.MedianFloat64(dPLT)),
			fmt.Sprint(metrics.MedianInt64(kb)),
		})
	}
	return t, nil
}

// describeScenario renders the link parameters for the table notes,
// plus the per-run perturbations for scenarios whose variability model
// redraws them (the base values alone would misread as a static link).
func describeScenario(sc scenario.Scenario) string {
	p := sc.Profile
	note := fmt.Sprintf("%s — %g/%g Mbit/s, RTT %v, loss %.2f%%, iw %d",
		sc.Info,
		float64(p.DownRate)/float64(netem.Mbps), float64(p.UpRate)/float64(netem.Mbps),
		p.RTT, p.LossRate*100, p.InitialCwnd)
	if v := sc.Vary.Describe(); v != "" {
		note += "; per-run: " + v
	}
	return note
}
