package core

import (
	"testing"

	"repro/internal/corpus"
	"repro/internal/replay"
)

// TestPageLoadAllocBudget is the allocation regression guard for the
// zero-copy data plane (PR 3). Before the refactor a single page load of
// this site cost ~17.9k allocations; the chunked send queues, pooled
// events/segments and arena-backed frame headers brought it under 6k.
// The budget leaves headroom for benign churn while still enforcing the
// required >=2x reduction. (Not meaningful under -race, which inflates
// allocation counts; CI runs it in the plain test pass.)
func TestPageLoadAllocBudget(t *testing.T) {
	site := corpus.Generate(corpus.RandomProfile(), 0, 1)
	tb := NewTestbed()
	plan := replay.NoPush()
	avg := testing.AllocsPerRun(3, func() {
		if r := tb.RunOnce(site, plan, 0); !r.Completed {
			t.Fatal("incomplete load")
		}
	})
	const budget = 9000 // half of the pre-refactor ~17.9k
	if avg > budget {
		t.Errorf("page load allocates %.0f, budget %d", avg, budget)
	}
}

// TestRunContextReuseAllocBudget is the regression guard for the PR 4
// prepare-once/replay-many split: a run on a *warm* RunContext — site
// prepared, simulator/network/loader state and pools grown — must stay
// under a budget far below even the prepared-site cold path (~3.2k at
// the time of writing, itself down from 5.7k). What remains is the
// genuinely per-run state: fresh h2 endpoints and connections per dial
// plus the loader's per-run callbacks. (Not meaningful under -race; CI
// runs it in the plain test pass.)
func TestRunContextReuseAllocBudget(t *testing.T) {
	site := corpus.Generate(corpus.RandomProfile(), 0, 1)
	tb := NewTestbed()
	plan := replay.NoPush()
	rc := NewRunContext()
	if r := tb.RunOnceWith(rc, site, plan, 0); !r.Completed {
		t.Fatal("incomplete warm-up load")
	}
	avg := testing.AllocsPerRun(5, func() {
		if r := tb.RunOnceWith(rc, site, plan, 1); !r.Completed {
			t.Fatal("incomplete load")
		}
	})
	const budget = 2600
	if avg > budget {
		t.Errorf("warm-context page load allocates %.0f, budget %d", avg, budget)
	}
}
