package core

import (
	"testing"

	"repro/internal/corpus"
	"repro/internal/replay"
)

// TestPageLoadAllocBudget is the allocation regression guard for the
// zero-copy data plane (PR 3). Before the refactor a single page load of
// this site cost ~17.9k allocations; the chunked send queues, pooled
// events/segments and arena-backed frame headers brought it under 6k.
// The budget leaves headroom for benign churn while still enforcing the
// required >=2x reduction. (Not meaningful under -race, which inflates
// allocation counts; CI runs it in the plain test pass.)
func TestPageLoadAllocBudget(t *testing.T) {
	site := corpus.Generate(corpus.RandomProfile(), 0, 1)
	tb := NewTestbed()
	plan := replay.NoPush()
	avg := testing.AllocsPerRun(3, func() {
		if r := tb.RunOnce(site, plan, 0); !r.Completed {
			t.Fatal("incomplete load")
		}
	})
	const budget = 9000 // half of the pre-refactor ~17.9k
	if avg > budget {
		t.Errorf("page load allocates %.0f, budget %d", avg, budget)
	}
}
