package core

import (
	"testing"

	"repro/internal/corpus"
	"repro/internal/replay"
)

// TestPageLoadAllocBudget is the allocation regression guard for the
// cold-start path: a throwaway context, but a warm prepared site. PR 3's
// zero-copy data plane took a load from ~17.9k allocations to under 6k,
// PR 4's prepared sites to ~3.2k, and PR 5's dense-ID tables plus pooled
// h2 connections to under 2k. The budget leaves headroom for benign
// churn while pinning the trajectory. (Not meaningful under -race, which
// inflates allocation counts; CI runs it in the plain test pass.)
func TestPageLoadAllocBudget(t *testing.T) {
	site := corpus.Generate(corpus.RandomProfile(), 0, 1)
	tb := NewTestbed()
	plan := replay.NoPush()
	avg := testing.AllocsPerRun(3, func() {
		if r := tb.RunOnce(site, plan, 0); !r.Completed {
			t.Fatal("incomplete load")
		}
	})
	const budget = 2400 // measured ~1.7k after the event-lane refactor
	if avg > budget {
		t.Errorf("page load allocates %.0f, budget %d", avg, budget)
	}
}

// TestRunContextReuseAllocBudget is the regression guard for the warm
// replay path: a run on a *warm* RunContext — site prepared and
// interned, simulator/network/loader state, pooled h2 connections and
// resource tables all grown — must stay far below even the cold path.
// PR 4 brought the warm run to ~2.4k allocations; PR 5's dense-ID
// tables, pooled connections and pre-encoded header blocks to ~140.
// What remains is genuinely per-run: netem connection state, pooled
// event bookkeeping and a handful of per-run closures. (Not meaningful
// under -race; CI runs it in the plain test pass.)
func TestRunContextReuseAllocBudget(t *testing.T) {
	site := corpus.Generate(corpus.RandomProfile(), 0, 1)
	tb := NewTestbed()
	plan := replay.NoPush()
	rc := NewRunContext()
	if r := tb.RunOnceWith(rc, site, plan, 0); !r.Completed {
		t.Fatal("incomplete warm-up load")
	}
	avg := testing.AllocsPerRun(5, func() {
		if r := tb.RunOnceWith(rc, site, plan, 1); !r.Completed {
			t.Fatal("incomplete load")
		}
	})
	const budget = 300 // measured ~140 after the dense-ID refactor
	if avg > budget {
		t.Errorf("warm-context page load allocates %.0f, budget %d", avg, budget)
	}
}
