package core

import (
	"strings"
	"testing"
)

// TestPopulationSweepGoldenByteIdentical pins the population tables
// byte-for-byte across worker-pool sizes: the streamed sketch cells
// must merge to identical state no matter which worker absorbed which
// (count, strategy, run) unit.
func TestPopulationSweepGoldenByteIdentical(t *testing.T) {
	var want string
	for _, jobs := range []int{1, 0} {
		sc := ExperimentScale{Sites: 2, Runs: 2, Seed: 1, Jobs: jobs}
		tabs, err := PopulationSweepNames(nil, []int{1, 3}, sc)
		if err != nil {
			t.Fatalf("sweep: %v", err)
		}
		var sb strings.Builder
		for _, tab := range tabs {
			sb.WriteString(tab.String())
		}
		got := sb.String()
		if want == "" {
			want = readGolden(t, "population_golden.txt", got)
		}
		if got != want {
			t.Errorf("population table diverged from golden at Jobs=%d: %s", jobs, diffLine(got, want))
		}
	}
}

// TestPopulationRunsBypassForkCache pins the composition rule between
// the population engine and fork-at-divergence checkpoints: population
// units never touch the fork cache — every unit counts one
// deterministic bypass and no prefix is captured, hit or cold-missed.
func TestPopulationRunsBypassForkCache(t *testing.T) {
	before := ReadForkStats()
	ResetForkStats()
	sc := ExperimentScale{Sites: 2, Runs: 2, Seed: 1, Jobs: 1}
	if _, err := PopulationSweepNames([]string{"household"}, []int{1, 2}, sc); err != nil {
		t.Fatalf("sweep: %v", err)
	}
	st := ReadForkStats()
	// 2 counts x 3 strategies x 2 runs = 12 units, one bypass each.
	if st.Bypassed != 12 {
		t.Errorf("Bypassed = %d, want 12 (one per population unit)", st.Bypassed)
	}
	if st.Prefixes != 0 || st.Hits != 0 || st.Fallbacks != 0 || st.Cold != 0 {
		t.Errorf("population run touched the fork cache: %+v", st)
	}
	_ = before // stats are global; the reset above re-zeroed them for this check
}

// TestPopulationSweepAccounting checks row shape and completion
// accounting: every (strategy, count) row reports count x runs loads.
func TestPopulationSweepAccounting(t *testing.T) {
	sc := ExperimentScale{Sites: 2, Runs: 2, Seed: 1, Jobs: 1}
	tabs, err := PopulationSweepNames([]string{"office-nat"}, []int{1, 4}, sc)
	if err != nil {
		t.Fatalf("sweep: %v", err)
	}
	if len(tabs) != 1 {
		t.Fatalf("tables: %d", len(tabs))
	}
	tab := tabs[0]
	if len(tab.Rows) != 3*2 {
		t.Fatalf("rows: %d, want 6 (3 strategies x 2 counts)", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		clients := row[1]
		wantLoads := map[string]string{"1": "2", "4": "8"}[clients]
		completes := row[len(row)-1]
		if !strings.HasSuffix(completes, "/"+wantLoads) {
			t.Errorf("row %v: complete cell %q, want denominator %s", row, completes, wantLoads)
		}
	}
}

// TestPopulationSweepValidation: bad inputs fail with clear errors, not
// panics deep in the topology.
func TestPopulationSweepValidation(t *testing.T) {
	sc := ExperimentScale{Sites: 1, Runs: 1, Seed: 1, Jobs: 1}
	if _, err := PopulationSweepNames([]string{"no-such-pop"}, []int{1}, sc); err == nil {
		t.Error("unknown population accepted")
	}
	if _, err := PopulationSweepNames(nil, nil, sc); err == nil {
		t.Error("empty counts accepted")
	}
	if _, err := PopulationSweepNames(nil, []int{0}, sc); err == nil {
		t.Error("zero client count accepted")
	}
}
