package core

import (
	"fmt"
	"time"

	"repro/internal/browser"
	"repro/internal/corpus"
	"repro/internal/fault"
	"repro/internal/metrics"
	"repro/internal/replay"
	"repro/internal/scenario"
	"repro/internal/strategy"
)

// Recovery configuration every fault-sweep load runs under. The budget
// must clear a healthy fetch on the slowest profiled link (a satellite
// round trip is ~600ms, so a large resource legitimately takes seconds)
// while still resolving permanent failures well before the load
// horizon; transient faults (a flap, a stall) recover through
// retransmission and queue drain without ever tripping it.
const (
	faultResourceTimeout = 5 * time.Second
	faultMaxRetries      = 2
	faultRetryBackoff    = 250 * time.Millisecond
)

// faultStrategies is the push-strategy contrast the sweep reports under
// each fault family: the no-push baseline, naive push-all, and the
// paper's headline critical-path strategy.
func faultStrategies() []strategy.Strategy {
	return []strategy.Strategy{
		strategy.NoPush{},
		strategy.PushAll{},
		strategy.PushCriticalOptimized{},
	}
}

// FaultSweep re-runs the push-strategy comparison under each scripted
// fault family (link flap, server stall, GOAWAY, push resets, push
// disable, permanent link cut — plus the fault-free baseline) and
// reports, per family and strategy, how loads terminate: outcome
// counts, the median PLT over every run, median terminally-failed
// resources and median wasted push bytes (dead-connection push bytes
// included). One table per scenario; output is byte-identical for any
// worker-pool size and with the fork cache on or off (fault-bearing
// runs bypass it deterministically).
func FaultSweep(scs []scenario.Scenario, scale ExperimentScale) ([]*Table, error) {
	for _, sc := range scs {
		if err := sc.Validate(); err != nil {
			return nil, err
		}
	}
	sites := corpus.GenerateSet(corpus.RandomProfile(), scale.Sites, scale.Seed)
	tables := make([]*Table, len(scs))
	for i, sc := range scs {
		t, err := faultTable(sc, sites, scale)
		if err != nil {
			return nil, err
		}
		tables[i] = t
	}
	return tables, nil
}

// FaultSweepNames resolves library scenarios by name (nil or empty
// means every named scenario) and sweeps them.
func FaultSweepNames(names []string, scale ExperimentScale) ([]*Table, error) {
	var scs []scenario.Scenario
	if len(names) == 0 {
		scs = scenario.All()
	} else {
		for _, n := range names {
			sc, err := scenario.ByName(n)
			if err != nil {
				return nil, err
			}
			scs = append(scs, sc)
		}
	}
	return FaultSweep(scs, scale)
}

// faultRunStat is one run's terminal state, extracted inside the worker
// before the context recycles its Result.
type faultRunStat struct {
	outcome   browser.LoadOutcome
	plt       time.Duration
	failedRes int64
	wastedKB  int64
}

// evaluateFaulted is Evaluate for the fault sweep: same strategy
// application and run fan-out, but it keeps each run's LoadOutcome and
// failure accounting instead of collapsing to medians.
func (tb *Testbed) evaluateFaulted(site *replay.Site, st strategy.Strategy, tr *strategy.Trace) []faultRunStat {
	runSite, plan := st.Apply(site, tr)
	run := *tb
	switch st.(type) {
	case strategy.NoPush, strategy.NoPushOptimized:
		run.Browser.EnablePush = false
	}
	return collectWith(run.Runs, run.Jobs, run.workerContext, func(rc *RunContext, i int) faultRunStat {
		r := run.RunOnceWith(rc, runSite, plan, i)
		return faultRunStat{
			outcome:   r.Outcome,
			plt:       r.PLT,
			failedRes: int64(r.FailedResources),
			wastedKB:  r.BytesPushedWasted / 1024,
		}
	})
}

// faultUnit builds one site's evaluation unit for faultTable: every
// (fault family, strategy) cell's run stats, in family-major order.
func faultUnit(scn scenario.Scenario, sites []*replay.Site, scale ExperimentScale) func(rc *RunContext, i int) [][]faultRunStat {
	fams := fault.Families()
	sts := faultStrategies()
	return func(rc *RunContext, i int) [][]faultRunStat {
		site := sites[i]
		// Dependency tracing stays fault-free: it models the paper's
		// separate measurement step, not the faulted page loads.
		tb0 := scale.newTestbedFor(scn, len(sites))
		tb0.UseContext(rc)
		tr := tb0.Trace(site, min(5, scale.Runs))
		var cells [][]faultRunStat
		for _, fam := range fams {
			tb := scale.newTestbedFor(scn.WithFaults(fam.Spec), len(sites))
			tb.UseContext(rc)
			tb.Browser.ResourceTimeout = faultResourceTimeout
			tb.Browser.MaxRetries = faultMaxRetries
			tb.Browser.RetryBackoff = faultRetryBackoff
			for _, st := range sts {
				cells = append(cells, tb.evaluateFaulted(site, st, tr))
			}
		}
		return cells
	}
}

// faultTable runs every (fault family, strategy) cell on the site set
// under one scenario. The site-level fan-out mirrors the other drivers:
// per-site work is self-contained and collected in site order, so the
// table is identical for any Jobs value.
func faultTable(scn scenario.Scenario, sites []*replay.Site, scale ExperimentScale) (*Table, error) {
	fams := fault.Families()
	sts := faultStrategies()
	unit := faultUnit(scn, sites, scale)
	results, err := faultJob.collect(scale,
		faultParams{Scn: scn, Scale: scaleParams(scale)},
		len(sites), func() [][][]faultRunStat {
			return collectWith(len(sites), scale.Jobs, newWorkerContext, unit)
		})
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title: fmt.Sprintf("Fault sweep %s: load outcomes under scripted faults", scn.Name),
		Header: []string{
			"fault", "strategy", "complete", "partial", "failed",
			"median PLT (ms)", "med failed res", "med wasted KB",
		},
		Notes: []string{
			describeScenario(scn),
			fmt.Sprintf("recovery: per-resource timeout %v, %d retries, backoff %v",
				faultResourceTimeout, faultMaxRetries, faultRetryBackoff),
		},
	}
	for fi, fam := range fams {
		desc := fam.Spec.Describe()
		if desc == "" {
			desc = "fault-free baseline"
		}
		t.Notes = append(t.Notes, fmt.Sprintf("%s: %s", fam.Name, desc))
		for sj, st := range sts {
			var complete, partial, failed int
			var plts metrics.Sample
			var failedRes, wastedKB []int64
			for _, cells := range results {
				for _, r := range cells[fi*len(sts)+sj] {
					switch r.outcome {
					case browser.OutcomeComplete:
						complete++
					case browser.OutcomePartial:
						partial++
					default:
						failed++
					}
					plts.Add(r.plt)
					failedRes = append(failedRes, r.failedRes)
					wastedKB = append(wastedKB, r.wastedKB)
				}
			}
			t.Rows = append(t.Rows, []string{
				fam.Name,
				st.Name(),
				fmt.Sprint(complete),
				fmt.Sprint(partial),
				fmt.Sprint(failed),
				fmt.Sprintf("%.1f", float64(plts.Median())/float64(time.Millisecond)),
				fmt.Sprint(metrics.MedianInt64(failedRes)),
				fmt.Sprint(metrics.MedianInt64(wastedKB)),
			})
		}
	}
	return t, nil
}
