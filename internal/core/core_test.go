package core

import (
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/corpus"
	"repro/internal/replay"
	"repro/internal/scenario"
	"repro/internal/strategy"
)

func TestRunOnceDeterministic(t *testing.T) {
	site := corpus.Generate(corpus.RandomProfile(), 0, 5)
	tb := NewTestbed()
	a := tb.RunOnce(site, replay.NoPush(), 3)
	b := tb.RunOnce(site, replay.NoPush(), 3)
	if a.PLT != b.PLT || a.SpeedIndex != b.SpeedIndex {
		t.Fatalf("same run index diverged: %v/%v", a.PLT, b.PLT)
	}
	c := tb.RunOnce(site, replay.NoPush(), 4)
	if a.PLT == c.PLT && a.SpeedIndex == c.SpeedIndex {
		t.Log("different run indexes identical (possible, jitter is small)")
	}
}

func TestTestbedVsInternetVariability(t *testing.T) {
	// The core Fig. 2a property: run-to-run variability is much lower in
	// the testbed than in Internet mode.
	site := corpus.Generate(corpus.RandomProfile(), 1, 5)
	tb := NewTestbed()
	tb.Runs = 9
	evTB := tb.Evaluate(site, replay.NoPush(), "tb")
	tb.SetMode(ModeInternet) // deprecated shim over scenario.Internet()
	evNet := tb.Evaluate(site, replay.NoPush(), "inet")
	if evTB.PLT.StdErr()*3 > evNet.PLT.StdErr() {
		t.Fatalf("testbed stderr %v not well below Internet stderr %v",
			evTB.PLT.StdErr(), evNet.PLT.StdErr())
	}
}

func TestEvaluateStrategyDisablesPushForBaselines(t *testing.T) {
	site := corpus.Generate(corpus.RandomProfile(), 2, 5)
	tb := NewTestbed()
	tb.Runs = 2
	ev := tb.EvaluateStrategy(site, strategy.NoPush{}, nil)
	if ev.BytesPushed != 0 {
		t.Fatalf("no-push strategy pushed %d bytes", ev.BytesPushed)
	}
	// Push setting restored afterwards.
	if !tb.Browser.EnablePush {
		t.Fatal("EnablePush not restored")
	}
}

func TestTraceOrdersPlausible(t *testing.T) {
	site := corpus.Generate(corpus.RandomProfile(), 3, 5)
	tb := NewTestbed()
	tr := tb.Trace(site, 3)
	if len(tr.Orders) != 3 {
		t.Fatalf("orders = %d", len(tr.Orders))
	}
	for _, order := range tr.Orders {
		if len(order) < 3 {
			t.Fatalf("trace order too short: %v", order)
		}
		for _, u := range order {
			if u == site.Base.String() {
				t.Fatal("base in trace order")
			}
		}
	}
	if len(tr.MajorityOrder()) == 0 {
		t.Fatal("majority order empty")
	}
}

func TestPushAllChangesWireStats(t *testing.T) {
	site := corpus.SyntheticSites()[1] // s2: small single-server blog
	tb := NewTestbed()
	tb.Runs = 3
	evNo := tb.EvaluateStrategy(site, strategy.NoPush{}, nil)
	evAll := tb.EvaluateStrategy(site, strategy.PushAll{}, nil)
	if evAll.BytesPushed == 0 {
		t.Fatal("push all pushed nothing")
	}
	if evNo.BytesPushed != 0 {
		t.Fatal("baseline pushed")
	}
	if evAll.Completed != tb.Runs || evNo.Completed != tb.Runs {
		t.Fatalf("incomplete runs: %d/%d", evAll.Completed, evNo.Completed)
	}
}

func TestFig1AdoptionTable(t *testing.T) {
	tab := Fig1Adoption(50_000, 1)
	if len(tab.Rows) != 12 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	h2First, _ := strconv.Atoi(tab.Rows[0][2])
	h2Last, _ := strconv.Atoi(tab.Rows[11][2])
	if h2Last < h2First*17/10 {
		t.Fatalf("H2 adoption did not roughly double: %d -> %d", h2First, h2Last)
	}
	pushLast, _ := strconv.Atoi(tab.Rows[11][3])
	if pushLast == 0 || pushLast > h2Last/50 {
		t.Fatalf("push adoption implausible: %d vs h2 %d", pushLast, h2Last)
	}
	if !strings.Contains(tab.String(), "Fig 1") {
		t.Fatal("table title missing")
	}
}

func TestFig5InterleavingShape(t *testing.T) {
	tab, err := Fig5Interleaving(ExperimentScale{Runs: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 9 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	parse := func(s string) float64 {
		v, err := strconv.ParseFloat(s, 64)
		if err != nil {
			t.Fatalf("bad cell %q", s)
		}
		return v
	}
	// Paper shape: interleaving is fastest and flat; no push grows with
	// HTML size.
	firstNo := parse(tab.Rows[0][1])
	lastNo := parse(tab.Rows[8][1])
	if lastNo <= firstNo {
		t.Fatalf("no-push SI did not grow with HTML size: %v -> %v", firstNo, lastNo)
	}
	for _, row := range tab.Rows {
		noPush, push, inter := parse(row[1]), parse(row[2]), parse(row[3])
		if inter > noPush || inter > push {
			t.Fatalf("interleaving not fastest at %sKB: no=%v push=%v inter=%v",
				row[0], noPush, push, inter)
		}
	}
	// Flatness: interleaving varies far less across sizes than no push.
	firstI, lastI := parse(tab.Rows[0][3]), parse(tab.Rows[8][3])
	if (lastI-firstI)*2 > (lastNo - firstNo) {
		t.Fatalf("interleaving not flat: %v->%v vs no push %v->%v", firstI, lastI, firstNo, lastNo)
	}
}

func TestPushableObjectsTable(t *testing.T) {
	tab := PushableObjects(ExperimentScale{Sites: 40, Runs: 1, Seed: 1})
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// top-100 must have a larger low-pushable share than random-100.
	topLow := tab.Rows[0][2]
	rndLow := tab.Rows[1][2]
	tl, _ := strconv.ParseFloat(strings.TrimSuffix(topLow, "%"), 64)
	rl, _ := strconv.ParseFloat(strings.TrimSuffix(rndLow, "%"), 64)
	if tl <= rl {
		t.Fatalf("top-100 low-pushable (%v) not above random-100 (%v)", tl, rl)
	}
}

func TestFig6SingleSite(t *testing.T) {
	// One representative site end-to-end through all six strategies.
	tab, err := Fig6Popular([]string{"w1"}, ExperimentScale{Sites: 1, Runs: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 5 { // six strategies minus the baseline
		t.Fatalf("rows = %d: %v", len(tab.Rows), tab.Rows)
	}
	// w1 (huge HTML, blocking CSS) must improve with push critical
	// optimized.
	var critRow []string
	for _, r := range tab.Rows {
		if r[1] == "push critical optimized" {
			critRow = r
		}
	}
	if critRow == nil {
		t.Fatal("push critical optimized row missing")
	}
	dSI, _ := strconv.ParseFloat(strings.TrimSuffix(critRow[2], "%"), 64)
	if dSI >= 0 {
		t.Fatalf("w1 push critical optimized dSI = %v%%, want improvement (<0)", dSI)
	}
}

func TestScaleThirdPartyPreservesFirstParty(t *testing.T) {
	site := corpus.Generate(corpus.TopProfile(), 0, 5)
	tb := NewTestbed()
	tb.Scenario = scenario.Internet()
	r := tb.RunOnce(site, replay.NoPush(), 0)
	if r.PLT <= 0 {
		t.Fatalf("internet run PLT = %v", r.PLT)
	}
}

func TestEvaluationSamplesComplete(t *testing.T) {
	site := corpus.SyntheticSites()[8] // s9 docs: fast
	tb := NewTestbed()
	tb.Runs = 5
	ev := tb.Evaluate(site, replay.NoPush(), "x")
	if ev.PLT.N() != 5 || ev.SI.N() != 5 {
		t.Fatalf("sample sizes %d/%d", ev.PLT.N(), ev.SI.N())
	}
	if ev.MedianPLT <= 0 || ev.MedianPLT > 30*time.Second {
		t.Fatalf("median PLT %v", ev.MedianPLT)
	}
}
