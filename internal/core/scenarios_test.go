package core

import (
	"strings"
	"testing"

	"repro/internal/corpus"
	"repro/internal/replay"
	"repro/internal/scenario"
)

// TestScenarioSweepParallelMatchesSequential extends the engine's
// byte-identity contract to the cross-scenario driver: the sweep output
// must not depend on the worker-pool size.
func TestScenarioSweepParallelMatchesSequential(t *testing.T) {
	scs := []scenario.Scenario{scenario.DSL(), scenario.LTE()}
	render := func(jobs int) string {
		scale := ExperimentScale{Sites: 2, Runs: 2, Seed: 1, Jobs: jobs}
		tabs, err := ScenarioSweep(scs, scale)
		if err != nil {
			t.Fatal(err)
		}
		var sb strings.Builder
		for _, tab := range tabs {
			sb.WriteString(tab.String())
		}
		return sb.String()
	}
	seq := render(1)
	par := render(4)
	if seq != par {
		t.Fatalf("sweep differs across pool sizes:\n--- jobs=1 ---\n%s--- jobs=4 ---\n%s", seq, par)
	}
	if !strings.Contains(seq, "Scenario dsl") || !strings.Contains(seq, "Scenario lte") {
		t.Fatalf("sweep missing per-scenario tables:\n%s", seq)
	}
}

func TestScenarioSweepNamesResolves(t *testing.T) {
	scale := ExperimentScale{Sites: 1, Runs: 1, Seed: 1, Jobs: 1}
	tabs, err := ScenarioSweepNames([]string{"fiber"}, scale)
	if err != nil {
		t.Fatal(err)
	}
	if len(tabs) != 1 || !strings.Contains(tabs[0].Title, "fiber") {
		t.Fatalf("unexpected tables: %v", tabs)
	}
	if _, err := ScenarioSweepNames([]string{"dialup"}, scale); err == nil {
		t.Fatal("unknown scenario name accepted")
	}
}

func TestScenarioSweepRejectsInvalidScenario(t *testing.T) {
	bad := scenario.DSL()
	bad.Profile.MSS = 0
	if _, err := ScenarioSweep([]scenario.Scenario{bad}, SmallScale()); err == nil {
		t.Fatal("invalid scenario accepted")
	}
}

// TestNewTestbedForValidates is the fail-fast contract: a nonsensical
// scenario is rejected at testbed construction with a clear error, not
// via a mid-experiment panic.
func TestNewTestbedForValidates(t *testing.T) {
	if _, err := NewTestbedFor(scenario.Satellite()); err != nil {
		t.Fatalf("valid scenario rejected: %v", err)
	}
	bad := scenario.Cable()
	bad.Profile.QueueBytes = 100 // cannot hold one segment
	if _, err := NewTestbedFor(bad); err == nil {
		t.Fatal("segment-starving queue accepted")
	}
}

// TestModeShimMatchesScenario pins the deprecated Mode shim to the
// scenario subsystem: SetMode must reproduce the scenario path exactly.
func TestModeShimMatchesScenario(t *testing.T) {
	if got := ModeTestbed.Scenario().Name; got != scenario.DSL().Name {
		t.Fatalf("ModeTestbed -> %q", got)
	}
	if got := ModeInternet.Scenario().Name; got != scenario.Internet().Name {
		t.Fatalf("ModeInternet -> %q", got)
	}
	tb := NewTestbed()
	tb.SetMode(ModeInternet)
	if tb.Scenario.Name != scenario.Internet().Name {
		t.Fatalf("SetMode installed %q", tb.Scenario.Name)
	}
}

// TestNegativeClientJitterDeterministicClient: a scenario with
// ClientJitterFrac < 0 forces browser jitter off, so on the loss-free
// DSL link different run indexes load byte-identically — client
// compute jitter was the only per-run randomness left.
func TestNegativeClientJitterDeterministicClient(t *testing.T) {
	site := corpus.Generate(corpus.RandomProfile(), 5, 5)
	tb := NewTestbed()
	tb.Scenario = scenario.DSL().With(scenario.Variability{ClientJitterFrac: -1})
	a := tb.RunOnce(site, replay.NoPush(), 0)
	b := tb.RunOnce(site, replay.NoPush(), 1)
	if a.PLT != b.PLT || a.SpeedIndex != b.SpeedIndex {
		t.Fatalf("jitter-off runs diverged: %v/%v vs %v/%v", a.PLT, a.SpeedIndex, b.PLT, b.SpeedIndex)
	}
	// With the default (browser-config) jitter the same two runs differ.
	tb.Scenario = scenario.DSL()
	c := tb.RunOnce(site, replay.NoPush(), 0)
	d := tb.RunOnce(site, replay.NoPush(), 1)
	if c.PLT == d.PLT && c.SpeedIndex == d.SpeedIndex {
		t.Log("default-jitter runs identical (possible, jitter is small)")
	}
}
