package core

import (
	"os"
	"strings"
	"testing"
)

// The golden fixtures in testdata were generated before the zero-copy
// data-plane refactor (PR 3) from the then-current simulator. These tests
// pin the experiment tables byte-for-byte against them, at Jobs=1 and
// Jobs=GOMAXPROCS, so neither the zero-copy byte path nor the parallel
// engine can silently change a single cell. Run under -race in CI.

func readGolden(t *testing.T, name string) string {
	t.Helper()
	b, err := os.ReadFile("testdata/" + name)
	if err != nil {
		t.Fatalf("read golden: %v", err)
	}
	return string(b)
}

func diffLine(got, want string) string {
	gl, wl := strings.Split(got, "\n"), strings.Split(want, "\n")
	for i := 0; i < len(gl) && i < len(wl); i++ {
		if gl[i] != wl[i] {
			return "line " + gl[i] + " != " + wl[i]
		}
	}
	return "length mismatch"
}

func TestFig2bGoldenByteIdentical(t *testing.T) {
	want := readGolden(t, "fig2b_golden.txt")
	for _, jobs := range []int{1, 0} {
		sc := ExperimentScale{Sites: 4, Runs: 3, Seed: 1, Jobs: jobs}
		got := Fig2bPushVsNoPush(sc).String()
		if got != want {
			t.Errorf("Fig2b table diverged from golden at Jobs=%d: %s", jobs, diffLine(got, want))
		}
	}
}

func TestScenarioSweepGoldenByteIdentical(t *testing.T) {
	want := readGolden(t, "scenariosweep_golden.txt")
	for _, jobs := range []int{1, 0} {
		sc := ExperimentScale{Sites: 2, Runs: 2, Seed: 1, Jobs: jobs}
		tabs, err := ScenarioSweepNames([]string{"dsl", "satellite"}, sc)
		if err != nil {
			t.Fatal(err)
		}
		var sb strings.Builder
		for _, tab := range tabs {
			sb.WriteString(tab.String())
		}
		if got := sb.String(); got != want {
			t.Errorf("scenario sweep tables diverged from golden at Jobs=%d: %s", jobs, diffLine(got, want))
		}
	}
}
