package core

import (
	"flag"
	"os"
	"strings"
	"testing"
)

// The golden fixtures in testdata pin the experiment tables
// byte-for-byte, at Jobs=1 and Jobs=GOMAXPROCS, so neither the
// simulation core nor the parallel engine can silently change a single
// cell. Run under -race in CI. A deliberate simulation-order change
// (e.g. a different RNG or event scheduling) regenerates them with
// `go test -run Golden -update ./internal/core/`; review the diff
// before committing.

var updateGolden = flag.Bool("update", false, "rewrite golden fixtures from current output")

func readGolden(t *testing.T, name, got string) string {
	t.Helper()
	if *updateGolden {
		if err := os.WriteFile("testdata/"+name, []byte(got), 0o644); err != nil {
			t.Fatalf("update golden: %v", err)
		}
	}
	b, err := os.ReadFile("testdata/" + name)
	if err != nil {
		t.Fatalf("read golden: %v", err)
	}
	return string(b)
}

func diffLine(got, want string) string {
	gl, wl := strings.Split(got, "\n"), strings.Split(want, "\n")
	for i := 0; i < len(gl) && i < len(wl); i++ {
		if gl[i] != wl[i] {
			return "line " + gl[i] + " != " + wl[i]
		}
	}
	return "length mismatch"
}

func TestFig2bGoldenByteIdentical(t *testing.T) {
	var want string
	// Forking on and off must both match the golden: the checkpoint
	// fast path may not change a single cell. The multiprocess executor
	// must reproduce the same bytes through its codec and child workers.
	for _, exec := range []Exec{{}, {Kind: ExecMultiProcess, Shards: 2}} {
		for _, noFork := range []bool{false, true} {
			for _, jobs := range []int{1, 0} {
				sc := ExperimentScale{Sites: 4, Runs: 3, Seed: 1, Jobs: jobs, NoFork: noFork, Exec: exec}
				tab, err := Fig2bPushVsNoPush(sc)
				if err != nil {
					t.Fatalf("executor=%s: %v", NewExecutor(exec, jobs).Name(), err)
				}
				got := tab.String()
				if want == "" {
					want = readGolden(t, "fig2b_golden.txt", got)
				}
				if got != want {
					t.Errorf("Fig2b table diverged from golden at executor=%s Jobs=%d noFork=%v: %s",
						NewExecutor(exec, jobs).Name(), jobs, noFork, diffLine(got, want))
				}
			}
		}
	}
}

func TestScenarioSweepGoldenByteIdentical(t *testing.T) {
	var want string
	for _, noFork := range []bool{false, true} {
		for _, jobs := range []int{1, 0} {
			sc := ExperimentScale{Sites: 2, Runs: 2, Seed: 1, Jobs: jobs, NoFork: noFork}
			tabs, err := ScenarioSweepNames([]string{"dsl", "satellite"}, sc)
			if err != nil {
				t.Fatal(err)
			}
			var sb strings.Builder
			for _, tab := range tabs {
				sb.WriteString(tab.String())
			}
			got := sb.String()
			if want == "" {
				want = readGolden(t, "scenariosweep_golden.txt", got)
			}
			if got != want {
				t.Errorf("scenario sweep tables diverged from golden at Jobs=%d noFork=%v: %s", jobs, noFork, diffLine(got, want))
			}
		}
	}
}
