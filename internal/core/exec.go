package core

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	osexec "os/exec"
	"sync"

	"repro/internal/shard"
)

// Pluggable execution shards. engine.go is the work-distribution layer:
// it hands out unit indices and pins results to index-addressed slots.
// This file adds the Executor seam on top, so a fan-out can run either
// on the in-process worker pool or across `pushbench -worker` child
// processes, with byte-identical tables either way.
//
// The contract an executor implements:
//
//   - Units are addressed by index in [0,n); Collect returns exactly n
//     payloads with payload i produced by unit i (slot ordering).
//   - Unit i's payload is the job's registered encoder applied to the
//     unit result — internal/metrics owns the value wire forms,
//     internal/shard owns stream framing and payload primitives, and
//     this package owns the per-job composites (codec ownership).
//   - Any child that fails to produce its assigned units is an error:
//     missing, duplicate, out-of-stride and trailing bytes all surface,
//     and every spawned child is reaped (cmd.Wait) even on the error
//     path, with its stderr folded into the returned error.

// Executor kinds accepted by Exec.Kind and the -executor flag.
const (
	ExecInProcess    = "inprocess"
	ExecMultiProcess = "multiprocess"
)

// workerEnv marks a child process as a shard worker. MaybeServeWorker
// checks it before flag parsing, so worker argv needs no flag support.
const workerEnv = "REPRO_SHARD_WORKER"

// Exec selects how an experiment's fan-out executes. The zero value is
// the in-process pool, so existing callers are unaffected.
type Exec struct {
	// Kind is ExecInProcess (or empty) or ExecMultiProcess.
	Kind string
	// Shards is the multiprocess child count; <=0 means GOMAXPROCS.
	Shards int
	// WorkerArgv overrides the child command line. Empty means
	// re-exec this binary with a "-worker" marker argument.
	WorkerArgv []string
}

// Validate rejects unknown executor kinds.
func (e Exec) Validate() error {
	switch e.Kind {
	case "", ExecInProcess, ExecMultiProcess:
		return nil
	}
	return fmt.Errorf("core: unknown executor %q (want %s or %s)", e.Kind, ExecInProcess, ExecMultiProcess)
}

func (e Exec) multiprocess() bool { return e.Kind == ExecMultiProcess }

func (e Exec) shardCount() int { return jobCount(e.Shards) }

// Executor runs one job's fan-out and returns the encoded result
// payloads in unit-index order.
type Executor interface {
	// Name identifies the executor ("inprocess" or "multiprocess").
	Name() string
	// Collect runs job over units [0,n) with the given encoded params
	// and returns n payloads, payload i holding unit i's encoded
	// result.
	Collect(job string, params []byte, n int) ([][]byte, error)
}

// NewExecutor builds the executor selected by e. jobs is the
// in-process pool's worker knob (jobCount semantics); the multiprocess
// executor parallelizes across child processes instead and ignores it.
func NewExecutor(e Exec, jobs int) Executor {
	if e.multiprocess() {
		return &multiProcessExecutor{shards: e.shardCount(), argv: e.WorkerArgv}
	}
	return &inProcessExecutor{jobs: jobs}
}

// jobStart builds a job's unit runner from its encoded params. The
// returned function appends unit i's encoded result to b.
type jobStart func(params []byte) (func(b []byte, i int) []byte, error)

// jobRegistry maps job names to their starters. It is populated only
// by defineJob calls at package init and read-only afterwards (lookup
// by name, never ranged), so it is safe without locking and cannot
// introduce iteration-order nondeterminism.
var jobRegistry = map[string]jobStart{}

// jobDef ties a job name to its typed decoder; the matching encoder
// and unit builder live in the registry entry defineJob installed.
type jobDef[P, T any] struct {
	name string
	dec  func(r *shard.Reader) T
}

// defineJob registers a job: build turns decoded params into the unit
// function, enc/dec are the unit result codec. Call only from package
// init (top-level var); duplicate names panic.
func defineJob[P, T any](name string, build func(p P) (func(i int) T, error), enc func(b []byte, v T) []byte, dec func(r *shard.Reader) T) jobDef[P, T] {
	if _, dup := jobRegistry[name]; dup {
		panic("core: duplicate job definition " + name)
	}
	jobRegistry[name] = func(params []byte) (func(b []byte, i int) []byte, error) {
		var p P
		if err := json.Unmarshal(params, &p); err != nil {
			return nil, fmt.Errorf("core: job %s params: %w", name, err)
		}
		unit, err := build(p)
		if err != nil {
			return nil, fmt.Errorf("core: job %s: %w", name, err)
		}
		return func(b []byte, i int) []byte { return enc(b, unit(i)) }, nil
	}
	return jobDef[P, T]{name: name, dec: dec}
}

// run executes the job's n units on the executor selected by sc.Exec
// and returns the decoded results in unit order.
func (j jobDef[P, T]) run(sc ExperimentScale, p P, n int) ([]T, error) {
	params, err := json.Marshal(p)
	if err != nil {
		return nil, fmt.Errorf("core: job %s params: %w", j.name, err)
	}
	payloads, err := NewExecutor(sc.Exec, sc.Jobs).Collect(j.name, params, n)
	if err != nil {
		return nil, err
	}
	out := make([]T, n)
	for i, pl := range payloads {
		r := shard.NewReader(pl)
		out[i] = j.dec(r)
		if err := r.Close(); err != nil {
			return nil, fmt.Errorf("core: job %s unit %d: %w", j.name, i, err)
		}
	}
	return out, nil
}

// collect is the driver entry point: in-process execution short-
// circuits to the caller's typed closure — same closures, same
// ordering, no codec on the hot path — while multiprocess execution
// round-trips every unit through the job's codec and child processes.
func (j jobDef[P, T]) collect(sc ExperimentScale, p P, n int, inproc func() []T) ([]T, error) {
	if err := sc.Exec.Validate(); err != nil {
		return nil, err
	}
	if !sc.Exec.multiprocess() {
		return inproc(), nil
	}
	return j.run(sc, p, n)
}

// inProcessExecutor runs units on the forEachWith pool, through the
// registry and codec. Drivers do not use it — their in-process path
// short-circuits in jobDef.collect — but it is the reference
// implementation the equivalence tests compare payloads against.
type inProcessExecutor struct {
	jobs int
}

func (e *inProcessExecutor) Name() string { return ExecInProcess }

func (e *inProcessExecutor) Collect(job string, params []byte, n int) ([][]byte, error) {
	start, ok := jobRegistry[job]
	if !ok {
		return nil, fmt.Errorf("core: unknown job %q", job)
	}
	out := make([][]byte, n)
	var mu sync.Mutex
	var firstErr error
	forEachWith(n, e.jobs, func(int) func(b []byte, i int) []byte {
		run, err := start(params)
		if err != nil {
			mu.Lock()
			if firstErr == nil {
				firstErr = err
			}
			mu.Unlock()
			return nil
		}
		return run
	}, func(run func(b []byte, i int) []byte, i int) {
		if run == nil {
			return
		}
		out[i] = run(nil, i)
	})
	if firstErr != nil {
		return nil, firstErr
	}
	return out, nil
}

// multiProcessExecutor spawns one worker child per shard and assigns
// unit indices by stride: child k owns {k, k+shards, ...}. Each child
// streams its results back over stdout; the parent pins them into the
// shared out slice by unit index, so slot ordering survives any
// completion interleaving across processes.
type multiProcessExecutor struct {
	shards int
	argv   []string
}

func (e *multiProcessExecutor) Name() string { return ExecMultiProcess }

func (e *multiProcessExecutor) Collect(job string, params []byte, n int) ([][]byte, error) {
	if n == 0 {
		return nil, nil
	}
	shards := e.shards
	if shards > n {
		shards = n
	}
	if shards < 1 {
		shards = 1
	}
	argv := e.argv
	if len(argv) == 0 {
		self, err := os.Executable()
		if err != nil {
			return nil, fmt.Errorf("core: resolving worker binary: %w", err)
		}
		argv = []string{self, "-worker"}
	}
	out := make([][]byte, n)
	errs := make([]error, shards)
	var wg sync.WaitGroup
	wg.Add(shards)
	for k := 0; k < shards; k++ {
		go func(k int) {
			defer wg.Done()
			errs[k] = runShard(argv, job, params, n, k, shards, out)
		}(k)
	}
	wg.Wait()
	for k, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("core: shard %d/%d: %w", k, shards, err)
		}
	}
	for i, pl := range out {
		if pl == nil {
			return nil, fmt.Errorf("core: no result for unit %d", i)
		}
	}
	return out, nil
}

// runShard drives one child: feed its index stride over stdin from a
// separate goroutine (so a slow child cannot deadlock the parent
// against a full pipe), read results from stdout, and always reap the
// process. out writes are race-free because each child's reader only
// accepts indices in its own stride.
func runShard(argv []string, job string, params []byte, n, k, shards int, out [][]byte) error {
	cmd := osexec.Command(argv[0], argv[1:]...)
	cmd.Env = append(os.Environ(), workerEnv+"=1")
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	stdin, err := cmd.StdinPipe()
	if err != nil {
		return err
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return err
	}
	if err := cmd.Start(); err != nil {
		return fmt.Errorf("spawning worker %q: %w", argv[0], err)
	}
	werr := make(chan error, 1)
	go func() {
		werr <- feedShard(stdin, job, params, n, k, shards)
	}()
	readErr := readShardResults(stdout, n, k, shards, out)
	if readErr != nil {
		// Unblock a child still writing results, then reap it below.
		stdout.Close()
	}
	waitErr := cmd.Wait()
	writeErr := <-werr
	err = readErr
	if err == nil {
		err = waitErr
	}
	if err == nil {
		err = writeErr
	}
	if err != nil && stderr.Len() > 0 {
		msg := stderr.String()
		if len(msg) > 512 {
			msg = msg[:512] + "..."
		}
		return fmt.Errorf("%w (worker stderr: %s)", err, msg)
	}
	return err
}

// feedShard writes the job header and child k's index stride, then
// closes stdin. If the child already exited, writes fail with EPIPE
// rather than blocking, so the parent never hangs here.
func feedShard(stdin io.WriteCloser, job string, params []byte, n, k, shards int) error {
	defer stdin.Close()
	sw := shard.NewStreamWriter(stdin)
	hdr := shard.AppendString(nil, job)
	hdr = shard.AppendUvarint(hdr, uint64(n))
	hdr = shard.AppendBytes(hdr, params)
	if err := sw.Frame(shard.FrameJob, hdr); err != nil {
		return err
	}
	for i := k; i < n; i += shards {
		if err := sw.Frame(shard.FrameIndex, shard.AppendUvarint(nil, uint64(i))); err != nil {
			return err
		}
	}
	return sw.End()
}

// readShardResults pins child k's result payloads into out by unit
// index, enforcing the stride, uniqueness and completeness.
func readShardResults(stdout io.Reader, n, k, shards int, out [][]byte) error {
	want := 0
	for i := k; i < n; i += shards {
		want++
	}
	sr := shard.NewStreamReader(stdout)
	got := 0
	for {
		kind, payload, err := sr.Next()
		if err != nil {
			return err
		}
		switch kind {
		case shard.FrameResult:
			idx, rest, err := shard.SplitResult(payload)
			if err != nil {
				return err
			}
			if idx >= uint64(n) || int(idx)%shards != k {
				return fmt.Errorf("worker returned unit %d outside stride %d/%d", idx, k, shards)
			}
			if out[idx] != nil {
				return fmt.Errorf("worker returned unit %d twice", idx)
			}
			// Copy: the frame payload aliases the reader's scratch
			// buffer, which the next frame overwrites.
			out[idx] = append(make([]byte, 0, len(rest)), rest...)
			got++
		case shard.FrameEnd:
			if got != want {
				return fmt.Errorf("worker returned %d of %d assigned units", got, want)
			}
			return nil
		default:
			return fmt.Errorf("unexpected %v frame from worker", kind)
		}
	}
}

// ServeWorker runs the child side of the shard protocol: read the job
// header, build the unit runner from the registry, answer each Index
// frame with a Result frame (flushed immediately so the parent can
// collect as units finish), and terminate the output stream when the
// input stream ends.
func ServeWorker(r io.Reader, w io.Writer) error {
	sr := shard.NewStreamReader(r)
	kind, payload, err := sr.Next()
	if err != nil {
		return err
	}
	if kind != shard.FrameJob {
		return fmt.Errorf("core: worker expected job frame, got %v", kind)
	}
	jr := shard.NewReader(payload)
	name := jr.String()
	total := jr.Uvarint()
	// Copy params out of the frame scratch buffer before the next
	// Next call overwrites it.
	params := append([]byte(nil), jr.Bytes()...)
	if err := jr.Close(); err != nil {
		return fmt.Errorf("core: job frame: %w", err)
	}
	start, ok := jobRegistry[name]
	if !ok {
		return fmt.Errorf("core: unknown job %q", name)
	}
	run, err := start(params)
	if err != nil {
		return err
	}
	sw := shard.NewStreamWriter(w)
	var buf []byte
	for {
		kind, payload, err := sr.Next()
		if err != nil {
			return err
		}
		if kind == shard.FrameEnd {
			break
		}
		if kind != shard.FrameIndex {
			return fmt.Errorf("core: worker expected index frame, got %v", kind)
		}
		ir := shard.NewReader(payload)
		idx := ir.Uvarint()
		if err := ir.Close(); err != nil {
			return fmt.Errorf("core: index frame: %w", err)
		}
		if idx >= total {
			return fmt.Errorf("core: unit index %d out of range %d", idx, total)
		}
		buf = shard.AppendUvarint(buf[:0], idx)
		buf = run(buf, int(idx))
		if err := sw.Frame(shard.FrameResult, buf); err != nil {
			return err
		}
		if err := sw.Flush(); err != nil {
			return err
		}
	}
	return sw.End()
}

// MaybeServeWorker turns the process into a shard worker when spawned
// by the multiprocess executor (workerEnv set) and never returns in
// that case. Call it first in main and in TestMain, before flag
// parsing, so the "-worker" marker argument is never flag-parsed.
func MaybeServeWorker() {
	if os.Getenv(workerEnv) == "" {
		return
	}
	if err := ServeWorker(os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "shard worker:", err)
		os.Exit(1)
	}
	os.Exit(0)
}
