package core

import (
	"fmt"
	"time"

	"repro/internal/browser"
	"repro/internal/corpus"
	"repro/internal/metrics"
	"repro/internal/netem"
	"repro/internal/replay"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/strategy"
)

// Population-scale sweeps: instead of one client on one access link,
// a unit of work here is one *population run* — N clients, each with
// its own browser, connections and congestion state, loading pages
// concurrently on a single simulator while all their traffic contends
// in one shared bottleneck queue (netem.Topology). The engine fans
// (client-count, strategy, run) units across the usual worker pool;
// each worker folds its units' per-load scalars into mergeable
// sketches (metrics.Sketch), so aggregation memory is O(cells), not
// O(clients x runs), and merging the workers' sketches afterwards is
// commutative — the output is byte-identical at any -jobs.

// populationStrategies is the push contrast the population tables
// report: the no-push baseline, naive push-all, and the paper's
// headline critical-path strategy (same trio as the fault sweep).
func populationStrategies() []strategy.Strategy {
	return []strategy.Strategy{
		strategy.NoPush{},
		strategy.PushAll{},
		strategy.PushCriticalOptimized{},
	}
}

// popCell streams one (client-count, strategy) cell of a population
// table: quantile sketches for PLT and SpeedIndex plus completion
// counters. Everything in it merges commutatively.
type popCell struct {
	plt      metrics.Sketch
	si       metrics.Sketch
	loads    int64
	complete int64
}

func (c *popCell) mergeFrom(o *popCell) {
	c.plt.MergeFrom(&o.plt)
	c.si.MergeFrom(&o.si)
	c.loads += o.loads
	c.complete += o.complete
}

// popSlot is one pooled client seat: its replay farm and browser
// loader, reused across every population run the owning worker
// executes.
type popSlot struct {
	farm *replay.Farm
	ld   *browser.Loader
}

// popAccumulator is one worker's private state for a population sweep:
// the simulator and shared-bottleneck topology (reset per unit), the
// pooled client slots, the arrival-offset scratch and the streamed
// result cells. It never crosses goroutines.
type popAccumulator struct {
	sim     *sim.Sim
	topo    *netem.Topology
	slots   []popSlot
	offsets []time.Duration
	cells   []popCell
}

// popStart launches one client slot's page load. Static so staggered
// arrivals schedule through sim.AtCall without per-client closures.
func popStart(arg any) { arg.(*browser.Loader).Start() }

// runUnit executes one population run: count clients loading their
// assigned sites concurrently under st on one shared bottleneck. seed
// fixes the simulator and the arrival stagger; the same (count, run)
// pair uses the same seed for every strategy, so strategies are
// compared under identical contention conditions.
func (acc *popAccumulator) runUnit(shared netem.SharedProfile, cell *popCell,
	sites []*replay.Site, plans []replay.Plan, cfg browser.Config, run int, seed int64) {
	if acc.sim == nil {
		acc.sim = sim.New(seed)
		acc.topo = netem.NewTopology(acc.sim, shared)
	} else {
		acc.sim.Reset(seed)
		acc.topo.Reset(shared)
	}
	// Population runs never share a checkpointed prefix: every unit has
	// its own contention pattern, so fork-at-divergence is bypassed
	// deterministically (pinned by TestPopulationRunsBypassForkCache).
	forkBypassed.Add(1)
	acc.offsets = shared.ArrivalOffsets(seed, acc.offsets)
	for len(acc.slots) < shared.Clients {
		acc.slots = append(acc.slots, popSlot{})
	}
	for i := 0; i < shared.Clients; i++ {
		net := acc.topo.Client(i)
		siteIdx := (run + i) % len(sites)
		slot := &acc.slots[i]
		if slot.farm == nil {
			slot.farm = replay.NewFarm(acc.sim, net, sites[siteIdx], plans[siteIdx])
			slot.ld = browser.New(acc.sim, slot.farm, cfg)
		} else {
			slot.farm.Reset(acc.sim, net, sites[siteIdx], plans[siteIdx])
			slot.ld.Reset(acc.sim, slot.farm, cfg)
		}
		acc.sim.AtCall(acc.offsets[i], popStart, slot.ld)
	}
	acc.sim.Run()
	// Slot order is input order, but the cell is merge-order-invariant
	// anyway; scalars are extracted before the slots are recycled.
	for i := 0; i < shared.Clients; i++ {
		r := acc.slots[i].ld.Result()
		cell.plt.Add(r.PLT)
		cell.si.Add(r.SpeedIndex)
		cell.loads++
		if r.Completed {
			cell.complete++
		}
	}
}

// populationPrep applies every strategy to every site once, up front,
// and forces the parse-once Prepared state: the applied sites are
// shared read-only across all workers of every population.
func populationPrep(sts []strategy.Strategy, sites []*replay.Site) ([][]*replay.Site, [][]replay.Plan, []browser.Config) {
	applied := make([][]*replay.Site, len(sts))
	plans := make([][]replay.Plan, len(sts))
	cfgs := make([]browser.Config, len(sts))
	for sj, st := range sts {
		applied[sj] = make([]*replay.Site, len(sites))
		plans[sj] = make([]replay.Plan, len(sites))
		cfgs[sj] = browser.DefaultConfig()
		switch st.(type) {
		case strategy.NoPush, strategy.NoPushOptimized:
			cfgs[sj].EnablePush = false
		}
		for i, site := range sites {
			runSite, plan := st.Apply(site, nil)
			runSite.Prepared()
			applied[sj][i] = runSite
			plans[sj][i] = plan
		}
	}
	return applied, plans, cfgs
}

// popAddr decodes unit index u into its (client-count, strategy, run)
// coordinates. Shared by the in-process loop and the population job,
// which must agree on the unit order.
func popAddr(u, nStrategies, runs int) (ci, sj, run int) {
	ci = u / (nStrategies * runs)
	sj = (u % (nStrategies * runs)) / runs
	run = u % runs
	return
}

// popSeed is the per-unit simulator seed. It depends on (population,
// count, run) but not on the strategy: all strategies contend under
// identical arrivals.
func popSeed(seed int64, popIdx, ci, run int) int64 {
	return seed*1_000_003 + int64(popIdx)*104_729 +
		int64(ci)*15_485_863 + int64(run)*7919
}

// PopulationSweepNames resolves population preset names (nil or empty
// = every preset) and runs PopulationSweep over them.
func PopulationSweepNames(names []string, counts []int, scale ExperimentScale) ([]*Table, error) {
	var pops []scenario.Population
	if len(names) == 0 {
		pops = scenario.Populations()
	} else {
		for _, name := range names {
			p, err := scenario.PopulationByName(name)
			if err != nil {
				return nil, err
			}
			pops = append(pops, p)
		}
	}
	return PopulationSweep(pops, counts, scale)
}

// PopulationSweep runs the strategy contrast at each client count on
// each population preset and renders one table per preset: rows are
// (strategy, clients) cells with median/p95 PLT and SpeedIndex, a
// fairness ratio (PLT p95/p50 — how much the unlucky clients pay) and
// completion counts. Output is byte-identical for any scale.Jobs.
func PopulationSweep(pops []scenario.Population, counts []int, scale ExperimentScale) ([]*Table, error) {
	if len(pops) == 0 {
		return nil, fmt.Errorf("core: population sweep needs at least one population")
	}
	if len(counts) == 0 {
		return nil, fmt.Errorf("core: population sweep needs at least one client count")
	}
	for _, n := range counts {
		if n <= 0 {
			return nil, fmt.Errorf("core: client count must be positive, got %d", n)
		}
	}
	for _, pop := range pops {
		if err := pop.Validate(); err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
	}
	if err := scale.Exec.Validate(); err != nil {
		return nil, err
	}
	sts := populationStrategies()
	sites := corpus.GenerateSet(corpus.RandomProfile(), scale.Sites, scale.Seed)
	applied, plans, cfgs := populationPrep(sts, sites)

	tables := make([]*Table, 0, len(pops))
	for popIdx, pop := range pops {
		nUnits := len(counts) * len(sts) * scale.Runs
		total := make([]popCell, len(counts)*len(sts))
		if scale.Exec.multiprocess() {
			// Worker children compute one fresh cell per unit; merging
			// them in unit order lands on the same totals as the
			// per-worker accumulation below because popCell merges
			// commutatively (pinned by the equivalence tests).
			cells, err := populationJob.run(scale,
				popParams{Pop: pop, Counts: counts, PopIdx: popIdx, Scale: scaleParams(scale)}, nUnits)
			if err != nil {
				return nil, err
			}
			for u := range cells {
				ci, sj, _ := popAddr(u, len(sts), scale.Runs)
				total[ci*len(sts)+sj].mergeFrom(&cells[u])
			}
		} else {
			// Pre-size the per-worker accumulator slots with the same
			// clamp forEachWith applies, so newC can publish each
			// worker's accumulator into a disjoint index.
			workers := jobCount(scale.Jobs)
			if workers > nUnits {
				workers = nUnits
			}
			if workers < 1 {
				workers = 1
			}
			accs := make([]*popAccumulator, workers)
			newC := func(w int) *popAccumulator {
				acc := &popAccumulator{cells: make([]popCell, len(counts)*len(sts))}
				accs[w] = acc
				return acc
			}
			forEachWith(nUnits, scale.Jobs, newC, func(acc *popAccumulator, u int) {
				ci, sj, run := popAddr(u, len(sts), scale.Runs)
				shared := pop.Shared
				shared.Clients = counts[ci]
				acc.runUnit(shared, &acc.cells[ci*len(sts)+sj], applied[sj], plans[sj], cfgs[sj],
					run, popSeed(scale.Seed, popIdx, ci, run))
			})
			for _, acc := range accs {
				if acc == nil {
					continue
				}
				for i := range total {
					total[i].mergeFrom(&acc.cells[i])
				}
			}
		}

		t := &Table{
			Title:  fmt.Sprintf("Population sweep: %s — strategy x clients on one shared bottleneck", pop.Name),
			Header: []string{"strategy", "clients", "median PLT (ms)", "p95 PLT (ms)", "median SI (ms)", "p95 SI (ms)", "PLT p95/p50", "complete"},
			Notes: []string{
				pop.Info,
				fmt.Sprintf("shared %s/%s Mbit/s, RTT %v, queue %d KB; access %s/%s Mbit/s, RTT %v; arrivals spread over %v",
					mbit(pop.Shared.DownRate), mbit(pop.Shared.UpRate), pop.Shared.RTT, pop.Shared.QueueBytes/1024,
					mbit(pop.Shared.Access.DownRate), mbit(pop.Shared.Access.UpRate), pop.Shared.Access.RTT, pop.Shared.ArrivalSpread),
				fmt.Sprintf("quantiles from a mergeable sketch: within %.0f%% of the exact value (a relative-error bound, not a rank bound); p0/p100 exact",
					metrics.SketchRelativeError*100),
			},
		}
		for sj, st := range sts {
			for ci := range counts {
				cell := &total[ci*len(sts)+sj]
				t.Rows = append(t.Rows, []string{
					st.Name(),
					fmt.Sprint(counts[ci]),
					msq(cell.plt.Quantile(0.5)),
					msq(cell.plt.Quantile(0.95)),
					msq(cell.si.Quantile(0.5)),
					msq(cell.si.Quantile(0.95)),
					ratio(cell.plt.Quantile(0.95), cell.plt.Quantile(0.5)),
					fmt.Sprintf("%d/%d", cell.complete, cell.loads),
				})
			}
		}
		tables = append(tables, t)
	}
	return tables, nil
}

// msq renders a sketch quantile in milliseconds with one decimal.
func msq(d time.Duration) string {
	return fmt.Sprintf("%.1f", float64(d)/float64(time.Millisecond))
}

// mbit renders a netem rate in Mbit/s, trimming trailing zeros.
func mbit(r netem.Rate) string {
	return fmt.Sprintf("%g", float64(r)/float64(netem.Mbps))
}

// ratio renders a/b with two decimals ("-" when b is zero).
func ratio(a, b time.Duration) string {
	if b == 0 {
		return "-"
	}
	return fmt.Sprintf("%.2f", float64(a)/float64(b))
}
