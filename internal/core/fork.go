package core

import (
	"sync/atomic"
	"time"

	"repro/internal/browser"
	"repro/internal/netem"
	"repro/internal/replay"
	"repro/internal/sim"
)

// Fork-at-divergence: every strategy evaluated on the same (site,
// scenario, run) triple replays an identical simulation prefix — dial,
// handshake, first request — before anything consults the push plan.
// The driver runs that prefix once, snapshots the full simulation state
// at the divergence point (the instant the server would first consult
// its plan, see replay.Farm.ArmCheckpoint), and resumes later runs from
// the snapshot instead of re-simulating the prefix.
//
// Ownership contract: a checkpoint entry deep-copies all mutable state
// (event queue, TCP pipes, HPACK tables, stream tables, loader tables)
// into buffers owned by the entry, but the object *pointers* it holds —
// events, connections, streams, resources — alias the RunContext's
// pooled object graph. Restore rewrites those structs in place, which
// is what keeps closures captured during the prefix valid after a
// rewind. An entry is therefore only meaningful on the RunContext that
// captured it; forkState lives on the context and never crosses
// goroutines.
//
// Seed compatibility: the prefix of run A can stand in for run B only
// if the RNG makes it so. If the checkpoint was captured with zero RNG
// draws (every loss-free profile: jitter is drawn during parsing, after
// the divergence point), the entry serves any seed — Restore rewinds
// the generator and ReseedRand points it at the new run. If the prefix
// consumed draws (lossy links), the entry serves only its own seed,
// which still covers the dominant reuse pattern: the same run index
// across every strategy in a sweep.

// forkKey identifies runs whose pre-divergence simulation is identical:
// same site object, same effective browser config (push enablement and
// jitter are part of it), same realised link profile, same server think
// time.
type forkKey struct {
	site  *replay.Site
	cfg   browser.Config
	prof  netem.Profile
	think time.Duration
}

// forkEntry is one cached checkpoint.
type forkEntry struct {
	key  forkKey
	seed int64
	used uint64 // LRU stamp

	sim  sim.Snapshot
	net  netem.NetSnapshot
	farm replay.FarmSnapshot
	ld   browser.LoaderSnapshot
}

// forkCacheSize bounds the per-context checkpoint cache. Lossy
// scenarios key entries per run seed, so the cache must hold a sweep's
// recent run indices to convert the same-seed cross-strategy reuse.
const forkCacheSize = 16

// forkState is the per-RunContext checkpoint cache. A nil *forkState on
// the context disables forking entirely (NewRunContext stays plain; the
// engine's worker factories opt in).
type forkState struct {
	entries []*forkEntry
	tick    uint64

	// missed records keys that ran cold (plain, uncaptured). Capturing
	// is gated on a second miss of the same key: strategies that
	// rewrite the site get a fresh key every Apply, and paying a full
	// four-layer snapshot for a key that never recurs costs more than
	// the short pre-divergence prefix it would save.
	missed   []forkKey
	missTick int
}

// forkMissWindow bounds the cold-key memory.
const forkMissWindow = 32

// hot reports whether key already missed once, i.e. recurs and is
// worth capturing.
func (fs *forkState) hot(key forkKey) bool {
	for _, k := range fs.missed {
		if k == key {
			return true
		}
	}
	return false
}

func (fs *forkState) recordMiss(key forkKey) {
	if len(fs.missed) < forkMissWindow {
		fs.missed = append(fs.missed, key)
		return
	}
	fs.missed[fs.missTick%forkMissWindow] = key
	fs.missTick++
}

// lookup returns a seed-compatible entry for key, or nil.
func (fs *forkState) lookup(key forkKey, seed int64) *forkEntry {
	for _, e := range fs.entries {
		if e.key == key && (e.sim.Rand().Draws == 0 || e.seed == seed) {
			fs.tick++
			e.used = fs.tick
			return e
		}
	}
	return nil
}

// insert returns the entry to (over)write for key: an existing entry
// with the same key and seed, a free slot, or the least recently used
// entry.
func (fs *forkState) insert(key forkKey, seed int64) *forkEntry {
	var victim *forkEntry
	for _, e := range fs.entries {
		if e.key == key && e.seed == seed {
			victim = e
			break
		}
	}
	if victim == nil && len(fs.entries) < forkCacheSize {
		victim = &forkEntry{}
		fs.entries = append(fs.entries, victim)
	}
	if victim == nil {
		victim = fs.entries[0]
		for _, e := range fs.entries[1:] {
			if e.used < victim.used {
				victim = e
			}
		}
	}
	victim.key, victim.seed = key, seed
	fs.tick++
	victim.used = fs.tick
	return victim
}

// ForkStats reports fork-at-divergence effectiveness across all run
// contexts since the last ResetForkStats.
type ForkStats struct {
	// Prefixes counts checkpoints captured (prefix simulated in full).
	Prefixes int64
	// Hits counts runs resumed from a checkpoint.
	Hits int64
	// Fallbacks counts fork-eligible runs whose checkpoint was never
	// reached (the run completed before the first server dispatch);
	// they ran the plain full-simulation path.
	Fallbacks int64
	// Cold counts first encounters of a cache key: they run plain and
	// only mark the key, so one-shot keys never pay for a snapshot.
	Cold int64
	// Bypassed counts runs that skipped forking up front: NoFork set or
	// per-run third-party site realisation.
	Bypassed int64
	// SnapshotBytes approximates checkpoint size as the captured event
	// core's footprint, summed over prefixes (see sim.Snapshot.Bytes).
	SnapshotBytes int64
}

// HitRate is Hits over all fork-eligible runs.
func (f ForkStats) HitRate() float64 {
	tot := f.Prefixes + f.Hits + f.Fallbacks + f.Cold
	if tot == 0 {
		return 0
	}
	return float64(f.Hits) / float64(tot)
}

// The counters are process-global so drivers can report aggregate
// effectiveness without threading state through every worker; they are
// monotone atomics and never feed back into simulation, so they cannot
// affect output.
var (
	forkPrefixes  atomic.Int64
	forkHits      atomic.Int64
	forkFallbacks atomic.Int64
	forkCold      atomic.Int64
	forkBypassed  atomic.Int64
	forkSnapBytes atomic.Int64
)

// ReadForkStats returns the global fork counters.
func ReadForkStats() ForkStats {
	return ForkStats{
		Prefixes:      forkPrefixes.Load(),
		Hits:          forkHits.Load(),
		Fallbacks:     forkFallbacks.Load(),
		Cold:          forkCold.Load(),
		Bypassed:      forkBypassed.Load(),
		SnapshotBytes: forkSnapBytes.Load(),
	}
}

// ResetForkStats zeroes the global fork counters.
func ResetForkStats() {
	forkPrefixes.Store(0)
	forkHits.Store(0)
	forkFallbacks.Store(0)
	forkCold.Store(0)
	forkBypassed.Store(0)
	forkSnapBytes.Store(0)
}

// newForkContext returns a RunContext with fork-at-divergence enabled.
// The engine's worker factories use it; NewRunContext stays plain so
// one-shot RunOnce calls never pay for snapshots they cannot reuse.
func newForkContext() *RunContext { return &RunContext{fork: &forkState{}} }

// resumeForked rewinds rc to a checkpoint and completes the run under
// plan. The restore order is load-bearing: the simulator first (it
// rewrites the Event structs, including the lane sentinels the network
// lanes point at), then the network, then the farm and loader whose h2
// cores sit on top of it.
func (tb *Testbed) resumeForked(rc *RunContext, e *forkEntry, plan replay.Plan, seed int64) *RunResult {
	rc.sim.Restore(&e.sim)
	rc.net.Restore(&e.net)
	rc.farm.Restore(&e.farm)
	rc.ld.Restore(&e.ld)
	if seed != e.seed {
		// lookup only crosses seeds when the prefix drew nothing, so the
		// generator rewinds to draws==0 and can be re-pointed.
		rc.sim.ReseedRand(seed)
	}
	rc.farm.SetPlan(plan)
	forkHits.Add(1)
	rc.sim.Run()
	return &RunResult{
		Result:          rc.ld.Result(),
		WireBytesPushed: rc.farm.BytesPushed,
		WirePushCount:   rc.farm.PushCount,
	}
}

// captureFork snapshots rc's full simulation state into the cache.
func captureFork(rc *RunContext, key forkKey, seed int64) {
	e := rc.fork.insert(key, seed)
	rc.sim.Snapshot(&e.sim)
	rc.net.Snapshot(&e.net)
	rc.farm.Snapshot(&e.farm)
	rc.ld.Snapshot(&e.ld)
	forkPrefixes.Add(1)
	forkSnapBytes.Add(int64(e.sim.Bytes()))
}
