package core

import (
	"bytes"
	"encoding/json"
	"os"
	"strconv"
	"strings"
	"testing"

	"repro/internal/shard"
)

// TestMain lets the multiprocess executor re-exec this test binary as a
// shard worker: MaybeServeWorker takes over (and exits) when the worker
// marker env is set, and is a no-op otherwise. Without it, a spawned
// child would run the whole test suite instead of serving frames.
func TestMain(m *testing.M) {
	MaybeServeWorker()
	os.Exit(m.Run())
}

func TestExecValidate(t *testing.T) {
	for _, kind := range []string{"", ExecInProcess, ExecMultiProcess} {
		if err := (Exec{Kind: kind}).Validate(); err != nil {
			t.Errorf("kind %q: %v", kind, err)
		}
	}
	if err := (Exec{Kind: "threads"}).Validate(); err == nil {
		t.Error("unknown executor kind accepted")
	}
}

// TestMultiprocessMatchesInprocess is the tentpole equivalence test:
// every experiment table — including the fault and population sweeps —
// must render byte-identically whether its fan-out ran on the
// in-process pool or across 1, 2 or 4 worker child processes.
func TestMultiprocessMatchesInprocess(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker child processes")
	}
	render := func(t *testing.T, sc ExperimentScale) string {
		t.Helper()
		var sb strings.Builder
		add := func(tab *Table, err error) {
			t.Helper()
			if err != nil {
				t.Fatal(err)
			}
			sb.WriteString(tab.String())
		}
		addAll := func(tabs []*Table, err error) {
			t.Helper()
			if err != nil {
				t.Fatal(err)
			}
			for _, tab := range tabs {
				sb.WriteString(tab.String())
			}
		}
		add(Fig2aVariability(sc))
		add(Fig2bPushVsNoPush(sc))
		add(Fig4Synthetic(sc))
		add(Fig5Interleaving(sc))
		add(Fig6Popular([]string{"w1", "w2"}, sc))
		addAll(ScenarioSweepNames([]string{"dsl"}, sc))
		addAll(FaultSweepNames([]string{"dsl"}, sc))
		addAll(PopulationSweepNames([]string{"household"}, []int{1, 2}, sc))
		return sb.String()
	}
	base := ExperimentScale{Sites: 2, Runs: 2, Seed: 1, Jobs: 1}
	want := render(t, base)
	for _, shards := range []int{1, 2, 4} {
		t.Run("Shards="+strconv.Itoa(shards), func(t *testing.T) {
			sc := base
			sc.Exec = Exec{Kind: ExecMultiProcess, Shards: shards}
			got := render(t, sc)
			if got != want {
				t.Errorf("multiprocess shards=%d tables diverged from in-process: %s",
					shards, diffLine(got, want))
			}
		})
	}
}

// TestExecutorPayloadsByteIdentical compares raw encoded unit payloads
// between the two Executor implementations for every registered job the
// parent can parameterize cheaply: the multiprocess codec round-trip
// must reproduce the reference in-process encoder byte for byte.
func TestExecutorPayloadsByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker child processes")
	}
	sc := jobScale{Sites: 2, Runs: 2, Seed: 1}
	params, err := json.Marshal(deltaParams{
		Profile:  "top-100",
		Strategy: strategySpec{Kind: "pushall"},
		Scale:    sc,
	})
	if err != nil {
		t.Fatal(err)
	}
	n := sc.Sites
	inproc, err := (&inProcessExecutor{jobs: 1}).Collect("delta", params, n)
	if err != nil {
		t.Fatal(err)
	}
	multi, err := (&multiProcessExecutor{shards: 2}).Collect("delta", params, n)
	if err != nil {
		t.Fatal(err)
	}
	if len(inproc) != n || len(multi) != n {
		t.Fatalf("payload counts %d/%d, want %d", len(inproc), len(multi), n)
	}
	for i := range inproc {
		if !bytes.Equal(inproc[i], multi[i]) {
			t.Errorf("unit %d payload differs: %x vs %x", i, inproc[i], multi[i])
		}
	}
}

func TestInProcessExecutorUnknownJob(t *testing.T) {
	if _, err := (&inProcessExecutor{jobs: 1}).Collect("no-such-job", nil, 1); err == nil {
		t.Fatal("unknown job accepted")
	}
}

// TestMultiprocessSpawnFailure pins the error path when the worker
// binary cannot start: a real error, no hang, no partial results.
func TestMultiprocessSpawnFailure(t *testing.T) {
	e := &multiProcessExecutor{shards: 1, argv: []string{"/nonexistent/worker-binary"}}
	if _, err := e.Collect("delta", []byte("{}"), 1); err == nil {
		t.Fatal("spawn of nonexistent binary succeeded")
	}
}

// serveWorker runs ServeWorker over in-memory buffers against a
// hand-built frame stream.
func serveWorker(t *testing.T, frames func(sw *shard.StreamWriter)) (string, error) {
	t.Helper()
	var in, out bytes.Buffer
	sw := shard.NewStreamWriter(&in)
	frames(sw)
	err := ServeWorker(&in, &out)
	return out.String(), err
}

func jobHeader(name string, total uint64, params []byte) []byte {
	hdr := shard.AppendString(nil, name)
	hdr = shard.AppendUvarint(hdr, total)
	return shard.AppendBytes(hdr, params)
}

func TestServeWorkerRejectsBadInput(t *testing.T) {
	validParams, err := json.Marshal(fig5Params{Runs: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name   string
		frames func(sw *shard.StreamWriter)
	}{
		{"empty stream", func(sw *shard.StreamWriter) {}},
		{"unknown job", func(sw *shard.StreamWriter) {
			sw.Frame(shard.FrameJob, jobHeader("no-such-job", 1, []byte("{}")))
			sw.End()
		}},
		{"malformed params", func(sw *shard.StreamWriter) {
			sw.Frame(shard.FrameJob, jobHeader("fig5", 1, []byte("{not json")))
			sw.End()
		}},
		{"index before job", func(sw *shard.StreamWriter) {
			sw.Frame(shard.FrameIndex, shard.AppendUvarint(nil, 0))
			sw.End()
		}},
		{"index out of range", func(sw *shard.StreamWriter) {
			sw.Frame(shard.FrameJob, jobHeader("fig5", 1, validParams))
			sw.Frame(shard.FrameIndex, shard.AppendUvarint(nil, 7))
			sw.End()
		}},
		{"truncated after job", func(sw *shard.StreamWriter) {
			sw.Frame(shard.FrameJob, jobHeader("fig5", 1, validParams))
			sw.Flush()
		}},
		{"result frame from parent", func(sw *shard.StreamWriter) {
			sw.Frame(shard.FrameJob, jobHeader("fig5", 1, validParams))
			sw.Frame(shard.FrameResult, shard.AppendUvarint(nil, 0))
			sw.End()
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := serveWorker(t, tc.frames); err == nil {
				t.Fatal("bad input accepted")
			}
		})
	}
}

// TestServeWorkerRoundTrip drives the worker loop in memory and decodes
// its result stream the way readShardResults does, pinning the child
// side of the protocol without any process spawn.
func TestServeWorkerRoundTrip(t *testing.T) {
	params, err := json.Marshal(fig5Params{Runs: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	sizes := fig5Sizes()
	// Declare 4 units so stride k=0 of 2 shards is exactly {0, 2} and
	// readShardResults' completeness check matches what we feed.
	const n = 4
	out, err := serveWorker(t, func(sw *shard.StreamWriter) {
		sw.Frame(shard.FrameJob, jobHeader("fig5", n, params))
		sw.Frame(shard.FrameIndex, shard.AppendUvarint(nil, 0))
		sw.Frame(shard.FrameIndex, shard.AppendUvarint(nil, 2))
		sw.End()
	})
	if err != nil {
		t.Fatal(err)
	}
	res := make([][]byte, n)
	if err := readShardResults(strings.NewReader(out), n, 0, 2, res); err != nil {
		t.Fatal(err)
	}
	for _, i := range []int{0, 2} {
		r := shard.NewReader(res[i])
		row := r.Strings()
		if err := r.Close(); err != nil {
			t.Fatalf("unit %d: %v", i, err)
		}
		if len(row) != 4 || row[0] != strconv.Itoa(sizes[i]) {
			t.Fatalf("unit %d row = %v", i, row)
		}
	}
}
