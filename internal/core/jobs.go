package core

import (
	"fmt"

	"repro/internal/browser"
	"repro/internal/corpus"
	"repro/internal/metrics"
	"repro/internal/page"
	"repro/internal/scenario"
	"repro/internal/shard"
	"repro/internal/strategy"
)

// Job definitions: one per experiment fan-out that can cross the
// process boundary. Each defineJob call registers (a) a builder that
// reconstructs the unit function from JSON params inside a worker
// child — regenerating the deterministic site set rather than shipping
// it — and (b) the unit result codec. The in-process path never runs
// through these: jobDef.collect short-circuits to the driver's own
// typed closure, so the codec is exercised exactly when results
// actually cross a pipe.

// jobScale is the ExperimentScale subset that crosses the boundary.
// Jobs and Exec deliberately do not: a worker child always runs its
// units sequentially (parallelism comes from the shard count), and
// must never recursively spawn children.
type jobScale struct {
	Sites  int
	Runs   int
	Seed   int64
	NoFork bool
}

func scaleParams(sc ExperimentScale) jobScale {
	return jobScale{Sites: sc.Sites, Runs: sc.Runs, Seed: sc.Seed, NoFork: sc.NoFork}
}

func (p jobScale) scale() ExperimentScale {
	return ExperimentScale{Sites: p.Sites, Runs: p.Runs, Seed: p.Seed, Jobs: 1, NoFork: p.NoFork}
}

// profileByName maps the corpus profile names back to their profiles
// inside a worker child.
func profileByName(name string) (corpus.Profile, error) {
	for _, prof := range []corpus.Profile{corpus.TopProfile(), corpus.RandomProfile()} {
		if prof.Name == name {
			return prof, nil
		}
	}
	return corpus.Profile{}, fmt.Errorf("core: unknown corpus profile %q", name)
}

// strategySpec is a strategy.Strategy in JSON-portable form.
type strategySpec struct {
	Kind  string
	N     int         `json:",omitempty"`
	Kinds []page.Kind `json:",omitempty"`
}

// specFor encodes a strategy for the wire. Parent-side only, so an
// unregistered strategy type is a programming error, not input.
func specFor(st strategy.Strategy) strategySpec {
	switch s := st.(type) {
	case strategy.NoPush:
		return strategySpec{Kind: "nopush"}
	case strategy.NoPushOptimized:
		return strategySpec{Kind: "nopush-opt"}
	case strategy.PushAll:
		return strategySpec{Kind: "pushall"}
	case strategy.PushAllOptimized:
		return strategySpec{Kind: "pushall-opt"}
	case strategy.PushCritical:
		return strategySpec{Kind: "pushcritical"}
	case strategy.PushCriticalOptimized:
		return strategySpec{Kind: "pushcritical-opt"}
	case strategy.PushFirstN:
		return strategySpec{Kind: "firstn", N: s.N}
	case strategy.PushByType:
		return strategySpec{Kind: "bytype", Kinds: s.Kinds}
	}
	panic(fmt.Sprintf("core: strategy %T has no wire spec", st))
}

// strategy decodes a wire spec inside a worker child; unknown kinds
// are input errors there, never panics.
func (sp strategySpec) strategy() (strategy.Strategy, error) {
	switch sp.Kind {
	case "nopush":
		return strategy.NoPush{}, nil
	case "nopush-opt":
		return strategy.NoPushOptimized{}, nil
	case "pushall":
		return strategy.PushAll{}, nil
	case "pushall-opt":
		return strategy.PushAllOptimized{}, nil
	case "pushcritical":
		return strategy.PushCritical{}, nil
	case "pushcritical-opt":
		return strategy.PushCriticalOptimized{}, nil
	case "firstn":
		return strategy.PushFirstN{N: sp.N}, nil
	case "bytype":
		return strategy.PushByType{Kinds: sp.Kinds}, nil
	}
	return nil, fmt.Errorf("core: unknown strategy spec %q", sp.Kind)
}

// seqUnit adapts a per-worker-context unit factory for a child, which
// runs its units sequentially on one fork-enabled context.
func seqUnit[T any](unit func(rc *RunContext, i int) T) func(i int) T {
	rc := newWorkerContext(0)
	return func(i int) T { return unit(rc, i) }
}

// --- delta: Fig 2b / 3a / 3b / Sec 4.2.1 strategy-vs-baseline units ---

type deltaParams struct {
	Profile  string
	Strategy strategySpec
	Trace    bool
	Scale    jobScale
}

// deltaResult is one site's median-delta pair in milliseconds.
type deltaResult struct{ plt, si float64 }

var deltaJob = defineJob("delta",
	func(p deltaParams) (func(i int) deltaResult, error) {
		prof, err := profileByName(p.Profile)
		if err != nil {
			return nil, err
		}
		st, err := p.Strategy.strategy()
		if err != nil {
			return nil, err
		}
		scale := p.Scale.scale()
		sites := corpus.GenerateSet(prof, scale.Sites, scale.Seed)
		return seqUnit(deltaUnit(sites, st, scale, p.Trace)), nil
	},
	func(b []byte, v deltaResult) []byte {
		b = shard.AppendFloat64(b, v.plt)
		return shard.AppendFloat64(b, v.si)
	},
	func(r *shard.Reader) deltaResult {
		return deltaResult{plt: r.Float64(), si: r.Float64()}
	},
)

// --- fig2a: per-site PLT/SI samples under one scenario ---

type fig2aParams struct {
	Scn   scenario.Scenario
	Push  bool
	Scale jobScale
}

// evalSamples carries one site's full PLT/SI samples — raw or
// compacted — across the boundary, so fig2a exercises the
// metrics.Sample codec on real experiment data.
type evalSamples struct{ plt, si metrics.Sample }

var fig2aJob = defineJob("fig2a",
	func(p fig2aParams) (func(i int) evalSamples, error) {
		if err := p.Scn.Validate(); err != nil {
			return nil, err
		}
		scale := p.Scale.scale()
		sites := corpus.GenerateSet(corpus.RandomProfile(), scale.Sites, scale.Seed)
		return seqUnit(fig2aUnit(sites, p.Scn, p.Push, scale)), nil
	},
	func(b []byte, v evalSamples) []byte {
		b = shard.AppendSample(b, &v.plt)
		return shard.AppendSample(b, &v.si)
	},
	func(r *shard.Reader) evalSamples {
		return evalSamples{plt: r.Sample(), si: r.Sample()}
	},
)

// --- fig4 / fig5 / fig6: pre-rendered row fragments ---

type fig4Params struct {
	Scale jobScale
}

var fig4Job = defineJob("fig4",
	func(p fig4Params) (func(i int) [][]string, error) {
		return seqUnit(fig4Unit(corpus.SyntheticSites(), p.Scale.scale())), nil
	},
	shard.AppendRows,
	func(r *shard.Reader) [][]string { return r.Rows() },
)

type fig5Params struct {
	Runs   int
	Seed   int64
	NoFork bool
}

var fig5Job = defineJob("fig5",
	func(p fig5Params) (func(i int) []string, error) {
		return seqUnit(fig5Unit(p.Runs, p.Seed, 1, p.NoFork)), nil
	},
	shard.AppendStrings,
	func(r *shard.Reader) []string { return r.Strings() },
)

type fig6Params struct {
	IDs   []string
	Scale jobScale
}

var fig6Job = defineJob("fig6",
	func(p fig6Params) (func(i int) [][]string, error) {
		return seqUnit(fig6Unit(p.IDs, p.Scale.scale())), nil
	},
	shard.AppendRows,
	func(r *shard.Reader) [][]string { return r.Rows() },
)

// --- scenario: per-site strategy-contrast vectors ---

type scenarioParams struct {
	Scn   scenario.Scenario
	Scale jobScale
}

var scenarioJob = defineJob("scenario",
	func(p scenarioParams) (func(i int) siteResult, error) {
		if err := p.Scn.Validate(); err != nil {
			return nil, err
		}
		scale := p.Scale.scale()
		sites := corpus.GenerateSet(corpus.RandomProfile(), scale.Sites, scale.Seed)
		return seqUnit(scenarioUnit(p.Scn, sites, scale)), nil
	},
	func(b []byte, v siteResult) []byte {
		b = shard.AppendFloat64s(b, v.dPLT)
		b = shard.AppendFloat64s(b, v.dSI)
		return shard.AppendInt64s(b, v.pushedKB)
	},
	func(r *shard.Reader) siteResult {
		return siteResult{dPLT: r.Float64s(), dSI: r.Float64s(), pushedKB: r.Int64s()}
	},
)

// --- fault: per-site (family x strategy) run-stat cells ---

type faultParams struct {
	Scn   scenario.Scenario
	Scale jobScale
}

var faultJob = defineJob("fault",
	func(p faultParams) (func(i int) [][]faultRunStat, error) {
		if err := p.Scn.Validate(); err != nil {
			return nil, err
		}
		scale := p.Scale.scale()
		sites := corpus.GenerateSet(corpus.RandomProfile(), scale.Sites, scale.Seed)
		return seqUnit(faultUnit(p.Scn, sites, scale)), nil
	},
	func(b []byte, cells [][]faultRunStat) []byte {
		b = shard.AppendUvarint(b, uint64(len(cells)))
		for _, runs := range cells {
			b = shard.AppendUvarint(b, uint64(len(runs)))
			for _, st := range runs {
				b = shard.AppendUvarint(b, uint64(st.outcome))
				b = shard.AppendDuration(b, st.plt)
				b = shard.AppendVarint(b, st.failedRes)
				b = shard.AppendVarint(b, st.wastedKB)
			}
		}
		return b
	},
	func(r *shard.Reader) [][]faultRunStat {
		nc := r.Count(1)
		if nc == 0 {
			return nil
		}
		cells := make([][]faultRunStat, nc)
		for i := range cells {
			nr := r.Count(4) // each stat is at least four varint bytes
			if nr == 0 {
				continue
			}
			runs := make([]faultRunStat, nr)
			for j := range runs {
				runs[j] = faultRunStat{
					outcome:   browser.LoadOutcome(r.Uvarint()),
					plt:       r.Duration(),
					failedRes: r.Varint(),
					wastedKB:  r.Varint(),
				}
			}
			cells[i] = runs
		}
		return cells
	},
)

// --- population: one (client-count, strategy, run) cell per unit ---

type popParams struct {
	Pop    scenario.Population
	Counts []int
	PopIdx int
	Scale  jobScale
}

var populationJob = defineJob("population",
	func(p popParams) (func(u int) popCell, error) {
		if err := p.Pop.Validate(); err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
		if len(p.Counts) == 0 {
			return nil, fmt.Errorf("core: population job needs client counts")
		}
		for _, n := range p.Counts {
			if n <= 0 {
				return nil, fmt.Errorf("core: client count must be positive, got %d", n)
			}
		}
		scale := p.Scale.scale()
		sts := populationStrategies()
		sites := corpus.GenerateSet(corpus.RandomProfile(), scale.Sites, scale.Seed)
		applied, plans, cfgs := populationPrep(sts, sites)
		acc := &popAccumulator{}
		return func(u int) popCell {
			ci, sj, run := popAddr(u, len(sts), scale.Runs)
			shared := p.Pop.Shared
			shared.Clients = p.Counts[ci]
			var cell popCell
			acc.runUnit(shared, &cell, applied[sj], plans[sj], cfgs[sj],
				run, popSeed(scale.Seed, p.PopIdx, ci, run))
			return cell
		}, nil
	},
	func(b []byte, v popCell) []byte {
		b = shard.AppendSketch(b, &v.plt)
		b = shard.AppendSketch(b, &v.si)
		b = shard.AppendVarint(b, v.loads)
		return shard.AppendVarint(b, v.complete)
	},
	func(r *shard.Reader) popCell {
		return popCell{plt: r.Sketch(), si: r.Sketch(), loads: r.Varint(), complete: r.Varint()}
	},
)
