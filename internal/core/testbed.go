// Package core is the testbed of the paper: it wires the simulator, the
// emulated DSL network, the per-IP replay servers and the browser model
// into reproducible page loads, runs every configuration the evaluation
// section needs (31 repetitions, testbed vs. "Internet" variability
// modes, arbitrary push strategies), and implements the experiment
// drivers that regenerate each figure and table.
package core

import (
	"math/rand"
	"time"

	"repro/internal/browser"
	"repro/internal/metrics"
	"repro/internal/netem"
	"repro/internal/replay"
	"repro/internal/sim"
	"repro/internal/strategy"
)

// Mode selects where the measurement notionally runs.
type Mode int

// Modes.
const (
	// ModeTestbed is the controlled environment: deterministic network,
	// only small client-compute jitter (Sec. 4.1).
	ModeTestbed Mode = iota
	// ModeInternet adds run-to-run network variability, server think
	// time and third-party content variability — the conditions Fig. 2a
	// contrasts the testbed against.
	ModeInternet
)

// Testbed runs page loads under controlled conditions.
type Testbed struct {
	Profile netem.Profile
	Browser browser.Config
	Runs    int
	Seed    int64
	Mode    Mode
	// Jobs bounds the worker pool Evaluate and Trace fan their runs
	// across: <=0 uses GOMAXPROCS, 1 is strictly sequential. Every run
	// builds its own simulator from a per-run seed and results are
	// collected in run order, so output is identical for any value.
	Jobs int
}

// NewTestbed returns the paper's configuration: DSL link, 31 runs.
func NewTestbed() *Testbed {
	return &Testbed{
		Profile: netem.DSL(),
		Browser: browser.DefaultConfig(),
		Runs:    31,
		Seed:    1,
	}
}

// RunResult couples the browser-side result with server-side stats.
type RunResult struct {
	*browser.Result
	WireBytesPushed int64
	WirePushCount   int
}

// RunOnce performs a single page load of site under plan.
func (tb *Testbed) RunOnce(site *replay.Site, plan replay.Plan, run int) *RunResult {
	seed := tb.Seed*1_000_003 + int64(run)*7919
	s := sim.New(seed)
	prof := tb.Profile
	cfg := tb.Browser
	runSite := site
	if tb.Mode == ModeInternet {
		jrng := rand.New(rand.NewSource(seed ^ 0x5eed))
		prof.RTT = time.Duration(float64(prof.RTT) * (0.8 + jrng.Float64()*0.9))
		prof.DownRate = netem.Rate(float64(prof.DownRate) * (0.6 + jrng.Float64()*0.5))
		prof.UpRate = netem.Rate(float64(prof.UpRate) * (0.6 + jrng.Float64()*0.5))
		prof.LossRate = 0.0005 + jrng.Float64()*0.002
		cfg.JitterFrac = 0.10
		runSite = scaleThirdParty(site, jrng)
	}
	n := netem.New(s, prof)
	farm := replay.NewFarm(s, n, runSite, plan)
	if tb.Mode == ModeInternet {
		farm.ThinkTime = time.Duration(rand.New(rand.NewSource(seed^0x7417)).Intn(30)) * time.Millisecond
	}
	ld := browser.New(s, farm, cfg)
	ld.Start()
	s.Run()
	return &RunResult{
		Result:          ld.Result(),
		WireBytesPushed: farm.BytesPushed,
		WirePushCount:   farm.PushCount,
	}
}

// scaleThirdParty models dynamic third-party content (ads rotating
// between loads, Sec. 4): bodies on servers other than the base origin
// are rescaled randomly per run.
func scaleThirdParty(site *replay.Site, rng *rand.Rand) *replay.Site {
	db := replay.NewDB()
	for _, e := range site.DB.Entries() {
		if site.Authoritative(site.Base.Authority, e.URL.Authority) {
			db.Add(e)
			continue
		}
		ne := *e
		scale := 0.7 + rng.Float64()*0.8
		n := int(float64(len(e.Body)) * scale)
		if n < 16 {
			n = 16
		}
		body := make([]byte, n)
		copy(body, e.Body)
		for i := len(e.Body); i < n; i++ {
			body[i] = byte('x')
		}
		ne.Body = body
		db.Add(&ne)
	}
	return &replay.Site{
		Name: site.Name, Base: site.Base, DB: db,
		IPByHost: site.IPByHost, SANsByIP: site.SANsByIP,
	}
}

// Evaluation summarizes repeated runs of one (site, strategy) pair.
type Evaluation struct {
	Site     string
	Strategy string

	PLT metrics.Sample
	SI  metrics.Sample

	MedianPLT time.Duration
	MedianSI  time.Duration

	BytesPushed int64 // median over runs
	Completed   int
}

// Evaluate runs site under plan tb.Runs times, fanning the runs across
// tb.Jobs workers. Each run is self-contained (own simulator, network
// and farm, seeded from the run index) and results are aggregated in
// run order, so the output matches the sequential path exactly.
func (tb *Testbed) Evaluate(site *replay.Site, plan replay.Plan, name string) *Evaluation {
	ev := &Evaluation{Site: site.Name, Strategy: name}
	results := collect(tb.Runs, tb.Jobs, func(i int) *RunResult {
		return tb.RunOnce(site, plan, i)
	})
	pushed := make([]int64, 0, len(results))
	for _, r := range results {
		ev.PLT.Add(r.PLT)
		ev.SI.Add(r.SpeedIndex)
		pushed = append(pushed, r.WireBytesPushed)
		if r.Completed {
			ev.Completed++
		}
	}
	ev.MedianPLT = ev.PLT.Median()
	ev.MedianSI = ev.SI.Median()
	ev.BytesPushed = metrics.MedianInt64(pushed)
	return ev
}

// EvaluateStrategy applies a strategy (site rewrite + plan) and runs it.
// The receiver is never mutated: baseline strategies that disable push
// act on a per-call copy of the testbed, so concurrent evaluations on a
// shared Testbed are safe.
func (tb *Testbed) EvaluateStrategy(site *replay.Site, st strategy.Strategy, tr *strategy.Trace) *Evaluation {
	runSite, plan := st.Apply(site, tr)
	run := *tb
	switch st.(type) {
	case strategy.NoPush, strategy.NoPushOptimized:
		run.Browser.EnablePush = false
	}
	return run.Evaluate(runSite, plan, st.Name())
}

// Trace performs the paper's dependency-tracing step (Sec. 4.2): load
// the site without push `runs` times and record the subresource request
// orders for the majority vote. Like EvaluateStrategy it works on a
// per-call copy of the testbed and fans the trace loads across workers.
func (tb *Testbed) Trace(site *replay.Site, runs int) *strategy.Trace {
	probe := *tb
	probe.Browser.EnablePush = false
	base := site.Base.String()
	orders := collect(runs, tb.Jobs, func(i int) []string {
		r := probe.RunOnce(site, replay.NoPush(), 1000+i)
		var order []string
		for _, t := range r.Timings {
			if t.URL == base || t.Pushed {
				continue
			}
			order = append(order, t.URL)
		}
		return order
	})
	return &strategy.Trace{Orders: orders}
}
