// Package core is the testbed of the paper: it wires the simulator, the
// emulated access network, the per-IP replay servers and the browser
// model into reproducible page loads, runs every configuration the
// evaluation section needs (31 repetitions, composable measurement
// scenarios from internal/scenario, arbitrary push strategies), and
// implements the experiment drivers that regenerate each figure and
// table plus the cross-scenario strategy sweep.
package core

import (
	"fmt"

	"repro/internal/browser"
	"repro/internal/metrics"
	"repro/internal/netem"
	"repro/internal/replay"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/strategy"
	"time"
)

// Mode selects where the measurement notionally runs.
//
// Deprecated: Mode survives as a thin shim for older call sites; it is
// exactly the scenario.DSL / scenario.Internet pair. New code sets
// Testbed.Scenario directly.
type Mode int

// Modes.
const (
	// ModeTestbed is the controlled environment: deterministic network,
	// only small client-compute jitter (Sec. 4.1).
	ModeTestbed Mode = iota
	// ModeInternet adds run-to-run network variability, server think
	// time and third-party content variability — the conditions Fig. 2a
	// contrasts the testbed against.
	ModeInternet
)

// Scenario translates the legacy mode onto the scenario subsystem.
func (m Mode) Scenario() scenario.Scenario {
	if m == ModeInternet {
		return scenario.Internet()
	}
	return scenario.DSL()
}

// Testbed runs page loads under one measurement scenario.
type Testbed struct {
	// Scenario is the measurement condition: the emulated access link
	// plus the run-to-run variability model. All per-run perturbation is
	// derived from it; the testbed itself holds no perturbation logic.
	Scenario scenario.Scenario
	Browser  browser.Config
	Runs     int
	Seed     int64
	// Jobs bounds the worker pool Evaluate and Trace fan their runs
	// across: <=0 uses GOMAXPROCS, 1 is strictly sequential. Every run
	// builds its own simulator from a per-run seed and results are
	// collected in run order, so output is identical for any value.
	Jobs int
}

// NewTestbed returns the paper's configuration: DSL link, 31 runs.
func NewTestbed() *Testbed {
	return &Testbed{
		Scenario: scenario.DSL(),
		Browser:  browser.DefaultConfig(),
		Runs:     31,
		Seed:     1,
	}
}

// NewTestbedFor builds a testbed for an arbitrary scenario, validating
// it up front so a nonsensical profile fails fast with a clear error
// instead of a mid-experiment panic.
func NewTestbedFor(sc scenario.Scenario) (*Testbed, error) {
	if err := sc.Validate(); err != nil {
		return nil, fmt.Errorf("core: invalid scenario: %w", err)
	}
	tb := NewTestbed()
	tb.Scenario = sc
	return tb, nil
}

// SetMode is the deprecated Mode shim: it replaces the testbed's
// scenario with the one the legacy mode names.
//
// Deprecated: set Testbed.Scenario directly.
func (tb *Testbed) SetMode(m Mode) { tb.Scenario = m.Scenario() }

// RunResult couples the browser-side result with server-side stats.
type RunResult struct {
	*browser.Result
	WireBytesPushed int64
	WirePushCount   int
}

// RunOnce performs a single page load of site under plan. All
// perturbation — link jitter, loss, server think time, third-party
// content scaling, client compute jitter — comes from the scenario's
// deterministic per-run derivation.
func (tb *Testbed) RunOnce(site *replay.Site, plan replay.Plan, run int) *RunResult {
	seed := tb.Seed*1_000_003 + int64(run)*7919
	cond := tb.Scenario.Derive(seed)
	s := sim.New(seed)
	cfg := tb.Browser
	switch {
	case cond.ClientJitterFrac > 0:
		cfg.JitterFrac = cond.ClientJitterFrac
	case cond.ClientJitterFrac < 0: // scenario forces a deterministic client
		cfg.JitterFrac = 0
	}
	n := netem.New(s, cond.Profile)
	farm := replay.NewFarm(s, n, cond.ApplySite(site), plan)
	farm.ThinkTime = cond.ThinkTime
	ld := browser.New(s, farm, cfg)
	ld.Start()
	s.Run()
	return &RunResult{
		Result:          ld.Result(),
		WireBytesPushed: farm.BytesPushed,
		WirePushCount:   farm.PushCount,
	}
}

// Evaluation summarizes repeated runs of one (site, strategy) pair.
type Evaluation struct {
	Site     string
	Strategy string

	PLT metrics.Sample
	SI  metrics.Sample

	MedianPLT time.Duration
	MedianSI  time.Duration

	BytesPushed int64 // median over runs
	Completed   int
}

// Evaluate runs site under plan tb.Runs times, fanning the runs across
// tb.Jobs workers. Each run is self-contained (own simulator, network
// and farm, seeded from the run index) and results are aggregated in
// run order, so the output matches the sequential path exactly.
func (tb *Testbed) Evaluate(site *replay.Site, plan replay.Plan, name string) *Evaluation {
	ev := &Evaluation{Site: site.Name, Strategy: name}
	results := collect(tb.Runs, tb.Jobs, func(i int) *RunResult {
		return tb.RunOnce(site, plan, i)
	})
	pushed := make([]int64, 0, len(results))
	for _, r := range results {
		ev.PLT.Add(r.PLT)
		ev.SI.Add(r.SpeedIndex)
		pushed = append(pushed, r.WireBytesPushed)
		if r.Completed {
			ev.Completed++
		}
	}
	ev.MedianPLT = ev.PLT.Median()
	ev.MedianSI = ev.SI.Median()
	ev.BytesPushed = metrics.MedianInt64(pushed)
	return ev
}

// EvaluateStrategy applies a strategy (site rewrite + plan) and runs it.
// The receiver is never mutated: baseline strategies that disable push
// act on a per-call copy of the testbed, so concurrent evaluations on a
// shared Testbed are safe.
func (tb *Testbed) EvaluateStrategy(site *replay.Site, st strategy.Strategy, tr *strategy.Trace) *Evaluation {
	runSite, plan := st.Apply(site, tr)
	run := *tb
	switch st.(type) {
	case strategy.NoPush, strategy.NoPushOptimized:
		run.Browser.EnablePush = false
	}
	return run.Evaluate(runSite, plan, st.Name())
}

// Trace performs the paper's dependency-tracing step (Sec. 4.2): load
// the site without push `runs` times and record the subresource request
// orders for the majority vote. Like EvaluateStrategy it works on a
// per-call copy of the testbed and fans the trace loads across workers.
func (tb *Testbed) Trace(site *replay.Site, runs int) *strategy.Trace {
	probe := *tb
	probe.Browser.EnablePush = false
	base := site.Base.String()
	orders := collect(runs, tb.Jobs, func(i int) []string {
		r := probe.RunOnce(site, replay.NoPush(), 1000+i)
		var order []string
		for _, t := range r.Timings {
			if t.URL == base || t.Pushed {
				continue
			}
			order = append(order, t.URL)
		}
		return order
	})
	return &strategy.Trace{Orders: orders}
}
