// Package core is the testbed of the paper: it wires the simulator, the
// emulated access network, the per-IP replay servers and the browser
// model into reproducible page loads, runs every configuration the
// evaluation section needs (31 repetitions, composable measurement
// scenarios from internal/scenario, arbitrary push strategies), and
// implements the experiment drivers that regenerate each figure and
// table plus the cross-scenario strategy sweep.
package core

import (
	"fmt"

	"repro/internal/browser"
	"repro/internal/fault"
	"repro/internal/metrics"
	"repro/internal/netem"
	"repro/internal/replay"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/strategy"
	"time"
)

// Mode selects where the measurement notionally runs.
//
// Deprecated: Mode survives as a thin shim for older call sites; it is
// exactly the scenario.DSL / scenario.Internet pair. New code sets
// Testbed.Scenario directly.
type Mode int

// Modes.
const (
	// ModeTestbed is the controlled environment: deterministic network,
	// only small client-compute jitter (Sec. 4.1).
	ModeTestbed Mode = iota
	// ModeInternet adds run-to-run network variability, server think
	// time and third-party content variability — the conditions Fig. 2a
	// contrasts the testbed against.
	ModeInternet
)

// Scenario translates the legacy mode onto the scenario subsystem.
func (m Mode) Scenario() scenario.Scenario {
	if m == ModeInternet {
		return scenario.Internet()
	}
	return scenario.DSL()
}

// Testbed runs page loads under one measurement scenario.
type Testbed struct {
	// Scenario is the measurement condition: the emulated access link
	// plus the run-to-run variability model. All per-run perturbation is
	// derived from it; the testbed itself holds no perturbation logic.
	Scenario scenario.Scenario
	Browser  browser.Config
	Runs     int
	Seed     int64
	// Jobs bounds the worker pool Evaluate and Trace fan their runs
	// across: <=0 uses GOMAXPROCS, 1 is strictly sequential. Every run
	// re-seeds its simulator from the run index and results are
	// collected in run order, so output is identical for any value.
	Jobs int
	// NoFork disables fork-at-divergence checkpoint reuse (see fork.go),
	// forcing every run to simulate its full prefix. Output is
	// byte-identical either way; the flag exists for ablation and as a
	// correctness cross-check.
	NoFork bool

	// limitEvents, when positive, bounds each run's simulator event
	// count. Test hook: a bound below the handshake length is the only
	// way to end a run before the first server dispatch, which is what
	// exercises the fork driver's pre-checkpoint fallback path.
	limitEvents int

	// ctx, when set, seeds one run-level worker with a caller-owned
	// RunContext so its warmed state is reused across Evaluate/Trace
	// calls (the experiment drivers set it to the site-level worker's
	// context). The context is lent to exactly one worker per pool while
	// the call blocks, so a testbed carrying a ctx must only be used
	// from a single goroutine at a time; testbeds shared across
	// goroutines (see EvaluateStrategy) leave it nil.
	ctx *RunContext
}

// UseContext attaches a caller-owned run context that Evaluate and
// Trace reuse across calls (see the ctx field for the ownership rules).
func (tb *Testbed) UseContext(rc *RunContext) { tb.ctx = rc }

// workerContext is the per-worker context factory for run-level pools:
// worker 0 borrows the testbed's attached context (if any), every other
// worker gets a fresh fork-enabled one, so even contexts that live for
// a single Evaluate call reuse the checkpointed prefix across its runs.
func (tb *Testbed) workerContext(worker int) *RunContext {
	if worker == 0 && tb.ctx != nil {
		return tb.ctx
	}
	return newForkContext()
}

// NewTestbed returns the paper's configuration: DSL link, 31 runs.
func NewTestbed() *Testbed {
	return &Testbed{
		Scenario: scenario.DSL(),
		Browser:  browser.DefaultConfig(),
		Runs:     31,
		Seed:     1,
	}
}

// NewTestbedFor builds a testbed for an arbitrary scenario, validating
// it up front so a nonsensical profile fails fast with a clear error
// instead of a mid-experiment panic.
func NewTestbedFor(sc scenario.Scenario) (*Testbed, error) {
	if err := sc.Validate(); err != nil {
		return nil, fmt.Errorf("core: invalid scenario: %w", err)
	}
	tb := NewTestbed()
	tb.Scenario = sc
	return tb, nil
}

// SetMode is the deprecated Mode shim: it replaces the testbed's
// scenario with the one the legacy mode names.
//
// Deprecated: set Testbed.Scenario directly.
func (tb *Testbed) SetMode(m Mode) { tb.Scenario = m.Scenario() }

// RunResult couples the browser-side result with server-side stats.
type RunResult struct {
	*browser.Result
	WireBytesPushed int64
	WirePushCount   int
}

// RunContext owns the per-worker simulation state one run needs — the
// simulator, the emulated network, the server farm, the browser loader
// and the third-party overlay scratch — and is reused across the runs a
// worker executes: a warm context resets this state instead of
// reallocating it, so steady-state runs spend their allocations only on
// genuinely per-run objects. A RunContext must be owned by exactly one
// goroutine at a time; the engine's worker pools guarantee that by
// construction. It caches scratch, never results, so reuse cannot
// change any output.
type RunContext struct {
	sim     *sim.Sim
	net     *netem.Network
	farm    *replay.Farm
	ld      *browser.Loader
	overlay scenario.SiteScratch
	// inj schedules the run's fault plan (if any) on the sim clock;
	// applyFn is the once-built dispatch closure it hands each event to.
	inj     fault.Injector
	applyFn func(fault.Event)
	// fork, when non-nil, enables fork-at-divergence checkpoint reuse
	// across the runs this context executes (see fork.go). Entries
	// alias the context's pooled object graph, so the cache is strictly
	// per-context.
	fork *forkState
}

// NewRunContext returns an empty context; the first run populates it.
func NewRunContext() *RunContext { return &RunContext{} }

// applyFault dispatches one scheduled fault event onto the layer it
// targets: the emulated link, the server farm or the browser.
func (rc *RunContext) applyFault(e fault.Event) {
	switch e.Kind {
	case fault.KindLinkCut, fault.KindLinkDown:
		rc.net.CutLink()
	case fault.KindLinkUp:
		rc.net.ResumeLink()
	case fault.KindServerStall:
		rc.farm.Stall(e.Dur)
	case fault.KindGoAway:
		rc.farm.InjectGoAway()
	case fault.KindPushReset:
		rc.farm.InjectPushResets()
	case fault.KindDisablePush:
		rc.ld.DisablePush()
	}
}

// RunOnce performs a single page load of site under plan. All
// perturbation — link jitter, loss, server think time, third-party
// content scaling, client compute jitter — comes from the scenario's
// deterministic per-run derivation. It runs on a throwaway context;
// callers executing many runs should hold a RunContext and use
// RunOnceWith.
func (tb *Testbed) RunOnce(site *replay.Site, plan replay.Plan, run int) *RunResult {
	return tb.RunOnceWith(NewRunContext(), site, plan, run)
}

// RunOnceWith is RunOnce on a reusable context. The returned result
// (including the embedded browser.Result and its slices) is owned by
// the context and valid only until the next run on rc; callers keeping
// more than scalars must copy them out before reusing the context.
func (tb *Testbed) RunOnceWith(rc *RunContext, site *replay.Site, plan replay.Plan, run int) *RunResult {
	seed := tb.Seed*1_000_003 + int64(run)*7919
	cond := tb.Scenario.Derive(seed)
	cfg := tb.Browser
	switch {
	case cond.ClientJitterFrac > 0:
		cfg.JitterFrac = cond.ClientJitterFrac
	case cond.ClientJitterFrac < 0: // scenario forces a deterministic client
		cfg.JitterFrac = 0
	}
	fork := rc.fork
	if fork != nil && (tb.NoFork || cond.ThirdPartyVaries() || cond.FaultsActive()) {
		// Per-run third-party realisation makes the site itself a
		// function of the seed, so no prefix is shareable; fault-bearing
		// runs perturb the shared prefix (an injector event can land
		// before the divergence point), so they bypass the cache too.
		fork = nil
		forkBypassed.Add(1)
	}
	var key forkKey
	if fork != nil {
		key = forkKey{site: site, cfg: cfg, prof: cond.Profile, think: cond.ThinkTime}
		if e := fork.lookup(key, seed); e != nil {
			return tb.resumeForked(rc, e, plan, seed)
		}
		if !fork.hot(key) {
			// First encounter: run plain and only remember the key.
			// Capturing is deferred to a second miss so one-shot keys
			// (strategies that rewrite the site produce a fresh key per
			// Apply) never pay for a snapshot that cannot be reused.
			fork.recordMiss(key)
			forkCold.Add(1)
			fork = nil
		}
	}
	if rc.sim == nil {
		rc.sim = sim.New(seed)
		rc.net = netem.New(rc.sim, cond.Profile)
	} else {
		rc.sim.Reset(seed)
		rc.net.Reset(cond.Profile)
	}
	if tb.limitEvents > 0 {
		rc.sim.Limit = tb.limitEvents
	}
	runSite := cond.ApplySiteInto(site, &rc.overlay)
	if rc.farm == nil {
		rc.farm = replay.NewFarm(rc.sim, rc.net, runSite, plan)
	} else {
		rc.farm.Reset(rc.sim, rc.net, runSite, plan)
	}
	rc.farm.ThinkTime = cond.ThinkTime
	if rc.ld == nil {
		rc.ld = browser.New(rc.sim, rc.farm, cfg)
	} else {
		rc.ld.Reset(rc.sim, rc.farm, cfg)
	}
	if fork != nil {
		rc.farm.ArmCheckpoint()
	}
	if cond.FaultsActive() {
		if rc.applyFn == nil {
			rc.applyFn = rc.applyFault
		}
		rc.inj.Reset(rc.sim, rc.applyFn)
		rc.inj.Arm(cond.Faults)
	}
	rc.ld.Start()
	rc.sim.Run()
	if fork != nil {
		if rc.farm.CheckpointHit() {
			// The sim stopped at the divergence point with the first
			// serve still queued; capture the prefix, then let this
			// run's own plan (installed at Reset) play out.
			captureFork(rc, key, seed)
			rc.sim.Run()
		} else {
			forkFallbacks.Add(1)
		}
	}
	return &RunResult{
		Result:          rc.ld.Result(),
		WireBytesPushed: rc.farm.BytesPushed,
		WirePushCount:   rc.farm.PushCount,
	}
}

// Evaluation summarizes repeated runs of one (site, strategy) pair.
type Evaluation struct {
	Site     string
	Strategy string

	PLT metrics.Sample
	SI  metrics.Sample

	MedianPLT time.Duration
	MedianSI  time.Duration

	BytesPushed int64 // median over runs
	Completed   int
}

// Evaluate runs site under plan tb.Runs times, fanning the runs across
// tb.Jobs workers. Each run is deterministically seeded from its run
// index and executes on its worker's reusable RunContext; the scalar
// outcomes are extracted inside the worker (the context recycles the
// full Result on its next run) and aggregated in run order, so the
// output matches the sequential path exactly.
func (tb *Testbed) Evaluate(site *replay.Site, plan replay.Plan, name string) *Evaluation {
	ev := &Evaluation{Site: site.Name, Strategy: name}
	type runStat struct {
		plt, si   time.Duration
		pushed    int64
		completed bool
	}
	stats := collectWith(tb.Runs, tb.Jobs, tb.workerContext, func(rc *RunContext, i int) runStat {
		r := tb.RunOnceWith(rc, site, plan, i)
		return runStat{plt: r.PLT, si: r.SpeedIndex, pushed: r.WireBytesPushed, completed: r.Completed}
	})
	pushed := make([]int64, 0, len(stats))
	for _, r := range stats {
		ev.PLT.Add(r.plt)
		ev.SI.Add(r.si)
		pushed = append(pushed, r.pushed)
		if r.completed {
			ev.Completed++
		}
	}
	ev.MedianPLT = ev.PLT.Median()
	ev.MedianSI = ev.SI.Median()
	ev.BytesPushed = metrics.MedianInt64(pushed)
	return ev
}

// EvaluateStrategy applies a strategy (site rewrite + plan) and runs it.
// The receiver is never mutated: baseline strategies that disable push
// act on a per-call copy of the testbed, so concurrent evaluations on a
// shared Testbed are safe — provided no run context is attached. The
// per-call copy shares the receiver's UseContext context (that reuse is
// the point of attaching one), so a testbed carrying a context must
// only be evaluated from one goroutine at a time; testbeds shared
// across goroutines must leave the context unset.
func (tb *Testbed) EvaluateStrategy(site *replay.Site, st strategy.Strategy, tr *strategy.Trace) *Evaluation {
	runSite, plan := st.Apply(site, tr)
	run := *tb
	switch st.(type) {
	case strategy.NoPush, strategy.NoPushOptimized:
		run.Browser.EnablePush = false
	}
	ev := run.Evaluate(runSite, plan, st.Name())
	// The experiment drivers consume only the summary statistics, which
	// Compact freezes at their exact values before releasing the raw
	// per-run samples — the golden tables are unaffected, and a sweep's
	// resident memory stops scaling with runs. Callers needing the raw
	// samples use Evaluate directly.
	ev.PLT.Compact()
	ev.SI.Compact()
	return ev
}

// Trace performs the paper's dependency-tracing step (Sec. 4.2): load
// the site without push `runs` times and record the subresource request
// orders for the majority vote. Like EvaluateStrategy it works on a
// per-call copy of the testbed and fans the trace loads across workers
// on reusable run contexts (the order lists are copied out before a
// context recycles its Result).
func (tb *Testbed) Trace(site *replay.Site, runs int) *strategy.Trace {
	probe := *tb
	probe.Browser.EnablePush = false
	base := site.Base.String()
	orders := collectWith(runs, tb.Jobs, probe.workerContext, func(rc *RunContext, i int) []string {
		r := probe.RunOnceWith(rc, site, replay.NoPush(), 1000+i)
		var order []string
		for _, t := range r.Timings {
			if t.URL == base || t.Pushed {
				continue
			}
			order = append(order, t.URL)
		}
		return order
	})
	return &strategy.Trace{Orders: orders}
}
