package replay

import (
	"encoding/gob"
	"fmt"
	"os"

	"repro/internal/page"
)

// siteFile is the on-disk representation of a Site (the record
// directory, in Mahimahi terms).
type siteFile struct {
	Name     string
	Base     page.URL
	Entries  []Entry
	IPByHost map[string]string
	SANsByIP map[string][]string
}

// SaveSite writes a recorded site to path (gob encoded).
func SaveSite(path string, s *Site) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("replay: saving site: %w", err)
	}
	defer f.Close()
	sf := siteFile{
		Name:     s.Name,
		Base:     s.Base,
		IPByHost: s.IPByHost,
		SANsByIP: s.SANsByIP,
	}
	for _, e := range s.DB.Entries() {
		sf.Entries = append(sf.Entries, *e)
	}
	if err := gob.NewEncoder(f).Encode(&sf); err != nil {
		return fmt.Errorf("replay: encoding site: %w", err)
	}
	return nil
}

// LoadSite reads a site previously written by SaveSite.
func LoadSite(path string) (*Site, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("replay: loading site: %w", err)
	}
	defer f.Close()
	var sf siteFile
	if err := gob.NewDecoder(f).Decode(&sf); err != nil {
		return nil, fmt.Errorf("replay: decoding site: %w", err)
	}
	db := NewDB()
	for i := range sf.Entries {
		e := sf.Entries[i]
		db.Add(&e)
	}
	return &Site{
		Name:     sf.Name,
		Base:     sf.Base,
		DB:       db,
		IPByHost: sf.IPByHost,
		SANsByIP: sf.SANsByIP,
	}, nil
}
