package replay

// Plan is a push strategy lowered to serving directives: what each
// response triggers. Strategies (internal/strategy) compile to a Plan;
// the replay farm executes it.
type Plan struct {
	// Push maps a triggering URL (usually the base HTML) to the ordered
	// list of absolute URLs to push on its request. The farm silently
	// drops non-authoritative pushes (objects on other servers cannot be
	// pushed, Sec. 4.2).
	Push map[string][]string
	// Interleave maps a triggering URL to an interleaving directive.
	Interleave map[string]InterleaveSpec
}

// InterleaveSpec is the paper's modified-scheduler directive (Sec. 5):
// send OffsetBytes of the response, hard-switch to the pushes listed in
// Critical (in order), then resume. Pushed URLs not in Critical are sent
// after the response completes (the "push all optimized" layout).
type InterleaveSpec struct {
	OffsetBytes int
	Critical    []string
}

// NoPush is the empty plan (the baseline; with the client additionally
// setting SETTINGS_ENABLE_PUSH=0 nothing is ever pushed).
func NoPush() Plan { return Plan{} }

// PushList builds a plan that pushes the given URLs when trigger is
// requested.
func PushList(trigger string, urls ...string) Plan {
	return Plan{Push: map[string][]string{trigger: urls}}
}

// WithInterleave returns a copy of p with an interleave directive added.
func (p Plan) WithInterleave(trigger string, spec InterleaveSpec) Plan {
	np := p
	if np.Interleave == nil {
		np.Interleave = map[string]InterleaveSpec{}
	}
	np.Interleave[trigger] = spec
	return np
}

// PushesFor returns the push list for a URL.
func (p Plan) PushesFor(url string) []string {
	if p.Push == nil {
		return nil
	}
	return p.Push[url]
}
