package replay

import (
	"repro/internal/h2"
	"repro/internal/hpack"
	"repro/internal/page"
)

// Interns is a prepared site's dense-ID name table: every resource URL,
// authority (connection group) and font family the site can name is
// assigned a small integer at prepare time, so the per-run hot path
// (loader resource tables, farm push sets, request issuing) indexes
// slices instead of hashing strings.
//
// Contract: IDs are prepare-time-stable and strictly per-site — an ID is
// meaningless outside the Prepared that minted it, and IDs are never
// reused across prepared sites (a rewritten site is a new Site with its
// own Prepared and its own ID space; a scenario variant shares its
// base's Prepared and therefore its base's IDs). Everything in an
// Interns is immutable after prepare and shared read-only by all
// workers.
//
// The table also carries the prepare-time HPACK pre-encoding: for every
// resource, the request/push-promise header list and its pre-encoded
// block as a connection's first block; for every recorded entry, the
// response header list and block likewise (see hpack.PreEncoded for the
// byte-identity rules).
type Interns struct {
	keys    []string
	urls    []page.URL
	entries []*Entry // nil when the URL is referenced but not recorded
	connOf  []int32  // resource ID -> connection group ID, -1 unknown

	reqFields  [][]hpack.HeaderField
	reqPre     []hpack.PreEncoded
	respFields [][]hpack.HeaderField // nil for entry-less resources
	respPre    []hpack.PreEncoded

	idByKey   map[string]int32
	idByEntry map[*Entry]int32

	connKeys    []string // group ID -> coalescing key
	groupByHost map[string]int32

	famByName map[string]int32
	families  []string
}

// internSite builds the site's intern table. It runs once, inside
// Site.Prepared's sync.Once, before any worker shares the result.
func internSite(s *Site, p *Prepared) *Interns {
	in := &Interns{
		idByKey:     make(map[string]int32),
		idByEntry:   make(map[*Entry]int32),
		groupByHost: make(map[string]int32),
		famByName:   make(map[string]int32),
	}

	// Connection groups: every deployed host first (sorted, so IDs are
	// independent of reference order), then unknown authorities as they
	// appear among interned resources.
	for _, h := range s.Hosts() {
		in.groupForHost(s, h)
	}

	// Resources: recorded entries in insertion order, then every URL the
	// prepared parse can name — document references and stylesheet
	// fonts/assets/imports — so the loader's prepare-time-resolved IDs
	// cover everything a replayed run fetches.
	for _, e := range s.DB.Entries() {
		id := in.internURL(s, e.URL, e.URL.String())
		if in.entries[id] == nil {
			in.entries[id] = e
			in.idByEntry[e] = id
			in.respFields[id] = h2.ResponseFields(nil, e.Status, e.ContentType, len(e.Body))
			in.respPre[id] = hpack.PreEncode(in.respFields[id])
		}
	}
	if p.doc != nil {
		for i := range p.doc.Resources {
			if u, err := page.ParseURL(p.doc.Resources[i].URL, s.Base); err == nil {
				in.internURL(s, u, u.String())
			}
		}
	}
	for _, e := range s.DB.Entries() {
		sheet := p.sheets[e]
		if sheet == nil {
			continue
		}
		for _, ff := range sheet.FontFaces {
			if ff.Family != "" {
				in.internFamily(ff.Family)
			}
			if ff.URL == "" {
				continue
			}
			if u, err := page.ParseURL(ff.URL, e.URL); err == nil {
				in.internURL(s, u, u.String())
			}
		}
		for _, asset := range sheet.AssetURLs {
			if u, err := page.ParseURL(asset, e.URL); err == nil {
				in.internURL(s, u, u.String())
			}
		}
		for _, imp := range sheet.Imports {
			if u, err := page.ParseURL(imp, e.URL); err == nil {
				in.internURL(s, u, u.String())
			}
		}
	}
	return in
}

func (in *Interns) internURL(s *Site, u page.URL, key string) int32 {
	if id, ok := in.idByKey[key]; ok {
		return id
	}
	id := int32(len(in.keys))
	in.idByKey[key] = id
	in.keys = append(in.keys, key)
	in.urls = append(in.urls, u)
	in.entries = append(in.entries, nil)
	in.connOf = append(in.connOf, in.groupForHost(s, u.Authority))
	fields := h2.Request{
		Method: "GET", Scheme: u.Scheme, Authority: u.Authority, Path: u.Path,
	}.Fields()
	in.reqFields = append(in.reqFields, fields)
	in.reqPre = append(in.reqPre, hpack.PreEncode(fields))
	in.respFields = append(in.respFields, nil)
	in.respPre = append(in.respPre, hpack.PreEncoded{})
	return id
}

func (in *Interns) groupForHost(s *Site, host string) int32 {
	if g, ok := in.groupByHost[host]; ok {
		return g
	}
	key := s.ConnKey(host)
	// Coalesced hosts share a group: find an existing group with the same
	// coalescing key (groups are few; linear scan at prepare time).
	for g, k := range in.connKeys {
		if k == key {
			in.groupByHost[host] = int32(g)
			return int32(g)
		}
	}
	g := int32(len(in.connKeys))
	in.connKeys = append(in.connKeys, key)
	in.groupByHost[host] = g
	return g
}

func (in *Interns) internFamily(name string) int32 {
	if id, ok := in.famByName[name]; ok {
		return id
	}
	id := int32(len(in.families))
	in.famByName[name] = id
	in.families = append(in.families, name)
	return id
}

// NumResources returns the size of the resource-ID space.
func (in *Interns) NumResources() int { return len(in.keys) }

// NumConnGroups returns the size of the connection-group-ID space.
func (in *Interns) NumConnGroups() int { return len(in.connKeys) }

// NumFamilies returns the size of the font-family-ID space.
func (in *Interns) NumFamilies() int { return len(in.families) }

// Lookup returns the resource ID for a canonical URL string.
func (in *Interns) Lookup(key string) (int32, bool) {
	id, ok := in.idByKey[key]
	return id, ok
}

// KeyOf returns the canonical URL string for id.
func (in *Interns) KeyOf(id int32) string { return in.keys[id] }

// URLOf returns the parsed URL for id.
func (in *Interns) URLOf(id int32) page.URL { return in.urls[id] }

// EntryOf returns the recorded entry for id, nil when the URL is
// referenced by the site but not recorded.
func (in *Interns) EntryOf(id int32) *Entry { return in.entries[id] }

// ConnGroupOf returns id's connection group, -1 for unknown hosts.
func (in *Interns) ConnGroupOf(id int32) int32 { return in.connOf[id] }

// ConnGroupOfHost returns the connection group serving host.
func (in *Interns) ConnGroupOfHost(host string) (int32, bool) {
	g, ok := in.groupByHost[host]
	return g, ok
}

// ConnKeyOf returns the coalescing key of a connection group.
func (in *Interns) ConnKeyOf(group int32) string { return in.connKeys[group] }

// FamilyID returns the dense ID of a font family named by the site's
// stylesheets.
func (in *Interns) FamilyID(name string) (int32, bool) {
	id, ok := in.famByName[name]
	return id, ok
}

// ReqFields returns the prepare-time request header list for id (exactly
// h2.Request.Fields() of a GET for the URL).
func (in *Interns) ReqFields(id int32) []hpack.HeaderField { return in.reqFields[id] }

// ReqPre returns the pre-encoded request/push-promise block for id,
// valid as a connection's first header block.
func (in *Interns) ReqPre(id int32) *hpack.PreEncoded { return &in.reqPre[id] }

// RespFieldsOf returns the prepare-time response header list and
// pre-encoded block for a recorded entry; ok is false for entries the
// prepared site does not own (per-run scaled copies, unrecorded URLs),
// which must take the live-encoding path.
func (in *Interns) RespFieldsOf(e *Entry) ([]hpack.HeaderField, *hpack.PreEncoded, bool) {
	id, ok := in.idByEntry[e]
	if !ok {
		return nil, nil, false
	}
	return in.respFields[id], &in.respPre[id], true
}

// IDOfEntry returns the resource ID of a recorded entry.
func (in *Interns) IDOfEntry(e *Entry) (int32, bool) {
	id, ok := in.idByEntry[e]
	return id, ok
}

// bitset is a dense-ID membership set sized once from the intern table.
type bitset struct {
	words []uint64
}

func newBitset(n int) *bitset { return &bitset{words: make([]uint64, (n+63)/64)} }

func (b *bitset) has(id int32) bool {
	return id >= 0 && b.words[id>>6]&(1<<(uint(id)&63)) != 0
}

func (b *bitset) set(id int32) {
	if id >= 0 {
		b.words[id>>6] |= 1 << (uint(id) & 63)
	}
}
