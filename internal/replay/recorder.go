package replay

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"

	"repro/internal/cssx"
	"repro/internal/htmlx"
	"repro/internal/page"
)

// Recorder captures HTTP/1.1 traffic into a record database, playing the
// role of the paper's mitmproxy capture stage. It can be used in two
// modes: as a forward proxy handler (ServeHTTP) placed in front of a
// browser, or as a crawler (Record/Crawl) driven directly.
type Recorder struct {
	mu     sync.Mutex
	db     *DB
	client *http.Client
}

// NewRecorder builds a recorder writing into db, fetching upstream
// content with client (http.DefaultClient when nil).
func NewRecorder(db *DB, client *http.Client) *Recorder {
	if client == nil {
		client = http.DefaultClient
	}
	return &Recorder{db: db, client: client}
}

// DB returns the underlying database.
func (r *Recorder) DB() *DB {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.db
}

// ServeHTTP implements a recording forward proxy for plain HTTP
// requests: it forwards the request upstream, stores the response, and
// relays it to the client.
func (r *Recorder) ServeHTTP(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodGet {
		http.Error(w, "recorder proxy supports GET only", http.StatusMethodNotAllowed)
		return
	}
	target := req.URL.String()
	if !strings.HasPrefix(target, "http") {
		// Non-proxy request (no absolute-form URL): reconstruct.
		scheme := "http"
		if req.TLS != nil {
			scheme = "https"
		}
		target = fmt.Sprintf("%s://%s%s", scheme, req.Host, req.URL.RequestURI())
	}
	entry, err := r.Record(target)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	w.Header().Set("Content-Type", entry.ContentType)
	w.WriteHeader(entry.Status)
	w.Write(entry.Body)
}

// Record fetches one URL and stores the response, returning the entry.
func (r *Recorder) Record(rawURL string) (*Entry, error) {
	u, err := page.ParseURL(rawURL, page.URL{})
	if err != nil {
		return nil, err
	}
	resp, err := r.client.Get(rawURL)
	if err != nil {
		return nil, fmt.Errorf("replay: fetching %s: %w", rawURL, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return nil, fmt.Errorf("replay: reading %s: %w", rawURL, err)
	}
	entry := &Entry{
		URL:         u,
		Status:      resp.StatusCode,
		ContentType: resp.Header.Get("Content-Type"),
		Body:        body,
	}
	r.mu.Lock()
	r.db.Add(entry)
	r.mu.Unlock()
	return entry, nil
}

// Crawl records startURL and, recursively, every subresource reachable
// from its HTML and CSS (one site snapshot, like a browsing session
// through the capture proxy). It returns a replayable Site.
func (r *Recorder) Crawl(name, startURL string, maxObjects int) (*Site, error) {
	if maxObjects <= 0 {
		maxObjects = 500
	}
	base, err := page.ParseURL(startURL, page.URL{})
	if err != nil {
		return nil, err
	}
	queue := []string{startURL}
	seen := map[string]bool{startURL: true}
	for len(queue) > 0 && r.DB().Len() < maxObjects {
		url := queue[0]
		queue = queue[1:]
		entry, err := r.Record(url)
		if err != nil {
			// Third-party fetch failures are normal during crawls; skip.
			continue
		}
		var refs []string
		switch entry.Kind() {
		case page.KindHTML:
			doc := htmlx.Parse(entry.Body)
			refs = doc.ExternalURLs()
			for _, st := range doc.InlineStyles {
				sheet := cssx.ParseString(st.Content)
				refs = append(refs, sheet.Imports...)
				refs = append(refs, sheet.AssetURLs...)
			}
		case page.KindCSS:
			sheet := cssx.Parse(entry.Body)
			refs = append(refs, sheet.Imports...)
			refs = append(refs, sheet.AssetURLs...)
			for _, ff := range sheet.FontFaces {
				if ff.URL != "" {
					refs = append(refs, ff.URL)
				}
			}
		}
		for _, ref := range refs {
			u, err := page.ParseURL(ref, entry.URL)
			if err != nil {
				continue
			}
			abs := u.String()
			if !seen[abs] {
				seen[abs] = true
				queue = append(queue, abs)
			}
		}
	}
	return NewSite(name, base, r.DB()), nil
}
