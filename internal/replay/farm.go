package replay

import (
	"time"

	"repro/internal/h2"
	"repro/internal/netem"
	"repro/internal/sim"
)

// Farm spawns the per-IP virtual origin servers for one page load and
// executes the push plan. One Farm serves exactly one simulated browser
// session (the testbed builds a fresh Farm per run).
type Farm struct {
	S        *sim.Sim
	Net      *netem.Network
	Site     *Site
	Plan     Plan
	Settings h2.Settings
	// ThinkTime delays every response, emulating backend fetch time. The
	// paper assumes zero (Sec. 4.1).
	ThinkTime time.Duration

	// Stats accumulated over the session.
	BytesPushed  int64
	PushCount    int
	RequestCount int
}

// NewFarm builds a farm for one run.
func NewFarm(s *sim.Sim, net *netem.Network, site *Site, plan Plan) *Farm {
	return &Farm{
		S: s, Net: net, Site: site, Plan: plan,
		Settings: h2.DefaultSettings(),
	}
}

// Reset re-arms the farm for a new run, exactly as NewFarm would
// configure it: fresh stats, default settings, zero think time. The
// per-connection servers it spawned last run are owned by the previous
// simulator run and are simply dropped.
func (f *Farm) Reset(s *sim.Sim, net *netem.Network, site *Site, plan Plan) {
	f.S, f.Net, f.Site, f.Plan = s, net, site, plan
	f.Settings = h2.DefaultSettings()
	f.ThinkTime = 0
	f.BytesPushed, f.PushCount, f.RequestCount = 0, 0, 0
}

// Dial opens a fresh connection to the origin server replaying host.
// ready fires at connectEnd with the client-side transport end; the
// caller attaches its h2 client there. Every server on the farm shares
// the emulated access link, so cross-connection contention is modelled.
func (f *Farm) Dial(host string, ready func(clientEnd *netem.End)) {
	f.Net.Dial(func(c *netem.Conn) {
		srv := h2.NewServer(f.Settings, func(sw *h2.ServerStream, req h2.Request) {
			f.RequestCount++
			if f.ThinkTime > 0 {
				f.S.After(f.ThinkTime, func() { f.serve(sw, req) })
				return
			}
			f.serve(sw, req)
		})
		h2.AttachSim(srv.Core, c.ServerEnd())
		ready(c.ClientEnd())
	})
}

func (f *Farm) serve(sw *h2.ServerStream, req h2.Request) {
	entry := f.Site.DB.Lookup(req.Authority, req.Path)
	if entry == nil {
		sw.Respond(404, "text/plain", []byte("not found in record database"))
		return
	}
	url := entry.URL.String()
	pushURLs := f.Plan.PushesFor(url)
	spec, hasSpec := f.lookupInterleave(url)

	// Order pushes: critical ones (in spec order) first, then the rest in
	// plan order. Each push depends on the previous one in the priority
	// tree, so delivery follows the computed push order deterministically.
	ordered := orderPushes(pushURLs, spec.Critical)
	type pending struct {
		psw   *h2.ServerStream
		entry *Entry
	}
	var pushes []pending
	var prevID uint32
	criticalIDs := make([]uint32, 0, len(spec.Critical))
	criticalSet := map[string]bool{}
	for _, u := range spec.Critical {
		criticalSet[u] = true
	}
	for _, u := range ordered {
		pe := f.Site.DB.Get(u)
		if pe == nil {
			continue
		}
		// A server may only push content it is authoritative for.
		if !f.Site.Authoritative(req.Authority, pe.URL.Authority) {
			continue
		}
		psw := sw.Push(h2.Request{
			Method: "GET", Scheme: pe.URL.Scheme,
			Authority: pe.URL.Authority, Path: pe.URL.Path,
		})
		if psw == nil {
			break // client disabled push
		}
		if prevID != 0 {
			sw.Server.Core.Tree.Update(psw.St.ID, h2.PriorityParam{ParentID: prevID, Weight: h2.DefaultWeight})
		}
		prevID = psw.St.ID
		if criticalSet[u] {
			criticalIDs = append(criticalIDs, psw.St.ID)
		}
		pushes = append(pushes, pending{psw, pe})
		f.PushCount++
		f.BytesPushed += int64(len(pe.Body))
	}
	if hasSpec && len(criticalIDs) > 0 {
		sw.Interleave(spec.OffsetBytes, criticalIDs)
	}
	sw.Respond(entry.Status, entry.ContentType, entry.Body)
	for _, p := range pushes {
		p.psw.Respond(p.entry.Status, p.entry.ContentType, p.entry.Body)
	}
}

func (f *Farm) lookupInterleave(url string) (InterleaveSpec, bool) {
	if f.Plan.Interleave == nil {
		return InterleaveSpec{}, false
	}
	spec, ok := f.Plan.Interleave[url]
	return spec, ok
}

// orderPushes returns urls with the critical subset (in critical's order)
// moved to the front.
func orderPushes(urls, critical []string) []string {
	if len(critical) == 0 {
		return urls
	}
	inCritical := map[string]bool{}
	for _, u := range critical {
		inCritical[u] = true
	}
	out := make([]string, 0, len(urls))
	seen := map[string]bool{}
	for _, u := range critical {
		if !seen[u] && contains(urls, u) {
			out = append(out, u)
			seen[u] = true
		}
	}
	for _, u := range urls {
		if !inCritical[u] && !seen[u] {
			out = append(out, u)
			seen[u] = true
		}
	}
	return out
}

func contains(xs []string, x string) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

// EntryURL is a helper returning the absolute URL string for a
// host/path pair if recorded.
func (f *Farm) EntryURL(host, path string) string {
	e := f.Site.DB.Lookup(host, path)
	if e == nil {
		return ""
	}
	return e.URL.String()
}
