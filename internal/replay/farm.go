package replay

import (
	"reflect"
	"time"

	"repro/internal/h2"
	"repro/internal/hpack"
	"repro/internal/netem"
	"repro/internal/sim"
)

// Farm spawns the per-IP virtual origin servers for one page load and
// executes the push plan. One Farm serves exactly one simulated browser
// session (the testbed builds a fresh Farm per run, or resets a pooled
// one).
//
//repolint:pooled
type Farm struct {
	S   *sim.Sim
	Net *netem.Network
	// Site is the recorded site served this run.
	Site *Site
	// Plan is the strategy's push plan. It is excluded from snapshots:
	// the checkpoint is taken before any serve consults it, and a restore
	// installs the replayed strategy's plan via SetPlan.
	//
	//repolint:keep re-lowered through SetPlan after a checkpoint restore
	Plan     Plan
	Settings h2.Settings
	// ThinkTime delays every response, emulating backend fetch time. The
	// paper assumes zero (Sec. 4.1).
	ThinkTime time.Duration

	// stallUntil black-holes dispatch until the given instant: requests
	// arriving inside the window have their serve deferred to the
	// window's end (fault injection, see Stall). Serve order stays FIFO
	// because deferred serve times are still nondecreasing.
	stallUntil time.Duration

	// NoPreEncode forces every header block onto the live-encoding path,
	// bypassing the prepare-time pre-encoded blocks. The wire bytes are
	// identical either way (pinned by TestFarmPreEncodeByteIdentical);
	// the knob exists for that test and for profiling the ablation.
	NoPreEncode bool

	// Stats accumulated over the session.
	BytesPushed  int64
	PushCount    int
	RequestCount int

	// resolved is the plan lowered onto the site's intern table: push
	// lists as entries, critical membership as flags, and the pre-encoded
	// first-serve header-block sequence. It is recomputed only when the
	// (site, plan) pair changes, so a run context re-running the same
	// evaluation reuses it across every run.
	//
	//repolint:keep identity-keyed cache; SetPlan re-lowers it after a restore
	resolved resolvedPlan

	// handler is the per-farm request dispatch closure, built once.
	//
	//repolint:keep built once, bound to this farm; identical across any snapshot
	handler func(sw *h2.ServerStream, req h2.Request)

	// svQ is the FIFO of dispatched requests awaiting their serve event.
	// Every request is served asynchronously (at now+ThinkTime) through a
	// pooled event, so the first dispatch of a run is a clean checkpoint:
	// the serve that will consult the plan is still queued when the
	// armed Stop returns from Run.
	svQ    []svReq
	svHead int

	// One-shot checkpoint arming; see ArmCheckpoint. Never set across a
	// snapshot (the hit fires Stop before Snapshot runs).
	ckArmed bool //repolint:keep driver-managed one-shot, cleared by the hit and by Restore
	ckHit   bool //repolint:keep driver-managed one-shot, cleared by Restore

	// Pooled server connections: bundles move from pool to active on
	// Dial and back on Reset, so a warm farm re-dials without rebuilding
	// h2 state.
	srvPool   []*serverBundle
	srvActive []*serverBundle

	// criticalIDs is the reused per-serve interleave gate list.
	criticalIDs []uint32 //repolint:keep per-serve scratch, truncated to zero length at each use
	// pending is the reused per-serve pushed-stream list.
	pending []pendingPush //repolint:keep per-serve scratch, truncated to zero length at each use
}

//repolint:pooled
type serverBundle struct {
	srv *h2.Server
	ep  *h2.SimEndpoint //repolint:keep re-attached to a fresh transport end on Dial
}

// reset re-arms a pooled bundle's server for a new connection; the
// endpoint is rewired by Attach when the farm next dials.
func (b *serverBundle) reset(s h2.Settings, handler func(sw *h2.ServerStream, req h2.Request)) {
	b.srv.Reset(s, handler)
}

// svReq is one dispatched request waiting in the serve FIFO.
type svReq struct {
	sw  *h2.ServerStream
	req h2.Request
}

type pendingPush struct {
	psw    *h2.ServerStream
	entry  *Entry
	pre    *hpack.PreEncoded
	seqPos int
}

// resolvedPlan caches the per-(site, plan) lowering. Identity of the
// plan is the identity of its maps: strategies build a plan's maps once
// and pass the same maps on every run, so pointer identity is exact.
type resolvedPlan struct {
	site     *Site
	pushSig  uintptr
	ilvSig   uintptr
	valid    bool
	triggers map[*Entry]*resolvedTrigger
}

// resolvedTrigger is one trigger URL's serving program: the ordered,
// deduplicated, authoritative push list with critical flags, plus the
// pre-encoded header-block sequence for the canonical first serve on a
// pristine connection: PUSH_PROMISE blocks at positions 0..k-1, the
// trigger response at k, and push responses at k+1..2k. When the
// connection's encoder is anywhere else (pushes disabled, a different
// request served first), every block falls back to live encoding —
// byte-identical either way.
type resolvedTrigger struct {
	pushes    []*Entry
	critical  []bool
	nCritical int
	spec      InterleaveSpec
	hasSpec   bool

	ppPre     []hpack.PreEncoded
	respPre   hpack.PreEncoded
	pushResp  []hpack.PreEncoded
	respField []hpack.HeaderField
}

// NewFarm builds a farm for one run.
func NewFarm(s *sim.Sim, net *netem.Network, site *Site, plan Plan) *Farm {
	f := &Farm{}
	f.Reset(s, net, site, plan)
	return f
}

// Reset re-arms the farm for a new run, exactly as NewFarm would
// configure it: fresh stats, default settings, zero think time,
// pre-encoding enabled. The per-connection servers it spawned last run
// are recycled into the farm's pool (the previous simulator run is
// over, so nothing still references their transports).
func (f *Farm) Reset(s *sim.Sim, net *netem.Network, site *Site, plan Plan) {
	f.S, f.Net, f.Site, f.Plan = s, net, site, plan
	f.Settings = h2.DefaultSettings()
	f.ThinkTime = 0
	f.stallUntil = 0
	f.NoPreEncode = false
	f.BytesPushed, f.PushCount, f.RequestCount = 0, 0, 0
	if f.handler == nil {
		f.handler = f.dispatch
	}
	f.srvPool = append(f.srvPool, f.srvActive...)
	for i := range f.srvActive {
		f.srvActive[i] = nil
	}
	f.srvActive = f.srvActive[:0]
	clear(f.svQ)
	f.svQ, f.svHead = f.svQ[:0], 0
	f.ckArmed, f.ckHit = false, false
	f.resolvePlan()
}

// SetPlan swaps the push plan and re-lowers it onto the site. The fork
// driver calls it after a checkpoint restore; it is only valid while no
// serve has consulted the previous plan, which the checkpoint placement
// (first dispatch, serve still queued) guarantees.
func (f *Farm) SetPlan(plan Plan) {
	f.Plan = plan
	f.resolvePlan()
}

// ArmCheckpoint arms a one-shot simulator stop at the next request
// dispatch: the instant the run's first serve event is enqueued — and
// therefore the last instant before any code consults the push plan —
// the farm calls Stop, leaving the simulation quiescent for Snapshot
// with the serve still queued.
func (f *Farm) ArmCheckpoint() { f.ckArmed, f.ckHit = true, false }

// CheckpointHit reports whether the armed checkpoint fired this run.
func (f *Farm) CheckpointHit() bool { return f.ckHit }

func mapSig[K comparable, V any](m map[K]V) uintptr {
	if m == nil {
		return 0
	}
	return reflect.ValueOf(m).Pointer()
}

// resolvePlan lowers the plan onto the site's intern table, reusing the
// previous lowering when the (site, plan) identity is unchanged.
func (f *Farm) resolvePlan() {
	pushSig, ilvSig := mapSig(f.Plan.Push), mapSig(f.Plan.Interleave)
	if f.resolved.valid && f.resolved.site == f.Site &&
		f.resolved.pushSig == pushSig && f.resolved.ilvSig == ilvSig {
		return
	}
	f.resolved = resolvedPlan{
		site: f.Site, pushSig: pushSig, ilvSig: ilvSig, valid: true,
		triggers: make(map[*Entry]*resolvedTrigger, len(f.Plan.Push)),
	}
	in := f.Site.Prepared().Interns()
	for trigger, pushURLs := range f.Plan.Push {
		te := f.Site.DB.Get(trigger)
		if te == nil || te.URL.String() != trigger {
			// Pushes fire only when the served entry's canonical URL is
			// the plan key, exactly as the old per-request string match.
			continue
		}
		spec, hasSpec := f.lookupInterleave(trigger)
		rt := &resolvedTrigger{spec: spec, hasSpec: hasSpec}

		// Order: critical URLs first (in spec order), then the remaining
		// push URLs in plan order, deduplicated by canonical URL string —
		// interned IDs make the sets bitsets, with a tiny overflow list
		// for URLs outside the prepared ID space.
		inCritical := newBitset(in.NumResources())
		var critOverflow []string
		mark := func(b *bitset, over *[]string, u string) {
			if id, ok := in.Lookup(u); ok {
				b.set(id)
			} else {
				*over = append(*over, u)
			}
		}
		has := func(b *bitset, over []string, u string) bool {
			if id, ok := in.Lookup(u); ok {
				return b.has(id)
			}
			for _, v := range over {
				if v == u {
					return true
				}
			}
			return false
		}
		for _, u := range spec.Critical {
			mark(inCritical, &critOverflow, u)
		}
		seen := newBitset(in.NumResources())
		var seenOverflow []string
		add := func(u string, critical bool) {
			if has(seen, seenOverflow, u) {
				return
			}
			mark(seen, &seenOverflow, u)
			pe := f.Site.DB.Get(u)
			if pe == nil {
				return
			}
			// A server may only push content it is authoritative for.
			if !f.Site.Authoritative(te.URL.Authority, pe.URL.Authority) {
				return
			}
			rt.pushes = append(rt.pushes, pe)
			rt.critical = append(rt.critical, critical)
			if critical {
				rt.nCritical++
			}
		}
		for _, u := range spec.Critical {
			if contains(pushURLs, u) {
				add(u, true)
			}
		}
		for _, u := range pushURLs {
			add(u, has(inCritical, critOverflow, u))
		}

		f.preEncodeTrigger(in, te, rt)
		f.resolved.triggers[te] = rt
	}
}

// preEncodeTrigger encodes the trigger's first-serve block sequence on a
// scratch encoder, in exactly the order serve emits it.
func (f *Farm) preEncodeTrigger(in *Interns, te *Entry, rt *resolvedTrigger) {
	enc := hpack.NewEncoder()
	rt.ppPre = make([]hpack.PreEncoded, len(rt.pushes))
	for i, pe := range rt.pushes {
		id, ok := in.IDOfEntry(pe)
		if !ok {
			// A pushed entry outside the prepared ID space (cannot happen
			// for recorded sites, defensive): pre-encode from scratch-built
			// fields so the sequence stays aligned.
			rt.ppPre[i] = enc.PreEncodeBlock(h2.Request{
				Method: "GET", Scheme: pe.URL.Scheme,
				Authority: pe.URL.Authority, Path: pe.URL.Path,
			}.Fields())
			continue
		}
		rt.ppPre[i] = enc.PreEncodeBlock(in.ReqFields(id))
	}
	if fields, _, ok := in.RespFieldsOf(te); ok {
		// Interned (immutable) trigger entries pre-encode their response;
		// a per-run scaled trigger keeps respField nil and encodes live.
		rt.respField = fields
		rt.respPre = enc.PreEncodeBlock(rt.respField)
	} else {
		enc.PreEncodeBlock(h2.ResponseFields(nil, te.Status, te.ContentType, len(te.Body)))
	}
	rt.pushResp = make([]hpack.PreEncoded, len(rt.pushes))
	for i, pe := range rt.pushes {
		if fields, _, ok := in.RespFieldsOf(pe); ok {
			rt.pushResp[i] = enc.PreEncodeBlock(fields)
		} else {
			rt.pushResp[i] = enc.PreEncodeBlock(h2.ResponseFields(nil, pe.Status, pe.ContentType, len(pe.Body)))
		}
	}
}

// Dial opens a fresh connection to the origin server replaying host.
// ready fires at connectEnd with the client-side transport end; the
// caller attaches its h2 client there. Every server on the farm shares
// the emulated access link, so cross-connection contention is modelled.
// Server connections are drawn from the farm's pool: a warm farm
// re-dials with fully recycled h2 state.
func (f *Farm) Dial(host string, ready func(clientEnd *netem.End)) {
	f.Net.Dial(func(c *netem.Conn) {
		b := f.getServer()
		b.ep.Attach(b.srv.Core, c.ServerEnd())
		ready(c.ClientEnd())
	})
}

//repolint:hotpath
func (f *Farm) getServer() *serverBundle {
	var b *serverBundle
	if n := len(f.srvPool); n > 0 {
		b = f.srvPool[n-1]
		f.srvPool[n-1] = nil
		f.srvPool = f.srvPool[:n-1]
		b.reset(f.Settings, f.handler)
	} else {
		b = &serverBundle{srv: h2.NewServer(f.Settings, f.handler), ep: &h2.SimEndpoint{}}
	}
	f.srvActive = append(f.srvActive, b)
	return b
}

// dispatch enqueues the request and schedules its serve at
// now+ThinkTime through a pooled event. Service is uniformly
// asynchronous: enqueue order equals serve order (admission times are
// nondecreasing and the FIFO breaks ties by scheduling sequence).
func (f *Farm) dispatch(sw *h2.ServerStream, req h2.Request) {
	f.RequestCount++
	f.svQ = append(f.svQ, svReq{sw: sw, req: req})
	at := f.S.Now()
	if at < f.stallUntil {
		at = f.stallUntil
	}
	f.S.AtCall(at+f.ThinkTime, serveStep, f)
	if f.ckArmed {
		f.ckArmed = false
		f.ckHit = true
		f.S.Stop()
	}
}

// serveStep is the pooled serve event: pop the FIFO head, serve it.
//
//repolint:hotpath
func serveStep(arg any) { arg.(*Farm).serveNext() }

func (f *Farm) serveNext() {
	r := f.svQ[f.svHead]
	f.svQ[f.svHead] = svReq{}
	f.svHead++
	switch {
	case f.svHead == len(f.svQ):
		f.svQ, f.svHead = f.svQ[:0], 0
	case f.svHead > 64 && 2*f.svHead >= len(f.svQ):
		n := copy(f.svQ, f.svQ[f.svHead:])
		clear(f.svQ[n:])
		f.svQ, f.svHead = f.svQ[:n], 0
	}
	f.serve(r.sw, r.req)
}

//repolint:hotpath
func (f *Farm) serve(sw *h2.ServerStream, req h2.Request) {
	entry := f.Site.DB.Lookup(req.Authority, req.Path)
	if entry == nil {
		sw.Respond(404, "text/plain", []byte("not found in record database"))
		return
	}
	in := f.Site.Prepared().Interns()
	rt := f.resolved.triggers[entry]
	if rt == nil {
		// No pushes triggered: a plain response. Prepared entries use the
		// interned header list and (on a pristine connection) the
		// pre-encoded block; per-run scaled copies take the live path.
		if fields, pre, ok := in.RespFieldsOf(entry); ok && !f.NoPreEncode {
			sw.RespondPre(fields, pre, 0, entry.Body)
		} else {
			sw.Respond(entry.Status, entry.ContentType, entry.Body)
		}
		return
	}

	// Push burst: PUSH_PROMISE blocks occupy sequence positions
	// 0..len-1, the trigger response len, push responses len+1..2len.
	// The pre-encoded sequence is only valid while every block of it is
	// emitted verbatim: once the trigger response falls back to live
	// encoding (a per-run scaled trigger entry whose content-length
	// differs from resolve time), the dynamic table diverges from the
	// pre-encode-time table even though the block counter still lines
	// up, so every later block of the sequence must go live too.
	preOK := !f.NoPreEncode && rt.respField != nil
	pushes := f.pending[:0]
	f.criticalIDs = f.criticalIDs[:0]
	var prevID uint32
	for i, pe := range rt.pushes {
		var reqFields []hpack.HeaderField
		var ppPre *hpack.PreEncoded
		if id, ok := in.IDOfEntry(pe); ok {
			reqFields = in.ReqFields(id)
		}
		if !f.NoPreEncode {
			// PUSH_PROMISE blocks precede the trigger response, so they
			// are safe even when the response will live-encode.
			ppPre = &rt.ppPre[i]
		}
		psw := sw.PushPre(h2.Request{
			Method: "GET", Scheme: pe.URL.Scheme,
			Authority: pe.URL.Authority, Path: pe.URL.Path,
		}, reqFields, ppPre, i)
		if psw == nil {
			break // client disabled push
		}
		if prevID != 0 {
			sw.Server.Core.Tree.Update(psw.St.ID, h2.PriorityParam{ParentID: prevID, Weight: h2.DefaultWeight})
		}
		prevID = psw.St.ID
		if rt.critical[i] {
			f.criticalIDs = append(f.criticalIDs, psw.St.ID)
		}
		pushes = append(pushes, pendingPush{
			psw: psw, entry: pe, pre: &rt.pushResp[i], seqPos: len(rt.pushes) + 1 + i,
		})
		f.PushCount++
		f.BytesPushed += int64(len(pe.Body))
	}
	if rt.hasSpec && len(f.criticalIDs) > 0 {
		sw.Interleave(rt.spec.OffsetBytes, f.criticalIDs)
	}
	if preOK {
		sw.RespondPre(rt.respField, &rt.respPre, len(rt.pushes), entry.Body)
	} else {
		sw.Respond(entry.Status, entry.ContentType, entry.Body)
	}
	for _, p := range pushes {
		if fields, _, ok := in.RespFieldsOf(p.entry); ok && preOK {
			p.psw.RespondPre(fields, p.pre, p.seqPos, p.entry.Body)
		} else {
			p.psw.Respond(p.entry.Status, p.entry.ContentType, p.entry.Body)
		}
	}
	f.pending = pushes[:0]
}

// Stall black-holes the farm for d from now: requests dispatched
// inside the window are served only once it ends (fault injection).
// Responses already handed to the h2 cores are unaffected — a stall
// models the backend going dark, not the wire.
func (f *Farm) Stall(d time.Duration) {
	if until := f.S.Now() + d; until > f.stallUntil {
		f.stallUntil = until
	}
}

// InjectGoAway makes every active server connection send GOAWAY(NO_ERROR)
// and stop accepting new streams (fault injection). Returns the number
// of connections signalled.
func (f *Farm) InjectGoAway() int {
	n := 0
	for _, b := range f.srvActive {
		if !b.srv.Core.GoingAway() {
			b.srv.Core.GoAway(h2.ErrCodeNo)
			n++
		}
	}
	return n
}

// InjectPushResets aborts every in-flight pushed stream on every active
// server connection with RST_STREAM(CANCEL) (fault injection). Returns
// the number of streams reset.
func (f *Farm) InjectPushResets() int {
	n := 0
	for _, b := range f.srvActive {
		n += b.srv.Core.AbortPushes(h2.ErrCodeCancel)
	}
	return n
}

func (f *Farm) lookupInterleave(url string) (InterleaveSpec, bool) {
	if f.Plan.Interleave == nil {
		return InterleaveSpec{}, false
	}
	spec, ok := f.Plan.Interleave[url]
	return spec, ok
}

func contains(xs []string, x string) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

// EntryURL is a helper returning the absolute URL string for a
// host/path pair if recorded.
func (f *Farm) EntryURL(host, path string) string {
	e := f.Site.DB.Lookup(host, path)
	if e == nil {
		return ""
	}
	return e.URL.String()
}
