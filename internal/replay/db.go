// Package replay is the testbed's record-and-replay substrate, modelled
// on Mahimahi (Netravali et al., ATC'15) as adapted by the paper
// (Sec. 4.1): recorded request/response pairs are stored in a database;
// at replay time one virtual origin server is spawned per recorded IP, so
// the connection pattern matches the real deployment; certificates are
// generated per server covering all hostnames on that IP (Subject
// Alternative Names), which lets the browser coalesce connections exactly
// as Chromium does; and a per-site push plan defines what each server
// pushes and how responses are interleaved.
package replay

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/page"
)

// Entry is one recorded request/response pair plus the crawl-side
// metadata the deterministic browser model needs.
type Entry struct {
	URL         page.URL
	Status      int
	ContentType string
	Body        []byte
	Meta        page.Meta
}

// Kind classifies the entry by content type, falling back to the path.
func (e *Entry) Kind() page.Kind {
	if k := page.KindFromContentType(e.ContentType); k != page.KindOther {
		return k
	}
	return page.KindFromPath(e.URL.Path)
}

// DB is a recorded-site database: the Mahimahi record directory. The
// index is two-level (authority, then path) so the hot Lookup path
// never has to build a combined key string.
type DB struct {
	entries map[string]map[string]*Entry
	order   []dbKey
}

type dbKey struct{ authority, path string }

// NewDB returns an empty database.
func NewDB() *DB {
	return &DB{entries: make(map[string]map[string]*Entry)}
}

// Add stores an entry, replacing any previous one for the same URL.
func (db *DB) Add(e *Entry) {
	m := db.entries[e.URL.Authority]
	if m == nil {
		m = make(map[string]*Entry)
		db.entries[e.URL.Authority] = m
	}
	if _, dup := m[e.URL.Path]; !dup {
		db.order = append(db.order, dbKey{e.URL.Authority, e.URL.Path})
	}
	m[e.URL.Path] = e
}

// Lookup matches a request to a recorded response. Like Mahimahi, an
// exact match is preferred; otherwise the query string is ignored as a
// fallback for dynamic parameters.
func (db *DB) Lookup(authority, path string) *Entry {
	m := db.entries[authority]
	if e, ok := m[path]; ok {
		return e
	}
	stripped := path
	if i := strings.IndexByte(stripped, '?'); i >= 0 {
		stripped = stripped[:i]
		if e, ok := m[stripped]; ok {
			return e
		}
	}
	// Last resort: match a recorded URL whose path (sans query) equals
	// the requested path (sans query).
	for _, k := range db.order {
		e := db.entries[k.authority][k.path]
		p := e.URL.Path
		if j := strings.IndexByte(p, '?'); j >= 0 {
			p = p[:j]
		}
		if e.URL.Authority == authority && p == stripped {
			return e
		}
	}
	return nil
}

// Get returns the entry for an absolute URL string, or nil.
func (db *DB) Get(url string) *Entry {
	u, err := page.ParseURL(url, page.URL{})
	if err != nil {
		return nil
	}
	return db.Lookup(u.Authority, u.Path)
}

// Len returns the number of recorded objects.
func (db *DB) Len() int { return len(db.order) }

// Entries returns all entries in insertion order.
func (db *DB) Entries() []*Entry {
	out := make([]*Entry, 0, len(db.order))
	for _, k := range db.order {
		out = append(out, db.entries[k.authority][k.path])
	}
	return out
}

// Clone returns an independently mutable view of the database that
// shares the underlying entries. Entries are immutable once recorded
// (the zero-copy data plane already relies on that), so a rewrite
// replaces an entry via Add with a fresh *Entry rather than mutating
// one in place; the share-on-clone therefore costs no per-body copies
// and keeps entry identity stable, which is what lets a rewritten
// site's untouched stylesheets keep hitting the prepared-site caches.
func (db *DB) Clone() *DB {
	out := NewDB()
	for _, k := range db.order {
		out.Add(db.entries[k.authority][k.path])
	}
	return out
}

// Site is a replayable website: its database plus the deployment
// topology (which hostname lives on which IP, and which hostnames each
// server's certificate covers).
type Site struct {
	Name string
	Base page.URL // landing page URL
	DB   *DB
	// IPByHost emulates DNS: every recorded hostname resolves to the IP
	// of the local server replaying it.
	IPByHost map[string]string
	// SANsByIP lists the hostnames on each server's certificate. A
	// browser may coalesce connections for two hostnames when they share
	// an IP and the certificate covers both.
	SANsByIP map[string][]string

	// Parse-once state, computed lazily by Prepared. Variant sites (a
	// per-run third-party overlay) carry a parent pointer instead and
	// delegate, so they share the base site's preparation. Sites are
	// always handled by pointer; the sync.Once makes value copies
	// ill-formed (go vet copylocks), which is intentional.
	prepOnce sync.Once
	prep     *Prepared
	parent   *Site
}

// NewVariant returns a site with s's name, base and topology but a
// different database, sharing s's prepared state. It exists for per-run
// overlays (scenario third-party scaling) whose databases replace a few
// entries but keep the base document: entries shared by pointer with
// the base site keep hitting the prepared caches, replaced entries miss
// and are parsed per run. The variant must not outlive the base site's
// immutability assumptions — its shared entries are read-only.
func (s *Site) NewVariant(db *DB) *Site {
	base := s
	if s.parent != nil {
		base = s.parent
	}
	return &Site{
		Name: s.Name, Base: s.Base, DB: db,
		IPByHost: s.IPByHost, SANsByIP: s.SANsByIP,
		parent: base,
	}
}

// NewSite builds a Site from a database, assigning each distinct
// hostname its own IP and certificate (no coalescing) unless hosts were
// merged later via MergeHosts.
func NewSite(name string, base page.URL, db *DB) *Site {
	s := &Site{
		Name:     name,
		Base:     base,
		DB:       db,
		IPByHost: map[string]string{},
		SANsByIP: map[string][]string{},
	}
	hosts := map[string]bool{}
	for _, e := range db.Entries() {
		hosts[e.URL.Authority] = true
	}
	sorted := make([]string, 0, len(hosts))
	for h := range hosts {
		sorted = append(sorted, h)
	}
	sort.Strings(sorted)
	for i, h := range sorted {
		ip := fmt.Sprintf("10.0.%d.%d", i/250, i%250+1)
		s.IPByHost[h] = ip
		s.SANsByIP[ip] = []string{h}
	}
	return s
}

// MergeHosts relocates the given hostnames onto the primary host's
// server: same IP, certificate covering all of them. This models the
// paper's unification of same-infrastructure domains (Sec. 5:
// img.bbystatic.com merged with bestbuy.com) and its synthetic
// single-server relocation (Sec. 4.3).
func (s *Site) MergeHosts(primary string, others ...string) {
	ip, ok := s.IPByHost[primary]
	if !ok {
		return
	}
	for _, h := range others {
		old, ok := s.IPByHost[h]
		if !ok || old == ip {
			continue
		}
		s.IPByHost[h] = ip
		// Remove from old SAN list.
		var rest []string
		for _, x := range s.SANsByIP[old] {
			if x != h {
				rest = append(rest, x)
			}
		}
		if len(rest) == 0 {
			delete(s.SANsByIP, old)
		} else {
			s.SANsByIP[old] = rest
		}
		s.SANsByIP[ip] = append(s.SANsByIP[ip], h)
	}
}

// ConnKey returns the coalescing key for a hostname: hosts with the same
// key share one connection (same IP and covered by the same
// certificate). Unknown hosts get their own key.
func (s *Site) ConnKey(host string) string {
	ip, ok := s.IPByHost[host]
	if !ok {
		return "unknown:" + host
	}
	for _, san := range s.SANsByIP[ip] {
		if san == host {
			return ip
		}
	}
	return "nosan:" + host
}

// Authoritative reports whether the server for onBehalfOf may push url:
// the pushed URL's host must resolve to the same server and be covered
// by its certificate (RFC 7540 Section 10.1; the paper's "pushable
// objects", Sec. 4.2).
func (s *Site) Authoritative(onBehalfOf, pushHost string) bool {
	return s.ConnKey(onBehalfOf) == s.ConnKey(pushHost) &&
		!strings.HasPrefix(s.ConnKey(onBehalfOf), "unknown:")
}

// PushableFraction returns the fraction of the site's objects that the
// base document's server is authoritative for.
func (s *Site) PushableFraction() float64 {
	total, pushable := 0, 0
	for _, e := range s.DB.Entries() {
		if e.URL == s.Base {
			continue
		}
		total++
		if s.Authoritative(s.Base.Authority, e.URL.Authority) {
			pushable++
		}
	}
	if total == 0 {
		return 0
	}
	return float64(pushable) / float64(total)
}

// Hosts returns all hostnames in deterministic order.
func (s *Site) Hosts() []string {
	out := make([]string, 0, len(s.IPByHost))
	for h := range s.IPByHost {
		out = append(out, h)
	}
	sort.Strings(out)
	return out
}
