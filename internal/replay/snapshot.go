package replay

import (
	"time"

	"repro/internal/h2"
	"repro/internal/netem"
	"repro/internal/sim"
)

// FarmSnapshot is a deep copy of a Farm's run state: stats, the serve
// FIFO, and the h2 state of every active server connection. The push
// plan and its resolved lowering are deliberately excluded — the
// checkpoint is taken at the first dispatch, before any serve consults
// the plan, and the fork driver installs the replayed strategy's plan
// via SetPlan after Restore. Snapshots own their slices and reuse them
// across calls; the *serverBundle pointers are aliases whose servers
// Restore rewrites in place.
type FarmSnapshot struct {
	s           *sim.Sim
	net         *netem.Network
	site        *Site
	settings    h2.Settings
	thinkTime   time.Duration
	stallUntil  time.Duration
	noPreEncode bool

	bytesPushed  int64
	pushCount    int
	requestCount int

	svQ []svReq

	pool   []*serverBundle
	active []*serverBundle
	srvs   []h2.ServerSnapshot
	eps    []h2.EndpointSnapshot
}

// Snapshot copies the farm's run state into dst.
func (f *Farm) Snapshot(dst *FarmSnapshot) {
	dst.s, dst.net, dst.site = f.S, f.Net, f.Site
	dst.settings, dst.thinkTime, dst.noPreEncode = f.Settings, f.ThinkTime, f.NoPreEncode
	dst.stallUntil = f.stallUntil
	dst.bytesPushed, dst.pushCount, dst.requestCount = f.BytesPushed, f.PushCount, f.RequestCount
	dst.svQ = append(dst.svQ[:0], f.svQ[f.svHead:]...)
	dst.pool = append(dst.pool[:0], f.srvPool...)
	dst.active = append(dst.active[:0], f.srvActive...)
	for len(dst.srvs) < len(f.srvActive) {
		dst.srvs = append(dst.srvs, h2.ServerSnapshot{})
		dst.eps = append(dst.eps, h2.EndpointSnapshot{})
	}
	dst.srvs = dst.srvs[:len(f.srvActive)]
	dst.eps = dst.eps[:len(f.srvActive)]
	for i, b := range f.srvActive {
		b.srv.Snapshot(&dst.srvs[i])
		b.ep.Snapshot(&dst.eps[i])
	}
}

// Restore rewinds the farm to the captured state. Bundles dialed after
// the snapshot return to the pool by membership (they are reset when
// next popped); bundles active at the snapshot get their server cores
// and endpoint attachments rewritten in place.
func (f *Farm) Restore(snap *FarmSnapshot) {
	f.S, f.Net, f.Site = snap.s, snap.net, snap.site
	f.Settings, f.ThinkTime, f.NoPreEncode = snap.settings, snap.thinkTime, snap.noPreEncode
	f.stallUntil = snap.stallUntil
	f.BytesPushed, f.PushCount, f.RequestCount = snap.bytesPushed, snap.pushCount, snap.requestCount
	clear(f.svQ)
	f.svQ = append(f.svQ[:0], snap.svQ...)
	f.svHead = 0
	clear(f.srvPool)
	f.srvPool = append(f.srvPool[:0], snap.pool...)
	clear(f.srvActive)
	f.srvActive = append(f.srvActive[:0], snap.active...)
	for i, b := range f.srvActive {
		b.srv.Restore(&snap.srvs[i])
		b.ep.Restore(&snap.eps[i])
	}
	f.ckArmed, f.ckHit = false, false
}
