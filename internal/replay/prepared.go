package replay

import (
	"sync"

	"repro/internal/cssx"
	"repro/internal/htmlx"
	"repro/internal/page"
)

// Prepared is the "parse once, replay many" view of a Site: everything
// about the recording that is a pure function of its immutable entries
// — the parsed base document and the parsed stylesheets — plus a memo
// table higher layers (the browser model, the strategy compiler) use to
// attach their own once-per-site derivations.
//
// Immutability rules: a Prepared and everything reachable from it is
// read-only after construction and is shared, without locks, by every
// simulation worker replaying the site. Per-run mutable state (fetch
// progress, paint state, scaled third-party bodies) must live in the
// run's own context, never here. Sheets and documents are keyed by
// *Entry identity, so a variant site that replaces an entry (a strategy
// rewrite, a per-run third-party overlay) naturally misses the cache
// for exactly the entries it replaced and falls back to parsing them.
type Prepared struct {
	baseEntry *Entry
	doc       *htmlx.Document // parsed base document, nil if the base entry is missing

	sheets map[*Entry]*cssx.Stylesheet

	// interns is the site's dense-ID name table (resource URLs,
	// connection groups, font families) plus the prepare-time HPACK
	// pre-encoding; see Interns.
	interns *Interns

	mu   sync.Mutex
	memo map[string]*memoEntry
}

type memoEntry struct {
	once sync.Once
	val  any
}

// prepare runs the once-per-site parse work. It is called lazily (and
// exactly once) by Site.Prepared.
func prepare(s *Site) *Prepared {
	p := &Prepared{
		sheets: make(map[*Entry]*cssx.Stylesheet),
		memo:   make(map[string]*memoEntry),
	}
	p.baseEntry = s.DB.Lookup(s.Base.Authority, s.Base.Path)
	if p.baseEntry != nil {
		p.doc = htmlx.Parse(p.baseEntry.Body)
	}
	for _, e := range s.DB.Entries() {
		if e.Kind() == page.KindCSS {
			p.sheets[e] = cssx.Parse(e.Body)
		}
	}
	p.interns = internSite(s, p)
	return p
}

// Prepared returns the site's shared parse-once state, computing it on
// first use. It is safe to call from concurrent workers. Variant sites
// (see NewVariant) delegate to their base site's preparation.
func (s *Site) Prepared() *Prepared {
	if s.parent != nil {
		return s.parent.Prepared()
	}
	s.prepOnce.Do(func() { s.prep = prepare(s) })
	return s.prep
}

// BaseEntry returns the entry the prepared document was parsed from,
// nil when the site has no recorded base document.
func (p *Prepared) BaseEntry() *Entry { return p.baseEntry }

// DocOf returns the parsed document for e, reusing the prepared parse
// when e is the site's base entry and parsing fresh otherwise (e.g. a
// rewritten or per-run-scaled base document).
func (p *Prepared) DocOf(e *Entry) *htmlx.Document {
	if e != nil && e == p.baseEntry && p.doc != nil {
		return p.doc
	}
	if e == nil {
		return nil
	}
	return htmlx.Parse(e.Body)
}

// Sheet returns the pre-parsed stylesheet for e, or nil when e was not
// part of the prepared site (the caller parses it itself). The map is
// built once and read-only afterwards, so lookups are lock-free.
func (p *Prepared) Sheet(e *Entry) *cssx.Stylesheet { return p.sheets[e] }

// Interns returns the site's dense-ID name table. It is read-only and
// shared by all workers; see Interns for the ID stability contract.
func (p *Prepared) Interns() *Interns { return p.interns }

// Memo returns the value cached under key, invoking build exactly once
// per key to produce it. Concurrent callers for the same key block
// until the single build finishes. Builds may Memo other keys (the
// strategy rewrite memo reads the analysis memo) but must not recurse
// onto their own key. Values must follow the Prepared immutability
// rules: read-only once returned.
func (p *Prepared) Memo(key string, build func() any) any {
	p.mu.Lock()
	e, ok := p.memo[key]
	if !ok {
		e = &memoEntry{}
		p.memo[key] = e
	}
	p.mu.Unlock()
	e.once.Do(func() { e.val = build() })
	return e.val
}
