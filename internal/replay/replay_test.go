package replay

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/page"
)

func entry(url string, body string) *Entry {
	u, err := page.ParseURL(url, page.URL{})
	if err != nil {
		panic(err)
	}
	return &Entry{
		URL: u, Status: 200,
		ContentType: page.ContentTypeFor(page.KindFromPath(u.Path)),
		Body:        []byte(body),
	}
}

func TestDBLookup(t *testing.T) {
	db := NewDB()
	db.Add(entry("https://a.test/index.html", "html"))
	db.Add(entry("https://a.test/x.css?v=2", "css"))
	db.Add(entry("https://b.test/img.png", "img"))

	if e := db.Lookup("a.test", "/index.html"); e == nil || string(e.Body) != "html" {
		t.Fatal("exact lookup failed")
	}
	// Query-insensitive fallbacks, both directions.
	if e := db.Lookup("a.test", "/x.css?v=3"); e == nil {
		t.Fatal("lookup with differing query failed")
	}
	if e := db.Lookup("a.test", "/x.css"); e == nil {
		t.Fatal("lookup without query failed")
	}
	if db.Lookup("c.test", "/index.html") != nil {
		t.Fatal("wrong-host lookup succeeded")
	}
	if db.Len() != 3 {
		t.Fatalf("Len = %d", db.Len())
	}
}

func TestDBReplaceAndClone(t *testing.T) {
	db := NewDB()
	db.Add(entry("https://a.test/x", "one"))
	db.Add(entry("https://a.test/x", "two"))
	if db.Len() != 1 {
		t.Fatalf("Len = %d after replace", db.Len())
	}
	// Clone shares immutable entries; a rewrite replaces entries via Add
	// and must leave the original database untouched.
	clone := db.Clone()
	if clone.Lookup("a.test", "/x") != db.Lookup("a.test", "/x") {
		t.Fatal("clone copied entries instead of sharing them")
	}
	repl := entry("https://a.test/x", "three")
	clone.Add(repl)
	if string(db.Lookup("a.test", "/x").Body) != "two" {
		t.Fatal("replacing an entry in the clone mutated the original")
	}
	if string(clone.Lookup("a.test", "/x").Body) != "three" {
		t.Fatal("replacement entry not visible in clone")
	}
}

func TestSiteTopologyAndMerge(t *testing.T) {
	db := NewDB()
	db.Add(entry("https://shop.test/", "html"))
	db.Add(entry("https://img.shop-static.test/a.png", "img"))
	db.Add(entry("https://ads.example/ad.js", "ad"))
	site := NewSite("shop", page.URL{Scheme: "https", Authority: "shop.test", Path: "/"}, db)

	if site.ConnKey("shop.test") == site.ConnKey("img.shop-static.test") {
		t.Fatal("distinct hosts coalesced before merge")
	}
	if site.Authoritative("shop.test", "img.shop-static.test") {
		t.Fatal("authoritative before merge")
	}
	site.MergeHosts("shop.test", "img.shop-static.test")
	if site.ConnKey("shop.test") != site.ConnKey("img.shop-static.test") {
		t.Fatal("merge did not coalesce")
	}
	if !site.Authoritative("shop.test", "img.shop-static.test") {
		t.Fatal("not authoritative after merge")
	}
	if site.Authoritative("shop.test", "ads.example") {
		t.Fatal("third party authoritative")
	}
	// Pushable fraction: of 2 non-base objects, 1 is now on the base
	// server.
	if got := site.PushableFraction(); got != 0.5 {
		t.Fatalf("pushable fraction = %v", got)
	}
}

func TestPlanHelpers(t *testing.T) {
	p := PushList("https://a.test/", "https://a.test/x.css")
	if got := p.PushesFor("https://a.test/"); len(got) != 1 {
		t.Fatalf("PushesFor = %v", got)
	}
	if got := p.PushesFor("https://other/"); got != nil {
		t.Fatalf("PushesFor other = %v", got)
	}
	p2 := p.WithInterleave("https://a.test/", InterleaveSpec{OffsetBytes: 1024})
	if p2.Interleave["https://a.test/"].OffsetBytes != 1024 {
		t.Fatal("interleave not recorded")
	}
	if NoPush().PushesFor("x") != nil {
		t.Fatal("NoPush pushes")
	}
}

func TestRecorderCrawl(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/html")
		w.Write([]byte(`<html><head><link rel="stylesheet" href="/main.css"></head>` +
			`<body><img src="/pic.png"><script src="/app.js"></script></body></html>`))
	})
	mux.HandleFunc("/main.css", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/css")
		w.Write([]byte(`@font-face{font-family:"F";src:url(/f.woff2);} body{background:url(/bg.png);}`))
	})
	for _, p := range []string{"/pic.png", "/bg.png"} {
		p := p
		mux.HandleFunc(p, func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "image/png")
			w.Write(make([]byte, 100))
		})
	}
	mux.HandleFunc("/app.js", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/javascript")
		w.Write([]byte("var x=1;"))
	})
	mux.HandleFunc("/f.woff2", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "font/woff2")
		w.Write(make([]byte, 50))
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()

	rec := NewRecorder(NewDB(), srv.Client())
	site, err := rec.Crawl("local", srv.URL+"/", 50)
	if err != nil {
		t.Fatal(err)
	}
	// Base + css + img + js + font + bg image = 6 objects.
	if site.DB.Len() != 6 {
		var urls []string
		for _, e := range site.DB.Entries() {
			urls = append(urls, e.URL.String())
		}
		t.Fatalf("crawled %d objects: %v", site.DB.Len(), urls)
	}
	if site.PushableFraction() != 1.0 {
		t.Fatalf("pushable = %v", site.PushableFraction())
	}
}

func TestRecorderProxy(t *testing.T) {
	upstream := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain")
		w.Write([]byte("upstream:" + r.URL.Path))
	}))
	defer upstream.Close()

	rec := NewRecorder(NewDB(), upstream.Client())
	proxy := httptest.NewServer(rec)
	defer proxy.Close()

	// Proxy-style absolute-form request.
	req, _ := http.NewRequest("GET", proxy.URL, nil)
	req.URL.Path = "/"
	req.URL.RawQuery = ""
	// Simulate forward-proxy by requesting the upstream URL through the
	// proxy handler directly.
	rr := httptest.NewRecorder()
	preq, _ := http.NewRequest("GET", upstream.URL+"/thing", nil)
	rec.ServeHTTP(rr, preq)
	if rr.Code != 200 || !strings.Contains(rr.Body.String(), "upstream:/thing") {
		t.Fatalf("proxy response: %d %q", rr.Code, rr.Body.String())
	}
	u, _ := page.ParseURL(upstream.URL+"/thing", page.URL{})
	if rec.DB().Lookup(u.Authority, "/thing") == nil {
		t.Fatal("proxy did not record")
	}
	// Non-GET rejected.
	rr2 := httptest.NewRecorder()
	post, _ := http.NewRequest("POST", upstream.URL+"/thing", nil)
	rec.ServeHTTP(rr2, post)
	if rr2.Code != http.StatusMethodNotAllowed {
		t.Fatalf("POST status = %d", rr2.Code)
	}
}
