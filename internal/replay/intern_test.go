package replay

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/h2"
	"repro/internal/hpack"
	"repro/internal/netem"
	"repro/internal/page"
	"repro/internal/sim"
)

func mustURL(t *testing.T, s string) page.URL {
	t.Helper()
	u, err := page.ParseURL(s, page.URL{})
	if err != nil {
		t.Fatal(err)
	}
	return u
}

func internTestSite(t *testing.T) *Site {
	t.Helper()
	db := NewDB()
	db.Add(&Entry{
		URL: mustURL(t, "https://a.test/"), Status: 200, ContentType: "text/html",
		Body: []byte(`<html><head><link rel="stylesheet" href="/s.css"></head>` +
			`<body><img src="https://cdn.a.test/i.png"><p>hello</p></body></html>`),
	})
	db.Add(&Entry{
		URL: mustURL(t, "https://a.test/s.css"), Status: 200, ContentType: "text/css",
		Body: []byte(`@font-face{font-family:Fancy;src:url(/f.woff)} .x{color:red}`),
	})
	db.Add(&Entry{
		URL: mustURL(t, "https://a.test/f.woff"), Status: 200, ContentType: "font/woff2",
		Body: bytes.Repeat([]byte("f"), 2048),
	})
	db.Add(&Entry{
		URL: mustURL(t, "https://cdn.a.test/i.png"), Status: 200, ContentType: "image/png",
		Body: bytes.Repeat([]byte("i"), 4096),
	})
	return NewSite("intern-test", mustURL(t, "https://a.test/"), db)
}

// TestInternsCoverSiteNames pins the intern-table contract: every
// recorded entry and every prepare-time-visible reference gets a
// prepare-time-stable ID, conn groups agree with ConnKey coalescing,
// and the pre-built header lists match what the live stack would build.
func TestInternsCoverSiteNames(t *testing.T) {
	site := internTestSite(t)
	in := site.Prepared().Interns()

	for _, e := range site.DB.Entries() {
		id, ok := in.Lookup(e.URL.String())
		if !ok {
			t.Fatalf("entry %s not interned", e.URL.String())
		}
		if in.EntryOf(id) != e {
			t.Fatalf("entry %s: EntryOf mismatch", e.URL.String())
		}
		if eid, ok := in.IDOfEntry(e); !ok || eid != id {
			t.Fatalf("entry %s: IDOfEntry = %d,%v want %d", e.URL.String(), eid, ok, id)
		}
		wantReq := h2.Request{Method: "GET", Scheme: e.URL.Scheme, Authority: e.URL.Authority, Path: e.URL.Path}.Fields()
		gotReq := in.ReqFields(id)
		if len(gotReq) != len(wantReq) {
			t.Fatalf("entry %s: req fields %v want %v", e.URL.String(), gotReq, wantReq)
		}
		for i := range wantReq {
			if gotReq[i] != wantReq[i] {
				t.Fatalf("entry %s: req field %d = %v want %v", e.URL.String(), i, gotReq[i], wantReq[i])
			}
		}
		if !bytes.Equal(in.ReqPre(id).Block, hpack.PreEncode(wantReq).Block) {
			t.Fatalf("entry %s: pre-encoded request block mismatch", e.URL.String())
		}
		fields, pre, ok := in.RespFieldsOf(e)
		if !ok {
			t.Fatalf("entry %s: no response fields", e.URL.String())
		}
		wantResp := h2.ResponseFields(nil, e.Status, e.ContentType, len(e.Body))
		if len(fields) != len(wantResp) {
			t.Fatalf("entry %s: resp fields %v want %v", e.URL.String(), fields, wantResp)
		}
		if !bytes.Equal(pre.Block, hpack.PreEncode(wantResp).Block) {
			t.Fatalf("entry %s: pre-encoded response block mismatch", e.URL.String())
		}
		g := in.ConnGroupOf(id)
		if g < 0 || in.ConnKeyOf(g) != site.ConnKey(e.URL.Authority) {
			t.Fatalf("entry %s: conn group key %q want %q", e.URL.String(), in.ConnKeyOf(g), site.ConnKey(e.URL.Authority))
		}
	}

	// References named only by documents/stylesheets are interned too.
	if _, ok := in.Lookup("https://a.test/f.woff"); !ok {
		t.Fatal("stylesheet font URL not interned")
	}
	if _, ok := in.FamilyID("Fancy"); !ok {
		t.Fatal("font family not interned")
	}

	// Per-site ID spaces: a rewritten site (its own Prepared) must not
	// share this table.
	variant := site.NewVariant(site.DB.Clone())
	if variant.Prepared().Interns() != in {
		t.Fatal("variant site must share its base's interns")
	}
	other := NewSite("other", site.Base, site.DB.Clone())
	if other.Prepared().Interns() == in {
		t.Fatal("independent site shares the base's interns")
	}
}

// runFarmLoad performs one full h2-over-netem load of the site's base
// URL against a Farm with pushes and interleaving, hashing every byte
// the server sends to the client. It returns the hash, the number of
// frames the client received and the virtual completion time.
func runFarmLoad(t *testing.T, noPre bool) (hash uint64, frames int64, done time.Duration) {
	t.Helper()
	site := internTestSite(t)
	base := site.Base.String()
	css, font := "https://a.test/s.css", "https://a.test/f.woff"
	plan := PushList(base, css, font).WithInterleave(base, InterleaveSpec{
		OffsetBytes: 64, Critical: []string{css},
	})

	s := sim.New(11)
	n := netem.New(s, netem.DSL())
	f := NewFarm(s, n, site, plan)
	f.NoPreEncode = noPre

	const (
		fnvOffset = 14695981039346656037
		fnvPrime  = 1099511628211
	)
	hash = fnvOffset
	var cl *h2.Client
	completed := 0
	f.Dial("a.test", func(end *netem.End) {
		settings := h2.DefaultSettings()
		cl = h2.NewClient(settings)
		cl.OnPush = func(parent, promised *h2.ClientStream) bool {
			promised.OnComplete = func(int) { completed++ }
			return true
		}
		h2.AttachSim(cl.Core, end)
		// Re-wrap the receiver to hash every wire byte the server sends
		// before the client consumes it.
		end.SetReceiver(func(b []byte) {
			for _, c := range b {
				hash = (hash ^ uint64(c)) * fnvPrime
			}
			cl.Core.Recv(b)
		})
		cl.Request(h2.Request{Method: "GET", Scheme: "https", Authority: "a.test", Path: "/"},
			h2.RequestOpts{OnComplete: func(int) { completed++; done = s.Now() }})
	})
	s.Run()
	if completed < 3 {
		t.Fatalf("expected base + 2 pushed responses, completed %d", completed)
	}
	return hash, cl.Core.FramesRecvd, s.Now()
}

// TestFarmPreEncodeByteIdentical pins the tentpole's core invariant:
// with pre-encoded header blocks enabled the server's wire bytes are
// exactly those of the live HPACK encoder.
func TestFarmPreEncodeByteIdentical(t *testing.T) {
	preHash, preFrames, preDone := runFarmLoad(t, false)
	liveHash, liveFrames, liveDone := runFarmLoad(t, true)
	if preHash != liveHash {
		t.Errorf("wire byte hash: pre-encoded %x != live %x", preHash, liveHash)
	}
	if preFrames != liveFrames {
		t.Errorf("frames received: pre-encoded %d != live %d", preFrames, liveFrames)
	}
	if preDone != liveDone {
		t.Errorf("completion time: pre-encoded %v != live %v", preDone, liveDone)
	}
}

// TestFarmResolvedPlanReuse verifies a warm farm does not re-lower an
// unchanged (site, plan) pair, and re-lowers when either changes.
func TestFarmResolvedPlanReuse(t *testing.T) {
	site := internTestSite(t)
	base := site.Base.String()
	plan := PushList(base, "https://a.test/s.css")
	s := sim.New(1)
	n := netem.New(s, netem.DSL())
	f := NewFarm(s, n, site, plan)
	first := f.resolved.triggers
	if len(first) != 1 {
		t.Fatalf("triggers = %d, want 1", len(first))
	}
	// Same site and same plan maps: Reset must reuse the lowering (the
	// triggers map identity is unchanged).
	f.Reset(s, n, site, plan)
	if mapSig(f.resolved.triggers) != mapSig(first) {
		t.Fatal("unchanged (site, plan) was re-lowered on Reset")
	}
	other := PushList(base, "https://a.test/f.woff")
	f.Reset(s, n, site, other)
	if len(f.resolved.triggers) != 1 {
		t.Fatalf("triggers after plan change = %d", len(f.resolved.triggers))
	}
	for _, rt := range f.resolved.triggers {
		if len(rt.pushes) != 1 || rt.pushes[0].URL.Path != "/f.woff" {
			t.Fatalf("re-lowered plan pushes %v", rt.pushes)
		}
	}
}
