package shard

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"time"

	"repro/internal/metrics"
)

func TestStreamRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	sw := NewStreamWriter(&buf)
	job := AppendString(nil, "delta")
	job = AppendUvarint(job, 3)
	job = AppendBytes(job, []byte(`{"x":1}`))
	if err := sw.Frame(FrameJob, job); err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 3; i++ {
		if err := sw.Frame(FrameIndex, AppendUvarint(nil, i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := sw.End(); err != nil {
		t.Fatal(err)
	}

	sr := NewStreamReader(&buf)
	kind, payload, err := sr.Next()
	if err != nil || kind != FrameJob {
		t.Fatalf("first frame: kind=%v err=%v", kind, err)
	}
	r := NewReader(payload)
	if name := r.String(); name != "delta" {
		t.Fatalf("job name %q", name)
	}
	if n := r.Uvarint(); n != 3 {
		t.Fatalf("unit count %d", n)
	}
	if params := r.Bytes(); string(params) != `{"x":1}` {
		t.Fatalf("params %q", params)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 3; i++ {
		kind, payload, err := sr.Next()
		if err != nil || kind != FrameIndex {
			t.Fatalf("index frame %d: kind=%v err=%v", i, kind, err)
		}
		r := NewReader(payload)
		if got := r.Uvarint(); got != i {
			t.Fatalf("index %d, want %d", got, i)
		}
		if err := r.Close(); err != nil {
			t.Fatal(err)
		}
	}
	kind, _, err = sr.Next()
	if err != nil || kind != FrameEnd {
		t.Fatalf("end frame: kind=%v err=%v", kind, err)
	}
	if _, _, err := sr.Next(); err == nil {
		t.Fatal("read past end frame succeeded")
	}
}

func TestStreamRejectsCorruptInput(t *testing.T) {
	valid := func() []byte {
		var buf bytes.Buffer
		sw := NewStreamWriter(&buf)
		if err := sw.Frame(FrameResult, AppendUvarint(nil, 7)); err != nil {
			t.Fatal(err)
		}
		if err := sw.End(); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}()

	cases := map[string][]byte{
		"empty":           nil,
		"short header":    valid[:3],
		"bad magic":       append([]byte("XSH1"), valid[4:]...),
		"bad version":     append(append([]byte{}, valid[:4]...), append([]byte{9}, valid[5:]...)...),
		"truncated frame": valid[:len(valid)-1],
		"missing end":     valid[:6],
		"unknown kind":    append(append([]byte{}, valid[:5]...), 0x7f, 0x00),
		// End frame claiming two preceding frames when only one was sent.
		"count mismatch": func() []byte {
			b := append([]byte{}, valid...)
			b[len(b)-1] = 2
			return b
		}(),
	}
	for name, input := range cases {
		sr := NewStreamReader(bytes.NewReader(input))
		var err error
		for err == nil {
			var kind FrameKind
			kind, _, err = sr.Next()
			if err == nil && kind == FrameEnd {
				t.Errorf("%s: corrupt stream completed cleanly", name)
				break
			}
		}
		if err == nil {
			t.Errorf("%s: no error surfaced", name)
		}
	}
}

func TestStreamWriterRejectsManualEnd(t *testing.T) {
	sw := NewStreamWriter(&bytes.Buffer{})
	if err := sw.Frame(FrameEnd, nil); err == nil {
		t.Fatal("Frame accepted FrameEnd")
	}
}

func TestSplitResult(t *testing.T) {
	payload := AppendUvarint(nil, 42)
	payload = AppendFloat64(payload, 1.5)
	idx, rest, err := SplitResult(payload)
	if err != nil || idx != 42 {
		t.Fatalf("idx=%d err=%v", idx, err)
	}
	r := NewReader(rest)
	if v := r.Float64(); v != 1.5 {
		t.Fatalf("rest decoded to %v", v)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := SplitResult(nil); err == nil {
		t.Fatal("empty result payload split without error")
	}
}

func TestPayloadRoundTrip(t *testing.T) {
	var s metrics.Sample
	for _, v := range []time.Duration{time.Millisecond, 5 * time.Millisecond, time.Second} {
		s.Add(v)
	}
	var comp metrics.Sample
	for i := 0; i < 12; i++ {
		comp.Add(time.Duration(i) * time.Millisecond)
	}
	comp.Compact()
	var sk metrics.Sketch
	sk.Add(time.Millisecond)
	sk.Add(3 * time.Second)

	b := AppendUvarint(nil, 9)
	b = AppendVarint(b, -42)
	b = AppendDuration(b, 250*time.Millisecond)
	b = AppendFloat64(b, math.Pi)
	b = AppendString(b, "dsl")
	b = AppendBytes(b, []byte{0, 1, 2})
	b = AppendFloat64s(b, []float64{1.25, -0.5})
	b = AppendFloat64s(b, nil)
	b = AppendInt64s(b, []int64{7, -7})
	b = AppendStrings(b, []string{"a", ""})
	b = AppendRows(b, [][]string{{"r1c1", "r1c2"}, {"r2c1"}})
	b = AppendRows(b, nil)
	b = AppendSample(b, &s)
	b = AppendSample(b, &comp)
	b = AppendSketch(b, &sk)

	r := NewReader(b)
	if v := r.Uvarint(); v != 9 {
		t.Fatalf("uvarint %d", v)
	}
	if v := r.Varint(); v != -42 {
		t.Fatalf("varint %d", v)
	}
	if v := r.Duration(); v != 250*time.Millisecond {
		t.Fatalf("duration %v", v)
	}
	if v := r.Float64(); v != math.Pi {
		t.Fatalf("float64 %v", v)
	}
	if v := r.String(); v != "dsl" {
		t.Fatalf("string %q", v)
	}
	if v := r.Bytes(); !bytes.Equal(v, []byte{0, 1, 2}) {
		t.Fatalf("bytes %v", v)
	}
	if v := r.Float64s(); len(v) != 2 || v[0] != 1.25 || v[1] != -0.5 {
		t.Fatalf("float64s %v", v)
	}
	if v := r.Float64s(); v != nil {
		t.Fatalf("empty float64s %v", v)
	}
	if v := r.Int64s(); len(v) != 2 || v[0] != 7 || v[1] != -7 {
		t.Fatalf("int64s %v", v)
	}
	if v := r.Strings(); len(v) != 2 || v[0] != "a" || v[1] != "" {
		t.Fatalf("strings %v", v)
	}
	rows := r.Rows()
	if len(rows) != 2 || strings.Join(rows[0], ",") != "r1c1,r1c2" || strings.Join(rows[1], ",") != "r2c1" {
		t.Fatalf("rows %v", rows)
	}
	if v := r.Rows(); v != nil {
		t.Fatalf("empty rows %v", v)
	}
	gotS := r.Sample()
	if gotS.Median() != s.Median() || gotS.N() != s.N() {
		t.Fatal("raw sample diverged")
	}
	gotC := r.Sample()
	if !gotC.Compacted() || gotC.Median() != comp.Median() || gotC.N() != comp.N() {
		t.Fatal("compacted sample diverged")
	}
	gotK := r.Sketch()
	if gotK.Quantile(0.5) != sk.Quantile(0.5) {
		t.Fatal("sketch diverged")
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestReaderErrorsAreSticky(t *testing.T) {
	r := NewReader([]byte{0x80}) // unterminated varint
	if r.Uvarint() != 0 || r.Err() == nil {
		t.Fatal("truncated uvarint decoded")
	}
	// Everything after the first failure returns zero values without
	// touching the buffer.
	if r.Float64() != 0 || r.String() != "" || r.Strings() != nil || r.Rows() != nil {
		t.Fatal("sticky error did not zero subsequent reads")
	}
	if s := r.Sample(); s.N() != 0 {
		t.Fatal("sticky error did not zero Sample read")
	}
	if err := r.Close(); err == nil {
		t.Fatal("Close lost the sticky error")
	}
}

func TestReaderCloseRejectsTrailingBytes(t *testing.T) {
	r := NewReader(AppendUvarint(nil, 1))
	if err := r.Close(); err == nil {
		t.Fatal("unread payload closed cleanly")
	}
}

func TestReaderBoundsListLengths(t *testing.T) {
	// Claims 2^40 float64s with no bytes behind the claim.
	r := NewReader(AppendUvarint(nil, 1<<40))
	if v := r.Float64s(); v != nil || r.Err() == nil {
		t.Fatal("oversized float64 list length accepted")
	}
	r = NewReader(AppendUvarint(nil, 1<<40))
	if v := r.Bytes(); v != nil || r.Err() == nil {
		t.Fatal("oversized byte string length accepted")
	}
}
