package shard

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/metrics"
)

// FuzzDecodeResults feeds arbitrary bytes through the full result
// decode path a parent uses on child output: the stream deframer, the
// result-index split, and the payload reader including the Sample and
// Sketch codecs. A malformed child payload must surface as an error —
// never a panic, hang, or outsized allocation.
func FuzzDecodeResults(f *testing.F) {
	// Seed with a well-formed result stream so the fuzzer starts from
	// bytes that reach the deep decode paths.
	var s metrics.Sample
	s.Add(time.Millisecond)
	s.Add(time.Second)
	var comp metrics.Sample
	for i := 0; i < 8; i++ {
		comp.Add(time.Duration(i+1) * time.Millisecond)
	}
	comp.Compact()
	var buf bytes.Buffer
	sw := NewStreamWriter(&buf)
	payload := AppendUvarint(nil, 0)
	payload = AppendSample(payload, &s)
	payload = AppendSample(payload, &comp)
	payload = AppendFloat64s(payload, []float64{1.5, -2.25})
	payload = AppendRows(payload, [][]string{{"a", "b"}})
	if err := sw.Frame(FrameResult, payload); err != nil {
		f.Fatal(err)
	}
	if err := sw.End(); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte("RSH1\x01"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		sr := NewStreamReader(bytes.NewReader(data))
		for {
			kind, framePayload, err := sr.Next()
			if err != nil || kind == FrameEnd {
				return
			}
			if kind != FrameResult {
				continue
			}
			_, rest, err := SplitResult(framePayload)
			if err != nil {
				return
			}
			r := NewReader(rest)
			_ = r.Sample()
			_ = r.Sample()
			_ = r.Float64s()
			_ = r.Rows()
			_ = r.Close()
		}
	})
}
