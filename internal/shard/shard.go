// Package shard implements the wire protocol between the experiment
// engine and its multi-process executor workers (internal/core's
// -executor multiprocess backend): a versioned frame stream carrying
// index-addressed work units from parent to child and serialized
// per-unit results back.
//
// A stream is a 5-byte header — the magic "RSH1" plus a version byte —
// followed by frames of (kind byte, uvarint payload length, payload).
// The parent sends one Job frame (job name, params, unit count), then
// one Index frame per assigned unit; the child answers with one Result
// frame per unit (uvarint unit index, then the job-specific payload).
// Both directions terminate with an End frame whose payload is the
// count of preceding frames, so truncation is always detected: EOF
// before End is an error, a count mismatch is an error, and any decode
// error is surfaced rather than papered over. Payload contents are
// encoded with the append-style primitives in payload.go and decoded
// with the sticky-error Reader, whose Close rejects trailing bytes —
// the other half of the no-silent-truncation contract.
package shard

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Version is the stream format version carried after the magic. A
// reader rejects any other version, so parent and worker binaries
// cannot silently exchange incompatible frames.
const Version = 1

var magic = [4]byte{'R', 'S', 'H', '1'}

// maxFramePayload bounds a single frame. Real payloads are the encoded
// result of one work unit (a few KB); the bound only exists so a
// corrupt length cannot demand an absurd read.
const maxFramePayload = 1 << 30

// FrameKind discriminates the stream's frame types.
type FrameKind byte

const (
	// FrameJob opens a parent-to-worker stream: job name, JSON params
	// and the fan-out's total unit count.
	FrameJob FrameKind = 0x01
	// FrameIndex assigns one unit index to the worker.
	FrameIndex FrameKind = 0x02
	// FrameResult returns one unit's result: uvarint unit index
	// followed by the job's encoded payload.
	FrameResult FrameKind = 0x03
	// FrameEnd terminates either direction; its payload is the uvarint
	// count of preceding frames.
	FrameEnd FrameKind = 0x04
)

func (k FrameKind) String() string {
	switch k {
	case FrameJob:
		return "job"
	case FrameIndex:
		return "index"
	case FrameResult:
		return "result"
	case FrameEnd:
		return "end"
	}
	return fmt.Sprintf("kind(0x%02x)", byte(k))
}

// StreamWriter writes one framed stream. The header goes out lazily
// with the first frame; End writes the terminating frame and flushes.
type StreamWriter struct {
	w      *bufio.Writer
	frames uint64
	began  bool
}

// NewStreamWriter returns a writer framing onto w.
func NewStreamWriter(w io.Writer) *StreamWriter {
	return &StreamWriter{w: bufio.NewWriter(w)}
}

func (sw *StreamWriter) header() error {
	if sw.began {
		return nil
	}
	sw.began = true
	if _, err := sw.w.Write(magic[:]); err != nil {
		return err
	}
	return sw.w.WriteByte(Version)
}

func (sw *StreamWriter) frame(kind FrameKind, payload []byte) error {
	if err := sw.header(); err != nil {
		return err
	}
	if err := sw.w.WriteByte(byte(kind)); err != nil {
		return err
	}
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], uint64(len(payload)))
	if _, err := sw.w.Write(tmp[:n]); err != nil {
		return err
	}
	_, err := sw.w.Write(payload)
	return err
}

// Frame writes one non-End frame. The payload is copied into the
// buffer before return, so the caller may reuse it.
func (sw *StreamWriter) Frame(kind FrameKind, payload []byte) error {
	if kind == FrameEnd {
		return errors.New("shard: End terminates the stream; use the End method")
	}
	if len(payload) > maxFramePayload {
		return fmt.Errorf("shard: frame payload %d exceeds limit", len(payload))
	}
	if err := sw.frame(kind, payload); err != nil {
		return err
	}
	sw.frames++
	return nil
}

// Flush pushes buffered frames to the underlying writer, so a worker
// can stream each result as it completes instead of batching them
// behind End.
func (sw *StreamWriter) Flush() error { return sw.w.Flush() }

// End writes the terminating frame — carrying the count of frames
// written before it — and flushes.
func (sw *StreamWriter) End() error {
	var payload [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(payload[:], sw.frames)
	if err := sw.frame(FrameEnd, payload[:n]); err != nil {
		return err
	}
	return sw.w.Flush()
}

// StreamReader reads one framed stream, validating the header, every
// frame bound, and the End frame's count.
type StreamReader struct {
	r       *bufio.Reader
	scratch bytes.Buffer
	frames  uint64
	began   bool
	done    bool
}

// NewStreamReader returns a reader deframing from r.
func NewStreamReader(r io.Reader) *StreamReader {
	return &StreamReader{r: bufio.NewReader(r)}
}

// truncated maps io.EOF / io.ErrUnexpectedEOF mid-stream onto an
// explicit truncation error: EOF is only legal after the End frame.
func truncated(err error) error {
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
		return errors.New("shard: stream truncated before end frame")
	}
	return err
}

// Next returns the next frame's kind and payload. The payload aliases
// an internal buffer valid only until the following Next call — copy
// it to retain it. A FrameEnd return means the stream completed with a
// verified frame count; calling Next again afterwards is an error, as
// is hitting EOF at any earlier point.
func (sr *StreamReader) Next() (FrameKind, []byte, error) {
	if sr.done {
		return 0, nil, errors.New("shard: read past end of stream")
	}
	if !sr.began {
		sr.began = true
		var h [len(magic) + 1]byte
		if _, err := io.ReadFull(sr.r, h[:]); err != nil {
			return 0, nil, truncated(err)
		}
		if [4]byte(h[:4]) != magic {
			return 0, nil, fmt.Errorf("shard: bad stream magic %q", h[:4])
		}
		if h[4] != Version {
			return 0, nil, fmt.Errorf("shard: unsupported stream version %d (want %d)", h[4], Version)
		}
	}
	kb, err := sr.r.ReadByte()
	if err != nil {
		return 0, nil, truncated(err)
	}
	kind := FrameKind(kb)
	plen, err := binary.ReadUvarint(sr.r)
	if err != nil {
		return 0, nil, truncated(err)
	}
	if plen > maxFramePayload {
		return 0, nil, fmt.Errorf("shard: frame payload %d exceeds limit", plen)
	}
	// CopyN into the reusable buffer grows it only as bytes actually
	// arrive, so a corrupt length cannot force a huge allocation.
	sr.scratch.Reset()
	if _, err := io.CopyN(&sr.scratch, sr.r, int64(plen)); err != nil {
		return 0, nil, truncated(err)
	}
	payload := sr.scratch.Bytes()
	switch kind {
	case FrameJob, FrameIndex, FrameResult:
		sr.frames++
		return kind, payload, nil
	case FrameEnd:
		count, n := binary.Uvarint(payload)
		if n <= 0 || n != len(payload) {
			return 0, nil, errors.New("shard: malformed end frame")
		}
		if count != sr.frames {
			return 0, nil, fmt.Errorf("shard: stream truncated: end frame counts %d frames, read %d", count, sr.frames)
		}
		sr.done = true
		return FrameEnd, nil, nil
	}
	return 0, nil, fmt.Errorf("shard: unknown frame kind 0x%02x", kb)
}

// SplitResult splits a Result frame payload into the unit index and
// the job-specific result bytes.
func SplitResult(payload []byte) (index uint64, rest []byte, err error) {
	index, n := binary.Uvarint(payload)
	if n <= 0 {
		return 0, nil, errors.New("shard: result frame missing unit index")
	}
	return index, payload[n:], nil
}
