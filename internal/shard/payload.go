package shard

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"time"

	"repro/internal/metrics"
)

// Append-style payload primitives and the matching sticky-error Reader.
// Jobs in internal/core compose these into per-unit result payloads;
// the framing in shard.go carries the composed bytes. All encodings
// are deterministic and every decoder bounds list lengths by the bytes
// actually remaining, so corrupt input errors out instead of
// allocating or truncating silently.

// AppendUvarint appends v as a uvarint.
func AppendUvarint(b []byte, v uint64) []byte { return binary.AppendUvarint(b, v) }

// AppendVarint appends v as a zig-zag varint.
func AppendVarint(b []byte, v int64) []byte { return binary.AppendVarint(b, v) }

// AppendDuration appends d as a varint of nanoseconds.
func AppendDuration(b []byte, d time.Duration) []byte { return binary.AppendVarint(b, int64(d)) }

// AppendFloat64 appends v as its fixed 8-byte little-endian IEEE 754
// bits — bit-exact, so decoded floats compare equal to the originals.
func AppendFloat64(b []byte, v float64) []byte {
	return binary.LittleEndian.AppendUint64(b, math.Float64bits(v))
}

// AppendBytes appends a uvarint length followed by the raw bytes.
func AppendBytes(b, v []byte) []byte {
	b = binary.AppendUvarint(b, uint64(len(v)))
	return append(b, v...)
}

// AppendString appends s as a length-prefixed byte string.
func AppendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

// AppendFloat64s appends a uvarint count followed by each value.
func AppendFloat64s(b []byte, vs []float64) []byte {
	b = binary.AppendUvarint(b, uint64(len(vs)))
	for _, v := range vs {
		b = AppendFloat64(b, v)
	}
	return b
}

// AppendInt64s appends a uvarint count followed by each value.
func AppendInt64s(b []byte, vs []int64) []byte {
	b = binary.AppendUvarint(b, uint64(len(vs)))
	for _, v := range vs {
		b = binary.AppendVarint(b, v)
	}
	return b
}

// AppendStrings appends a uvarint count followed by each string.
func AppendStrings(b []byte, vs []string) []byte {
	b = binary.AppendUvarint(b, uint64(len(vs)))
	for _, v := range vs {
		b = AppendString(b, v)
	}
	return b
}

// AppendRows appends a table fragment: uvarint row count, then each
// row as a string list.
func AppendRows(b []byte, rows [][]string) []byte {
	b = binary.AppendUvarint(b, uint64(len(rows)))
	for _, row := range rows {
		b = AppendStrings(b, row)
	}
	return b
}

// AppendSample appends s's wire form (see metrics.Sample.AppendBinary).
func AppendSample(b []byte, s *metrics.Sample) []byte { return s.AppendBinary(b) }

// AppendSketch appends k's wire form (see metrics.Sketch.AppendBinary).
func AppendSketch(b []byte, k *metrics.Sketch) []byte { return k.AppendBinary(b) }

var (
	errTruncated = errors.New("shard: truncated payload")
	errTrailing  = errors.New("shard: trailing bytes after payload")
)

// Reader decodes a payload built with the Append functions. Decode
// errors are sticky: after the first failure every subsequent call
// returns a zero value and Err/Close report the original error, so a
// decode sequence can run unchecked and be validated once at the end.
// Close additionally rejects unconsumed trailing bytes.
type Reader struct {
	b   []byte
	err error
}

// NewReader returns a Reader decoding from b. The Reader aliases b.
func NewReader(b []byte) *Reader { return &Reader{b: b} }

func (r *Reader) fail(err error) {
	if r.err == nil {
		r.err = err
	}
}

// Err returns the first decode error, if any.
func (r *Reader) Err() error { return r.err }

// Close validates that the payload decoded cleanly and completely:
// it returns the first decode error, or errTrailing if bytes remain.
func (r *Reader) Close() error {
	if r.err != nil {
		return r.err
	}
	if len(r.b) != 0 {
		return fmt.Errorf("%w (%d bytes)", errTrailing, len(r.b))
	}
	return nil
}

// Uvarint decodes a uvarint.
func (r *Reader) Uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.b)
	if n <= 0 {
		r.fail(errTruncated)
		return 0
	}
	r.b = r.b[n:]
	return v
}

// Varint decodes a zig-zag varint.
func (r *Reader) Varint() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.b)
	if n <= 0 {
		r.fail(errTruncated)
		return 0
	}
	r.b = r.b[n:]
	return v
}

// Duration decodes a varint of nanoseconds.
func (r *Reader) Duration() time.Duration { return time.Duration(r.Varint()) }

// Float64 decodes a fixed 8-byte little-endian IEEE 754 value.
func (r *Reader) Float64() float64 {
	if r.err != nil {
		return 0
	}
	if len(r.b) < 8 {
		r.fail(errTruncated)
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(r.b))
	r.b = r.b[8:]
	return v
}

// Bytes decodes a length-prefixed byte string. The result aliases the
// input payload.
func (r *Reader) Bytes() []byte {
	n := r.Uvarint()
	if r.err != nil {
		return nil
	}
	if n > uint64(len(r.b)) {
		r.fail(fmt.Errorf("shard: byte string length %d exceeds payload", n))
		return nil
	}
	v := r.b[:n]
	r.b = r.b[n:]
	return v
}

// String decodes a length-prefixed string.
func (r *Reader) String() string { return string(r.Bytes()) }

// Count decodes a uvarint list length and validates it against the
// bytes remaining, given that each element occupies at least
// minElemBytes (use 1 for varint-encoded elements). This keeps a
// corrupt length from sizing a huge allocation.
func (r *Reader) Count(minElemBytes int) int {
	n := r.Uvarint()
	if r.err != nil {
		return 0
	}
	if minElemBytes < 1 {
		minElemBytes = 1
	}
	if n > uint64(len(r.b)/minElemBytes) {
		r.fail(fmt.Errorf("shard: list length %d exceeds payload", n))
		return 0
	}
	return int(n)
}

// Float64s decodes a list written by AppendFloat64s. Returns nil for
// an empty list.
func (r *Reader) Float64s() []float64 {
	n := r.Count(8)
	if n == 0 {
		return nil
	}
	vs := make([]float64, n)
	for i := range vs {
		vs[i] = r.Float64()
	}
	return vs
}

// Int64s decodes a list written by AppendInt64s. Returns nil for an
// empty list.
func (r *Reader) Int64s() []int64 {
	n := r.Count(1)
	if n == 0 {
		return nil
	}
	vs := make([]int64, n)
	for i := range vs {
		vs[i] = r.Varint()
	}
	return vs
}

// Strings decodes a list written by AppendStrings. Returns nil for an
// empty list.
func (r *Reader) Strings() []string {
	n := r.Count(1)
	if n == 0 {
		return nil
	}
	vs := make([]string, n)
	for i := range vs {
		vs[i] = r.String()
	}
	return vs
}

// Rows decodes a table fragment written by AppendRows. Returns nil for
// an empty fragment.
func (r *Reader) Rows() [][]string {
	n := r.Count(1)
	if n == 0 {
		return nil
	}
	rows := make([][]string, n)
	for i := range rows {
		rows[i] = r.Strings()
	}
	return rows
}

// Sample decodes a metrics.Sample written by AppendSample.
func (r *Reader) Sample() metrics.Sample {
	if r.err != nil {
		return metrics.Sample{}
	}
	var s metrics.Sample
	rest, err := s.DecodeBinary(r.b)
	if err != nil {
		r.fail(err)
		return metrics.Sample{}
	}
	r.b = rest
	return s
}

// Sketch decodes a metrics.Sketch written by AppendSketch.
func (r *Reader) Sketch() metrics.Sketch {
	if r.err != nil {
		return metrics.Sketch{}
	}
	var k metrics.Sketch
	rest, err := k.DecodeBinary(r.b)
	if err != nil {
		r.fail(err)
		return metrics.Sketch{}
	}
	r.b = rest
	return k
}
