package h2

import "testing"

// TestFrameReaderAllocBudget pins the zero-copy receive path: once the
// reader's scratch buffer and chunk list are warm, parsing a max-size
// DATA frame fed in MSS-sized chunks must not allocate (the payload is
// assembled into the reused scratch buffer and returned via the reused
// DataFrame). A regression back to copy-per-Feed or alloc-per-frame
// fails this immediately.
func TestFrameReaderAllocBudget(t *testing.T) {
	payload := make([]byte, DefaultMaxFrameSize)
	wire := AppendFrame(nil, &DataFrame{StreamID: 1, Data: payload})
	var r FrameReader
	parse := func() {
		frames := 0
		for off := 0; off < len(wire); {
			end := off + 1460
			if end > len(wire) {
				end = len(wire)
			}
			r.Feed(wire[off:end])
			off = end
			for {
				f, err := r.Next()
				if err != nil {
					t.Fatal(err)
				}
				if f == nil {
					break
				}
				frames++
			}
		}
		if frames != 1 {
			t.Fatalf("parsed %d frames, want 1", frames)
		}
	}
	// testing.AllocsPerRun runs parse once as warm-up, which grows the
	// scratch buffer and chunk list to steady state.
	if avg := testing.AllocsPerRun(50, parse); avg > 0.5 {
		t.Errorf("FrameReader parse allocates %.2f per 16KB DATA frame, budget 0.5", avg)
	}
}
