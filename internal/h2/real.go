package h2

import (
	"io"
	"sync"
)

// IOConn runs a Core over a real byte-stream transport (net.Conn,
// net.Pipe, TLS...). It exists for two reasons: it proves the protocol
// core is genuinely transport-agnostic (the same state machine the
// simulator drives), and it powers cmd/replay-server, which serves
// recorded sites to real HTTP/2 clients over TCP.
//
// Core callbacks fire on the reader goroutine while holding the
// connection lock; they must not block.
type IOConn struct {
	core *Core
	rw   io.ReadWriteCloser

	mu     sync.Mutex
	cond   *sync.Cond
	closed bool
	err    error

	done chan struct{}
}

// RunIO attaches core to rw and starts the reader and writer goroutines.
// The caller must have installed all callbacks beforehand.
func RunIO(core *Core, rw io.ReadWriteCloser) *IOConn {
	c := &IOConn{core: core, rw: rw, done: make(chan struct{})}
	c.cond = sync.NewCond(&c.mu)
	core.OnWritable = func() { c.cond.Signal() }
	c.mu.Lock()
	core.Start()
	c.mu.Unlock()
	go c.readLoop()
	go c.writeLoop()
	return c
}

// Locked runs fn while holding the connection lock, for safely invoking
// Core methods (issuing requests, responding) from other goroutines.
func (c *IOConn) Locked(fn func(core *Core)) {
	c.mu.Lock()
	defer c.mu.Unlock()
	fn(c.core)
	c.cond.Signal()
}

// Err returns the terminal transport error, if any.
func (c *IOConn) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.err
}

// Done is closed when the reader loop exits.
func (c *IOConn) Done() <-chan struct{} { return c.done }

// Close tears down the transport.
func (c *IOConn) Close() error {
	c.mu.Lock()
	c.closed = true
	c.cond.Broadcast()
	c.mu.Unlock()
	return c.rw.Close()
}

func (c *IOConn) readLoop() {
	defer close(c.done)
	buf := make([]byte, 32*1024)
	for {
		n, err := c.rw.Read(buf)
		if n > 0 {
			// Core.Recv retains the slice (zero-copy frame parsing), so
			// hand it a right-sized copy and keep reusing buf.
			chunk := make([]byte, n)
			copy(chunk, buf[:n])
			c.mu.Lock()
			c.core.Recv(chunk)
			c.cond.Signal()
			c.mu.Unlock()
		}
		if err != nil {
			c.mu.Lock()
			if c.err == nil && err != io.EOF {
				c.err = err
			}
			c.closed = true
			c.cond.Broadcast()
			c.mu.Unlock()
			return
		}
	}
}

func (c *IOConn) writeLoop() {
	for {
		c.mu.Lock()
		for !c.closed && !c.core.HasPending() {
			c.cond.Wait()
		}
		if c.closed {
			c.mu.Unlock()
			return
		}
		var chunk []byte
		for {
			b := c.core.PopWrite(0)
			if b == nil {
				break
			}
			chunk = append(chunk, b...)
			if len(chunk) > 64*1024 {
				break
			}
		}
		c.mu.Unlock()
		if len(chunk) == 0 {
			continue
		}
		if _, err := c.rw.Write(chunk); err != nil {
			c.mu.Lock()
			if c.err == nil {
				c.err = err
			}
			c.closed = true
			c.cond.Broadcast()
			c.mu.Unlock()
			return
		}
	}
}
