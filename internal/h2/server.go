package h2

import (
	"fmt"
	"strconv"

	"repro/internal/hpack"
)

// Request is the HTTP/2 pseudo-header view of a request.
type Request struct {
	Method    string
	Scheme    string
	Authority string
	Path      string
	Header    []hpack.HeaderField // non-pseudo fields
}

// URL returns scheme://authority/path. (Concatenation, not Sprintf:
// this runs once per adopted push on the hot path.)
func (r Request) URL() string {
	return r.Scheme + "://" + r.Authority + r.Path
}

// Fields encodes the request as an HPACK header list, pseudo-headers
// first as required by RFC 7540 Section 8.1.2.1.
func (r Request) Fields() []hpack.HeaderField {
	fs := []hpack.HeaderField{
		{Name: ":method", Value: r.Method},
		{Name: ":scheme", Value: r.Scheme},
		{Name: ":authority", Value: r.Authority},
		{Name: ":path", Value: r.Path},
	}
	return append(fs, r.Header...)
}

// ParseRequest extracts a Request from a decoded header list.
func ParseRequest(fields []hpack.HeaderField) (Request, error) {
	var r Request
	for _, f := range fields {
		switch f.Name {
		case ":method":
			r.Method = f.Value
		case ":scheme":
			r.Scheme = f.Value
		case ":authority":
			r.Authority = f.Value
		case ":path":
			r.Path = f.Value
		default:
			if len(f.Name) > 0 && f.Name[0] == ':' {
				return r, fmt.Errorf("h2: unknown pseudo-header %q", f.Name)
			}
			r.Header = append(r.Header, f)
		}
	}
	if r.Method == "" || r.Path == "" {
		return r, fmt.Errorf("h2: incomplete request pseudo-headers")
	}
	return r, nil
}

// Server wraps a server-side Core with request dispatch and response /
// push helpers. It is transport-agnostic.
//
//repolint:pooled
type Server struct {
	Core *Core
	// Handler is invoked when a request's headers are complete. Bodies on
	// requests are ignored (the testbed replays GETs).
	Handler func(sw *ServerStream, req Request)

	// fscratch is the reused response header list (encoded before Respond
	// returns, so one scratch per connection suffices).
	//
	//repolint:keep reused scratch; Respond rebuilds it from length zero each call
	fscratch []hpack.HeaderField
	// issued/free recycle ServerStream wrappers across connections on a
	// pooled server (see Reset).
	issued []*ServerStream
	free   []*ServerStream
}

// NewServer builds a server connection with the given local settings.
func NewServer(local Settings, handler func(sw *ServerStream, req Request)) *Server {
	s := &Server{Core: NewCore(true, local), Handler: handler}
	s.Core.OnHeaders = func(st *Stream, fields []hpack.HeaderField, endStream bool) {
		req, err := ParseRequest(fields)
		if err != nil {
			s.Core.streamError(st.ID, ErrCodeProtocol)
			return
		}
		sw := s.newServerStream(st, req)
		st.User = sw
		if s.Handler != nil {
			s.Handler(sw, req)
		}
	}
	return s
}

// Reset re-arms a pooled server for a fresh connection: the core, its
// codec state and every wrapper struct are recycled; the dispatch
// closure installed by NewServer is kept.
func (s *Server) Reset(local Settings, handler func(sw *ServerStream, req Request)) {
	s.Core.Reset(local)
	s.Handler = handler
	for _, sw := range s.issued {
		*sw = ServerStream{}
		s.free = append(s.free, sw)
	}
	s.issued = s.issued[:0]
}

func (s *Server) newServerStream(st *Stream, req Request) *ServerStream {
	var sw *ServerStream
	if n := len(s.free); n > 0 {
		sw = s.free[n-1]
		s.free[n-1] = nil
		s.free = s.free[:n-1]
	} else {
		sw = &ServerStream{}
	}
	*sw = ServerStream{Server: s, St: st, Req: req}
	s.issued = append(s.issued, sw)
	return sw
}

// ServerStream is the server's handle on one request (or push) stream.
type ServerStream struct {
	Server *Server
	St     *Stream
	Req    Request
}

// ResponseFields assembles the header list Respond would send, appended
// onto dst (prepare-time callers pre-build and pre-encode these).
func ResponseFields(dst []hpack.HeaderField, status int, ctype string, bodyLen int) []hpack.HeaderField {
	dst = append(dst, hpack.HeaderField{Name: ":status", Value: strconv.Itoa(status)})
	if ctype != "" {
		dst = append(dst, hpack.HeaderField{Name: "content-type", Value: ctype})
	}
	return append(dst, hpack.HeaderField{Name: "content-length", Value: strconv.Itoa(bodyLen)})
}

// Respond sends a complete response on the stream.
func (sw *ServerStream) Respond(status int, ctype string, body []byte, extra ...hpack.HeaderField) {
	s := sw.Server
	fields := ResponseFields(s.fscratch[:0], status, ctype, len(body))
	fields = append(fields, extra...)
	s.fscratch = fields[:0]
	sw.respond(fields, nil, 0, body)
}

// RespondPre is Respond with prepare-time pre-built header fields and an
// optional pre-encoded block valid at sequence position seqPos. The
// wire bytes are identical to Respond with the same values.
func (sw *ServerStream) RespondPre(fields []hpack.HeaderField, pe *hpack.PreEncoded, seqPos int, body []byte) {
	sw.respond(fields, pe, seqPos, body)
}

func (sw *ServerStream) respond(fields []hpack.HeaderField, pe *hpack.PreEncoded, seqPos int, body []byte) {
	if len(body) == 0 {
		sw.Server.Core.SendResponseHeadersPre(sw.St, fields, pe, seqPos, true)
		return
	}
	sw.Server.Core.SendResponseHeadersPre(sw.St, fields, pe, seqPos, false)
	sw.St.QueueData(body)
	sw.St.CloseOut()
}

// Push announces a pushed response for req on this stream and returns the
// promised stream's handle, on which Respond must then be called. It
// returns nil when the client disabled push (SETTINGS_ENABLE_PUSH=0).
func (sw *ServerStream) Push(req Request) *ServerStream {
	return sw.PushPre(req, nil, nil, 0)
}

// PushPre is Push with prepare-time pre-built request fields (nil falls
// back to req.Fields()) and an optional pre-encoded PUSH_PROMISE block
// valid at sequence position seqPos.
func (sw *ServerStream) PushPre(req Request, fields []hpack.HeaderField, pe *hpack.PreEncoded, seqPos int) *ServerStream {
	if fields == nil {
		fields = req.Fields()
	}
	st := sw.Server.Core.PushPre(sw.St, fields, pe, seqPos)
	if st == nil {
		return nil
	}
	psw := sw.Server.newServerStream(st, req)
	st.User = psw
	return psw
}

// Interleave pauses this stream's body after offset bytes and resumes it
// once every stream in after has finished sending. This is the paper's
// modified h2o scheduler: the base document is cut at a byte offset (e.g.
// just past </head>), critical pushed resources are sent, then the
// document continues (Sec. 5, Fig. 5a).
func (sw *ServerStream) Interleave(offset int, after []uint32) {
	sw.St.PauseOutputAt(offset)
	sw.St.ResumeAfter(after)
}
