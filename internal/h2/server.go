package h2

import (
	"fmt"
	"strconv"

	"repro/internal/hpack"
)

// Request is the HTTP/2 pseudo-header view of a request.
type Request struct {
	Method    string
	Scheme    string
	Authority string
	Path      string
	Header    []hpack.HeaderField // non-pseudo fields
}

// URL returns scheme://authority/path.
func (r Request) URL() string {
	return fmt.Sprintf("%s://%s%s", r.Scheme, r.Authority, r.Path)
}

// Fields encodes the request as an HPACK header list, pseudo-headers
// first as required by RFC 7540 Section 8.1.2.1.
func (r Request) Fields() []hpack.HeaderField {
	fs := []hpack.HeaderField{
		{Name: ":method", Value: r.Method},
		{Name: ":scheme", Value: r.Scheme},
		{Name: ":authority", Value: r.Authority},
		{Name: ":path", Value: r.Path},
	}
	return append(fs, r.Header...)
}

// ParseRequest extracts a Request from a decoded header list.
func ParseRequest(fields []hpack.HeaderField) (Request, error) {
	var r Request
	for _, f := range fields {
		switch f.Name {
		case ":method":
			r.Method = f.Value
		case ":scheme":
			r.Scheme = f.Value
		case ":authority":
			r.Authority = f.Value
		case ":path":
			r.Path = f.Value
		default:
			if len(f.Name) > 0 && f.Name[0] == ':' {
				return r, fmt.Errorf("h2: unknown pseudo-header %q", f.Name)
			}
			r.Header = append(r.Header, f)
		}
	}
	if r.Method == "" || r.Path == "" {
		return r, fmt.Errorf("h2: incomplete request pseudo-headers")
	}
	return r, nil
}

// Server wraps a server-side Core with request dispatch and response /
// push helpers. It is transport-agnostic.
type Server struct {
	Core *Core
	// Handler is invoked when a request's headers are complete. Bodies on
	// requests are ignored (the testbed replays GETs).
	Handler func(sw *ServerStream, req Request)
}

// NewServer builds a server connection with the given local settings.
func NewServer(local Settings, handler func(sw *ServerStream, req Request)) *Server {
	s := &Server{Core: NewCore(true, local), Handler: handler}
	s.Core.OnHeaders = func(st *Stream, fields []hpack.HeaderField, endStream bool) {
		req, err := ParseRequest(fields)
		if err != nil {
			s.Core.streamError(st.ID, ErrCodeProtocol)
			return
		}
		sw := &ServerStream{Server: s, St: st, Req: req}
		st.User = sw
		if s.Handler != nil {
			s.Handler(sw, req)
		}
	}
	return s
}

// ServerStream is the server's handle on one request (or push) stream.
type ServerStream struct {
	Server *Server
	St     *Stream
	Req    Request
}

// Respond sends a complete response on the stream.
func (sw *ServerStream) Respond(status int, ctype string, body []byte, extra ...hpack.HeaderField) {
	fields := []hpack.HeaderField{
		{Name: ":status", Value: strconv.Itoa(status)},
	}
	if ctype != "" {
		fields = append(fields, hpack.HeaderField{Name: "content-type", Value: ctype})
	}
	fields = append(fields, hpack.HeaderField{Name: "content-length", Value: strconv.Itoa(len(body))})
	fields = append(fields, extra...)
	if len(body) == 0 {
		sw.Server.Core.SendResponseHeaders(sw.St, fields, true)
		return
	}
	sw.Server.Core.SendResponseHeaders(sw.St, fields, false)
	sw.St.QueueData(body)
	sw.St.CloseOut()
}

// Push announces a pushed response for req on this stream and returns the
// promised stream's handle, on which Respond must then be called. It
// returns nil when the client disabled push (SETTINGS_ENABLE_PUSH=0).
func (sw *ServerStream) Push(req Request) *ServerStream {
	st := sw.Server.Core.Push(sw.St, req.Fields())
	if st == nil {
		return nil
	}
	psw := &ServerStream{Server: sw.Server, St: st, Req: req}
	st.User = psw
	return psw
}

// Interleave pauses this stream's body after offset bytes and resumes it
// once every stream in after has finished sending. This is the paper's
// modified h2o scheduler: the base document is cut at a byte offset (e.g.
// just past </head>), critical pushed resources are sent, then the
// document continues (Sec. 5, Fig. 5a).
func (sw *ServerStream) Interleave(offset int, after []uint32) {
	sw.St.PauseOutputAt(offset)
	sw.St.ResumeAfter(after)
}
