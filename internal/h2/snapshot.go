package h2

import (
	"repro/internal/hpack"

	"repro/internal/netem"
)

// Snapshot/Restore capture a connection core's full run state — stream
// tables, priority tree, HPACK codec tables, frame-reader buffer and
// queued control frames — for the engine's fork-at-checkpoint replay.
//
// Ownership contract (mirrors sim.Snapshot): a snapshot owns its slices
// and reuses them across Snapshot calls, while the *Stream, *prioNode
// and wrapper-struct pointers it holds are aliases whose structs Restore
// rewrites in place, keeping handles retained elsewhere (the priority
// tree's st links, a loader's ClientStream references, the farm's
// ServerStream handles) valid across a rewind. The encode arenas are
// append-only and never rewound, so the captured control frames and
// queued DATA headers alias arena regions that post-checkpoint appends
// can never overwrite; payload slices alias immutable recorded bodies.

// clearRestore replaces dst's contents with src, clearing dropped
// pointer entries so pooled tables pin nothing from the abandoned
// timeline.
func clearRestore[T any](dst, src []*T) []*T {
	clear(dst)
	dst = dst[:0]
	return append(dst, src...)
}

// growStates extends dst to n entries, keeping each entry's inner slice
// capacity, and scrubs any unused tail via scrub.
func growStates[S any](dst []S, n int, scrub func(*S)) []S {
	for len(dst) < n {
		var zero S
		dst = append(dst, zero)
	}
	for i := n; i < len(dst); i++ {
		scrub(&dst[i])
	}
	return dst[:n]
}

// streamState is the captured contents of one Stream.
type streamState struct {
	st          *Stream
	id          uint32
	state       StreamState
	sendWindow  int64
	outChunks   [][]byte
	outHead     int
	outOff      int
	outLen      int
	outClosed   bool
	sentBody    int
	pauseAt     int
	resumeOn    []uint32 // sorted keys of the resumeOn set; nil when the map is nil
	hasResume   bool
	headersSent bool
	recvWindow  int64
	recvdBody   int
	isPush      bool
	pushParent  uint32
	user        any
}

func scrubStreamState(ss *streamState) {
	ss.st, ss.user = nil, nil
	clear(ss.outChunks)
	ss.outChunks = ss.outChunks[:0]
	ss.resumeOn = ss.resumeOn[:0]
}

func (st *Stream) snapshot(ss *streamState) {
	ss.st = st
	ss.id, ss.state = st.ID, st.State
	ss.sendWindow = st.sendWindow
	ss.outChunks = append(ss.outChunks[:0], st.outChunks...)
	ss.outHead, ss.outOff, ss.outLen = st.outHead, st.outOff, st.outLen
	ss.outClosed, ss.sentBody, ss.pauseAt = st.outClosed, st.sentBody, st.pauseAt
	ss.hasResume = st.resumeOn != nil
	ss.resumeOn = ss.resumeOn[:0]
	for id, v := range st.resumeOn {
		if v {
			ss.resumeOn = append(ss.resumeOn, id)
		}
	}
	ss.headersSent = st.headersSent
	ss.recvWindow, ss.recvdBody = st.recvWindow, st.recvdBody
	ss.isPush, ss.pushParent = st.IsPush, st.PushParent
	ss.user = st.User
}

func (st *Stream) restore(c *Core, ss *streamState) {
	st.ID, st.core, st.State = ss.id, c, ss.state
	st.sendWindow = ss.sendWindow
	clear(st.outChunks)
	st.outChunks = append(st.outChunks[:0], ss.outChunks...)
	st.outHead, st.outOff, st.outLen = ss.outHead, ss.outOff, ss.outLen
	st.outClosed, st.sentBody, st.pauseAt = ss.outClosed, ss.sentBody, ss.pauseAt
	switch {
	case !ss.hasResume:
		st.resumeOn = nil
	case st.resumeOn == nil:
		st.resumeOn = make(map[uint32]bool, len(ss.resumeOn))
	default:
		clear(st.resumeOn)
	}
	for _, id := range ss.resumeOn {
		st.resumeOn[id] = true
	}
	st.headersSent = ss.headersSent
	st.recvWindow, st.recvdBody = ss.recvWindow, ss.recvdBody
	st.IsPush, st.PushParent = ss.isPush, ss.pushParent
	st.User = ss.user
}

// prioState is the captured contents of one priority-tree node.
type prioState struct {
	n        *prioNode
	id       uint32
	parent   *prioNode
	children []*prioNode
	weight   uint8
	served   int64
	st       *Stream
}

func scrubPrioState(ps *prioState) {
	ps.n, ps.parent, ps.st = nil, nil, nil
	clear(ps.children)
	ps.children = ps.children[:0]
}

func capturePrio(ps *prioState, n *prioNode) {
	ps.n = n
	ps.id, ps.parent = n.id, n.parent
	ps.children = append(ps.children[:0], n.children...)
	ps.weight, ps.served, ps.st = n.weight, n.served, n.st
}

func restorePrio(ps *prioState) {
	n := ps.n
	n.id, n.parent = ps.id, ps.parent
	clear(n.children)
	n.children = append(n.children[:0], ps.children...)
	n.weight, n.served, n.st = ps.weight, ps.served, ps.st
}

// TreeSnapshot is a deep copy of a PriorityTree.
type TreeSnapshot struct {
	odd, even []*prioNode
	count     int
	free      []*prioNode
	root      prioState
	nodes     []prioState
}

// Snapshot copies the tree into dst. Every non-root node lives in one of
// the id-indexed tables (store on create, store(nil) on Remove), so the
// tables enumerate the live set.
func (t *PriorityTree) Snapshot(dst *TreeSnapshot) {
	dst.odd = append(dst.odd[:0], t.oddNodes...)
	dst.even = append(dst.even[:0], t.evenNodes...)
	dst.count = t.count
	dst.free = append(dst.free[:0], t.free...)
	capturePrio(&dst.root, t.root)
	live := 0
	for _, tab := range [2][]*prioNode{t.oddNodes, t.evenNodes} {
		for _, n := range tab {
			if n != nil {
				live++
			}
		}
	}
	dst.nodes = growStates(dst.nodes, live, scrubPrioState)
	i := 0
	for _, tab := range [2][]*prioNode{t.oddNodes, t.evenNodes} {
		for _, n := range tab {
			if n != nil {
				capturePrio(&dst.nodes[i], n)
				i++
			}
		}
	}
}

// Restore rewinds the tree to the captured state, rewriting node structs
// in place and re-scrubbing the free list (a node free at capture may
// have been reused since).
func (t *PriorityTree) Restore(snap *TreeSnapshot) {
	t.oddNodes = clearRestore(t.oddNodes, snap.odd)
	t.evenNodes = clearRestore(t.evenNodes, snap.even)
	t.count = snap.count
	// The root node is allocated once at New and rewritten in place, so
	// this reassigns the same pointer the snapshot captured.
	t.root = snap.root.n
	restorePrio(&snap.root)
	for i := range snap.nodes {
		restorePrio(&snap.nodes[i])
	}
	clear(t.free)
	t.free = t.free[:0]
	for _, n := range snap.free {
		n.parent, n.st = nil, nil
		clear(n.children)
		n.children = n.children[:0]
		n.served = 0
		t.free = append(t.free, n)
	}
}

// contSnap is the captured continuation-reassembly state.
type contSnap struct {
	streamID   uint32
	isPush     bool
	promisedID uint32
	endStream  bool
	hasPrio    bool
	prio       PriorityParam
	buf        []byte
}

// CoreSnapshot is a deep copy of a connection core's run state.
type CoreSnapshot struct {
	henc hpack.EncoderSnapshot
	hdec hpack.DecoderSnapshot

	frMax      int
	frChunks   [][]byte
	frHead     int
	frOff      int
	frBuffered int

	odd, even   []*Stream
	numStreams  int
	all         []streamState
	freeStreams []*Stream

	nextLocalID  uint32
	lastPeerID   uint32
	local, peer  Settings
	settingsRecv bool
	sendWindow   int64
	recvWindow   int64

	tree       TreeSnapshot
	pushAtRoot bool

	ctrl     [][]byte
	ctrlHead int

	started        bool
	goingAway      bool
	prefaceGot     int
	pushWasEnabled bool

	hasCont bool
	cont    contSnap

	framesSent, framesRecvd int64
	dataBytesSent           int64
	pushesSent, pushesRecvd int64
}

// Snapshot copies the core's connection state into dst.
func (c *Core) Snapshot(dst *CoreSnapshot) {
	c.henc.Snapshot(&dst.henc)
	c.hdec.Snapshot(&dst.hdec)

	dst.frMax = c.fr.MaxFrameSize
	dst.frChunks = append(dst.frChunks[:0], c.fr.chunks...)
	dst.frHead, dst.frOff, dst.frBuffered = c.fr.head, c.fr.off, c.fr.buffered

	dst.odd = append(dst.odd[:0], c.oddStreams...)
	dst.even = append(dst.even[:0], c.evenStreams...)
	dst.numStreams = c.numStreams
	dst.all = growStates(dst.all, len(c.allStreams), scrubStreamState)
	for i, st := range c.allStreams {
		st.snapshot(&dst.all[i])
	}
	dst.freeStreams = append(dst.freeStreams[:0], c.freeStreams...)

	dst.nextLocalID, dst.lastPeerID = c.nextLocalID, c.lastPeerID
	dst.local, dst.peer = c.local, c.peer
	dst.settingsRecv = c.settingsRecv
	dst.sendWindow, dst.recvWindow = c.sendWindow, c.recvWindow

	c.Tree.Snapshot(&dst.tree)
	dst.pushAtRoot = c.PushAtRoot

	dst.ctrl = append(dst.ctrl[:0], c.ctrl...)
	dst.ctrlHead = c.ctrlHead

	dst.started, dst.goingAway, dst.prefaceGot = c.started, c.goingAway, c.prefaceGot
	dst.pushWasEnabled = c.pushWasEnabled

	dst.hasCont = c.cont != nil
	if cs := c.cont; cs != nil {
		dst.cont.streamID, dst.cont.isPush = cs.streamID, cs.isPush
		dst.cont.promisedID, dst.cont.endStream = cs.promisedID, cs.endStream
		dst.cont.hasPrio = cs.prio != nil
		if cs.prio != nil {
			dst.cont.prio = *cs.prio
		}
		dst.cont.buf = append(dst.cont.buf[:0], cs.buf...)
	} else {
		dst.cont = contSnap{buf: dst.cont.buf[:0]}
	}

	dst.framesSent, dst.framesRecvd = c.FramesSent, c.FramesRecvd
	dst.dataBytesSent = c.DataBytesSent
	dst.pushesSent, dst.pushesRecvd = c.PushesSent, c.PushesRecvd
}

// Restore rewinds the core to the captured state. Stream structs are
// rewritten in place; streams created after the snapshot are dropped for
// the garbage collector, and the free list is rebuilt from the snapshot
// with a fresh scrub (a stream free at capture may have been reused
// since).
func (c *Core) Restore(snap *CoreSnapshot) {
	c.henc.Restore(&snap.henc)
	c.hdec.Restore(&snap.hdec)

	c.fr.MaxFrameSize = snap.frMax
	clear(c.fr.chunks)
	c.fr.chunks = append(c.fr.chunks[:0], snap.frChunks...)
	c.fr.head, c.fr.off, c.fr.buffered = snap.frHead, snap.frOff, snap.frBuffered

	c.oddStreams = clearRestore(c.oddStreams, snap.odd)
	c.evenStreams = clearRestore(c.evenStreams, snap.even)
	c.numStreams = snap.numStreams
	clear(c.allStreams)
	c.allStreams = c.allStreams[:0]
	for i := range snap.all {
		ss := &snap.all[i]
		ss.st.restore(c, ss)
		c.allStreams = append(c.allStreams, ss.st)
	}
	clear(c.freeStreams)
	c.freeStreams = c.freeStreams[:0]
	for _, st := range snap.freeStreams {
		clear(st.outChunks)
		*st = Stream{outChunks: st.outChunks[:0]}
		c.freeStreams = append(c.freeStreams, st)
	}

	c.nextLocalID, c.lastPeerID = snap.nextLocalID, snap.lastPeerID
	c.local, c.peer = snap.local, snap.peer
	c.settingsRecv = snap.settingsRecv
	c.sendWindow, c.recvWindow = snap.sendWindow, snap.recvWindow

	c.Tree.Restore(&snap.tree)
	c.PushAtRoot = snap.pushAtRoot

	clear(c.ctrl)
	c.ctrl = append(c.ctrl[:0], snap.ctrl...)
	c.ctrlHead = snap.ctrlHead

	c.started, c.goingAway, c.prefaceGot = snap.started, snap.goingAway, snap.prefaceGot
	c.pushWasEnabled = snap.pushWasEnabled

	if !snap.hasCont {
		c.cont = nil
	} else {
		if c.cont == nil {
			c.cont = &contState{}
		}
		cs := c.cont
		cs.streamID, cs.isPush = snap.cont.streamID, snap.cont.isPush
		cs.promisedID, cs.endStream = snap.cont.promisedID, snap.cont.endStream
		if snap.cont.hasPrio {
			p := snap.cont.prio
			cs.prio = &p
		} else {
			cs.prio = nil
		}
		cs.buf = append(cs.buf[:0], snap.cont.buf...)
	}

	c.FramesSent, c.FramesRecvd = snap.framesSent, snap.framesRecvd
	c.DataBytesSent = snap.dataBytesSent
	c.PushesSent, c.PushesRecvd = snap.pushesSent, snap.pushesRecvd
}

// clientStreamState is the captured contents of one ClientStream.
type clientStreamState struct {
	cs         *ClientStream
	st         *Stream
	req        Request
	pushed     bool
	onResponse func(resp Response)
	onData     func(chunk []byte)
	onComplete func(totalBody int)
	onFailed   func(code ErrCode)
	resp       Response
	gotResp    bool
	bodyLen    int
	complete   bool
	failed     bool
}

func scrubClientStreamState(s *clientStreamState) {
	*s = clientStreamState{}
}

// ClientSnapshot is a deep copy of a Client's connection state.
type ClientSnapshot struct {
	core        CoreSnapshot
	onPush      func(parent, promised *ClientStream) bool
	onGoAway    func(cl *Client, lastStreamID uint32)
	onConnError func(cl *Client, err ConnError)
	issued      []clientStreamState
	free        []*ClientStream
}

// Snapshot copies the client's connection state into dst.
func (c *Client) Snapshot(dst *ClientSnapshot) {
	c.Core.Snapshot(&dst.core)
	dst.onPush = c.OnPush
	dst.onGoAway, dst.onConnError = c.OnGoAway, c.OnConnError
	dst.issued = growStates(dst.issued, len(c.issued), scrubClientStreamState)
	for i, cs := range c.issued {
		s := &dst.issued[i]
		s.cs, s.st, s.req, s.pushed = cs, cs.St, cs.Req, cs.Pushed
		s.onResponse, s.onData, s.onComplete = cs.OnResponse, cs.OnData, cs.OnComplete
		s.onFailed = cs.OnFailed
		s.resp, s.gotResp = cs.resp, cs.gotResp
		s.bodyLen, s.complete, s.failed = cs.bodyLen, cs.complete, cs.failed
	}
	dst.free = append(dst.free[:0], c.free...)
}

// Restore rewinds the client to the captured state.
func (c *Client) Restore(snap *ClientSnapshot) {
	c.Core.Restore(&snap.core)
	c.OnPush = snap.onPush
	c.OnGoAway, c.OnConnError = snap.onGoAway, snap.onConnError
	clear(c.issued)
	c.issued = c.issued[:0]
	for i := range snap.issued {
		s := &snap.issued[i]
		cs := s.cs
		cs.Client, cs.St, cs.Req, cs.Pushed = c, s.st, s.req, s.pushed
		cs.OnResponse, cs.OnData, cs.OnComplete = s.onResponse, s.onData, s.onComplete
		cs.OnFailed = s.onFailed
		cs.resp, cs.gotResp = s.resp, s.gotResp
		cs.bodyLen, cs.complete, cs.failed = s.bodyLen, s.complete, s.failed
		c.issued = append(c.issued, cs)
	}
	clear(c.free)
	c.free = c.free[:0]
	for _, cs := range snap.free {
		*cs = ClientStream{}
		c.free = append(c.free, cs)
	}
}

// serverStreamState is the captured contents of one ServerStream.
type serverStreamState struct {
	sw  *ServerStream
	st  *Stream
	req Request
}

func scrubServerStreamState(s *serverStreamState) {
	*s = serverStreamState{}
}

// ServerSnapshot is a deep copy of a Server's connection state.
type ServerSnapshot struct {
	core    CoreSnapshot
	handler func(sw *ServerStream, req Request)
	issued  []serverStreamState
	free    []*ServerStream
}

// Snapshot copies the server's connection state into dst.
func (s *Server) Snapshot(dst *ServerSnapshot) {
	s.Core.Snapshot(&dst.core)
	dst.handler = s.Handler
	dst.issued = growStates(dst.issued, len(s.issued), scrubServerStreamState)
	for i, sw := range s.issued {
		dst.issued[i] = serverStreamState{sw: sw, st: sw.St, req: sw.Req}
	}
	dst.free = append(dst.free[:0], s.free...)
}

// Restore rewinds the server to the captured state.
func (s *Server) Restore(snap *ServerSnapshot) {
	s.Core.Restore(&snap.core)
	s.Handler = snap.handler
	clear(s.issued)
	s.issued = s.issued[:0]
	for i := range snap.issued {
		st := &snap.issued[i]
		sw := st.sw
		sw.Server, sw.St, sw.Req = s, st.st, st.req
		s.issued = append(s.issued, sw)
	}
	clear(s.free)
	s.free = s.free[:0]
	for _, sw := range snap.free {
		*sw = ServerStream{}
		s.free = append(s.free, sw)
	}
}

// EndpointSnapshot captures a SimEndpoint's attachment (which core and
// which transport end). The chunk pool and the cached method closures
// are scratch/stable and not captured.
type EndpointSnapshot struct {
	core *Core
	end  *netem.End
}

// Snapshot copies the endpoint's attachment into dst.
func (ep *SimEndpoint) Snapshot(dst *EndpointSnapshot) {
	dst.core, dst.end = ep.Core, ep.End
}

// Restore rewinds the endpoint's attachment. The transport end's
// callbacks (receiver, drain) are restored by the netem snapshot; the
// core's OnWritable is stable (bound to this endpoint's pump).
func (ep *SimEndpoint) Restore(snap *EndpointSnapshot) {
	ep.Core, ep.End = snap.core, snap.end
}
