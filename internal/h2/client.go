package h2

import (
	"strconv"

	"repro/internal/hpack"
)

// Response is the client's view of response headers.
type Response struct {
	Status int
	Header []hpack.HeaderField
}

// ClientStream is the client's handle on one request or pushed stream.
type ClientStream struct {
	Client *Client
	St     *Stream
	Req    Request
	// Pushed is true for server-initiated streams.
	Pushed bool

	// Callbacks; all optional. OnData receives each body chunk. OnComplete
	// fires when the response (headers+body) finished, with the total
	// body length. OnFailed fires instead of OnComplete when the peer
	// resets the stream (RST_STREAM) before it completes; a stream fails
	// or finishes, never both.
	OnResponse func(resp Response)
	OnData     func(chunk []byte)
	OnComplete func(totalBody int)
	OnFailed   func(code ErrCode)

	resp     Response
	gotResp  bool
	bodyLen  int
	complete bool
	failed   bool
}

// BodyLen returns body bytes received so far.
func (cs *ClientStream) BodyLen() int { return cs.bodyLen }

// Completed reports whether the response has fully arrived.
func (cs *ClientStream) Completed() bool { return cs.complete }

// Cancel resets the stream (e.g. rejecting an unwanted push).
func (cs *ClientStream) Cancel() { cs.St.Reset(ErrCodeCancel) }

// Failed reports whether the peer reset the stream before completion.
func (cs *ClientStream) Failed() bool { return cs.failed }

func (cs *ClientStream) fail(code ErrCode) {
	if cs.complete || cs.failed {
		return
	}
	cs.failed = true
	if cs.OnFailed != nil {
		cs.OnFailed(code)
	}
}

// Client wraps a client-side Core with request and push-handling helpers.
//
//repolint:pooled
type Client struct {
	Core *Core
	// OnPush decides whether to accept a pushed stream; returning false
	// cancels it with RST_STREAM(CANCEL). When accepting, the callback
	// may install OnResponse/OnData/OnComplete on the promised stream.
	// A nil OnPush accepts all pushes.
	OnPush func(parent *ClientStream, promised *ClientStream) (accept bool)
	// OnGoAway fires when the peer sends GOAWAY: streams above
	// lastStreamID were not and will not be processed. OnConnError fires
	// when the connection dies on a protocol violation. Both are cleared
	// by Reset, like OnPush.
	OnGoAway    func(cl *Client, lastStreamID uint32)
	OnConnError func(cl *Client, err ConnError)

	// issued/free recycle ClientStream wrappers across connections on a
	// pooled client (see Reset).
	issued []*ClientStream
	free   []*ClientStream
}

// NewClient builds a client connection with the given local settings.
// Setting local.EnablePush=false reproduces the paper's "no push"
// baseline: the server is told not to push at connection startup.
func NewClient(local Settings) *Client {
	c := &Client{Core: NewCore(false, local)}
	c.Core.OnHeaders = func(st *Stream, fields []hpack.HeaderField, endStream bool) {
		cs, _ := st.User.(*ClientStream)
		if cs == nil {
			return
		}
		status := 0
		var hdr []hpack.HeaderField
		// The non-pseudo header list is materialized only for callers that
		// installed OnResponse; the testbed's loader never does, so the
		// hot path parses :status and allocates nothing.
		collect := cs.OnResponse != nil
		for _, f := range fields {
			if f.Name == ":status" {
				status, _ = strconv.Atoi(f.Value)
			} else if collect {
				hdr = append(hdr, f)
			}
		}
		cs.resp = Response{Status: status, Header: hdr}
		cs.gotResp = true
		if cs.OnResponse != nil {
			cs.OnResponse(cs.resp)
		}
		if endStream {
			cs.finish()
		}
	}
	c.Core.OnData = func(st *Stream, data []byte, endStream bool) {
		cs, _ := st.User.(*ClientStream)
		if cs == nil {
			return
		}
		cs.bodyLen += len(data)
		if cs.OnData != nil {
			cs.OnData(data)
		}
		if endStream {
			cs.finish()
		}
	}
	c.Core.OnPushPromise = clientOnPushPromise(c)
	c.Core.OnRST = func(st *Stream, code ErrCode) {
		if cs, _ := st.User.(*ClientStream); cs != nil {
			cs.fail(code)
		}
	}
	c.Core.OnGoAway = func(f *GoAwayFrame) {
		if c.OnGoAway != nil {
			c.OnGoAway(c, f.LastStreamID)
		}
	}
	c.Core.OnConnError = func(err ConnError) {
		if c.OnConnError != nil {
			c.OnConnError(c, err)
		}
	}
	return c
}

func clientOnPushPromise(c *Client) func(parent, promised *Stream, fields []hpack.HeaderField) {
	return func(parent, promised *Stream, fields []hpack.HeaderField) {
		pcs, _ := parent.User.(*ClientStream)
		req, err := ParseRequest(fields)
		if err != nil {
			promised.Reset(ErrCodeProtocol)
			return
		}
		cs := c.newClientStream(promised, req)
		cs.Pushed = true
		promised.User = cs
		if c.OnPush != nil && !c.OnPush(pcs, cs) {
			cs.Cancel()
		}
	}
}

// Reset re-arms a pooled client for a fresh connection: the core, its
// codec state and every wrapper struct are recycled; the callbacks
// installed by NewClient are kept, OnPush is cleared.
func (c *Client) Reset(local Settings) {
	c.Core.Reset(local)
	c.OnPush, c.OnGoAway, c.OnConnError = nil, nil, nil
	for _, cs := range c.issued {
		*cs = ClientStream{}
		c.free = append(c.free, cs)
	}
	c.issued = c.issued[:0]
}

func (c *Client) newClientStream(st *Stream, req Request) *ClientStream {
	var cs *ClientStream
	if n := len(c.free); n > 0 {
		cs = c.free[n-1]
		c.free[n-1] = nil
		c.free = c.free[:n-1]
	} else {
		cs = &ClientStream{}
	}
	*cs = ClientStream{Client: c, St: st, Req: req}
	c.issued = append(c.issued, cs)
	return cs
}

func (cs *ClientStream) finish() {
	if cs.complete {
		return
	}
	cs.complete = true
	if cs.OnComplete != nil {
		cs.OnComplete(cs.bodyLen)
	}
}

// RequestOpts configures a client request.
type RequestOpts struct {
	// Priority, when non-nil, is sent with the HEADERS frame and shapes
	// the server's scheduling (Chromium builds exclusive chains here).
	Priority   *PriorityParam
	OnResponse func(resp Response)
	OnData     func(chunk []byte)
	OnComplete func(totalBody int)

	// Fields, when non-nil, is the prepare-time pre-built header list for
	// req (must equal req.Fields()); Pre is the matching pre-encoded
	// block, used when it lines up with the connection's encoder state.
	Fields []hpack.HeaderField
	Pre    *hpack.PreEncoded
}

// Request issues a GET-style request (no body).
func (c *Client) Request(req Request, opts RequestOpts) *ClientStream {
	fields := opts.Fields
	if fields == nil {
		fields = req.Fields()
	}
	st := c.Core.StartRequestPre(fields, opts.Pre, opts.Priority)
	cs := c.newClientStream(st, req)
	cs.OnResponse = opts.OnResponse
	cs.OnData = opts.OnData
	cs.OnComplete = opts.OnComplete
	st.User = cs
	return cs
}
