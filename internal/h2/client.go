package h2

import (
	"strconv"

	"repro/internal/hpack"
)

// Response is the client's view of response headers.
type Response struct {
	Status int
	Header []hpack.HeaderField
}

// ClientStream is the client's handle on one request or pushed stream.
type ClientStream struct {
	Client *Client
	St     *Stream
	Req    Request
	// Pushed is true for server-initiated streams.
	Pushed bool

	// Callbacks; all optional. OnData receives each body chunk. OnComplete
	// fires when the response (headers+body) finished, with the total
	// body length.
	OnResponse func(resp Response)
	OnData     func(chunk []byte)
	OnComplete func(totalBody int)

	resp     Response
	gotResp  bool
	bodyLen  int
	complete bool
}

// BodyLen returns body bytes received so far.
func (cs *ClientStream) BodyLen() int { return cs.bodyLen }

// Completed reports whether the response has fully arrived.
func (cs *ClientStream) Completed() bool { return cs.complete }

// Cancel resets the stream (e.g. rejecting an unwanted push).
func (cs *ClientStream) Cancel() { cs.St.Reset(ErrCodeCancel) }

// Client wraps a client-side Core with request and push-handling helpers.
type Client struct {
	Core *Core
	// OnPush decides whether to accept a pushed stream; returning false
	// cancels it with RST_STREAM(CANCEL). When accepting, the callback
	// may install OnResponse/OnData/OnComplete on the promised stream.
	// A nil OnPush accepts all pushes.
	OnPush func(parent *ClientStream, promised *ClientStream) (accept bool)
}

// NewClient builds a client connection with the given local settings.
// Setting local.EnablePush=false reproduces the paper's "no push"
// baseline: the server is told not to push at connection startup.
func NewClient(local Settings) *Client {
	c := &Client{Core: NewCore(false, local)}
	c.Core.OnHeaders = func(st *Stream, fields []hpack.HeaderField, endStream bool) {
		cs, _ := st.User.(*ClientStream)
		if cs == nil {
			return
		}
		status := 0
		var hdr []hpack.HeaderField
		for _, f := range fields {
			if f.Name == ":status" {
				status, _ = strconv.Atoi(f.Value)
			} else {
				hdr = append(hdr, f)
			}
		}
		cs.resp = Response{Status: status, Header: hdr}
		cs.gotResp = true
		if cs.OnResponse != nil {
			cs.OnResponse(cs.resp)
		}
		if endStream {
			cs.finish()
		}
	}
	c.Core.OnData = func(st *Stream, data []byte, endStream bool) {
		cs, _ := st.User.(*ClientStream)
		if cs == nil {
			return
		}
		cs.bodyLen += len(data)
		if cs.OnData != nil {
			cs.OnData(data)
		}
		if endStream {
			cs.finish()
		}
	}
	c.Core.OnPushPromise = func(parent, promised *Stream, fields []hpack.HeaderField) {
		pcs, _ := parent.User.(*ClientStream)
		req, err := ParseRequest(fields)
		if err != nil {
			promised.Reset(ErrCodeProtocol)
			return
		}
		cs := &ClientStream{Client: c, St: promised, Req: req, Pushed: true}
		promised.User = cs
		if c.OnPush != nil && !c.OnPush(pcs, cs) {
			cs.Cancel()
		}
	}
	return c
}

func (cs *ClientStream) finish() {
	if cs.complete {
		return
	}
	cs.complete = true
	if cs.OnComplete != nil {
		cs.OnComplete(cs.bodyLen)
	}
}

// RequestOpts configures a client request.
type RequestOpts struct {
	// Priority, when non-nil, is sent with the HEADERS frame and shapes
	// the server's scheduling (Chromium builds exclusive chains here).
	Priority   *PriorityParam
	OnResponse func(resp Response)
	OnData     func(chunk []byte)
	OnComplete func(totalBody int)
}

// Request issues a GET-style request (no body).
func (c *Client) Request(req Request, opts RequestOpts) *ClientStream {
	st := c.Core.StartRequest(req.Fields(), opts.Priority)
	cs := &ClientStream{
		Client:     c,
		St:         st,
		Req:        req,
		OnResponse: opts.OnResponse,
		OnData:     opts.OnData,
		OnComplete: opts.OnComplete,
	}
	st.User = cs
	return cs
}
