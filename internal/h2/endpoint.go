package h2

import "repro/internal/netem"

// SimEndpoint drives a Core over a netem.End inside the discrete-event
// simulator. Outgoing frames are produced lazily: a frame is pulled from
// the scheduler only when the transport's send buffer has drained into
// the congestion window, which gives the stream scheduler frame-granular
// control over ordering — the property the interleaving scheduler relies
// on (and how h2o behaves with small write buffers).
//
// The endpoint is the zero-copy junction between the two layers: each
// frame is handed to the transport as a header slice plus payload
// subslices via AppendWrite/WriteV, and received segment slices are fed
// straight into Core.Recv, so body bytes cross the simulated network
// without being copied at either side.
type SimEndpoint struct {
	Core *Core
	End  *netem.End

	// pool recycles frame chunk containers. pump is reentrant — popping a
	// stream's final frame can wake the scheduler, and the nested pump
	// writes the frames it pops before the outer frame is handed to the
	// transport — so each nesting depth borrows its own container.
	pool [][][]byte

	// Cached method-value closures, built once per endpoint so pooled
	// endpoints re-attach to a fresh transport without allocating.
	recvFn func([]byte)
	pumpFn func()
}

// AttachSim wires core to a netem endpoint and starts the connection.
func AttachSim(core *Core, end *netem.End) *SimEndpoint {
	ep := &SimEndpoint{}
	ep.Attach(core, end)
	return ep
}

// Attach (re-)wires a pooled endpoint to core over a fresh transport end
// and starts the connection. The core must be Reset (or new) and the
// previous transport fully torn down.
func (ep *SimEndpoint) Attach(core *Core, end *netem.End) {
	if ep.Core != core || ep.recvFn == nil {
		ep.recvFn = core.Recv
		ep.pumpFn = ep.pump
	}
	ep.Core, ep.End = core, end
	end.SetReceiver(ep.recvFn)
	core.OnWritable = ep.pumpFn
	end.SetOnDrain(ep.pumpFn)
	core.Start()
	ep.pump()
}

//repolint:hotpath
func (ep *SimEndpoint) pump() {
	// Refill while the transport accepted everything so far; stop as soon
	// as bytes sit in the app buffer (the congestion window is full).
	for ep.End.Buffered() == 0 {
		chunks := ep.getChunks()
		chunks = ep.Core.AppendWrite(chunks, 0)
		if len(chunks) == 0 {
			ep.putChunks(chunks)
			return
		}
		ep.End.WriteV(chunks)
		ep.putChunks(chunks)
	}
}

//repolint:hotpath
func (ep *SimEndpoint) getChunks() [][]byte {
	if n := len(ep.pool); n > 0 {
		c := ep.pool[n-1]
		ep.pool[n-1] = nil
		ep.pool = ep.pool[:n-1]
		return c
	}
	return nil
}

// putChunks returns a container to the pool. WriteV copied the slice
// headers into the transport's queue, so dropping our references here
// leaves the queued bytes untouched.
//
//repolint:owns the container itself is recycled; its byte slices were already handed off
//repolint:hotpath
func (ep *SimEndpoint) putChunks(c [][]byte) {
	for i := range c {
		c[i] = nil
	}
	ep.pool = append(ep.pool, c[:0])
}
