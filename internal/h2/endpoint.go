package h2

import "repro/internal/netem"

// SimEndpoint drives a Core over a netem.End inside the discrete-event
// simulator. Outgoing frames are produced lazily: a frame is pulled from
// the scheduler only when the transport's send buffer has drained into
// the congestion window, which gives the stream scheduler frame-granular
// control over ordering — the property the interleaving scheduler relies
// on (and how h2o behaves with small write buffers).
type SimEndpoint struct {
	Core *Core
	End  *netem.End
}

// AttachSim wires core to a netem endpoint and starts the connection.
func AttachSim(core *Core, end *netem.End) *SimEndpoint {
	ep := &SimEndpoint{Core: core, End: end}
	end.SetReceiver(core.Recv)
	core.OnWritable = ep.pump
	end.SetOnDrain(ep.pump)
	core.Start()
	ep.pump()
	return ep
}

func (ep *SimEndpoint) pump() {
	// Refill while the transport accepted everything so far; stop as soon
	// as bytes sit in the app buffer (the congestion window is full).
	for ep.End.Buffered() == 0 {
		b := ep.Core.PopWrite(0)
		if b == nil {
			return
		}
		ep.End.Write(b)
	}
}
