package h2

import "testing"

// FuzzFrameReader feeds arbitrary transport bytes through the
// incremental frame decoder. The reader faces peer-controlled input, so
// the invariant is the surfaced-error contract: malformed wire bytes
// produce a ConnError from Next, never a panic, and every successful
// Next makes progress (consumes at least a frame header) so a feed of N
// bytes can never decode more than N/frameHeaderLen+1 frames.
//
// The corpus seeds are real encodings produced by AppendFrame — every
// frame type the codec emits, alone and concatenated — so mutations
// start from wire-valid shapes and explore the boundaries (truncated
// headers, oversized lengths, bogus types, flag/padding combinations).
func FuzzFrameReader(f *testing.F) {
	frames := []Frame{
		&DataFrame{StreamID: 1, Data: []byte("hello fuzz"), EndStream: true},
		&HeadersFrame{StreamID: 5, Block: []byte{0x82, 0x86, 0x84}, EndHeaders: true,
			HasPriority: true, Priority: PriorityParam{ParentID: 3, Exclusive: true, Weight: 219}},
		&PriorityFrame{StreamID: 9, Priority: PriorityParam{ParentID: 7, Weight: 15}},
		&RSTStreamFrame{StreamID: 2, Code: ErrCodeRefusedStream},
		&SettingsFrame{Params: []Setting{{SettingEnablePush, 0}, {SettingInitialWindowSize, 1 << 20}}},
		&SettingsFrame{Ack: true},
		&PushPromiseFrame{StreamID: 1, PromisedID: 2, Block: []byte{0x82, 0x84}, EndHeaders: true},
		&PingFrame{Data: [8]byte{1, 2, 3, 4, 5, 6, 7, 8}},
		&GoAwayFrame{LastStreamID: 9, Code: ErrCodeProtocol, Debug: []byte("bye")},
		&WindowUpdateFrame{StreamID: 3, Increment: 65535},
		&ContinuationFrame{StreamID: 5, Block: []byte{0x01, 0x02}, EndHeaders: true},
	}
	var all []byte
	for _, fr := range frames {
		f.Add(AppendFrame(nil, fr))
		all = AppendFrame(all, fr)
	}
	f.Add(all)
	f.Add(all[:len(all)-3]) // truncated tail frame
	f.Add([]byte{0xff, 0xff, 0xff, 0x00, 0x00, 0x00, 0x00, 0x00, 0x01})

	f.Fuzz(func(t *testing.T, data []byte) {
		var r FrameReader
		// Feed in two chunks split at a data-derived point so payloads
		// regularly span chunks and exercise the scratch-reassembly path.
		split := 0
		if len(data) > 1 {
			split = int(data[0]) % len(data)
		}
		r.Feed(data[:split])
		r.Feed(data[split:])
		maxFrames := len(data)/frameHeaderLen + 1
		for i := 0; ; i++ {
			fr, err := r.Next()
			if err != nil {
				return // surfaced error is the contract; panics are the bug
			}
			if fr == nil {
				return
			}
			if i > maxFrames {
				t.Fatalf("decoded more than %d frames from %d bytes: no progress", maxFrames, len(data))
			}
		}
	})
}
