package h2

// PriorityTree implements the RFC 7540 Section 5.3 stream dependency tree
// together with the weighted scheduling walk the server uses to pick the
// next stream to send DATA for.
//
// Scheduling semantics (matching h2o's default lexicographic scheduler):
// a node's own stream is served while it can make progress; its children
// only receive bandwidth when the node itself cannot send. Siblings whose
// subtrees can send share bandwidth in proportion to their weights via a
// served-bytes/weight virtual-time rule. This is exactly why, by default,
// a pushed stream (a child of the stream that triggered the push) is
// starved until its parent response has finished — Fig. 5(a) of the paper.
type PriorityTree struct {
	nodes map[uint32]*prioNode
	root  *prioNode
}

type prioNode struct {
	id       uint32
	parent   *prioNode
	children []*prioNode
	weight   uint8 // wire value; effective weight is weight+1
	served   int64 // bytes charged at this level for sibling fairness
	st       *Stream
}

// DefaultWeight is the wire default (effective weight 16).
const DefaultWeight = 15

// NewPriorityTree returns a tree containing only the root (stream 0).
func NewPriorityTree() *PriorityTree {
	root := &prioNode{id: 0, weight: DefaultWeight}
	return &PriorityTree{
		nodes: map[uint32]*prioNode{0: root},
		root:  root,
	}
}

func (t *PriorityTree) node(id uint32) *prioNode {
	if n, ok := t.nodes[id]; ok {
		return n
	}
	// Priority frames may reference streams we have not seen yet (idle
	// placeholders); create them under the root, per RFC 7540 5.3.4.
	n := &prioNode{id: id, weight: DefaultWeight, parent: t.root}
	t.root.children = append(t.root.children, n)
	t.nodes[id] = n
	return n
}

// Bind associates a stream object with its tree node, creating the node
// with default priority when necessary.
func (t *PriorityTree) Bind(st *Stream) {
	t.node(st.ID).st = st
}

// Update applies a dependency change (from HEADERS priority or a PRIORITY
// frame) with full RFC 7540 Section 5.3.3 semantics, including moving the
// new parent when it is a descendant of the reprioritized stream, and the
// exclusive flag.
func (t *PriorityTree) Update(id uint32, p PriorityParam) {
	if p.ParentID == id {
		// Self-dependency is a protocol error handled by the caller;
		// ignore defensively here.
		return
	}
	n := t.node(id)
	parent := t.node(p.ParentID)
	// If the new parent is a descendant of n, first move it up to n's
	// current parent (retaining its weight).
	if t.isDescendant(parent, n) {
		t.detach(parent)
		t.attach(parent, n.parent)
	}
	t.detach(n)
	if p.Exclusive {
		// n adopts all of parent's current children.
		for _, c := range parent.children {
			c.parent = n
			n.children = append(n.children, c)
		}
		parent.children = nil
	}
	n.weight = p.Weight
	t.attach(n, parent)
}

func (t *PriorityTree) isDescendant(n, ancestor *prioNode) bool {
	for p := n.parent; p != nil; p = p.parent {
		if p == ancestor {
			return true
		}
	}
	return false
}

func (t *PriorityTree) detach(n *prioNode) {
	p := n.parent
	if p == nil {
		return
	}
	for i, c := range p.children {
		if c == n {
			p.children = append(p.children[:i], p.children[i+1:]...)
			break
		}
	}
	n.parent = nil
}

func (t *PriorityTree) attach(n, parent *prioNode) {
	n.parent = parent
	parent.children = append(parent.children, n)
}

// Remove closes a stream's node; its children are reparented to the
// grandparent (RFC 7540 5.3.4, weight redistribution simplified).
func (t *PriorityTree) Remove(id uint32) {
	n, ok := t.nodes[id]
	if !ok || n == t.root {
		return
	}
	parent := n.parent
	t.detach(n)
	for _, c := range n.children {
		c.parent = parent
		parent.children = append(parent.children, c)
	}
	n.children = nil
	n.st = nil
	delete(t.nodes, id)
}

// Next walks the tree and returns the stream to serve next: the shallowest
// sendable stream, with weighted fairness among sibling subtrees. It
// returns nil when nothing is sendable.
func (t *PriorityTree) Next(sendable func(*Stream) bool) *Stream {
	return t.next(t.root, sendable)
}

func (t *PriorityTree) next(n *prioNode, sendable func(*Stream) bool) *Stream {
	if n.st != nil && sendable(n.st) {
		return n.st
	}
	var best *prioNode
	var bestKey float64
	for _, c := range n.children {
		if !t.subtreeSendable(c, sendable) {
			continue
		}
		key := float64(c.served+1) / float64(int(c.weight)+1)
		if best == nil || key < bestKey || (key == bestKey && c.id < best.id) {
			best, bestKey = c, key
		}
	}
	if best == nil {
		return nil
	}
	return t.next(best, sendable)
}

func (t *PriorityTree) subtreeSendable(n *prioNode, sendable func(*Stream) bool) bool {
	if n.st != nil && sendable(n.st) {
		return true
	}
	for _, c := range n.children {
		if t.subtreeSendable(c, sendable) {
			return true
		}
	}
	return false
}

// Charge accounts n bytes served on the stream, at every ancestor level,
// so sibling fairness holds throughout the tree.
func (t *PriorityTree) Charge(id uint32, n int) {
	nd, ok := t.nodes[id]
	if !ok {
		return
	}
	for ; nd != nil && nd != t.root; nd = nd.parent {
		nd.served += int64(n)
	}
}

// Len reports the number of known streams (excluding the root).
func (t *PriorityTree) Len() int { return len(t.nodes) - 1 }
