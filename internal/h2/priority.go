package h2

// PriorityTree implements the RFC 7540 Section 5.3 stream dependency tree
// together with the weighted scheduling walk the server uses to pick the
// next stream to send DATA for.
//
// Scheduling semantics (matching h2o's default lexicographic scheduler):
// a node's own stream is served while it can make progress; its children
// only receive bandwidth when the node itself cannot send. Siblings whose
// subtrees can send share bandwidth in proportion to their weights via a
// served-bytes/weight virtual-time rule. This is exactly why, by default,
// a pushed stream (a child of the stream that triggered the push) is
// starved until its parent response has finished — Fig. 5(a) of the paper.
// The node table is keyed by the same per-connection dense stream index
// as Core's stream tables ((id-1)/2 for odd IDs, id/2-1 for even), so
// the per-frame node lookup is a slice index instead of a map probe, and
// removed nodes are recycled through a free list.
//
//repolint:pooled
type PriorityTree struct {
	oddNodes  []*prioNode
	evenNodes []*prioNode
	count     int
	free      []*prioNode
	root      *prioNode
}

type prioNode struct {
	id       uint32
	parent   *prioNode
	children []*prioNode
	weight   uint8 // wire value; effective weight is weight+1
	served   int64 // bytes charged at this level for sibling fairness
	st       *Stream
}

// DefaultWeight is the wire default (effective weight 16).
const DefaultWeight = 15

// NewPriorityTree returns a tree containing only the root (stream 0).
func NewPriorityTree() *PriorityTree {
	return &PriorityTree{root: &prioNode{id: 0, weight: DefaultWeight}}
}

// Reset empties the tree back to its post-NewPriorityTree state, keeping
// the node storage and free list for the next connection on a pooled
// core.
func (t *PriorityTree) Reset() {
	clearNodes := func(tab []*prioNode) {
		for i, n := range tab {
			if n != nil {
				t.recycle(n)
				tab[i] = nil
			}
		}
	}
	clearNodes(t.oddNodes)
	clearNodes(t.evenNodes)
	t.oddNodes, t.evenNodes = t.oddNodes[:0], t.evenNodes[:0]
	t.count = 0
	t.root.children = t.root.children[:0]
	t.root.served = 0
}

func (t *PriorityTree) recycle(n *prioNode) {
	n.parent, n.st = nil, nil
	n.children = n.children[:0]
	n.served = 0
	t.free = append(t.free, n)
}

// lookup returns the node for id without creating it; nil when unknown.
func (t *PriorityTree) lookup(id uint32) *prioNode {
	if id == 0 {
		return t.root
	}
	if id%2 == 1 {
		if i := int(id-1) / 2; i < len(t.oddNodes) {
			return t.oddNodes[i]
		}
		return nil
	}
	if i := int(id)/2 - 1; i < len(t.evenNodes) {
		return t.evenNodes[i]
	}
	return nil
}

func (t *PriorityTree) store(id uint32, n *prioNode) {
	tab := &t.evenNodes
	i := int(id)/2 - 1
	if id%2 == 1 {
		tab = &t.oddNodes
		i = int(id-1) / 2
	}
	for len(*tab) <= i {
		*tab = append(*tab, nil)
	}
	(*tab)[i] = n
}

func (t *PriorityTree) node(id uint32) *prioNode {
	if n := t.lookup(id); n != nil {
		return n
	}
	// Priority frames may reference streams we have not seen yet (idle
	// placeholders); create them under the root, per RFC 7540 5.3.4.
	var n *prioNode
	if k := len(t.free); k > 0 {
		n = t.free[k-1]
		t.free[k-1] = nil
		t.free = t.free[:k-1]
	} else {
		n = &prioNode{}
	}
	n.id, n.weight, n.parent = id, DefaultWeight, t.root
	t.root.children = append(t.root.children, n)
	t.store(id, n)
	t.count++
	return n
}

// Bind associates a stream object with its tree node, creating the node
// with default priority when necessary.
func (t *PriorityTree) Bind(st *Stream) {
	t.node(st.ID).st = st
}

// Update applies a dependency change (from HEADERS priority or a PRIORITY
// frame) with full RFC 7540 Section 5.3.3 semantics, including moving the
// new parent when it is a descendant of the reprioritized stream, and the
// exclusive flag.
func (t *PriorityTree) Update(id uint32, p PriorityParam) {
	if p.ParentID == id {
		// Self-dependency is a protocol error handled by the caller;
		// ignore defensively here.
		return
	}
	n := t.node(id)
	parent := t.node(p.ParentID)
	// If the new parent is a descendant of n, first move it up to n's
	// current parent (retaining its weight).
	if t.isDescendant(parent, n) {
		t.detach(parent)
		t.attach(parent, n.parent)
	}
	t.detach(n)
	if p.Exclusive {
		// n adopts all of parent's current children.
		for _, c := range parent.children {
			c.parent = n
			n.children = append(n.children, c)
		}
		parent.children = nil
	}
	n.weight = p.Weight
	t.attach(n, parent)
}

func (t *PriorityTree) isDescendant(n, ancestor *prioNode) bool {
	for p := n.parent; p != nil; p = p.parent {
		if p == ancestor {
			return true
		}
	}
	return false
}

func (t *PriorityTree) detach(n *prioNode) {
	p := n.parent
	if p == nil {
		return
	}
	for i, c := range p.children {
		if c == n {
			p.children = append(p.children[:i], p.children[i+1:]...)
			break
		}
	}
	n.parent = nil
}

func (t *PriorityTree) attach(n, parent *prioNode) {
	n.parent = parent
	parent.children = append(parent.children, n)
}

// Remove closes a stream's node; its children are reparented to the
// grandparent (RFC 7540 5.3.4, weight redistribution simplified). The
// node struct is recycled for the connection's next stream.
func (t *PriorityTree) Remove(id uint32) {
	n := t.lookup(id)
	if n == nil || n == t.root {
		return
	}
	parent := n.parent
	t.detach(n)
	for _, c := range n.children {
		c.parent = parent
		parent.children = append(parent.children, c)
	}
	t.store(id, nil)
	t.count--
	t.recycle(n)
}

// Next walks the tree and returns the stream to serve next: the shallowest
// sendable stream, with weighted fairness among sibling subtrees. It
// returns nil when nothing is sendable.
func (t *PriorityTree) Next(sendable func(*Stream) bool) *Stream {
	return t.next(t.root, sendable)
}

func (t *PriorityTree) next(n *prioNode, sendable func(*Stream) bool) *Stream {
	if n.st != nil && sendable(n.st) {
		return n.st
	}
	var best *prioNode
	var bestKey float64
	for _, c := range n.children {
		if !t.subtreeSendable(c, sendable) {
			continue
		}
		key := float64(c.served+1) / float64(int(c.weight)+1)
		if best == nil || key < bestKey || (key == bestKey && c.id < best.id) {
			best, bestKey = c, key
		}
	}
	if best == nil {
		return nil
	}
	return t.next(best, sendable)
}

func (t *PriorityTree) subtreeSendable(n *prioNode, sendable func(*Stream) bool) bool {
	if n.st != nil && sendable(n.st) {
		return true
	}
	for _, c := range n.children {
		if t.subtreeSendable(c, sendable) {
			return true
		}
	}
	return false
}

// Charge accounts n bytes served on the stream, at every ancestor level,
// so sibling fairness holds throughout the tree.
func (t *PriorityTree) Charge(id uint32, n int) {
	nd := t.lookup(id)
	if nd == nil {
		return
	}
	for ; nd != nil && nd != t.root; nd = nd.parent {
		nd.served += int64(n)
	}
}

// Len reports the number of known streams (excluding the root).
func (t *PriorityTree) Len() int { return t.count }
