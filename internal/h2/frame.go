// Package h2 is a from-scratch HTTP/2 (RFC 7540) implementation built for
// the Server Push testbed: binary framing, HPACK header compression (via
// internal/hpack), stream multiplexing, flow control, the RFC 7540
// priority tree, and — the paper's mechanism — pluggable server stream
// schedulers, including the default h2o-like scheduler (a pushed stream is
// a child of the stream that triggered it) and the interleaving scheduler
// that pauses the parent response after a byte offset to push critical
// resources.
//
// The protocol core is transport-agnostic: it runs both inside the
// discrete-event simulator (internal/netem) and over real net.Conn
// transports (see real.go), which is how the frame codec and HPACK are
// cross-validated.
package h2

import (
	"encoding/binary"
	"errors"
	"fmt"
	"strconv"
)

// FrameType identifies an RFC 7540 frame type.
type FrameType uint8

// RFC 7540 Section 6 frame types.
const (
	FrameData         FrameType = 0x0
	FrameHeaders      FrameType = 0x1
	FramePriority     FrameType = 0x2
	FrameRSTStream    FrameType = 0x3
	FrameSettings     FrameType = 0x4
	FramePushPromise  FrameType = 0x5
	FramePing         FrameType = 0x6
	FrameGoAway       FrameType = 0x7
	FrameWindowUpdate FrameType = 0x8
	FrameContinuation FrameType = 0x9
)

var frameNames = [...]string{
	FrameData: "DATA", FrameHeaders: "HEADERS", FramePriority: "PRIORITY",
	FrameRSTStream: "RST_STREAM", FrameSettings: "SETTINGS",
	FramePushPromise: "PUSH_PROMISE", FramePing: "PING", FrameGoAway: "GOAWAY",
	FrameWindowUpdate: "WINDOW_UPDATE", FrameContinuation: "CONTINUATION",
}

func (t FrameType) String() string {
	if int(t) < len(frameNames) {
		return frameNames[t]
	}
	return "UNKNOWN(0x" + strconv.FormatUint(uint64(t), 16) + ")"
}

// Flags is the 8-bit frame flags field.
type Flags uint8

// Frame flags; meanings depend on frame type.
const (
	FlagEndStream  Flags = 0x1 // DATA, HEADERS
	FlagAck        Flags = 0x1 // SETTINGS, PING
	FlagEndHeaders Flags = 0x4 // HEADERS, PUSH_PROMISE, CONTINUATION
	FlagPadded     Flags = 0x8 // DATA, HEADERS, PUSH_PROMISE
	FlagPriority   Flags = 0x20
)

// Has reports whether all bits of f2 are set.
func (f Flags) Has(f2 Flags) bool { return f&f2 == f2 }

// ErrCode is an RFC 7540 Section 7 error code.
type ErrCode uint32

// Error codes.
const (
	ErrCodeNo                 ErrCode = 0x0
	ErrCodeProtocol           ErrCode = 0x1
	ErrCodeInternal           ErrCode = 0x2
	ErrCodeFlowControl        ErrCode = 0x3
	ErrCodeSettingsTimeout    ErrCode = 0x4
	ErrCodeStreamClosed       ErrCode = 0x5
	ErrCodeFrameSize          ErrCode = 0x6
	ErrCodeRefusedStream      ErrCode = 0x7
	ErrCodeCancel             ErrCode = 0x8
	ErrCodeCompression        ErrCode = 0x9
	ErrCodeConnect            ErrCode = 0xa
	ErrCodeEnhanceYourCalm    ErrCode = 0xb
	ErrCodeInadequateSecurity ErrCode = 0xc
	ErrCodeHTTP11Required     ErrCode = 0xd
)

// SettingID identifies a SETTINGS parameter.
type SettingID uint16

// RFC 7540 Section 6.5.2 settings.
const (
	SettingHeaderTableSize      SettingID = 0x1
	SettingEnablePush           SettingID = 0x2
	SettingMaxConcurrentStreams SettingID = 0x3
	SettingInitialWindowSize    SettingID = 0x4
	SettingMaxFrameSize         SettingID = 0x5
	SettingMaxHeaderListSize    SettingID = 0x6
)

// Setting is one SETTINGS parameter.
type Setting struct {
	ID  SettingID
	Val uint32
}

// Protocol constants.
const (
	frameHeaderLen       = 9
	DefaultMaxFrameSize  = 16384
	DefaultInitialWindow = 65535
	maxWindow            = 1<<31 - 1
	// ClientPreface is the fixed connection preface sent by clients.
	ClientPreface = "PRI * HTTP/2.0\r\n\r\nSM\r\n\r\n"
)

// PriorityParam is the stream dependency triple carried by HEADERS and
// PRIORITY frames. Weight is the on-wire value; effective weight is
// Weight+1 (1..256).
type PriorityParam struct {
	ParentID  uint32
	Exclusive bool
	Weight    uint8
}

// IsZero reports whether the parameter carries no information.
func (p PriorityParam) IsZero() bool { return p == PriorityParam{} }

// Frame is a decoded HTTP/2 frame.
type Frame interface {
	Kind() FrameType
	Stream() uint32
	// append serializes the frame (header + payload) onto dst.
	append(dst []byte) []byte
}

func appendFrameHeader(dst []byte, length int, t FrameType, flags Flags, streamID uint32) []byte {
	return append(dst,
		byte(length>>16), byte(length>>8), byte(length),
		byte(t), byte(flags),
		byte(streamID>>24), byte(streamID>>16), byte(streamID>>8), byte(streamID))
}

// AppendFrame serializes f onto dst.
func AppendFrame(dst []byte, f Frame) []byte { return f.append(dst) }

// DataFrame carries request/response bodies.
type DataFrame struct {
	StreamID  uint32
	Data      []byte
	EndStream bool
}

func (f *DataFrame) Kind() FrameType { return FrameData }
func (f *DataFrame) Stream() uint32  { return f.StreamID }
func (f *DataFrame) append(dst []byte) []byte {
	var fl Flags
	if f.EndStream {
		fl |= FlagEndStream
	}
	dst = appendFrameHeader(dst, len(f.Data), FrameData, fl, f.StreamID)
	return append(dst, f.Data...)
}

// HeadersFrame opens a stream (requests) or carries a response header
// block. The block must be a complete HPACK fragment; blocks larger than
// the max frame size are split into CONTINUATIONs by the sender.
type HeadersFrame struct {
	StreamID    uint32
	Block       []byte
	EndStream   bool
	EndHeaders  bool
	HasPriority bool
	Priority    PriorityParam
}

func (f *HeadersFrame) Kind() FrameType { return FrameHeaders }
func (f *HeadersFrame) Stream() uint32  { return f.StreamID }
func (f *HeadersFrame) append(dst []byte) []byte {
	var fl Flags
	if f.EndStream {
		fl |= FlagEndStream
	}
	if f.EndHeaders {
		fl |= FlagEndHeaders
	}
	length := len(f.Block)
	if f.HasPriority {
		fl |= FlagPriority
		length += 5
	}
	dst = appendFrameHeader(dst, length, FrameHeaders, fl, f.StreamID)
	if f.HasPriority {
		dst = appendPriorityParam(dst, f.Priority)
	}
	return append(dst, f.Block...)
}

func appendPriorityParam(dst []byte, p PriorityParam) []byte {
	v := p.ParentID & 0x7fffffff
	if p.Exclusive {
		v |= 1 << 31
	}
	var b [5]byte
	binary.BigEndian.PutUint32(b[:4], v)
	b[4] = p.Weight
	return append(dst, b[:]...)
}

func parsePriorityParam(p []byte) PriorityParam {
	v := binary.BigEndian.Uint32(p[:4])
	return PriorityParam{
		ParentID:  v & 0x7fffffff,
		Exclusive: v&(1<<31) != 0,
		Weight:    p[4],
	}
}

// PriorityFrame reprioritizes a stream.
type PriorityFrame struct {
	StreamID uint32
	Priority PriorityParam
}

func (f *PriorityFrame) Kind() FrameType { return FramePriority }
func (f *PriorityFrame) Stream() uint32  { return f.StreamID }
func (f *PriorityFrame) append(dst []byte) []byte {
	dst = appendFrameHeader(dst, 5, FramePriority, 0, f.StreamID)
	return appendPriorityParam(dst, f.Priority)
}

// RSTStreamFrame abruptly terminates a stream (e.g. a client cancelling an
// unwanted push).
type RSTStreamFrame struct {
	StreamID uint32
	Code     ErrCode
}

func (f *RSTStreamFrame) Kind() FrameType { return FrameRSTStream }
func (f *RSTStreamFrame) Stream() uint32  { return f.StreamID }
func (f *RSTStreamFrame) append(dst []byte) []byte {
	dst = appendFrameHeader(dst, 4, FrameRSTStream, 0, f.StreamID)
	return binary.BigEndian.AppendUint32(dst, uint32(f.Code))
}

// SettingsFrame exchanges connection configuration. SETTINGS_ENABLE_PUSH=0
// is how a client disables Server Push entirely (the paper's "no push"
// baseline).
type SettingsFrame struct {
	Ack    bool
	Params []Setting
}

func (f *SettingsFrame) Kind() FrameType { return FrameSettings }
func (f *SettingsFrame) Stream() uint32  { return 0 }
func (f *SettingsFrame) append(dst []byte) []byte {
	var fl Flags
	if f.Ack {
		fl |= FlagAck
	}
	dst = appendFrameHeader(dst, 6*len(f.Params), FrameSettings, fl, 0)
	for _, s := range f.Params {
		dst = binary.BigEndian.AppendUint16(dst, uint16(s.ID))
		dst = binary.BigEndian.AppendUint32(dst, s.Val)
	}
	return dst
}

// Value returns the last value for id in the frame.
func (f *SettingsFrame) Value(id SettingID) (uint32, bool) {
	var v uint32
	found := false
	for _, s := range f.Params {
		if s.ID == id {
			v, found = s.Val, true
		}
	}
	return v, found
}

// PushPromiseFrame announces a server-initiated stream: the promised
// stream ID plus the synthetic request header block the push answers.
type PushPromiseFrame struct {
	StreamID   uint32 // associated (parent) stream
	PromisedID uint32
	Block      []byte
	EndHeaders bool
}

func (f *PushPromiseFrame) Kind() FrameType { return FramePushPromise }
func (f *PushPromiseFrame) Stream() uint32  { return f.StreamID }
func (f *PushPromiseFrame) append(dst []byte) []byte {
	var fl Flags
	if f.EndHeaders {
		fl |= FlagEndHeaders
	}
	dst = appendFrameHeader(dst, 4+len(f.Block), FramePushPromise, fl, f.StreamID)
	dst = binary.BigEndian.AppendUint32(dst, f.PromisedID&0x7fffffff)
	return append(dst, f.Block...)
}

// PingFrame measures liveness/RTT.
type PingFrame struct {
	Ack  bool
	Data [8]byte
}

func (f *PingFrame) Kind() FrameType { return FramePing }
func (f *PingFrame) Stream() uint32  { return 0 }
func (f *PingFrame) append(dst []byte) []byte {
	var fl Flags
	if f.Ack {
		fl |= FlagAck
	}
	dst = appendFrameHeader(dst, 8, FramePing, fl, 0)
	return append(dst, f.Data[:]...)
}

// GoAwayFrame initiates connection shutdown.
type GoAwayFrame struct {
	LastStreamID uint32
	Code         ErrCode
	Debug        []byte
}

func (f *GoAwayFrame) Kind() FrameType { return FrameGoAway }
func (f *GoAwayFrame) Stream() uint32  { return 0 }
func (f *GoAwayFrame) append(dst []byte) []byte {
	dst = appendFrameHeader(dst, 8+len(f.Debug), FrameGoAway, 0, 0)
	dst = binary.BigEndian.AppendUint32(dst, f.LastStreamID&0x7fffffff)
	dst = binary.BigEndian.AppendUint32(dst, uint32(f.Code))
	return append(dst, f.Debug...)
}

// WindowUpdateFrame grants flow-control credit (stream 0 = connection).
type WindowUpdateFrame struct {
	StreamID  uint32
	Increment uint32
}

func (f *WindowUpdateFrame) Kind() FrameType { return FrameWindowUpdate }
func (f *WindowUpdateFrame) Stream() uint32  { return f.StreamID }
func (f *WindowUpdateFrame) append(dst []byte) []byte {
	dst = appendFrameHeader(dst, 4, FrameWindowUpdate, 0, f.StreamID)
	return binary.BigEndian.AppendUint32(dst, f.Increment&0x7fffffff)
}

// ContinuationFrame carries the remainder of an oversized header block.
type ContinuationFrame struct {
	StreamID   uint32
	Block      []byte
	EndHeaders bool
}

func (f *ContinuationFrame) Kind() FrameType { return FrameContinuation }
func (f *ContinuationFrame) Stream() uint32  { return f.StreamID }
func (f *ContinuationFrame) append(dst []byte) []byte {
	var fl Flags
	if f.EndHeaders {
		fl |= FlagEndHeaders
	}
	dst = appendFrameHeader(dst, len(f.Block), FrameContinuation, fl, f.StreamID)
	return append(dst, f.Block...)
}

// ConnError is a connection-level protocol error that must tear the
// connection down with GOAWAY.
type ConnError struct {
	Code ErrCode
	Msg  string
}

func (e ConnError) Error() string { return fmt.Sprintf("h2: connection error %d: %s", e.Code, e.Msg) }

var errFrameTooLarge = errors.New("h2: frame exceeds max frame size")

// emptyPayload stands in for zero-length frame payloads so decoded frames
// carry a non-nil empty slice, matching the encoder's round trip.
var emptyPayload = []byte{}

// FrameReader incrementally decodes frames from a byte stream.
//
// Feed is zero-copy: the reader retains the given slice until its bytes
// have been consumed, so callers transfer ownership and must not mutate
// fed chunks. Next parses directly from the chunk list; a frame payload
// that lies within one chunk is returned as a subslice of it, and a
// payload spanning chunks is assembled into a reused scratch buffer.
// Consequently a returned Frame (and any payload slice it carries) is
// only valid until the next call to Next or Feed — consumers must copy
// what they retain.
//
//repolint:pooled
type FrameReader struct {
	MaxFrameSize int //repolint:keep configuration, set by the owning transport; zero means DefaultMaxFrameSize

	chunks   [][]byte // fed transport chunks; chunks[head][off:] is next
	head     int
	off      int
	buffered int

	hdr     [frameHeaderLen]byte //repolint:keep scratch header bytes, rewritten by peekHeader
	scratch []byte               //repolint:keep reassembly buffer for payloads spanning chunks; rewritten per use

	// Reused frame structs, one per type: the returned-frame validity
	// contract above (valid until the next Next/Feed) means no caller may
	// retain one, so each parse fills the previous instance in place
	// instead of allocating.
	data     DataFrame         //repolint:keep reused frame struct, filled in place per parse
	headers  HeadersFrame      //repolint:keep reused frame struct, filled in place per parse
	prio     PriorityFrame     //repolint:keep reused frame struct, filled in place per parse
	rst      RSTStreamFrame    //repolint:keep reused frame struct, filled in place per parse
	settings SettingsFrame     //repolint:keep reused frame struct, filled in place per parse
	pp       PushPromiseFrame  //repolint:keep reused frame struct, filled in place per parse
	ping     PingFrame         //repolint:keep reused frame struct, filled in place per parse
	goaway   GoAwayFrame       //repolint:keep reused frame struct, filled in place per parse
	wu       WindowUpdateFrame //repolint:keep reused frame struct, filled in place per parse
	contf    ContinuationFrame //repolint:keep reused frame struct, filled in place per parse
}

// Reset discards all buffered bytes and re-arms the reader for a new
// connection, keeping its chunk list, scratch buffer and frame structs.
func (r *FrameReader) Reset() {
	for i := range r.chunks {
		r.chunks[i] = nil
	}
	r.chunks = r.chunks[:0]
	r.head, r.off, r.buffered = 0, 0, 0
}

// Feed hands transport bytes to the reader. The slice is retained (not
// copied) until consumed; see the type comment for the ownership rule.
//
//repolint:owns zero-copy: the reader aliases the chunk until consumed
//repolint:hotpath
func (r *FrameReader) Feed(b []byte) {
	if len(b) == 0 {
		return
	}
	r.chunks = append(r.chunks, b)
	r.buffered += len(b)
}

// Buffered returns the number of undecoded bytes held.
func (r *FrameReader) Buffered() int { return r.buffered }

// peekHeader copies the next frameHeaderLen bytes into r.hdr without
// consuming them. The caller guarantees buffered >= frameHeaderLen.
//
//repolint:hotpath
func (r *FrameReader) peekHeader() {
	i, off, n := r.head, r.off, 0
	for n < frameHeaderLen {
		n += copy(r.hdr[n:], r.chunks[i][off:])
		i++
		off = 0
	}
}

// consume advances past n buffered bytes. The caller guarantees
// buffered >= n.
//
//repolint:hotpath
func (r *FrameReader) consume(n int) {
	r.buffered -= n
	for n > 0 {
		avail := len(r.chunks[r.head]) - r.off
		if n < avail {
			r.off += n
			break
		}
		n -= avail
		r.chunks[r.head] = nil
		r.head++
		r.off = 0
	}
	switch {
	case r.head == len(r.chunks):
		r.chunks = r.chunks[:0]
		r.head = 0
	case r.head > 64 && 2*r.head >= len(r.chunks):
		m := copy(r.chunks, r.chunks[r.head:])
		for i := m; i < len(r.chunks); i++ {
			r.chunks[i] = nil
		}
		r.chunks = r.chunks[:m]
		r.head = 0
	}
}

// take consumes n bytes and returns them contiguously: a zero-copy
// subslice when they lie within one chunk, otherwise the reused scratch
// buffer. The caller guarantees buffered >= n.
//
//repolint:hotpath
func (r *FrameReader) take(n int) []byte {
	if n == 0 {
		return emptyPayload
	}
	if c := r.chunks[r.head]; len(c)-r.off >= n {
		p := c[r.off : r.off+n : r.off+n]
		r.consume(n)
		return p
	}
	if cap(r.scratch) < n {
		r.scratch = make([]byte, n)
	}
	buf := r.scratch[:n]
	filled := 0
	for filled < n {
		c := r.chunks[r.head]
		m := copy(buf[filled:], c[r.off:])
		filled += m
		r.consume(m)
	}
	return buf
}

// Next decodes the next complete frame, returning nil when more bytes are
// needed. Frames of unknown type are skipped, per RFC 7540 Section 4.1.
// The returned frame is valid until the next call to Next or Feed.
//
//repolint:hotpath
func (r *FrameReader) Next() (Frame, error) {
	for {
		if r.buffered < frameHeaderLen {
			return nil, nil
		}
		r.peekHeader()
		length := int(r.hdr[0])<<16 | int(r.hdr[1])<<8 | int(r.hdr[2])
		maxFS := r.MaxFrameSize
		if maxFS == 0 {
			maxFS = DefaultMaxFrameSize
		}
		if length > maxFS {
			return nil, ConnError{ErrCodeFrameSize, errFrameTooLarge.Error()}
		}
		if r.buffered < frameHeaderLen+length {
			return nil, nil
		}
		typ := FrameType(r.hdr[3])
		flags := Flags(r.hdr[4])
		streamID := binary.BigEndian.Uint32(r.hdr[5:9]) & 0x7fffffff
		r.consume(frameHeaderLen)
		payload := r.take(length)
		if typ == FrameData {
			// Hot path: reuse the reader's DataFrame instead of
			// allocating one per frame.
			p, err := checkDataPayload(streamID, flags, payload)
			if err != nil {
				return nil, err
			}
			r.data = DataFrame{StreamID: streamID, Data: p, EndStream: flags.Has(FlagEndStream)}
			return &r.data, nil
		}
		f, err := r.parseInto(typ, flags, streamID, payload)
		if err != nil {
			return nil, err
		}
		if f == nil {
			continue // unknown frame type: skip
		}
		return f, nil
	}
}

// checkDataPayload validates a DATA frame and strips padding.
func checkDataPayload(streamID uint32, flags Flags, p []byte) ([]byte, error) {
	if streamID == 0 {
		return nil, ConnError{ErrCodeProtocol, "DATA on stream 0"}
	}
	if flags.Has(FlagPadded) {
		if len(p) < 1 || int(p[0]) >= len(p) {
			return nil, ConnError{ErrCodeProtocol, "bad DATA padding"}
		}
		p = p[1 : len(p)-int(p[0])]
	}
	return p, nil
}

// parseFrame decodes one frame into freshly allocated structs. It is the
// allocating compatibility wrapper around FrameReader.parseInto, kept for
// callers outside the reader's reuse contract.
func parseFrame(typ FrameType, flags Flags, streamID uint32, p []byte) (Frame, error) {
	var r FrameReader
	return r.parseInto(typ, flags, streamID, p)
}

// parseInto decodes one frame into the reader's reused frame structs;
// the result is valid until the reader parses its next frame.
//
//repolint:owns decoded frames alias p until the next Next/Feed
func (r *FrameReader) parseInto(typ FrameType, flags Flags, streamID uint32, p []byte) (Frame, error) {
	switch typ {
	case FrameData:
		p, err := checkDataPayload(streamID, flags, p)
		if err != nil {
			return nil, err
		}
		r.data = DataFrame{StreamID: streamID, Data: p, EndStream: flags.Has(FlagEndStream)}
		return &r.data, nil

	case FrameHeaders:
		if streamID == 0 {
			return nil, ConnError{ErrCodeProtocol, "HEADERS on stream 0"}
		}
		f := &r.headers
		*f = HeadersFrame{
			StreamID:   streamID,
			EndStream:  flags.Has(FlagEndStream),
			EndHeaders: flags.Has(FlagEndHeaders),
		}
		if flags.Has(FlagPadded) {
			if len(p) < 1 || int(p[0]) >= len(p) {
				return nil, ConnError{ErrCodeProtocol, "bad HEADERS padding"}
			}
			p = p[1 : len(p)-int(p[0])]
		}
		if flags.Has(FlagPriority) {
			if len(p) < 5 {
				return nil, ConnError{ErrCodeFrameSize, "short HEADERS priority"}
			}
			f.HasPriority = true
			f.Priority = parsePriorityParam(p)
			p = p[5:]
		}
		f.Block = p
		return f, nil

	case FramePriority:
		if len(p) != 5 {
			return nil, ConnError{ErrCodeFrameSize, "PRIORITY length != 5"}
		}
		if streamID == 0 {
			return nil, ConnError{ErrCodeProtocol, "PRIORITY on stream 0"}
		}
		r.prio = PriorityFrame{StreamID: streamID, Priority: parsePriorityParam(p)}
		return &r.prio, nil

	case FrameRSTStream:
		if len(p) != 4 {
			return nil, ConnError{ErrCodeFrameSize, "RST_STREAM length != 4"}
		}
		if streamID == 0 {
			return nil, ConnError{ErrCodeProtocol, "RST_STREAM on stream 0"}
		}
		r.rst = RSTStreamFrame{StreamID: streamID, Code: ErrCode(binary.BigEndian.Uint32(p))}
		return &r.rst, nil

	case FrameSettings:
		if streamID != 0 {
			return nil, ConnError{ErrCodeProtocol, "SETTINGS on nonzero stream"}
		}
		f := &r.settings
		f.Ack = flags.Has(FlagAck)
		f.Params = f.Params[:0]
		if f.Ack {
			if len(p) != 0 {
				return nil, ConnError{ErrCodeFrameSize, "SETTINGS ack with payload"}
			}
			return f, nil
		}
		if len(p)%6 != 0 {
			return nil, ConnError{ErrCodeFrameSize, "SETTINGS length not multiple of 6"}
		}
		for len(p) > 0 {
			f.Params = append(f.Params, Setting{
				ID:  SettingID(binary.BigEndian.Uint16(p[:2])),
				Val: binary.BigEndian.Uint32(p[2:6]),
			})
			p = p[6:]
		}
		return f, nil

	case FramePushPromise:
		if streamID == 0 {
			return nil, ConnError{ErrCodeProtocol, "PUSH_PROMISE on stream 0"}
		}
		if flags.Has(FlagPadded) {
			if len(p) < 1 || int(p[0]) >= len(p) {
				return nil, ConnError{ErrCodeProtocol, "bad PUSH_PROMISE padding"}
			}
			p = p[1 : len(p)-int(p[0])]
		}
		if len(p) < 4 {
			return nil, ConnError{ErrCodeFrameSize, "short PUSH_PROMISE"}
		}
		r.pp = PushPromiseFrame{
			StreamID:   streamID,
			PromisedID: binary.BigEndian.Uint32(p[:4]) & 0x7fffffff,
			Block:      p[4:],
			EndHeaders: flags.Has(FlagEndHeaders),
		}
		return &r.pp, nil

	case FramePing:
		if len(p) != 8 {
			return nil, ConnError{ErrCodeFrameSize, "PING length != 8"}
		}
		if streamID != 0 {
			return nil, ConnError{ErrCodeProtocol, "PING on nonzero stream"}
		}
		f := &r.ping
		f.Ack = flags.Has(FlagAck)
		copy(f.Data[:], p)
		return f, nil

	case FrameGoAway:
		if len(p) < 8 {
			return nil, ConnError{ErrCodeFrameSize, "short GOAWAY"}
		}
		if streamID != 0 {
			return nil, ConnError{ErrCodeProtocol, "GOAWAY on nonzero stream"}
		}
		r.goaway = GoAwayFrame{
			LastStreamID: binary.BigEndian.Uint32(p[:4]) & 0x7fffffff,
			Code:         ErrCode(binary.BigEndian.Uint32(p[4:8])),
			Debug:        p[8:],
		}
		return &r.goaway, nil

	case FrameWindowUpdate:
		if len(p) != 4 {
			return nil, ConnError{ErrCodeFrameSize, "WINDOW_UPDATE length != 4"}
		}
		inc := binary.BigEndian.Uint32(p) & 0x7fffffff
		if inc == 0 {
			return nil, ConnError{ErrCodeProtocol, "WINDOW_UPDATE increment 0"}
		}
		r.wu = WindowUpdateFrame{StreamID: streamID, Increment: inc}
		return &r.wu, nil

	case FrameContinuation:
		if streamID == 0 {
			return nil, ConnError{ErrCodeProtocol, "CONTINUATION on stream 0"}
		}
		r.contf = ContinuationFrame{StreamID: streamID, Block: p, EndHeaders: flags.Has(FlagEndHeaders)}
		return &r.contf, nil

	default:
		// Unknown frame types must be ignored (RFC 7540 Section 4.1).
		return nil, nil
	}
}
