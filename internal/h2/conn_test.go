package h2

import (
	"testing"

	"repro/internal/hpack"
)

// feed drives a core directly with encoded frames (no transport).
func feed(c *Core, frames ...Frame) {
	var wire []byte
	for _, f := range frames {
		wire = AppendFrame(wire, f)
	}
	c.Recv(wire)
}

func clientPrefaceBytes() []byte { return []byte(ClientPreface) }

func TestServerRejectsBadPreface(t *testing.T) {
	c := NewCore(true, DefaultSettings())
	var gotErr ConnError
	c.OnConnError = func(err ConnError) { gotErr = err }
	c.Recv([]byte("GET / HTTP/1.1\r\n\r\n"))
	if gotErr.Code != ErrCodeProtocol {
		t.Fatalf("bad preface not rejected: %+v", gotErr)
	}
}

func TestServerAcceptsSplitPreface(t *testing.T) {
	c := NewCore(true, DefaultSettings())
	errSeen := false
	c.OnConnError = func(ConnError) { errSeen = true }
	p := clientPrefaceBytes()
	c.Recv(p[:7])
	c.Recv(p[7:13])
	c.Recv(p[13:])
	feed(c, &SettingsFrame{})
	if errSeen {
		t.Fatal("split preface rejected")
	}
	if !c.settingsRecv {
		t.Fatal("settings not processed after split preface")
	}
}

func TestPingAnsweredWithAck(t *testing.T) {
	c := NewCore(true, DefaultSettings())
	c.Start()
	c.Recv(clientPrefaceBytes())
	feed(c, &PingFrame{Data: [8]byte{1, 2, 3}})
	// Drain control frames looking for the PING ack.
	found := false
	for {
		b := c.PopWrite(0)
		if b == nil {
			break
		}
		var r FrameReader
		r.Feed(b)
		f, _ := r.Next()
		if pf, ok := f.(*PingFrame); ok && pf.Ack && pf.Data[0] == 1 {
			found = true
		}
	}
	if !found {
		t.Fatal("PING not acked")
	}
}

func TestSettingsAcked(t *testing.T) {
	c := NewCore(true, DefaultSettings())
	c.Start()
	c.Recv(clientPrefaceBytes())
	feed(c, &SettingsFrame{Params: []Setting{{SettingEnablePush, 0}}})
	if c.PeerSettings().EnablePush {
		t.Fatal("ENABLE_PUSH=0 not applied")
	}
	ackSeen := false
	for {
		b := c.PopWrite(0)
		if b == nil {
			break
		}
		var r FrameReader
		r.Feed(b)
		f, _ := r.Next()
		if sf, ok := f.(*SettingsFrame); ok && sf.Ack {
			ackSeen = true
		}
	}
	if !ackSeen {
		t.Fatal("SETTINGS not acked")
	}
}

func TestBadEnablePushValueIsConnError(t *testing.T) {
	c := NewCore(true, DefaultSettings())
	var gotErr ConnError
	c.OnConnError = func(err ConnError) { gotErr = err }
	c.Recv(clientPrefaceBytes())
	feed(c, &SettingsFrame{Params: []Setting{{SettingEnablePush, 7}}})
	if gotErr.Code != ErrCodeProtocol {
		t.Fatalf("ENABLE_PUSH=7 accepted: %+v", gotErr)
	}
}

func TestInitialWindowSizeDeltaAppliesToStreams(t *testing.T) {
	c := NewCore(true, DefaultSettings())
	c.Recv(clientPrefaceBytes())
	feed(c, &SettingsFrame{}) // defaults
	// Open a stream via request headers.
	enc := hpack.NewEncoder()
	block := enc.EncodeBlock(Request{Method: "GET", Scheme: "https", Authority: "a", Path: "/"}.Fields())
	feed(c, &HeadersFrame{StreamID: 1, Block: block, EndHeaders: true, EndStream: true})
	st := c.Stream(1)
	if st == nil {
		t.Fatal("stream not created")
	}
	before := st.sendWindow
	feed(c, &SettingsFrame{Params: []Setting{{SettingInitialWindowSize, uint32(before) + 1000}}})
	if st.sendWindow != before+1000 {
		t.Fatalf("stream window not adjusted: %d -> %d", before, st.sendWindow)
	}
}

func TestPushPromiseWhenDisabledIsConnError(t *testing.T) {
	noPush := DefaultSettings()
	noPush.EnablePush = false
	c := NewCore(false, noPush)
	var gotErr ConnError
	c.OnConnError = func(err ConnError) { gotErr = err }
	st := c.StartRequest(Request{Method: "GET", Scheme: "https", Authority: "a", Path: "/"}.Fields(), nil)
	_ = st
	feed(c, &PushPromiseFrame{StreamID: 1, PromisedID: 2, Block: []byte{0x82, 0x87, 0x84, 0x41, 0x01, 0x61}, EndHeaders: true})
	if gotErr.Code != ErrCodeProtocol {
		t.Fatalf("PUSH_PROMISE with push disabled accepted: %+v", gotErr)
	}
}

func TestFlowControlAutoReplenishment(t *testing.T) {
	// The testbed endpoint replenishes its receive windows automatically
	// (as browsers do), so heavy DATA traffic never stalls on flow
	// control and the window never goes negative.
	c := NewCore(false, DefaultSettings())
	var gotErr ConnError
	c.OnConnError = func(err ConnError) { gotErr = err }
	c.StartRequest(Request{Method: "GET", Scheme: "https", Authority: "a", Path: "/"}.Fields(), nil)
	big := make([]byte, DefaultMaxFrameSize)
	for i := 0; i < 40; i++ { // 640 KB, 10x the default window
		feed(c, &DataFrame{StreamID: 1, Data: big})
	}
	if gotErr.Code != 0 {
		t.Fatalf("replenished windows still errored: %+v", gotErr)
	}
	if c.recvWindow < 0 {
		t.Fatalf("connection receive window negative: %d", c.recvWindow)
	}
	// WINDOW_UPDATE frames must have been queued for the peer.
	updates := 0
	for {
		b := c.PopWrite(0)
		if b == nil {
			break
		}
		var r FrameReader
		r.Feed(b)
		f, _ := r.Next()
		if _, ok := f.(*WindowUpdateFrame); ok {
			updates++
		}
	}
	if updates == 0 {
		t.Fatal("no WINDOW_UPDATE emitted")
	}
}

func TestWindowUpdateOverflowIsError(t *testing.T) {
	c := NewCore(true, DefaultSettings())
	var gotErr ConnError
	c.OnConnError = func(err ConnError) { gotErr = err }
	c.Recv(clientPrefaceBytes())
	feed(c, &SettingsFrame{})
	feed(c, &WindowUpdateFrame{StreamID: 0, Increment: maxWindow})
	if gotErr.Code != ErrCodeFlowControl {
		t.Fatalf("connection window overflow accepted: %+v", gotErr)
	}
}

func TestGoAwayStopsProcessing(t *testing.T) {
	c := NewCore(false, DefaultSettings())
	goAway := false
	c.OnGoAway = func(*GoAwayFrame) { goAway = true }
	headers := 0
	c.OnHeaders = func(*Stream, []hpack.HeaderField, bool) { headers++ }
	cs := c.StartRequest(Request{Method: "GET", Scheme: "https", Authority: "a", Path: "/"}.Fields(), nil)
	_ = cs
	feed(c, &GoAwayFrame{LastStreamID: 0, Code: ErrCodeNo})
	if !goAway {
		t.Fatal("GOAWAY not surfaced")
	}
	// Frames after GOAWAY are ignored.
	enc := hpack.NewEncoder()
	block := enc.EncodeBlock([]hpack.HeaderField{{Name: ":status", Value: "200"}})
	feed(c, &HeadersFrame{StreamID: 1, Block: block, EndHeaders: true, EndStream: true})
	if headers != 0 {
		t.Fatal("frames processed after GOAWAY")
	}
}

func TestRSTStreamClosesAndNotifies(t *testing.T) {
	c := NewCore(true, DefaultSettings())
	c.Recv(clientPrefaceBytes())
	feed(c, &SettingsFrame{})
	enc := hpack.NewEncoder()
	block := enc.EncodeBlock(Request{Method: "GET", Scheme: "https", Authority: "a", Path: "/"}.Fields())
	feed(c, &HeadersFrame{StreamID: 1, Block: block, EndHeaders: true, EndStream: true})
	var rstCode ErrCode
	c.OnRST = func(st *Stream, code ErrCode) { rstCode = code }
	feed(c, &RSTStreamFrame{StreamID: 1, Code: ErrCodeCancel})
	if rstCode != ErrCodeCancel {
		t.Fatalf("RST not surfaced: %v", rstCode)
	}
	if c.Stream(1) != nil {
		t.Fatal("stream not closed after RST")
	}
}

func TestInterleavedContinuationIsConnError(t *testing.T) {
	c := NewCore(true, DefaultSettings())
	var gotErr ConnError
	c.OnConnError = func(err ConnError) { gotErr = err }
	c.Recv(clientPrefaceBytes())
	feed(c, &SettingsFrame{})
	enc := hpack.NewEncoder()
	block := enc.EncodeBlock(Request{Method: "GET", Scheme: "https", Authority: "a", Path: "/"}.Fields())
	// HEADERS without END_HEADERS followed by a PING: protocol error.
	feed(c, &HeadersFrame{StreamID: 1, Block: block[:2], EndHeaders: false})
	feed(c, &PingFrame{})
	if gotErr.Code != ErrCodeProtocol {
		t.Fatalf("interleaved CONTINUATION accepted: %+v", gotErr)
	}
}

func TestUnexpectedContinuationIsConnError(t *testing.T) {
	c := NewCore(true, DefaultSettings())
	var gotErr ConnError
	c.OnConnError = func(err ConnError) { gotErr = err }
	c.Recv(clientPrefaceBytes())
	feed(c, &SettingsFrame{})
	feed(c, &ContinuationFrame{StreamID: 1, Block: []byte{0}, EndHeaders: true})
	if gotErr.Code != ErrCodeProtocol {
		t.Fatalf("stray CONTINUATION accepted: %+v", gotErr)
	}
}

func TestEvenClientStreamIDIsConnError(t *testing.T) {
	c := NewCore(true, DefaultSettings())
	var gotErr ConnError
	c.OnConnError = func(err ConnError) { gotErr = err }
	c.Recv(clientPrefaceBytes())
	feed(c, &SettingsFrame{})
	enc := hpack.NewEncoder()
	block := enc.EncodeBlock(Request{Method: "GET", Scheme: "https", Authority: "a", Path: "/"}.Fields())
	feed(c, &HeadersFrame{StreamID: 2, Block: block, EndHeaders: true, EndStream: true})
	if gotErr.Code != ErrCodeProtocol {
		t.Fatalf("even client stream id accepted: %+v", gotErr)
	}
}

func TestDecreasingStreamIDIsConnError(t *testing.T) {
	c := NewCore(true, DefaultSettings())
	var gotErr ConnError
	c.OnConnError = func(err ConnError) { gotErr = err }
	c.Recv(clientPrefaceBytes())
	feed(c, &SettingsFrame{})
	enc := hpack.NewEncoder()
	mk := func(id uint32) *HeadersFrame {
		block := enc.EncodeBlock(Request{Method: "GET", Scheme: "https", Authority: "a", Path: "/"}.Fields())
		return &HeadersFrame{StreamID: id, Block: block, EndHeaders: true, EndStream: true}
	}
	feed(c, mk(5))
	feed(c, mk(3))
	if gotErr.Code != ErrCodeProtocol {
		t.Fatalf("decreasing stream id accepted: %+v", gotErr)
	}
}

func TestParseRequestValidation(t *testing.T) {
	if _, err := ParseRequest([]hpack.HeaderField{{Name: ":method", Value: "GET"}}); err == nil {
		t.Fatal("incomplete pseudo-headers accepted")
	}
	if _, err := ParseRequest([]hpack.HeaderField{
		{Name: ":method", Value: "GET"}, {Name: ":path", Value: "/"},
		{Name: ":bogus", Value: "x"},
	}); err == nil {
		t.Fatal("unknown pseudo-header accepted")
	}
	r, err := ParseRequest(Request{Method: "GET", Scheme: "https", Authority: "h", Path: "/p",
		Header: []hpack.HeaderField{{Name: "x", Value: "y"}}}.Fields())
	if err != nil || r.Authority != "h" || len(r.Header) != 1 {
		t.Fatalf("round trip failed: %+v %v", r, err)
	}
	if r.URL() != "https://h/p" {
		t.Fatalf("URL = %s", r.URL())
	}
}

func TestDataForUnknownStreamCountsAgainstConnWindowOnly(t *testing.T) {
	c := NewCore(false, DefaultSettings())
	c.Start() // queue window update: conn recv window large
	var gotErr ConnError
	c.OnConnError = func(err ConnError) { gotErr = err }
	feed(c, &DataFrame{StreamID: 99, Data: make([]byte, 1000)})
	if gotErr.Code != 0 {
		t.Fatalf("data for unknown stream errored: %+v", gotErr)
	}
}
