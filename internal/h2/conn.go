package h2

import (
	"fmt"

	"repro/internal/hpack"
)

// Settings is a decoded view of the SETTINGS parameters relevant to the
// testbed.
type Settings struct {
	HeaderTableSize      uint32
	EnablePush           bool
	MaxConcurrentStreams uint32 // 0 = unlimited
	InitialWindowSize    uint32
	MaxFrameSize         uint32
}

// DefaultSettings returns the RFC 7540 defaults.
func DefaultSettings() Settings {
	return Settings{
		HeaderTableSize:   hpack.DefaultDynamicTableSize,
		EnablePush:        true,
		InitialWindowSize: DefaultInitialWindow,
		MaxFrameSize:      DefaultMaxFrameSize,
	}
}

// fillFrame populates f (reusing its Params storage) with s's announced
// parameters.
func (s Settings) fillFrame(f *SettingsFrame) {
	push := uint32(0)
	if s.EnablePush {
		push = 1
	}
	f.Ack = false
	f.Params = append(f.Params[:0],
		Setting{SettingHeaderTableSize, s.HeaderTableSize},
		Setting{SettingEnablePush, push},
		Setting{SettingInitialWindowSize, s.InitialWindowSize},
		Setting{SettingMaxFrameSize, s.MaxFrameSize},
	)
	if s.MaxConcurrentStreams > 0 {
		f.Params = append(f.Params, Setting{SettingMaxConcurrentStreams, s.MaxConcurrentStreams})
	}
}

// StreamState is the RFC 7540 Section 5.1 stream lifecycle state.
type StreamState int

// Stream states.
const (
	StateIdle StreamState = iota
	StateReservedLocal
	StateReservedRemote
	StateOpen
	StateHalfClosedLocal
	StateHalfClosedRemote
	StateClosed
)

var stateNames = [...]string{"idle", "reserved-local", "reserved-remote",
	"open", "half-closed-local", "half-closed-remote", "closed"}

func (s StreamState) String() string { return stateNames[s] }

// Stream is one HTTP/2 stream on a Core connection.
type Stream struct {
	ID   uint32
	core *Core

	State StreamState

	// sending side. The output buffer is a chunked FIFO of
	// caller-provided slices; DATA frames are carved out of it as
	// zero-copy subslices.
	sendWindow  int64
	outChunks   [][]byte
	outHead     int  // index of first live chunk
	outOff      int  // consumed prefix of outChunks[outHead]
	outLen      int  // total unframed body bytes queued
	outClosed   bool // END_STREAM once the queue drains
	sentBody    int  // body bytes framed so far
	pauseAt     int  // pause output at this body offset; -1 = no pause
	resumeOn    map[uint32]bool
	headersSent bool

	// receiving side
	recvWindow int64
	recvdBody  int

	// IsPush marks server-initiated streams.
	IsPush bool
	// PushParent is the stream whose response triggered this push.
	PushParent uint32

	// User is free for the embedding layer (request context etc.).
	User any
}

// SentBodyBytes returns the number of body bytes framed so far.
func (st *Stream) SentBodyBytes() int { return st.sentBody }

// RecvdBodyBytes returns body bytes received so far.
func (st *Stream) RecvdBodyBytes() int { return st.recvdBody }

// QueueData appends body bytes for transmission, scheduled by the tree.
// The slice is retained, not copied: DATA frames reference it until sent,
// so the caller must not mutate b after queueing (the testbed passes
// immutable recorded response bodies).
//
//repolint:owns DATA frames reference the slice until sent
//repolint:hotpath
func (st *Stream) QueueData(b []byte) {
	if len(b) > 0 {
		st.outChunks = append(st.outChunks, b)
		st.outLen += len(b)
	}
	st.core.wake()
}

// CloseOut marks the sending side finished: END_STREAM is set on the
// final DATA frame (or an empty one).
func (st *Stream) CloseOut() {
	st.outClosed = true
	st.core.wake()
}

// PauseOutputAt pauses the stream's output once off body bytes have been
// framed. This is the interleaving hook: while paused, the scheduler
// serves other sendable streams (e.g. pushed children).
func (st *Stream) PauseOutputAt(off int) {
	st.pauseAt = off
	st.core.wake()
}

// ResumeAfter arms the pause gate to clear when all listed streams have
// finished sending. An empty list resumes immediately.
func (st *Stream) ResumeAfter(ids []uint32) {
	if len(ids) == 0 {
		st.Resume()
		return
	}
	st.resumeOn = make(map[uint32]bool, len(ids))
	for _, id := range ids {
		st.resumeOn[id] = true
	}
}

// Resume clears any pause gate.
func (st *Stream) Resume() {
	st.pauseAt = -1
	st.resumeOn = nil
	st.core.wake()
}

// Paused reports whether output is currently gated.
func (st *Stream) Paused() bool {
	return st.pauseAt >= 0 && st.sentBody >= st.pauseAt
}

// Reset queues an RST_STREAM and closes the stream locally.
//
//repolint:notpooled protocol RST_STREAM; Core.Reset recycles stream structs wholesale
func (st *Stream) Reset(code ErrCode) {
	if st.State == StateClosed {
		return
	}
	st.core.queueCtrl(&RSTStreamFrame{StreamID: st.ID, Code: code})
	st.core.closeStream(st)
}

// Core is a transport-agnostic HTTP/2 connection state machine. The
// embedding transport feeds received bytes via Recv and drains outgoing
// bytes via PopWrite; all protocol callbacks fire synchronously inside
// those calls.
//
//repolint:pooled
type Core struct {
	IsServer bool //repolint:keep connection identity, fixed at NewCore; Reset rederives nextLocalID from it

	henc *hpack.Encoder
	hdec *hpack.Decoder
	fr   FrameReader

	// Stream tables, keyed by a per-connection dense stream index:
	// stream IDs ascend by 2 per initiator, so (id-1)/2 (odd, client
	// initiated) and id/2-1 (even, pushes) are dense slice indices.
	// Slices replace the old map so the per-stream hot path (every DATA
	// frame, every window update) is an index, not a hash lookup.
	oddStreams  []*Stream
	evenStreams []*Stream
	numStreams  int
	allStreams  []*Stream // every stream created this connection, for Reset recycling
	freeStreams []*Stream

	nextLocalID  uint32
	lastPeerID   uint32
	local, peer  Settings
	settingsRecv bool

	sendWindow int64 // connection-level credit for sending
	recvWindow int64

	Tree *PriorityTree

	// sendableFn is the sendable method bound once at construction: the
	// scheduler passes this field on every write, so the hot send path
	// reads a cached funcval instead of materializing a method value.
	sendableFn func(*Stream) bool //repolint:keep bound method value, cached at NewCore

	// PushAtRoot, when true, attaches pushed streams at the tree root
	// instead of as children of their parent stream (an ablation of the
	// h2o default).
	PushAtRoot bool

	ctrl       [][]byte // encoded control frames, FIFO (ctrlHead = first live)
	ctrlHead   int
	ctrlArena  []byte   //repolint:keep append-only encode arena; never rewound, stale blocks fall to the GC
	hdrArena   []byte   //repolint:keep append-only DATA-header arena; never rewound
	popScratch [][]byte //repolint:keep reused chunk list for the PopWrite compat path; overwritten per call

	// Scratch frame structs for the hot control-frame paths: queueCtrl
	// serializes the frame into the arena before returning, so one
	// reusable struct per type is enough.
	hfScratch  HeadersFrame      //repolint:keep scratch frame, fully rewritten before each use
	ppScratch  PushPromiseFrame  //repolint:keep scratch frame, fully rewritten before each use
	wuScratch  WindowUpdateFrame //repolint:keep scratch frame, fully rewritten before each use
	setScratch SettingsFrame     //repolint:keep scratch frame, fully rewritten before each use
	started    bool
	goingAway  bool
	prefaceGot int // client preface bytes consumed (server side)

	// pushWasEnabled records that this side ever advertised ENABLE_PUSH=1.
	// A PUSH_PROMISE arriving after a mid-connection disable (racing our
	// SETTINGS on the wire) is then a per-stream refusal, not the
	// connection error an always-disabled endpoint must raise (RFC 7540
	// 6.6 only demands the connection error once the setting was
	// acknowledged).
	pushWasEnabled bool

	// continuation reassembly state
	cont *contState

	// Callbacks. All may be nil.
	OnHeaders     func(st *Stream, fields []hpack.HeaderField, endStream bool) //repolint:keep owned by the pooled Client/Server wrappers
	OnData        func(st *Stream, data []byte, endStream bool)                //repolint:keep owned by the pooled Client/Server wrappers
	OnPushPromise func(parent, promised *Stream, fields []hpack.HeaderField)   //repolint:keep owned by the pooled Client/Server wrappers
	OnRST         func(st *Stream, code ErrCode)                               //repolint:keep owned by the pooled Client/Server wrappers
	OnSettings    func(s Settings)                                             //repolint:keep owned by the pooled Client/Server wrappers
	OnGoAway      func(f *GoAwayFrame)                                         //repolint:keep owned by the pooled Client/Server wrappers
	OnConnError   func(err ConnError)                                          //repolint:keep owned by the pooled Client/Server wrappers
	OnStreamSent  func(st *Stream)                                             //repolint:keep owned by the wrappers; fires when the local side finishes sending st
	OnWritable    func()                                                       //repolint:keep owned by the wrappers; fires when data becomes available to send

	// stats
	FramesSent, FramesRecvd int64
	DataBytesSent           int64
	PushesSent, PushesRecvd int64
}

type contState struct {
	streamID   uint32
	isPush     bool
	promisedID uint32
	endStream  bool
	prio       *PriorityParam
	buf        []byte
}

// NewCore builds a connection core. local describes our advertised
// settings.
func NewCore(isServer bool, local Settings) *Core {
	c := &Core{
		IsServer: isServer,
		henc:     hpack.NewEncoder(),
		hdec:     hpack.NewDecoder(),
		local:    local,
		peer:     DefaultSettings(),
		// Connection-level windows always start at 65535 (RFC 7540
		// 6.9.2); SETTINGS_INITIAL_WINDOW_SIZE affects stream windows only.
		sendWindow: DefaultInitialWindow,
		recvWindow: DefaultInitialWindow,
		Tree:       NewPriorityTree(),
	}
	c.sendableFn = c.sendable
	c.pushWasEnabled = local.EnablePush
	c.hdec.SetAllowedMaxDynamicTableSize(local.HeaderTableSize)
	if isServer {
		c.nextLocalID = 2
	} else {
		c.nextLocalID = 1
	}
	return c
}

// Reset re-arms the core for a fresh connection with the given advertised
// settings, recycling every buffer, stream struct and priority node the
// previous connection grew: a pooled core runs its steady-state
// connection without re-growing any of them. Callbacks installed on the
// core are preserved (the pooled Client/Server wrappers own them); stats
// are zeroed. The caller must guarantee the previous connection is fully
// torn down — no transport still references the core.
func (c *Core) Reset(local Settings) {
	for _, st := range c.allStreams {
		for i := range st.outChunks {
			st.outChunks[i] = nil
		}
		*st = Stream{outChunks: st.outChunks[:0]}
		c.freeStreams = append(c.freeStreams, st)
	}
	c.allStreams = c.allStreams[:0]
	clearStreamSlice(c.oddStreams)
	clearStreamSlice(c.evenStreams)
	c.oddStreams, c.evenStreams = c.oddStreams[:0], c.evenStreams[:0]
	c.numStreams = 0

	c.henc.Reset()
	c.hdec.Reset()
	c.hdec.SetAllowedMaxDynamicTableSize(local.HeaderTableSize)
	c.fr.Reset()
	c.Tree.Reset()

	c.local, c.peer = local, DefaultSettings()
	c.settingsRecv = false
	c.sendWindow, c.recvWindow = DefaultInitialWindow, DefaultInitialWindow
	c.PushAtRoot = false
	for i := c.ctrlHead; i < len(c.ctrl); i++ {
		c.ctrl[i] = nil
	}
	c.ctrl, c.ctrlHead = c.ctrl[:0], 0
	c.started, c.goingAway, c.prefaceGot = false, false, 0
	c.pushWasEnabled = local.EnablePush
	c.cont = nil
	if c.IsServer {
		c.nextLocalID = 2
	} else {
		c.nextLocalID = 1
	}
	c.lastPeerID = 0
	c.FramesSent, c.FramesRecvd, c.DataBytesSent = 0, 0, 0
	c.PushesSent, c.PushesRecvd = 0, 0
}

func clearStreamSlice(s []*Stream) {
	for i := range s {
		s[i] = nil
	}
}

// maxTrackedStreamID bounds the stream IDs admitted into the dense
// stream/priority tables. The tables are indexed by id/2, so an
// arbitrary peer-chosen ID (stream IDs may be sparse, and PRIORITY may
// reference any idle ID) must not translate into an arbitrary slice
// length; beyond this bound the connection is torn down instead. The
// old map-based tables were bounded by live-stream count; this keeps
// the slice tables bounded by ID range (<= ~4 MB of nil slots).
const maxTrackedStreamID = 1 << 20

// getStream returns the stream with id, nil when unknown (or id 0).
//
//repolint:hotpath
func (c *Core) getStream(id uint32) *Stream {
	if id == 0 {
		return nil
	}
	if id%2 == 1 {
		if i := int(id-1) / 2; i < len(c.oddStreams) {
			return c.oddStreams[i]
		}
		return nil
	}
	if i := int(id)/2 - 1; i < len(c.evenStreams) {
		return c.evenStreams[i]
	}
	return nil
}

// setStream installs st in its dense table slot, growing the table to
// cover the index.
//
//repolint:hotpath
func (c *Core) setStream(st *Stream) {
	tab := &c.evenStreams
	i := int(st.ID)/2 - 1
	if st.ID%2 == 1 {
		tab = &c.oddStreams
		i = int(st.ID-1) / 2
	}
	for len(*tab) <= i {
		*tab = append(*tab, nil)
	}
	if (*tab)[i] == nil {
		c.numStreams++
	}
	(*tab)[i] = st
}

// delStream clears st's table slot.
func (c *Core) delStream(id uint32) {
	tab := c.evenStreams
	i := int(id)/2 - 1
	if id%2 == 1 {
		tab = c.oddStreams
		i = int(id-1) / 2
	}
	if i < len(tab) && tab[i] != nil {
		tab[i] = nil
		c.numStreams--
	}
}

// forEachStream invokes fn for every live stream.
func (c *Core) forEachStream(fn func(*Stream)) {
	for _, st := range c.oddStreams {
		if st != nil {
			fn(st)
		}
	}
	for _, st := range c.evenStreams {
		if st != nil {
			fn(st)
		}
	}
}

// Start queues the connection preface (clients) and initial SETTINGS.
func (c *Core) Start() {
	if c.started {
		return
	}
	c.started = true
	if !c.IsServer {
		c.pushCtrl(prefaceChunk)
	}
	c.local.fillFrame(&c.setScratch)
	c.queueCtrl(&c.setScratch)
	// Enlarge the connection receive window beyond the 64 KB default, as
	// browsers do, so connection flow control never throttles the testbed
	// unless configured to.
	if extra := int64(c.local.InitialWindowSize) * 4; extra > 0 {
		c.recvWindow += extra
		c.queueWindowUpdate(0, uint32(extra))
	}
	c.wake()
}

// PeerSettings returns the last SETTINGS received from the peer.
func (c *Core) PeerSettings() Settings { return c.peer }

// LocalSettings returns our advertised settings.
func (c *Core) LocalSettings() Settings { return c.local }

// Stream returns the stream with the given id, or nil.
func (c *Core) Stream(id uint32) *Stream { return c.getStream(id) }

// NumStreams returns the number of non-closed streams.
func (c *Core) NumStreams() int { return c.numStreams }

//repolint:hotpath
func (c *Core) wake() {
	if c.OnWritable != nil {
		c.OnWritable()
	}
}

// settingsAckFrame is the shared SETTINGS ack; queueCtrl only reads it.
var settingsAckFrame = &SettingsFrame{Ack: true}

// clientPrefaceBytes is the shared, immutable preface chunk; transports
// treat queued slices as read-only, so one copy serves every connection.
var prefaceChunk = []byte(ClientPreface)

// queueCtrl encodes a control frame into the connection's append-only
// control arena and queues the resulting subslice. Arena blocks are never
// rewound, so queued frames stay valid while the transport references
// them; when an append outgrows the current block the slice reallocates
// and the old block is left to the GC once its frames are consumed.
//
//repolint:hotpath
func (c *Core) queueCtrl(f Frame) {
	const ctrlBlock = 4096
	if cap(c.ctrlArena)-len(c.ctrlArena) < 256 {
		c.ctrlArena = make([]byte, 0, ctrlBlock)
	}
	start := len(c.ctrlArena)
	c.ctrlArena = AppendFrame(c.ctrlArena, f)
	c.pushCtrl(c.ctrlArena[start:len(c.ctrlArena):len(c.ctrlArena)])
	c.wake()
}

//repolint:owns queued ctrl bytes ride c.ctrl until popCtrl hands them to the transport
//repolint:hotpath
func (c *Core) pushCtrl(b []byte) {
	c.ctrl = append(c.ctrl, b)
}

//repolint:hotpath
func (c *Core) popCtrl() []byte {
	b := c.ctrl[c.ctrlHead]
	c.ctrl[c.ctrlHead] = nil
	c.ctrlHead++
	if c.ctrlHead == len(c.ctrl) {
		c.ctrl, c.ctrlHead = c.ctrl[:0], 0
	}
	return b
}

func (c *Core) ctrlPending() bool { return c.ctrlHead < len(c.ctrl) }

// queueWindowUpdate queues a WINDOW_UPDATE through the scratch struct
// (the flow-control hot path).
//
//repolint:hotpath
func (c *Core) queueWindowUpdate(streamID, inc uint32) {
	c.wuScratch = WindowUpdateFrame{StreamID: streamID, Increment: inc}
	c.queueCtrl(&c.wuScratch)
}

func (c *Core) connError(code ErrCode, msg string) {
	if c.goingAway {
		return
	}
	c.goingAway = true
	err := ConnError{code, msg}
	c.queueCtrl(&GoAwayFrame{LastStreamID: c.lastPeerID, Code: code, Debug: []byte(msg)})
	if c.OnConnError != nil {
		c.OnConnError(err)
	}
}

// GoAway initiates a local shutdown of the connection: a GOAWAY frame
// carrying the highest peer stream ID processed is queued (and still
// flushes through the normal send path), and the core stops processing
// further input. Fault injection uses it to kill a healthy connection
// mid-load; unlike connError it is not an error locally, so OnConnError
// does not fire.
func (c *Core) GoAway(code ErrCode) {
	if c.goingAway {
		return
	}
	c.goingAway = true
	c.queueCtrl(&GoAwayFrame{LastStreamID: c.lastPeerID, Code: code})
}

// GoingAway reports whether the connection is shutting down (GOAWAY sent
// or received, or a connection error raised).
func (c *Core) GoingAway() bool { return c.goingAway }

// SetEnablePush changes our advertised ENABLE_PUSH mid-connection,
// announcing it to the peer with a single-parameter SETTINGS frame. A
// client uses it to turn push off while a connection is live; promises
// already racing toward us are refused per stream (see finishPushPromise)
// rather than treated as a connection error.
func (c *Core) SetEnablePush(enabled bool) {
	if c.local.EnablePush == enabled {
		return
	}
	c.local.EnablePush = enabled
	if enabled {
		c.pushWasEnabled = true
	}
	v := uint32(0)
	if enabled {
		v = 1
	}
	c.setScratch.Ack = false
	c.setScratch.Params = append(c.setScratch.Params[:0], Setting{SettingEnablePush, v})
	c.queueCtrl(&c.setScratch)
}

// AbortPushes resets every live pushed stream with code (fault
// injection: a server abandoning its in-flight pushes mid-load) and
// returns the number reset.
func (c *Core) AbortPushes(code ErrCode) int {
	n := 0
	for _, st := range c.evenStreams {
		if st != nil && st.IsPush && st.State != StateClosed {
			st.Reset(code)
			n++
		}
	}
	return n
}

func (c *Core) newStream(id uint32, state StreamState) *Stream {
	var st *Stream
	if n := len(c.freeStreams); n > 0 {
		st = c.freeStreams[n-1]
		c.freeStreams[n-1] = nil
		c.freeStreams = c.freeStreams[:n-1]
	} else {
		st = &Stream{}
	}
	outChunks := st.outChunks[:0]
	*st = Stream{
		ID:         id,
		core:       c,
		State:      state,
		sendWindow: int64(c.peer.InitialWindowSize),
		recvWindow: int64(c.local.InitialWindowSize),
		pauseAt:    -1,
		outChunks:  outChunks,
	}
	c.allStreams = append(c.allStreams, st)
	c.setStream(st)
	c.Tree.Bind(st)
	return st
}

func (c *Core) closeStream(st *Stream) {
	if st.State == StateClosed {
		return
	}
	st.State = StateClosed
	for i := range st.outChunks {
		st.outChunks[i] = nil
	}
	st.outChunks, st.outHead, st.outOff, st.outLen = st.outChunks[:0], 0, 0, 0
	c.delStream(st.ID)
	c.Tree.Remove(st.ID)
	c.releaseGatesOn(st)
}

// releaseGatesOn clears interleave resume gates waiting on st. Called on
// both completion (finishOut) and abnormal close (reset, abort): a gate
// waiting on a dead stream would otherwise pause its holder forever —
// an aborted pushed child must not wedge the interleaved base document.
func (c *Core) releaseGatesOn(st *Stream) {
	c.forEachStream(func(other *Stream) {
		if other.resumeOn != nil && other.resumeOn[st.ID] {
			delete(other.resumeOn, st.ID)
			if len(other.resumeOn) == 0 {
				other.Resume()
			}
		}
	})
}

// --- client-side API ---

// encodeOrPre emits a header block: the pre-encoded bytes when pe is
// applicable at this point of the connection (a memcpy plus the replayed
// table insertions), the live encoder otherwise. Either way the wire
// bytes are identical; pre-encoding only moves the work to prepare time.
func (c *Core) encodeOrPre(fields []hpack.HeaderField, pe *hpack.PreEncoded, seqPos int) []byte {
	if pe != nil && c.henc.CanUsePreEncoded(*pe, seqPos) {
		c.henc.ApplyPreEncoded(*pe)
		return pe.Block
	}
	return c.henc.EncodeBlock(fields)
}

// HeaderBlocksSent returns the number of header blocks this connection's
// encoder has emitted; pre-encoded sequences use it as their position
// check (see hpack.PreEncoded).
func (c *Core) HeaderBlocksSent() int { return c.henc.BlockCount() }

// StartRequest opens a new client stream carrying a request without a
// body. prio, when non-nil, is sent as the HEADERS priority block.
func (c *Core) StartRequest(fields []hpack.HeaderField, prio *PriorityParam) *Stream {
	return c.StartRequestPre(fields, nil, prio)
}

// StartRequestPre is StartRequest with an optional prepare-time
// pre-encoded header block, used when it matches the connection's
// encoder state (request blocks are pre-encoded as a connection's first
// block) and ignored otherwise.
func (c *Core) StartRequestPre(fields []hpack.HeaderField, pe *hpack.PreEncoded, prio *PriorityParam) *Stream {
	if c.IsServer {
		panic("h2: StartRequest on server core")
	}
	id := c.nextLocalID
	c.nextLocalID += 2
	st := c.newStream(id, StateHalfClosedLocal) // GET: we send END_STREAM
	block := c.encodeOrPre(fields, pe, 0)
	hf := &c.hfScratch
	*hf = HeadersFrame{
		StreamID:   id,
		EndStream:  true,
		EndHeaders: true,
	}
	if prio != nil {
		hf.HasPriority = true
		hf.Priority = *prio
		c.Tree.Update(id, *prio)
	}
	c.queueHeaderBlock(hf, block)
	st.headersSent = true
	return st
}

// queueHeaderBlock splits an oversize header block into CONTINUATIONs.
//
//repolint:owns the block rides the queued frames until written
func (c *Core) queueHeaderBlock(hf *HeadersFrame, block []byte) {
	maxFS := int(c.peer.MaxFrameSize)
	overhead := 0
	if hf.HasPriority {
		overhead = 5
	}
	if len(block)+overhead <= maxFS {
		hf.Block = block
		hf.EndHeaders = true
		c.queueCtrl(hf)
		return
	}
	first := maxFS - overhead
	hf.Block = block[:first]
	hf.EndHeaders = false
	c.queueCtrl(hf)
	block = block[first:]
	for len(block) > 0 {
		n := maxFS
		if n > len(block) {
			n = len(block)
		}
		c.queueCtrl(&ContinuationFrame{
			StreamID:   hf.StreamID,
			Block:      block[:n],
			EndHeaders: n == len(block),
		})
		block = block[n:]
	}
}

// SendPriority queues a PRIORITY frame and updates the local tree.
func (c *Core) SendPriority(id uint32, p PriorityParam) {
	c.Tree.Update(id, p)
	c.queueCtrl(&PriorityFrame{StreamID: id, Priority: p})
}

// --- server-side API ---

// SendResponseHeaders queues the response HEADERS for st.
func (c *Core) SendResponseHeaders(st *Stream, fields []hpack.HeaderField, endStream bool) {
	c.SendResponseHeadersPre(st, fields, nil, 0, endStream)
}

// SendResponseHeadersPre is SendResponseHeaders with an optional
// pre-encoded block valid at sequence position seqPos (ignored when the
// encoder is elsewhere).
func (c *Core) SendResponseHeadersPre(st *Stream, fields []hpack.HeaderField, pe *hpack.PreEncoded, seqPos int, endStream bool) {
	block := c.encodeOrPre(fields, pe, seqPos)
	hf := &c.hfScratch
	*hf = HeadersFrame{StreamID: st.ID, EndStream: endStream}
	c.queueHeaderBlock(hf, block)
	st.headersSent = true
	if endStream {
		st.outClosed = true
		c.finishOut(st)
	}
	switch st.State {
	case StateReservedLocal:
		st.State = StateHalfClosedRemote
	}
}

// Push reserves a promised stream answering reqFields, announced on
// parent. It returns nil when the peer disabled push.
func (c *Core) Push(parent *Stream, reqFields []hpack.HeaderField) *Stream {
	return c.PushPre(parent, reqFields, nil, 0)
}

// PushPre is Push with an optional pre-encoded PUSH_PROMISE block valid
// at sequence position seqPos (ignored when the encoder is elsewhere).
func (c *Core) PushPre(parent *Stream, reqFields []hpack.HeaderField, pe *hpack.PreEncoded, seqPos int) *Stream {
	if !c.IsServer {
		panic("h2: Push on client core")
	}
	if !c.peer.EnablePush {
		return nil
	}
	id := c.nextLocalID
	c.nextLocalID += 2
	st := c.newStream(id, StateReservedLocal)
	st.IsPush = true
	st.PushParent = parent.ID
	// h2o default: the pushed stream depends on the stream that triggered
	// it with default weight, so it is starved until the parent finishes.
	// Ablation: attach at the root with a CSS-class weight, letting the
	// push compete with the parent immediately.
	parentID := parent.ID
	weight := uint8(DefaultWeight)
	if c.PushAtRoot {
		parentID = 0
		weight = 219
	}
	c.Tree.Update(id, PriorityParam{ParentID: parentID, Weight: weight})
	block := c.encodeOrPre(reqFields, pe, seqPos)
	c.ppScratch = PushPromiseFrame{
		StreamID:   parent.ID,
		PromisedID: id,
		Block:      block,
		EndHeaders: true,
	}
	c.queueCtrl(&c.ppScratch)
	c.PushesSent++
	return st
}

// --- receive path ---

// Recv feeds transport bytes into the connection. The slice is retained
// by the frame reader until parsed (zero-copy), so the caller must not
// mutate it after the call; callbacks that want to keep payload bytes
// must copy them (frame payloads are only valid during the callback).
//
//repolint:owns fed to the zero-copy frame reader, which aliases it until parsed
//repolint:hotpath
func (c *Core) Recv(b []byte) {
	if c.goingAway {
		return
	}
	if c.IsServer && !c.prefaceStripped() {
		b = c.stripPreface(b)
		if b == nil {
			return
		}
	}
	c.fr.Feed(b)
	for {
		f, err := c.fr.Next()
		if err != nil {
			if ce, ok := err.(ConnError); ok {
				c.connError(ce.Code, ce.Msg)
			} else {
				c.connError(ErrCodeProtocol, err.Error())
			}
			return
		}
		if f == nil {
			return
		}
		c.FramesRecvd++
		c.handleFrame(f)
		if c.goingAway {
			return
		}
	}
}

func (c *Core) prefaceStripped() bool { return c.prefaceGot >= len(ClientPreface) }

func (c *Core) stripPreface(b []byte) []byte {
	need := len(ClientPreface) - c.prefaceGot
	n := len(b)
	if n > need {
		n = need
	}
	for i := 0; i < n; i++ {
		if b[i] != ClientPreface[c.prefaceGot+i] {
			c.connError(ErrCodeProtocol, "bad connection preface")
			return nil
		}
	}
	c.prefaceGot += n
	if n == len(b) && c.prefaceGot < len(ClientPreface) {
		return nil
	}
	return b[n:]
}

func (c *Core) handleFrame(f Frame) {
	if c.cont != nil && f.Kind() != FrameContinuation {
		c.connError(ErrCodeProtocol, "expected CONTINUATION")
		return
	}
	switch f := f.(type) {
	case *SettingsFrame:
		c.handleSettings(f)
	case *HeadersFrame:
		c.handleHeaders(f)
	case *ContinuationFrame:
		c.handleContinuation(f)
	case *DataFrame:
		c.handleData(f)
	case *PushPromiseFrame:
		c.handlePushPromise(f)
	case *PriorityFrame:
		if f.StreamID == f.Priority.ParentID {
			c.streamError(f.StreamID, ErrCodeProtocol)
			return
		}
		if f.StreamID > maxTrackedStreamID || f.Priority.ParentID > maxTrackedStreamID {
			c.connError(ErrCodeEnhanceYourCalm, "stream id exceeds tracked range")
			return
		}
		c.Tree.Update(f.StreamID, f.Priority)
	case *RSTStreamFrame:
		if st := c.getStream(f.StreamID); st != nil {
			if c.OnRST != nil {
				c.OnRST(st, f.Code)
			}
			c.closeStream(st)
		}
	case *WindowUpdateFrame:
		c.handleWindowUpdate(f)
	case *PingFrame:
		if !f.Ack {
			c.queueCtrl(&PingFrame{Ack: true, Data: f.Data})
		}
	case *GoAwayFrame:
		c.goingAway = true
		if c.OnGoAway != nil {
			c.OnGoAway(f)
		}
	}
}

func (c *Core) handleSettings(f *SettingsFrame) {
	if f.Ack {
		return
	}
	old := c.peer
	for _, s := range f.Params {
		switch s.ID {
		case SettingHeaderTableSize:
			c.peer.HeaderTableSize = s.Val
			c.henc.SetMaxDynamicTableSize(s.Val)
		case SettingEnablePush:
			if s.Val > 1 {
				c.connError(ErrCodeProtocol, "ENABLE_PUSH not 0/1")
				return
			}
			c.peer.EnablePush = s.Val == 1
		case SettingMaxConcurrentStreams:
			c.peer.MaxConcurrentStreams = s.Val
		case SettingInitialWindowSize:
			if s.Val > maxWindow {
				c.connError(ErrCodeFlowControl, "INITIAL_WINDOW_SIZE too large")
				return
			}
			c.peer.InitialWindowSize = s.Val
			// Adjust all stream send windows by the delta (RFC 6.9.2).
			delta := int64(s.Val) - int64(old.InitialWindowSize)
			c.forEachStream(func(st *Stream) { st.sendWindow += delta })
		case SettingMaxFrameSize:
			if s.Val < DefaultMaxFrameSize || s.Val > 1<<24-1 {
				c.connError(ErrCodeProtocol, "bad MAX_FRAME_SIZE")
				return
			}
			c.peer.MaxFrameSize = s.Val
		}
	}
	c.settingsRecv = true
	c.queueCtrl(settingsAckFrame)
	if c.OnSettings != nil {
		c.OnSettings(c.peer)
	}
	c.wake()
}

func (c *Core) handleHeaders(f *HeadersFrame) {
	if f.HasPriority && f.Priority.ParentID == f.StreamID {
		c.streamError(f.StreamID, ErrCodeProtocol)
		return
	}
	if !f.EndHeaders {
		var prio *PriorityParam
		if f.HasPriority {
			p := f.Priority
			prio = &p
		}
		c.cont = &contState{
			streamID:  f.StreamID,
			endStream: f.EndStream,
			prio:      prio,
			buf:       append([]byte(nil), f.Block...),
		}
		return
	}
	var prio *PriorityParam
	if f.HasPriority {
		p := f.Priority
		prio = &p
	}
	c.finishHeaders(f.StreamID, f.Block, f.EndStream, prio)
}

func (c *Core) handleContinuation(f *ContinuationFrame) {
	if c.cont == nil || c.cont.streamID != f.StreamID {
		c.connError(ErrCodeProtocol, "unexpected CONTINUATION")
		return
	}
	c.cont.buf = append(c.cont.buf, f.Block...)
	if !f.EndHeaders {
		return
	}
	cs := c.cont
	c.cont = nil
	if cs.isPush {
		c.finishPushPromise(cs.streamID, cs.promisedID, cs.buf)
		return
	}
	c.finishHeaders(cs.streamID, cs.buf, cs.endStream, cs.prio)
}

func (c *Core) finishHeaders(streamID uint32, block []byte, endStream bool, prio *PriorityParam) {
	fields, err := c.hdec.DecodeBlock(block)
	if err != nil {
		c.connError(ErrCodeCompression, err.Error())
		return
	}
	st := c.getStream(streamID)
	if st == nil {
		if c.IsServer {
			// New request stream.
			if streamID%2 == 0 || streamID <= c.lastPeerID {
				c.connError(ErrCodeProtocol, fmt.Sprintf("bad client stream id %d", streamID))
				return
			}
			if streamID > maxTrackedStreamID {
				c.connError(ErrCodeEnhanceYourCalm, "stream id exceeds tracked range")
				return
			}
			c.lastPeerID = streamID
			st = c.newStream(streamID, StateOpen)
			if endStream {
				st.State = StateHalfClosedRemote
			}
		} else {
			// Response headers for an unknown stream: ignore (already reset).
			return
		}
	} else if !c.IsServer {
		switch st.State {
		case StateReservedRemote:
			st.State = StateHalfClosedLocal
		}
		if endStream {
			c.peerClosed(st)
		}
	}
	if prio != nil {
		if prio.ParentID > maxTrackedStreamID {
			c.connError(ErrCodeEnhanceYourCalm, "stream id exceeds tracked range")
			return
		}
		c.Tree.Update(streamID, *prio)
	}
	if c.OnHeaders != nil {
		c.OnHeaders(st, fields, endStream)
	}
}

func (c *Core) handlePushPromise(f *PushPromiseFrame) {
	if c.IsServer {
		c.connError(ErrCodeProtocol, "client sent PUSH_PROMISE")
		return
	}
	if !c.local.EnablePush && !c.pushWasEnabled {
		// Push was never enabled on this connection; a compliant server
		// must not push. Treat as a connection error per RFC 7540 6.6. A
		// mid-connection disable instead refuses racing promises per
		// stream in finishPushPromise, after the header block has fed the
		// HPACK decoder (skipping the decode would desync the table).
		c.connError(ErrCodeProtocol, "PUSH_PROMISE with push disabled")
		return
	}
	if !f.EndHeaders {
		c.cont = &contState{
			streamID:   f.StreamID,
			isPush:     true,
			promisedID: f.PromisedID,
			buf:        append([]byte(nil), f.Block...),
		}
		return
	}
	c.finishPushPromise(f.StreamID, f.PromisedID, f.Block)
}

func (c *Core) finishPushPromise(parentID, promisedID uint32, block []byte) {
	fields, err := c.hdec.DecodeBlock(block)
	if err != nil {
		c.connError(ErrCodeCompression, err.Error())
		return
	}
	if !c.local.EnablePush {
		// Push disabled mid-connection: this promise raced our SETTINGS on
		// the wire. Refuse it per stream (the decode above kept the HPACK
		// table in sync).
		c.queueCtrl(&RSTStreamFrame{StreamID: promisedID, Code: ErrCodeRefusedStream})
		return
	}
	parent := c.getStream(parentID)
	if parent == nil {
		// Promise on a closed stream: reset the promised stream.
		c.queueCtrl(&RSTStreamFrame{StreamID: promisedID, Code: ErrCodeRefusedStream})
		return
	}
	if promisedID%2 != 0 {
		c.connError(ErrCodeProtocol, "odd promised stream id")
		return
	}
	if promisedID > maxTrackedStreamID {
		c.connError(ErrCodeEnhanceYourCalm, "stream id exceeds tracked range")
		return
	}
	st := c.newStream(promisedID, StateReservedRemote)
	st.IsPush = true
	st.PushParent = parentID
	c.PushesRecvd++
	if c.OnPushPromise != nil {
		c.OnPushPromise(parent, st, fields)
	}
}

//repolint:hotpath
func (c *Core) handleData(f *DataFrame) {
	st := c.getStream(f.StreamID)
	n := int64(len(f.Data))
	// Connection-level accounting happens regardless of stream state.
	c.recvWindow -= n
	if c.recvWindow < 0 {
		c.connError(ErrCodeFlowControl, "connection flow control violated")
		return
	}
	// Replenish the connection window at half occupancy.
	if c.recvWindow < int64(c.local.InitialWindowSize)*2 {
		inc := int64(c.local.InitialWindowSize) * 4
		c.recvWindow += inc
		c.queueWindowUpdate(0, uint32(inc))
	}
	if st == nil {
		// Data for a reset/unknown stream: discard (count against conn
		// window only).
		return
	}
	st.recvWindow -= n
	if st.recvWindow < 0 {
		c.streamError(st.ID, ErrCodeFlowControl)
		return
	}
	if st.recvWindow < int64(c.local.InitialWindowSize)/2 {
		inc := int64(c.local.InitialWindowSize)
		st.recvWindow += inc
		c.queueWindowUpdate(st.ID, uint32(inc))
	}
	st.recvdBody += int(n)
	if f.EndStream {
		c.peerClosed(st)
	}
	if c.OnData != nil {
		c.OnData(st, f.Data, f.EndStream)
	}
}

func (c *Core) peerClosed(st *Stream) {
	switch st.State {
	case StateOpen:
		st.State = StateHalfClosedRemote
	case StateHalfClosedLocal:
		c.closeStream(st)
	}
}

//repolint:hotpath
func (c *Core) handleWindowUpdate(f *WindowUpdateFrame) {
	if f.StreamID == 0 {
		c.sendWindow += int64(f.Increment)
		if c.sendWindow > maxWindow {
			c.connError(ErrCodeFlowControl, "connection window overflow")
			return
		}
	} else if st := c.getStream(f.StreamID); st != nil {
		st.sendWindow += int64(f.Increment)
		if st.sendWindow > maxWindow {
			c.streamError(st.ID, ErrCodeFlowControl)
			return
		}
	}
	c.wake()
}

func (c *Core) streamError(id uint32, code ErrCode) {
	c.queueCtrl(&RSTStreamFrame{StreamID: id, Code: code})
	if st := c.getStream(id); st != nil {
		c.closeStream(st)
	}
}

// --- send path ---

// sendable reports whether st has DATA it is allowed to send now.
//
//repolint:hotpath
func (c *Core) sendable(st *Stream) bool {
	if st.State == StateClosed || st.State == StateReservedLocal || !st.headersSent {
		return false
	}
	if c.sendWindow <= 0 || st.sendWindow <= 0 {
		return false
	}
	if st.Paused() {
		return false
	}
	if st.outLen > 0 {
		return true
	}
	// A bare END_STREAM still needs to be sent.
	return st.outClosed && !st.outDone()
}

func (st *Stream) outDone() bool {
	switch st.State {
	case StateHalfClosedLocal, StateClosed:
		return true
	}
	return false
}

// HasPending reports whether PopWrite would produce bytes.
//
//repolint:hotpath
func (c *Core) HasPending() bool {
	if c.ctrlPending() {
		return true
	}
	return c.Tree.Next(c.sendableFn) != nil
}

// arenaHeader encodes a frame header into the connection's append-only
// header arena and returns it as a capacity-capped subslice. Arena blocks
// are never rewound or reused, so the returned slice stays valid for as
// long as the transport references it; exhausted blocks are simply
// dropped for the GC once all their headers are consumed.
//
//repolint:hotpath
func (c *Core) arenaHeader(length int, t FrameType, flags Flags, streamID uint32) []byte {
	const arenaBlock = 4096
	if cap(c.hdrArena)-len(c.hdrArena) < frameHeaderLen {
		c.hdrArena = make([]byte, 0, arenaBlock)
	}
	n := len(c.hdrArena)
	c.hdrArena = appendFrameHeader(c.hdrArena, length, t, flags, streamID)
	return c.hdrArena[n:len(c.hdrArena):len(c.hdrArena)]
}

// AppendWrite appends the wire bytes of the next frame to chunks and
// returns the extended list: a control frame as one pre-encoded slice, a
// DATA frame as its header (from the arena) followed by zero-copy
// subslices of the stream's queued body. It appends nothing when there is
// nothing to send. max bounds the DATA payload as in PopWrite. Control
// frames always precede DATA, so PUSH_PROMISE and HEADERS cannot be
// overtaken by body bytes.
//
// The returned slices are owned by the connection until the transport has
// consumed them; the chunks container itself may be reused by the caller.
//
//repolint:hotpath
func (c *Core) AppendWrite(chunks [][]byte, max int) [][]byte {
	if c.ctrlPending() {
		out := c.popCtrl()
		c.FramesSent++
		return append(chunks, out)
	}
	st := c.Tree.Next(c.sendableFn)
	if st == nil {
		return chunks
	}
	n := st.outLen
	if m := int(c.peer.MaxFrameSize); n > m {
		n = m
	}
	if max > 0 && n > max {
		n = max
	}
	if w := int(st.sendWindow); n > w {
		n = w
	}
	if w := int(c.sendWindow); n > w {
		n = w
	}
	// Respect a pause offset mid-buffer.
	if st.pauseAt >= 0 {
		remain := st.pauseAt - st.sentBody
		if n > remain {
			n = remain
		}
	}
	if n < 0 {
		n = 0
	}
	st.outLen -= n
	st.sentBody += n
	st.sendWindow -= int64(n)
	c.sendWindow -= int64(n)
	c.DataBytesSent += int64(n)
	c.Tree.Charge(st.ID, n)
	end := st.outClosed && st.outLen == 0 && !st.Paused()
	var fl Flags
	if end {
		fl |= FlagEndStream
	}
	chunks = append(chunks, c.arenaHeader(n, FrameData, fl, st.ID))
	for remain := n; remain > 0; {
		b := st.outChunks[st.outHead]
		take := len(b) - st.outOff
		if take > remain {
			take = remain
		}
		chunks = append(chunks, b[st.outOff:st.outOff+take:st.outOff+take])
		st.outOff += take
		remain -= take
		if st.outOff == len(b) {
			st.outChunks[st.outHead] = nil
			st.outHead++
			st.outOff = 0
		}
	}
	if st.outHead == len(st.outChunks) {
		st.outChunks = st.outChunks[:0]
		st.outHead = 0
	}
	c.FramesSent++
	if end {
		c.finishOut(st)
	}
	return chunks
}

// PopWrite returns the next chunk of bytes to hand to the transport, at
// most max bytes of control frames or a single DATA frame. It returns nil
// when there is nothing to send. It is the flattening wrapper around
// AppendWrite for real (io.Writer-style) transports; the simulator path
// uses AppendWrite + netem WriteV to avoid the copy.
func (c *Core) PopWrite(max int) []byte {
	c.popScratch = c.AppendWrite(c.popScratch[:0], max)
	parts := c.popScratch
	switch len(parts) {
	case 0:
		return nil
	case 1:
		out := parts[0]
		parts[0] = nil
		return out
	}
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	out := make([]byte, 0, total)
	for i, p := range parts {
		out = append(out, p...)
		parts[i] = nil
	}
	return out
}

// finishOut handles local send completion: state transitions plus
// releasing any interleave gates waiting on this stream.
func (c *Core) finishOut(st *Stream) {
	switch st.State {
	case StateOpen:
		st.State = StateHalfClosedLocal
	case StateHalfClosedRemote:
		c.closeStream(st)
	}
	if c.OnStreamSent != nil {
		c.OnStreamSent(st)
	}
	c.releaseGatesOn(st)
}
