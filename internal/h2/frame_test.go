package h2

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func roundTrip(t *testing.T, f Frame) Frame {
	t.Helper()
	var r FrameReader
	r.Feed(AppendFrame(nil, f))
	got, err := r.Next()
	if err != nil {
		t.Fatalf("decode %v: %v", f.Kind(), err)
	}
	if got == nil {
		t.Fatalf("decode %v: incomplete", f.Kind())
	}
	return got
}

func TestFrameRoundTrips(t *testing.T) {
	frames := []Frame{
		&DataFrame{StreamID: 1, Data: []byte("hello"), EndStream: true},
		&DataFrame{StreamID: 3, Data: []byte{}, EndStream: false},
		&HeadersFrame{StreamID: 5, Block: []byte{0x82}, EndHeaders: true, EndStream: true},
		&HeadersFrame{StreamID: 7, Block: []byte{0x82, 0x86}, EndHeaders: false,
			HasPriority: true, Priority: PriorityParam{ParentID: 5, Exclusive: true, Weight: 219}},
		&PriorityFrame{StreamID: 9, Priority: PriorityParam{ParentID: 7, Weight: 15}},
		&RSTStreamFrame{StreamID: 2, Code: ErrCodeCancel},
		&SettingsFrame{Params: []Setting{{SettingEnablePush, 0}, {SettingInitialWindowSize, 1 << 20}}},
		&SettingsFrame{Ack: true},
		&PushPromiseFrame{StreamID: 1, PromisedID: 2, Block: []byte{0x82, 0x84}, EndHeaders: true},
		&PingFrame{Data: [8]byte{1, 2, 3, 4, 5, 6, 7, 8}},
		&PingFrame{Ack: true},
		&GoAwayFrame{LastStreamID: 9, Code: ErrCodeProtocol, Debug: []byte("bye")},
		&WindowUpdateFrame{StreamID: 0, Increment: 65535},
		&WindowUpdateFrame{StreamID: 3, Increment: 1},
		&ContinuationFrame{StreamID: 5, Block: []byte{0x01, 0x02}, EndHeaders: true},
	}
	for _, f := range frames {
		got := roundTrip(t, f)
		if !reflect.DeepEqual(got, f) {
			t.Errorf("round trip %v:\n got %#v\nwant %#v", f.Kind(), got, f)
		}
	}
}

func TestFrameReaderIncrementalFeeding(t *testing.T) {
	var wire []byte
	want := []Frame{
		&DataFrame{StreamID: 1, Data: bytes.Repeat([]byte("x"), 1000)},
		&WindowUpdateFrame{StreamID: 1, Increment: 1000},
		&DataFrame{StreamID: 1, Data: []byte("end"), EndStream: true},
	}
	for _, f := range want {
		wire = AppendFrame(wire, f)
	}
	rng := rand.New(rand.NewSource(5))
	var r FrameReader
	// Frames are only valid until the next Next/Feed call (the reader
	// reuses its scratch buffer and DATA frame), so compare each one as
	// it is produced instead of collecting them.
	gotN := 0
	for len(wire) > 0 {
		n := rng.Intn(7) + 1
		if n > len(wire) {
			n = len(wire)
		}
		r.Feed(wire[:n])
		wire = wire[n:]
		for {
			f, err := r.Next()
			if err != nil {
				t.Fatal(err)
			}
			if f == nil {
				break
			}
			if gotN >= len(want) {
				t.Fatalf("got more than %d frames", len(want))
			}
			if !reflect.DeepEqual(f, want[gotN]) {
				t.Errorf("frame %d mismatch:\n got %#v\nwant %#v", gotN, f, want[gotN])
			}
			gotN++
		}
	}
	if gotN != len(want) {
		t.Fatalf("got %d frames, want %d", gotN, len(want))
	}
}

func TestFrameReaderRejectsOversize(t *testing.T) {
	var r FrameReader
	huge := &DataFrame{StreamID: 1, Data: make([]byte, DefaultMaxFrameSize+1)}
	r.Feed(AppendFrame(nil, huge))
	if _, err := r.Next(); err == nil {
		t.Fatal("oversize frame accepted")
	}
}

func TestFrameReaderSkipsUnknownTypes(t *testing.T) {
	var r FrameReader
	// Unknown type 0xfa frame followed by a PING.
	wire := appendFrameHeader(nil, 4, FrameType(0xfa), 0, 0)
	wire = append(wire, 1, 2, 3, 4)
	wire = AppendFrame(wire, &PingFrame{Data: [8]byte{9}})
	r.Feed(wire)
	f, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if f == nil || f.Kind() != FramePing {
		t.Fatalf("got %v, want PING after unknown frame", f)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name string
		typ  FrameType
		fl   Flags
		id   uint32
		pay  []byte
	}{
		{"DATA on stream 0", FrameData, 0, 0, []byte("x")},
		{"HEADERS on stream 0", FrameHeaders, FlagEndHeaders, 0, []byte{0x82}},
		{"PRIORITY wrong len", FramePriority, 0, 1, []byte{1, 2, 3}},
		{"RST wrong len", FrameRSTStream, 0, 1, []byte{1}},
		{"SETTINGS on stream", FrameSettings, 0, 1, nil},
		{"SETTINGS bad len", FrameSettings, 0, 0, []byte{1, 2, 3}},
		{"SETTINGS ack payload", FrameSettings, FlagAck, 0, []byte{0, 0, 0, 0, 0, 0}},
		{"PING wrong len", FramePing, 0, 0, []byte{1}},
		{"GOAWAY short", FrameGoAway, 0, 0, []byte{1, 2, 3}},
		{"WINDOW_UPDATE zero", FrameWindowUpdate, 0, 1, []byte{0, 0, 0, 0}},
		{"PUSH_PROMISE short", FramePushPromise, FlagEndHeaders, 1, []byte{0, 0}},
		{"bad DATA padding", FrameData, FlagPadded, 1, []byte{5, 1, 2}},
	}
	for _, tc := range cases {
		if _, err := parseFrame(tc.typ, tc.fl, tc.id, tc.pay); err == nil {
			t.Errorf("%s: no error", tc.name)
		}
	}
}

// Property: any DATA frame payload survives the wire intact, split across
// arbitrary chunk boundaries.
func TestPropertyDataFrameRoundTrip(t *testing.T) {
	f := func(data []byte, id uint32, end bool) bool {
		if len(data) > DefaultMaxFrameSize {
			data = data[:DefaultMaxFrameSize]
		}
		id = id%1000 + 1
		var r FrameReader
		r.Feed(AppendFrame(nil, &DataFrame{StreamID: id, Data: data, EndStream: end}))
		got, err := r.Next()
		if err != nil || got == nil {
			return false
		}
		df, ok := got.(*DataFrame)
		return ok && df.StreamID == id && df.EndStream == end && bytes.Equal(df.Data, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPriorityParamRoundTrip(t *testing.T) {
	f := func(parent uint32, excl bool, weight uint8) bool {
		p := PriorityParam{ParentID: parent & 0x7fffffff, Exclusive: excl, Weight: weight}
		enc := appendPriorityParam(nil, p)
		return parsePriorityParam(enc) == p
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestSettingsValue(t *testing.T) {
	f := &SettingsFrame{Params: []Setting{
		{SettingEnablePush, 1},
		{SettingEnablePush, 0}, // last one wins
	}}
	v, ok := f.Value(SettingEnablePush)
	if !ok || v != 0 {
		t.Fatalf("Value = %d,%v want 0,true", v, ok)
	}
	if _, ok := f.Value(SettingMaxFrameSize); ok {
		t.Fatal("missing setting reported present")
	}
}
