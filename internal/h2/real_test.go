package h2

import (
	"bytes"
	"net"
	"sync"
	"testing"
	"time"
)

// startRealPair runs a server and client over a real net.Pipe with
// goroutine transports — validating that the protocol core is genuinely
// transport-independent.
func startRealPair(t *testing.T, handler func(sw *ServerStream, req Request)) (*Client, *IOConn, func()) {
	t.Helper()
	cconn, sconn := net.Pipe()
	srv := NewServer(DefaultSettings(), handler)
	cl := NewClient(clientSettingsLargeWindow())
	sio := RunIO(srv.Core, sconn)
	cio := RunIO(cl.Core, cconn)
	cleanup := func() {
		cio.Close()
		sio.Close()
	}
	return cl, cio, cleanup
}

func waitOrFail(t *testing.T, ch <-chan struct{}, msg string) {
	t.Helper()
	select {
	case <-ch:
	case <-time.After(5 * time.Second):
		t.Fatal(msg)
	}
}

func TestRealPipeGetRoundTrip(t *testing.T) {
	body := bytes.Repeat([]byte("realpipe"), 8192)
	cl, cio, cleanup := startRealPair(t, func(sw *ServerStream, req Request) {
		sw.Respond(200, "text/html", body)
	})
	defer cleanup()

	var mu sync.Mutex
	var got []byte
	done := make(chan struct{})
	cio.Locked(func(*Core) {
		cl.Request(Request{Method: "GET", Scheme: "https", Authority: "real", Path: "/"},
			RequestOpts{
				OnData: func(chunk []byte) {
					mu.Lock()
					got = append(got, chunk...)
					mu.Unlock()
				},
				OnComplete: func(int) { close(done) },
			})
	})
	waitOrFail(t, done, "response never completed over net.Pipe")
	mu.Lock()
	defer mu.Unlock()
	if !bytes.Equal(got, body) {
		t.Fatalf("body mismatch: %d vs %d bytes", len(got), len(body))
	}
}

func TestRealPipePush(t *testing.T) {
	css := bytes.Repeat([]byte("c"), 4096)
	cl, cio, cleanup := startRealPair(t, func(sw *ServerStream, req Request) {
		psw := sw.Push(Request{Method: "GET", Scheme: "https", Authority: "real", Path: "/p.css"})
		sw.Respond(200, "text/html", []byte("<html/>"))
		if psw != nil {
			psw.Respond(200, "text/css", css)
		}
	})
	defer cleanup()

	var mu sync.Mutex
	var gotCSS []byte
	pushDone := make(chan struct{})
	cl.OnPush = func(parent, promised *ClientStream) bool {
		promised.OnData = func(chunk []byte) {
			mu.Lock()
			gotCSS = append(gotCSS, chunk...)
			mu.Unlock()
		}
		promised.OnComplete = func(int) { close(pushDone) }
		return true
	}
	cio.Locked(func(*Core) {
		cl.Request(Request{Method: "GET", Scheme: "https", Authority: "real", Path: "/"}, RequestOpts{})
	})
	waitOrFail(t, pushDone, "push never completed over net.Pipe")
	mu.Lock()
	defer mu.Unlock()
	if !bytes.Equal(gotCSS, css) {
		t.Fatalf("pushed css mismatch: %d vs %d bytes", len(gotCSS), len(css))
	}
}

func TestRealTCPLoopback(t *testing.T) {
	// Full TCP socket loopback: our h2 over a real kernel connection.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("no loopback listener: %v", err)
	}
	defer ln.Close()
	body := bytes.Repeat([]byte("tcp!"), 50000)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		srv := NewServer(DefaultSettings(), func(sw *ServerStream, req Request) {
			sw.Respond(200, "text/plain", body)
		})
		RunIO(srv.Core, conn)
	}()
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	cl := NewClient(clientSettingsLargeWindow())
	cio := RunIO(cl.Core, conn)
	defer cio.Close()
	var mu sync.Mutex
	total := 0
	done := make(chan struct{})
	cio.Locked(func(*Core) {
		cl.Request(Request{Method: "GET", Scheme: "https", Authority: "tcp", Path: "/"},
			RequestOpts{
				OnData:     func(chunk []byte) { mu.Lock(); total += len(chunk); mu.Unlock() },
				OnComplete: func(int) { close(done) },
			})
	})
	waitOrFail(t, done, "TCP loopback response never completed")
	mu.Lock()
	defer mu.Unlock()
	if total != len(body) {
		t.Fatalf("got %d bytes want %d", total, len(body))
	}
}

func TestRealMultipleSequentialRequests(t *testing.T) {
	cl, cio, cleanup := startRealPair(t, func(sw *ServerStream, req Request) {
		sw.Respond(200, "text/plain", []byte(req.Path))
	})
	defer cleanup()
	for i, path := range []string{"/one", "/two", "/three"} {
		var mu sync.Mutex
		var got []byte
		done := make(chan struct{})
		cio.Locked(func(*Core) {
			cl.Request(Request{Method: "GET", Scheme: "https", Authority: "r", Path: path},
				RequestOpts{
					OnData:     func(chunk []byte) { mu.Lock(); got = append(got, chunk...); mu.Unlock() },
					OnComplete: func(int) { close(done) },
				})
		})
		waitOrFail(t, done, "request "+path+" never completed")
		mu.Lock()
		if string(got) != path {
			t.Fatalf("request %d: got %q want %q", i, got, path)
		}
		mu.Unlock()
	}
}
