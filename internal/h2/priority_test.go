package h2

import "testing"

func newTestStream(id uint32) *Stream {
	c := NewCore(true, DefaultSettings())
	st := &Stream{ID: id, core: c, State: StateOpen, pauseAt: -1}
	return st
}

func sendableAll(*Stream) bool { return true }

func TestPriorityTreeBasics(t *testing.T) {
	tr := NewPriorityTree()
	a, b := newTestStream(1), newTestStream(3)
	tr.Bind(a)
	tr.Bind(b)
	if tr.Len() != 2 {
		t.Fatalf("Len = %d, want 2", tr.Len())
	}
	got := tr.Next(sendableAll)
	if got == nil {
		t.Fatal("Next returned nil with sendable streams")
	}
}

func TestExclusiveInsertionAdoptsChildren(t *testing.T) {
	tr := NewPriorityTree()
	for _, id := range []uint32{1, 3, 5} {
		tr.Bind(newTestStream(id))
	}
	// Stream 7 becomes exclusive child of root: 1,3,5 become its children.
	st7 := newTestStream(7)
	tr.Bind(st7)
	tr.Update(7, PriorityParam{ParentID: 0, Exclusive: true, Weight: 200})
	// Only 7 is sendable at the top; the others sit below it.
	only7 := func(s *Stream) bool { return s.ID == 7 }
	if got := tr.Next(only7); got == nil || got.ID != 7 {
		t.Fatalf("Next = %v, want stream 7", got)
	}
	// With 7 not sendable, its children are reachable.
	not7 := func(s *Stream) bool { return s.ID != 7 }
	if got := tr.Next(not7); got == nil || got.ID == 7 {
		t.Fatalf("Next = %v, want a child of 7", got)
	}
}

func TestDependencyChainStrictOrder(t *testing.T) {
	// Chromium-style: 3 depends on 1, 5 depends on 3. With all sendable,
	// the shallowest (1) always wins — strict ordering.
	tr := NewPriorityTree()
	for _, id := range []uint32{1, 3, 5} {
		tr.Bind(newTestStream(id))
	}
	tr.Update(3, PriorityParam{ParentID: 1, Weight: 219})
	tr.Update(5, PriorityParam{ParentID: 3, Weight: 219})
	if got := tr.Next(sendableAll); got.ID != 1 {
		t.Fatalf("Next = %d, want 1", got.ID)
	}
	no1 := func(s *Stream) bool { return s.ID != 1 }
	if got := tr.Next(no1); got.ID != 3 {
		t.Fatalf("Next = %d, want 3", got.ID)
	}
	no13 := func(s *Stream) bool { return s.ID == 5 }
	if got := tr.Next(no13); got.ID != 5 {
		t.Fatalf("Next = %d, want 5", got.ID)
	}
}

func TestWeightedFairnessAmongSiblings(t *testing.T) {
	tr := NewPriorityTree()
	heavy, light := newTestStream(1), newTestStream(3)
	tr.Bind(heavy)
	tr.Bind(light)
	tr.Update(1, PriorityParam{ParentID: 0, Weight: 255}) // effective 256
	tr.Update(3, PriorityParam{ParentID: 0, Weight: 63})  // effective 64
	counts := map[uint32]int{}
	for i := 0; i < 1000; i++ {
		st := tr.Next(sendableAll)
		counts[st.ID]++
		tr.Charge(st.ID, 1000)
	}
	ratio := float64(counts[1]) / float64(counts[3])
	if ratio < 3.2 || ratio > 4.8 {
		t.Fatalf("weight 256:64 served ratio = %.2f (counts %v), want ~4", ratio, counts)
	}
}

func TestRemoveReparentsChildren(t *testing.T) {
	tr := NewPriorityTree()
	for _, id := range []uint32{1, 3} {
		tr.Bind(newTestStream(id))
	}
	tr.Update(3, PriorityParam{ParentID: 1, Weight: 15})
	tr.Remove(1)
	if tr.Len() != 1 {
		t.Fatalf("Len = %d, want 1", tr.Len())
	}
	// 3 must now be reachable directly under the root.
	if got := tr.Next(sendableAll); got == nil || got.ID != 3 {
		t.Fatalf("Next = %v, want 3", got)
	}
}

func TestReprioritizeUnderDescendant(t *testing.T) {
	// RFC 7540 5.3.3: moving 1 under its descendant 3 must first move 3
	// up to 1's old parent.
	tr := NewPriorityTree()
	for _, id := range []uint32{1, 3} {
		tr.Bind(newTestStream(id))
	}
	tr.Update(3, PriorityParam{ParentID: 1, Weight: 15})
	tr.Update(1, PriorityParam{ParentID: 3, Weight: 15})
	// Now 3 is at the root level and 1 under it: with 3 unsendable, 1 is
	// still reachable (no cycle, no orphan).
	no3 := func(s *Stream) bool { return s.ID == 1 }
	if got := tr.Next(no3); got == nil || got.ID != 1 {
		t.Fatalf("Next = %v, want 1 (tree must stay acyclic)", got)
	}
}

func TestIdlePlaceholderCreation(t *testing.T) {
	tr := NewPriorityTree()
	st := newTestStream(5)
	tr.Bind(st)
	// Depend on an unseen stream: a placeholder is created.
	tr.Update(5, PriorityParam{ParentID: 99, Weight: 15})
	if got := tr.Next(sendableAll); got == nil || got.ID != 5 {
		t.Fatalf("Next = %v, want 5 via placeholder parent", got)
	}
}

func TestSelfDependencyIgnored(t *testing.T) {
	tr := NewPriorityTree()
	st := newTestStream(1)
	tr.Bind(st)
	tr.Update(1, PriorityParam{ParentID: 1, Weight: 15})
	if got := tr.Next(sendableAll); got == nil || got.ID != 1 {
		t.Fatalf("self-dependency corrupted tree: Next = %v", got)
	}
}

func TestChargePropagatesToAncestors(t *testing.T) {
	tr := NewPriorityTree()
	for _, id := range []uint32{1, 3, 5} {
		tr.Bind(newTestStream(id))
	}
	// 3 and 5 are children of 1.
	tr.Update(3, PriorityParam{ParentID: 1, Weight: 15})
	tr.Update(5, PriorityParam{ParentID: 1, Weight: 15})
	tr.Charge(3, 500)
	if tr.lookup(3).served != 500 || tr.lookup(1).served != 500 {
		t.Fatalf("served: node3=%d node1=%d, want 500/500", tr.lookup(3).served, tr.lookup(1).served)
	}
	if tr.lookup(5).served != 0 {
		t.Fatalf("sibling charged: %d", tr.lookup(5).served)
	}
}
