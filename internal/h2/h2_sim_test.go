package h2

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/hpack"
	"repro/internal/netem"
	"repro/internal/sim"
)

// simPair is a client+server connection pair over the emulated network.
type simPair struct {
	s   *sim.Sim
	net *netem.Network
	srv *Server
	cl  *Client
}

// newSimPair dials a connection and attaches the endpoints at connect
// time; onConnect runs once both sides are live.
func newSimPair(handler func(sw *ServerStream, req Request), clientSettings Settings, onConnect func(p *simPair)) *simPair {
	s := sim.New(1)
	n := netem.New(s, netem.DSL())
	p := &simPair{s: s, net: n}
	n.Dial(func(c *netem.Conn) {
		p.srv = NewServer(DefaultSettings(), handler)
		p.cl = NewClient(clientSettings)
		AttachSim(p.srv.Core, c.ServerEnd())
		AttachSim(p.cl.Core, c.ClientEnd())
		onConnect(p)
	})
	return p
}

func clientSettingsLargeWindow() Settings {
	s := DefaultSettings()
	s.InitialWindowSize = 6 * 1024 * 1024 // Chromium-like stream windows
	return s
}

func TestSimGetRoundTrip(t *testing.T) {
	body := bytes.Repeat([]byte("abc"), 10000)
	var got []byte
	var status int
	done := false
	p := newSimPair(func(sw *ServerStream, req Request) {
		if req.Path != "/index.html" || req.Method != "GET" {
			t.Errorf("server saw %s %s", req.Method, req.Path)
		}
		sw.Respond(200, "text/html", body)
	}, clientSettingsLargeWindow(), func(p *simPair) {
		p.cl.Request(Request{Method: "GET", Scheme: "https", Authority: "example.com", Path: "/index.html"},
			RequestOpts{
				OnResponse: func(resp Response) { status = resp.Status },
				OnData:     func(chunk []byte) { got = append(got, chunk...) },
				OnComplete: func(total int) { done = true },
			})
	})
	p.s.Run()
	if !done {
		t.Fatal("response never completed")
	}
	if status != 200 {
		t.Fatalf("status = %d", status)
	}
	if !bytes.Equal(got, body) {
		t.Fatalf("body mismatch: got %d bytes want %d", len(got), len(body))
	}
}

func TestSimEmptyBodyResponse(t *testing.T) {
	done := false
	p := newSimPair(func(sw *ServerStream, req Request) {
		sw.Respond(204, "", nil)
	}, clientSettingsLargeWindow(), func(p *simPair) {
		p.cl.Request(Request{Method: "GET", Scheme: "https", Authority: "a", Path: "/"},
			RequestOpts{OnComplete: func(total int) {
				if total != 0 {
					t.Errorf("total = %d", total)
				}
				done = true
			}})
	})
	p.s.Run()
	if !done {
		t.Fatal("204 never completed")
	}
}

func TestSimPushAccepted(t *testing.T) {
	html := bytes.Repeat([]byte("<p>hi</p>"), 500)
	css := bytes.Repeat([]byte("a{b:c}"), 300)
	var gotHTML, gotCSS []byte
	pushSeen := false
	p := newSimPair(func(sw *ServerStream, req Request) {
		psw := sw.Push(Request{Method: "GET", Scheme: "https", Authority: "a", Path: "/main.css"})
		if psw == nil {
			t.Error("Push returned nil with push enabled")
			return
		}
		sw.Respond(200, "text/html", html)
		psw.Respond(200, "text/css", css)
	}, clientSettingsLargeWindow(), func(p *simPair) {
		p.cl.OnPush = func(parent, promised *ClientStream) bool {
			pushSeen = true
			if promised.Req.Path != "/main.css" {
				t.Errorf("promised path %s", promised.Req.Path)
			}
			promised.OnData = func(chunk []byte) { gotCSS = append(gotCSS, chunk...) }
			return true
		}
		p.cl.Request(Request{Method: "GET", Scheme: "https", Authority: "a", Path: "/"},
			RequestOpts{OnData: func(chunk []byte) { gotHTML = append(gotHTML, chunk...) }})
	})
	p.s.Run()
	if !pushSeen {
		t.Fatal("push promise never surfaced")
	}
	if !bytes.Equal(gotHTML, html) || !bytes.Equal(gotCSS, css) {
		t.Fatalf("payload mismatch: html %d/%d css %d/%d", len(gotHTML), len(html), len(gotCSS), len(css))
	}
	if p.cl.Core.PushesRecvd != 1 {
		t.Fatalf("PushesRecvd = %d", p.cl.Core.PushesRecvd)
	}
}

func TestSimPushDisabledBySettings(t *testing.T) {
	// The paper's no-push baseline: SETTINGS_ENABLE_PUSH=0 at startup.
	noPush := clientSettingsLargeWindow()
	noPush.EnablePush = false
	pushAttempted := false
	done := false
	p := newSimPair(func(sw *ServerStream, req Request) {
		if psw := sw.Push(Request{Method: "GET", Scheme: "https", Authority: "a", Path: "/x.css"}); psw != nil {
			pushAttempted = true
		}
		sw.Respond(200, "text/html", []byte("<html></html>"))
	}, noPush, func(p *simPair) {
		p.cl.Request(Request{Method: "GET", Scheme: "https", Authority: "a", Path: "/"},
			RequestOpts{OnComplete: func(int) { done = true }})
	})
	p.s.Run()
	if pushAttempted {
		t.Fatal("server pushed although client disabled push")
	}
	if !done {
		t.Fatal("response never completed")
	}
}

func TestSimClientCancelsPush(t *testing.T) {
	css := bytes.Repeat([]byte("x"), 200*1024)
	var cssBytes int
	htmlDone := false
	p := newSimPair(func(sw *ServerStream, req Request) {
		psw := sw.Push(Request{Method: "GET", Scheme: "https", Authority: "a", Path: "/big.css"})
		sw.Respond(200, "text/html", []byte("<html></html>"))
		psw.Respond(200, "text/css", css)
	}, clientSettingsLargeWindow(), func(p *simPair) {
		p.cl.OnPush = func(parent, promised *ClientStream) bool {
			promised.OnData = func(chunk []byte) { cssBytes += len(chunk) }
			return false // reject: e.g. already cached
		}
		p.cl.Request(Request{Method: "GET", Scheme: "https", Authority: "a", Path: "/"},
			RequestOpts{OnComplete: func(int) { htmlDone = true }})
	})
	p.s.Run()
	if !htmlDone {
		t.Fatal("html never completed")
	}
	// The RST races with in-flight data (the paper notes objects can
	// already be in flight), but the vast majority must be cancelled.
	if cssBytes > len(css)/2 {
		t.Fatalf("cancelled push still delivered %d of %d bytes", cssBytes, len(css))
	}
}

// TestSimDefaultSchedulerPushAfterParent verifies the h2o default: a push
// stream is a child of its parent and is starved until the parent
// response has been fully sent (Fig. 5a of the paper).
func TestSimDefaultSchedulerPushAfterParent(t *testing.T) {
	html := bytes.Repeat([]byte("H"), 120*1024)
	css := bytes.Repeat([]byte("C"), 20*1024)
	var firstCSSAt, htmlDoneAt time.Duration
	s := sim.New(2)
	n := netem.New(s, netem.DSL())
	n.Dial(func(c *netem.Conn) {
		srv := NewServer(DefaultSettings(), func(sw *ServerStream, req Request) {
			psw := sw.Push(Request{Method: "GET", Scheme: "https", Authority: "a", Path: "/s.css"})
			sw.Respond(200, "text/html", html)
			psw.Respond(200, "text/css", css)
		})
		cl := NewClient(clientSettingsLargeWindow())
		AttachSim(srv.Core, c.ServerEnd())
		AttachSim(cl.Core, c.ClientEnd())
		cl.OnPush = func(parent, promised *ClientStream) bool {
			promised.OnData = func(chunk []byte) {
				if firstCSSAt == 0 {
					firstCSSAt = s.Now()
				}
			}
			return true
		}
		cl.Request(Request{Method: "GET", Scheme: "https", Authority: "a", Path: "/"},
			RequestOpts{OnComplete: func(int) { htmlDoneAt = s.Now() }})
	})
	s.Run()
	if firstCSSAt == 0 || htmlDoneAt == 0 {
		t.Fatalf("missing events: css=%v htmlDone=%v", firstCSSAt, htmlDoneAt)
	}
	if firstCSSAt < htmlDoneAt {
		t.Fatalf("default scheduler interleaved push (css first byte %v < html done %v)", firstCSSAt, htmlDoneAt)
	}
}

// TestSimInterleavingScheduler verifies the paper's modification: the
// parent stream pauses after a byte offset, pushed critical resources are
// sent, then the parent resumes (Sec. 5, Fig. 5a right side).
func TestSimInterleavingScheduler(t *testing.T) {
	html := bytes.Repeat([]byte("H"), 120*1024)
	css := bytes.Repeat([]byte("C"), 20*1024)
	const offset = 4096
	var order []string
	htmlBytes := 0
	s := sim.New(3)
	n := netem.New(s, netem.DSL())
	n.Dial(func(c *netem.Conn) {
		srv := NewServer(DefaultSettings(), func(sw *ServerStream, req Request) {
			psw := sw.Push(Request{Method: "GET", Scheme: "https", Authority: "a", Path: "/s.css"})
			sw.Interleave(offset, []uint32{psw.St.ID})
			sw.Respond(200, "text/html", html)
			psw.Respond(200, "text/css", css)
		})
		cl := NewClient(clientSettingsLargeWindow())
		AttachSim(srv.Core, c.ServerEnd())
		AttachSim(cl.Core, c.ClientEnd())
		cl.OnPush = func(parent, promised *ClientStream) bool {
			promised.OnComplete = func(int) { order = append(order, "css-done") }
			return true
		}
		cl.Request(Request{Method: "GET", Scheme: "https", Authority: "a", Path: "/"},
			RequestOpts{
				OnData: func(chunk []byte) {
					was := htmlBytes
					htmlBytes += len(chunk)
					if was < offset && htmlBytes >= offset {
						order = append(order, "html-offset")
					}
				},
				OnComplete: func(int) { order = append(order, "html-done") },
			})
	})
	s.Run()
	want := []string{"html-offset", "css-done", "html-done"}
	if len(order) != len(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

// TestSimExclusiveChainOrdering verifies that client priorities with
// dependency chains produce strict response ordering (the Chromium
// behaviour behind the paper's Fig. 5b no-push curve).
func TestSimExclusiveChainOrdering(t *testing.T) {
	big := bytes.Repeat([]byte("A"), 80*1024)
	small := bytes.Repeat([]byte("B"), 20*1024)
	var finished []string
	s := sim.New(4)
	n := netem.New(s, netem.DSL())
	n.Dial(func(c *netem.Conn) {
		srv := NewServer(DefaultSettings(), func(sw *ServerStream, req Request) {
			if req.Path == "/a" {
				sw.Respond(200, "text/html", big)
			} else {
				sw.Respond(200, "text/css", small)
			}
		})
		cl := NewClient(clientSettingsLargeWindow())
		AttachSim(srv.Core, c.ServerEnd())
		AttachSim(cl.Core, c.ClientEnd())
		csA := cl.Request(Request{Method: "GET", Scheme: "https", Authority: "a", Path: "/a"},
			RequestOpts{OnComplete: func(int) { finished = append(finished, "a") }})
		// /b depends on /a: must not complete before it.
		cl.Request(Request{Method: "GET", Scheme: "https", Authority: "a", Path: "/b"},
			RequestOpts{
				Priority:   &PriorityParam{ParentID: csA.St.ID, Weight: 219},
				OnComplete: func(int) { finished = append(finished, "b") },
			})
	})
	s.Run()
	if len(finished) != 2 || finished[0] != "a" || finished[1] != "b" {
		t.Fatalf("completion order %v, want [a b]", finished)
	}
}

func TestSimSmallFlowControlWindowStillCompletes(t *testing.T) {
	// A tiny stream window forces many WINDOW_UPDATE round trips but the
	// transfer must still complete.
	small := DefaultSettings()
	small.InitialWindowSize = 2048
	body := bytes.Repeat([]byte("z"), 64*1024)
	got := 0
	s := sim.New(5)
	n := netem.New(s, netem.DSL())
	n.Dial(func(c *netem.Conn) {
		srv := NewServer(DefaultSettings(), func(sw *ServerStream, req Request) {
			sw.Respond(200, "application/octet-stream", body)
		})
		cl := NewClient(small)
		AttachSim(srv.Core, c.ServerEnd())
		AttachSim(cl.Core, c.ClientEnd())
		cl.Request(Request{Method: "GET", Scheme: "https", Authority: "a", Path: "/"},
			RequestOpts{OnData: func(chunk []byte) { got += len(chunk) }})
	})
	s.Run()
	if got != len(body) {
		t.Fatalf("got %d bytes, want %d", got, len(body))
	}
}

func TestSimLargeHeadersContinuation(t *testing.T) {
	// A header block exceeding the max frame size must be split into
	// CONTINUATION frames and reassembled.
	bigVal := string(bytes.Repeat([]byte("v"), 40*1024))
	var got string
	p := newSimPair(func(sw *ServerStream, req Request) {
		for _, f := range req.Header {
			if f.Name == "x-big" {
				got = f.Value
			}
		}
		sw.Respond(200, "", nil)
	}, clientSettingsLargeWindow(), func(p *simPair) {
		p.cl.Request(Request{
			Method: "GET", Scheme: "https", Authority: "a", Path: "/",
			Header: []hpack.HeaderField{{Name: "x-big", Value: bigVal}},
		}, RequestOpts{})
	})
	p.s.Run()
	if got != bigVal {
		t.Fatalf("header lost in continuation: got %d bytes want %d", len(got), len(bigVal))
	}
}

func TestSimMultipleRequestsMultiplexed(t *testing.T) {
	bodies := map[string][]byte{
		"/a": bytes.Repeat([]byte("a"), 30000),
		"/b": bytes.Repeat([]byte("b"), 20000),
		"/c": bytes.Repeat([]byte("c"), 10000),
	}
	got := map[string]int{}
	p := newSimPair(func(sw *ServerStream, req Request) {
		sw.Respond(200, "text/plain", bodies[req.Path])
	}, clientSettingsLargeWindow(), func(p *simPair) {
		for _, path := range []string{"/a", "/b", "/c"} {
			path := path
			p.cl.Request(Request{Method: "GET", Scheme: "https", Authority: "a", Path: path},
				RequestOpts{OnComplete: func(total int) { got[path] = total }})
		}
	})
	p.s.Run()
	for path, body := range bodies {
		if got[path] != len(body) {
			t.Errorf("%s: got %d bytes, want %d", path, got[path], len(body))
		}
	}
}

func TestSimDeterminism(t *testing.T) {
	run := func() time.Duration {
		var doneAt time.Duration
		s := sim.New(42)
		n := netem.New(s, netem.DSL())
		n.Dial(func(c *netem.Conn) {
			srv := NewServer(DefaultSettings(), func(sw *ServerStream, req Request) {
				sw.Respond(200, "text/html", bytes.Repeat([]byte("x"), 77777))
			})
			cl := NewClient(clientSettingsLargeWindow())
			AttachSim(srv.Core, c.ServerEnd())
			AttachSim(cl.Core, c.ClientEnd())
			cl.Request(Request{Method: "GET", Scheme: "https", Authority: "a", Path: "/"},
				RequestOpts{OnComplete: func(int) { doneAt = s.Now() }})
		})
		s.Run()
		return doneAt
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("non-deterministic: %v vs %v", a, b)
	}
}
