package scenario

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"repro/internal/corpus"
	"repro/internal/netem"
	"repro/internal/replay"
)

// TestNamedScenariosValidate is the library's contract: every shipped
// scenario validates, names are unique and ByName round-trips.
func TestNamedScenariosValidate(t *testing.T) {
	seen := map[string]bool{}
	for _, sc := range All() {
		if err := sc.Validate(); err != nil {
			t.Errorf("scenario %q invalid: %v", sc.Name, err)
		}
		if seen[sc.Name] {
			t.Errorf("duplicate scenario name %q", sc.Name)
		}
		seen[sc.Name] = true
		got, err := ByName(sc.Name)
		if err != nil || got.Name != sc.Name {
			t.Errorf("ByName(%q) = %v, %v", sc.Name, got.Name, err)
		}
	}
	if len(seen) < 7 {
		t.Fatalf("library has %d scenarios, want >= 7", len(seen))
	}
	if _, err := ByName("dialup"); err == nil {
		t.Fatal("unknown scenario accepted")
	}
}

func TestNamedScenarioProfilesDistinct(t *testing.T) {
	type key struct {
		down netem.Rate
		rtt  time.Duration
	}
	seen := map[key]string{}
	for _, sc := range All() {
		if sc.Name == "internet" {
			continue // shares the DSL link by design
		}
		k := key{sc.Profile.DownRate, sc.Profile.RTT}
		if other, dup := seen[k]; dup {
			t.Errorf("scenarios %q and %q share down rate %d and RTT %v", sc.Name, other, k.down, k.rtt)
		}
		seen[k] = sc.Name
	}
}

// TestDeriveDeterministic: identical seeds realise identical conditions
// and identical third-party site scaling — the property the parallel
// experiment engine's byte-identical tables rest on.
func TestDeriveDeterministic(t *testing.T) {
	site := corpus.Generate(corpus.TopProfile(), 0, 3)
	for _, sc := range All() {
		a := sc.Derive(42)
		b := sc.Derive(42)
		if a.Profile != b.Profile || a.ThinkTime != b.ThinkTime || a.ClientJitterFrac != b.ClientJitterFrac {
			t.Errorf("%s: Derive(42) diverged: %+v vs %+v", sc.Name, a, b)
		}
		sa := a.ApplySite(site)
		sb := b.ApplySite(site)
		ea, eb := sa.DB.Entries(), sb.DB.Entries()
		if len(ea) != len(eb) {
			t.Fatalf("%s: entry counts differ: %d vs %d", sc.Name, len(ea), len(eb))
		}
		for i := range ea {
			if len(ea[i].Body) != len(eb[i].Body) {
				t.Errorf("%s: entry %d body %d vs %d bytes", sc.Name, i, len(ea[i].Body), len(eb[i].Body))
			}
		}
	}
}

func TestDeriveVariesAcrossSeeds(t *testing.T) {
	sc := Internet()
	a := sc.Derive(1)
	b := sc.Derive(2)
	if a.Profile == b.Profile {
		t.Fatalf("internet scenario identical across seeds: %+v", a.Profile)
	}
	// The controlled testbed must not vary at all.
	dsl := DSL()
	if dsl.Derive(1).Profile != dsl.Derive(2).Profile {
		t.Fatal("dsl scenario varies across seeds")
	}
}

func TestDeriveStaysWithinRanges(t *testing.T) {
	sc := Internet()
	base := sc.Profile
	v := sc.Vary
	for seed := int64(0); seed < 50; seed++ {
		c := sc.Derive(seed)
		rttF := float64(c.Profile.RTT) / float64(base.RTT)
		if rttF < v.RTT.Low || rttF >= v.RTT.High {
			t.Fatalf("seed %d: RTT factor %v outside [%v,%v)", seed, rttF, v.RTT.Low, v.RTT.High)
		}
		if c.Profile.LossRate < v.Loss.Low || c.Profile.LossRate >= v.Loss.High {
			t.Fatalf("seed %d: loss %v outside [%v,%v)", seed, c.Profile.LossRate, v.Loss.Low, v.Loss.High)
		}
		if c.ThinkTime < 0 || c.ThinkTime >= v.ThinkTimeMax {
			t.Fatalf("seed %d: think time %v outside [0,%v)", seed, c.ThinkTime, v.ThinkTimeMax)
		}
	}
}

func TestApplySitePreservesFirstParty(t *testing.T) {
	site := corpus.Generate(corpus.TopProfile(), 1, 3)
	c := Internet().Derive(7)
	scaled := c.ApplySite(site)
	if scaled == site {
		t.Fatal("internet conditions returned the input site unscaled")
	}
	thirdPartyChanged := false
	for _, e := range site.DB.Entries() {
		se := scaled.DB.Lookup(e.URL.Authority, e.URL.Path)
		if se == nil {
			t.Fatalf("entry %s lost in scaling", e.URL.Path)
		}
		if site.Authoritative(site.Base.Authority, e.URL.Authority) {
			if len(se.Body) != len(e.Body) {
				t.Fatalf("first-party %s rescaled: %d -> %d", e.URL.Path, len(e.Body), len(se.Body))
			}
		} else if len(se.Body) != len(e.Body) {
			thirdPartyChanged = true
			if len(se.Body) < 16 {
				t.Fatalf("third-party %s shrunk below floor: %d", e.URL.Path, len(se.Body))
			}
		}
	}
	if !thirdPartyChanged {
		t.Fatal("no third-party body was rescaled")
	}
	// Deterministic scenarios pass the site through untouched.
	if got := DSL().Derive(7).ApplySite(site); got != site {
		t.Fatal("dsl conditions copied the site needlessly")
	}
}

func TestValidateRejectsBadScenarios(t *testing.T) {
	cases := []struct {
		name string
		sc   Scenario
	}{
		{"empty name", Scenario{Profile: netem.DSL()}},
		{"bad profile", func() Scenario {
			sc := DSL()
			sc.Profile.MSS = 0
			return sc
		}()},
		{"inverted range", DSL().With(Variability{RTT: Range{2, 1}})},
		{"zero-low factor", DSL().With(Variability{Rate: Range{0, 1.5}})},
		{"loss >= 1", DSL().With(Variability{Loss: Range{0.5, 1.5}})},
		{"negative think", DSL().With(Variability{ThinkTimeMax: -time.Second})},
		{"sub-ms think", DSL().With(Variability{ThinkTimeMax: 500 * time.Microsecond})},
		{"jitter >= 1", DSL().With(Variability{ClientJitterFrac: 1})},
	}
	for _, tc := range cases {
		if err := tc.sc.Validate(); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

func TestVariabilityDescribe(t *testing.T) {
	if got := DSL().Vary.Describe(); got != "" {
		t.Fatalf("controlled scenario describes %q", got)
	}
	got := Internet().Vary.Describe()
	for _, want := range []string{"RTT x[0.8,1.7)", "rates x[0.6,1.1)", "loss drawn", "client jitter 10%", "think time <30ms", "3rd-party bodies x[0.7,1.5)"} {
		if !strings.Contains(got, want) {
			t.Errorf("internet description %q missing %q", got, want)
		}
	}
	if got := (Variability{ClientJitterFrac: -1}).Describe(); got != "client jitter off" {
		t.Fatalf("negative jitter describes %q", got)
	}
}

func TestNegativeClientJitterValidates(t *testing.T) {
	sc := DSL().With(Variability{ClientJitterFrac: -1})
	if err := sc.Validate(); err != nil {
		t.Fatalf("jitter-off scenario rejected: %v", err)
	}
	if c := sc.Derive(3); c.ClientJitterFrac != -1 {
		t.Fatalf("derived jitter = %v", c.ClientJitterFrac)
	}
}

// TestApplySiteIntoMatchesApplySite pins the overlay-scratch contract:
// a warm SiteScratch must realise byte-identical sites to fresh
// ApplySite calls, run after run, including after switching the scratch
// to a different base site.
func TestApplySiteIntoMatchesApplySite(t *testing.T) {
	siteA := corpus.Generate(corpus.TopProfile(), 1, 3)
	siteB := corpus.Generate(corpus.RandomProfile(), 2, 3)
	scn := Internet()
	var scratch SiteScratch
	check := func(site *replay.Site, seed int64) {
		t.Helper()
		want := scn.Derive(seed).ApplySite(site)
		got := scn.Derive(seed).ApplySiteInto(site, &scratch)
		wantEntries, gotEntries := want.DB.Entries(), got.DB.Entries()
		if len(gotEntries) != len(wantEntries) {
			t.Fatalf("seed %d: %d entries, want %d", seed, len(gotEntries), len(wantEntries))
		}
		for i, we := range wantEntries {
			ge := gotEntries[i]
			if ge.URL != we.URL {
				t.Fatalf("seed %d: entry %d is %v, want %v", seed, i, ge.URL, we.URL)
			}
			if !bytes.Equal(ge.Body, we.Body) {
				t.Fatalf("seed %d: body of %s diverged (%d vs %d bytes)", seed, we.URL.Path, len(ge.Body), len(we.Body))
			}
		}
	}
	for seed := int64(1); seed <= 5; seed++ {
		check(siteA, seed) // warm reuse across runs
	}
	check(siteB, 1) // base switch rebuilds the overlay
	check(siteA, 9) // and back
}
