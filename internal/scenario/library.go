package scenario

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/netem"
)

// The named scenario library. The paper evaluates push on exactly one
// access network — the 16/1 Mbit/s, 50 ms DSL link of Sec. 4.1 — and
// its central finding (push rarely helps) is condition-sensitive: push
// trades uplink round trips for downlink bytes, so link asymmetry, RTT
// and loss all move the balance. Each scenario below is a plausible
// access technology with distinct rate/RTT/loss/cwnd so ScenarioSweep
// can ask "where does push actually help?".

// DSL is the paper's controlled testbed scenario (Sec. 4.1): the DSL
// link with no run-to-run variability beyond the browser's small
// compute jitter.
func DSL() Scenario {
	return Scenario{
		Name:    "dsl",
		Info:    "paper testbed: 16/1 Mbit/s DSL (Sec. 4.1)",
		Profile: netem.DSL(),
	}
}

// InternetVariability is the perturbation regime the paper's Fig. 2a
// contrasts the testbed against: per-run network jitter, injected loss,
// server think time, dynamic third-party content and elevated client
// compute jitter.
func InternetVariability() Variability {
	return Variability{
		RTT:              Range{0.8, 1.7},
		Rate:             Range{0.6, 1.1},
		Loss:             Range{0.0005, 0.0025},
		ClientJitterFrac: 0.10,
		ThinkTimeMax:     30 * time.Millisecond,
		ThirdParty:       Range{0.7, 1.5},
	}
}

// Internet is the DSL link measured "in the wild": the same access
// link composed with InternetVariability (Fig. 2a's Internet mode).
func Internet() Scenario {
	sc := DSL().With(InternetVariability())
	sc.Name = "internet"
	sc.Info = "DSL link with Internet-mode run-to-run variability (Fig. 2a)"
	return sc
}

// Fiber is a short-RTT FTTH line where transfers are rarely
// bandwidth-limited and handshake round trips dominate.
func Fiber() Scenario {
	return Scenario{
		Name: "fiber",
		Info: "FTTH: fast symmetric-ish link, short RTT",
		Profile: netem.Profile{
			DownRate:      100 * netem.Mbps,
			UpRate:        50 * netem.Mbps,
			RTT:           10 * time.Millisecond,
			MSS:           1460,
			SegOverhead:   40,
			QueueBytes:    512 * 1024,
			InitialCwnd:   10,
			HandshakeRTTs: 2,
		},
	}
}

// Cable is a DOCSIS link: plenty of downlink, a moderately asymmetric
// uplink and a deeper last-mile queue.
func Cable() Scenario {
	return Scenario{
		Name: "cable",
		Info: "DOCSIS cable: asymmetric, moderate RTT",
		Profile: netem.Profile{
			DownRate:      50 * netem.Mbps,
			UpRate:        10 * netem.Mbps,
			RTT:           25 * time.Millisecond,
			MSS:           1460,
			SegOverhead:   40,
			QueueBytes:    256 * 1024,
			InitialCwnd:   10,
			HandshakeRTTs: 2,
		},
	}
}

// LTE is a cellular link: good rates but a longer and jittery radio
// RTT (HARQ hides almost all loss from TCP, so the profile is
// loss-free and variability lives in the RTT factor).
func LTE() Scenario {
	return Scenario{
		Name: "lte",
		Info: "LTE: fast but long, jittery radio RTT",
		Profile: netem.Profile{
			DownRate:      25 * netem.Mbps,
			UpRate:        8 * netem.Mbps,
			RTT:           60 * time.Millisecond,
			MSS:           1400,
			SegOverhead:   40,
			QueueBytes:    384 * 1024,
			InitialCwnd:   10,
			HandshakeRTTs: 2,
		},
		Vary: Variability{RTT: Range{0.9, 1.4}},
	}
}

// ThreeG is a legacy cellular link: slow, long RTT, a conservative
// initial window and residual loss.
func ThreeG() Scenario {
	return Scenario{
		Name: "3g",
		Info: "3G/HSPA: slow, long RTT, conservative cwnd",
		Profile: netem.Profile{
			DownRate:      2 * netem.Mbps,
			UpRate:        400 * netem.Kbps,
			RTT:           150 * time.Millisecond,
			MSS:           1400,
			SegOverhead:   40,
			QueueBytes:    128 * 1024,
			InitialCwnd:   4,
			HandshakeRTTs: 2,
			LossRate:      0.001,
		},
	}
}

// LossyWiFi is a congested wireless LAN on a decent uplink: the rates
// are fine, but 2% segment loss keeps congestion windows small.
func LossyWiFi() Scenario {
	return Scenario{
		Name: "wifi-lossy",
		Info: "congested Wi-Fi: decent rates, 2% segment loss",
		Profile: netem.Profile{
			DownRate:      30 * netem.Mbps,
			UpRate:        15 * netem.Mbps,
			RTT:           30 * time.Millisecond,
			MSS:           1460,
			SegOverhead:   40,
			QueueBytes:    256 * 1024,
			InitialCwnd:   10,
			HandshakeRTTs: 2,
			LossRate:      0.02,
		},
	}
}

// Satellite is a geostationary link: a ~600 ms RTT makes every saved
// round trip worth hundreds of milliseconds, and split-TCP performance
// enhancing proxies justify a large initial window and deep queue.
func Satellite() Scenario {
	return Scenario{
		Name: "satellite",
		Info: "GEO satellite: ~600 ms RTT, PEP-style large cwnd",
		Profile: netem.Profile{
			DownRate:      20 * netem.Mbps,
			UpRate:        2 * netem.Mbps,
			RTT:           600 * time.Millisecond,
			MSS:           1460,
			SegOverhead:   40,
			QueueBytes:    1024 * 1024,
			InitialCwnd:   20,
			HandshakeRTTs: 2,
			LossRate:      0.001,
		},
	}
}

// All returns every named scenario in presentation order. Each value is
// freshly constructed, so callers may mutate their copies freely.
func All() []Scenario {
	return []Scenario{
		DSL(), Internet(), Fiber(), Cable(), LTE(), ThreeG(), LossyWiFi(), Satellite(),
	}
}

// Names returns the sorted names of the library scenarios.
func Names() []string {
	scs := All()
	names := make([]string, len(scs))
	for i, sc := range scs {
		names[i] = sc.Name
	}
	sort.Strings(names)
	return names
}

// ByName resolves a library scenario by name.
func ByName(name string) (Scenario, error) {
	for _, sc := range All() {
		if sc.Name == name {
			return sc, nil
		}
	}
	return Scenario{}, fmt.Errorf("scenario: unknown scenario %q (have: %s)", name, strings.Join(Names(), ", "))
}
