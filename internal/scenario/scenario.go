// Package scenario makes the testbed's measurement conditions a
// first-class, composable value. A Scenario couples a named emulated
// access link (netem.Profile) with a Variability model describing every
// source of run-to-run change the paper distinguishes between its
// controlled testbed and "the Internet" (Sec. 4.1, Fig. 2a): network
// jitter, server think time, dynamic third-party content and client
// compute jitter.
//
// Scenarios are plain data: the package ships a library of named
// scenarios (the paper's DSL testbed, the same link with Internet-mode
// variability, fiber, cable, LTE, 3G, lossy Wi-Fi, satellite) and any
// new measurement condition is a new value, not a change to the
// testbed core. Derive realises a scenario for one run seed and is
// fully deterministic: identical seeds yield identical Conditions,
// which is what keeps experiment tables byte-identical across
// worker-pool sizes.
package scenario

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"repro/internal/fault"
	"repro/internal/netem"
	"repro/internal/replay"
)

// Range is an interval [Low, High) a perturbation factor is drawn from
// uniformly. The zero Range disables the perturbation entirely (no RNG
// draw is consumed).
type Range struct {
	Low, High float64
}

func (r Range) enabled() bool { return r != (Range{}) }

func (r Range) draw(rng *rand.Rand) float64 { return r.Low + rng.Float64()*(r.High-r.Low) }

func (r Range) validate(what string, minLow float64) error {
	if !r.enabled() {
		return nil
	}
	if r.Low < minLow || r.High < r.Low {
		return fmt.Errorf("scenario: %s range [%g,%g) invalid (need %g <= low <= high)", what, r.Low, r.High, minLow)
	}
	return nil
}

// Variability models run-to-run change. The zero value is the fully
// controlled testbed: every run sees exactly the scenario's profile and
// the browser's configured compute jitter.
type Variability struct {
	// RTT multiplies the profile RTT by a per-run factor from this range.
	RTT Range
	// Rate multiplies DownRate and UpRate by independent per-run factors
	// from this range.
	Rate Range
	// Loss replaces the profile loss rate with a per-run draw from this
	// absolute range (values in [0,1)).
	Loss Range
	// ClientJitterFrac overrides the browser's compute-jitter fraction
	// (browser.Config.JitterFrac) when positive; a negative value forces
	// a fully deterministic client (jitter 0), so disabling compute
	// jitter is a scenario-data change too. Zero keeps the browser's
	// configured default.
	ClientJitterFrac float64
	// ThinkTimeMax adds a per-run server think time drawn uniformly from
	// [0, ThinkTimeMax) in whole milliseconds.
	ThinkTimeMax time.Duration
	// ThirdParty rescales the bodies of objects served by hosts outside
	// the base origin's authority by an independent per-object factor
	// from this range, modelling ads rotating between loads (Sec. 4).
	ThirdParty Range
}

func (v Variability) validate() error {
	if err := v.RTT.validate("RTT factor", 1e-3); err != nil {
		return err
	}
	if err := v.Rate.validate("rate factor", 1e-3); err != nil {
		return err
	}
	if err := v.Loss.validate("loss", 0); err != nil {
		return err
	}
	if v.Loss.enabled() && v.Loss.High >= 1 {
		return fmt.Errorf("scenario: loss range [%g,%g) out of [0,1)", v.Loss.Low, v.Loss.High)
	}
	if v.ClientJitterFrac >= 1 {
		return fmt.Errorf("scenario: client jitter fraction %g out of (-inf,1); negative disables jitter", v.ClientJitterFrac)
	}
	if v.ThinkTimeMax < 0 {
		return fmt.Errorf("scenario: negative think time %v", v.ThinkTimeMax)
	}
	if v.ThinkTimeMax > 0 && v.ThinkTimeMax < time.Millisecond {
		// Think time is drawn in whole milliseconds; rejecting the
		// sub-millisecond range beats silently ignoring it in Derive.
		return fmt.Errorf("scenario: think time %v below the 1ms draw granularity", v.ThinkTimeMax)
	}
	return v.ThirdParty.validate("third-party scale", 1e-3)
}

// Describe renders the active perturbations for table notes, or "" for
// a fully controlled scenario.
func (v Variability) Describe() string {
	var parts []string
	if v.RTT.enabled() {
		parts = append(parts, fmt.Sprintf("RTT x[%g,%g)", v.RTT.Low, v.RTT.High))
	}
	if v.Rate.enabled() {
		parts = append(parts, fmt.Sprintf("rates x[%g,%g)", v.Rate.Low, v.Rate.High))
	}
	if v.Loss.enabled() {
		parts = append(parts, fmt.Sprintf("loss drawn [%.2f%%,%.2f%%)", v.Loss.Low*100, v.Loss.High*100))
	}
	switch {
	case v.ClientJitterFrac > 0:
		parts = append(parts, fmt.Sprintf("client jitter %.0f%%", v.ClientJitterFrac*100))
	case v.ClientJitterFrac < 0:
		parts = append(parts, "client jitter off")
	}
	if v.ThinkTimeMax >= time.Millisecond {
		parts = append(parts, fmt.Sprintf("think time <%v", v.ThinkTimeMax))
	}
	if v.ThirdParty.enabled() {
		parts = append(parts, fmt.Sprintf("3rd-party bodies x[%g,%g)", v.ThirdParty.Low, v.ThirdParty.High))
	}
	return strings.Join(parts, ", ")
}

// Scenario is one named measurement condition: an access link plus the
// variability applied on top of it per run.
type Scenario struct {
	Name    string
	Info    string // one-line human description for tables and docs
	Profile netem.Profile
	Vary    Variability
	// Faults is the scenario's fault regime, realised per run by
	// Derive. The zero Spec is fault-free.
	Faults fault.Spec
}

// With returns a copy of the scenario with the given variability model,
// composing a link with a perturbation regime.
func (sc Scenario) With(v Variability) Scenario {
	sc.Vary = v
	return sc
}

// WithFaults returns a copy of the scenario with the given fault
// regime, composing a link with a failure schedule.
func (sc Scenario) WithFaults(fs fault.Spec) Scenario {
	sc.Faults = fs
	return sc
}

// Validate reports whether the scenario is internally consistent. The
// testbed calls it at construction so a bad scenario fails fast with a
// clear error instead of a mid-experiment panic.
func (sc Scenario) Validate() error {
	if sc.Name == "" {
		return fmt.Errorf("scenario: empty name")
	}
	if err := sc.Profile.Validate(); err != nil {
		return fmt.Errorf("scenario %q: %w", sc.Name, err)
	}
	if err := sc.Vary.validate(); err != nil {
		return fmt.Errorf("scenario %q: %w", sc.Name, err)
	}
	if err := sc.Faults.Validate(); err != nil {
		return fmt.Errorf("scenario %q: %w", sc.Name, err)
	}
	return nil
}

// Conditions is one realised run of a Scenario: the perturbed link
// profile plus the per-run browser and server parameters the testbed
// consumes.
type Conditions struct {
	Profile netem.Profile
	// ClientJitterFrac overrides the browser compute jitter when
	// positive; zero keeps the browser's configured default.
	ClientJitterFrac float64
	// ThinkTime delays every replay-server response.
	ThinkTime time.Duration
	// Faults is this run's realised fault schedule; empty for
	// fault-free scenarios.
	Faults fault.Plan

	thirdParty Range
	rng        *rand.Rand
}

// FaultsActive reports whether this run injects any fault. The
// testbed's fork-at-divergence driver uses it as an eligibility gate
// alongside ThirdPartyVaries: a faulted run deterministically bypasses
// the checkpoint cache so injected state never leaks into a cached
// prefix.
func (c *Conditions) FaultsActive() bool { return !c.Faults.Empty() }

// Derive realises the scenario for one run seed. It is deterministic:
// the same seed always yields the same Conditions and the same
// ApplySite output.
func (sc Scenario) Derive(seed int64) *Conditions {
	c := &Conditions{Profile: sc.Profile, ClientJitterFrac: sc.Vary.ClientJitterFrac}
	v := sc.Vary
	// The rng is built lazily: fully controlled scenarios (most of the
	// library) skip the source allocation on this per-run hot path.
	var rng *rand.Rand
	if v.RTT.enabled() || v.Rate.enabled() || v.Loss.enabled() || v.ThirdParty.enabled() {
		rng = rand.New(rand.NewSource(seed ^ 0x5eed))
	}
	if v.RTT.enabled() {
		c.Profile.RTT = time.Duration(float64(c.Profile.RTT) * v.RTT.draw(rng))
	}
	if v.Rate.enabled() {
		c.Profile.DownRate = netem.Rate(float64(c.Profile.DownRate) * v.Rate.draw(rng))
		c.Profile.UpRate = netem.Rate(float64(c.Profile.UpRate) * v.Rate.draw(rng))
	}
	if v.Loss.enabled() {
		c.Profile.LossRate = v.Loss.draw(rng)
	}
	if v.ThinkTimeMax >= time.Millisecond {
		trng := rand.New(rand.NewSource(seed ^ 0x7417))
		c.ThinkTime = time.Duration(trng.Intn(int(v.ThinkTimeMax/time.Millisecond))) * time.Millisecond
	}
	if v.ThirdParty.enabled() {
		c.thirdParty = v.ThirdParty
		c.rng = rng
	}
	// Fault realisation uses its own RNG stream (see fault.Derive), so a
	// fault-bearing scenario leaves every draw above untouched and a
	// fault-free spec leaves the Conditions byte-identical.
	c.Faults = sc.Faults.Derive(seed)
	return c
}

// ThirdPartyVaries reports whether this run rescales third-party
// bodies, i.e. whether ApplySiteInto returns a per-run site rather than
// the input unchanged. The testbed's fork-at-divergence driver uses it
// as an eligibility gate: a per-run site cannot share a checkpointed
// prefix across runs.
func (c *Conditions) ThirdPartyVaries() bool { return c.thirdParty.enabled() }

// ApplySite realises dynamic third-party content for this run: bodies on
// servers other than the base origin are rescaled per object. Sites
// without third-party variability pass through unchanged. Call it at
// most once per Conditions — the scaling consumes the derivation's RNG
// stream, so a second call would realise a different site.
func (c *Conditions) ApplySite(site *replay.Site) *replay.Site {
	return c.ApplySiteInto(site, &SiteScratch{})
}

// SiteScratch is the reusable backing store for per-run third-party
// overlays. A run context keeps one and hands it to ApplySiteInto every
// run: the variant site, its database and the scaled entries (and their
// body buffers) are built once per base site and only the scaled bytes
// are rewritten per run, so a warm overlay allocates nothing. The
// scratch must be owned by a single worker — the overlay it returns is
// only valid until the next ApplySiteInto call on the same scratch.
type SiteScratch struct {
	base    *replay.Site
	variant *replay.Site
	scaled  []*replay.Entry // overlay entries whose bodies are rewritten per run
	orig    []*replay.Entry // the recorded entries they scale, same order
}

// rebuild constructs the overlay skeleton for a new base site: shared
// (authoritative) entries are added by pointer, third-party entries get
// a scratch-owned copy whose Body is filled in per run.
func (sc *SiteScratch) rebuild(site *replay.Site) {
	sc.base = site
	sc.scaled = sc.scaled[:0]
	sc.orig = sc.orig[:0]
	db := replay.NewDB()
	for _, e := range site.DB.Entries() {
		if site.Authoritative(site.Base.Authority, e.URL.Authority) {
			db.Add(e)
			continue
		}
		ne := *e
		ne.Body = nil
		db.Add(&ne)
		sc.scaled = append(sc.scaled, &ne)
		sc.orig = append(sc.orig, e)
	}
	sc.variant = site.NewVariant(db)
}

// ApplySiteInto is ApplySite with the overlay allocated from (and
// cached in) scratch. The realised site is byte-identical to what
// ApplySite would build — same entries, same draw order, same scaled
// bodies — but a warm scratch reuses the variant site, database and
// body buffers across runs.
func (c *Conditions) ApplySiteInto(site *replay.Site, scratch *SiteScratch) *replay.Site {
	if !c.thirdParty.enabled() {
		return site
	}
	if scratch.base != site {
		scratch.rebuild(site)
	}
	for i, e := range scratch.orig {
		ne := scratch.scaled[i]
		n := max(int(float64(len(e.Body))*c.thirdParty.draw(c.rng)), 16)
		body := ne.Body
		if cap(body) < n {
			body = make([]byte, n)
		} else {
			body = body[:n]
		}
		m := copy(body, e.Body)
		for j := m; j < n; j++ {
			body[j] = byte('x')
		}
		ne.Body = body
	}
	return scratch.variant
}
