package scenario

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/netem"
)

// Population is a named shared-bottleneck preset: N clients on fast
// access links all funneled through one slower uplink, the shape the
// paper's single-client testbed cannot probe. The presets answer a
// different question than the Scenario library — not "how does one
// page load behave on link X" but "what happens to everyone's page
// loads when the household/cell/office uplink is contended".
//
// Shared.Clients is a default; population sweeps override it per
// client-count column.
type Population struct {
	Name   string
	Info   string
	Shared netem.SharedProfile
}

// Validate reports whether the population is usable.
func (p Population) Validate() error {
	if p.Name == "" {
		return fmt.Errorf("scenario: population has no name")
	}
	if err := p.Shared.Validate(); err != nil {
		return fmt.Errorf("scenario: population %q: %w", p.Name, err)
	}
	return nil
}

// Household is a family behind one DSL line: fiber-grade in-home
// links, the paper's 16/1 Mbit/s DSL as the shared bottleneck, and
// loosely correlated browsing (arrivals spread over half a second).
func Household() Population {
	return Population{
		Name: "household",
		Info: "family behind one 16/1 Mbit/s DSL line, in-home links fast",
		Shared: netem.SharedProfile{
			Access: netem.Profile{
				DownRate:      300 * netem.Mbps,
				UpRate:        300 * netem.Mbps,
				RTT:           4 * time.Millisecond,
				MSS:           1460,
				SegOverhead:   40,
				QueueBytes:    256 * 1024,
				InitialCwnd:   10,
				HandshakeRTTs: 2,
			},
			DownRate:      16 * netem.Mbps,
			UpRate:        1 * netem.Mbps,
			RTT:           46 * time.Millisecond,
			QueueBytes:    192 * 1024,
			Clients:       4,
			ArrivalSpread: 500 * time.Millisecond,
		},
	}
}

// CellSector is the devices of one cell sector behind its backhaul:
// decent radio links into a backhaul that is the real constraint, with
// arrivals spread over a second.
func CellSector() Population {
	return Population{
		Name: "cell-sector",
		Info: "devices of one cell sector behind a 50/25 Mbit/s backhaul",
		Shared: netem.SharedProfile{
			Access: netem.Profile{
				DownRate:      100 * netem.Mbps,
				UpRate:        50 * netem.Mbps,
				RTT:           40 * time.Millisecond,
				MSS:           1400,
				SegOverhead:   40,
				QueueBytes:    384 * 1024,
				InitialCwnd:   10,
				HandshakeRTTs: 2,
			},
			DownRate:      50 * netem.Mbps,
			UpRate:        25 * netem.Mbps,
			RTT:           20 * time.Millisecond,
			QueueBytes:    512 * 1024,
			Clients:       4,
			ArrivalSpread: time.Second,
		},
	}
}

// OfficeNAT is an office LAN behind one NAT uplink: gigabit to the
// wiring closet, a 100/20 Mbit/s business line out, and tightly
// clustered arrivals (everyone opens the same page after a meeting).
func OfficeNAT() Population {
	return Population{
		Name: "office-nat",
		Info: "office LAN behind a 100/20 Mbit/s NAT uplink",
		Shared: netem.SharedProfile{
			Access: netem.Profile{
				DownRate:      1000 * netem.Mbps,
				UpRate:        1000 * netem.Mbps,
				RTT:           2 * time.Millisecond,
				MSS:           1460,
				SegOverhead:   40,
				QueueBytes:    512 * 1024,
				InitialCwnd:   10,
				HandshakeRTTs: 2,
			},
			DownRate:      100 * netem.Mbps,
			UpRate:        20 * netem.Mbps,
			RTT:           18 * time.Millisecond,
			QueueBytes:    256 * 1024,
			Clients:       4,
			ArrivalSpread: 200 * time.Millisecond,
		},
	}
}

// Populations returns every population preset in presentation order.
// Each value is freshly constructed, so callers may mutate their
// copies freely.
func Populations() []Population {
	return []Population{Household(), CellSector(), OfficeNAT()}
}

// PopulationNames returns the sorted names of the population presets.
func PopulationNames() []string {
	pops := Populations()
	names := make([]string, len(pops))
	for i, p := range pops {
		names[i] = p.Name
	}
	sort.Strings(names)
	return names
}

// PopulationByName resolves a population preset by name.
func PopulationByName(name string) (Population, error) {
	for _, p := range Populations() {
		if p.Name == name {
			return p, nil
		}
	}
	return Population{}, fmt.Errorf("scenario: unknown population %q (have: %s)",
		name, strings.Join(PopulationNames(), ", "))
}
