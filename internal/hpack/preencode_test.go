package hpack

import (
	"bytes"
	"fmt"
	"testing"
)

// reqLists is a replay-shaped sequence of header lists: several requests
// and responses sharing authorities, paths and content types, so the
// dynamic table is exercised (first occurrence literal+insert, repeats
// indexed).
func reqLists() [][]HeaderField {
	var lists [][]HeaderField
	paths := []string{"/", "/style.css", "/app.js", "/img/hero.png", "/style.css"}
	for _, p := range paths {
		lists = append(lists, []HeaderField{
			{Name: ":method", Value: "GET"},
			{Name: ":scheme", Value: "https"},
			{Name: ":authority", Value: "www.example.com"},
			{Name: ":path", Value: p},
		})
	}
	for i, ct := range []string{"text/html", "text/css", "application/javascript", "image/png", "text/css"} {
		lists = append(lists, []HeaderField{
			{Name: ":status", Value: "200"},
			{Name: "content-type", Value: ct},
			{Name: "content-length", Value: fmt.Sprintf("%d", 1000+i)},
		})
	}
	return lists
}

// TestPreEncodeMatchesLiveEncoder pins the deterministic-dynamic-table
// contract: a sequence pre-encoded on a scratch encoder is byte-identical
// to live encoding, and applying the pre-encoded blocks leaves the live
// encoder in exactly the state live encoding would have — so mixing
// pre-encoded and live blocks mid-sequence also stays identical.
func TestPreEncodeMatchesLiveEncoder(t *testing.T) {
	lists := reqLists()

	scratch := NewEncoder()
	var pes []PreEncoded
	for _, fields := range lists {
		pes = append(pes, scratch.PreEncodeBlock(fields))
	}

	live := NewEncoder()
	for i, fields := range lists {
		got := live.EncodeBlock(fields)
		if !bytes.Equal(got, pes[i].Block) {
			t.Fatalf("block %d: live %x != pre-encoded %x", i, got, pes[i].Block)
		}
	}

	// Apply the first half pre-encoded, then live-encode the rest: bytes
	// must still match the fully live encoder above.
	mixed := NewEncoder()
	for i, fields := range lists {
		if i < len(lists)/2 {
			if !mixed.CanUsePreEncoded(pes[i], i) {
				t.Fatalf("block %d: CanUsePreEncoded = false at its own position", i)
			}
			mixed.ApplyPreEncoded(pes[i])
			continue
		}
		got := mixed.EncodeBlock(fields)
		if !bytes.Equal(got, pes[i].Block) {
			t.Fatalf("block %d after pre-encoded prefix: %x != %x", i, got, pes[i].Block)
		}
	}

	// Decoding the pre-encoded sequence yields the original field lists.
	dec := NewDecoder()
	for i, pe := range pes {
		fields, err := dec.DecodeBlock(pe.Block)
		if err != nil {
			t.Fatalf("block %d: decode: %v", i, err)
		}
		if len(fields) != len(lists[i]) {
			t.Fatalf("block %d: %d fields, want %d", i, len(fields), len(lists[i]))
		}
		for j, hf := range fields {
			if hf != lists[i][j] {
				t.Fatalf("block %d field %d: %v, want %v", i, j, hf, lists[i][j])
			}
		}
	}
}

// TestPreEncodeOutOfSequenceRejected ensures the guard refuses blocks at
// the wrong table position and static/dynamic mismatches.
func TestPreEncodeOutOfSequenceRejected(t *testing.T) {
	lists := reqLists()
	pe0 := PreEncode(lists[0])

	e := NewEncoder()
	e.EncodeBlock(lists[1]) // table no longer pristine
	if e.CanUsePreEncoded(pe0, 0) {
		t.Fatal("pre-encoded first block accepted after another block was encoded")
	}
	if !e.CanUsePreEncoded(PreEncode(lists[0]), 1) {
		// seqPos matching the counter is the caller's claim; the check is
		// positional, so position 1 with one block encoded is accepted.
		t.Fatal("positional check rejected a matching position")
	}

	st := PreEncodeStatic(lists[0])
	if e.CanUsePreEncoded(st, e.BlockCount()) {
		t.Fatal("static block accepted on a dynamic-table encoder")
	}
	e.DisableIndexing = true
	if !e.CanUsePreEncoded(st, 99) {
		t.Fatal("static block rejected on a static-only encoder")
	}
	if e.CanUsePreEncoded(pe0, 99) {
		t.Fatal("dynamic block accepted on a static-only encoder")
	}
}

// TestPreEncodeStaticMatchesLiveStatic pins the static-only mode: every
// block equals what a DisableIndexing encoder emits live, at any point
// in the sequence.
func TestPreEncodeStaticMatchesLiveStatic(t *testing.T) {
	lists := reqLists()
	live := NewEncoder()
	live.DisableIndexing = true
	for i, fields := range lists {
		pe := PreEncodeStatic(fields)
		if len(pe.Adds) != 0 {
			t.Fatalf("block %d: static pre-encode recorded %d table adds", i, len(pe.Adds))
		}
		got := live.EncodeBlock(fields)
		if !bytes.Equal(got, pe.Block) {
			t.Fatalf("block %d: live static %x != pre-encoded %x", i, got, pe.Block)
		}
	}
}

// TestEncoderResetMatchesFresh verifies a Reset encoder re-encodes the
// connection prefix byte-identically to a new encoder, and likewise for
// the decoder.
func TestEncoderResetMatchesFresh(t *testing.T) {
	lists := reqLists()
	e := NewEncoder()
	d := NewDecoder()
	var first [][]byte
	for _, fields := range lists {
		b := append([]byte(nil), e.EncodeBlock(fields)...)
		first = append(first, b)
		if _, err := d.DecodeBlock(b); err != nil {
			t.Fatal(err)
		}
	}
	e.Reset()
	d.Reset()
	if e.BlockCount() != 0 {
		t.Fatalf("BlockCount after Reset = %d", e.BlockCount())
	}
	for i, fields := range lists {
		b := e.EncodeBlock(fields)
		if !bytes.Equal(b, first[i]) {
			t.Fatalf("block %d after Reset: %x != %x", i, b, first[i])
		}
		fs, err := d.DecodeBlock(b)
		if err != nil {
			t.Fatal(err)
		}
		for j, hf := range fs {
			if hf != lists[i][j] {
				t.Fatalf("block %d field %d after Reset: %v", i, j, hf)
			}
		}
	}
}
