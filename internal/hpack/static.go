package hpack

// staticTable is the fixed table of RFC 7541 Appendix A. Index 0 is
// unused; HPACK indices are 1-based.
var staticTable = [...]HeaderField{
	{},
	{Name: ":authority"},
	{Name: ":method", Value: "GET"},
	{Name: ":method", Value: "POST"},
	{Name: ":path", Value: "/"},
	{Name: ":path", Value: "/index.html"},
	{Name: ":scheme", Value: "http"},
	{Name: ":scheme", Value: "https"},
	{Name: ":status", Value: "200"},
	{Name: ":status", Value: "204"},
	{Name: ":status", Value: "206"},
	{Name: ":status", Value: "304"},
	{Name: ":status", Value: "400"},
	{Name: ":status", Value: "404"},
	{Name: ":status", Value: "500"},
	{Name: "accept-charset"},
	{Name: "accept-encoding", Value: "gzip, deflate"},
	{Name: "accept-language"},
	{Name: "accept-ranges"},
	{Name: "accept"},
	{Name: "access-control-allow-origin"},
	{Name: "age"},
	{Name: "allow"},
	{Name: "authorization"},
	{Name: "cache-control"},
	{Name: "content-disposition"},
	{Name: "content-encoding"},
	{Name: "content-language"},
	{Name: "content-length"},
	{Name: "content-location"},
	{Name: "content-range"},
	{Name: "content-type"},
	{Name: "cookie"},
	{Name: "date"},
	{Name: "etag"},
	{Name: "expect"},
	{Name: "expires"},
	{Name: "from"},
	{Name: "host"},
	{Name: "if-match"},
	{Name: "if-modified-since"},
	{Name: "if-none-match"},
	{Name: "if-range"},
	{Name: "if-unmodified-since"},
	{Name: "last-modified"},
	{Name: "link"},
	{Name: "location"},
	{Name: "max-forwards"},
	{Name: "proxy-authenticate"},
	{Name: "proxy-authorization"},
	{Name: "range"},
	{Name: "referer"},
	{Name: "refresh"},
	{Name: "retry-after"},
	{Name: "server"},
	{Name: "set-cookie"},
	{Name: "strict-transport-security"},
	{Name: "transfer-encoding"},
	{Name: "user-agent"},
	{Name: "vary"},
	{Name: "via"},
	{Name: "www-authenticate"},
}

// staticTableLen is the number of valid static indices (61).
const staticTableLen = len(staticTable) - 1

// staticExact maps name\x00value to static index for exact matches.
var staticExact = func() map[string]int {
	m := make(map[string]int, staticTableLen)
	for i := 1; i <= staticTableLen; i++ {
		k := staticTable[i].Name + "\x00" + staticTable[i].Value
		if _, dup := m[k]; !dup {
			m[k] = i
		}
	}
	return m
}()

// staticName maps a header name to the first static index with that name.
var staticName = func() map[string]int {
	m := make(map[string]int, staticTableLen)
	for i := 1; i <= staticTableLen; i++ {
		if _, dup := m[staticTable[i].Name]; !dup {
			m[staticTable[i].Name] = i
		}
	}
	return m
}()
