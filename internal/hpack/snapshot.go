package hpack

// Snapshot/Restore capture codec state for the engine's
// fork-at-checkpoint replay: the dynamic table contents and the few
// scalars that affect future blocks. Scratch buffers (the encoder's
// output buffer, the decoder's field list and Huffman scratch) are
// rewritten from scratch by every block and hold nothing across a
// quiescent checkpoint, so they are deliberately not captured; the
// decoder's intern table is shared immutable state that never affects
// output. Snapshots own their slices and reuse them across calls.

// tableState is a linearized copy of a dynamic table, newest entry
// first.
type tableState struct {
	ents    []HeaderField
	size    uint32
	maxSize uint32
}

func (dt *dynamicTable) snapshot(dst *tableState) {
	dst.ents = dst.ents[:0]
	for i := 0; i < dt.n; i++ {
		dst.ents = append(dst.ents, dt.ents[(dt.head+i)%len(dt.ents)])
	}
	dst.size, dst.maxSize = dt.size, dt.maxSize
}

func (dt *dynamicTable) restore(st *tableState) {
	dt.reset()
	if len(st.ents) > len(dt.ents) {
		dt.ents = make([]HeaderField, max(2*len(st.ents), 8))
	}
	// Newest-first linear layout maps directly onto head=0.
	copy(dt.ents, st.ents)
	dt.head, dt.n = 0, len(st.ents)
	dt.size, dt.maxSize = st.size, st.maxSize
}

// EncoderSnapshot is a deep copy of an Encoder's connection state.
type EncoderSnapshot struct {
	dt              tableState
	pendingMax      uint32
	hasPending      bool
	disableIndexing bool
	blocks          int
}

// Snapshot copies the encoder's connection state into dst.
func (e *Encoder) Snapshot(dst *EncoderSnapshot) {
	e.dt.snapshot(&dst.dt)
	dst.hasPending = e.pendingMaxSize != nil
	if dst.hasPending {
		dst.pendingMax = *e.pendingMaxSize
	} else {
		dst.pendingMax = 0
	}
	dst.disableIndexing = e.DisableIndexing
	dst.blocks = e.blocks
}

// Restore rewinds the encoder to the captured state.
func (e *Encoder) Restore(snap *EncoderSnapshot) {
	e.dt.restore(&snap.dt)
	if snap.hasPending {
		v := snap.pendingMax
		e.pendingMaxSize = &v
	} else {
		e.pendingMaxSize = nil
	}
	e.DisableIndexing = snap.disableIndexing
	e.blocks = snap.blocks
	e.recordAdds = nil // prepare-time hook; never set across a checkpoint
}

// DecoderSnapshot is a deep copy of a Decoder's connection state.
type DecoderSnapshot struct {
	dt              tableState
	maxStringLength int
	maxAllowed      uint32
}

// Snapshot copies the decoder's connection state into dst.
func (d *Decoder) Snapshot(dst *DecoderSnapshot) {
	d.dt.snapshot(&dst.dt)
	dst.maxStringLength = d.MaxStringLength
	dst.maxAllowed = d.maxAllowed
}

// Restore rewinds the decoder to the captured state.
func (d *Decoder) Restore(snap *DecoderSnapshot) {
	d.dt.restore(&snap.dt)
	d.MaxStringLength = snap.maxStringLength
	d.maxAllowed = snap.maxAllowed
}
