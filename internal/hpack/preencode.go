package hpack

// Pre-encoded header blocks: the "encode once per site" half of the
// testbed's prepare-once/replay-many design. A replayed site's request,
// push-promise and response header lists are fixed at prepare time, so
// their HPACK blocks can be encoded once and replayed as a memcpy —
// provided the bytes are exactly what the live encoder would have
// emitted. Two modes make that guarantee:
//
//   - Static-only (Encoder.DisableIndexing): the encoder never touches
//     the dynamic table, so encoding is a pure function of the field
//     list and a statically pre-encoded block (PreEncodeStatic) is valid
//     at any point on the connection.
//
//   - Deterministic dynamic table: with indexing enabled, a block's
//     encoding depends only on the dynamic-table contents, which are in
//     turn determined by the sequence of blocks encoded since the
//     connection opened. A PreEncoded therefore carries the insertions
//     its encoding performed; replaying a pre-encoded *sequence* from a
//     pristine encoder (ApplyPreEncoded after a CanUsePreEncoded check
//     against the block counter) keeps the table — and hence every
//     byte — identical to live encoding. Byte equality is pinned by
//     TestPreEncodeMatchesLiveEncoder.
type PreEncoded struct {
	// Block is the complete header block fragment.
	Block []byte
	// Adds lists the dynamic-table insertions encoding the block
	// performed, in order (empty in static-only mode).
	Adds []HeaderField
	// Static marks a block encoded in static-only mode.
	Static bool
}

// PreEncodeBlock encodes fields on e and returns a stable copy of the
// block together with the dynamic-table insertions it performed. It
// advances e's state exactly like EncodeBlock, so chaining calls on one
// scratch encoder pre-encodes a whole connection-prefix sequence: the
// i-th returned block is valid on a live encoder whose BlockCount is i.
func (e *Encoder) PreEncodeBlock(fields []HeaderField) PreEncoded {
	var adds []HeaderField
	e.recordAdds = &adds
	block := e.EncodeBlock(fields)
	e.recordAdds = nil
	return PreEncoded{
		Block:  append([]byte(nil), block...),
		Adds:   adds,
		Static: e.DisableIndexing,
	}
}

// PreEncode pre-encodes a single block as the first on a connection
// (pristine dynamic table).
func PreEncode(fields []HeaderField) PreEncoded {
	return NewEncoder().PreEncodeBlock(fields)
}

// PreEncodeStatic pre-encodes fields in static-only mode; the result is
// valid at any point on a connection whose encoder has DisableIndexing
// set.
func PreEncodeStatic(fields []HeaderField) PreEncoded {
	e := NewEncoder()
	e.DisableIndexing = true
	return e.PreEncodeBlock(fields)
}

// CanUsePreEncoded reports whether emitting pe now is byte-identical to
// live-encoding its field list: no pending table-size signal, and either
// static-only blocks on a static-only encoder, or a dynamic-mode block
// at exactly its position in the pre-encoded sequence (seqPos blocks
// emitted since the connection opened).
func (e *Encoder) CanUsePreEncoded(pe PreEncoded, seqPos int) bool {
	if e.pendingMaxSize != nil {
		return false
	}
	if e.DisableIndexing {
		return pe.Static
	}
	return !pe.Static && e.blocks == seqPos
}

// ApplyPreEncoded replays the state transitions of emitting pe: the
// dynamic-table insertions its encoding performed, and the block count.
// The caller must have checked CanUsePreEncoded and must send pe.Block
// as this block's bytes.
func (e *Encoder) ApplyPreEncoded(pe PreEncoded) {
	for _, hf := range pe.Adds {
		e.dt.add(hf)
	}
	e.blocks++
}
