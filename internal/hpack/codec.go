package hpack

import "fmt"

// Encoder compresses header lists into HPACK header blocks. An Encoder is
// stateful (dynamic table) and must be paired with exactly one Decoder on
// the remote side, in connection order.
type Encoder struct {
	dt dynamicTable
	// pendingMaxSize holds a table-size reduction that must be signalled
	// at the start of the next header block.
	pendingMaxSize *uint32
	// DisableIndexing stops the encoder from adding entries to the
	// dynamic table (useful for benchmarks and ablations).
	DisableIndexing bool
	// buf is the reused output buffer; see EncodeBlock.
	buf []byte
}

// NewEncoder returns an encoder with the default 4096-byte dynamic table.
func NewEncoder() *Encoder {
	e := &Encoder{}
	e.dt.maxSize = DefaultDynamicTableSize
	return e
}

// SetMaxDynamicTableSize applies a table size chosen by the peer's
// SETTINGS_HEADER_TABLE_SIZE. Reductions are signalled in-band at the
// start of the next block, as required by RFC 7541 Section 4.2.
func (e *Encoder) SetMaxDynamicTableSize(m uint32) {
	if m < e.dt.maxSize {
		e.pendingMaxSize = &m
	}
	e.dt.setMaxSize(m)
}

// EncodeBlock compresses fields into a single header block fragment.
// The returned slice aliases the encoder's reused output buffer: it is
// only valid until the next EncodeBlock call, so callers that retain a
// block must copy it (the h2 layer serializes blocks into frames before
// encoding the next one).
func (e *Encoder) EncodeBlock(fields []HeaderField) []byte {
	dst := e.buf[:0]
	if e.pendingMaxSize != nil {
		dst = appendInt(dst, 0x20, 5, uint64(*e.pendingMaxSize))
		e.pendingMaxSize = nil
	}
	for _, hf := range fields {
		dst = e.appendField(dst, hf)
	}
	e.buf = dst
	return dst
}

func (e *Encoder) appendField(dst []byte, hf HeaderField) []byte {
	if hf.Sensitive {
		// Never-indexed literal (0001xxxx).
		nameIdx := e.bestNameIndex(hf.Name)
		dst = appendInt(dst, 0x10, 4, uint64(nameIdx))
		if nameIdx == 0 {
			dst = appendString(dst, hf.Name)
		}
		return appendString(dst, hf.Value)
	}
	// Exact match?
	if i, ok := staticExact[hf.Name+"\x00"+hf.Value]; ok {
		return appendInt(dst, 0x80, 7, uint64(i))
	}
	if i, exactDyn := e.dt.search(hf); i != 0 && !exactDyn {
		return appendInt(dst, 0x80, 7, uint64(staticTableLen+i))
	}
	// Literal with incremental indexing (01xxxxxx), indexed name if any.
	nameIdx := e.bestNameIndex(hf.Name)
	if e.DisableIndexing {
		dst = appendInt(dst, 0, 4, uint64(nameIdx)) // without indexing
	} else {
		dst = appendInt(dst, 0x40, 6, uint64(nameIdx))
		e.dt.add(hf)
	}
	if nameIdx == 0 {
		dst = appendString(dst, hf.Name)
	}
	return appendString(dst, hf.Value)
}

// bestNameIndex returns an HPACK index whose entry has the given name, or
// zero when the name must be sent literally.
func (e *Encoder) bestNameIndex(name string) int {
	if i, ok := staticName[name]; ok {
		return i
	}
	if i, nameOnly := e.dt.search(HeaderField{Name: name, Value: "\x00hpack-no-such-value"}); i != 0 && nameOnly {
		return staticTableLen + i
	}
	return 0
}

// DynamicTableSize returns the current dynamic table occupancy in bytes.
func (e *Encoder) DynamicTableSize() uint32 { return e.dt.size }

// Decoder decompresses HPACK header blocks.
type Decoder struct {
	dt dynamicTable
	// MaxStringLength bounds individual decoded strings; zero means the
	// default of 1 MiB.
	MaxStringLength int
	// maxAllowed is the ceiling the decoder permits for in-band dynamic
	// table size updates (our SETTINGS_HEADER_TABLE_SIZE).
	maxAllowed uint32
}

// NewDecoder returns a decoder with the default 4096-byte dynamic table.
func NewDecoder() *Decoder {
	d := &Decoder{maxAllowed: DefaultDynamicTableSize}
	d.dt.maxSize = DefaultDynamicTableSize
	return d
}

// SetAllowedMaxDynamicTableSize updates the ceiling we advertised via
// SETTINGS_HEADER_TABLE_SIZE.
func (d *Decoder) SetAllowedMaxDynamicTableSize(m uint32) {
	d.maxAllowed = m
	if d.dt.maxSize > m {
		d.dt.setMaxSize(m)
	}
}

func (d *Decoder) maxString() int {
	if d.MaxStringLength > 0 {
		return d.MaxStringLength
	}
	return 1 << 20
}

// lookup resolves an absolute HPACK index.
func (d *Decoder) lookup(i uint64) (HeaderField, error) {
	if i == 0 {
		return HeaderField{}, fmt.Errorf("%w: index 0", ErrDecode)
	}
	if i <= uint64(staticTableLen) {
		return staticTable[i], nil
	}
	hf, ok := d.dt.at(int(i) - staticTableLen)
	if !ok {
		return HeaderField{}, fmt.Errorf("%w: index %d out of table", ErrDecode, i)
	}
	return hf, nil
}

// DecodeBlock decompresses a complete header block.
func (d *Decoder) DecodeBlock(p []byte) ([]HeaderField, error) {
	var out []HeaderField
	seenField := false
	for len(p) > 0 {
		b := p[0]
		switch {
		case b&0x80 != 0: // indexed field
			i, rest, err := readInt(p, 7)
			if err != nil {
				return nil, err
			}
			p = rest
			hf, err := d.lookup(i)
			if err != nil {
				return nil, err
			}
			out = append(out, hf)
			seenField = true

		case b&0xc0 == 0x40: // literal with incremental indexing
			hf, rest, err := d.readLiteral(p, 6)
			if err != nil {
				return nil, err
			}
			p = rest
			d.dt.add(hf)
			out = append(out, hf)
			seenField = true

		case b&0xe0 == 0x20: // dynamic table size update
			if seenField {
				return nil, fmt.Errorf("%w: table size update after fields", ErrDecode)
			}
			m, rest, err := readInt(p, 5)
			if err != nil {
				return nil, err
			}
			if m > uint64(d.maxAllowed) {
				return nil, fmt.Errorf("%w: table size %d above allowed %d", ErrDecode, m, d.maxAllowed)
			}
			d.dt.setMaxSize(uint32(m))
			p = rest

		case b&0xf0 == 0x10: // never indexed literal
			hf, rest, err := d.readLiteral(p, 4)
			if err != nil {
				return nil, err
			}
			hf.Sensitive = true
			p = rest
			out = append(out, hf)
			seenField = true

		default: // 0000xxxx literal without indexing
			hf, rest, err := d.readLiteral(p, 4)
			if err != nil {
				return nil, err
			}
			p = rest
			out = append(out, hf)
			seenField = true
		}
	}
	return out, nil
}

func (d *Decoder) readLiteral(p []byte, prefix uint8) (HeaderField, []byte, error) {
	i, p, err := readInt(p, prefix)
	if err != nil {
		return HeaderField{}, nil, err
	}
	var hf HeaderField
	if i != 0 {
		base, err := d.lookup(i)
		if err != nil {
			return HeaderField{}, nil, err
		}
		hf.Name = base.Name
	} else {
		hf.Name, p, err = readString(p, d.maxString())
		if err != nil {
			return HeaderField{}, nil, err
		}
	}
	hf.Value, p, err = readString(p, d.maxString())
	if err != nil {
		return HeaderField{}, nil, err
	}
	return hf, p, nil
}

// DynamicTableSize returns the current dynamic table occupancy in bytes.
func (d *Decoder) DynamicTableSize() uint32 { return d.dt.size }
