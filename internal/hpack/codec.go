package hpack

import "fmt"

// Encoder compresses header lists into HPACK header blocks. An Encoder is
// stateful (dynamic table) and must be paired with exactly one Decoder on
// the remote side, in connection order.
//
//repolint:pooled
type Encoder struct {
	dt dynamicTable
	// pendingMaxSize holds a table-size reduction that must be signalled
	// at the start of the next header block.
	pendingMaxSize *uint32
	// DisableIndexing stops the encoder from adding entries to the
	// dynamic table. This is the static-only mode: without dynamic-table
	// state, encoding a header list is a pure function, which is what
	// makes statically pre-encoded blocks valid at any connection point.
	DisableIndexing bool
	// buf is the reused output buffer; see EncodeBlock.
	//
	//repolint:keep rewritten from length zero by every EncodeBlock
	buf []byte
	// blocks counts header blocks emitted (EncodeBlock or
	// ApplyPreEncoded) since construction/Reset; pre-encoded sequences
	// use it to prove the table is at a known point.
	blocks int
	// recordAdds, when set, collects the dynamic-table insertions an
	// EncodeBlock performs (the PreEncodeBlock hook).
	//
	//repolint:keep prepare-time hook, set and cleared within one PreEncodeBlock call; never live at a checkpoint
	recordAdds *[]HeaderField
}

// NewEncoder returns an encoder with the default 4096-byte dynamic table.
func NewEncoder() *Encoder {
	e := &Encoder{}
	e.dt.maxSize = DefaultDynamicTableSize
	return e
}

// Reset returns the encoder to its post-NewEncoder state while keeping
// its allocated buffers, so a pooled connection reuses the encoder
// without re-growing the table ring or the output buffer.
func (e *Encoder) Reset() {
	e.dt.reset()
	e.dt.maxSize = DefaultDynamicTableSize
	e.pendingMaxSize = nil
	e.DisableIndexing = false
	e.blocks = 0
	e.recordAdds = nil
}

// BlockCount returns the number of header blocks emitted since the
// encoder was constructed or Reset.
func (e *Encoder) BlockCount() int { return e.blocks }

// SetMaxDynamicTableSize applies a table size chosen by the peer's
// SETTINGS_HEADER_TABLE_SIZE. Reductions are signalled in-band at the
// start of the next block, as required by RFC 7541 Section 4.2.
func (e *Encoder) SetMaxDynamicTableSize(m uint32) {
	if m < e.dt.maxSize {
		e.pendingMaxSize = &m
	}
	e.dt.setMaxSize(m)
}

// EncodeBlock compresses fields into a single header block fragment.
// The returned slice aliases the encoder's reused output buffer: it is
// only valid until the next EncodeBlock call, so callers that retain a
// block must copy it (the h2 layer serializes blocks into frames before
// encoding the next one).
func (e *Encoder) EncodeBlock(fields []HeaderField) []byte {
	dst := e.buf[:0]
	if e.pendingMaxSize != nil {
		dst = appendInt(dst, 0x20, 5, uint64(*e.pendingMaxSize))
		e.pendingMaxSize = nil
	}
	for _, hf := range fields {
		dst = e.appendField(dst, hf)
	}
	e.buf = dst
	e.blocks++
	return dst
}

func (e *Encoder) appendField(dst []byte, hf HeaderField) []byte {
	if hf.Sensitive {
		// Never-indexed literal (0001xxxx).
		nameIdx := e.bestNameIndex(hf.Name)
		dst = appendInt(dst, 0x10, 4, uint64(nameIdx))
		if nameIdx == 0 {
			dst = appendString(dst, hf.Name)
		}
		return appendString(dst, hf.Value)
	}
	// Exact match?
	if i, ok := staticExact[hf.Name+"\x00"+hf.Value]; ok {
		return appendInt(dst, 0x80, 7, uint64(i))
	}
	if i, exactDyn := e.dt.search(hf); i != 0 && !exactDyn {
		return appendInt(dst, 0x80, 7, uint64(staticTableLen+i))
	}
	// Literal with incremental indexing (01xxxxxx), indexed name if any.
	nameIdx := e.bestNameIndex(hf.Name)
	if e.DisableIndexing {
		dst = appendInt(dst, 0, 4, uint64(nameIdx)) // without indexing
	} else {
		dst = appendInt(dst, 0x40, 6, uint64(nameIdx))
		e.dt.add(hf)
		if e.recordAdds != nil {
			*e.recordAdds = append(*e.recordAdds, hf)
		}
	}
	if nameIdx == 0 {
		dst = appendString(dst, hf.Name)
	}
	return appendString(dst, hf.Value)
}

// bestNameIndex returns an HPACK index whose entry has the given name, or
// zero when the name must be sent literally.
func (e *Encoder) bestNameIndex(name string) int {
	if i, ok := staticName[name]; ok {
		return i
	}
	if i, nameOnly := e.dt.search(HeaderField{Name: name, Value: "\x00hpack-no-such-value"}); i != 0 && nameOnly {
		return staticTableLen + i
	}
	return 0
}

// DynamicTableSize returns the current dynamic table occupancy in bytes.
func (e *Encoder) DynamicTableSize() uint32 { return e.dt.size }

// Decoder decompresses HPACK header blocks.
//
//repolint:pooled
type Decoder struct {
	dt dynamicTable
	// MaxStringLength bounds individual decoded strings; zero means the
	// default of 1 MiB.
	MaxStringLength int
	// maxAllowed is the ceiling the decoder permits for in-band dynamic
	// table size updates (our SETTINGS_HEADER_TABLE_SIZE).
	maxAllowed uint32

	// fields is the reused DecodeBlock output; see DecodeBlock.
	//
	//repolint:keep rewritten from length zero by every DecodeBlock
	fields []HeaderField
	// strs interns decoded string literals: replayed traffic repeats the
	// same authorities, paths and content types on every request, so the
	// steady state decodes without allocating. Bounded by maxInterned.
	//
	//repolint:keep interned strings are immutable; sharing them across connections changes no output
	strs map[string]string
	// hscratch is the reused Huffman decode buffer.
	//
	//repolint:keep scratch, rewritten per Huffman-decoded string
	hscratch []byte
}

// maxInterned bounds the decoder's string intern table so adversarial
// header streams cannot grow it without limit.
const maxInterned = 4096

// NewDecoder returns a decoder with the default 4096-byte dynamic table.
func NewDecoder() *Decoder {
	d := &Decoder{maxAllowed: DefaultDynamicTableSize}
	d.dt.maxSize = DefaultDynamicTableSize
	return d
}

// Reset returns the decoder to its post-NewDecoder state while keeping
// its allocated buffers and the interned-string table (interned strings
// are immutable, so reuse across connections changes no output).
func (d *Decoder) Reset() {
	d.dt.reset()
	d.dt.maxSize = DefaultDynamicTableSize
	d.maxAllowed = DefaultDynamicTableSize
	d.MaxStringLength = 0
}

// SetAllowedMaxDynamicTableSize updates the ceiling we advertised via
// SETTINGS_HEADER_TABLE_SIZE.
func (d *Decoder) SetAllowedMaxDynamicTableSize(m uint32) {
	d.maxAllowed = m
	if d.dt.maxSize > m {
		d.dt.setMaxSize(m)
	}
}

func (d *Decoder) maxString() int {
	if d.MaxStringLength > 0 {
		return d.MaxStringLength
	}
	return 1 << 20
}

// lookup resolves an absolute HPACK index.
func (d *Decoder) lookup(i uint64) (HeaderField, error) {
	if i == 0 {
		return HeaderField{}, fmt.Errorf("%w: index 0", ErrDecode)
	}
	if i <= uint64(staticTableLen) {
		return staticTable[i], nil
	}
	hf, ok := d.dt.at(int(i) - staticTableLen)
	if !ok {
		return HeaderField{}, fmt.Errorf("%w: index %d out of table", ErrDecode, i)
	}
	return hf, nil
}

// DecodeBlock decompresses a complete header block. The returned slice
// aliases the decoder's reused output buffer: it is only valid until the
// next DecodeBlock call, so callers that retain fields past that point
// must copy them (the field strings themselves are immutable and safe to
// keep).
func (d *Decoder) DecodeBlock(p []byte) ([]HeaderField, error) {
	out := d.fields[:0]
	defer func() { d.fields = out }()
	seenField := false
	for len(p) > 0 {
		b := p[0]
		switch {
		case b&0x80 != 0: // indexed field
			i, rest, err := readInt(p, 7)
			if err != nil {
				return nil, err
			}
			p = rest
			hf, err := d.lookup(i)
			if err != nil {
				return nil, err
			}
			out = append(out, hf)
			seenField = true

		case b&0xc0 == 0x40: // literal with incremental indexing
			hf, rest, err := d.readLiteral(p, 6)
			if err != nil {
				return nil, err
			}
			p = rest
			d.dt.add(hf)
			out = append(out, hf)
			seenField = true

		case b&0xe0 == 0x20: // dynamic table size update
			if seenField {
				return nil, fmt.Errorf("%w: table size update after fields", ErrDecode)
			}
			m, rest, err := readInt(p, 5)
			if err != nil {
				return nil, err
			}
			if m > uint64(d.maxAllowed) {
				return nil, fmt.Errorf("%w: table size %d above allowed %d", ErrDecode, m, d.maxAllowed)
			}
			d.dt.setMaxSize(uint32(m))
			p = rest

		case b&0xf0 == 0x10: // never indexed literal
			hf, rest, err := d.readLiteral(p, 4)
			if err != nil {
				return nil, err
			}
			hf.Sensitive = true
			p = rest
			out = append(out, hf)
			seenField = true

		default: // 0000xxxx literal without indexing
			hf, rest, err := d.readLiteral(p, 4)
			if err != nil {
				return nil, err
			}
			p = rest
			out = append(out, hf)
			seenField = true
		}
	}
	return out, nil
}

func (d *Decoder) readLiteral(p []byte, prefix uint8) (HeaderField, []byte, error) {
	i, p, err := readInt(p, prefix)
	if err != nil {
		return HeaderField{}, nil, err
	}
	var hf HeaderField
	if i != 0 {
		base, err := d.lookup(i)
		if err != nil {
			return HeaderField{}, nil, err
		}
		hf.Name = base.Name
	} else {
		hf.Name, p, err = d.readString(p)
		if err != nil {
			return HeaderField{}, nil, err
		}
	}
	hf.Value, p, err = d.readString(p)
	if err != nil {
		return HeaderField{}, nil, err
	}
	return hf, p, nil
}

// readString decodes one string literal, interning the result so
// repeated literals (the same authorities and paths on every replayed
// request) are decoded without allocating.
func (d *Decoder) readString(p []byte) (string, []byte, error) {
	if len(p) == 0 {
		return "", nil, fmt.Errorf("%w: truncated string", ErrDecode)
	}
	huff := p[0]&0x80 != 0
	n, p, err := readInt(p, 7)
	if err != nil {
		return "", nil, err
	}
	if n > uint64(d.maxString()) {
		return "", nil, fmt.Errorf("%w: string length %d exceeds limit %d", ErrDecode, n, d.maxString())
	}
	if uint64(len(p)) < n {
		return "", nil, fmt.Errorf("%w: string extends past block", ErrDecode)
	}
	raw := p[:n]
	p = p[n:]
	b := raw
	if huff {
		d.hscratch, err = huffmanDecodeAppend(d.hscratch[:0], raw)
		if err != nil {
			return "", nil, err
		}
		b = d.hscratch
	}
	if s, ok := d.strs[string(b)]; ok {
		return s, p, nil
	}
	s := string(b)
	if len(d.strs) < maxInterned {
		if d.strs == nil {
			d.strs = make(map[string]string)
		}
		d.strs[s] = s
	}
	return s, p, nil
}

// DynamicTableSize returns the current dynamic table occupancy in bytes.
func (d *Decoder) DynamicTableSize() uint32 { return d.dt.size }
