package hpack

import "testing"

// FuzzDecodeBlock runs arbitrary header-block bytes through the HPACK
// decoder. The block is peer-controlled input, so the contract is that
// malformed bytes return an error from DecodeBlock — never a panic, an
// out-of-range table lookup, or runaway memory (the decoder's string
// and field-count limits bound the output).
//
// Seeds are real encoder output — including the pre-encode fixtures'
// dynamic and static modes — so mutations start from valid blocks and
// explore integer-prefix boundaries, Huffman padding, and table-size
// update placement.
func FuzzDecodeBlock(f *testing.F) {
	reqFields := []HeaderField{
		{Name: ":method", Value: "GET"},
		{Name: ":scheme", Value: "https"},
		{Name: ":authority", Value: "site000.random-100.test"},
		{Name: ":path", Value: "/css/style0.css"},
		{Name: "accept", Value: "text/css,*/*;q=0.1"},
	}
	respFields := []HeaderField{
		{Name: ":status", Value: "200"},
		{Name: "content-type", Value: "text/html; charset=utf-8"},
		{Name: "content-length", Value: "48231"},
		{Name: "cache-control", Value: "max-age=604800"},
		{Name: "cookie", Value: "session=0123456789abcdef", Sensitive: true},
	}
	// Dynamic-mode sequence: the second block's indexed references into
	// the dynamic table are the stateful shape worth mutating.
	e := NewEncoder()
	f.Add(append([]byte(nil), e.EncodeBlock(reqFields)...))
	f.Add(append([]byte(nil), e.EncodeBlock(respFields)...))
	// Static-only pre-encoded fixture (pure function of the field list).
	f.Add(PreEncodeStatic(reqFields).Block)
	// First-block pre-encode fixture (pristine-table dynamic encoding).
	f.Add(PreEncode(respFields).Block)
	f.Add([]byte{0x20})             // table size update to zero
	f.Add([]byte{0x3f, 0xff, 0xff}) // large integer prefix

	f.Fuzz(func(t *testing.T, block []byte) {
		d := NewDecoder()
		fields, err := d.DecodeBlock(block)
		if err != nil {
			return // surfaced error is the contract; panics are the bug
		}
		for _, hf := range fields {
			_ = hf.Size()
		}
		// A decoder that accepted the block must stay usable: decode a
		// known-good block on the same state.
		if _, err := d.DecodeBlock([]byte{0x82}); err != nil {
			t.Fatalf("decoder wedged after accepted block: %v", err)
		}
	})
}
