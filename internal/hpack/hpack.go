// Package hpack implements HPACK header compression (RFC 7541) for the
// from-scratch HTTP/2 stack in internal/h2: static and dynamic tables,
// prefix-coded integers, and Huffman-coded string literals.
//
// The implementation is complete enough to interoperate with itself over
// real connections and to be validated against the RFC 7541 Appendix C
// test vectors (see hpack_test.go).
package hpack

import (
	"errors"
	"fmt"
)

// A HeaderField is a single name/value pair. Sensitive fields are encoded
// as never-indexed literals so intermediaries must not remember them.
type HeaderField struct {
	Name, Value string
	Sensitive   bool
}

// Size returns the RFC 7541 Section 4.1 size of the entry (octets + 32).
func (hf HeaderField) Size() uint32 {
	return uint32(len(hf.Name) + len(hf.Value) + 32)
}

func (hf HeaderField) String() string {
	return fmt.Sprintf("%s: %s", hf.Name, hf.Value)
}

// DefaultDynamicTableSize is the SETTINGS_HEADER_TABLE_SIZE default.
const DefaultDynamicTableSize = 4096

// ErrDecode is the base error for malformed header blocks.
var ErrDecode = errors.New("hpack: decoding error")

// dynamicTable is the FIFO table of recently encoded/decoded fields,
// backed by a ring buffer so inserting a new entry never copies or
// reallocates the existing ones (the old prepend idiom allocated a
// fresh slice per insertion, which dominated the warm-run profile).
// Logical entry 1 is the newest (absolute HPACK index 62).
//
//repolint:pooled
type dynamicTable struct {
	ents    []HeaderField // ring storage; entry i (1-based) lives at (head+i-1)%len
	head    int           // storage index of the newest entry
	n       int           // live entries
	size    uint32
	maxSize uint32 //repolint:keep managed by setMaxSize; the codec Resets restore the default explicitly
}

func (dt *dynamicTable) setMaxSize(m uint32) {
	dt.maxSize = m
	dt.evict()
}

// reset empties the table, keeping the ring storage for reuse. Entries
// are zeroed so the table does not pin decoded strings past a
// connection's lifetime.
func (dt *dynamicTable) reset() {
	for i := 0; i < dt.n; i++ {
		dt.ents[(dt.head+i)%len(dt.ents)] = HeaderField{}
	}
	dt.head, dt.n, dt.size = 0, 0, 0
}

func (dt *dynamicTable) add(hf HeaderField) {
	sz := hf.Size()
	if sz > dt.maxSize {
		// An entry larger than the table empties it (RFC 7541 4.4).
		dt.reset()
		return
	}
	if dt.n == len(dt.ents) {
		grown := make([]HeaderField, max(2*len(dt.ents), 8))
		for i := 0; i < dt.n; i++ {
			grown[i] = dt.ents[(dt.head+i)%len(dt.ents)]
		}
		dt.ents, dt.head = grown, 0
	}
	dt.head = (dt.head - 1 + len(dt.ents)) % len(dt.ents)
	dt.ents[dt.head] = hf
	dt.n++
	dt.size += sz
	dt.evict()
}

func (dt *dynamicTable) evict() {
	for dt.size > dt.maxSize && dt.n > 0 {
		idx := (dt.head + dt.n - 1) % len(dt.ents)
		dt.size -= dt.ents[idx].Size()
		dt.ents[idx] = HeaderField{}
		dt.n--
	}
}

// at returns the entry with 1-based dynamic index i (1 = newest).
func (dt *dynamicTable) at(i int) (HeaderField, bool) {
	if i < 1 || i > dt.n {
		return HeaderField{}, false
	}
	return dt.ents[(dt.head+i-1)%len(dt.ents)], true
}

// search returns the 1-based dynamic index of the best match:
// exact (name+value) match preferred, else a name-only match; 0 if none.
func (dt *dynamicTable) search(hf HeaderField) (idx int, nameOnly bool) {
	nameIdx := 0
	for i := 0; i < dt.n; i++ {
		e := &dt.ents[(dt.head+i)%len(dt.ents)]
		if e.Name != hf.Name {
			continue
		}
		if e.Value == hf.Value {
			return i + 1, false
		}
		if nameIdx == 0 {
			nameIdx = i + 1
		}
	}
	if nameIdx != 0 {
		return nameIdx, true
	}
	return 0, false
}

// --- integer primitives (RFC 7541 Section 5.1) ---

// appendInt encodes v with an n-bit prefix. first holds the bits already
// set in the first byte (pattern bits above the prefix).
func appendInt(dst []byte, first byte, n uint8, v uint64) []byte {
	max := uint64(1)<<n - 1
	if v < max {
		return append(dst, first|byte(v))
	}
	dst = append(dst, first|byte(max))
	v -= max
	for v >= 128 {
		dst = append(dst, byte(v&0x7f)|0x80)
		v >>= 7
	}
	return append(dst, byte(v))
}

// readInt decodes an n-bit-prefix integer starting at p[0].
func readInt(p []byte, n uint8) (v uint64, rest []byte, err error) {
	if len(p) == 0 {
		return 0, nil, fmt.Errorf("%w: truncated integer", ErrDecode)
	}
	max := uint64(1)<<n - 1
	v = uint64(p[0]) & max
	p = p[1:]
	if v < max {
		return v, p, nil
	}
	var shift uint
	for {
		if len(p) == 0 {
			return 0, nil, fmt.Errorf("%w: truncated varint", ErrDecode)
		}
		b := p[0]
		p = p[1:]
		v += uint64(b&0x7f) << shift
		if b&0x80 == 0 {
			return v, p, nil
		}
		shift += 7
		if shift > 56 {
			return 0, nil, fmt.Errorf("%w: integer overflow", ErrDecode)
		}
	}
}

// --- string primitives (RFC 7541 Section 5.2) ---

// appendString encodes s, using Huffman coding when it is shorter.
func appendString(dst []byte, s string) []byte {
	hlen := HuffmanEncodeLength(s)
	if hlen < len(s) {
		dst = appendInt(dst, 0x80, 7, uint64(hlen))
		return HuffmanEncode(dst, s)
	}
	dst = appendInt(dst, 0, 7, uint64(len(s)))
	return append(dst, s...)
}
