// Package hpack implements HPACK header compression (RFC 7541) for the
// from-scratch HTTP/2 stack in internal/h2: static and dynamic tables,
// prefix-coded integers, and Huffman-coded string literals.
//
// The implementation is complete enough to interoperate with itself over
// real connections and to be validated against the RFC 7541 Appendix C
// test vectors (see hpack_test.go).
package hpack

import (
	"errors"
	"fmt"
)

// A HeaderField is a single name/value pair. Sensitive fields are encoded
// as never-indexed literals so intermediaries must not remember them.
type HeaderField struct {
	Name, Value string
	Sensitive   bool
}

// Size returns the RFC 7541 Section 4.1 size of the entry (octets + 32).
func (hf HeaderField) Size() uint32 {
	return uint32(len(hf.Name) + len(hf.Value) + 32)
}

func (hf HeaderField) String() string {
	return fmt.Sprintf("%s: %s", hf.Name, hf.Value)
}

// DefaultDynamicTableSize is the SETTINGS_HEADER_TABLE_SIZE default.
const DefaultDynamicTableSize = 4096

// ErrDecode is the base error for malformed header blocks.
var ErrDecode = errors.New("hpack: decoding error")

// dynamicTable is the FIFO table of recently encoded/decoded fields.
// Entry 0 is the newest (absolute HPACK index 62).
type dynamicTable struct {
	ents    []HeaderField
	size    uint32
	maxSize uint32
}

func (dt *dynamicTable) setMaxSize(m uint32) {
	dt.maxSize = m
	dt.evict()
}

func (dt *dynamicTable) add(hf HeaderField) {
	sz := hf.Size()
	if sz > dt.maxSize {
		// An entry larger than the table empties it (RFC 7541 4.4).
		dt.ents = nil
		dt.size = 0
		return
	}
	dt.ents = append([]HeaderField{hf}, dt.ents...)
	dt.size += sz
	dt.evict()
}

func (dt *dynamicTable) evict() {
	for dt.size > dt.maxSize && len(dt.ents) > 0 {
		last := dt.ents[len(dt.ents)-1]
		dt.size -= last.Size()
		dt.ents = dt.ents[:len(dt.ents)-1]
	}
}

// at returns the entry with 1-based dynamic index i (1 = newest).
func (dt *dynamicTable) at(i int) (HeaderField, bool) {
	if i < 1 || i > len(dt.ents) {
		return HeaderField{}, false
	}
	return dt.ents[i-1], true
}

// search returns the 1-based dynamic index of the best match:
// exact (name+value) match preferred, else a name-only match; 0 if none.
func (dt *dynamicTable) search(hf HeaderField) (idx int, nameOnly bool) {
	nameIdx := 0
	for i, e := range dt.ents {
		if e.Name != hf.Name {
			continue
		}
		if e.Value == hf.Value {
			return i + 1, false
		}
		if nameIdx == 0 {
			nameIdx = i + 1
		}
	}
	if nameIdx != 0 {
		return nameIdx, true
	}
	return 0, false
}

// --- integer primitives (RFC 7541 Section 5.1) ---

// appendInt encodes v with an n-bit prefix. first holds the bits already
// set in the first byte (pattern bits above the prefix).
func appendInt(dst []byte, first byte, n uint8, v uint64) []byte {
	max := uint64(1)<<n - 1
	if v < max {
		return append(dst, first|byte(v))
	}
	dst = append(dst, first|byte(max))
	v -= max
	for v >= 128 {
		dst = append(dst, byte(v&0x7f)|0x80)
		v >>= 7
	}
	return append(dst, byte(v))
}

// readInt decodes an n-bit-prefix integer starting at p[0].
func readInt(p []byte, n uint8) (v uint64, rest []byte, err error) {
	if len(p) == 0 {
		return 0, nil, fmt.Errorf("%w: truncated integer", ErrDecode)
	}
	max := uint64(1)<<n - 1
	v = uint64(p[0]) & max
	p = p[1:]
	if v < max {
		return v, p, nil
	}
	var shift uint
	for {
		if len(p) == 0 {
			return 0, nil, fmt.Errorf("%w: truncated varint", ErrDecode)
		}
		b := p[0]
		p = p[1:]
		v += uint64(b&0x7f) << shift
		if b&0x80 == 0 {
			return v, p, nil
		}
		shift += 7
		if shift > 56 {
			return 0, nil, fmt.Errorf("%w: integer overflow", ErrDecode)
		}
	}
}

// --- string primitives (RFC 7541 Section 5.2) ---

// appendString encodes s, using Huffman coding when it is shorter.
func appendString(dst []byte, s string) []byte {
	hlen := HuffmanEncodeLength(s)
	if hlen < len(s) {
		dst = appendInt(dst, 0x80, 7, uint64(hlen))
		return HuffmanEncode(dst, s)
	}
	dst = appendInt(dst, 0, 7, uint64(len(s)))
	return append(dst, s...)
}

func readString(p []byte, maxLen int) (s string, rest []byte, err error) {
	if len(p) == 0 {
		return "", nil, fmt.Errorf("%w: truncated string", ErrDecode)
	}
	huff := p[0]&0x80 != 0
	n, p, err := readInt(p, 7)
	if err != nil {
		return "", nil, err
	}
	if n > uint64(maxLen) {
		return "", nil, fmt.Errorf("%w: string length %d exceeds limit %d", ErrDecode, n, maxLen)
	}
	if uint64(len(p)) < n {
		return "", nil, fmt.Errorf("%w: string extends past block", ErrDecode)
	}
	raw := p[:n]
	p = p[n:]
	if huff {
		dec, err := HuffmanDecode(raw)
		if err != nil {
			return "", nil, err
		}
		return string(dec), p, nil
	}
	return string(raw), p, nil
}
