package hpack

import (
	"errors"
	"fmt"
)

// ErrHuffman is returned for invalid Huffman-coded string literals.
var ErrHuffman = errors.New("hpack: invalid Huffman-coded data")

// huffNode is a binary decoding tree node built from the RFC 7541 table.
type huffNode struct {
	children [2]*huffNode
	sym      byte
	leaf     bool
}

var huffRoot = buildHuffTree()

func buildHuffTree() *huffNode {
	root := &huffNode{}
	for sym := 0; sym < 256; sym++ {
		code := huffCodes[sym]
		bits := int(huffLens[sym])
		n := root
		for i := bits - 1; i >= 0; i-- {
			b := (code >> uint(i)) & 1
			if n.children[b] == nil {
				n.children[b] = &huffNode{}
			}
			n = n.children[b]
		}
		n.sym = byte(sym)
		n.leaf = true
	}
	return root
}

// HuffmanDecode decodes an RFC 7541 Huffman-coded string. Padding must be
// the most-significant bits of the EOS symbol (all ones) and shorter than
// one byte, per the RFC's strict requirements.
func HuffmanDecode(data []byte) ([]byte, error) {
	return huffmanDecodeAppend(nil, data)
}

// huffmanDecodeAppend appends the decoded string onto dst (the decoder's
// reused scratch buffer).
func huffmanDecodeAppend(dst, data []byte) ([]byte, error) {
	out := dst
	n := huffRoot
	depth := 0 // bits consumed on the current partial symbol
	allOnes := true
	for _, b := range data {
		for i := 7; i >= 0; i-- {
			bit := (b >> uint(i)) & 1
			if bit == 0 {
				allOnes = false
			}
			n = n.children[bit]
			if n == nil {
				return nil, ErrHuffman
			}
			depth++
			if n.leaf {
				out = append(out, n.sym)
				n = huffRoot
				depth = 0
				allOnes = true
			}
		}
	}
	// Remaining bits are padding: must be <8 bits, all ones (EOS prefix).
	if depth > 7 {
		return nil, fmt.Errorf("%w: padding longer than 7 bits", ErrHuffman)
	}
	if depth > 0 && !allOnes {
		return nil, fmt.Errorf("%w: padding not EOS prefix", ErrHuffman)
	}
	return out, nil
}

// HuffmanEncodeLength returns the encoded size of s in bytes.
func HuffmanEncodeLength(s string) int {
	bits := 0
	for i := 0; i < len(s); i++ {
		bits += int(huffLens[s[i]])
	}
	return (bits + 7) / 8
}

// HuffmanEncode appends the Huffman coding of s to dst.
func HuffmanEncode(dst []byte, s string) []byte {
	var acc uint64
	var nbits uint
	for i := 0; i < len(s); i++ {
		c := s[i]
		acc = acc<<uint(huffLens[c]) | uint64(huffCodes[c])
		nbits += uint(huffLens[c])
		for nbits >= 8 {
			nbits -= 8
			dst = append(dst, byte(acc>>nbits))
		}
	}
	if nbits > 0 {
		// Pad with the most-significant bits of EOS (all ones).
		acc = acc<<(8-nbits) | (0xff >> nbits)
		dst = append(dst, byte(acc))
	}
	return dst
}
