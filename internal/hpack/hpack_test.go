package hpack

import (
	"bytes"
	"encoding/hex"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func unhex(t *testing.T, s string) []byte {
	t.Helper()
	b, err := hex.DecodeString(strings.Map(func(r rune) rune {
		if r == ' ' || r == '\n' || r == '\t' {
			return -1
		}
		return r
	}, s))
	if err != nil {
		t.Fatalf("bad hex: %v", err)
	}
	return b
}

// --- RFC 7541 Appendix C.4: Huffman-coded request examples ---

func TestHuffmanRFCVectors(t *testing.T) {
	vectors := []struct {
		text string
		hex  string
	}{
		{"www.example.com", "f1e3 c2e5 f23a 6ba0 ab90 f4ff"},
		{"no-cache", "a8eb 1064 9cbf"},
		{"custom-key", "25a8 49e9 5ba9 7d7f"},
		{"custom-value", "25a8 49e9 5bb8 e8b4 bf"},
		{"private", "aec3 771a 4b"},
		{"Mon, 21 Oct 2013 20:13:21 GMT", "d07a be94 1054 d444 a820 0595 040b 8166 e082 a62d 1bff"},
		{"https://www.example.com", "9d29 ad17 1863 c78f 0b97 c8e9 ae82 ae43 d3"},
		{"302", "6402"},
	}
	for _, v := range vectors {
		want := unhex(t, v.hex)
		got := HuffmanEncode(nil, v.text)
		if !bytes.Equal(got, want) {
			t.Errorf("HuffmanEncode(%q) = %x, want %x", v.text, got, want)
		}
		if n := HuffmanEncodeLength(v.text); n != len(want) {
			t.Errorf("HuffmanEncodeLength(%q) = %d, want %d", v.text, n, len(want))
		}
		dec, err := HuffmanDecode(want)
		if err != nil {
			t.Errorf("HuffmanDecode(%x): %v", want, err)
			continue
		}
		if string(dec) != v.text {
			t.Errorf("HuffmanDecode(%x) = %q, want %q", want, dec, v.text)
		}
	}
}

func TestHuffmanRoundTripProperty(t *testing.T) {
	f := func(data []byte) bool {
		enc := HuffmanEncode(nil, string(data))
		dec, err := HuffmanDecode(enc)
		return err == nil && bytes.Equal(dec, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestHuffmanRejectsBadPadding(t *testing.T) {
	// 0x00: '0' (5-bit code 00000) followed by 3 zero padding bits —
	// padding must be the all-ones EOS prefix.
	if _, err := HuffmanDecode([]byte{0x00}); err == nil {
		t.Error("accepted non-EOS padding")
	}
	// A full byte of EOS prefix alone is fine ... but 8+ pad bits must fail.
	if _, err := HuffmanDecode([]byte{0xff, 0xff, 0xff, 0xff}); err == nil {
		t.Error("accepted >7 bits of padding (EOS)")
	}
}

// --- integer coding (RFC 7541 C.1) ---

func TestIntegerRFCVectors(t *testing.T) {
	// C.1.1: encoding 10 with 5-bit prefix => 0x0a.
	if got := appendInt(nil, 0, 5, 10); !bytes.Equal(got, []byte{0x0a}) {
		t.Errorf("encode 10/5 = %x", got)
	}
	// C.1.2: 1337 with 5-bit prefix => 1f 9a 0a.
	if got := appendInt(nil, 0, 5, 1337); !bytes.Equal(got, []byte{0x1f, 0x9a, 0x0a}) {
		t.Errorf("encode 1337/5 = %x", got)
	}
	// C.1.3: 42 with 8-bit prefix => 2a.
	if got := appendInt(nil, 0, 8, 42); !bytes.Equal(got, []byte{0x2a}) {
		t.Errorf("encode 42/8 = %x", got)
	}
	for _, v := range []uint64{0, 1, 30, 31, 32, 127, 128, 1337, 1 << 20} {
		for _, n := range []uint8{4, 5, 6, 7, 8} {
			enc := appendInt(nil, 0, n, v)
			got, rest, err := readInt(enc, n)
			if err != nil || got != v || len(rest) != 0 {
				t.Errorf("roundtrip %d/%d: got %d rest %d err %v", v, n, got, len(rest), err)
			}
		}
	}
}

func TestIntegerTruncated(t *testing.T) {
	if _, _, err := readInt(nil, 5); err == nil {
		t.Error("empty input accepted")
	}
	if _, _, err := readInt([]byte{0x1f, 0x80}, 5); err == nil {
		t.Error("truncated varint accepted")
	}
	// Overflowing continuation must error, not wrap.
	over := []byte{0x1f, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f}
	if _, _, err := readInt(over, 5); err == nil {
		t.Error("overflow accepted")
	}
}

// --- full header blocks: RFC 7541 C.3 (no Huffman) and C.4 (Huffman) ---

func reqFields(authority, cacheControl string, custom bool) []HeaderField {
	fs := []HeaderField{
		{Name: ":method", Value: "GET"},
		{Name: ":scheme", Value: "http"},
		{Name: ":path", Value: "/"},
		{Name: ":authority", Value: authority},
	}
	if cacheControl != "" {
		fs = append(fs, HeaderField{Name: "cache-control", Value: cacheControl})
	}
	if custom {
		fs[2] = HeaderField{Name: ":path", Value: "/index.html"}
		fs[1] = HeaderField{Name: ":scheme", Value: "https"}
		fs = append(fs, HeaderField{Name: "custom-key", Value: "custom-value"})
	}
	return fs
}

func TestRequestExamplesWithHuffman(t *testing.T) {
	// RFC 7541 Appendix C.4: three consecutive requests on one connection.
	enc := NewEncoder()
	dec := NewDecoder()

	// C.4.1
	b1 := enc.EncodeBlock(reqFields("www.example.com", "", false))
	want1 := unhex(t, "8286 8441 8cf1 e3c2 e5f2 3a6b a0ab 90f4 ff")
	if !bytes.Equal(b1, want1) {
		t.Fatalf("C.4.1 block = %x, want %x", b1, want1)
	}
	got1, err := dec.DecodeBlock(b1)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got1, reqFields("www.example.com", "", false)) {
		t.Fatalf("C.4.1 decoded %v", got1)
	}

	// C.4.2: :authority now indexed from dynamic table.
	b2 := enc.EncodeBlock(reqFields("www.example.com", "no-cache", false))
	want2 := unhex(t, "8286 84be 5886 a8eb 1064 9cbf")
	if !bytes.Equal(b2, want2) {
		t.Fatalf("C.4.2 block = %x, want %x", b2, want2)
	}
	if _, err := dec.DecodeBlock(b2); err != nil {
		t.Fatal(err)
	}

	// C.4.3
	b3 := enc.EncodeBlock(reqFields("www.example.com", "", true))
	want3 := unhex(t, "8287 85bf 4088 25a8 49e9 5ba9 7d7f 8925 a849 e95b b8e8 b4bf")
	if !bytes.Equal(b3, want3) {
		t.Fatalf("C.4.3 block = %x, want %x", b3, want3)
	}
	got3, err := dec.DecodeBlock(b3)
	if err != nil {
		t.Fatal(err)
	}
	if got3[len(got3)-1].Value != "custom-value" {
		t.Fatalf("C.4.3 decoded %v", got3)
	}
	if enc.DynamicTableSize() != 164 {
		t.Fatalf("encoder table size = %d, want 164", enc.DynamicTableSize())
	}
	if dec.DynamicTableSize() != 164 {
		t.Fatalf("decoder table size = %d, want 164", dec.DynamicTableSize())
	}
}

func TestDecodeIndexedStatic(t *testing.T) {
	// C.2.4: indexed field, index 2 (:method GET).
	dec := NewDecoder()
	got, err := dec.DecodeBlock([]byte{0x82})
	if err != nil {
		t.Fatal(err)
	}
	want := []HeaderField{{Name: ":method", Value: "GET"}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v want %v", got, want)
	}
}

func TestLiteralNeverIndexed(t *testing.T) {
	enc := NewEncoder()
	dec := NewDecoder()
	in := []HeaderField{{Name: "authorization", Value: "secret-token", Sensitive: true}}
	block := enc.EncodeBlock(in)
	if block[0]&0xf0 != 0x10 {
		t.Fatalf("sensitive field not never-indexed: first byte %#x", block[0])
	}
	got, err := dec.DecodeBlock(block)
	if err != nil {
		t.Fatal(err)
	}
	if !got[0].Sensitive || got[0].Value != "secret-token" {
		t.Fatalf("got %+v", got[0])
	}
	if enc.DynamicTableSize() != 0 {
		t.Fatal("sensitive field entered dynamic table")
	}
}

func TestDynamicTableEviction(t *testing.T) {
	enc := NewEncoder()
	enc.SetMaxDynamicTableSize(100)
	dec := NewDecoder()
	dec.SetAllowedMaxDynamicTableSize(100)
	// Each entry is 32 + len overhead; force evictions.
	var lastBlock []byte
	for i := 0; i < 10; i++ {
		hf := HeaderField{Name: "x-header-name", Value: strings.Repeat("v", 20)}
		hf.Value = hf.Value[:10+i]
		lastBlock = enc.EncodeBlock([]HeaderField{hf})
		if _, err := dec.DecodeBlock(lastBlock); err != nil {
			t.Fatalf("iteration %d: %v", i, err)
		}
		if enc.DynamicTableSize() > 100 {
			t.Fatalf("encoder table exceeded max: %d", enc.DynamicTableSize())
		}
		if enc.DynamicTableSize() != dec.DynamicTableSize() {
			t.Fatalf("table size mismatch enc=%d dec=%d", enc.DynamicTableSize(), dec.DynamicTableSize())
		}
	}
}

func TestTableSizeUpdateSignalled(t *testing.T) {
	enc := NewEncoder()
	dec := NewDecoder()
	// Populate, then shrink: the next block must carry a size update.
	enc.EncodeBlock([]HeaderField{{Name: "a", Value: "b"}})
	dec.DecodeBlock(enc.EncodeBlock(nil))
	enc.SetMaxDynamicTableSize(0)
	block := enc.EncodeBlock([]HeaderField{{Name: ":method", Value: "GET"}})
	if block[0]&0xe0 != 0x20 {
		t.Fatalf("expected dynamic table size update prefix, got %#x", block[0])
	}
	if _, err := dec.DecodeBlock(block); err != nil {
		t.Fatal(err)
	}
	if dec.DynamicTableSize() != 0 {
		t.Fatalf("decoder table not emptied: %d", dec.DynamicTableSize())
	}
}

func TestDecoderRejectsOversizeUpdate(t *testing.T) {
	dec := NewDecoder()
	// Update to 8192 > allowed 4096.
	block := appendInt(nil, 0x20, 5, 8192)
	if _, err := dec.DecodeBlock(block); err == nil {
		t.Fatal("oversize table update accepted")
	}
}

func TestDecoderRejectsBadIndex(t *testing.T) {
	dec := NewDecoder()
	if _, err := dec.DecodeBlock([]byte{0x80}); err == nil {
		t.Error("index 0 accepted")
	}
	block := appendInt(nil, 0x80, 7, 99) // dynamic table empty
	if _, err := dec.DecodeBlock(block); err == nil {
		t.Error("out-of-range index accepted")
	}
}

func TestDecoderRejectsLateSizeUpdate(t *testing.T) {
	dec := NewDecoder()
	block := []byte{0x82}                  // :method GET
	block = appendInt(block, 0x20, 5, 128) // size update after a field
	if _, err := dec.DecodeBlock(block); err == nil {
		t.Fatal("size update after field accepted")
	}
}

func TestStringLengthLimit(t *testing.T) {
	dec := NewDecoder()
	dec.MaxStringLength = 16
	enc := NewEncoder()
	block := enc.EncodeBlock([]HeaderField{{Name: "x", Value: strings.Repeat("y", 64)}})
	if _, err := dec.DecodeBlock(block); err == nil {
		t.Fatal("oversize string accepted")
	}
}

func TestEncodeDecodeRoundTripProperty(t *testing.T) {
	sanitize := func(s string) string {
		if s == "" {
			return "x"
		}
		return strings.ToLower(s)
	}
	f := func(names, values []string) bool {
		n := len(names)
		if len(values) < n {
			n = len(values)
		}
		if n == 0 {
			return true
		}
		enc := NewEncoder()
		dec := NewDecoder()
		// Two blocks with the same fields: the second exercises dynamic
		// table hits.
		var fields []HeaderField
		for i := 0; i < n; i++ {
			fields = append(fields, HeaderField{Name: sanitize(names[i]), Value: values[i]})
		}
		for pass := 0; pass < 2; pass++ {
			got, err := dec.DecodeBlock(enc.EncodeBlock(fields))
			if err != nil || len(got) != n {
				return false
			}
			for i := range got {
				if got[i].Name != fields[i].Name || got[i].Value != fields[i].Value {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSecondBlockSmallerViaDynamicTable(t *testing.T) {
	enc := NewEncoder()
	fields := []HeaderField{
		{Name: ":method", Value: "GET"},
		{Name: ":authority", Value: "replay.test.example"},
		{Name: "user-agent", Value: "repro-browser/1.0 (testbed)"},
		{Name: "accept", Value: "text/html,application/xhtml+xml"},
	}
	b1 := enc.EncodeBlock(fields)
	b2 := enc.EncodeBlock(fields)
	if len(b2) >= len(b1) {
		t.Fatalf("dynamic table ineffective: first %d bytes, second %d", len(b1), len(b2))
	}
	if len(b2) != len(fields) {
		t.Fatalf("second block should be all single-byte-ish indexed fields, got %d bytes", len(b2))
	}
}
