package htmlx

import (
	"bytes"
	"strings"
	"testing"
)

const sampleHTML = `<!DOCTYPE html>
<html>
<head>
<title>Test Page</title>
<link rel="stylesheet" href="/css/main.css">
<link rel="stylesheet" href="/css/print.css" media="print">
<script src="/js/head.js"></script>
<script>var inline = 1;</script>
<style>body { margin: 0; }</style>
</head>
<body>
<div class="hero big" id="top">
<img src="/img/hero.jpg" width="1280" height="400">
Welcome to the test page with some text.
</div>
<p class="intro">A paragraph of introductory text that is long enough to count.</p>
<script src="/js/lazy.js" async></script>
<script src="/js/defer.js" defer></script>
<img src="/img/footer.png" width="100" height="50">
<!-- <img src="/img/commented-out.png"> -->
<script>console.log("late");</script>
</body>
</html>`

func TestParseResources(t *testing.T) {
	d := Parse([]byte(sampleHTML))
	urls := d.ExternalURLs()
	want := []string{"/css/main.css", "/css/print.css", "/js/head.js",
		"/img/hero.jpg", "/js/lazy.js", "/js/defer.js", "/img/footer.png"}
	if len(urls) != len(want) {
		t.Fatalf("got %d resources %v, want %d", len(urls), urls, len(want))
	}
	for i := range want {
		if urls[i] != want[i] {
			t.Errorf("resource %d = %q, want %q", i, urls[i], want[i])
		}
	}
}

func TestParseResourceFlags(t *testing.T) {
	d := Parse([]byte(sampleHTML))
	byURL := map[string]Resource{}
	for _, r := range d.Resources {
		byURL[r.URL] = r
	}
	if !byURL["/css/main.css"].InHead {
		t.Error("main.css not marked InHead")
	}
	if byURL["/img/hero.jpg"].InHead {
		t.Error("hero.jpg marked InHead")
	}
	if !byURL["/js/lazy.js"].Async {
		t.Error("lazy.js not async")
	}
	if !byURL["/js/defer.js"].Defer {
		t.Error("defer.js not defer")
	}
	if byURL["/css/print.css"].Media != "print" {
		t.Errorf("print.css media = %q", byURL["/css/print.css"].Media)
	}
	if byURL["/img/hero.jpg"].Width != 1280 || byURL["/img/hero.jpg"].Height != 400 {
		t.Errorf("hero.jpg dims = %dx%d", byURL["/img/hero.jpg"].Width, byURL["/img/hero.jpg"].Height)
	}
}

func TestParseInlineBlocks(t *testing.T) {
	d := Parse([]byte(sampleHTML))
	if len(d.InlineScripts) != 2 {
		t.Fatalf("inline scripts = %d, want 2", len(d.InlineScripts))
	}
	if !strings.Contains(d.InlineScripts[0].Content, "var inline = 1") {
		t.Errorf("first inline script content %q", d.InlineScripts[0].Content)
	}
	if !d.InlineScripts[0].InHead || d.InlineScripts[1].InHead {
		t.Error("inline script head flags wrong")
	}
	if len(d.InlineStyles) != 1 || !strings.Contains(d.InlineStyles[0].Content, "margin: 0") {
		t.Fatalf("inline styles = %+v", d.InlineStyles)
	}
}

func TestParseElements(t *testing.T) {
	d := Parse([]byte(sampleHTML))
	var hero, intro *Element
	for i := range d.Elements {
		e := &d.Elements[i]
		switch {
		case e.ID == "top":
			hero = e
		case len(e.Classes) > 0 && e.Classes[0] == "intro":
			intro = e
		}
	}
	if hero == nil || intro == nil {
		t.Fatalf("missing elements: hero=%v intro=%v (have %d)", hero, intro, len(d.Elements))
	}
	if hero.Classes[0] != "hero" || hero.Classes[1] != "big" {
		t.Errorf("hero classes %v", hero.Classes)
	}
	if intro.TextLen == 0 {
		t.Error("intro paragraph has no text length")
	}
}

func TestParseTitleAndOffsets(t *testing.T) {
	d := Parse([]byte(sampleHTML))
	if d.Title != "Test Page" {
		t.Errorf("title %q", d.Title)
	}
	if d.HeadStart == 0 || d.HeadEnd <= d.HeadStart {
		t.Errorf("head offsets %d..%d", d.HeadStart, d.HeadEnd)
	}
	if d.BodyEnd >= len(sampleHTML) || d.BodyEnd <= d.HeadEnd {
		t.Errorf("body end %d", d.BodyEnd)
	}
	// Resource offsets are strictly increasing and within bounds.
	last := 0
	for _, r := range d.Resources {
		if r.Offset <= last || r.Offset > len(sampleHTML) {
			t.Errorf("offset %d for %s not increasing", r.Offset, r.URL)
		}
		last = r.Offset
	}
}

func TestCommentedOutResourcesIgnored(t *testing.T) {
	d := Parse([]byte(sampleHTML))
	for _, r := range d.Resources {
		if strings.Contains(r.URL, "commented-out") {
			t.Fatal("resource inside comment extracted")
		}
	}
}

func TestUnquotedAndSingleQuotedAttrs(t *testing.T) {
	html := `<html><body><img src=/a.png width=10 height=20><script src='/b.js'></script></body></html>`
	d := Parse([]byte(html))
	if len(d.Resources) != 2 {
		t.Fatalf("resources = %v", d.ExternalURLs())
	}
	if d.Resources[0].URL != "/a.png" || d.Resources[0].Width != 10 {
		t.Errorf("img resource %+v", d.Resources[0])
	}
	if d.Resources[1].URL != "/b.js" {
		t.Errorf("script resource %+v", d.Resources[1])
	}
}

func TestMalformedHTMLDoesNotPanic(t *testing.T) {
	inputs := []string{
		"", "<", "<>", "<div", `<div class="unterminated`, "<!-- unterminated",
		"<script>never closed", "<style>a{", "<img src=>", "<<<>>>",
		"<a href='x' <b>", "<!doctype html><html>",
	}
	for _, in := range inputs {
		d := Parse([]byte(in))
		if d == nil {
			t.Fatalf("Parse(%q) returned nil", in)
		}
	}
}

func TestRewriteInlineCritical(t *testing.T) {
	out := Rewrite([]byte(sampleHTML), RewriteOptions{CriticalCSS: ".hero{color:red}"})
	s := string(out)
	if !strings.Contains(s, `<style data-critical="1">.hero{color:red}</style>`) {
		t.Fatal("critical CSS not inlined")
	}
	// Must appear before the main.css link.
	if strings.Index(s, "data-critical") > strings.Index(s, "/css/main.css") {
		t.Fatal("critical CSS inlined after stylesheet link")
	}
	// Document is still parseable with the same resources.
	d := Parse(out)
	if len(d.Resources) != 7 {
		t.Fatalf("rewritten doc has %d resources", len(d.Resources))
	}
}

func TestRewriteMoveCSSToBodyEnd(t *testing.T) {
	out := Rewrite([]byte(sampleHTML), RewriteOptions{
		CriticalCSS:      "p{x:1}",
		MoveCSSToBodyEnd: true,
	})
	s := string(out)
	d := Parse(out)
	// The stylesheet links must now come after the last img.
	var cssOff, imgOff int
	for _, r := range d.Resources {
		switch r.URL {
		case "/css/main.css":
			cssOff = r.Offset
		case "/img/footer.png":
			imgOff = r.Offset
		}
	}
	if cssOff == 0 || imgOff == 0 {
		t.Fatalf("missing resources after rewrite: %v", d.ExternalURLs())
	}
	if cssOff < imgOff {
		t.Fatal("stylesheet link not moved to end of body")
	}
	if strings.Count(s, "/css/main.css") != 1 {
		t.Fatal("stylesheet link duplicated")
	}
}

func TestRewriteSelectiveMove(t *testing.T) {
	out := Rewrite([]byte(sampleHTML), RewriteOptions{
		MoveCSSToBodyEnd: true,
		MoveURLs:         map[string]bool{"/css/print.css": true},
	})
	d := Parse(out)
	var mainOff, printOff int
	for _, r := range d.Resources {
		switch r.URL {
		case "/css/main.css":
			mainOff = r.Offset
		case "/css/print.css":
			printOff = r.Offset
		}
	}
	if mainOff > printOff {
		t.Fatal("wrong link moved")
	}
	if !bytes.Contains(out, []byte("/css/main.css")) {
		t.Fatal("main.css lost")
	}
}

func TestRewriteNoOpPreservesBytes(t *testing.T) {
	out := Rewrite([]byte(sampleHTML), RewriteOptions{})
	if string(out) != sampleHTML {
		t.Fatal("no-op rewrite changed the document")
	}
}
