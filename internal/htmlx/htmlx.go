// Package htmlx is a small incremental HTML tokenizer and document model
// built for the testbed's browser emulation and HTML rewriting: it
// extracts external resource references with their byte offsets (the
// input to preload scanning, dependency analysis and interleave offsets),
// inline scripts/styles, and the visual elements used by the layout
// model and critical-CSS extraction.
//
// It is not a spec-complete HTML5 parser; it handles the well-formed
// markup the corpus generates and typical crawled pages: comments,
// doctype, attributes with and without quotes, raw text elements
// (script/style), and void elements.
package htmlx

import (
	"bytes"
	"strconv"
	"strings"
)

// Attr is one tag attribute.
type Attr struct {
	Name, Value string
}

// Resource is an external resource reference found in the document.
type Resource struct {
	Tag    string // "link", "script", "img"
	URL    string
	Offset int  // byte offset just past the referencing tag
	InHead bool // referenced inside <head>
	Async  bool // <script async>
	Defer  bool // <script defer>
	Media  string
	Width  int // img width attribute (0 if absent)
	Height int
}

// InlineScript is a <script> block without src.
type InlineScript struct {
	Offset  int // offset just past the closing tag
	Content string
	InHead  bool
}

// InlineStyle is a <style> block.
type InlineStyle struct {
	Offset  int
	Content string
	InHead  bool
}

// Element is a visual/selector-bearing element for the layout model and
// critical-CSS matching.
type Element struct {
	Tag     string
	ID      string
	Classes []string
	Offset  int
	Width   int // explicit width attr (img)
	Height  int
	TextLen int // visible text characters directly following
}

// Document is the parsed view of an HTML page.
//
// A Document is immutable after Parse returns: nothing in this package
// or its consumers writes to it, which is what lets a prepared site
// share one parsed document (and the slices inside it) read-only across
// concurrent simulation workers. Per-run mutable state (what has been
// fetched, painted or parsed so far) lives in the browser model, never
// here.
type Document struct {
	Raw           []byte
	Resources     []Resource
	InlineScripts []InlineScript
	InlineStyles  []InlineStyle
	Elements      []Element
	// HeadStart is the offset just past <head>; HeadEnd just past </head>.
	HeadStart int
	HeadEnd   int
	// BodyEnd is the offset of </body> (len(Raw) if absent).
	BodyEnd int
	Title   string
}

// voidElements never have closing tags.
var voidElements = map[string]bool{
	"area": true, "base": true, "br": true, "col": true, "embed": true,
	"hr": true, "img": true, "input": true, "link": true, "meta": true,
	"param": true, "source": true, "track": true, "wbr": true,
}

type tag struct {
	name    string
	attrs   []Attr
	start   int // offset of '<'
	end     int // offset just past '>'
	closing bool
}

func (t *tag) attr(name string) (string, bool) {
	for _, a := range t.attrs {
		if a.Name == name {
			return a.Value, true
		}
	}
	return "", false
}

func (t *tag) attrVal(name string) string {
	v, _ := t.attr(name)
	return v
}

func (t *tag) attrInt(name string) int {
	v, ok := t.attr(name)
	if !ok {
		return 0
	}
	n, err := strconv.Atoi(strings.TrimSuffix(strings.TrimSpace(v), "px"))
	if err != nil {
		return 0
	}
	return n
}

func lower(b byte) byte {
	if 'A' <= b && b <= 'Z' {
		return b + 'a' - 'A'
	}
	return b
}

// nextTag scans raw from pos for the next tag, skipping comments and
// text. It returns nil when no further tag exists. textLen receives the
// number of visible text characters skipped.
func nextTag(raw []byte, pos int) (*tag, int) {
	textChars := 0
	for pos < len(raw) {
		i := indexByteFrom(raw, '<', pos)
		if i < 0 {
			textChars += countText(raw[pos:])
			return nil, textChars
		}
		textChars += countText(raw[pos:i])
		// Comment?
		if hasPrefixAt(raw, i, "<!--") {
			end := indexFrom(raw, needCommentEnd, i+4)
			if end < 0 {
				return nil, textChars
			}
			pos = end + 3
			continue
		}
		// Doctype or other declaration?
		if i+1 < len(raw) && raw[i+1] == '!' {
			end := indexByteFrom(raw, '>', i)
			if end < 0 {
				return nil, textChars
			}
			pos = end + 1
			continue
		}
		t := parseTag(raw, i)
		if t == nil {
			pos = i + 1
			continue
		}
		return t, textChars
	}
	return nil, textChars
}

func countText(b []byte) int {
	n := 0
	for _, c := range b {
		if c != ' ' && c != '\n' && c != '\t' && c != '\r' {
			n++
		}
	}
	return n
}

func indexByteFrom(b []byte, c byte, from int) int {
	for i := from; i < len(b); i++ {
		if b[i] == c {
			return i
		}
	}
	return -1
}

// Closing-tag needles for indexFrom: searching with bytes.Index avoids
// the per-call []byte -> string copy of the document tail that a
// strings.Index search would cost.
var (
	needCommentEnd = []byte("-->")
	needTitleEnd   = []byte("</title>")
	needScriptEnd  = []byte("</script>")
	needStyleEnd   = []byte("</style>")
)

func indexFrom(b []byte, sub []byte, from int) int {
	if from > len(b) {
		return -1
	}
	idx := bytes.Index(b[from:], sub)
	if idx < 0 {
		return -1
	}
	return from + idx
}

func hasPrefixAt(b []byte, at int, s string) bool {
	if at+len(s) > len(b) {
		return false
	}
	return string(b[at:at+len(s)]) == s
}

// parseTag parses one tag starting at raw[start] == '<'. Returns nil for
// malformed fragments.
func parseTag(raw []byte, start int) *tag {
	i := start + 1
	t := &tag{start: start}
	if i < len(raw) && raw[i] == '/' {
		t.closing = true
		i++
	}
	// Tag name.
	nameStart := i
	for i < len(raw) && isNameChar(raw[i]) {
		i++
	}
	if i == nameStart {
		return nil
	}
	t.name = strings.ToLower(string(raw[nameStart:i]))
	// Attributes.
	for i < len(raw) {
		// Skip whitespace and stray slashes.
		for i < len(raw) && (raw[i] == ' ' || raw[i] == '\n' || raw[i] == '\t' || raw[i] == '\r' || raw[i] == '/') {
			i++
		}
		if i >= len(raw) {
			return nil
		}
		if raw[i] == '>' {
			t.end = i + 1
			return t
		}
		aStart := i
		for i < len(raw) && raw[i] != '=' && raw[i] != '>' && raw[i] != ' ' &&
			raw[i] != '\n' && raw[i] != '\t' && raw[i] != '\r' && raw[i] != '/' {
			i++
		}
		name := strings.ToLower(string(raw[aStart:i]))
		if name == "" {
			i++
			continue
		}
		var val string
		if i < len(raw) && raw[i] == '=' {
			i++
			if i < len(raw) && (raw[i] == '"' || raw[i] == '\'') {
				q := raw[i]
				i++
				vStart := i
				for i < len(raw) && raw[i] != q {
					i++
				}
				val = string(raw[vStart:i])
				if i < len(raw) {
					i++
				}
			} else {
				vStart := i
				for i < len(raw) && raw[i] != ' ' && raw[i] != '>' &&
					raw[i] != '\n' && raw[i] != '\t' && raw[i] != '\r' {
					i++
				}
				val = string(raw[vStart:i])
			}
		}
		t.attrs = append(t.attrs, Attr{Name: name, Value: val})
	}
	return nil
}

func isNameChar(b byte) bool {
	return b >= 'a' && b <= 'z' || b >= 'A' && b <= 'Z' || b >= '0' && b <= '9' || b == '-'
}

// Parse tokenizes a complete HTML document.
func Parse(raw []byte) *Document {
	d := &Document{Raw: raw, BodyEnd: len(raw)}
	inHead := false
	pos := 0
	var pendingText *int // TextLen accumulator of the last element
	for {
		t, textChars := nextTag(raw, pos)
		if pendingText != nil {
			*pendingText += textChars
			pendingText = nil
		} else if textChars > 0 && len(d.Elements) > 0 {
			d.Elements[len(d.Elements)-1].TextLen += textChars
		}
		if t == nil {
			break
		}
		pos = t.end
		if t.closing {
			switch t.name {
			case "head":
				d.HeadEnd = t.end
				inHead = false
			case "body":
				d.BodyEnd = t.start
			}
			continue
		}
		switch t.name {
		case "head":
			d.HeadStart = t.end
			inHead = true
		case "body":
			inHead = false
		case "title":
			end := indexFrom(raw, needTitleEnd, t.end)
			if end >= 0 {
				d.Title = strings.TrimSpace(string(raw[t.end:end]))
				pos = end + len("</title>")
			}
		case "link":
			rel := strings.ToLower(t.attrVal("rel"))
			href := t.attrVal("href")
			if href == "" {
				break
			}
			switch rel {
			case "stylesheet":
				d.Resources = append(d.Resources, Resource{
					Tag: "link", URL: href, Offset: t.end, InHead: inHead,
					Media: t.attrVal("media"),
				})
			case "preload", "icon", "shortcut icon":
				// Tracked as generic references; the browser model fetches
				// icons lazily and ignores preload hints (Vroom-style
				// client schedulers are out of scope).
			}
		case "script":
			if src, ok := t.attr("src"); ok && src != "" {
				_, async := t.attr("async")
				_, deferA := t.attr("defer")
				d.Resources = append(d.Resources, Resource{
					Tag: "script", URL: src, Offset: t.end, InHead: inHead,
					Async: async, Defer: deferA,
				})
				// Skip optional closing tag.
				if end := indexFrom(raw, needScriptEnd, t.end); end >= 0 && end-t.end < 16 {
					pos = end + len("</script>")
				}
			} else {
				end := indexFrom(raw, needScriptEnd, t.end)
				if end < 0 {
					end = len(raw)
				}
				content := string(raw[t.end:end])
				off := end + len("</script>")
				if off > len(raw) {
					off = len(raw)
				}
				d.InlineScripts = append(d.InlineScripts, InlineScript{
					Offset: off, Content: content, InHead: inHead,
				})
				pos = off
			}
		case "style":
			end := indexFrom(raw, needStyleEnd, t.end)
			if end < 0 {
				end = len(raw)
			}
			off := end + len("</style>")
			if off > len(raw) {
				off = len(raw)
			}
			d.InlineStyles = append(d.InlineStyles, InlineStyle{
				Offset: off, Content: string(raw[t.end:end]), InHead: inHead,
			})
			pos = off
		case "img":
			src := t.attrVal("src")
			if src != "" {
				d.Resources = append(d.Resources, Resource{
					Tag: "img", URL: src, Offset: t.end, InHead: inHead,
					Width: t.attrInt("width"), Height: t.attrInt("height"),
				})
			}
			d.Elements = append(d.Elements, Element{
				Tag: "img", ID: t.attrVal("id"), Classes: classes(t),
				Offset: t.end, Width: t.attrInt("width"), Height: t.attrInt("height"),
			})
		default:
			if !inHead && isVisualTag(t.name) {
				el := Element{
					Tag: t.name, ID: t.attrVal("id"), Classes: classes(t),
					Offset: t.end,
					Width:  t.attrInt("width"), Height: t.attrInt("height"),
				}
				d.Elements = append(d.Elements, el)
				pendingText = &d.Elements[len(d.Elements)-1].TextLen
			}
		}
	}
	if d.HeadEnd == 0 {
		d.HeadEnd = d.HeadStart
	}
	return d
}

func classes(t *tag) []string {
	v := t.attrVal("class")
	if v == "" {
		return nil
	}
	return strings.Fields(v)
}

func isVisualTag(name string) bool {
	switch name {
	case "div", "p", "h1", "h2", "h3", "h4", "h5", "h6", "span", "a",
		"section", "article", "header", "footer", "nav", "main", "aside",
		"ul", "ol", "li", "table", "td", "th", "tr", "button", "form",
		"input", "figure", "figcaption", "blockquote", "pre":
		return true
	}
	return false
}

// ExternalURLs returns the URLs of all external resources in document
// order.
func (d *Document) ExternalURLs() []string {
	out := make([]string, len(d.Resources))
	for i, r := range d.Resources {
		out[i] = r.URL
	}
	return out
}
