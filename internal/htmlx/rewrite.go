package htmlx

import (
	"bytes"
	"fmt"
	"strings"
)

// RewriteOptions configures the HTML transformations behind the paper's
// "optimized" strategies (Sec. 5): inline a computed critical CSS in the
// <head> and move the original stylesheet links to the end of <body>, so
// they stop blocking the critical render path.
type RewriteOptions struct {
	// CriticalCSS is inlined as a <style> element at the start of <head>.
	CriticalCSS string
	// MoveCSSToBodyEnd relocates every <link rel=stylesheet> whose URL is
	// in MoveURLs (or all of them when MoveURLs is nil) to just before
	// </body>.
	MoveCSSToBodyEnd bool
	MoveURLs         map[string]bool
}

// Rewrite applies opts to an HTML document and returns the new bytes. The
// input is left untouched.
func Rewrite(raw []byte, opts RewriteOptions) []byte {
	d := Parse(raw)
	type cut struct{ start, end int }
	var cuts []cut
	var moved [][]byte

	if opts.MoveCSSToBodyEnd {
		// Find the byte ranges of stylesheet link tags to relocate.
		pos := 0
		for {
			t, _ := nextTag(raw, pos)
			if t == nil {
				break
			}
			pos = t.end
			if t.closing || t.name != "link" {
				continue
			}
			if strings.ToLower(t.attrVal("rel")) != "stylesheet" {
				continue
			}
			url := t.attrVal("href")
			if opts.MoveURLs != nil && !opts.MoveURLs[url] {
				continue
			}
			cuts = append(cuts, cut{t.start, t.end})
			moved = append(moved, append([]byte(nil), raw[t.start:t.end]...))
		}
	}

	var out bytes.Buffer
	out.Grow(len(raw) + len(opts.CriticalCSS) + 64)
	insertAt := d.HeadStart
	// write copies raw[from:to] to the output, omitting cut ranges (which
	// are in document order).
	write := func(from, to int) {
		for _, c := range cuts {
			if c.end <= from || c.start >= to {
				continue
			}
			if c.start > from {
				out.Write(raw[from:c.start])
			}
			from = c.end
		}
		if from < to {
			out.Write(raw[from:to])
		}
	}

	if opts.CriticalCSS != "" {
		write(0, insertAt)
		fmt.Fprintf(&out, "<style data-critical=\"1\">%s</style>", opts.CriticalCSS)
		write(insertAt, d.BodyEnd)
	} else {
		write(0, d.BodyEnd)
	}
	for _, m := range moved {
		out.Write(m)
	}
	write(d.BodyEnd, len(raw))
	return out.Bytes()
}
