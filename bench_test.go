package repro

// One benchmark per table/figure of the paper's evaluation, plus
// ablations for the testbed's modelling choices. Each benchmark
// regenerates its experiment at a reduced-but-faithful scale (full scale
// via cmd/pushbench -scale paper) and reports domain-specific metrics
// through b.ReportMetric.
//
// Run:  go test -bench=. -benchmem

import (
	"os"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/h2"
	"repro/internal/netem"
	"repro/internal/replay"
	"repro/internal/sim"
	"repro/internal/strategy"
)

// TestMain lets the multiprocess executor re-exec this test binary as a
// shard worker: MaybeServeWorker takes over (and exits) when the worker
// marker env is set, and is a no-op otherwise.
func TestMain(m *testing.M) {
	core.MaybeServeWorker()
	os.Exit(m.Run())
}

// mustTable adapts the (table, error) experiment drivers for benchmark
// loops: any executor or codec failure aborts the benchmark. Curried so
// a multi-value driver call can be forwarded directly.
func mustTable(b *testing.B) func(*core.Table, error) *core.Table {
	return func(tab *core.Table, err error) *core.Table {
		if err != nil {
			b.Fatal(err)
		}
		return tab
	}
}

func benchScale() core.ExperimentScale {
	// Jobs: 0 fans the (site, strategy, run) tuples across GOMAXPROCS
	// workers; the tables are byte-identical to a Jobs: 1 run.
	return core.ExperimentScale{Sites: 8, Runs: 3, Seed: 1, Jobs: 0}
}

func pctCell(b *testing.B, tab *core.Table, row, col int) float64 {
	b.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(tab.Rows[row][col], "%"), 64)
	if err != nil {
		b.Fatalf("cell %d,%d = %q", row, col, tab.Rows[row][col])
	}
	return v
}

func numCell(b *testing.B, tab *core.Table, row, col int) float64 {
	b.Helper()
	v, err := strconv.ParseFloat(tab.Rows[row][col], 64)
	if err != nil {
		b.Fatalf("cell %d,%d = %q", row, col, tab.Rows[row][col])
	}
	return v
}

// BenchmarkFig1Adoption regenerates the adoption series (Fig. 1).
func BenchmarkFig1Adoption(b *testing.B) {
	var tab *core.Table
	for i := 0; i < b.N; i++ {
		tab = core.Fig1Adoption(100_000, 1)
	}
	b.ReportMetric(numCell(b, tab, 0, 2), "h2_month1")
	b.ReportMetric(numCell(b, tab, 11, 2), "h2_month12")
	b.ReportMetric(numCell(b, tab, 0, 3), "push_month1")
	b.ReportMetric(numCell(b, tab, 11, 3), "push_month12")
}

// BenchmarkFig2aVariability contrasts testbed vs Internet variability
// (Fig. 2a).
func BenchmarkFig2aVariability(b *testing.B) {
	var tab *core.Table
	for i := 0; i < b.N; i++ {
		tab = mustTable(b)(core.Fig2aVariability(benchScale()))
	}
	// Row 1 = no push (tb), row 3 = no push (Inet).
	b.ReportMetric(pctCell(b, tab, 1, 2), "tb_sites_sigma_lt100ms_pct")
	b.ReportMetric(pctCell(b, tab, 3, 2), "inet_sites_sigma_lt100ms_pct")
}

// BenchmarkFig2bPushVsNoPush regenerates the testbed-validation deltas
// (Fig. 2b).
func BenchmarkFig2bPushVsNoPush(b *testing.B) {
	var tab *core.Table
	for i := 0; i < b.N; i++ {
		tab = mustTable(b)(core.Fig2bPushVsNoPush(benchScale()))
	}
	b.ReportMetric(pctCell(b, tab, 0, 1), "plt_improved_pct")
	b.ReportMetric(pctCell(b, tab, 1, 1), "si_improved_pct")
}

// BenchmarkPushableObjects regenerates the Sec. 4.2 pushable statistic.
func BenchmarkPushableObjects(b *testing.B) {
	var tab *core.Table
	sc := benchScale()
	sc.Sites = 60
	for i := 0; i < b.N; i++ {
		tab = core.PushableObjects(sc)
	}
	b.ReportMetric(pctCell(b, tab, 0, 2), "top_lt20pct_pushable_pct")
	b.ReportMetric(pctCell(b, tab, 1, 2), "random_lt20pct_pushable_pct")
}

// BenchmarkFig3aPushAll regenerates Fig. 3a (push all vs no push on both
// site sets).
func BenchmarkFig3aPushAll(b *testing.B) {
	var tab *core.Table
	for i := 0; i < b.N; i++ {
		tab = mustTable(b)(core.Fig3aPushAll(benchScale()))
	}
	b.ReportMetric(pctCell(b, tab, 0, 1), "top_si_improved_pct")
	b.ReportMetric(pctCell(b, tab, 1, 1), "random_si_improved_pct")
}

// BenchmarkFig3bPushAmount regenerates the push-amount sweep (Fig. 3b).
func BenchmarkFig3bPushAmount(b *testing.B) {
	var tab *core.Table
	for i := 0; i < b.N; i++ {
		tab = mustTable(b)(core.Fig3bPushAmount(benchScale()))
	}
	for i, n := range []string{"n1", "n5", "n10", "n15", "all"} {
		b.ReportMetric(numCell(b, tab, i, 3), "median_dplt_ms_"+n)
	}
}

// BenchmarkPushByType regenerates the object-type analysis (Sec. 4.2.1).
func BenchmarkPushByType(b *testing.B) {
	var tab *core.Table
	for i := 0; i < b.N; i++ {
		tab = mustTable(b)(core.PushByTypeAnalysis(benchScale()))
	}
	b.ReportMetric(pctCell(b, tab, 2, 2), "images_si_worse_pct")
	b.ReportMetric(pctCell(b, tab, len(tab.Rows)-1, 1), "best_type_si_improved_pct")
}

// BenchmarkFig4Synthetic regenerates the synthetic-site custom-strategy
// comparison (Fig. 4).
func BenchmarkFig4Synthetic(b *testing.B) {
	var tab *core.Table
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		tab = mustTable(b)(core.Fig4Synthetic(sc))
	}
	// s1: custom pushes far fewer KB than push all for similar effect.
	var s1All, s1Crit float64
	for _, row := range tab.Rows {
		if row[0] == "s1" && row[1] == "push all" {
			s1All, _ = strconv.ParseFloat(row[5], 64)
		}
		if row[0] == "s1" && row[1] == "push critical" {
			s1Crit, _ = strconv.ParseFloat(row[5], 64)
		}
	}
	b.ReportMetric(s1All, "s1_pushall_kb")
	b.ReportMetric(s1Crit, "s1_pushcritical_kb")
}

// BenchmarkFig5Interleaving regenerates the motivating example
// (Fig. 5b): SpeedIndex vs HTML size for the three configurations.
func BenchmarkFig5Interleaving(b *testing.B) {
	var tab *core.Table
	for i := 0; i < b.N; i++ {
		tab = mustTable(b)(core.Fig5Interleaving(core.ExperimentScale{Runs: 3, Seed: 1}))
	}
	b.ReportMetric(numCell(b, tab, 0, 1), "nopush_si_ms_10kb")
	b.ReportMetric(numCell(b, tab, 8, 1), "nopush_si_ms_90kb")
	b.ReportMetric(numCell(b, tab, 0, 3), "interleave_si_ms_10kb")
	b.ReportMetric(numCell(b, tab, 8, 3), "interleave_si_ms_90kb")
}

// BenchmarkFig6Interleaving regenerates the popular-site strategy
// comparison (Fig. 6) on the paper's showcase sites.
func BenchmarkFig6Interleaving(b *testing.B) {
	var tab *core.Table
	sc := core.ExperimentScale{Sites: 1, Runs: 3, Seed: 1}
	for i := 0; i < b.N; i++ {
		tab = mustTable(b)(core.Fig6Popular([]string{"w1", "w2", "w16", "w7", "w9", "w10"}, sc))
	}
	report := func(site, strat, metric string) {
		for _, row := range tab.Rows {
			if row[0] == site && row[1] == strat {
				v, _ := strconv.ParseFloat(strings.TrimSuffix(row[2], "%"), 64)
				b.ReportMetric(v, metric)
			}
		}
	}
	report("w1", "push critical optimized", "w1_crit_opt_dsi_pct")
	report("w2", "push critical optimized", "w2_crit_opt_dsi_pct")
	report("w16", "push critical optimized", "w16_crit_opt_dsi_pct")
	report("w7", "push critical optimized", "w7_crit_opt_dsi_pct")
}

// BenchmarkScenarioSweepNoFork is the ablation twin of
// BenchmarkScenarioSweep with fork-at-divergence checkpoint reuse
// disabled: the gap between the two is the measured value of replaying
// the shared prefix from a snapshot instead of re-simulating it.
func BenchmarkScenarioSweepNoFork(b *testing.B) {
	sc := core.ExperimentScale{Sites: 2, Runs: 3, Seed: 1, Jobs: 0, NoFork: true}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := core.ScenarioSweepNames([]string{"dsl", "satellite"}, sc); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkScenarioSweep regenerates the cross-scenario strategy
// comparison on two contrasting links (the paper's DSL and satellite).
func BenchmarkScenarioSweep(b *testing.B) {
	var tabs []*core.Table
	sc := core.ExperimentScale{Sites: 2, Runs: 3, Seed: 1, Jobs: 0}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var err error
		tabs, err = core.ScenarioSweepNames([]string{"dsl", "satellite"}, sc)
		if err != nil {
			b.Fatal(err)
		}
	}
	// Median dSI of "push critical optimized" per scenario: the sweep's
	// headline — how much more push matters at a 600 ms RTT.
	for i, name := range []string{"dsl", "satellite"} {
		found := false
		for r, row := range tabs[i].Rows {
			if row[0] == "push critical optimized" {
				b.ReportMetric(numCell(b, tabs[i], r, 3), name+"_crit_opt_median_dsi_ms")
				found = true
			}
		}
		if !found {
			b.Fatalf("push critical optimized row missing from %s table", name)
		}
	}
}

// --- ablations of the testbed's modelling choices ---

// BenchmarkAblationPreloadScanner measures the preload scanner's effect
// on the s8-style early-reference page.
func BenchmarkAblationPreloadScanner(b *testing.B) {
	site := corpus.SyntheticSites()[7] // s8
	var on, off time.Duration
	for i := 0; i < b.N; i++ {
		tb := core.NewTestbed()
		tb.Runs = 3
		evOn := tb.Evaluate(site, replay.NoPush(), "on")
		tb.Browser.PreloadScanner = false
		evOff := tb.Evaluate(site, replay.NoPush(), "off")
		on, off = evOn.MedianPLT, evOff.MedianPLT
	}
	b.ReportMetric(float64(on)/1e6, "plt_ms_scanner_on")
	b.ReportMetric(float64(off)/1e6, "plt_ms_scanner_off")
}

// BenchmarkAblationPushAtRoot compares the h2o default (push stream as
// child of its parent, starved until the parent finishes) with
// root-attached push streams (compete with the parent immediately).
func BenchmarkAblationPushAtRoot(b *testing.B) {
	html := make([]byte, 150*1024)
	css := make([]byte, 20*1024)
	// Direct h2-level measurement: time until the pushed CSS completes.
	run := func(atRoot bool) time.Duration {
		var cssDone time.Duration
		s := sim.New(9)
		n := netem.New(s, netem.DSL())
		n.Dial(func(c *netem.Conn) {
			srv := h2.NewServer(h2.DefaultSettings(), func(sw *h2.ServerStream, req h2.Request) {
				psw := sw.Push(h2.Request{Method: "GET", Scheme: "https", Authority: "a", Path: "/s.css"})
				sw.Respond(200, "text/html", html)
				psw.Respond(200, "text/css", css)
			})
			srv.Core.PushAtRoot = atRoot
			clSettings := h2.DefaultSettings()
			clSettings.InitialWindowSize = 6 * 1024 * 1024
			cl := h2.NewClient(clSettings)
			h2.AttachSim(srv.Core, c.ServerEnd())
			h2.AttachSim(cl.Core, c.ClientEnd())
			cl.OnPush = func(parent, promised *h2.ClientStream) bool {
				promised.OnComplete = func(int) { cssDone = s.Now() }
				return true
			}
			cl.Request(h2.Request{Method: "GET", Scheme: "https", Authority: "a", Path: "/"},
				h2.RequestOpts{Priority: &h2.PriorityParam{Weight: 255}})
		})
		s.Run()
		return cssDone
	}
	var child, root time.Duration
	for i := 0; i < b.N; i++ {
		child = run(false)
		root = run(true)
	}
	b.ReportMetric(float64(child)/1e6, "css_done_ms_push_as_child")
	b.ReportMetric(float64(root)/1e6, "css_done_ms_push_at_root")
}

// BenchmarkAblationInitialCwnd sweeps the TCP initial window.
func BenchmarkAblationInitialCwnd(b *testing.B) {
	site := corpus.SyntheticSites()[0] // s1
	res := map[int]time.Duration{}
	for i := 0; i < b.N; i++ {
		for _, iw := range []int{4, 10, 32} {
			tb := core.NewTestbed()
			tb.Runs = 3
			tb.Scenario.Profile.InitialCwnd = iw
			ev := tb.Evaluate(site, replay.NoPush(), "iw")
			res[iw] = ev.MedianPLT
		}
	}
	for _, iw := range []int{4, 10, 32} {
		b.ReportMetric(float64(res[iw])/1e6, "plt_ms_iw"+strconv.Itoa(iw))
	}
}

// BenchmarkAblationInterleaveOffset sweeps the hard-switch offset.
func BenchmarkAblationInterleaveOffset(b *testing.B) {
	bld := corpus.NewPage("offset.test")
	bld.CSS("/s.css", corpus.SimpleCSS([]string{"hero"}, 100))
	bld.Div("hero", 400)
	bld.Text(1000)
	bld.PadHTML(120 * 1024)
	site := bld.Build("offset-sweep")
	base := site.Base.String()
	css := "https://offset.test/s.css"
	res := map[int]time.Duration{}
	for i := 0; i < b.N; i++ {
		for _, off := range []int{1024, 4096, 16384, 65536} {
			tb := core.NewTestbed()
			tb.Runs = 3
			plan := replay.PushList(base, css).WithInterleave(base, replay.InterleaveSpec{
				OffsetBytes: off, Critical: []string{css},
			})
			ev := tb.Evaluate(site, plan, "offset")
			res[off] = ev.MedianSI
		}
	}
	for _, off := range []int{1024, 4096, 16384, 65536} {
		b.ReportMetric(float64(res[off])/1e6, "si_ms_offset"+strconv.Itoa(off))
	}
}

// BenchmarkEngineSequential and BenchmarkEngineParallel time the same
// experiment through the worker-pool engine with 1 worker vs GOMAXPROCS
// workers; the resulting tables are byte-identical, only wall clock
// differs (on multi-core hardware).
func BenchmarkEngineSequential(b *testing.B) {
	sc := benchScale()
	sc.Jobs = 1
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		mustTable(b)(core.Fig2bPushVsNoPush(sc))
	}
}

func BenchmarkEngineParallel(b *testing.B) {
	sc := benchScale()
	sc.Jobs = 0 // GOMAXPROCS
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		mustTable(b)(core.Fig2bPushVsNoPush(sc))
	}
}

// BenchmarkEngineParallelJobs sweeps both execution backends so the
// engine's scaling curve is a first-class benchmark on any hardware.
// The Jobs sweep sizes the in-process worker pool: on a >=4-core
// machine Jobs=4 must beat Jobs=1 on wall clock; on a single-CPU
// machine the curve is flat (scheduling overhead only), which is itself
// the measurement — it is no longer skipped, because the multiprocess
// sweep below is the one expected to scale there. The Shards sweep
// fans the same experiment across pushbench child processes, whose
// parallelism the OS scheduler sees even when GOMAXPROCS=1. Tables are
// byte-identical across every cell of both sweeps.
func BenchmarkEngineParallelJobs(b *testing.B) {
	for _, jobs := range []int{1, 2, 4, 8} {
		b.Run("Jobs="+strconv.Itoa(jobs), func(b *testing.B) {
			sc := benchScale()
			sc.Jobs = jobs
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				mustTable(b)(core.Fig2bPushVsNoPush(sc))
			}
		})
	}
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run("Multiprocess/Shards="+strconv.Itoa(shards), func(b *testing.B) {
			sc := benchScale()
			sc.Jobs = 1 // children run units sequentially; shards carry the parallelism
			sc.Exec = core.Exec{Kind: core.ExecMultiProcess, Shards: shards}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				mustTable(b)(core.Fig2bPushVsNoPush(sc))
			}
		})
	}
}

// BenchmarkPopulationSweep sweeps the client count of the population
// engine on the household preset. The headline metric is bytes/op
// growing sub-linearly in clients: the per-load results stream into
// O(1)-memory sketch cells, so aggregation memory is independent of
// clients x runs, and what remains is pooled per-client simulation
// state (slots, connections) amortized across runs.
func BenchmarkPopulationSweep(b *testing.B) {
	for _, clients := range []int{1, 4, 16} {
		b.Run("Clients="+strconv.Itoa(clients), func(b *testing.B) {
			sc := core.ExperimentScale{Sites: 2, Runs: 2, Seed: 1, Jobs: 0}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := core.PopulationSweepNames([]string{"household"}, []int{clients}, sc); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkPageLoad measures raw single-load simulation throughput.
func BenchmarkPageLoad(b *testing.B) {
	site := corpus.Generate(corpus.RandomProfile(), 0, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tb := core.NewTestbed()
		r := tb.RunOnce(site, replay.NoPush(), i)
		if !r.Completed {
			b.Fatal("incomplete load")
		}
	}
}

// BenchmarkStrategyCompilation measures the analysis pipeline (layout,
// critical CSS extraction, rewrite).
func BenchmarkStrategyCompilation(b *testing.B) {
	site := corpus.PopularSite("w1")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, plan := strategy.PushCriticalOptimized{}.Apply(site, nil)
		if len(plan.Push) == 0 {
			b.Fatal("no plan")
		}
	}
}

// BenchmarkPageLoadWarm measures steady-state single-load throughput on
// a reused RunContext: the prepare-once/replay-many hot path the
// experiment drivers run on. The dense-ID refactor pins this at well
// under 900 allocs/op (see TestRunContextReuseAllocBudget).
func BenchmarkPageLoadWarm(b *testing.B) {
	site := corpus.Generate(corpus.RandomProfile(), 0, 1)
	tb := core.NewTestbed()
	plan := replay.NoPush()
	rc := core.NewRunContext()
	if r := tb.RunOnceWith(rc, site, plan, 0); !r.Completed {
		b.Fatal("incomplete warm-up load")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if r := tb.RunOnceWith(rc, site, plan, 1); !r.Completed {
			b.Fatal("incomplete load")
		}
	}
}
