// Command pushbench runs the paper's experiments and prints the tables
// and series each figure reports.
//
// Usage:
//
//	pushbench -exp all                 # every experiment at small scale
//	pushbench -exp fig5                # one experiment
//	pushbench -exp fig6 -sites w1,w16  # subset of the popular sites
//	pushbench -exp fig3a -scale paper  # paper scale (100 sites, 31 runs)
//	pushbench -exp all -jobs 8         # fan runs/sites across 8 workers
//	pushbench -exp all -jobs 1         # strictly sequential (same output)
//
// The execution layer is pluggable: -executor multiprocess shards the
// site-level fan-out across pushbench child processes (re-exec'd with
// -worker), which scales past GOMAXPROCS=1 and produces byte-identical
// tables at any -shards value:
//
//	pushbench -exp fig2b -executor multiprocess -shards 4
//
// The cross-scenario sweep re-runs the strategy comparison under every
// named network scenario (or a chosen subset):
//
//	pushbench -experiment scenarios                    # all scenarios
//	pushbench -experiment scenarios -scenario lte,3g   # just these links
//
// The fault sweep reloads the same strategy comparison under scripted
// fault families (link flap, server stall, GOAWAY, push resets, push
// disable, permanent link cut) and reports how loads terminate:
//
//	pushbench -experiment faults -scenario dsl,satellite
//
// The population sweep loads N clients concurrently on one shared
// bottleneck (household DSL, cell-sector backhaul, office NAT uplink)
// and reports per-strategy median/p95 load times plus a fairness
// ratio, streamed through O(1)-memory quantile sketches:
//
//	pushbench -experiment population -clients 1,4,16,64
//	pushbench -experiment population -presets household -clients 1,8
//
// -experiment is an alias for -exp; -list-experiments prints every
// experiment with a one-line description.
//
// For performance work, -cpuprofile and -memprofile write pprof
// profiles of the selected experiment run, so a perf investigation can
// profile any experiment at any scale without an ad-hoc harness:
//
//	pushbench -exp fig2b -scale paper -cpuprofile cpu.out -memprofile mem.out
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/scenario"
)

func main() {
	// Becomes a shard worker and never returns when spawned by the
	// multiprocess executor; must run before flag parsing so the
	// -worker marker argument is never interpreted as a flag.
	core.MaybeServeWorker()
	os.Exit(run())
}

// run carries the whole command so error paths return instead of
// calling os.Exit directly: the deferred profile writers (StopCPUProfile,
// WriteHeapProfile) must flush even when an experiment or flag fails,
// or a -cpuprofile file would be left truncated and unparseable.
func run() int {
	var exp string
	flag.StringVar(&exp, "exp", "all", "experiment: fig1|fig2a|fig2b|pushable|fig3a|fig3b|types|fig4|fig5|fig6|scenarios|faults|all")
	flag.StringVar(&exp, "experiment", "all", "alias for -exp")
	scaleName := flag.String("scale", "small", "small|paper")
	sitesFlag := flag.String("sites", "", "comma-separated w-site ids for fig6 (default all)")
	scenarioFlag := flag.String("scenario", "all", "comma-separated scenario names for -experiment scenarios (all, or any of: "+strings.Join(scenario.Names(), ", ")+")")
	runs := flag.Int("runs", 0, "override repetitions per configuration")
	nsites := flag.Int("nsites", 0, "override sites per set")
	popN := flag.Int("population", 200_000, "population size for fig1")
	clientsFlag := flag.String("clients", "1,4,16,64", "comma-separated client counts for -experiment population")
	presetsFlag := flag.String("presets", "all", "comma-separated population preset names for -experiment population (all, or any of: "+strings.Join(scenario.PopulationNames(), ", ")+")")
	listExps := flag.Bool("list-experiments", false, "print the experiments with one-line descriptions and exit")
	jobs := flag.Int("jobs", 0, "worker-pool size (0 = GOMAXPROCS, 1 = sequential); output is identical for any value")
	executor := flag.String("executor", core.ExecInProcess, "execution backend: inprocess|multiprocess; output is identical for either")
	shards := flag.Int("shards", 0, "multiprocess worker-child count (0 = GOMAXPROCS); output is identical for any value")
	noFork := flag.Bool("nofork", false, "disable fork-at-divergence checkpoint reuse (ablation; output is identical either way)")
	forkStats := flag.Bool("forkstats", false, "print fork checkpoint effectiveness to stderr after the run")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the experiment run to this file")
	memProfile := flag.String("memprofile", "", "write an allocation profile taken after the experiment run to this file")
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			return 2
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			return 2
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle accounting so the profile shows live + cumulative allocs
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
			}
		}()
	}

	scale := core.SmallScale()
	if *scaleName == "paper" {
		scale = core.PaperScale()
	}
	if *runs > 0 {
		scale.Runs = *runs
	}
	if *nsites > 0 {
		scale.Sites = *nsites
	}
	scale.Jobs = *jobs
	scale.NoFork = *noFork
	scale.Exec = core.Exec{Kind: *executor, Shards: *shards}
	if err := scale.Exec.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	var fig6Sites []string
	if *sitesFlag != "" {
		fig6Sites = strings.Split(*sitesFlag, ",")
	}
	// Resolve scenario names eagerly so a typo fails before any
	// experiment runs — not minutes in, after earlier tables printed.
	scenarios := scenario.All()
	if *scenarioFlag != "" && *scenarioFlag != "all" {
		scenarios = scenarios[:0]
		for _, n := range strings.Split(*scenarioFlag, ",") {
			sc, err := scenario.ByName(n)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return 2
			}
			scenarios = append(scenarios, sc)
		}
	}

	// Population inputs are resolved eagerly too, same rationale.
	var clientCounts []int
	for _, part := range strings.Split(*clientsFlag, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n <= 0 {
			fmt.Fprintf(os.Stderr, "-clients: %q is not a positive client count\n", part)
			return 2
		}
		clientCounts = append(clientCounts, n)
	}
	var popPresets []string // nil = all presets
	if *presetsFlag != "" && *presetsFlag != "all" {
		for _, n := range strings.Split(*presetsFlag, ",") {
			name := strings.TrimSpace(n)
			if _, err := scenario.PopulationByName(name); err != nil {
				fmt.Fprintln(os.Stderr, err)
				return 2
			}
			popPresets = append(popPresets, name)
		}
	}

	one := func(t *core.Table, err error) ([]*core.Table, error) {
		if err != nil {
			return nil, err
		}
		return []*core.Table{t}, nil
	}
	experiments := map[string]func() ([]*core.Table, error){
		"fig1":      func() ([]*core.Table, error) { return one(core.Fig1Adoption(*popN, scale.Seed), nil) },
		"fig2a":     func() ([]*core.Table, error) { return one(core.Fig2aVariability(scale)) },
		"fig2b":     func() ([]*core.Table, error) { return one(core.Fig2bPushVsNoPush(scale)) },
		"pushable":  func() ([]*core.Table, error) { return one(core.PushableObjects(scale), nil) },
		"fig3a":     func() ([]*core.Table, error) { return one(core.Fig3aPushAll(scale)) },
		"fig3b":     func() ([]*core.Table, error) { return one(core.Fig3bPushAmount(scale)) },
		"types":     func() ([]*core.Table, error) { return one(core.PushByTypeAnalysis(scale)) },
		"fig4":      func() ([]*core.Table, error) { return one(core.Fig4Synthetic(scale)) },
		"fig5":      func() ([]*core.Table, error) { return one(core.Fig5Interleaving(scale)) },
		"fig6":      func() ([]*core.Table, error) { return one(core.Fig6Popular(fig6Sites, scale)) },
		"scenarios": func() ([]*core.Table, error) { return core.ScenarioSweep(scenarios, scale) },
		"faults":    func() ([]*core.Table, error) { return core.FaultSweep(scenarios, scale) },
		"population": func() ([]*core.Table, error) {
			return core.PopulationSweepNames(popPresets, clientCounts, scale)
		},
	}
	order := []string{"fig1", "fig2a", "fig2b", "pushable", "fig3a", "fig3b", "types", "fig4", "fig5", "fig6", "scenarios", "faults", "population"}
	descriptions := map[string]string{
		"fig1":       "H2 and Server Push adoption over 12 monthly scans",
		"fig2a":      "per-site std. error of PLT/SpeedIndex, testbed vs Internet",
		"fig2b":      "push vs no push on the testbed, per-site medians",
		"pushable":   "fraction of sites with <20% pushable objects",
		"fig3a":      "push all vs no push on both site sets",
		"fig3b":      "delta vs no push when pushing the first n objects",
		"types":      "pushing specific object types (CSS/JS/images)",
		"fig4":       "custom strategies on the synthetic sites s1-s10",
		"fig5":       "SpeedIndex vs HTML size for push interleaving",
		"fig6":       "six strategies on the modelled popular sites w1-w20",
		"scenarios":  "strategy comparison under every named network scenario",
		"faults":     "strategy comparison under scripted fault families",
		"population": "N clients contending on one shared bottleneck (-clients, -presets)",
	}
	if *listExps {
		for _, name := range order {
			fmt.Printf("%-11s %s\n", name, descriptions[name])
		}
		return 0
	}

	names := []string{exp}
	if exp == "all" {
		names = order
	} else if _, ok := experiments[exp]; !ok {
		fmt.Fprintf(os.Stderr, "unknown experiment %q (have: %s, all; see -list-experiments)\n", exp, strings.Join(order, ", "))
		return 2
	}
	for _, name := range names {
		tabs, err := experiments[name]()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		for _, t := range tabs {
			t.Print(os.Stdout)
		}
	}
	if *forkStats {
		// Stats go to stderr so table output stays byte-comparable
		// between -nofork and default runs.
		fs := core.ReadForkStats()
		fmt.Fprintf(os.Stderr, "fork: prefixes=%d hits=%d fallbacks=%d cold=%d bypassed=%d hit-rate=%.1f%% snapshot-bytes=%d\n",
			fs.Prefixes, fs.Hits, fs.Fallbacks, fs.Cold, fs.Bypassed, fs.HitRate()*100, fs.SnapshotBytes)
	}
	return 0
}
